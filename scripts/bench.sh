#!/bin/sh
# Regenerate the repository's benchmark-baseline files. Runs the link,
# fabric, scheduler, placement, substrate, and datacenter-scale suites and
# appends one revision entry to BENCH_link.json / BENCH_fabric.json /
# BENCH_sched.json / BENCH_placement.json / BENCH_netsim.json /
# BENCH_scale.json via cmd/benchjson. Every perf-relevant PR should run
# this and commit the updated files so the repository carries its own perf
# trajectory.
#
# After each suite, benchjson prints a diff against the latest committed
# entry and flags ns/op slowdowns beyond 20%. Set BENCH_STRICT=1 to make
# such a regression fail the script (CI runs the benches as a non-blocking
# advisory step).
#
# Usage: scripts/bench.sh [rev-label]
# The label defaults to the current git short hash.
set -e
cd "$(dirname "$0")/.."

REV="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}"
COUNT="${BENCH_COUNT:-3}"
TIME="${BENCH_TIME:-1s}"
STRICT=""
[ -n "$BENCH_STRICT" ] && STRICT="-fail-on-regress"

echo "== link fabric benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkDrain|BenchmarkPipe|BenchmarkCoupled' \
    -benchtime "$TIME" -count "$COUNT" ./internal/link/ |
    go run ./cmd/benchjson -suite link -out BENCH_link.json -rev "$REV" $STRICT

echo "== SPSC ring benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkFabric' \
    -benchtime "$TIME" -count "$COUNT" ./internal/link/ |
    go run ./cmd/benchjson -suite fabric -out BENCH_fabric.json -rev "$REV" $STRICT

echo "== scheduler benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkTimerChurn|BenchmarkQueueChurn|BenchmarkSchedulerMixed' \
    -benchtime "$TIME" -count "$COUNT" ./internal/sim/ |
    go run ./cmd/benchjson -suite sched -out BENCH_sched.json -rev "$REV" $STRICT

# The placement suite covers all three executors: sequential/coupled
# (BenchmarkPlacement*), conservative parallel (BenchmarkParallel*), and
# optimistic (BenchmarkOptimistic*). The optimistic and
# ParallelLatencyDominated benchmarks sweep GOMAXPROCS 1/2/4 as P1/P2/P4
# sub-benchmarks, and each optimistic point reports an xspeedup metric over
# the conservative executor at the same concurrency.
echo "== placement benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkPlacement|BenchmarkParallel|BenchmarkCoupledSyncLight|BenchmarkOptimistic' \
    -benchtime "$TIME" -count "$COUNT" ./internal/orch/ |
    go run ./cmd/benchjson -suite placement -out BENCH_placement.json -rev "$REV" $STRICT

echo "== substrate packet-path benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkSubstrate' \
    -benchtime "$TIME" -count "$COUNT" \
    ./internal/netsim/ ./internal/nicsim/ ./internal/tcpstack/ |
    go run ./cmd/benchjson -suite netsim -out BENCH_netsim.json -rev "$REV" $STRICT

# The scale suite builds 10⁴–10⁶-host fabrics per iteration; one iteration
# per benchmark is representative and keeps the wall time sane. It records
# the tentpole metrics pkts/s (sustained simulated packets per wall-clock
# second), bytes/host (resident routing state), endpoints (fabric size for
# the mixed-fidelity million-endpoint run), and x-events (packet-event
# projection over flow-tier events) alongside ns/op.
echo "== datacenter-scale fabric benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkScale' \
    -benchtime "${BENCH_SCALE_TIME:-1x}" -count "$COUNT" -timeout 30m \
    ./internal/netsim/topogen/ ./internal/netsim/flowsim/ |
    go run ./cmd/benchjson -suite scale -out BENCH_scale.json -rev "$REV" $STRICT
