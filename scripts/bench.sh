#!/bin/sh
# Regenerate the repository's benchmark-baseline files. Runs the link,
# scheduler, and placement microbenchmark suites and appends one revision
# entry to BENCH_link.json / BENCH_sched.json / BENCH_placement.json via
# cmd/benchjson. Every perf-relevant PR should run this and commit the
# updated files so the repository carries its own perf trajectory.
#
# Usage: scripts/bench.sh [rev-label]
# The label defaults to the current git short hash.
set -e
cd "$(dirname "$0")/.."

REV="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo dev)}"
COUNT="${BENCH_COUNT:-3}"
TIME="${BENCH_TIME:-1s}"

echo "== link fabric benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkDrain|BenchmarkPipe|BenchmarkCoupled' \
    -benchtime "$TIME" -count "$COUNT" ./internal/link/ |
    go run ./cmd/benchjson -suite link -out BENCH_link.json -rev "$REV"

echo "== scheduler benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkTimerChurn|BenchmarkQueueChurn|BenchmarkSchedulerMixed' \
    -benchtime "$TIME" -count "$COUNT" ./internal/sim/ |
    go run ./cmd/benchjson -suite sched -out BENCH_sched.json -rev "$REV"

echo "== placement benchmarks (rev $REV) =="
go test -run '^$' -bench 'BenchmarkPlacement' \
    -benchtime "$TIME" -count "$COUNT" ./internal/orch/ |
    go run ./cmd/benchjson -suite placement -out BENCH_placement.json -rev "$REV"
