# Tier-1 gate and convenience targets. `make check` is what every PR must
# keep green (see README.md); `make race` adds the data-race gate over the
# whole module (every package may run under the multi-core executor now);
# `make chaos` runs the transport
# fault-injection suite under the race detector; `make ckpt` is the raced
# checkpoint/restore determinism gate; `make bench` refreshes the committed
# benchmark baselines.

GO ?= go

.PHONY: check build vet test race chaos parallel spec scale ckpt bench all

all: check race

check: vet build test chaos parallel spec scale ckpt

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Multi-core executor gate: the parallel digest/wake/profiling tests under
# the race detector, so check catches both nondeterminism and data races in
# the pinned-thread path.
parallel:
	$(GO) test -race -run 'TestParallel' \
		./internal/link/ ./internal/orch/ ./internal/profiler/

# Optimistic executor gate: the speculation digest/rollback/leap property
# tests (bit-identity with sequential across placements and GOMAXPROCS
# levels) and the remote-rejection contract under the race detector, plus
# the rollback fuzz seed corpus.
spec:
	$(GO) test -race -run 'TestOptimistic|TestParallelRemote' ./internal/orch/
	$(GO) test -run 'FuzzOptimisticRollback' ./internal/orch/

# Fault-injection suite: supervised transport under connection kills,
# garbles, and delays, with goroutine-leak accounting — raced.
chaos:
	$(GO) test -race -run 'TestSupervised|TestSupervisor|TestPump|TestServe|TestDistributed' \
		./internal/proxy/ ./internal/orch/

# Datacenter-fabric smoke: a small prefix-routed Clos must build, route,
# and complete incast + shuffle workloads with zero frame leaks; the
# flow-level background tier must run a mixed-fidelity phase without
# materializing background hosts.
scale:
	$(GO) test -run 'TestScaleSmoke|TestScaleMixedSmoke' ./internal/experiments/
	$(GO) test -run 'TestFlowSmoke' ./internal/netsim/flowsim/

# Checkpoint/restore gate: deterministic checkpoints must restore
# bit-identically across placements and GOMAXPROCS levels, and the
# warm-started sweep's identity point must match its cold run — raced, since
# placed captures and resumes exercise the multi-core executor.
ckpt:
	$(GO) test -race -run 'TestCheckpoint|TestLoadCheckpoint|TestWarmStart' \
		./internal/orch/ ./internal/experiments/

bench:
	sh scripts/bench.sh
