# Tier-1 gate and convenience targets. `make check` is what every PR must
# keep green (see README.md); `make race` adds the data-race gate over the
# packages with cross-goroutine traffic; `make bench` refreshes the
# committed benchmark baselines.

GO ?= go

.PHONY: check build vet test race bench all

all: check race

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/link/ ./internal/orch/ ./internal/profiler/

bench:
	sh scripts/bench.sh
