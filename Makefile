# Tier-1 gate and convenience targets. `make check` is what every PR must
# keep green (see README.md); `make race` adds the data-race gate over the
# packages with cross-goroutine traffic; `make chaos` runs the transport
# fault-injection suite under the race detector; `make bench` refreshes the
# committed benchmark baselines.

GO ?= go

.PHONY: check build vet test race chaos bench all

all: check race

check: vet build test chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Fault-injection suite: supervised transport under connection kills,
# garbles, and delays, with goroutine-leak accounting — raced.
chaos:
	$(GO) test -race -run 'TestSupervised|TestSupervisor|TestPump|TestServe|TestDistributed' \
		./internal/proxy/ ./internal/orch/

bench:
	sh scripts/bench.sh
