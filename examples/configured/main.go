// Declarative configuration: describe a key-value system once — hosts,
// switches, links, applications — and instantiate it three different ways
// (all protocol-level; mixed fidelity; partitioned network), the paper's
// separation of system configuration from simulator choices.
package main

import (
	"fmt"

	splitsim "repro"
	"repro/internal/apps/kv"
	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// describe builds the system configuration: one server and two clients
// across two switches. The same description drives every instantiation.
func describe() (*splitsim.System, []*kv.Client) {
	sys := &splitsim.System{}
	sys.AddSwitch("tor0")
	sys.AddSwitch("tor1")
	sys.Connect("tor0", "tor1", 40*splitsim.Gbps, splitsim.Microsecond)

	srv := kv.NewServer(kv.DefaultServerParams())
	server := sys.AddHost("server", "tor0", 10*splitsim.Gbps, splitsim.Microsecond)
	server.Apps = append(server.Apps, splitsim.AppFuncs{
		Protocol: func(h *netsim.Host) { srv.Run(h) },
		Detailed: func(h *hostsim.Host) { srv.Run(h) },
	})

	var clients []*kv.Client
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("client%d", i)
		host := sys.AddHost(name, "tor1", 10*splitsim.Gbps, splitsim.Microsecond)
		cp := kv.DefaultClientParams(uint32(i), []splitsim.IP{splitsim.HostIP(1)})
		cp.Outstanding = 8
		cp.WarmUp = splitsim.Millisecond
		cli := kv.NewClient(cp)
		clients = append(clients, cli)
		host.Apps = append(host.Apps, splitsim.AppFuncs{
			Protocol: func(h *netsim.Host) { cli.Run(h) },
			Detailed: func(h *hostsim.Host) { cli.Run(h) },
		})
	}
	return sys, clients
}

func run(name string, choices splitsim.Choices) {
	sys, clients := describe()
	inst, err := sys.Instantiate(choices)
	if err != nil {
		panic(err)
	}
	const dur = 20 * splitsim.Millisecond
	inst.RunSequential(dur)
	var done uint64
	for _, c := range clients {
		done += c.Completed
	}
	fmt.Printf("%-22s cores=%d tput=%s p50=%v\n", name, inst.Cores(),
		stats.FmtRate(stats.Rate(int(done), dur-splitsim.Millisecond)),
		clients[0].Lat.Percentile(50))
}

func main() {
	fmt.Println("one system description, three instantiations:")
	run("protocol-level", splitsim.Choices{Seed: 1})
	run("mixed fidelity", splitsim.Choices{
		Seed:             1,
		FidelityOverride: map[string]splitsim.Fidelity{"server": splitsim.Coarse},
	})
	run("partitioned network", splitsim.Choices{
		Seed:        1,
		PartitionOf: func(sw string) int { return int(sw[3] - '0') },
	})
}
