// Clock synchronization: a time server and a client with a drifting,
// wandering oscillator, synchronized first with NTP (software timestamps)
// and then with PTP (NIC hardware timestamps, ptp4l-style PHC servo,
// transparent-clock switch). Prints the clock error bound chrony would
// report — the quantity the commit-wait database consumes.
package main

import (
	"fmt"

	splitsim "repro"
	"repro/internal/apps/clocksync"
	"repro/internal/hostsim"
)

const dur = 10 * splitsim.Second

func build() (*splitsim.Simulation, *splitsim.DetailedHost, *splitsim.DetailedHost) {
	s := splitsim.NewSimulation()
	net := splitsim.NewNetwork("net", 3)
	sw := net.AddSwitch("sw")
	sw.TransparentClock = true
	srvIP, cliIP := splitsim.HostIP(10), splitsim.HostIP(20)
	extS := net.AddExternal(sw, "tsrv", 10*splitsim.Gbps, srvIP)
	extC := net.AddExternal(sw, "cli", 10*splitsim.Gbps, cliIP)
	net.ComputeRoutes()
	s.Add(net)

	srv := splitsim.NewDetailedHost("tsrv", srvIP,
		splitsim.QemuParams(), splitsim.DefaultNICParams(), 1)
	np := splitsim.DefaultNICParams()
	np.PHCDriftPPM = 35
	cli := splitsim.NewDetailedHost("cli", cliIP, splitsim.QemuParams(), np, 2)
	cli.Host.Clock.Osc = hostsim.Oscillator{
		Offset: 2 * splitsim.Millisecond, DriftPPM: 40,
		WanderPPM: 1, WanderPeriod: 5 * splitsim.Second,
	}
	srv.Wire(s, net, extS)
	cli.Wire(s, net, extC)

	// Background chatter congests the path a little.
	bg := net.AddHost("bg", splitsim.HostIP(30))
	net.ConnectHostSwitch(bg, sw, splitsim.Gbps, 500*splitsim.Nanosecond)
	_ = bg
	return s, srv, cli
}

func main() {
	// NTP.
	s, srv, cli := build()
	ntpd := &clocksync.NTPServer{}
	srv.Host.AddApp(hostsim.AppFunc(ntpd.Run))
	chNTP := clocksync.NewChrony()
	nc := &clocksync.NTPClient{Server: srv.Host.LocalIP(), Poll: 200 * splitsim.Millisecond}
	nc.OnMeasurement = chNTP.OnMeasurement
	cli.Host.AddApp(hostsim.AppFunc(chNTP.Run))
	cli.Host.AddApp(hostsim.AppFunc(nc.Run))
	s.RunSequential(dur)
	fmt.Printf("NTP: bound=%v true-error=%v rtt=%v\n",
		chNTP.Bounds.Mean(), chNTP.TrueError(), nc.Delay.Mean())

	// PTP.
	s, srv, cli = build()
	gm := &clocksync.PTPMaster{Slaves: []splitsim.IP{cli.Host.LocalIP()},
		Interval: 200 * splitsim.Millisecond}
	srv.Host.AddApp(hostsim.AppFunc(gm.Run))
	slave := &clocksync.PTPSlave{Master: srv.Host.LocalIP(), NIC: cli.NIC}
	chPTP := clocksync.NewChrony()
	ref := &clocksync.PHCRefClock{Slave: slave, NIC: cli.NIC, Poll: 200 * splitsim.Millisecond}
	ref.OnMeasurement = chPTP.OnMeasurement
	cli.Host.AddApp(hostsim.AppFunc(slave.Run))
	cli.Host.AddApp(hostsim.AppFunc(chPTP.Run))
	cli.Host.AddApp(hostsim.AppFunc(ref.Run))
	s.RunSequential(dur)
	fmt.Printf("PTP: bound=%v true-error=%v path-delay=%v\n",
		chPTP.Bounds.Mean(), chPTP.TrueError(), slave.PathDelay)

	fmt.Printf("hardware timestamping + transparent clocks tighten the bound %.0fx\n",
		float64(chNTP.Bounds.Mean())/float64(chPTP.Bounds.Mean()))
}
