// Scale-out: two network partitions synchronized over a REAL TCP
// connection (localhost), the SimBricks-proxy mechanism SplitSim inherits
// for distributing simulations across machines. The conservative
// synchronization protocol rides the socket unchanged, so the distributed
// run produces exactly the same simulation as an in-process run.
//
// Each side's spliced channel is owned by a proxy.Supervisor — the
// production transport: reconnect with backoff, heartbeats, checksummed
// framing, and per-connection counters (printed at the end).
package main

import (
	"context"
	"fmt"
	"net"

	splitsim "repro"
	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/proxy"
	"repro/internal/sim"
)

const (
	linkLatency = 2 * splitsim.Microsecond
	end         = 5 * splitsim.Millisecond
)

// site builds one "machine's" share: a switch with one host, plus an
// external port toward the remote site.
func site(name string, localID, remoteID uint32) (*netsim.Network, *netsim.Host, *netsim.ExtPort) {
	n := splitsim.NewNetwork(name, 99)
	sw := n.AddSwitch("sw")
	h := n.AddHost("h", splitsim.HostIP(localID))
	n.ConnectHostSwitch(h, sw, 10*splitsim.Gbps, splitsim.Microsecond)
	x := n.AddExternal(sw, "wan", 10*splitsim.Gbps, splitsim.HostIP(remoteID))
	x.SetEncode(true)
	n.ComputeRoutes()
	return n, h, x
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("channel endpoint listening on %s\n", ln.Addr())

	n1, h1, x1 := site("site1", 1, 2)
	n2, h2, x2 := site("site2", 2, 1)

	// Each site runs as its own simulator process (here: goroutine), with
	// the channel spliced over TCP.
	epA, remA := link.NewHalf("wan", linkLatency, 0)
	epB, remB := link.NewHalf("wan", linkLatency, 0)
	r1 := link.NewRunner("site1", sim.NewScheduler(1))
	r2 := link.NewRunner("site2", sim.NewScheduler(2))
	r1.Attach(epA)
	r2.Attach(epB)
	epA.SetSink(0, 100, x1)
	epB.SetSink(0, 101, x2)
	x1.Bind(epA)
	x2.Bind(epB)

	supA := proxy.NewSupervisor(proxy.Config{Seed: 1})
	supA.AddChannel(0, remA, proxy.RawFrameCodec{})
	supB := proxy.NewSupervisor(proxy.Config{Seed: 2})
	supB.AddChannel(0, remB, proxy.RawFrameCodec{})
	proxyDone := make(chan error, 2)
	go func() { proxyDone <- supA.Serve(context.Background(), ln) }()
	go func() { proxyDone <- supB.Dial(context.Background(), ln.Addr().String()) }()

	// Workload: site1's host pings site2's host.
	var rtts int
	h2.BindUDP(7, func(src proto.IP, sport uint16, p []byte, _ int) {
		h2.SendUDP(src, 7, sport, p, 0)
	})
	h1.BindUDP(8000, func(proto.IP, uint16, []byte, int) { rtts++ })
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		var tick func()
		tick = func() {
			h.SendUDP(splitsim.HostIP(2), 8000, 7, []byte("ping"), 0)
			h.After(200*splitsim.Microsecond, tick)
		}
		tick()
	}))

	r1.AddComponent(n1, 10)
	r2.AddComponent(n2, 11)
	g := &link.Group{}
	g.Add(r1, r2)
	if err := g.Run(end); err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-proxyDone; err != nil {
			panic(err)
		}
	}
	fmt.Printf("distributed simulation of %v completed: %d cross-site echoes\n", end, rtts)
	fmt.Println("virtual time stayed exact: wall-clock TCP delay never leaks into the simulation")
	fmt.Print(proxy.CountersTable([]string{"site1", "site2"},
		[]proxy.Counters{supA.Counters(), supB.Counters()}).String())
}
