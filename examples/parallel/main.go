// Parallelization through decomposition: split a fat-tree network into
// partitions connected by trunked SplitSim channels, run the partitions as
// truly parallel goroutines with conservative synchronization and the
// profiler attached, then post-process the profile into the wait-time
// profile graph — the paper's workflow for finding simulation bottlenecks.
package main

import (
	"fmt"
	"os"

	splitsim "repro"
	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/proto"
)

func main() {
	const parts = 4
	const dur = 5 * splitsim.Millisecond

	topo, meta := netsim.FatTree(4, 10*splitsim.Gbps, 40*splitsim.Gbps, splitsim.Microsecond)
	assign := decomp.EvenFatTree(meta, len(topo.Switches), parts)
	built := topo.Build("net", 42, assign, nil)

	s := splitsim.NewSimulation()
	splitsim.WirePartitions(s, topo, built, true /* trunk adapters */)

	// Every host streams to a partner in another pod.
	hosts := built.Hosts
	for i := 0; i < len(hosts)/2; i++ {
		a, b := hosts[i], hosts[len(hosts)/2+i]
		a.SetApp(periodic{dst: b.IP()})
		b.SetApp(periodic{dst: a.IP()})
		a.BindUDP(proto.PortBulk, drop)
		b.BindUDP(proto.PortBulk, drop)
	}

	// Attach the profiler and run coupled: one goroutine per partition.
	col := splitsim.NewCollector()
	s.PreRun = func(g *link.Group) { col.Attach(g, 250*splitsim.Microsecond) }
	if err := s.RunCoupled(dur); err != nil {
		panic(err)
	}

	// Post-process: simulation speed, efficiency, and the WTPG.
	a, err := splitsim.Analyze(col.Samples(), 2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Print(a.String())
	g := splitsim.BuildWTPG(a)
	fmt.Print(g.Render())

	// Persist the raw profile for the wtpg post-processing tool:
	//   go run ./cmd/wtpg -format dot profile.log
	f, err := os.CreateTemp("", "splitsim-profile-*.log")
	if err == nil {
		defer f.Close()
		if _, err := col.WriteTo(f); err == nil {
			fmt.Printf("wrote raw profile to %s (post-process with cmd/wtpg)\n", f.Name())
		}
	}
}

func drop(proto.IP, uint16, []byte, int) {}

// periodic is a tiny CBR sender app.
type periodic struct{ dst proto.IP }

func (p periodic) Start(h *netsim.Host) {
	var tick func()
	tick = func() {
		h.SendUDP(p.dst, proto.PortBulk, proto.PortBulk, nil, 1400)
		h.After(20*splitsim.Microsecond, tick)
	}
	h.After(splitsim.Time(h.Rand().Int63n(int64(20*splitsim.Microsecond))), tick)
}
