// Mixed fidelity: the same key-value workload evaluated two ways — pure
// protocol-level simulation (1 component) versus a mixed-fidelity setup
// whose server is a detailed qemu-class host behind a NIC model (3
// components). The protocol-level server has latency but no CPU, so it
// never saturates; the detailed server does — the central observation of
// the paper's in-network-processing case study.
package main

import (
	"fmt"

	splitsim "repro"
	"repro/internal/apps/kv"
	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/stats"
)

const (
	serverID = 100
	nClients = 3
	dur      = 40 * splitsim.Millisecond
	warm     = 5 * splitsim.Millisecond
)

// run builds the system; detailed selects the mixed-fidelity variant.
func run(detailed bool) (tput float64, p50 splitsim.Time, cores int) {
	s := splitsim.NewSimulation()
	net := splitsim.NewNetwork("net", 7)
	sw := net.AddSwitch("sw")
	serverIP := splitsim.HostIP(serverID)

	srv := kv.NewServer(kv.DefaultServerParams())
	if detailed {
		ext := net.AddExternal(sw, "srv", 10*splitsim.Gbps, serverIP)
		dh := splitsim.NewDetailedHost("srv", serverIP,
			splitsim.QemuParams(), splitsim.DefaultNICParams(), 1)
		dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { srv.Run(h) }))
		s.Add(net)
		dh.Wire(s, net, ext)
	} else {
		h := net.AddHost("srv", serverIP)
		net.ConnectHostSwitch(h, sw, 10*splitsim.Gbps, 500*splitsim.Nanosecond)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { srv.Run(hh) }))
		s.Add(net)
	}

	var clients []*kv.Client
	for i := 0; i < nClients; i++ {
		h := net.AddHost(fmt.Sprintf("cli%d", i), splitsim.HostIP(uint32(1+i)))
		net.ConnectHostSwitch(h, sw, 10*splitsim.Gbps, 500*splitsim.Nanosecond)
		cp := kv.DefaultClientParams(uint32(i), []splitsim.IP{serverIP})
		cp.Outstanding = 16
		cp.WarmUp = warm
		cli := kv.NewClient(cp)
		clients = append(clients, cli)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
	}
	net.ComputeRoutes()

	s.RunSequential(dur)

	var done uint64
	var lat stats.Latency
	for _, c := range clients {
		done += c.Completed
		for _, pt := range c.Lat.CDF(100) {
			lat.Add(pt.Value)
		}
	}
	return stats.Rate(int(done), dur-warm), lat.Percentile(50), s.NumComponents()
}

func main() {
	pTput, pLat, pCores := run(false)
	dTput, dLat, dCores := run(true)
	fmt.Println("same workload, two fidelities:")
	fmt.Printf("  protocol-level: tput=%s p50=%v cores=%d\n", stats.FmtRate(pTput), pLat, pCores)
	fmt.Printf("  mixed-fidelity: tput=%s p50=%v cores=%d\n", stats.FmtRate(dTput), dLat, dCores)
	fmt.Printf("the protocol-level server has no CPU: it reports %.1fx the throughput\n", pTput/dTput)
	fmt.Printf("and %.1fx lower latency than the server-software-bottlenecked truth\n",
		float64(dLat)/float64(pLat))
}
