// Quickstart: build a two-host protocol-level network, ping across it, and
// run the simulation both sequentially and coupled (one goroutine per
// component with SplitSim-channel synchronization) — demonstrating that the
// two execution modes produce identical results.
package main

import (
	"fmt"

	splitsim "repro"
	"repro/internal/netsim"
)

func build() (*splitsim.Simulation, *splitsim.Network, func() splitsim.Time) {
	s := splitsim.NewSimulation()
	net := splitsim.NewNetwork("net", 1)
	sw := net.AddSwitch("sw")
	h1 := net.AddHost("h1", splitsim.HostIP(1))
	h2 := net.AddHost("h2", splitsim.HostIP(2))
	net.ConnectHostSwitch(h1, sw, 10*splitsim.Gbps, splitsim.Microsecond)
	net.ConnectHostSwitch(h2, sw, 10*splitsim.Gbps, splitsim.Microsecond)
	net.ComputeRoutes()
	s.Add(net)

	// h2 echoes; h1 pings once per millisecond and records the RTT.
	var lastRTT splitsim.Time
	h2.BindUDP(7, func(src splitsim.IP, sport uint16, payload []byte, _ int) {
		h2.SendUDP(src, 7, sport, payload, 0)
	})
	h1.BindUDP(8000, func(_ splitsim.IP, _ uint16, payload []byte, _ int) {
		var sent splitsim.Time
		fmt.Sscanf(string(payload), "%d", &sent)
		lastRTT = h1.Now() - sent
	})
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		var tick func()
		tick = func() {
			h.SendUDP(splitsim.HostIP(2), 8000, 7,
				[]byte(fmt.Sprintf("%d", h.Now())), 0)
			h.After(splitsim.Millisecond, tick)
		}
		tick()
	}))
	return s, net, func() splitsim.Time { return lastRTT }
}

func main() {
	const dur = 10 * splitsim.Millisecond

	s1, _, rtt1 := build()
	s1.RunSequential(dur)
	fmt.Printf("sequential: RTT = %v\n", rtt1())

	s2, _, rtt2 := build()
	if err := s2.RunCoupled(dur); err != nil {
		panic(err)
	}
	fmt.Printf("coupled:    RTT = %v\n", rtt2())

	if rtt1() != rtt2() {
		panic("execution modes diverged")
	}
	fmt.Println("sequential and coupled execution agree, as the design guarantees")
}
