// Multi-core decomposition: simulate the same multi-core machine twice —
// monolithically (sequential gem5) and split into one component per core
// plus a memory controller (SplitSim adapters over the port interface).
// Verifies the simulated behavior is identical and prints the performance
// model's predicted speedup, Fig. 7's experiment in miniature.
package main

import (
	"fmt"

	splitsim "repro"
	"repro/internal/decomp"
	"repro/internal/memsim"
)

func main() {
	const cores = 8
	const dur = 2 * splitsim.Millisecond
	p := memsim.DefaultParams()

	// Monolithic (sequential gem5).
	mono := memsim.NewMonolithic("gem5", cores, p)
	sm := splitsim.NewSimulation()
	sm.Add(mono)
	sm.RunSequential(dur)

	// Split (one component per core + memory controller).
	ss := splitsim.NewSimulation()
	split, mem := memsim.BuildSplit(ss, cores, p)
	ss.RunSequential(dur)

	for i, c := range split {
		if c.Blocks != mono.Cores()[i].Blocks {
			panic("split and monolithic instantiations diverged")
		}
	}
	fmt.Printf("identical simulated behavior: %d blocks/core, %d memory txns\n",
		split[0].Blocks, mem.Txns)

	comps, links := ss.ModelGraph(dur)
	model := decomp.Makespan(comps, links, decomp.DefaultParams(dur))
	fmt.Printf("sequential gem5: %.0f s per simulated second\n",
		model.SeqNs/1e9/dur.Seconds())
	fmt.Printf("SplitSim split:  %.0f s per simulated second (%.1fx speedup)\n",
		model.ParNs/1e9/dur.Seconds(), model.Speedup)
	for _, c := range split {
		fmt.Printf("  %s: stall %.0f%% of time (shared memory contention)\n",
			c.Name(), 100*float64(c.StallTime)/float64(dur))
		break
	}
}
