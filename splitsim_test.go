package splitsim_test

import (
	"strings"
	"testing"

	splitsim "repro"
	"repro/internal/link"
	"repro/internal/netsim"
)

// TestPublicAPIEndToEnd drives a mixed-fidelity simulation entirely through
// the facade: protocol-level network + detailed host, coupled execution
// with the profiler, post-processing into a WTPG.
func TestPublicAPIEndToEnd(t *testing.T) {
	s := splitsim.NewSimulation()
	net := splitsim.NewNetwork("net", 1)
	sw := net.AddSwitch("sw")

	peer := net.AddHost("peer", splitsim.HostIP(2))
	net.ConnectHostSwitch(peer, sw, 10*splitsim.Gbps, splitsim.Microsecond)
	ext := net.AddExternal(sw, "h", 10*splitsim.Gbps, splitsim.HostIP(1))
	net.ComputeRoutes()
	s.Add(net)

	dh := splitsim.NewDetailedHost("h", splitsim.HostIP(1),
		splitsim.QemuParams(), splitsim.DefaultNICParams(), 7)
	dh.Wire(s, net, ext)

	replies := 0
	peer.BindUDP(9, func(src splitsim.IP, sport uint16, p []byte, _ int) {
		peer.SendUDP(src, 9, sport, p, 0)
	})
	dh.Host.BindUDP(7, func(splitsim.IP, uint16, []byte, int) { replies++ })
	dh.Host.AddApp(hostApp(func(h *splitsim.Host) {
		var tick func()
		tick = func() {
			h.SendUDP(splitsim.HostIP(2), 7, 9, []byte("ping"), 0)
			h.After(100*splitsim.Microsecond, tick)
		}
		tick()
	}))

	col := splitsim.NewCollector()
	s.PreRun = func(g *link.Group) { col.Attach(g, 200*splitsim.Microsecond) }
	if err := s.RunCoupled(5 * splitsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if replies == 0 {
		t.Fatal("no echoes")
	}

	a, err := splitsim.Analyze(col.Samples(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := splitsim.BuildWTPG(a)
	if len(g.Nodes) != 3 {
		t.Fatalf("WTPG nodes = %d, want 3", len(g.Nodes))
	}
	if !strings.Contains(g.DOT(), "digraph") {
		t.Fatal("DOT output broken")
	}
}

// hostApp adapts a closure to the hostsim app interface via the facade
// type alias.
type hostApp func(h *splitsim.Host)

func (f hostApp) Start(h *splitsim.Host) { f(h) }

func TestPublicAPITopologyAndTCP(t *testing.T) {
	// Dumbbell through the facade with a DCTCP flow.
	topo, meta := netsim.Dumbbell(netsim.DumbbellSpec{
		HostsPerSide: 1, EdgeRate: 10 * splitsim.Gbps,
		BottleneckRate: splitsim.Gbps,
		EdgeDelay:      splitsim.Microsecond, BottleneckDelay: 10 * splitsim.Microsecond,
	})
	b := topo.Build("net", 1, nil, nil)
	s := splitsim.NewSimulation()
	s.Add(b.Parts[0])
	src, dst := b.Hosts[meta.Left[0]], b.Hosts[meta.Right[0]]
	snd, rcv := netsim.NewFlow(src, dst, 40000, 5001, netsim.CCDCTCP, 500_000, nil)
	src.SetApp(netsim.AppFunc(func(*netsim.Host) { snd.StartFlow() }))
	s.RunSequential(100 * splitsim.Millisecond)
	if !snd.Done() || rcv.Delivered() != 500_000 {
		t.Fatalf("transfer incomplete: %d", rcv.Delivered())
	}
}

func TestPublicAPITable1(t *testing.T) {
	if !strings.Contains(splitsim.Table1(), "SplitSim") {
		t.Fatal("Table1 broken")
	}
}

func TestFidelityStrings(t *testing.T) {
	if splitsim.ProtocolLevel.String() != "protocol" ||
		splitsim.Coarse.String() != "qemu" ||
		splitsim.Detailed.String() != "gem5" {
		t.Fatal("fidelity strings")
	}
}

// TestPublicAPIPlacement runs one system under three placements through the
// facade and checks the plan/placement surface holds together.
func TestPublicAPIPlacement(t *testing.T) {
	build := func() (*splitsim.Simulation, *netsim.Built) {
		topo, _ := netsim.Dumbbell(netsim.DumbbellSpec{
			HostsPerSide: 2, EdgeRate: 10 * splitsim.Gbps,
			BottleneckRate: splitsim.Gbps,
			EdgeDelay:      splitsim.Microsecond, BottleneckDelay: 10 * splitsim.Microsecond,
		})
		b := topo.Build("net", 3, []int{0, 1}, nil)
		s := splitsim.NewSimulation()
		splitsim.WirePartitions(s, topo, b, false)
		got := 0
		b.Hosts[2].BindUDP(9, func(splitsim.IP, uint16, []byte, int) { got++ })
		b.Hosts[0].BindUDP(9, func(splitsim.IP, uint16, []byte, int) {})
		dst := b.Hosts[2].IP()
		b.Hosts[0].SetApp(netsim.AppFunc(func(h *netsim.Host) {
			h.SendUDP(dst, 9, 9, []byte("x"), 0)
		}))
		return s, b
	}

	s, _ := build()
	pl, err := s.Plan(splitsim.SingleGroup(2))
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumGroups() != 1 || !strings.Contains(pl.String(), "1 groups") {
		t.Fatalf("co-located plan wrong:\n%s", pl.String())
	}
	s.RunSequential(splitsim.Millisecond)
	seqComps, seqLinks := s.ModelGraph(splitsim.Millisecond)

	s2, _ := build()
	s2.RunPlaced(splitsim.Millisecond, splitsim.PerComponent(2))
	pcComps, _ := s2.ModelGraph(splitsim.Millisecond)
	if len(pcComps) != len(seqComps) {
		t.Fatalf("model graphs diverge: %d vs %d comps", len(pcComps), len(seqComps))
	}
	for i := range pcComps {
		if pcComps[i].BusyNs != seqComps[i].BusyNs {
			t.Fatalf("busy[%d] %v != %v", i, pcComps[i].BusyNs, seqComps[i].BusyNs)
		}
	}

	// The feedback loop terminates and yields a valid placement.
	auto := splitsim.AutoPlace(seqComps, seqLinks,
		splitsim.DefaultModelParams(splitsim.Millisecond), splitsim.RecommendOptions{})
	if n := auto.NumGroups(); n < 1 || n > 2 {
		t.Fatalf("auto placement groups = %d", n)
	}
}
