package splitsim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark prints the paper-style rows once (so
// `go test -bench=. | tee bench_output.txt` captures the reproduction) and
// reports the harness runtime as the benchmark metric. Scales are reduced
// so the whole suite runs in minutes on one core; pass the full paper scale
// through cmd/splitsim (`splitsim run all -scale 1`).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchScale shrinks simulated durations for the benchmark suite.
const benchScale = 0.25

// heavyScale is used by the large-topology case studies.
const heavyScale = 0.04

func opts(scale float64) experiments.Options {
	return experiments.Options{Scale: scale, Seed: 42}
}

// printOnce emits an experiment's rows exactly once per process, keyed by
// the benchmark's name, no matter how many iterations the framework runs.
var printedMu sync.Mutex
var printed = map[string]bool{}

func printOnce(key, out string) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[key] {
		return
	}
	printed[key] = true
	fmt.Printf("\n%s\n", out)
}

// BenchmarkTable1SimulatorComparison regenerates Table 1.
func BenchmarkTable1SimulatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce("table1", experiments.Table1())
	}
}

// BenchmarkFig4InNetworkThroughput regenerates Fig. 4 and the §4.2 core/
// runtime accounting: NetCache vs Pegasus under protocol-level, end-to-end,
// and mixed-fidelity simulation.
func BenchmarkFig4InNetworkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(opts(benchScale))
		printOnce("fig4", r.String())
	}
}

// BenchmarkFig5PegasusLatencyCDF regenerates Fig. 5: latency CDFs from an
// ns-3 client vs a qemu client under saturated and unsaturated load.
func BenchmarkFig5PegasusLatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(opts(benchScale))
		printOnce("fig5", r.String())
	}
}

// BenchmarkClockSyncNTPvsPTP regenerates the §4.3 case study: clock bounds
// and commit-wait database performance under NTP vs PTP in the large
// datacenter topology.
func BenchmarkClockSyncNTPvsPTP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ClockSync(opts(heavyScale))
		printOnce("clocksync", r.String())
	}
}

// BenchmarkFig6DCTCPMarkingThreshold regenerates Fig. 6: DCTCP throughput
// vs ECN marking threshold across the three fidelities.
func BenchmarkFig6DCTCPMarkingThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(opts(benchScale))
		printOnce("fig6", r.String())
	}
}

// BenchmarkFig7Gem5Multicore regenerates Fig. 7: SplitSim-parallelized
// multi-core gem5 vs sequential gem5 across core counts.
func BenchmarkFig7Gem5Multicore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(opts(1))
		printOnce("fig7", r.String())
	}
}

// BenchmarkFig8NativeVsSplitSim regenerates Fig. 8: SplitSim vs native
// (barrier) parallelization of ns-3 and OMNeT++ on FatTree8.
func BenchmarkFig8NativeVsSplitSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(opts(benchScale))
		printOnce("fig8", r.String())
	}
}

// BenchmarkFig9PartitionStrategies regenerates Fig. 9: simulation speed of
// the s/ac/crN/rs partition strategies with qemu and gem5 hosts.
func BenchmarkFig9PartitionStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(opts(heavyScale))
		printOnce("fig9", r.String())
	}
}

// BenchmarkFig10ProfilerWTPG regenerates Fig. 10: wait-time-profile graphs
// for the ac and cr3 partition strategies.
func BenchmarkFig10ProfilerWTPG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(opts(heavyScale))
		printOnce("fig10", r.String())
	}
}

// BenchmarkConfigEffort regenerates the §4.6 configuration-effort
// comparison.
func BenchmarkConfigEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ConfigEffort(".")
		if err != nil {
			b.Fatal(err)
		}
		printOnce("configeffort", r.String())
	}
}

// BenchmarkAblationTrunkAdapter quantifies the trunk adapter's saving
// (DESIGN.md design-choice ablation): the same partitioned fat tree wired
// with one trunked channel per partition pair versus one channel per
// boundary link.
func BenchmarkAblationTrunkAdapter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TrunkAblation(opts(benchScale))
		printOnce("trunk", r.String())
	}
}

// BenchmarkAblationSyncQuantum sweeps the synchronization interval,
// exposing the lookahead/overhead trade-off the channel latency sets.
func BenchmarkAblationSyncQuantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SyncQuantumAblation(opts(benchScale))
		printOnce("quantum", r.String())
	}
}

// BenchmarkAblationProfilerOverhead measures the profiler's wall-time cost
// on a coupled run — the quick experiment the paper sketches in §4.5.
func BenchmarkAblationProfilerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ProfilerOverhead(opts(benchScale))
		printOnce("profoverhead", r.String())
	}
}
