// Package splitsim is the public API of SplitSim-Go, a Go reproduction of
// "SplitSim: Towards Practical Large-Scale Full-System Simulation for
// Systems Research" (CoNEXT 2025).
//
// SplitSim enables end-to-end evaluation of large-scale network and
// distributed systems by combining four techniques on top of modular
// (SimBricks-style) simulation:
//
//   - mixed-fidelity simulation: detailed host simulators only where the
//     evaluation needs them, protocol-level simulation everywhere else;
//   - parallelization through decomposition: splitting bottleneck
//     simulators at component boundaries into synchronized processes,
//     including trunk adapters that multiplex many logical links over one
//     synchronized channel;
//   - a lightweight synchronization/communication profiler producing
//     wait-time-profile graphs that color bottleneck simulators red;
//   - a configuration and orchestration layer that separates the simulated
//     system's description from concrete simulator instantiation choices.
//
// This facade re-exports the pieces a simulation author composes. The
// subsystem packages under internal/ carry the implementations: sim (event
// kernel), link (channels + conservative sync), netsim (protocol-level
// network simulator), hostsim/nicsim/pci (detailed host path), memsim
// (multi-core memory-system simulator), decomp (partitioning + performance
// model), profiler, orch, instantiate, and the case-study applications
// under internal/apps.
//
// Quickstart:
//
//	s := splitsim.NewSimulation()
//	net := splitsim.NewNetwork("net", seed)
//	... build hosts/switches, add components, connect channels ...
//	s.RunSequential(20 * splitsim.Millisecond)  // or RunCoupled
package splitsim

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/experiments"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/profiler"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/tcpstack"
)

// Virtual time.
type (
	// Time is a point in (or span of) virtual time, in picoseconds.
	Time = sim.Time
	// Scheduler is the deterministic discrete-event scheduler.
	Scheduler = sim.Scheduler
	// Rand is the deterministic PRNG used throughout.
	Rand = sim.Rand
)

// Time units.
const (
	Picosecond  = sim.Picosecond
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Link rates.
const (
	Kbps = sim.Kbps
	Mbps = sim.Mbps
	Gbps = sim.Gbps
)

// Component model.
type (
	// Component is a simulator component runnable by the orchestrator.
	Component = core.Component
	// Message travels over channels between components.
	Message = core.Message
	// Port sends messages toward a peer component.
	Port = core.Port
	// Sink receives messages from a peer component.
	Sink = core.Sink
	// Fidelity selects protocol-level, qemu-, or gem5-class simulation.
	Fidelity = core.Fidelity
)

// Fidelity levels.
const (
	ProtocolLevel = core.ProtocolLevel
	Coarse        = core.Coarse
	Detailed      = core.Detailed
)

// Orchestration.
type (
	// Simulation is a configured set of components and channels.
	Simulation = orch.Simulation
	// Side describes one end of a channel connection.
	Side = orch.Side
	// TrunkPair is one logical link of a trunked connection.
	TrunkPair = orch.TrunkPair
)

// NewSimulation creates an empty simulation.
func NewSimulation() *Simulation { return orch.New() }

// Protocol-level network simulation.
type (
	// Network is the protocol-level network simulator (ns-3 analog).
	Network = netsim.Network
	// NetHost is a protocol-level host.
	NetHost = netsim.Host
	// Switch is an output-queued switch with a programmable dataplane.
	Switch = netsim.Switch
	// Topology declaratively describes a network for (partitioned) builds.
	Topology = netsim.Topology
	// TCPConn is one side of a TCP flow (Reno or DCTCP).
	TCPConn = tcpstack.Conn
)

// NewNetwork creates a protocol-level network simulator component.
func NewNetwork(name string, seed uint64) *Network { return netsim.New(name, seed) }

// Detailed host simulation.
type (
	// Host is a detailed full-system host simulator (qemu/gem5 analog).
	Host = hostsim.Host
	// HostParams tunes a detailed host's timing and simulation cost.
	HostParams = hostsim.Params
	// NIC is the behavioral NIC model (i40e analog).
	NIC = nicsim.NIC
	// NICParams tunes the NIC model.
	NICParams = nicsim.Params
	// DetailedHost bundles a host with its NIC for wiring.
	DetailedHost = instantiate.DetailedHost
)

// QemuParams returns the coarse (instruction-counting) host tier.
func QemuParams() HostParams { return hostsim.QemuParams() }

// Gem5Params returns the detailed-timing host tier.
func Gem5Params() HostParams { return hostsim.Gem5Params() }

// DefaultNICParams returns the i40e-like 10G NIC configuration.
func DefaultNICParams() NICParams { return nicsim.DefaultParams() }

// NewDetailedHost constructs a host+NIC pair; Wire attaches it to a
// network's external port.
func NewDetailedHost(name string, ip IP, hp HostParams, np NICParams, seed uint64) *DetailedHost {
	return instantiate.NewDetailedHost(name, ip, hp, np, seed)
}

// Declarative configuration: describe the simulated system once, then
// instantiate it under different simulator choices.
type (
	// System declaratively describes hosts, switches, links, and apps.
	System = config.System
	// SystemHost is one host description within a System.
	SystemHost = config.Host
	// Choices carries instantiation decisions (fidelities, partitioning).
	Choices = config.Choices
	// Instance is a runnable instantiation of a System.
	Instance = config.Instance
	// AppFuncs adapts per-tier functions to a configured application.
	AppFuncs = config.AppFuncs
)

// Decomposition and performance model.
type (
	// Strategy names a network partition strategy (s/ac/crN/rs).
	Strategy = decomp.Strategy
	// ModelParams tunes the decomposition performance model.
	ModelParams = decomp.Params
)

// Placement-aware execution: one build pipeline for sequential, coupled,
// and distributed runs, with co-location as a first-class knob.
type (
	// Placement maps component index -> runner group; any placement runs
	// bit-identically to the sequential execution.
	Placement = decomp.Placement
	// ExecutionPlan is the explicit wiring a Simulation derives from a
	// Placement: components, channels (direct/coupled/remote), groups.
	ExecutionPlan = orch.ExecutionPlan
	// RecommendOptions tunes the profiler-driven placement recommender.
	RecommendOptions = decomp.RecommendOptions
	// ParallelOptions tunes the multi-core executor (thread pinning,
	// batched horizon windows). The zero value is the plain coupled
	// executor; DefaultParallelOptions derives the host defaults.
	ParallelOptions = orch.ParallelOptions
)

// Placement constructors and the profiler→placement feedback loop.
var (
	// SingleGroup co-locates every component on one scheduler.
	SingleGroup = decomp.SingleGroup
	// PerComponent gives every component its own runner.
	PerComponent = decomp.PerComponent
	// RecommendPlacement greedily splits the bottleneck group and merges
	// idle neighbors based on a profiler Analysis.
	RecommendPlacement = decomp.RecommendPlacement
	// AutoPlace iterates RecommendPlacement over the decomposition model
	// until a fixed point.
	AutoPlace = decomp.AutoPlace
	// DefaultModelParams returns the calibrated decomposition model
	// parameters for a run of the given duration.
	DefaultModelParams = decomp.DefaultParams
	// HostModelParams returns model parameters tuned to the executing
	// host: GOMAXPROCS as the core budget, measured per-sync cost from
	// the live channel fabric.
	HostModelParams = orch.HostModelParams
	// DefaultParallelOptions derives multi-core executor settings from
	// the host (pin when more than one core, always batch windows).
	DefaultParallelOptions = orch.DefaultParallelOptions
	// MeasureSyncCost wall-clock-prices one sync exchange on this
	// machine's channel fabric.
	MeasureSyncCost = link.MeasureSyncCost
)

// Profiling.
type (
	// Collector samples adapter counters during coupled runs.
	Collector = profiler.Collector
	// Analysis is the post-processed profile.
	Analysis = profiler.Analysis
	// WTPG is the wait-time-profile graph.
	WTPG = profiler.WTPG
)

// NewCollector creates a profiler collector; attach it via Simulation.PreRun.
func NewCollector() *Collector { return profiler.NewCollector() }

// Analyze post-processes profiler samples, dropping warm-up/cool-down.
func Analyze(samples []profiler.Sample, dropWarm, dropCool int) (*Analysis, error) {
	return profiler.Analyze(samples, dropWarm, dropCool)
}

// BuildWTPG constructs the wait-time-profile graph from an analysis.
func BuildWTPG(a *Analysis) *WTPG { return profiler.BuildWTPG(a) }

// Channels.
type (
	// Channel is a synchronized SplitSim channel (coupled mode).
	Channel = link.Channel
	// Trunk multiplexes logical links over one synchronized channel.
	Trunk = link.Trunk
)

// Experiments: the paper's evaluation harnesses.
type (
	// ExpOptions scales and seeds an experiment run.
	ExpOptions = experiments.Options
)

// Experiment entry points regenerate the paper's tables and figures.
var (
	Fig4           = experiments.Fig4
	Fig5           = experiments.Fig5
	Fig6           = experiments.Fig6
	Fig7           = experiments.Fig7
	Fig8           = experiments.Fig8
	Fig9           = experiments.Fig9
	Fig10          = experiments.Fig10
	ClockSyncCS    = experiments.ClockSync
	Table1         = experiments.Table1
	ConfigEffort   = experiments.ConfigEffort
	PlacementStudy = experiments.PlacementStudy
)

// IP is an IPv4 address in host integer form.
type IP = proto.IP

// HostIP derives a stable 10.0.0.0/8 address for a host id.
func HostIP(id uint32) IP { return proto.HostIP(id) }

// WirePartitions connects a partitioned topology's boundaries on a
// simulation, trunked or not.
var WirePartitions = instantiate.WirePartitions
