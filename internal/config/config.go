// Package config implements SplitSim's system-configuration abstraction:
// a declarative description of the *simulated system* — hosts with their
// attributes and applications, switches, links — kept strictly separate
// from the choice of how to simulate it. The paper expresses this as a
// hierarchy of Python objects; here it is a hierarchy of Go values with
// the same roles, and ordinary Go (loops, functions, modules) serves as
// the meta-programming layer for assembling large configurations.
//
// A System is turned into a runnable simulation by an Instantiation
// (instantiate.go), which picks host-simulator fidelities, network
// partitioning, and wiring — and yields a regular orch.Simulation that the
// user can still modify by hand, exactly as the paper's instantiation
// emits a regular SimBricks configuration.
package config

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// App is an application that can run on either host tier. Implementations
// bind to whichever host kind the instantiation chose — the code-reuse
// property that lets one workload definition serve every fidelity.
type App interface {
	// RunProtocol starts the app on a protocol-level host.
	RunProtocol(h *netsim.Host)
	// RunDetailed starts the app on a detailed host.
	RunDetailed(h *hostsim.Host)
}

// AppFuncs adapts a pair of functions to App. Either may be nil when the
// app only supports one tier (validation enforces compatibility with the
// chosen fidelity).
type AppFuncs struct {
	Protocol func(h *netsim.Host)
	Detailed func(h *hostsim.Host)
}

// RunProtocol implements App.
func (a AppFuncs) RunProtocol(h *netsim.Host) {
	if a.Protocol == nil {
		panic("config: app has no protocol-level implementation")
	}
	a.Protocol(h)
}

// RunDetailed implements App.
func (a AppFuncs) RunDetailed(h *hostsim.Host) {
	if a.Detailed == nil {
		panic("config: app has no detailed implementation")
	}
	a.Detailed(h)
}

// Host describes one end host of the simulated system.
type Host struct {
	Name string
	// IP is the host address; zero auto-assigns from the host index.
	IP proto.IP
	// Cores, MemoryMB and ClockGHz are the machine attributes the paper's
	// host objects carry. The detailed host model simulates one core (as
	// the paper's evaluations configure); the attributes are retained for
	// configuration fidelity and validation.
	Cores    int
	MemoryMB int
	ClockGHz float64
	// Switch names the attachment switch.
	Switch string
	// LinkRate and LinkDelay describe the host link.
	LinkRate  int64
	LinkDelay sim.Time
	// Apps run on the host at simulation start.
	Apps []App
	// Fidelity is the desired simulation detail for this host; the
	// instantiation may override it wholesale.
	Fidelity core.Fidelity
	// OscDriftPPM/OscOffset configure the host clock for detailed hosts.
	OscDriftPPM float64
	OscOffset   sim.Time
}

// Switch describes one switch.
type Switch struct {
	Name string
	// TC enables the PTP transparent clock.
	TC bool
	// Dataplane optionally installs a programmable dataplane.
	Dataplane netsim.Dataplane
}

// Link describes a switch-to-switch link.
type Link struct {
	A, B  string
	Rate  int64
	Delay sim.Time
}

// System is the complete description of a simulated system.
type System struct {
	Hosts    []*Host
	Switches []*Switch
	Links    []Link
}

// AddHost appends a host and returns it for further configuration.
func (s *System) AddHost(name, swName string, rate int64, delay sim.Time) *Host {
	h := &Host{
		Name: name, Switch: swName, LinkRate: rate, LinkDelay: delay,
		Cores: 1, MemoryMB: 1024, ClockGHz: 4,
	}
	s.Hosts = append(s.Hosts, h)
	return h
}

// AddSwitch appends a switch and returns it.
func (s *System) AddSwitch(name string) *Switch {
	sw := &Switch{Name: name}
	s.Switches = append(s.Switches, sw)
	return sw
}

// Connect appends a switch-to-switch link.
func (s *System) Connect(a, b string, rate int64, delay sim.Time) {
	s.Links = append(s.Links, Link{A: a, B: b, Rate: rate, Delay: delay})
}

// HostByName returns the named host, or nil.
func (s *System) HostByName(name string) *Host {
	for _, h := range s.Hosts {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Validate checks the configuration for structural errors: duplicate
// names, dangling attachments, nonsensical rates or delays.
func (s *System) Validate() error {
	switches := make(map[string]bool, len(s.Switches))
	for _, sw := range s.Switches {
		if sw.Name == "" {
			return fmt.Errorf("config: switch with empty name")
		}
		if switches[sw.Name] {
			return fmt.Errorf("config: duplicate switch %q", sw.Name)
		}
		switches[sw.Name] = true
	}
	hosts := make(map[string]bool, len(s.Hosts))
	type ipOwner struct {
		name string
		auto bool
	}
	ips := make(map[proto.IP]ipOwner)
	for i, h := range s.Hosts {
		if h.Name == "" {
			return fmt.Errorf("config: host with empty name")
		}
		if hosts[h.Name] {
			return fmt.Errorf("config: duplicate host %q", h.Name)
		}
		hosts[h.Name] = true
		if !switches[h.Switch] {
			return fmt.Errorf("config: host %q attaches to unknown switch %q", h.Name, h.Switch)
		}
		if h.LinkRate <= 0 {
			return fmt.Errorf("config: host %q has non-positive link rate", h.Name)
		}
		if h.LinkDelay <= 0 {
			return fmt.Errorf("config: host %q has non-positive link delay", h.Name)
		}
		// Check the EFFECTIVE address: an unset IP auto-assigns from the host
		// index (autoIP), which can collide with an explicitly set one.
		ip, auto := h.IP, false
		if ip == 0 {
			ip, auto = proto.HostIP(uint32(i+1)), true
		}
		if other, dup := ips[ip]; dup {
			tag := func(a bool) string {
				if a {
					return " (auto-assigned)"
				}
				return ""
			}
			return fmt.Errorf("config: hosts %q%s and %q%s share IP %v",
				other.name, tag(other.auto), h.Name, tag(auto), ip)
		}
		ips[ip] = ipOwner{name: h.Name, auto: auto}
		if h.Cores <= 0 || h.MemoryMB <= 0 || h.ClockGHz <= 0 {
			return fmt.Errorf("config: host %q has invalid machine attributes", h.Name)
		}
	}
	for i, l := range s.Links {
		if !switches[l.A] || !switches[l.B] {
			return fmt.Errorf("config: link %d references unknown switch", i)
		}
		if l.A == l.B {
			return fmt.Errorf("config: link %d is a self loop on %q", i, l.A)
		}
		if l.Rate <= 0 || l.Delay <= 0 {
			return fmt.Errorf("config: link %d has invalid rate or delay", i)
		}
	}
	// Connectivity: every switch reachable from the first.
	if len(s.Switches) > 1 {
		adj := make(map[string][]string)
		for _, l := range s.Links {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
		seen := map[string]bool{s.Switches[0].Name: true}
		// Index-cursor BFS, the same idiom as netsim's route computation:
		// popping with queue = queue[1:] keeps the consumed prefix pinned in
		// the backing array while append keeps growing it past the consumed
		// slots, so large fabrics paid allocator churn just to validate.
		queue := []string{s.Switches[0].Name}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for _, sw := range s.Switches {
			if !seen[sw.Name] {
				return fmt.Errorf("config: switch %q unreachable from %q", sw.Name, s.Switches[0].Name)
			}
		}
	}
	return nil
}

// autoIP returns the host's address, deriving one when unset.
func (s *System) autoIP(h *Host) proto.IP {
	if h.IP != 0 {
		return h.IP
	}
	for i, other := range s.Hosts {
		if other == h {
			return proto.HostIP(uint32(i + 1))
		}
	}
	panic("config: host not in system")
}
