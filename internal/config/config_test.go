package config_test

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// smallSystem builds a 2-switch, 3-host system with a ping workload.
func smallSystem() (*config.System, *int, *[]sim.Time) {
	s := &config.System{}
	s.AddSwitch("sw0")
	s.AddSwitch("sw1")
	s.Connect("sw0", "sw1", 40*sim.Gbps, sim.Microsecond)

	received := new(int)
	rtts := new([]sim.Time)

	srv := s.AddHost("server", "sw1", 10*sim.Gbps, sim.Microsecond)
	srv.Apps = append(srv.Apps, config.AppFuncs{
		Protocol: func(h *netsim.Host) {
			h.BindUDP(7, func(src proto.IP, sport uint16, p []byte, _ int) {
				*received++
				h.SendUDP(src, 7, sport, p, 0)
			})
		},
		Detailed: func(h *hostsim.Host) {
			h.BindUDP(7, func(src proto.IP, sport uint16, p []byte, _ int) {
				*received++
				h.SendUDP(src, 7, sport, p, 0)
			})
		},
	})

	for i, name := range []string{"cli0", "cli1"} {
		c := s.AddHost(name, "sw0", 10*sim.Gbps, sim.Microsecond)
		_ = i
		c.Apps = append(c.Apps, config.AppFuncs{
			Protocol: func(h *netsim.Host) { pingLoop(h.Now, h.After, h.SendUDP, h.BindUDP, rtts) },
			Detailed: func(h *hostsim.Host) { pingLoop(h.Now, h.After, h.SendUDP, h.BindUDP, rtts) },
		})
	}
	return s, received, rtts
}

// pingLoop is tier-agnostic client logic over the shared socket shape.
func pingLoop(now func() sim.Time, after func(sim.Time, func()) *sim.Timer,
	send func(proto.IP, uint16, uint16, []byte, int),
	bind func(uint16, core.UDPHandler), rtts *[]sim.Time) {
	var sentAt sim.Time
	bind(8000, func(proto.IP, uint16, []byte, int) {
		*rtts = append(*rtts, now()-sentAt)
	})
	var tick func()
	tick = func() {
		sentAt = now()
		send(proto.HostIP(1), 8000, 7, nil, 64)
		after(500*sim.Microsecond, tick)
	}
	tick()
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		mutate func(*config.System)
		want   string
	}{
		{func(s *config.System) { s.AddSwitch("sw0") }, "duplicate switch"},
		{func(s *config.System) { s.AddHost("server", "sw0", sim.Gbps, sim.Microsecond) }, "duplicate host"},
		{func(s *config.System) { s.AddHost("x", "nope", sim.Gbps, sim.Microsecond) }, "unknown switch"},
		{func(s *config.System) { s.AddHost("x", "sw0", 0, sim.Microsecond) }, "link rate"},
		{func(s *config.System) { s.AddHost("x", "sw0", sim.Gbps, 0) }, "link delay"},
		{func(s *config.System) { s.Connect("sw0", "sw0", sim.Gbps, sim.Microsecond) }, "self loop"},
		{func(s *config.System) { s.Connect("sw0", "ghost", sim.Gbps, sim.Microsecond) }, "unknown switch"},
		{func(s *config.System) { s.AddSwitch("island") }, "unreachable"},
		{func(s *config.System) { s.Hosts[0].Cores = 0 }, "machine attributes"},
		{func(s *config.System) {
			s.Hosts[0].IP = proto.HostIP(9)
			s.Hosts[1].IP = proto.HostIP(9)
		}, "share IP"},
		// Host index 1 auto-assigns HostIP(2); an explicit HostIP(2) elsewhere
		// collides with it even though only one IP is set explicitly.
		{func(s *config.System) { s.Hosts[0].IP = proto.HostIP(2) }, "auto-assigned"},
		{func(s *config.System) { s.Hosts[2].IP = proto.HostIP(2) }, "auto-assigned"},
	}
	for _, c := range cases {
		s, _, _ := smallSystem()
		c.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want error containing %q, got %v", c.want, err)
		}
	}
}

func TestValidateOK(t *testing.T) {
	s, _, _ := smallSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiateProtocolLevel(t *testing.T) {
	s, received, rtts := smallSystem()
	inst, err := s.Instantiate(config.Choices{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cores() != 1 {
		t.Fatalf("protocol-level cores = %d, want 1", inst.Cores())
	}
	inst.RunSequential(10 * sim.Millisecond)
	if *received == 0 || len(*rtts) == 0 {
		t.Fatal("workload did not run")
	}
	// Protocol-level RTT: pure path latency.
	if (*rtts)[0] > 12*sim.Microsecond {
		t.Fatalf("protocol RTT %v unexpectedly high", (*rtts)[0])
	}
}

// TestSameSystemDifferentInstantiations is the paper's headline property:
// one system configuration, several simulation configurations.
func TestSameSystemDifferentInstantiations(t *testing.T) {
	// (a) everything protocol-level.
	s, _, protoRtts := smallSystem()
	inst, err := s.Instantiate(config.Choices{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst.RunSequential(10 * sim.Millisecond)

	// (b) the server detailed (mixed fidelity).
	s2, received2, mixedRtts := smallSystem()
	inst2, err := s2.Instantiate(config.Choices{
		Seed:             1,
		FidelityOverride: map[string]core.Fidelity{"server": core.Coarse},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Cores() != 3 { // net + host + nic
		t.Fatalf("mixed cores = %d, want 3", inst2.Cores())
	}
	if inst2.Detailed["server"] == nil || inst2.NetHosts["cli0"] == nil {
		t.Fatal("host registries incomplete")
	}
	inst2.RunSequential(10 * sim.Millisecond)
	if *received2 == 0 {
		t.Fatal("mixed-fidelity workload did not run")
	}

	// The detailed server adds stack latency the protocol level misses.
	if (*mixedRtts)[0] <= (*protoRtts)[0] {
		t.Fatalf("mixed RTT %v should exceed protocol RTT %v",
			(*mixedRtts)[0], (*protoRtts)[0])
	}

	// (c) partitioned network: one partition per switch, still one system.
	s3, received3, _ := smallSystem()
	inst3, err := s3.Instantiate(config.Choices{
		Seed:        1,
		PartitionOf: func(name string) int { return int(name[2] - '0') },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst3.Parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(inst3.Parts))
	}
	inst3.RunSequential(10 * sim.Millisecond)
	if *received3 == 0 {
		t.Fatal("partitioned workload did not run")
	}
}

func TestPartitionedCoupledRun(t *testing.T) {
	s, received, _ := smallSystem()
	inst, err := s.Instantiate(config.Choices{
		Seed:        1,
		PartitionOf: func(name string) int { return int(name[2] - '0') },
		FidelityOverride: map[string]core.Fidelity{
			"server": core.Coarse,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.RunCoupled(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if *received == 0 {
		t.Fatal("coupled partitioned run carried no traffic")
	}
}

// TestPartPlacementMatchesSequential runs one mixed-fidelity partitioned
// system sequentially and under several partition-level placements,
// asserting bit-identical workload results — the config-layer face of the
// placement determinism property.
func TestPartPlacementMatchesSequential(t *testing.T) {
	const end = 10 * sim.Millisecond
	build := func() (*config.Instance, *int, *[]sim.Time) {
		s, received, rtts := smallSystem()
		inst, err := s.Instantiate(config.Choices{
			Seed:             1,
			PartitionOf:      func(name string) int { return int(name[2] - '0') },
			FidelityOverride: map[string]core.Fidelity{"server": core.Coarse},
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst, received, rtts
	}

	refInst, refReceived, refRtts := build()
	refInst.RunSequential(end)
	if *refReceived == 0 {
		t.Fatal("reference run carried no traffic")
	}

	for _, tc := range []struct {
		name      string
		partGroup []int
		pair      bool
	}{
		{"split-parts", []int{0, 1}, false},
		{"split-parts-paired", []int{0, 1}, true},
		{"all-colocated", []int{0, 0}, true},
	} {
		inst, received, rtts := build()
		p, err := inst.PartPlacement(tc.name, tc.partGroup, tc.pair)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.RunPlaced(end, p); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if *received != *refReceived {
			t.Errorf("%s: received %d, sequential %d", tc.name, *received, *refReceived)
		}
		if len(*rtts) != len(*refRtts) {
			t.Fatalf("%s: %d rtts, sequential %d", tc.name, len(*rtts), len(*refRtts))
		}
		for i := range *rtts {
			if (*rtts)[i] != (*refRtts)[i] {
				t.Fatalf("%s: rtt %d = %v, sequential %v", tc.name, i, (*rtts)[i], (*refRtts)[i])
			}
		}
	}

	// Fully co-located with host/NIC pairing: one group, every channel a
	// zero-sync direct port.
	inst, _, _ := build()
	p, err := inst.PartPlacement("coloc", []int{0, 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := inst.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumGroups() != 1 {
		t.Fatalf("co-located plan has %d groups, want 1", pl.NumGroups())
	}
	for _, ch := range pl.Channels {
		if !ch.Intra {
			t.Errorf("co-located plan still couples channel %s", ch.Name)
		}
	}
}

func TestClockConfiguration(t *testing.T) {
	s, _, _ := smallSystem()
	s.HostByName("server").OscDriftPPM = 40
	s.HostByName("server").OscOffset = sim.Millisecond
	inst, err := s.Instantiate(config.Choices{
		Seed:             1,
		FidelityOverride: map[string]core.Fidelity{"server": core.Coarse},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := inst.Detailed["server"].Host
	if h.Clock.Osc.DriftPPM != 40 || h.Clock.Osc.Offset != sim.Millisecond {
		t.Fatal("oscillator configuration not applied")
	}
}

func TestHostByName(t *testing.T) {
	s, _, _ := smallSystem()
	if s.HostByName("server") == nil || s.HostByName("ghost") != nil {
		t.Fatal("HostByName broken")
	}
}
