package config

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/sim"
)

// Choices carries the instantiation decisions — everything about *how* to
// simulate, none of it about *what* is simulated. This is the paper's
// second step: one System can be instantiated many ways.
type Choices struct {
	// Seed drives all randomness.
	Seed uint64
	// DefaultFidelity applies to hosts whose Fidelity matches Unset.
	DefaultFidelity core.Fidelity
	// FidelityOverride forces a fidelity per host name (optional).
	FidelityOverride map[string]core.Fidelity
	// HostParams maps a fidelity tier to detailed-host parameters; nil
	// picks QemuParams/Gem5Params.
	HostParams func(f core.Fidelity) hostsim.Params
	// NICParams configures the NIC model for detailed hosts; the zero
	// value picks nicsim.DefaultParams with the host's link rate.
	NICParams *nicsim.Params
	// PartitionOf assigns each switch (by name) to a network partition;
	// nil leaves the whole network in one component.
	PartitionOf func(switchName string) int
	// Trunk multiplexes boundary links between the same partition pair
	// over one synchronized channel (the trunk adapter). Default true.
	NoTrunk bool
}

// Instance is a runnable instantiation. Sim is a regular orchestration
// configuration — callers can keep wiring onto it by hand, exactly as the
// paper lets users modify the emitted SimBricks configuration.
type Instance struct {
	Sim *orch.Simulation
	// Parts holds the network partition components.
	Parts []*netsim.Network
	// NetHosts maps protocol-level host names to their simulated hosts.
	NetHosts map[string]*netsim.Host
	// Detailed maps detailed host names to their host+NIC pairs.
	Detailed map[string]*instantiate.DetailedHost
	// Built exposes the underlying topology build.
	Built *netsim.Built

	hostSlot map[string]int // host name → topology slot, for placement math
}

// fidelityOf resolves a host's effective fidelity under the choices.
func (c Choices) fidelityOf(h *Host) core.Fidelity {
	if f, ok := c.FidelityOverride[h.Name]; ok {
		return f
	}
	if h.Fidelity != core.ProtocolLevel {
		return h.Fidelity
	}
	return c.DefaultFidelity
}

// Instantiate validates the system and assembles the simulation.
func (s *System) Instantiate(c Choices) (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}

	// Translate to the topology layer.
	topo := &netsim.Topology{}
	swIdx := make(map[string]int, len(s.Switches))
	for _, sw := range s.Switches {
		swIdx[sw.Name] = topo.AddSwitch(sw.Name)
		topo.Switches[swIdx[sw.Name]].TC = sw.TC
	}
	hostSlot := make(map[string]int, len(s.Hosts))
	for _, h := range s.Hosts {
		slot := topo.AddHost(h.Name, s.autoIP(h), swIdx[h.Switch], h.LinkRate, h.LinkDelay)
		hostSlot[h.Name] = slot
		if c.fidelityOf(h) != core.ProtocolLevel {
			topo.MakeExternal(slot)
		}
	}
	for _, l := range s.Links {
		topo.AddLink(swIdx[l.A], swIdx[l.B], l.Rate, l.Delay)
	}

	var assign []int
	if c.PartitionOf != nil {
		assign = make([]int, len(topo.Switches))
		for _, sw := range s.Switches {
			p := c.PartitionOf(sw.Name)
			if p < 0 {
				return nil, fmt.Errorf("config: negative partition for switch %q", sw.Name)
			}
			assign[swIdx[sw.Name]] = p
		}
	}

	built := topo.Build("net", c.Seed, assign, nil)
	inst := &Instance{
		Sim:      orch.New(),
		Parts:    built.Parts,
		NetHosts: make(map[string]*netsim.Host),
		Detailed: make(map[string]*instantiate.DetailedHost),
		Built:    built,
		hostSlot: hostSlot,
	}
	instantiate.WirePartitions(inst.Sim, topo, built, !c.NoTrunk)

	// Install dataplanes.
	for _, sw := range s.Switches {
		if sw.Dataplane != nil {
			built.Switches[swIdx[sw.Name]].Dataplane = sw.Dataplane
		}
	}

	// Hosts: protocol-level apps bind directly; detailed hosts get a
	// host+NIC pair wired to their external port.
	hostParams := c.HostParams
	if hostParams == nil {
		hostParams = func(f core.Fidelity) hostsim.Params {
			if f == core.Detailed {
				return hostsim.Gem5Params()
			}
			return hostsim.QemuParams()
		}
	}
	for _, h := range s.Hosts {
		slot := hostSlot[h.Name]
		fid := c.fidelityOf(h)
		if fid == core.ProtocolLevel {
			nh := built.Hosts[slot]
			inst.NetHosts[h.Name] = nh
			if apps := h.Apps; len(apps) > 0 {
				nh.SetApp(netsim.AppFunc(func(hh *netsim.Host) {
					for _, a := range apps {
						a.RunProtocol(hh)
					}
				}))
			}
			continue
		}
		np := nicsim.DefaultParams()
		np.Rate = h.LinkRate
		if c.NICParams != nil {
			np = *c.NICParams
		}
		dh := instantiate.NewDetailedHost(h.Name, topo.Hosts[slot].IP,
			hostParams(fid), np, c.Seed^uint64(slot+1))
		if h.Cores > 1 {
			dh.Host.SetCores(h.Cores)
		}
		if h.OscDriftPPM != 0 || h.OscOffset != 0 {
			dh.Host.Clock.Osc = hostsim.Oscillator{
				Offset: h.OscOffset, DriftPPM: h.OscDriftPPM,
			}
		}
		for _, app := range h.Apps {
			app := app
			dh.Host.AddApp(hostsim.AppFunc(func(hh *hostsim.Host) { app.RunDetailed(hh) }))
		}
		dh.Wire(inst.Sim, built.Parts[built.HostPart[slot]], built.Exts[slot])
		inst.Detailed[h.Name] = dh
	}
	return inst, nil
}

// RunSequential executes the instance until end on one scheduler.
func (i *Instance) RunSequential(end sim.Time) *sim.Scheduler {
	return i.Sim.RunSequential(end)
}

// RunCoupled executes the instance with one goroutine per component.
func (i *Instance) RunCoupled(end sim.Time) error {
	return i.Sim.RunCoupled(end)
}

// RunPlaced executes the instance coupled under the given placement.
func (i *Instance) RunPlaced(end sim.Time, p decomp.Placement) error {
	return i.Sim.RunPlaced(end, p)
}

// RunParallel executes the instance under the given placement with the
// multi-core executor (pinned OS threads, batched sync windows).
// Bit-identical to RunSequential and RunPlaced.
func (i *Instance) RunParallel(end sim.Time, p decomp.Placement) error {
	return i.Sim.RunParallel(end, p)
}

// Plan resolves a placement against the instance's simulation.
func (i *Instance) Plan(p decomp.Placement) (*orch.ExecutionPlan, error) {
	return i.Sim.Plan(p)
}

// PartPlacement turns a per-partition group assignment — e.g. a coarse
// decomp.Strategy assignment lifted onto the built partitions with
// decomp.Coarsen — into a placement over ALL of the instance's components:
// partition i joins group partGroup[i], and each detailed host rides with
// the partition that owns its external port (host, NIC, and attachment
// partition co-locate, so the chatty PCI and Ethernet channels degrade to
// direct ports whenever the partition group allows it). With pairHostNIC
// false, detailed hosts and NICs instead get fresh per-component groups.
func (i *Instance) PartPlacement(name string, partGroup []int, pairHostNIC bool) (decomp.Placement, error) {
	if len(partGroup) != len(i.Parts) {
		return decomp.Placement{}, fmt.Errorf("config: %d part groups for %d partitions",
			len(partGroup), len(i.Parts))
	}
	groupOf := make(map[core.Component]int, len(i.Parts))
	for pi, part := range i.Parts {
		groupOf[part] = partGroup[pi]
	}
	if pairHostNIC {
		for name, dh := range i.Detailed {
			slot := i.hostSlot[name]
			g := partGroup[i.Built.HostPart[slot]]
			groupOf[dh.Host] = g
			groupOf[dh.NIC] = g
		}
	}
	return decomp.Placement{Name: name, Groups: instantiate.ComponentGroups(i.Sim, groupOf)}, nil
}

// Cores returns the component count (the paper's core accounting).
func (i *Instance) Cores() int { return i.Sim.NumComponents() }
