package profiler

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/link"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func mkSample(simName string, wall uint64, virt sim.Time, peer string, wait, proc uint64, txd uint64) Sample {
	return Sample{
		Sim: simName, WallNs: wall, Virt: virt,
		Adapters: []AdapterSample{{
			Label: simName + ".a", Peer: peer,
			Counters: link.Counters{WaitNanos: wait, ProcNanos: proc, PeakDepth: txd + 3, TxData: txd, TxSync: txd, RxData: txd, RxSync: txd},
		}},
	}
}

func twoSimSamples() []Sample {
	// Simulator "fast" waits a lot on "slow"; "slow" never waits.
	return []Sample{
		mkSample("fast", 0, 0, "slow", 0, 0, 0),
		mkSample("slow", 0, 0, "fast", 0, 0, 0),
		mkSample("fast", 1_000_000, 1*sim.Millisecond, "slow", 800_000, 50_000, 100),
		mkSample("slow", 1_000_000, 1*sim.Millisecond, "fast", 10_000, 100_000, 100),
		mkSample("fast", 2_000_000, 2*sim.Millisecond, "slow", 1_600_000, 100_000, 200),
		mkSample("slow", 2_000_000, 2*sim.Millisecond, "fast", 20_000, 200_000, 200),
	}
}

func TestAnalyze(t *testing.T) {
	a, err := Analyze(twoSimSamples(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2ms virtual over 2ms wall => speed 1.0.
	if a.SimSpeed < 0.99 || a.SimSpeed > 1.01 {
		t.Fatalf("SimSpeed = %v, want ~1.0", a.SimSpeed)
	}
	if len(a.Sims) != 2 {
		t.Fatalf("got %d sims", len(a.Sims))
	}
	// Bottleneck ("slow", low wait) sorts first.
	if a.Sims[0].Name != "slow" {
		t.Fatalf("first (bottleneck) sim = %s, want slow", a.Sims[0].Name)
	}
	if w := a.Sims[1].WaitFrac; w < 0.75 || w > 0.85 {
		t.Fatalf("fast WaitFrac = %v, want ~0.8", w)
	}
	if e := a.Sims[1].Efficiency; e < 0.1 || e > 0.2 {
		t.Fatalf("fast Efficiency = %v, want ~0.155", e)
	}
	b := a.Bottlenecks(0.15)
	if len(b) != 1 || b[0] != "slow" {
		t.Fatalf("Bottlenecks = %v, want [slow]", b)
	}
	if !strings.Contains(a.String(), "simulation speed") {
		t.Fatal("String() missing header")
	}
}

func TestAnalyzeWarmupDrop(t *testing.T) {
	ss := twoSimSamples()
	// Pollute the first sample pair with absurd counters; dropping warm-up
	// lines must hide them.
	ss[0].Adapters[0].WaitNanos = 0
	a1, err := Analyze(ss, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After dropping one warm-up sample, diffs run sample2-sample1.
	if w := a1.Sims[1].WaitFrac; w < 0.75 || w > 0.85 {
		t.Fatalf("WaitFrac after warmup drop = %v", w)
	}
	if _, err := Analyze(ss, 2, 1); err == nil {
		t.Fatal("expected error when drops consume all samples")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 0, 0); err == nil {
		t.Fatal("empty samples should error")
	}
}

func TestLogRoundTrip(t *testing.T) {
	c := NewCollector()
	for _, s := range twoSimSamples() {
		c.Add(s)
	}
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseLog(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 6 {
		t.Fatalf("parsed %d samples, want 6", len(parsed))
	}
	a1, err := Analyze(parsed, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Analyze(c.Samples(), 0, 0)
	if a1.String() != a2.String() {
		t.Fatalf("round trip changed analysis:\n%s\nvs\n%s", a1, a2)
	}
}

func TestLogRoundTripProperty(t *testing.T) {
	f := func(wait, proc, txd uint16, virtMs uint8) bool {
		c := NewCollector()
		c.Add(mkSample("x", 5, sim.Time(virtMs)*sim.Millisecond, "y",
			uint64(wait), uint64(proc), uint64(txd)))
		var b strings.Builder
		if _, err := c.WriteTo(&b); err != nil {
			return false
		}
		got, err := ParseLog(strings.NewReader(b.String()))
		if err != nil || len(got) != 1 {
			return false
		}
		want := c.Samples()[0]
		g := got[0]
		return g.Sim == want.Sim && g.WallNs == want.WallNs && g.Virt == want.Virt &&
			len(g.Adapters) == 1 && g.Adapters[0] == want.Adapters[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseLogIgnoresForeignLines(t *testing.T) {
	in := "random log line\nsplitsim-prof sim=a wall=1 virt=2\nanother\n"
	got, err := ParseLog(strings.NewReader(in))
	if err != nil || len(got) != 1 || got[0].Sim != "a" {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestLogRoundTripSpec(t *testing.T) {
	// spec= counters (optimistic execution) survive the log round trip on
	// both line forms — with and without adapters — and their absence parses
	// as an inactive speculative state.
	c := NewCollector()
	withEp := mkSample("opt", 7, 3*sim.Millisecond, "peer", 1, 2, 3)
	withEp.SpecActive = true
	withEp.Spec = link.SpecCounters{Snapshots: 11, Rollbacks: 2, Leaps: 40, Replayed: 9, WastedNanos: 1234}
	bare := Sample{Sim: "bare", WallNs: 8, Virt: 4 * sim.Millisecond,
		SpecActive: true, Spec: link.SpecCounters{Leaps: 7}}
	cons := mkSample("cons", 9, 5*sim.Millisecond, "peer", 0, 0, 0)
	c.Add(withEp)
	c.Add(bare)
	c.Add(cons)
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "spec=11:2:40:9:1234") {
		t.Fatalf("missing spec field in log:\n%s", b.String())
	}
	got, err := ParseLog(strings.NewReader(b.String()))
	if err != nil || len(got) != 3 {
		t.Fatalf("got %d samples err %v", len(got), err)
	}
	if !got[0].SpecActive || got[0].Spec != withEp.Spec {
		t.Fatalf("spec with adapters = %+v active=%v", got[0].Spec, got[0].SpecActive)
	}
	if !got[1].SpecActive || got[1].Spec != bare.Spec {
		t.Fatalf("spec bare = %+v active=%v", got[1].Spec, got[1].SpecActive)
	}
	if got[2].SpecActive {
		t.Fatal("conservative sample parsed as speculative")
	}
}

func TestParseLogWithoutDepthField(t *testing.T) {
	// Logs written before the depth= field existed must still parse, with a
	// zero peak depth.
	in := "splitsim-prof sim=a wall=1 virt=2 ep=a.x peer=b wait=3 proc=4 txd=5 txs=6 rxd=7 rxs=8\n"
	got, err := ParseLog(strings.NewReader(in))
	if err != nil || len(got) != 1 || len(got[0].Adapters) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
	a := got[0].Adapters[0]
	if a.PeakDepth != 0 || a.WaitNanos != 3 || a.RxSync != 8 {
		t.Fatalf("adapter = %+v", a)
	}
}

func TestWTPG(t *testing.T) {
	a, err := Analyze(twoSimSamples(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildWTPG(a)
	if len(g.Nodes) != 2 || len(g.Edges) != 2 {
		t.Fatalf("graph %d nodes %d edges", len(g.Nodes), len(g.Edges))
	}
	dot := g.DOT()
	for _, want := range []string{"digraph wtpg", `"fast" -> "slow"`, `"slow" -> "fast"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	txt := g.Render()
	// slow is the bottleneck: listed first with a marker.
	lines := strings.Split(txt, "\n")
	if len(lines) < 3 || !strings.Contains(lines[1], "slow") || !strings.HasPrefix(lines[1], "*") {
		t.Fatalf("Render should list slow first as bottleneck:\n%s", txt)
	}
}

func TestColorGradient(t *testing.T) {
	if color(0) != "#ff0040" {
		t.Fatalf("color(0) = %s, want pure red", color(0))
	}
	if color(1) != "#00ff40" {
		t.Fatalf("color(1) = %s, want pure green", color(1))
	}
	mid := color(0.5)
	if mid != "#ffff40" {
		t.Fatalf("color(0.5) = %s, want yellow", mid)
	}
}

func TestTransportLogRoundTrip(t *testing.T) {
	c := NewCollector()
	for _, s := range twoSimSamples() {
		c.Add(s)
	}
	ts := TransportSample{Name: "client", Counters: proxy.Counters{
		Dials: 3, DialFailures: 1, Reconnects: 2,
		FramesTx: 100, FramesRx: 90, BytesTx: 5000, BytesRx: 4500,
		HeartbeatsTx: 7, HeartbeatsRx: 6, AcksTx: 4, AcksRx: 5,
		Retransmits: 11, Corrupt: 1, BackoffNanos: 123456789,
	}}
	c.AddTransport(ts)
	c.AddTransport(TransportSample{Name: "server"})
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	samples, transports, err := ParseLogFull(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("parsed %d samples, want 6", len(samples))
	}
	if len(transports) != 2 || transports[0] != ts || transports[1].Name != "server" {
		t.Fatalf("transport round trip changed: %+v", transports)
	}
	// The old entry point still works and skips transport lines.
	only, err := ParseLog(strings.NewReader(b.String()))
	if err != nil || len(only) != 6 {
		t.Fatalf("ParseLog on mixed log: %d samples, err %v", len(only), err)
	}
}
