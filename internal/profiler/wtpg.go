package profiler

import (
	"fmt"
	"sort"
	"strings"
)

// WTPG is the wait-time-profile graph: a node per simulator instance and a
// directed edge per channel direction, annotated with the fraction of
// cycles the source spent waiting for the destination. Nodes are colored
// from red (rarely waits — probable bottleneck) to green (mostly waits).
type WTPG struct {
	Nodes []WNode
	Edges []WEdge
}

// WNode is one simulator instance.
type WNode struct {
	Name     string
	WaitFrac float64
}

// WEdge annotates "From spent WaitFrac of its cycles waiting for To".
type WEdge struct {
	From, To string
	WaitFrac float64
}

// BuildWTPG constructs the graph from a post-processed analysis.
func BuildWTPG(a *Analysis) *WTPG {
	g := &WTPG{}
	for _, s := range a.Sims {
		g.Nodes = append(g.Nodes, WNode{Name: s.Name, WaitFrac: s.WaitFrac})
		for _, e := range s.Edges {
			if e.Peer == "" {
				continue
			}
			g.Edges = append(g.Edges, WEdge{From: s.Name, To: e.Peer, WaitFrac: e.WaitFrac})
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Name < g.Nodes[j].Name })
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].From != g.Edges[j].From {
			return g.Edges[i].From < g.Edges[j].From
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	return g
}

// color maps a wait fraction to a red->yellow->green fill color.
func color(waitFrac float64) string {
	f := clamp01(waitFrac)
	var r, g int
	if f < 0.5 {
		r = 255
		g = int(2 * f * 255)
	} else {
		r = int(2 * (1 - f) * 255)
		g = 255
	}
	return fmt.Sprintf("#%02x%02x40", r, g)
}

// DOT renders the graph in Graphviz format, nodes colored by wait
// fraction (red = bottleneck) and edges labeled with waiting percentages,
// matching the paper's Fig. 10 output.
func (g *WTPG) DOT() string {
	var b strings.Builder
	b.WriteString("digraph wtpg {\n")
	b.WriteString("  rankdir=LR;\n  node [style=filled, shape=box, fontname=\"sans\"];\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %q [fillcolor=%q, label=\"%s\\nwait %.0f%%\"];\n",
			n.Name, color(n.WaitFrac), n.Name, n.WaitFrac*100)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.0f%%\"];\n", e.From, e.To, e.WaitFrac*100)
	}
	b.WriteString("}\n")
	return b.String()
}

// Render returns a plain-text view: nodes sorted by wait fraction
// ascending (bottlenecks first), with their outgoing waiting edges.
func (g *WTPG) Render() string {
	nodes := append([]WNode(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].WaitFrac != nodes[j].WaitFrac {
			return nodes[i].WaitFrac < nodes[j].WaitFrac
		}
		return nodes[i].Name < nodes[j].Name
	})
	var b strings.Builder
	b.WriteString("wait-time profile (bottlenecks first):\n")
	for _, n := range nodes {
		marker := " "
		if n.WaitFrac < 0.15 {
			marker = "*" // probable bottleneck
		}
		fmt.Fprintf(&b, "%s %-24s wait %5.1f%%", marker, n.Name, n.WaitFrac*100)
		var outs []string
		for _, e := range g.Edges {
			if e.From == n.Name && e.WaitFrac >= 0.005 {
				outs = append(outs, fmt.Sprintf("%s:%.0f%%", e.To, e.WaitFrac*100))
			}
		}
		if len(outs) > 0 {
			fmt.Fprintf(&b, "  waits-on[%s]", strings.Join(outs, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
