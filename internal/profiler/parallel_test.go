package profiler

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/sim"
)

// TestParallelProfilingRace is the parallel-executor audit for the
// profiler's sampled timing: four runner groups, pinned to OS threads with
// GOMAXPROCS >= 4 and batched horizon windows, each sampling its own
// ProcNanos/WaitNanos epochs through an attached Collector while the
// endpoint counters (Tx/Rx/Proc/Wait/PeakDepth) tick on both sides of every
// channel. Run with -race: the epoch state (procTick/waitTick) is
// per-Runner and the endpoint counters are single-writer (the owning
// runner), and this test is the proof that stays true when the runners are
// genuinely concurrent. The post-run Counters()/Samples() aggregation
// happens-after the group's WaitGroup, so reading it here is also part of
// the contract under test.
//
// (The profiler package cannot import orch — orch imports decomp which
// imports profiler — so the group is built on the link fabric directly,
// exactly as orch's executor does.)
func TestParallelProfilingRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	c := NewCollector()
	g := &link.Group{}
	const n = 4
	runners := make([]*link.Runner, n)
	for i := 0; i < n; i++ {
		runners[i] = link.NewRunner(fmt.Sprintf("p%d", i), sim.NewScheduler(int32(i+1)))
		runners[i].SetBatchWindows(true)
	}
	// Ring of channels so every runner synchronizes with two peers, plus
	// periodic traffic so Proc/Wait sampling sees real work.
	for i := 0; i < n; i++ {
		ch := link.NewChannel(fmt.Sprintf("c%d", i), 2*sim.Microsecond, 0)
		a, b := ch.SideA(), ch.SideB()
		runners[i].Attach(a)
		runners[(i+1)%n].Attach(b)
		a.SetSink(0, int32(100+i), core.SinkFunc(func(sim.Time, core.Message) {}))
		b.SetSink(0, int32(200+i), core.SinkFunc(func(sim.Time, core.Message) {}))
		sched := runners[i].Scheduler()
		var tick func()
		tick = func() {
			a.Send(pingMsg{})
			sched.After(5*sim.Microsecond, tick)
		}
		sched.After(sim.Microsecond, tick)
		g.Add(runners[i])
	}
	c.Attach(g, 20*sim.Microsecond)

	if err := g.RunPinned(2*sim.Millisecond, n); err != nil {
		t.Fatal(err)
	}

	if len(c.Samples()) == 0 {
		t.Fatal("no samples collected from pinned parallel run")
	}
	for i, r := range runners {
		cnt := r.Counters()
		if cnt.TxData == 0 || cnt.RxData == 0 || cnt.TxSync == 0 {
			t.Fatalf("runner %d counters: %+v — no traffic counted", i, cnt)
		}
	}
}

type pingMsg struct{}

func (pingMsg) Size() int { return 16 }
