// Package profiler implements SplitSim's lightweight synchronization and
// communication profiler. Each channel adapter already counts cycles
// blocked waiting for synchronization, messages sent, and messages
// processed (package link); the profiler periodically samples those
// counters together with wall-clock and virtual time, and a post-processing
// pass turns the samples into the paper's two outputs:
//
//   - global simulation speed and per-simulator efficiency, and
//   - the wait-time-profile graph (WTPG), which annotates "who waits for
//     whom" and colors probable bottlenecks red.
//
// The same post-processing also accepts modeled profiles produced by the
// decomposition performance model (package decomp), so WTPGs can be
// generated deterministically from sequential experiment runs.
package profiler

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// TransportSample is one scale-out proxy transport's counter snapshot —
// the wall-clock layer underneath the virtual-time adapters. Distributed
// runs attach one per supervisor so a profile shows both what the
// simulation waited for (adapter counters) and what the wire did to cause
// it (reconnects, retransmits, backoff time).
type TransportSample struct {
	Name string // supervisor label ("client", "site0", ...)
	proxy.Counters
}

// AdapterSample is one adapter's counter snapshot.
type AdapterSample struct {
	Label string // endpoint label ("chan.a")
	Peer  string // peer simulator name
	link.Counters
}

// Sample is one periodic snapshot for one simulator component.
type Sample struct {
	Sim    string
	WallNs uint64
	Virt   sim.Time
	// Frames is the number of pooled frames live (taken from pools, not
	// yet released) across the runner's components at sample time — the
	// packet-path leak indicator.
	Frames uint64
	// SpecActive reports that the runner executes optimistically
	// (orch.RunOptimistic); Spec then carries its speculation counters —
	// snapshots, rollbacks, GVT leaps, replayed deliveries, wasted nanos —
	// as of sample time.
	SpecActive bool
	Spec       link.SpecCounters
	Adapters   []AdapterSample
}

// Collector gathers samples from a coupled run.
type Collector struct {
	mu         sync.Mutex
	samples    []Sample
	transports []TransportSample
	start      time.Time
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{start: time.Now()} }

// Attach schedules periodic sampling (every interval of virtual time) on
// every runner in the group. Call from orch.Simulation.PreRun, i.e. after
// wiring and before execution. Samples are appended from each runner's own
// goroutine, so in a coupled run many runners sample concurrently; a small
// critical section guards the shared slice.
func (c *Collector) Attach(g *link.Group, interval sim.Time) {
	for _, r := range g.Runners {
		r := r
		var tick func()
		tick = func() {
			s := Sample{
				Sim:    r.Name(),
				WallNs: uint64(time.Since(c.start).Nanoseconds()),
				Virt:   r.Scheduler().Now(),
			}
			for _, comp := range r.Components() {
				if fp, ok := comp.(core.FramePooler); ok {
					s.Frames += fp.FrameStats().Live
				}
			}
			if cnt, _, active := r.SpecStats(); active {
				s.SpecActive = true
				s.Spec = cnt
			}
			for _, e := range r.Endpoints() {
				s.Adapters = append(s.Adapters, AdapterSample{
					Label:    e.Label(),
					Peer:     e.PeerRunnerName(),
					Counters: e.Stats,
				})
			}
			c.mu.Lock()
			c.samples = append(c.samples, s)
			c.mu.Unlock()
			r.Scheduler().PostSrc(r.Scheduler().Now()+interval, -1, tick)
		}
		r.Scheduler().PostSrc(interval, -1, tick)
	}
}

// Samples returns everything collected so far. Call after the run ends.
func (c *Collector) Samples() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.samples...)
}

// Add appends a sample directly (used by tests and modeled profiles). It is
// safe to call concurrently with Attach-driven sampling.
func (c *Collector) Add(s Sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// AddTransport appends a transport counter snapshot; distributed harnesses
// call it once per supervisor after the run ends.
func (c *Collector) AddTransport(ts TransportSample) {
	c.mu.Lock()
	c.transports = append(c.transports, ts)
	c.mu.Unlock()
}

// Transports returns the attached transport snapshots.
func (c *Collector) Transports() []TransportSample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TransportSample(nil), c.transports...)
}

// WriteTo emits the samples as text log lines, one adapter per line:
//
//	splitsim-prof sim=<name> wall=<ns> virt=<ps> frames=<n>
//	  [spec=<snaps>:<rolls>:<leaps>:<replays>:<wastedns>] ep=<label>
//	  peer=<sim> wait=<ns> proc=<ns> depth=<n> txd=<n> txs=<n> rxd=<n> rxs=<n>
//
// The spec= field appears only for optimistically executed runners.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, s := range c.Samples() {
		spec := ""
		if s.SpecActive {
			spec = fmt.Sprintf(" spec=%d:%d:%d:%d:%d", s.Spec.Snapshots, s.Spec.Rollbacks,
				s.Spec.Leaps, s.Spec.Replayed, s.Spec.WastedNanos)
		}
		if len(s.Adapters) == 0 {
			n, err := fmt.Fprintf(w, "splitsim-prof sim=%s wall=%d virt=%d frames=%d%s\n",
				s.Sim, s.WallNs, int64(s.Virt), s.Frames, spec)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		for _, a := range s.Adapters {
			n, err := fmt.Fprintf(w,
				"splitsim-prof sim=%s wall=%d virt=%d frames=%d%s ep=%s peer=%s wait=%d proc=%d depth=%d txd=%d txs=%d rxd=%d rxs=%d\n",
				s.Sim, s.WallNs, int64(s.Virt), s.Frames, spec, a.Label, a.Peer,
				a.WaitNanos, a.ProcNanos, a.PeakDepth, a.TxData, a.TxSync, a.RxData, a.RxSync)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	for _, ts := range c.Transports() {
		n, err := fmt.Fprintf(w,
			"splitsim-prof transport=%s dials=%d dialfail=%d reconn=%d ftx=%d frx=%d btx=%d brx=%d hbtx=%d hbrx=%d acktx=%d ackrx=%d retx=%d corrupt=%d backoff=%d\n",
			ts.Name, ts.Dials, ts.DialFailures, ts.Reconnects,
			ts.FramesTx, ts.FramesRx, ts.BytesTx, ts.BytesRx,
			ts.HeartbeatsTx, ts.HeartbeatsRx, ts.AcksTx, ts.AcksRx,
			ts.Retransmits, ts.Corrupt, ts.BackoffNanos)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseLog reads log lines written by WriteTo, reassembling samples (lines
// sharing sim+wall+virt merge into one sample). Transport lines are
// skipped; use ParseLogFull to recover them too.
func ParseLog(r io.Reader) ([]Sample, error) {
	samples, _, err := ParseLogFull(r)
	return samples, err
}

// ParseLogFull reads log lines written by WriteTo, reassembling both the
// per-simulator samples and the transport counter lines.
func ParseLogFull(r io.Reader) ([]Sample, []TransportSample, error) {
	var out []Sample
	var transports []TransportSample
	idx := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "splitsim-prof ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		kv := make(map[string]string, len(fields))
		for _, f := range fields {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, nil, fmt.Errorf("profiler: bad field %q", f)
			}
			kv[k] = v
		}
		if name, isTransport := kv["transport"]; isTransport {
			ts := TransportSample{Name: name}
			for _, f := range []struct {
				name string
				dst  *uint64
			}{
				{"dials", &ts.Dials}, {"dialfail", &ts.DialFailures},
				{"reconn", &ts.Reconnects},
				{"ftx", &ts.FramesTx}, {"frx", &ts.FramesRx},
				{"btx", &ts.BytesTx}, {"brx", &ts.BytesRx},
				{"hbtx", &ts.HeartbeatsTx}, {"hbrx", &ts.HeartbeatsRx},
				{"acktx", &ts.AcksTx}, {"ackrx", &ts.AcksRx},
				{"retx", &ts.Retransmits}, {"corrupt", &ts.Corrupt},
				{"backoff", &ts.BackoffNanos},
			} {
				if _, err := fmt.Sscanf(kv[f.name], "%d", f.dst); err != nil {
					return nil, nil, fmt.Errorf("profiler: bad %s %q", f.name, kv[f.name])
				}
			}
			transports = append(transports, ts)
			continue
		}
		var s Sample
		s.Sim = kv["sim"]
		if _, err := fmt.Sscanf(kv["wall"], "%d", &s.WallNs); err != nil {
			return nil, nil, fmt.Errorf("profiler: bad wall %q", kv["wall"])
		}
		var virt int64
		if _, err := fmt.Sscanf(kv["virt"], "%d", &virt); err != nil {
			return nil, nil, fmt.Errorf("profiler: bad virt %q", kv["virt"])
		}
		s.Virt = sim.Time(virt)
		// frames= was added after the first log format; logs written before
		// it parse with a zero frame count.
		if v, hasFrames := kv["frames"]; hasFrames {
			if _, err := fmt.Sscanf(v, "%d", &s.Frames); err != nil {
				return nil, nil, fmt.Errorf("profiler: bad frames %q", v)
			}
		}
		// spec= appears only on lines from optimistically executed runners;
		// its absence (conservative runs, older logs) parses as inactive.
		if v, hasSpec := kv["spec"]; hasSpec {
			if _, err := fmt.Sscanf(v, "%d:%d:%d:%d:%d", &s.Spec.Snapshots, &s.Spec.Rollbacks,
				&s.Spec.Leaps, &s.Spec.Replayed, &s.Spec.WastedNanos); err != nil {
				return nil, nil, fmt.Errorf("profiler: bad spec %q", v)
			}
			s.SpecActive = true
		}
		key := fmt.Sprintf("%s/%d/%d", s.Sim, s.WallNs, virt)
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, s)
		}
		out[i].Frames = s.Frames
		out[i].SpecActive = s.SpecActive
		out[i].Spec = s.Spec
		if ep, hasEp := kv["ep"]; hasEp {
			a := AdapterSample{Label: ep, Peer: kv["peer"]}
			parse := func(name string, dst *uint64) error {
				if _, err := fmt.Sscanf(kv[name], "%d", dst); err != nil {
					return fmt.Errorf("profiler: bad %s %q", name, kv[name])
				}
				return nil
			}
			for _, f := range []struct {
				name string
				dst  *uint64
			}{
				{"wait", &a.WaitNanos}, {"proc", &a.ProcNanos},
				{"txd", &a.TxData}, {"txs", &a.TxSync},
				{"rxd", &a.RxData}, {"rxs", &a.RxSync},
			} {
				if err := parse(f.name, f.dst); err != nil {
					return nil, nil, err
				}
			}
			// depth= was added after the first log format; logs written
			// before it parse with a zero peak depth.
			if _, hasDepth := kv["depth"]; hasDepth {
				if err := parse("depth", &a.PeakDepth); err != nil {
					return nil, nil, err
				}
			}
			out[i].Adapters = append(out[i].Adapters, a)
		}
	}
	return out, transports, sc.Err()
}
