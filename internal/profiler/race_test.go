package profiler

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/sim"
)

// TestCollectorConcurrentAddAndAttach drives Attach-based sampling from a
// real coupled run while another goroutine calls Add — the pattern an
// experiment harness hits when it merges modeled samples into a live
// collector. Run with -race: before Add took the collector mutex this was a
// data race on the samples slice.
func TestCollectorConcurrentAddAndAttach(t *testing.T) {
	c := NewCollector()
	g := &link.Group{}
	const n = 4
	runners := make([]*link.Runner, n)
	for i := 0; i < n; i++ {
		runners[i] = link.NewRunner(fmt.Sprintf("r%d", i), sim.NewScheduler(int32(i+1)))
	}
	// Ring of channels so every runner has peers to synchronize with.
	for i := 0; i < n; i++ {
		ch := link.NewChannel(fmt.Sprintf("c%d", i), 500*sim.Nanosecond, 0)
		runners[i].Attach(ch.SideA())
		runners[(i+1)%n].Attach(ch.SideB())
		ch.SideA().SetSink(0, int32(100+i), core.SinkFunc(func(sim.Time, core.Message) {}))
		ch.SideB().SetSink(0, int32(200+i), core.SinkFunc(func(sim.Time, core.Message) {}))
		g.Add(runners[i])
	}
	c.Attach(g, 10*sim.Microsecond)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Add(Sample{Sim: "modeled", WallNs: uint64(i), Virt: sim.Time(i)})
		}
	}()
	if err := g.Run(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	<-done

	var modeled, live int
	for _, s := range c.Samples() {
		if s.Sim == "modeled" {
			modeled++
		} else {
			live++
		}
	}
	if modeled != 1000 {
		t.Fatalf("modeled samples = %d, want 1000", modeled)
	}
	if live == 0 {
		t.Fatal("no Attach-driven samples collected")
	}
}
