package profiler

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// EdgeProfile is one directed waiting relation: this simulator spent
// WaitFrac of its wall time blocked on Peer.
type EdgeProfile struct {
	Peer     string
	WaitFrac float64
}

// SimProfile is the per-simulator result of post-processing.
type SimProfile struct {
	Name string
	// WaitFrac is the fraction of wall time spent blocked on peers.
	WaitFrac float64
	// Efficiency is the fraction of cycles not spent on adapter work
	// (receive, transmit, synchronization) — the paper's efficiency metric
	// for judging when further parallelization hits diminishing returns.
	Efficiency float64
	// Edges lists waiting relations toward each peer.
	Edges []EdgeProfile
}

// Analysis is the post-processed profile of one simulation run.
type Analysis struct {
	// SimSpeed is virtual seconds simulated per wall-clock second.
	SimSpeed float64
	// Sims holds per-simulator profiles, sorted by ascending WaitFrac, so
	// the most probable bottleneck comes first.
	Sims []SimProfile
}

// Analyze post-processes samples: it groups them per simulator, drops
// dropWarm samples at the start and dropCool at the end (warm-up/cool-down,
// as the paper's post-processor does), and differences the remaining first
// and last snapshots.
func Analyze(samples []Sample, dropWarm, dropCool int) (*Analysis, error) {
	bySim := make(map[string][]Sample)
	var order []string
	for _, s := range samples {
		if _, seen := bySim[s.Sim]; !seen {
			order = append(order, s.Sim)
		}
		bySim[s.Sim] = append(bySim[s.Sim], s)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("profiler: no samples")
	}
	a := &Analysis{}
	var speedSet bool
	for _, name := range order {
		ss := bySim[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Virt < ss[j].Virt })
		ss = ss[min(dropWarm, len(ss)):]
		if dropCool < len(ss) {
			ss = ss[:len(ss)-dropCool]
		} else {
			ss = nil
		}
		if len(ss) < 2 {
			return nil, fmt.Errorf("profiler: simulator %s has %d usable samples, need >= 2", name, len(ss))
		}
		first, last := ss[0], ss[len(ss)-1]
		wall := float64(last.WallNs - first.WallNs)
		virt := last.Virt - first.Virt
		if wall <= 0 {
			return nil, fmt.Errorf("profiler: simulator %s has non-increasing wall clock", name)
		}
		if !speedSet {
			// Synchronized components advance virtual time together; any
			// simulator's ratio is the global simulation speed.
			a.SimSpeed = virt.Seconds() / (wall / 1e9)
			speedSet = true
		}
		p := SimProfile{Name: name}
		var waitNs, adapterNs float64
		for ai := range last.Adapters {
			la := last.Adapters[ai]
			var fw AdapterSample
			for _, f := range first.Adapters {
				if f.Label == la.Label {
					fw = f
					break
				}
			}
			dWait := float64(la.WaitNanos - fw.WaitNanos)
			dProc := float64(la.ProcNanos - fw.ProcNanos)
			waitNs += dWait
			adapterNs += dWait + dProc
			p.Edges = append(p.Edges, EdgeProfile{
				Peer:     la.Peer,
				WaitFrac: clamp01(dWait / wall),
			})
		}
		p.WaitFrac = clamp01(waitNs / wall)
		p.Efficiency = clamp01(1 - adapterNs/wall)
		a.Sims = append(a.Sims, p)
	}
	sort.Slice(a.Sims, func(i, j int) bool {
		if a.Sims[i].WaitFrac != a.Sims[j].WaitFrac {
			return a.Sims[i].WaitFrac < a.Sims[j].WaitFrac
		}
		return a.Sims[i].Name < a.Sims[j].Name
	})
	return a, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Bottlenecks returns the simulators whose wait fraction is below thresh —
// the red nodes of the WTPG: they rarely wait, everyone waits for them.
func (a *Analysis) Bottlenecks(thresh float64) []string {
	var out []string
	for _, s := range a.Sims {
		if s.WaitFrac < thresh {
			out = append(out, s.Name)
		}
	}
	return out
}

// String renders a compact textual summary.
func (a *Analysis) String() string {
	out := fmt.Sprintf("simulation speed: %.6f virtual s / wall s\n", a.SimSpeed)
	for _, s := range a.Sims {
		out += fmt.Sprintf("  %-24s wait=%5.1f%% efficiency=%5.1f%%\n",
			s.Name, s.WaitFrac*100, s.Efficiency*100)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = sim.Second
