package decomp

import (
	"testing"

	"repro/internal/sim"
)

func TestPlacementNormalized(t *testing.T) {
	p := Placement{Name: "x", Groups: []int{7, 2, 7, 9, 2}}
	n, err := p.Normalized(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 2, 1}
	for i, g := range n.Groups {
		if g != want[i] {
			t.Fatalf("normalized = %v, want %v", n.Groups, want)
		}
	}
	if n.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", n.NumGroups())
	}
	if _, err := p.Normalized(4); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := (Placement{Groups: []int{0, -1}}).Normalized(2); err == nil {
		t.Fatal("negative group not rejected")
	}
}

func TestPlacementKeyCanonical(t *testing.T) {
	a := Placement{Groups: []int{5, 5, 1, 3}}
	b := Placement{Groups: []int{0, 0, 8, 2}}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent placements key differently: %q vs %q", a.Key(), b.Key())
	}
	c := Placement{Groups: []int{0, 1, 1, 2}}
	if a.Key() == c.Key() {
		t.Fatalf("distinct placements share key %q", a.Key())
	}
}

func TestGroupLabels(t *testing.T) {
	p, err := Placement{Groups: []int{0, 1, 0, 2, 0}}.Normalized(5)
	if err != nil {
		t.Fatal(err)
	}
	labels := p.GroupLabels([]string{"h0", "h1", "h2", "h3", "h4"})
	want := []string{"h0+2", "h1", "h3"}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestCoarsen(t *testing.T) {
	// 6 switches: fine = rs-style per-unit-ish partition, coarse = 2 groups.
	fine := []int{0, 0, 1, 2, 2, 3}
	coarse := []int{0, 0, 0, 1, 1, 1}
	got, err := Coarsen(fine, coarse)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coarsen = %v, want %v", got, want)
		}
	}
	// Fine part 1 spans both coarse groups: not a refinement.
	if _, err := Coarsen([]int{0, 1, 1}, []int{0, 0, 1}); err == nil {
		t.Fatal("non-refinement not rejected")
	}
	if _, err := Coarsen([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	// Fine part 0 missing (parts 1,2 only → part 0 empty after max scan).
	if _, err := Coarsen([]int{1, 2}, []int{0, 0}); err == nil {
		t.Fatal("empty fine part not rejected")
	}
}

func placementModel() ([]Comp, []Link) {
	comps := []Comp{
		{Name: "hot", BusyNs: 9e9},
		{Name: "idle0", BusyNs: 1e8},
		{Name: "idle1", BusyNs: 1e8},
		{Name: "idle2", BusyNs: 1e8},
	}
	links := []Link{
		{A: 0, B: 1, Msgs: 1000, Quantum: 500},
		{A: 0, B: 2, Msgs: 1000, Quantum: 500},
		{A: 1, B: 2, Msgs: 200, Quantum: 500},
		{A: 2, B: 3, Msgs: 200, Quantum: 500},
	}
	return comps, links
}

func TestMergePlacement(t *testing.T) {
	comps, links := placementModel()
	p := Placement{Name: "two", Groups: []int{0, 1, 1, 1}}
	mc, ml, err := MergePlacement(comps, links, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) != 2 {
		t.Fatalf("merged comps = %d, want 2", len(mc))
	}
	if mc[0].Name != "hot" || mc[1].Name != "idle0+2" {
		t.Fatalf("merged names = %q, %q", mc[0].Name, mc[1].Name)
	}
	if mc[1].BusyNs != 3e8 {
		t.Fatalf("merged busy = %g, want 3e8", mc[1].BusyNs)
	}
	// idle0-idle1 and idle1-idle2 links are intra-group and vanish.
	if len(ml) != 2 {
		t.Fatalf("merged links = %d, want 2 (cross only)", len(ml))
	}
	for _, l := range ml {
		if l.A == l.B {
			t.Fatalf("intra-group link survived: %+v", l)
		}
	}
}

func TestRecommendPlacementMergesIdlePair(t *testing.T) {
	comps, links := placementModel()
	cur := PerComponent(len(comps))
	merged, mlinks, err := MergePlacement(comps, links, cur)
	if err != nil {
		t.Fatal(err)
	}
	a := ModeledAnalysis(merged, mlinks, DefaultParams(sim.Time(1e9)))
	next := RecommendPlacement(cur, comps, links, a, RecommendOptions{})
	if next.NumGroups() >= cur.NumGroups() {
		t.Fatalf("idle neighbors not merged: %v -> %v", cur.Groups, next.Groups)
	}
	// The hot component must keep its own group.
	hot := next.Groups[0]
	for i := 1; i < len(next.Groups); i++ {
		if next.Groups[i] == hot {
			t.Fatalf("hot component co-located with idle %d: %v", i, next.Groups)
		}
	}
}

func TestRecommendPlacementSplitsBottleneck(t *testing.T) {
	comps, links := placementModel()
	// Everything co-located with the hot comp: the single group is the
	// bottleneck... except a 1-group placement has no cross links, so use a
	// 2-group split where one group holds hot+idle0 and is clearly limiting.
	cur := Placement{Name: "x", Groups: []int{0, 0, 1, 1}}
	merged, mlinks, err := MergePlacement(comps, links, cur)
	if err != nil {
		t.Fatal(err)
	}
	a := ModeledAnalysis(merged, mlinks, DefaultParams(sim.Time(1e9)))
	next := RecommendPlacement(cur, comps, links, a, RecommendOptions{})
	// The hot group (wait ~0) should split: hot and idle0 end up apart.
	if next.Groups[0] == next.Groups[1] {
		t.Fatalf("bottleneck group not split: %v", next.Groups)
	}
}

func TestRecommendPlacementRollbackPenalty(t *testing.T) {
	comps, links := placementModel()
	// Same bottleneck setup as the split test: group 0 = {hot, idle0} is the
	// limiting group and splits under the default recommender. The
	// hot-idle0 link carries the largest share of the graph's message
	// traffic, so a rollback penalty prices the same split as a hazard:
	// exposing that link cross-group would make every one of its messages a
	// potential straggler.
	cur := Placement{Name: "x", Groups: []int{0, 0, 1, 1}}
	merged, mlinks, err := MergePlacement(comps, links, cur)
	if err != nil {
		t.Fatal(err)
	}
	a := ModeledAnalysis(merged, mlinks, DefaultParams(sim.Time(1e9)))
	base := RecommendPlacement(cur, comps, links, a, RecommendOptions{})
	if base.Groups[0] == base.Groups[1] {
		t.Fatalf("without penalty the bottleneck group must split: %v", base.Groups)
	}
	next := RecommendPlacement(cur, comps, links, a, RecommendOptions{RollbackPenalty: 10})
	if next.Groups[0] != next.Groups[1] {
		t.Fatalf("rollback penalty did not keep the message-dense group together: %v", next.Groups)
	}
}

func TestAutoPlaceTerminatesAndIsolatesHotComponent(t *testing.T) {
	comps, links := placementModel()
	p := AutoPlace(comps, links, DefaultParams(sim.Time(1e9)), RecommendOptions{})
	if _, err := p.Normalized(len(comps)); err != nil {
		t.Fatalf("AutoPlace returned invalid placement: %v", err)
	}
	if p.Name != "auto" {
		t.Fatalf("Name = %q, want auto", p.Name)
	}
	if g := p.NumGroups(); g < 1 || g > len(comps) {
		t.Fatalf("NumGroups = %d out of range", g)
	}
	// Deterministic: same inputs, same placement.
	q := AutoPlace(comps, links, DefaultParams(sim.Time(1e9)), RecommendOptions{})
	if p.Key() != q.Key() {
		t.Fatalf("AutoPlace nondeterministic: %q vs %q", p.Key(), q.Key())
	}
}
