// Package decomp implements SplitSim's "parallelization through
// decomposition": partition strategies that split a network topology into
// component simulators, trunk-aware wiring of the resulting boundaries, and
// the performance model that predicts simulation runtime from per-component
// cost accounts.
//
// The performance model exists because this reproduction runs on a
// single-core container: the paper measures wall-clock on a 48-core
// machine, while we deterministically account each component's simulation
// cost (busy nanoseconds) and compute the parallel makespan — who is the
// bottleneck, how partitioning shifts it, and where synchronization
// overhead erases the gains. See DESIGN.md's substitution table.
package decomp

import (
	"fmt"

	"repro/internal/netsim"
)

// StrategyS places the whole network in one process — the paper's "s".
func StrategyS(meta netsim.ThreeTierMeta, nSwitches int) []int {
	return make([]int, nSwitches)
}

// StrategyAC gives each aggregation block (aggregation switch plus its
// racks) its own process, plus one for the core switch — the paper's "ac".
func StrategyAC(meta netsim.ThreeTierMeta, nSwitches int) []int {
	assign := make([]int, nSwitches)
	assign[meta.Core] = 0
	for a, agg := range meta.Agg {
		assign[agg] = 1 + a
		for _, tor := range meta.Tor[a] {
			assign[tor] = 1 + a
		}
	}
	return assign
}

// StrategyCR groups n racks into a process and puts the core plus all
// aggregation switches into one further process — the paper's "crN".
func StrategyCR(meta netsim.ThreeTierMeta, nSwitches, n int) []int {
	if n <= 0 {
		panic("decomp: crN needs n > 0")
	}
	assign := make([]int, nSwitches)
	assign[meta.Core] = 0
	for _, agg := range meta.Agg {
		assign[agg] = 0
	}
	rack := 0
	for a := range meta.Tor {
		for _, tor := range meta.Tor[a] {
			assign[tor] = 1 + rack/n
			rack++
		}
	}
	return assign
}

// StrategyRS gives every rack its own process and every aggregation switch
// and the core their own processes — the paper's "rs".
func StrategyRS(meta netsim.ThreeTierMeta, nSwitches int) []int {
	assign := make([]int, nSwitches)
	next := 0
	assign[meta.Core] = next
	next++
	for a, agg := range meta.Agg {
		assign[agg] = next
		next++
		for _, tor := range meta.Tor[a] {
			assign[tor] = next
			next++
		}
	}
	return assign
}

// Strategy names a three-tier partition strategy from the paper's table.
type Strategy struct {
	Name string
	// N is the rack-group size for crN strategies.
	N int
}

// Assign computes the switch-to-partition assignment for the strategy.
func (s Strategy) Assign(meta netsim.ThreeTierMeta, nSwitches int) []int {
	switch s.Name {
	case "s":
		return StrategyS(meta, nSwitches)
	case "ac":
		return StrategyAC(meta, nSwitches)
	case "cr":
		return StrategyCR(meta, nSwitches, s.N)
	case "rs":
		return StrategyRS(meta, nSwitches)
	default:
		panic(fmt.Sprintf("decomp: unknown strategy %q", s.Name))
	}
}

// String renders the paper's name for the strategy ("cr3", "ac", ...).
func (s Strategy) String() string {
	if s.Name == "cr" {
		return fmt.Sprintf("cr%d", s.N)
	}
	return s.Name
}

// Parts returns the number of network processes the strategy yields.
func (s Strategy) Parts(meta netsim.ThreeTierMeta) int {
	racks := meta.Spec.Aggs * meta.Spec.RacksPerAgg
	switch s.Name {
	case "s":
		return 1
	case "ac":
		return 1 + meta.Spec.Aggs
	case "cr":
		return 1 + (racks+s.N-1)/s.N
	case "rs":
		return 1 + meta.Spec.Aggs + racks
	default:
		panic("decomp: unknown strategy")
	}
}

// EvenFatTree splits a fat tree into n partitions by chunking switches in
// pod-major canonical order (pods first, then core), the even partitioning
// the Fig. 8 comparison uses.
func EvenFatTree(meta netsim.FatTreeMeta, nSwitches, n int) []int {
	if n <= 0 {
		panic("decomp: need n > 0 partitions")
	}
	var order []int
	for p := range meta.Agg {
		order = append(order, meta.Agg[p]...)
		order = append(order, meta.Edge[p]...)
	}
	order = append(order, meta.Core...)
	if n > len(order) {
		n = len(order)
	}
	assign := make([]int, nSwitches)
	for i, sw := range order {
		assign[sw] = i * n / len(order) // balanced chunks, exactly n parts
	}
	return assign
}
