package decomp

import (
	"testing"

	"repro/internal/sim"
)

// TestRecommendPlacementRespectsCoreCap reruns the bottleneck-split
// scenario with a core budget equal to the current group count: splitting
// past the physical cores can't add parallelism, so the recommender must
// leave the bottleneck group alone instead of splitting it.
func TestRecommendPlacementRespectsCoreCap(t *testing.T) {
	comps, links := placementModel()
	cur := Placement{Name: "x", Groups: []int{0, 0, 1, 1}}
	merged, mlinks, err := MergePlacement(comps, links, cur)
	if err != nil {
		t.Fatal(err)
	}
	a := ModeledAnalysis(merged, mlinks, DefaultParams(sim.Time(1e9)))

	// Sanity: with no cap the bottleneck splits (the companion test pins
	// this); with Cores=2 it must not.
	next := RecommendPlacement(cur, comps, links, a, RecommendOptions{Cores: 2})
	if g := next.NumGroups(); g > 2 {
		t.Fatalf("recommender split past the 2-core budget: %v (%d groups)", next.Groups, g)
	}
}

// TestAutoPlaceInheritsParamsCores checks that a core budget carried in
// Params (as HostParams sets it) caps AutoPlace the same as an explicit
// option.
func TestAutoPlaceInheritsParamsCores(t *testing.T) {
	comps, links := placementModel()
	params := DefaultParams(sim.Time(1e9))
	params.Cores = 2
	p := AutoPlace(comps, links, params, RecommendOptions{})
	if g := p.NumGroups(); g > 2 {
		t.Fatalf("AutoPlace produced %d groups on a 2-core budget: %v", g, p.Groups)
	}
	if _, err := p.Normalized(len(comps)); err != nil {
		t.Fatal(err)
	}
}

// TestHostParams pins the host-tuning arithmetic: cores and the measured
// sync price replace the calibrated constants, the message price scales in
// proportion, and degenerate measurements keep the defaults.
func TestHostParams(t *testing.T) {
	d := sim.Millisecond
	def := DefaultParams(d)

	p := HostParams(d, 8, 2*def.SyncCostNs)
	if p.Cores != 8 {
		t.Errorf("Cores = %d, want 8", p.Cores)
	}
	if p.SyncCostNs != 2*def.SyncCostNs {
		t.Errorf("SyncCostNs = %v, want %v", p.SyncCostNs, 2*def.SyncCostNs)
	}
	if p.MsgCostNs != 2*def.MsgCostNs {
		t.Errorf("MsgCostNs = %v, want scaled %v", p.MsgCostNs, 2*def.MsgCostNs)
	}

	q := HostParams(d, 0, 0)
	if q.Cores != def.Cores || q.SyncCostNs != def.SyncCostNs || q.MsgCostNs != def.MsgCostNs {
		t.Errorf("degenerate inputs should keep defaults: %+v vs %+v", q, def)
	}
}
