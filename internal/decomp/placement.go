package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/profiler"
)

// Placement assigns each component of an orchestrated simulation to a
// runner group. Components sharing a group execute on one scheduler in one
// goroutine; the channels between them degrade to zero-synchronization
// direct ports — the decomposition saving in reverse. The paper's
// "parallelization through decomposition" is exactly the choice of this
// mapping: one group is the sequential simulator, one group per component
// is the fully decomposed one, and everything in between trades
// synchronization overhead against parallelism.
//
// A Placement is pure data so that partition strategies, the performance
// model, and the profiler-driven recommender can all emit one, and the
// orchestrator (package orch) can execute any of them bit-identically.
type Placement struct {
	// Name labels the placement in plans and experiment tables
	// ("s", "ac", "auto", ...).
	Name string
	// Groups[i] is the runner group of component i, in the simulation's
	// component registration order. Group ids need not be dense; Normalized
	// relabels them by first appearance.
	Groups []int
}

// PerComponent is the classic coupled placement: every component its own
// runner (one process per simulator, as SimBricks fixes it).
func PerComponent(n int) Placement {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return Placement{Name: "percomp", Groups: g}
}

// SingleGroup co-locates every component on one runner — the sequential
// execution expressed as a placement.
func SingleGroup(n int) Placement {
	return Placement{Name: "s", Groups: make([]int, n)}
}

// Normalized validates the placement against a component count and returns
// a copy whose group ids are dense (0..G-1), numbered by first appearance.
// Dense, appearance-ordered ids make every downstream artifact — runner
// order, group labels, plan rendering — deterministic.
func (p Placement) Normalized(nComps int) (Placement, error) {
	if len(p.Groups) != nComps {
		return Placement{}, fmt.Errorf("decomp: placement %q covers %d components, simulation has %d",
			p.Name, len(p.Groups), nComps)
	}
	relabel := make(map[int]int, len(p.Groups))
	out := make([]int, len(p.Groups))
	for i, g := range p.Groups {
		if g < 0 {
			return Placement{}, fmt.Errorf("decomp: placement %q gives component %d negative group %d",
				p.Name, i, g)
		}
		d, ok := relabel[g]
		if !ok {
			d = len(relabel)
			relabel[g] = d
		}
		out[i] = d
	}
	return Placement{Name: p.Name, Groups: out}, nil
}

// NumGroups counts distinct groups.
func (p Placement) NumGroups() int {
	seen := make(map[int]bool, len(p.Groups))
	for _, g := range p.Groups {
		seen[g] = true
	}
	return len(seen)
}

// Key renders the normalized group vector as a canonical string, usable for
// equality checks and cycle detection in the recommender loop.
func (p Placement) Key() string {
	n, err := p.Normalized(len(p.Groups))
	if err != nil {
		return "invalid:" + err.Error()
	}
	var b strings.Builder
	for i, g := range n.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", g)
	}
	return b.String()
}

// GroupLabels names each group of a normalized placement: a singleton group
// borrows its component's name, a larger group is "<first>+<k>" for the k
// extra members. Runner names, plan rendering, and the recommender's
// profile lookup all use these labels, so they must agree everywhere.
func (p Placement) GroupLabels(compNames []string) []string {
	first := make([]int, 0)
	size := make([]int, 0)
	for i, g := range p.Groups {
		for g >= len(first) {
			first = append(first, -1)
			size = append(size, 0)
		}
		if first[g] < 0 {
			first[g] = i
		}
		size[g]++
	}
	labels := make([]string, len(first))
	for g := range first {
		if first[g] < 0 {
			labels[g] = fmt.Sprintf("g%d", g)
			continue
		}
		labels[g] = compNames[first[g]]
		if size[g] > 1 {
			labels[g] = fmt.Sprintf("%s+%d", compNames[first[g]], size[g]-1)
		}
	}
	return labels
}

// Coarsen lifts a coarse partition assignment onto the parts of a finer
// one: fine part p maps to the group coarse assigns to p's members, which
// must agree (fine must refine coarse — rs refines ac, crN, and s). Both
// slices are indexed by the underlying unit (switch); the result is indexed
// by fine part id. This is how a Strategy emits a Placement over a
// simulation that was built at the finest partitioning.
func Coarsen(fine, coarse []int) ([]int, error) {
	if len(fine) != len(coarse) {
		return nil, fmt.Errorf("decomp: coarsen over %d vs %d units", len(fine), len(coarse))
	}
	nParts := 0
	for i, p := range fine {
		if p < 0 {
			return nil, fmt.Errorf("decomp: negative fine partition for unit %d", i)
		}
		if p+1 > nParts {
			nParts = p + 1
		}
	}
	out := make([]int, nParts)
	set := make([]bool, nParts)
	for i, p := range fine {
		if !set[p] {
			out[p] = coarse[i]
			set[p] = true
			continue
		}
		if out[p] != coarse[i] {
			return nil, fmt.Errorf("decomp: fine partition %d spans coarse groups %d and %d (fine must refine coarse)",
				p, out[p], coarse[i])
		}
	}
	for p, ok := range set {
		if !ok {
			return nil, fmt.Errorf("decomp: fine partition %d has no members", p)
		}
	}
	return out, nil
}

// MergePlacement folds a per-component model graph to the runner-group
// level of a placement: components sharing a group merge into one Comp
// (busy times add — a group is one sequential process), links inside one
// group vanish (co-located channels cost no synchronization), and
// cross-group links keep their per-channel sync cost. The merged Comp names
// are the placement's group labels, so modeled analyses of the merged graph
// key by the same names the executed runners carry.
func MergePlacement(comps []Comp, links []Link, p Placement) ([]Comp, []Link, error) {
	norm, err := p.Normalized(len(comps))
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(comps))
	for i, c := range comps {
		names[i] = c.Name
	}
	labels := norm.GroupLabels(names)
	merged := make([]Comp, len(labels))
	for g, l := range labels {
		merged[g].Name = l
	}
	for i, c := range comps {
		merged[norm.Groups[i]].BusyNs += c.BusyNs
	}
	var mlinks []Link
	for _, l := range links {
		ga, gb := norm.Groups[l.A], norm.Groups[l.B]
		if ga == gb {
			continue
		}
		mlinks = append(mlinks, Link{A: ga, B: gb, Msgs: l.Msgs, Quantum: l.Quantum})
	}
	return merged, mlinks, nil
}

// RecommendOptions tunes the greedy placement recommender.
type RecommendOptions struct {
	// SplitBelow: the group whose runner waits less than this fraction of
	// wall time (the WTPG's red bottleneck) is split in two.
	SplitBelow float64
	// MergeAbove: a linked pair of groups that both wait more than this are
	// idling on synchronization and get merged.
	MergeAbove float64
	// MaxGroups caps the group count after splitting (0: one per component).
	MaxGroups int
	// Cores caps useful parallelism: splitting past the physical core count
	// adds synchronization without adding concurrent execution, so with
	// Cores set the recommender never splits beyond it (MaxGroups is
	// clamped). 0 leaves MaxGroups alone — the model-reproduction default,
	// where the paper assumes one core per process. AutoPlace fills it from
	// Params.Cores.
	Cores int
	// RollbackPenalty biases split selection for optimistic execution
	// (orch.RunOptimistic). Splitting a group turns its internal links into
	// cross-group channels, and under speculation every cross message is a
	// potential straggler forcing the receiving group to roll back and
	// replay. With RollbackPenalty > 0, each split candidate's wait
	// fraction is worsened by penalty x its share of the graph's total
	// message traffic carried on links internal to it — the traffic a split
	// would expose — so message-dense groups stay co-located while sparse,
	// latency-dominated groups (where speculation wins and rollbacks are
	// rare) split first. 0, the default, reproduces the conservative
	// recommender unchanged.
	RollbackPenalty float64
}

func (o RecommendOptions) withDefaults(nComps int) RecommendOptions {
	if o.SplitBelow <= 0 {
		o.SplitBelow = 0.15
	}
	if o.MergeAbove <= 0 {
		o.MergeAbove = 0.5
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = nComps
	}
	if o.Cores > 0 && o.MaxGroups > o.Cores {
		o.MaxGroups = o.Cores
	}
	return o
}

// RecommendPlacement performs one greedy refinement step driven by a
// wait-time profile of the current placement — either a live
// profiler.Analyze of a coupled run or a deterministic ModeledAnalysis of
// the merged model graph. The profile's simulator names must be the
// placement's group labels (runner names, as orch assigns them).
//
// Two moves, on disjoint groups, per step:
//
//   - split: the bottleneck group — lowest wait fraction below SplitBelow,
//     at least two members — is bisected by balancing modeled busy cost, so
//     its work can run in parallel;
//   - merge: the idlest linked pair of groups — both waiting above
//     MergeAbove — is co-located, deleting their mutual synchronization.
//
// The returned placement is normalized; applying the step to the same
// profile is idempotent only at a fixed point, so callers loop (AutoPlace)
// or re-profile between steps.
func RecommendPlacement(cur Placement, comps []Comp, links []Link, a *profiler.Analysis, opts RecommendOptions) Placement {
	o := opts.withDefaults(len(comps))
	norm, err := cur.Normalized(len(comps))
	if err != nil {
		panic(err.Error())
	}
	names := make([]string, len(comps))
	for i, c := range comps {
		names[i] = c.Name
	}
	labels := norm.GroupLabels(names)
	G := len(labels)

	wait := make([]float64, G)
	known := make([]bool, G)
	byLabel := make(map[string]int, G)
	for g, l := range labels {
		byLabel[l] = g
	}
	for _, sp := range a.Sims {
		if g, ok := byLabel[sp.Name]; ok {
			wait[g] = sp.WaitFrac
			known[g] = true
		}
	}
	members := make([][]int, G)
	for i, g := range norm.Groups {
		members[g] = append(members[g], i)
	}
	out := append([]int(nil), norm.Groups...)

	// Split the bottleneck group by busy-cost bisection. With a rollback
	// penalty configured, a candidate's effective wait is inflated by the
	// message traffic a split would expose as cross-group channels —
	// potential stragglers under optimistic execution — so dense groups
	// drop out of splitting before sparse ones.
	risk := make([]float64, G)
	if o.RollbackPenalty > 0 {
		total := 0.0
		for _, l := range links {
			total += float64(l.Msgs)
		}
		if total > 0 {
			for _, l := range links {
				if ga, gb := norm.Groups[l.A], norm.Groups[l.B]; ga == gb {
					risk[ga] += float64(l.Msgs) / total
				}
			}
		}
	}
	score := func(g int) float64 { return wait[g] + o.RollbackPenalty*risk[g] }
	split := -1
	if G < o.MaxGroups {
		for g := 0; g < G; g++ {
			if !known[g] || len(members[g]) < 2 || score(g) >= o.SplitBelow {
				continue
			}
			if split < 0 || score(g) < score(split) {
				split = g
			}
		}
		if split >= 0 {
			ms := append([]int(nil), members[split]...)
			sort.SliceStable(ms, func(i, j int) bool {
				return comps[ms[i]].BusyNs > comps[ms[j]].BusyNs
			})
			var loadA, loadB float64
			for _, ci := range ms {
				if loadB < loadA {
					out[ci] = G
					loadB += comps[ci].BusyNs
				} else {
					loadA += comps[ci].BusyNs
				}
			}
		}
	}

	// Merge the idlest linked pair (skipping the group just split).
	ma, mb, best := -1, -1, 0.0
	for _, l := range links {
		ga, gb := norm.Groups[l.A], norm.Groups[l.B]
		if ga == gb || ga == split || gb == split {
			continue
		}
		if !known[ga] || !known[gb] || wait[ga] <= o.MergeAbove || wait[gb] <= o.MergeAbove {
			continue
		}
		if ga > gb {
			ga, gb = gb, ga
		}
		score := wait[ga] + wait[gb]
		if score > best || (score == best && (ma < 0 || ga < ma || (ga == ma && gb < mb))) {
			ma, mb, best = ga, gb, score
		}
	}
	if ma >= 0 {
		for _, ci := range members[mb] {
			out[ci] = ma
		}
	}

	next, err := Placement{Name: cur.Name, Groups: out}.Normalized(len(comps))
	if err != nil {
		panic(err.Error())
	}
	return next
}

// AutoPlace closes the profiler→placement feedback loop deterministically:
// starting from one runner per component, it repeatedly models the placed
// run (MergePlacement + ModeledAnalysis) and applies RecommendPlacement
// until the placement reaches a fixed point or revisits a previous state.
// Because the analysis is modeled from accounted costs, the result is
// reproducible on any machine; a live harness can run the same loop with
// profiler.Analyze output instead.
//
// params.Cores, when set (HostParams sets it to the real core count), flows
// into both sides of the loop: the makespan model schedules groups onto
// that many cores (lpt) and the recommender stops splitting beyond them.
// With host-measured sync costs in params the loop recommends placements
// for the machine in front of it, not the paper's idealized one-core-per-
// process cluster.
func AutoPlace(comps []Comp, links []Link, params Params, opts RecommendOptions) Placement {
	if opts.Cores == 0 {
		opts.Cores = params.Cores
	}
	cur := PerComponent(len(comps))
	cur.Name = "auto"
	seen := map[string]bool{}
	for iter := 0; iter < 64; iter++ {
		merged, mlinks, err := MergePlacement(comps, links, cur)
		if err != nil {
			panic(err.Error())
		}
		if len(merged) < 2 {
			break // fully co-located: nothing left to profile or merge
		}
		a := ModeledAnalysis(merged, mlinks, params)
		next := RecommendPlacement(cur, comps, links, a, opts)
		k := next.Key()
		if k == cur.Key() || seen[k] {
			break
		}
		seen[cur.Key()] = true
		cur = next
	}
	return cur
}
