package decomp

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func meta() (*netsim.Topology, netsim.ThreeTierMeta) {
	return netsim.ThreeTier(netsim.ThreeTierSpec{
		Aggs: 4, RacksPerAgg: 6, HostsPerRack: 2,
		CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	})
}

func TestStrategyPartCounts(t *testing.T) {
	topo, m := meta()
	cases := []struct {
		s    Strategy
		want int
	}{
		{Strategy{Name: "s"}, 1},
		{Strategy{Name: "ac"}, 5},
		{Strategy{Name: "cr", N: 3}, 9},
		{Strategy{Name: "cr", N: 1}, 25},
		{Strategy{Name: "rs"}, 29},
	}
	for _, c := range cases {
		assign := c.s.Assign(m, len(topo.Switches))
		maxPart := 0
		for _, p := range assign {
			if p > maxPart {
				maxPart = p
			}
		}
		if got := maxPart + 1; got != c.want || c.s.Parts(m) != c.want {
			t.Errorf("%v: parts = %d (Parts()=%d), want %d", c.s, got, c.s.Parts(m), c.want)
		}
	}
}

func TestStrategyACGroupsBlocks(t *testing.T) {
	topo, m := meta()
	assign := StrategyAC(m, len(topo.Switches))
	for a := range m.Agg {
		want := assign[m.Agg[a]]
		if want == assign[m.Core] {
			t.Fatal("agg must not share the core's partition")
		}
		for _, tor := range m.Tor[a] {
			if assign[tor] != want {
				t.Fatalf("rack of agg %d in wrong partition", a)
			}
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	if (Strategy{Name: "cr", N: 3}).String() != "cr3" {
		t.Fatal("cr3 string")
	}
	if (Strategy{Name: "ac"}).String() != "ac" {
		t.Fatal("ac string")
	}
}

func TestEvenFatTreePartition(t *testing.T) {
	topo, m := netsim.FatTree(8, 10*sim.Gbps, 40*sim.Gbps, sim.Microsecond)
	for _, n := range []int{1, 2, 16, 32} {
		assign := EvenFatTree(m, len(topo.Switches), n)
		counts := map[int]int{}
		for _, p := range assign {
			counts[p]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: produced %d partitions", n, len(counts))
		}
		// Balanced within one chunk size.
		min, max := 1<<30, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > (len(topo.Switches)+n-1)/n {
			t.Fatalf("n=%d: unbalanced partitions %v", n, counts)
		}
	}
}

func TestMakespanBasics(t *testing.T) {
	comps := []Comp{{Name: "a", BusyNs: 1000}, {Name: "b", BusyNs: 3000}}
	links := []Link{{A: 0, B: 1, Msgs: 10, Quantum: sim.Microsecond}}
	p := DefaultParams(10 * sim.Microsecond) // 10 sync quanta
	r := Makespan(comps, links, p)
	if r.SeqNs != 4000 {
		t.Fatalf("SeqNs = %v", r.SeqNs)
	}
	wantOverhead := 10*p.SyncCostNs + 10*p.MsgCostNs
	if r.Overhead["b"] != wantOverhead {
		t.Fatalf("overhead = %v, want %v", r.Overhead["b"], wantOverhead)
	}
	if r.ParNs != 3000+wantOverhead {
		t.Fatalf("ParNs = %v", r.ParNs)
	}
	if r.Speedup <= 0 || r.SimSpeed <= 0 {
		t.Fatal("derived metrics missing")
	}
}

func TestMakespanCoreLimit(t *testing.T) {
	comps := []Comp{
		{Name: "a", BusyNs: 100}, {Name: "b", BusyNs: 100},
		{Name: "c", BusyNs: 100}, {Name: "d", BusyNs: 100},
	}
	p := DefaultParams(0)
	p.Cores = 2
	r := Makespan(comps, nil, p)
	if r.ParNs != 200 {
		t.Fatalf("2 cores, 4x100 load: makespan %v, want 200", r.ParNs)
	}
}

func TestTrunkingReducesOverhead(t *testing.T) {
	comps := []Comp{{Name: "a", BusyNs: 0}, {Name: "b", BusyNs: 0}}
	p := DefaultParams(1 * sim.Millisecond)
	// Six separate channels vs one trunk carrying the same messages.
	var separate []Link
	for i := 0; i < 6; i++ {
		separate = append(separate, Link{A: 0, B: 1, Msgs: 100, Quantum: sim.Microsecond})
	}
	trunked := []Link{{A: 0, B: 1, Msgs: 600, Quantum: sim.Microsecond}}
	rs := Makespan(comps, separate, p)
	rt := Makespan(comps, trunked, p)
	if rt.ParNs >= rs.ParNs {
		t.Fatalf("trunking should cut sync overhead: trunk %v vs separate %v",
			rt.ParNs, rs.ParNs)
	}
	// The saving is exactly 5 channels' sync streams.
	saved := 5 * float64(sim.Millisecond/sim.Microsecond) * p.SyncCostNs
	if diff := rs.ParNs - rt.ParNs; diff != saved {
		t.Fatalf("saving = %v, want %v", diff, saved)
	}
}

func TestNativeBarrierScalesWithParts(t *testing.T) {
	p := DefaultParams(1 * sim.Millisecond)
	mk := func(n int) ([]Comp, []Link) {
		comps := make([]Comp, n)
		var links []Link
		for i := range comps {
			comps[i] = Comp{Name: string(rune('a' + i)), BusyNs: 1e6}
			if i > 0 {
				links = append(links, Link{A: i - 1, B: i, Msgs: 0, Quantum: sim.Microsecond})
			}
		}
		return comps, links
	}
	c2, l2 := mk(2)
	c16, l16 := mk(16)
	b2 := NativeBarrier(c2, l2, p)
	b16 := NativeBarrier(c16, l16, p)
	s16 := Makespan(c16, l16, p)
	// Barrier cost per quantum grows with partition count...
	if b16.ParNs <= b2.ParNs {
		t.Fatal("barrier cost should grow with partitions")
	}
	// ...so SplitSim's neighbor-only sync beats it at high partition counts.
	if s16.ParNs >= b16.ParNs {
		t.Fatalf("SplitSim %v should beat the global barrier %v at 16 parts",
			s16.ParNs, b16.ParNs)
	}
}

func TestLPTProperty(t *testing.T) {
	f := func(raw []uint16, coresRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cores := int(coresRaw)%8 + 1
		loads := make([]float64, len(raw))
		var total, max float64
		for i, r := range raw {
			loads[i] = float64(r)
			total += loads[i]
			if loads[i] > max {
				max = loads[i]
			}
		}
		ms := lpt(loads, cores)
		// Makespan is at least the max item and the average bound, and at
		// most total work.
		if ms < max || ms < total/float64(cores)-1e-9 || ms > total+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeledAnalysisWTPG(t *testing.T) {
	comps := []Comp{
		{Name: "bottleneck", BusyNs: 10_000_000},
		{Name: "idle1", BusyNs: 1_000_000},
		{Name: "idle2", BusyNs: 2_000_000},
	}
	links := []Link{
		{A: 0, B: 1, Msgs: 10, Quantum: sim.Microsecond},
		{A: 0, B: 2, Msgs: 10, Quantum: sim.Microsecond},
	}
	a := ModeledAnalysis(comps, links, DefaultParams(1*sim.Millisecond))
	if a.Sims[0].Name != "bottleneck" {
		t.Fatalf("bottleneck should sort first, got %s", a.Sims[0].Name)
	}
	if a.Sims[0].WaitFrac > 0.05 {
		t.Fatalf("bottleneck wait = %v, want ~0", a.Sims[0].WaitFrac)
	}
	bn := a.Bottlenecks(0.15)
	if len(bn) != 1 || bn[0] != "bottleneck" {
		t.Fatalf("Bottlenecks = %v", bn)
	}
}
