package decomp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/sim"
)

// Comp is one simulator process in the performance model.
type Comp struct {
	Name string
	// BusyNs is the simulation work the component performs over the
	// modeled duration (event costs plus time tax), in host nanoseconds.
	BusyNs float64
}

// Link is one synchronized channel between two components. Several logical
// links multiplexed over a trunk adapter are ONE Link with the combined
// message count — which is exactly the trunk adapter's saving.
type Link struct {
	A, B int // indices into the component list
	// Msgs is the number of data messages crossing in both directions.
	Msgs uint64
	// Quantum is the synchronization interval (usually the link latency).
	Quantum sim.Time
}

// Params tunes the cost model. Defaults (see DefaultParams) are calibrated
// against the relative numbers the paper reports; EXPERIMENTS.md discusses
// the calibration.
type Params struct {
	// Duration is the simulated time span.
	Duration sim.Time
	// Cores is the number of physical cores available (0 = one per comp).
	Cores int
	// SyncCostNs is charged per synchronization quantum per channel per
	// side (polling plus null-message handling).
	SyncCostNs float64
	// MsgCostNs is charged per data message per side (serialize, queue,
	// deliver).
	MsgCostNs float64
	// BarrierBaseNs and BarrierPerPartNs model the native (MPI-style)
	// global barrier alternative: every component pays
	// BarrierBaseNs + BarrierPerPartNs*P per quantum.
	BarrierBaseNs    float64
	BarrierPerPartNs float64
}

// DefaultParams returns the calibrated model constants.
func DefaultParams(duration sim.Time) Params {
	return Params{
		Duration:         duration,
		SyncCostNs:       300,
		MsgCostNs:        250,
		BarrierBaseNs:    1800,
		BarrierPerPartNs: 160,
	}
}

// HostParams returns model constants tuned to the executing host instead of
// the calibrated paper constants: cores is the real parallelism budget
// (runtime.GOMAXPROCS as the orchestrator passes it) and measuredSyncNs the
// per-sync cost measured on this machine's channel fabric
// (link.MeasureSyncCost via orch.HostModelParams). Zero or negative inputs
// keep the calibrated defaults, so HostParams degrades gracefully when
// calibration is unavailable. Feeding these parameters to AutoPlace makes
// the recommender weigh core count and measured sync cost, not just
// accounted nanos.
func HostParams(duration sim.Time, cores int, measuredSyncNs float64) Params {
	p := DefaultParams(duration)
	if cores > 0 {
		p.Cores = cores
	}
	if measuredSyncNs > 0 {
		p.SyncCostNs = measuredSyncNs
		// A data message rides the same publish/drain path as a sync plus
		// payload hand-off; scale the message price by the measured/default
		// sync ratio so the two stay in proportion.
		p.MsgCostNs *= measuredSyncNs / DefaultParams(duration).SyncCostNs
	}
	return p
}

// Result is the model's prediction for one configuration.
type Result struct {
	// SeqNs is the runtime with everything in one process (no channels).
	SeqNs float64
	// ParNs is the parallel makespan including synchronization overhead.
	ParNs float64
	// PerComp maps component name to its busy time including channel
	// overhead — the modeled profile.
	PerComp map[string]float64
	// Overhead maps component name to its channel overhead alone.
	Overhead map[string]float64
	// SimSpeed is virtual seconds per modeled wall second for the parallel
	// configuration.
	SimSpeed float64
	// Speedup is SeqNs/ParNs.
	Speedup float64
}

// Makespan predicts sequential and SplitSim-parallel runtime.
func Makespan(comps []Comp, links []Link, p Params) Result {
	return model(comps, links, p, false)
}

// NativeBarrier predicts runtime under MPI-style global-barrier
// synchronization of the same partitions.
func NativeBarrier(comps []Comp, links []Link, p Params) Result {
	return model(comps, links, p, true)
}

func model(comps []Comp, links []Link, p Params, barrier bool) Result {
	n := len(comps)
	if n == 0 {
		panic("decomp: no components")
	}
	overhead := make([]float64, n)
	if barrier {
		// Every component pays the global barrier each quantum. Use the
		// smallest quantum of any link (the barrier must respect the
		// tightest lookahead).
		minQ := sim.Infinity
		for _, l := range links {
			if l.Quantum < minQ {
				minQ = l.Quantum
			}
		}
		if minQ < sim.Infinity && minQ > 0 {
			rounds := float64(p.Duration) / float64(minQ)
			per := p.BarrierBaseNs + p.BarrierPerPartNs*float64(n)
			for i := range comps {
				overhead[i] += rounds * per
			}
		}
		// Data messages still cost on both sides.
		for _, l := range links {
			c := float64(l.Msgs) * p.MsgCostNs
			overhead[l.A] += c
			overhead[l.B] += c
		}
	} else {
		for _, l := range links {
			syncs := 0.0
			if l.Quantum > 0 {
				syncs = float64(p.Duration) / float64(l.Quantum)
			}
			c := syncs*p.SyncCostNs + float64(l.Msgs)*p.MsgCostNs
			overhead[l.A] += c
			overhead[l.B] += c
		}
	}

	r := Result{PerComp: make(map[string]float64, n), Overhead: make(map[string]float64, n)}
	loads := make([]float64, n)
	for i, c := range comps {
		r.SeqNs += c.BusyNs
		loads[i] = c.BusyNs + overhead[i]
		r.PerComp[c.Name] = loads[i]
		r.Overhead[c.Name] = overhead[i]
	}
	cores := p.Cores
	if cores <= 0 || cores > n {
		cores = n
	}
	r.ParNs = lpt(loads, cores)
	if r.ParNs > 0 {
		r.SimSpeed = p.Duration.Seconds() / (r.ParNs / 1e9)
		r.Speedup = r.SeqNs / r.ParNs
	}
	return r
}

// lpt schedules loads onto cores with longest-processing-time-first and
// returns the makespan.
func lpt(loads []float64, cores int) float64 {
	sorted := append([]float64(nil), loads...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	bins := make([]float64, cores)
	for _, l := range sorted {
		mi := 0
		for i := 1; i < cores; i++ {
			if bins[i] < bins[mi] {
				mi = i
			}
		}
		bins[mi] += l
	}
	max := 0.0
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}

// BusyOf extracts a component's modeled busy time: accumulated event costs
// plus its time tax over the duration.
func BusyOf(c core.Component, duration sim.Time) float64 {
	var busy float64
	if coster, ok := c.(core.Coster); ok {
		busy = float64(coster.Cost().BusyNanos())
	}
	if taxer, ok := c.(interface{ TimeTaxNsPerVirtualUs() float64 }); ok {
		busy += taxer.TimeTaxNsPerVirtualUs() * duration.Microseconds()
	}
	return busy
}

// ModeledAnalysis converts a model result into a profiler.Analysis so the
// standard WTPG renderer can visualize modeled runs: a component's wait
// fraction is its idle share of the makespan, attributed to neighbors in
// proportion to their load.
func ModeledAnalysis(comps []Comp, links []Link, p Params) *profiler.Analysis {
	res := Makespan(comps, links, p)
	a := &profiler.Analysis{SimSpeed: res.SimSpeed}
	neighbors := make([][]int, len(comps))
	for _, l := range links {
		neighbors[l.A] = append(neighbors[l.A], l.B)
		neighbors[l.B] = append(neighbors[l.B], l.A)
	}
	for i, c := range comps {
		load := res.PerComp[c.Name]
		wait := 0.0
		if res.ParNs > 0 {
			wait = (res.ParNs - load) / res.ParNs
		}
		sp := profiler.SimProfile{Name: c.Name, WaitFrac: wait, Efficiency: 1 - wait}
		var nbLoad float64
		for _, nb := range neighbors[i] {
			nbLoad += res.PerComp[comps[nb].Name]
		}
		for _, nb := range neighbors[i] {
			frac := 0.0
			if nbLoad > 0 {
				frac = wait * res.PerComp[comps[nb].Name] / nbLoad
			}
			sp.Edges = append(sp.Edges, profiler.EdgeProfile{
				Peer: comps[nb].Name, WaitFrac: frac,
			})
		}
		a.Sims = append(a.Sims, sp)
	}
	sort.Slice(a.Sims, func(i, j int) bool {
		if a.Sims[i].WaitFrac != a.Sims[j].WaitFrac {
			return a.Sims[i].WaitFrac < a.Sims[j].WaitFrac
		}
		return a.Sims[i].Name < a.Sims[j].Name
	})
	return a
}

// BuildWTPGFromAnalysis builds the wait-time-profile graph for a modeled
// analysis (thin indirection so experiment code needs only this package).
func BuildWTPGFromAnalysis(a *profiler.Analysis) *profiler.WTPG {
	return profiler.BuildWTPG(a)
}

// FmtSpeed renders a simulation speed the way the paper's plots label it.
func FmtSpeed(s float64) string { return fmt.Sprintf("%.2e sim-s/s", s) }
