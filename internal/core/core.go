// Package core defines the component model at the heart of SplitSim-Go:
// the vocabulary with which component simulators (host, NIC, network
// partition, memory-system piece) are composed into one end-to-end
// simulation.
//
// The model deliberately mirrors SimBricks/SplitSim. Components exchange
// timestamped messages over point-to-point channels with a fixed latency.
// A component never observes a message earlier than its send time plus the
// channel latency, which is what makes conservative parallel synchronization
// (package link) and sequential execution (package orch) produce identical
// results.
package core

import (
	"repro/internal/proto"
	"repro/internal/sim"
)

// Fidelity describes how much detail a component simulator models. Mixed-
// fidelity simulation — the paper's first technique — is the act of choosing
// different fidelities for different instances of the same component type.
type Fidelity int

const (
	// ProtocolLevel models only protocol behavior (the ns-3 analog): no
	// host software stack, no hardware detail.
	ProtocolLevel Fidelity = iota
	// Coarse is a functional full-system model with coarse timing, the
	// qemu-with-instruction-counting analog.
	Coarse
	// Detailed is a timing-accurate full-system model, the gem5 analog.
	Detailed
)

func (f Fidelity) String() string {
	switch f {
	case ProtocolLevel:
		return "protocol"
	case Coarse:
		return "qemu"
	case Detailed:
		return "gem5"
	default:
		return "unknown"
	}
}

// Message is anything that can travel over a channel between two component
// simulators. Size is the message's size in bytes on the wire (or bus); the
// link layer uses it only for accounting, never for pacing — pacing is the
// sending component's job.
//
// Message is an alias of sim.Payload so the scheduler can store a delivery
// (sink + payload) by value in an event-queue slot instead of a heap-
// allocated closure; the two names describe the same interface at different
// layers.
type Message = sim.Payload

// Port is one direction of a channel as seen by the sending component. Send
// stamps the payload with the sender's current virtual time; the peer
// observes it exactly Latency later.
type Port interface {
	Send(payload Message)
	Latency() sim.Time
}

// Sink receives messages from a peer's Port. Deliver runs at virtual time
// at = sendTime + latency on the receiving component's scheduler. Like
// Message, Sink is an alias of the kernel-level sim.Sink so sinks plug
// straight into typed delivery events (sim.Scheduler.PostDelivery).
type Sink = sim.Sink

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(at sim.Time, payload Message)

// Deliver implements Sink.
func (f SinkFunc) Deliver(at sim.Time, payload Message) { f(at, payload) }

// Env is a component's handle on virtual time. It pairs a scheduler with
// the component's stable event-ordering source. Components must schedule
// all local events through their Env: in sequential mode many components
// share one scheduler, and only the per-component source keeps same-time
// events of different components in an order identical to coupled mode.
type Env struct {
	Sched *sim.Scheduler
	Src   int32
}

// Now returns the current virtual time.
func (e Env) Now() sim.Time { return e.Sched.Now() }

// At schedules fn at absolute time t with the component's ordering source.
func (e Env) At(t sim.Time, fn func()) *sim.Timer { return e.Sched.AtSrc(t, e.Src, fn) }

// After schedules fn d after the current time.
func (e Env) After(d sim.Time, fn func()) *sim.Timer {
	return e.Sched.AtSrc(e.Sched.Now()+d, e.Src, fn)
}

// Post schedules fn at absolute time t like At but without a cancellation
// handle, so the kernel allocates nothing beyond the queue slot. It orders
// identically to At at the same call position.
func (e Env) Post(t sim.Time, fn func()) { e.Sched.PostSrc(t, e.Src, fn) }

// PostDelivery schedules sink.Deliver(t, payload) as a typed delivery event
// with the component's ordering source: no Timer, no capturing closure. It
// orders identically to At at the same call position — the substrate hot
// paths (switch forwarding, NIC DMA, host stack completion) use it to hand
// pooled frames and batches along without allocating.
func (e Env) PostDelivery(t sim.Time, sink Sink, payload Message) {
	e.Sched.PostDelivery(t, e.Src, sink, payload)
}

// Component is a simulator component that the orchestrator can run. A
// component is attached to an Env (its own runner's scheduler in coupled
// mode, a shared scheduler in sequential mode), then started once to seed
// its initial events.
type Component interface {
	// Name returns a stable, unique, human-readable identifier.
	Name() string
	// Attach binds the component to the environment that will execute its
	// events. Called exactly once, before Start.
	Attach(env Env)
	// Start schedules the component's initial events. end is the virtual
	// time at which the simulation will stop.
	Start(end sim.Time)
}

// UDPHandler receives a datagram delivered to a bound socket. It is shared
// by the protocol-level and detailed host simulators so that one
// application implementation runs unmodified at either fidelity — the
// code-reuse property the paper's mixed-fidelity case studies depend on.
type UDPHandler func(src proto.IP, srcPort uint16, payload []byte, virtual int)

// CostAccount accumulates modeled host-CPU nanoseconds for one component.
// The SplitSim performance model (package decomp) uses these totals to
// predict simulation runtime: a component that accounts N busy nanoseconds
// needs N nanoseconds of real CPU on the machine running the simulation.
type CostAccount struct {
	busy uint64
}

// Charge records ns nanoseconds of modeled simulation work.
func (a *CostAccount) Charge(ns uint64) { a.busy += ns }

// Store overwrites the accumulated total. Components that account cost
// lazily — recomputing it from packet counters when Cost() is read, instead
// of charging in their per-packet inner loop — use it to refresh the
// account at read time. Consumers must read BusyNanos immediately after
// Cost() and never retain the pointer across further simulation.
func (a *CostAccount) Store(ns uint64) { a.busy = ns }

// BusyNanos returns the total charged so far.
func (a *CostAccount) BusyNanos() uint64 { return a.busy }

// Coster is implemented by components that account their modeled cost.
type Coster interface {
	Cost() *CostAccount
}

// Releaser is implemented by messages that hold pooled resources (frames,
// batches). ReleaseMessage is called on every payload still queued when a
// run ends so pools balance and the frame-leak counters read zero.
type Releaser interface {
	Release()
}

// ReleaseMessage returns any pooled resources held by payload; messages
// without pooled state are ignored.
func ReleaseMessage(payload Message) {
	if r, ok := payload.(Releaser); ok {
		r.Release()
	}
}

// FramePooler is implemented by components that own a frame pool; the
// profiler and the orchestrator's pool-health table aggregate these
// counters per component.
type FramePooler interface {
	FrameStats() proto.PoolStats
}
