package core

import (
	"testing"

	"repro/internal/sim"
)

func TestEnvScheduling(t *testing.T) {
	s := sim.NewScheduler(0)
	a := Env{Sched: s, Src: 7}
	b := Env{Sched: s, Src: 3}
	var order []int32
	// Same-time events from different components order by Src, never by
	// scheduling order — the cross-mode determinism contract.
	a.At(sim.Microsecond, func() { order = append(order, 7) })
	b.At(sim.Microsecond, func() { order = append(order, 3) })
	a.After(2*sim.Microsecond, func() { order = append(order, 77) })
	s.Run()
	if len(order) != 3 || order[0] != 3 || order[1] != 7 || order[2] != 77 {
		t.Fatalf("order = %v", order)
	}
	if a.Now() != 2*sim.Microsecond {
		t.Fatalf("Now = %v", a.Now())
	}
}

func TestSinkFunc(t *testing.T) {
	got := sim.Time(-1)
	var sink Sink = SinkFunc(func(at sim.Time, m Message) { got = at })
	sink.Deliver(5*sim.Nanosecond, nil)
	if got != 5*sim.Nanosecond {
		t.Fatal("SinkFunc did not dispatch")
	}
}

func TestCostAccount(t *testing.T) {
	var a CostAccount
	a.Charge(7)
	a.Charge(35)
	if a.BusyNanos() != 42 {
		t.Fatalf("busy = %d", a.BusyNanos())
	}
}

func TestFidelityStrings(t *testing.T) {
	cases := map[Fidelity]string{
		ProtocolLevel: "protocol", Coarse: "qemu", Detailed: "gem5",
		Fidelity(99): "unknown",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("%d -> %q, want %q", f, f.String(), want)
		}
	}
}
