package core

import (
	"errors"
	"fmt"
	"reflect"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
)

// This file defines the explicit-state contract: how components expose
// their mutable simulation state for checkpointing, how channel payloads in
// flight serialize, and how sinks gain stable names so a re-posted delivery
// event can find its target in a freshly built simulation.

// Checkpoint-boundary errors. They mark state the format deliberately does
// not capture; a checkpoint attempt that hits one fails cleanly instead of
// writing an unrestorable snapshot.
var (
	// ErrNotCheckpointable reports component state outside the format:
	// dynamically created TCP flows, in-flight detailed-host jobs, pending
	// closure waiters.
	ErrNotCheckpointable = errors.New("core: state not checkpointable")
	// ErrUnknownPayload reports an in-flight message type with no
	// registered codec.
	ErrUnknownPayload = errors.New("core: no codec registered for payload type")
	// ErrUnknownSink reports a delivery event whose sink has no stable
	// name in the simulation being checkpointed.
	ErrUnknownSink = errors.New("core: delivery sink has no registered name")
)

// Stateful is implemented by components whose simulation state can be
// captured and rebuilt. The contract: a checkpoint snapshots a quiesced
// component via SnapshotState; restore runs on a freshly constructed,
// identically configured component after Attach, via RestoreState; then
// StartRestored replaces Start (seeding no initial events — the pending
// ones ride in the checkpoint's event section).
type Stateful interface {
	Component
	// SnapshotState appends the component's state. It returns
	// ErrNotCheckpointable (wrapped) when live state falls outside the
	// format.
	SnapshotState(enc *snap.Encoder) error
	// RestoreState rebuilds state from a snapshot taken by an identically
	// configured component. Decode errors and layout mismatches surface as
	// typed errors, never panics.
	RestoreState(dec *snap.Decoder) error
	// WalkSinks visits every delivery sink the component owns under a
	// stable local name, in deterministic order. The checkpoint layer
	// prefixes names with the component name to address re-posted events.
	WalkSinks(fn func(name string, s Sink))
	// StartRestored is Start for a restored run: adopt the end time and any
	// runtime wiring Start would do, but seed no events.
	StartRestored(end sim.Time)
}

// AuxState is implemented by non-component state holders that ride along in
// a checkpoint (workload engines, measurement reservoirs). They are
// registered on the simulation under a unique name.
type AuxState interface {
	SnapshotState(enc *snap.Encoder) error
	RestoreState(dec *snap.Decoder) error
}

// FrameMaker is implemented by components that own a frame pool and can
// mint frames for decoded in-flight messages, so restored frames keep pool
// ownership intact (LiveFrames balances after a restored run).
type FrameMaker interface {
	NewFrame() *proto.Frame
}

// payloadCodec serializes one concrete Message type.
type payloadCodec struct {
	name string
	enc  func(e *snap.Encoder, m Message) error
	dec  func(d *snap.Decoder, owner Component) (Message, error)
}

var (
	payloadByType = map[reflect.Type]*payloadCodec{}
	payloadByName = map[string]*payloadCodec{}
)

// RegisterPayload registers a codec for one concrete payload type under a
// stable name. dec receives the component owning the destination sink, so
// pooled payloads can be reminted from that component's pool (via
// FrameMaker). Registration happens in package init functions; duplicate
// names or types panic.
func RegisterPayload(name string, t reflect.Type,
	enc func(e *snap.Encoder, m Message) error,
	dec func(d *snap.Decoder, owner Component) (Message, error)) {
	if _, dup := payloadByName[name]; dup {
		panic("core: payload codec " + name + " registered twice")
	}
	if _, dup := payloadByType[t]; dup {
		panic("core: payload type " + t.String() + " registered twice")
	}
	c := &payloadCodec{name: name, enc: enc, dec: dec}
	payloadByName[name] = c
	payloadByType[t] = c
}

// EncodePayload appends m's codec name and encoded bytes.
func EncodePayload(e *snap.Encoder, m Message) error {
	c, ok := payloadByType[reflect.TypeOf(m)]
	if !ok {
		return fmt.Errorf("%w: %T", ErrUnknownPayload, m)
	}
	e.String(c.name)
	return c.enc(e, m)
}

// DecodePayload reads one payload encoded by EncodePayload. owner is the
// component whose sink will receive it.
func DecodePayload(d *snap.Decoder, owner Component) (Message, error) {
	name := d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	c, ok := payloadByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPayload, name)
	}
	return c.dec(d, owner)
}

// SinkComparable reports whether s can be used as a map key (named and
// looked up by identity). Func-typed sinks (SinkFunc) are not.
func SinkComparable(s Sink) bool {
	return s != nil && reflect.TypeOf(s).Comparable()
}

// RegisterNamed registers a named event handler with the component's
// ordering source baked in: events re-posted from a checkpoint carry the
// handler name, and the handler re-registers at Attach time in the fresh
// simulation.
func (e Env) RegisterNamed(name string, fn func(sim.NamedArgs)) int32 {
	return e.Sched.RegisterNamed(name, fn)
}

// PostNamed schedules a named event at absolute time t with the component's
// ordering source. It orders identically to Post at the same call position.
func (e Env) PostNamed(t sim.Time, h int32, args sim.NamedArgs) {
	e.Sched.PostNamed(t, e.Src, h, args)
}

// The optimistic input log keys its deep-copy-vs-reference decision on
// Releaser. Wire frames must stay on the deep-copy side: delivery adopts
// their byte buffer, so a logged reference would replay recycled storage.
var _ Releaser = (*proto.WireFrame)(nil)

// Frame payload codecs: the three wire-message shapes the substrates
// exchange. Frames re-mint from the destination component's pool so
// ownership (and the leak counters) stay balanced across a restore. The
// encoded form is the on-the-wire byte string — AppendFrame covers headers
// plus real payload, with virtual payload reconstructed from the IP total
// length — plus the VirtualPayload length for validation.
func init() {
	RegisterPayload("proto.Frame", reflect.TypeOf(&proto.Frame{}),
		func(e *snap.Encoder, m Message) error {
			f := m.(*proto.Frame)
			e.Bytes32(proto.AppendFrame(nil, f))
			return nil
		},
		func(d *snap.Decoder, owner Component) (Message, error) {
			raw := d.Bytes32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			fm, ok := owner.(FrameMaker)
			if !ok {
				return nil, fmt.Errorf("%w: component %q cannot mint frames", ErrNotCheckpointable, owner.Name())
			}
			f := fm.NewFrame()
			// ParseFrameInto adopts its buffer, so hand it a copy — raw
			// aliases the checkpoint bytes, which outlive this frame and
			// must stay immutable (a restore may run many times from one
			// checkpoint).
			if err := proto.ParseFrameInto(f, append([]byte(nil), raw...)); err != nil {
				f.Release()
				return nil, err
			}
			return f, nil
		})
	RegisterPayload("proto.WireFrame", reflect.TypeOf(&proto.WireFrame{}),
		func(e *snap.Encoder, m Message) error {
			e.Bytes32(m.(*proto.WireFrame).B)
			return nil
		},
		func(d *snap.Decoder, owner Component) (Message, error) {
			raw := d.Bytes32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return proto.GetWireFrame(append([]byte(nil), raw...)), nil
		})
	RegisterPayload("proto.RawFrame", reflect.TypeOf(proto.RawFrame{}),
		func(e *snap.Encoder, m Message) error {
			e.Bytes32(m.(proto.RawFrame))
			return nil
		},
		func(d *snap.Decoder, owner Component) (Message, error) {
			raw := d.Bytes32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return proto.RawFrame(append([]byte(nil), raw...)), nil
		})
}
