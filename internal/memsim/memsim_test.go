package memsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/orch"
	"repro/internal/sim"
)

func runMono(n int, p Params, end sim.Time) *Monolithic {
	m := NewMonolithic("gem5", n, p)
	s := orch.New()
	s.Add(m)
	s.RunSequential(end)
	return m
}

func runSplit(t *testing.T, n int, p Params, end sim.Time, coupled bool) ([]*Core, *Mem) {
	s := orch.New()
	cores, mem := BuildSplit(s, n, p)
	if coupled {
		if err := s.RunCoupled(end); err != nil {
			t.Fatal(err)
		}
	} else {
		s.RunSequential(end)
	}
	return cores, mem
}

func TestSplitMatchesMonolithic(t *testing.T) {
	p := DefaultParams()
	const n = 4
	const end = 2 * sim.Millisecond
	mono := runMono(n, p, end)
	cores, mem := runSplit(t, n, p, end, false)
	for i, c := range cores {
		if c.Blocks != mono.Cores()[i].Blocks {
			t.Fatalf("core %d: split %d blocks != monolithic %d",
				i, c.Blocks, mono.Cores()[i].Blocks)
		}
		if c.StallTime != mono.Cores()[i].StallTime {
			t.Fatalf("core %d: stall time diverged: %v vs %v",
				i, c.StallTime, mono.Cores()[i].StallTime)
		}
	}
	if mem.Txns != mono.Mem().Txns {
		t.Fatalf("txns: split %d != monolithic %d", mem.Txns, mono.Mem().Txns)
	}
	if mono.Cores()[0].Blocks == 0 {
		t.Fatal("no progress simulated")
	}
}

func TestSplitCoupledMatchesSequential(t *testing.T) {
	p := DefaultParams()
	const n = 3
	const end = 1 * sim.Millisecond
	seqCores, seqMem := runSplit(t, n, p, end, false)
	cplCores, cplMem := runSplit(t, n, p, end, true)
	for i := range seqCores {
		if seqCores[i].Blocks != cplCores[i].Blocks {
			t.Fatalf("core %d blocks: seq %d != coupled %d",
				i, seqCores[i].Blocks, cplCores[i].Blocks)
		}
	}
	if seqMem.Txns != cplMem.Txns {
		t.Fatalf("mem txns: seq %d != coupled %d", seqMem.Txns, cplMem.Txns)
	}
}

func TestMemoryContentionSlowsCores(t *testing.T) {
	p := DefaultParams()
	const end = 1 * sim.Millisecond
	few, _ := runSplit(t, 2, p, end, false)
	many, manyMem := runSplit(t, 32, p, end, false)
	if many[0].Blocks >= few[0].Blocks {
		t.Fatalf("32-core per-core progress %d should trail 2-core %d (shared memory)",
			many[0].Blocks, few[0].Blocks)
	}
	if many[0].StallTime == 0 {
		t.Fatal("no memory stalls under contention")
	}
	// With 32 cores the controller should be near saturation.
	util := float64(manyMem.Txns) * p.MemService.Seconds() / end.Seconds()
	if util < 0.9 {
		t.Fatalf("memory utilization %.2f, want near saturation", util)
	}
}

func TestCostAccountingSeparatesComponents(t *testing.T) {
	p := DefaultParams()
	const end = 500 * sim.Microsecond
	cores, mem := runSplit(t, 4, p, end, false)
	for _, c := range cores {
		if c.Cost().BusyNanos() == 0 {
			t.Fatal("core accounted no cost")
		}
	}
	if mem.Cost().BusyNanos() == 0 {
		t.Fatal("mem accounted no cost")
	}
	mono := runMono(4, p, end)
	var split uint64
	for _, c := range cores {
		split += c.Cost().BusyNanos()
	}
	split += mem.Cost().BusyNanos()
	if mono.Cost().BusyNanos() != split {
		t.Fatalf("total cost: monolithic %d != split sum %d",
			mono.Cost().BusyNanos(), split)
	}
}

func TestBlockTime(t *testing.T) {
	p := DefaultParams() // 400 instr @ 4GHz, CPI 1 => 100ns
	if bt := p.BlockTime(); bt != 100*sim.Nanosecond {
		t.Fatalf("BlockTime = %v, want 100ns", bt)
	}
}

func TestCoreRequiresOrderedResponses(t *testing.T) {
	c := NewCore(0, DefaultParams())
	s := sim.NewScheduler(0)
	c.Attach(core.Env{Sched: s, Src: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order response should panic")
		}
	}()
	c.onResp(0, MemResp{Core: 0, ID: 99})
}
