package memsim

import (
	"repro/internal/core"
	"repro/internal/orch"
	"repro/internal/sim"
)

// envPort delivers messages through the owning component's own environment
// after a fixed latency — the in-process stand-in for a channel inside the
// monolithic instantiation. Timing matches the split instantiation exactly.
type envPort struct {
	env  *core.Env
	lat  sim.Time
	sink core.Sink
}

func (p envPort) Latency() sim.Time { return p.lat }

func (p envPort) Send(m core.Message) {
	// A typed delivery event (not a closure): it serializes into
	// checkpoints by sink name and payload codec.
	p.env.PostDelivery(p.env.Now()+p.lat, p.sink, m)
}

// Monolithic runs n cores plus the memory controller inside a single
// simulator component — sequential gem5. All simulation cost lands in one
// account, which is why the sequential simulator cannot benefit from more
// host cores.
type Monolithic struct {
	name  string
	env   core.Env
	cost  core.CostAccount
	cores []*Core
	mem   *Mem
}

// NewMonolithic creates the sequential instantiation.
func NewMonolithic(name string, n int, p Params) *Monolithic {
	m := &Monolithic{name: name, mem: NewMem(p)}
	m.mem.UseCost(&m.cost)
	for i := 0; i < n; i++ {
		c := NewCore(i, p)
		c.UseCost(&m.cost)
		m.cores = append(m.cores, c)
	}
	return m
}

// Name implements core.Component.
func (m *Monolithic) Name() string { return m.name }

// Cores returns the embedded cores (for progress inspection).
func (m *Monolithic) Cores() []*Core { return m.cores }

// Mem returns the embedded controller.
func (m *Monolithic) Mem() *Mem { return m.mem }

// Cost implements core.Coster: the single account all pieces charge.
func (m *Monolithic) Cost() *core.CostAccount { return &m.cost }

// TimeTaxNsPerVirtualUs aggregates the per-piece idle costs, since the one
// process simulates everything.
func (m *Monolithic) TimeTaxNsPerVirtualUs() float64 {
	return float64(len(m.cores))*50 + 20
}

// Attach implements core.Component.
func (m *Monolithic) Attach(env core.Env) {
	m.env = env
	m.mem.Attach(env)
	for _, c := range m.cores {
		c.Attach(env)
	}
	p := m.mem.p
	for i, c := range m.cores {
		c.BindMem(envPort{env: &m.env, lat: p.MemLatency, sink: m.mem.ReqSink()})
		m.mem.BindCore(i, envPort{env: &m.env, lat: p.MemLatency, sink: c.MemSink()})
	}
}

// Start implements core.Component.
func (m *Monolithic) Start(end sim.Time) {
	m.mem.Start(end)
	for _, c := range m.cores {
		c.Start(end)
	}
}

// BuildSplit registers n core components plus the memory controller on s
// and connects each core to the controller with a channel whose latency is
// the interconnect latency — the SplitSim-parallelized instantiation.
func BuildSplit(s *orch.Simulation, n int, p Params) ([]*Core, *Mem) {
	mem := NewMem(p)
	s.Add(mem)
	var cores []*Core
	for i := 0; i < n; i++ {
		c := NewCore(i, p)
		s.Add(c)
		cores = append(cores, c)
	}
	for i, c := range cores {
		i, c := i, c
		s.Connect(c.Name()+".mem", p.MemLatency, 0,
			orch.Side{Comp: c, Bind: c.BindMem, Sink: c.MemSink()},
			orch.Side{Comp: mem, Bind: func(port core.Port) { mem.BindCore(i, port) }, Sink: mem.ReqSink()})
	}
	return cores, mem
}
