package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/orch"
	"repro/internal/sim"
)

// Property: for random core counts and workload parameters, the split
// instantiation simulates exactly the monolithic one — the validation the
// paper performs "through detailed simulator logs with timestamps",
// mechanized.
func TestSplitEqualsMonolithicProperty(t *testing.T) {
	f := func(nRaw, blockRaw, serviceRaw uint8) bool {
		n := int(nRaw)%6 + 1
		p := DefaultParams()
		p.BlockInstrs = 100 + int(blockRaw)%800
		p.MemService = sim.Time(5+int(serviceRaw)%40) * sim.Nanosecond
		const end = 300 * sim.Microsecond

		mono := NewMonolithic("gem5", n, p)
		sm := orch.New()
		sm.Add(mono)
		sm.RunSequential(end)

		ss := orch.New()
		cores, mem := BuildSplit(ss, n, p)
		ss.RunSequential(end)

		if mem.Txns != mono.Mem().Txns {
			return false
		}
		for i, c := range cores {
			if c.Blocks != mono.Cores()[i].Blocks ||
				c.StallTime != mono.Cores()[i].StallTime {
				return false
			}
		}
		return mono.Cores()[0].Blocks > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: total progress is monotone in simulated duration.
func TestProgressMonotoneInDuration(t *testing.T) {
	blocks := func(end sim.Time) uint64 {
		s := orch.New()
		cores, _ := BuildSplit(s, 3, DefaultParams())
		s.RunSequential(end)
		var total uint64
		for _, c := range cores {
			total += c.Blocks
		}
		return total
	}
	b1 := blocks(200 * sim.Microsecond)
	b2 := blocks(400 * sim.Microsecond)
	b3 := blocks(800 * sim.Microsecond)
	if !(b1 < b2 && b2 < b3) {
		t.Fatalf("progress not monotone: %d %d %d", b1, b2, b3)
	}
	// Steady state: doubling the duration roughly doubles the work.
	ratio := float64(b3-b2) / float64(b2-b1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("steady-state rate not linear: ratio %.2f", ratio)
	}
}
