package memsim

import (
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Explicit-state support: cores, the memory controller, and the monolithic
// wrapper all implement core.Stateful. Configuration (Params, bindings,
// cost-account routing) is reproduced by the identical build; only mutable
// progress serializes. In-flight MemReq/MemResp messages travel through the
// payload codecs registered below.

var (
	_ core.Stateful = (*Core)(nil)
	_ core.Stateful = (*Mem)(nil)
	_ core.Stateful = (*Monolithic)(nil)
)

func init() {
	core.RegisterPayload("memsim.MemReq", reflect.TypeOf(MemReq{}),
		func(e *snap.Encoder, m core.Message) error {
			r := m.(MemReq)
			e.U32(uint32(r.Core))
			e.U64(r.ID)
			return nil
		},
		func(d *snap.Decoder, _ core.Component) (core.Message, error) {
			return MemReq{Core: int(d.U32()), ID: d.U64()}, d.Err()
		})
	core.RegisterPayload("memsim.MemResp", reflect.TypeOf(MemResp{}),
		func(e *snap.Encoder, m core.Message) error {
			r := m.(MemResp)
			e.U32(uint32(r.Core))
			e.U64(r.ID)
			return nil
		},
		func(d *snap.Decoder, _ core.Component) (core.Message, error) {
			return MemResp{Core: int(d.U32()), ID: d.U64()}, d.Err()
		})
}

// SnapshotState implements core.Stateful.
func (c *Core) SnapshotState(e *snap.Encoder) error {
	e.U64(c.Blocks)
	e.I64(int64(c.StallTime))
	e.U64(c.pending)
	e.I64(int64(c.issueAt))
	return nil
}

// RestoreState implements core.Stateful.
func (c *Core) RestoreState(d *snap.Decoder) error {
	c.Blocks = d.U64()
	c.StallTime = sim.Time(d.I64())
	c.pending = d.U64()
	c.issueAt = sim.Time(d.I64())
	return d.Err()
}

// WalkSinks implements core.Stateful.
func (c *Core) WalkSinks(fn func(name string, s core.Sink)) {
	fn("resp", &c.respSink)
}

// StartRestored implements core.Stateful: adopt the run window; the pending
// block-completion event rides in the checkpoint's event section.
func (c *Core) StartRestored(end sim.Time) { c.end = end }

// SnapshotState implements core.Stateful. The pending-request FIFO encodes
// from its cursor, so the restored queue is the logical queue.
func (m *Mem) SnapshotState(e *snap.Encoder) error {
	e.I64(int64(m.busyUntil))
	e.U64(m.Txns)
	live := m.pend[m.pendHead:]
	e.U32(uint32(len(live)))
	for _, r := range live {
		e.U32(uint32(r.Core))
		e.U64(r.ID)
	}
	return nil
}

// RestoreState implements core.Stateful.
func (m *Mem) RestoreState(d *snap.Decoder) error {
	m.busyUntil = sim.Time(d.I64())
	m.Txns = d.U64()
	n := int(d.U32())
	m.pend = m.pend[:0]
	m.pendHead = 0
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			return d.Err()
		}
		m.pend = append(m.pend, MemReq{Core: int(d.U32()), ID: d.U64()})
	}
	return d.Err()
}

// WalkSinks implements core.Stateful.
func (m *Mem) WalkSinks(fn func(name string, s core.Sink)) {
	fn("req", &m.reqSink)
}

// StartRestored implements core.Stateful (Start seeds nothing either).
func (m *Mem) StartRestored(end sim.Time) {}

// SnapshotState implements core.Stateful by delegating to the embedded
// controller and cores in build order.
func (m *Monolithic) SnapshotState(e *snap.Encoder) error {
	if err := m.mem.SnapshotState(e); err != nil {
		return err
	}
	e.U32(uint32(len(m.cores)))
	for _, c := range m.cores {
		if err := c.SnapshotState(e); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState implements core.Stateful.
func (m *Monolithic) RestoreState(d *snap.Decoder) error {
	if err := m.mem.RestoreState(d); err != nil {
		return err
	}
	if got := int(d.U32()); got != len(m.cores) {
		return fmt.Errorf("%w: %s: snapshot has %d cores, build has %d",
			core.ErrNotCheckpointable, m.name, got, len(m.cores))
	}
	for _, c := range m.cores {
		if err := c.RestoreState(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// WalkSinks implements core.Stateful, prefixing embedded sinks by role.
func (m *Monolithic) WalkSinks(fn func(name string, s core.Sink)) {
	m.mem.WalkSinks(func(n string, s core.Sink) { fn("mem/"+n, s) })
	for i, c := range m.cores {
		i := i
		c.WalkSinks(func(n string, s core.Sink) { fn(fmt.Sprintf("core/%d/%s", i, n), s) })
	}
}

// StartRestored implements core.Stateful.
func (m *Monolithic) StartRestored(end sim.Time) {
	m.mem.StartRestored(end)
	for _, c := range m.cores {
		c.StartRestored(end)
	}
}
