// Package memsim is a modular multi-core memory-system simulator — the
// gem5 analog for the paper's "parallelizing sequential multi-core
// simulations" study (Fig. 7). Cores execute synthetic instruction blocks
// and issue memory transactions; private L1 hits are folded into block
// timing, misses travel over a port-based packetized interface to a shared
// memory controller, exactly the component boundary gem5's ports expose.
//
// The same components can be instantiated two ways:
//
//   - monolithic: one simulator component executes all cores and the memory
//     controller (sequential gem5 — its simulation cost lands in a single
//     cost account, so it cannot be spread over cores);
//   - split: each core is its own component and the memory controller is
//     another, connected through SplitSim channels whose latency is the
//     interconnect latency (the paper's ~1000-LoC gem5 adapter).
//
// Both instantiations produce identical simulated timing; the split one
// parallelizes. Tests verify the equivalence.
package memsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Params configures the synthetic multicore workload and timing model.
type Params struct {
	// ClockHz is the simulated core frequency.
	ClockHz int64
	// BlockInstrs is the number of instructions per compute block between
	// memory transactions.
	BlockInstrs int
	// CPI is cycles per instruction for L1-hit execution.
	CPI float64
	// MemLatency is the one-way interconnect latency core<->memory; in the
	// split instantiation it becomes the channel latency. Every block ends
	// in one shared-memory transaction (the block folds in the L1 hits);
	// memory pressure is tuned via BlockInstrs, keeping the workload
	// perfectly deterministic across instantiations.
	MemLatency sim.Time
	// MemService is the memory controller's per-transaction occupancy
	// (bandwidth bound: one transaction per MemService).
	MemService sim.Time
}

// DefaultParams models 4 GHz cores with a DDR-like shared memory.
func DefaultParams() Params {
	return Params{
		ClockHz:     4_000_000_000,
		BlockInstrs: 400,
		CPI:         1.0,
		MemLatency:  40 * sim.Nanosecond,
		MemService:  15 * sim.Nanosecond,
	}
}

// BlockTime returns the execution time of one compute block.
func (p Params) BlockTime() sim.Time {
	cycles := float64(p.BlockInstrs) * p.CPI
	return sim.Time(cycles * float64(sim.Second) / float64(p.ClockHz))
}

// Simulation-cost model: gem5-like detailed simulation burns roughly a
// microsecond of host CPU per simulated instruction-block plus a per-
// transaction cost at the memory controller.
const (
	// CostPerBlockNs is charged per executed compute block (core side).
	CostPerBlockNs = 180_000
	// CostPerMemTxnNs is charged per memory transaction (controller side);
	// the detailed DRAM/coherence model makes the controller the scaling
	// bottleneck as core counts grow.
	CostPerMemTxnNs = 41_000
)

// MemReq is a packetized memory read/write request.
type MemReq struct {
	Core int
	ID   uint64
}

// Size implements core.Message (a 64-byte cache line plus header).
func (MemReq) Size() int { return 72 }

// MemResp completes a MemReq.
type MemResp struct {
	Core int
	ID   uint64
}

// Size implements core.Message.
func (MemResp) Size() int { return 16 }

// Core simulates one processor core running the synthetic workload. It
// implements core.Component; wire its port to a memory controller (split)
// or drive it from a Monolithic wrapper.
type Core struct {
	name string
	id   int
	p    Params
	env  core.Env
	own  core.CostAccount
	cost *core.CostAccount

	memPort core.Port
	pending uint64

	// Blocks counts completed compute blocks (the progress metric used to
	// validate split == monolithic).
	Blocks uint64
	// StallTime accumulates time waiting on memory.
	StallTime sim.Time

	end     sim.Time
	issueAt sim.Time

	// blockDur caches BlockTime(); block completions post as named events
	// (blockH) so pending ones serialize into checkpoints.
	blockDur sim.Time
	blockH   int32

	respSink coreSink
}

// coreSink delivers memory responses to its core. It is pointer-comparable,
// so delivery events targeting it can be named in checkpoints.
type coreSink struct{ c *Core }

// Deliver implements core.Sink.
func (s *coreSink) Deliver(at sim.Time, m core.Message) { s.c.onResp(at, m) }

// NewCore creates core number id.
func NewCore(id int, p Params) *Core {
	c := &Core{name: fmt.Sprintf("core%d", id), id: id, p: p}
	c.cost = &c.own
	c.blockDur = p.BlockTime()
	c.respSink.c = c
	return c
}

// UseCost redirects the core's simulation-cost charges to a shared account
// (used by the monolithic instantiation).
func (c *Core) UseCost(a *core.CostAccount) { c.cost = a }

// Name implements core.Component.
func (c *Core) Name() string { return c.name }

// Attach implements core.Component; block completions register as a named
// event so a checkpoint can carry them by name.
func (c *Core) Attach(env core.Env) {
	c.env = env
	c.blockH = env.RegisterNamed("memsim/"+c.name+"/block",
		func(sim.NamedArgs) { c.blockDone() })
}

// Cost implements core.Coster.
func (c *Core) Cost() *core.CostAccount { return c.cost }

// TimeTaxNsPerVirtualUs reports the split-gem5 per-process idle cost.
func (c *Core) TimeTaxNsPerVirtualUs() float64 { return 50 }

// BindMem sets the outgoing port toward the memory controller.
func (c *Core) BindMem(p core.Port) { c.memPort = p }

// MemSink returns the sink receiving memory responses.
func (c *Core) MemSink() core.Sink { return &c.respSink }

// Start implements core.Component.
func (c *Core) Start(end sim.Time) {
	c.end = end
	c.runBlock()
}

// runBlock executes one compute block then issues a memory transaction.
func (c *Core) runBlock() {
	c.env.PostNamed(c.env.Now()+c.blockDur, c.blockH, sim.NamedArgs{})
}

// blockDone fires when the block's execution time has elapsed.
func (c *Core) blockDone() {
	c.Blocks++
	c.cost.Charge(CostPerBlockNs)
	c.pending++
	c.issueAt = c.env.Now()
	c.memPort.Send(MemReq{Core: c.id, ID: c.pending})
}

func (c *Core) onResp(at sim.Time, m core.Message) {
	resp := m.(MemResp)
	if resp.ID != c.pending {
		panic("memsim: out-of-order memory response")
	}
	c.StallTime += at - c.issueAt
	c.runBlock()
}

// Mem is the shared memory controller component.
type Mem struct {
	name string
	p    Params
	env  core.Env
	own  core.CostAccount
	cost *core.CostAccount

	ports map[int]core.Port // per-core response ports

	busyUntil sim.Time
	// Txns counts served transactions.
	Txns uint64

	// pend is the FIFO of accepted requests awaiting their service slot.
	// Service completions fire in issue order (busyUntil is non-decreasing
	// and posts at equal times keep posting order), so one named event
	// (serveH) replaces a closure per transaction.
	pend     []MemReq
	pendHead int
	serveH   int32

	reqSink memSink
}

// memSink delivers memory requests to the controller; pointer-comparable
// for checkpoint naming, like coreSink.
type memSink struct{ m *Mem }

// Deliver implements core.Sink.
func (s *memSink) Deliver(at sim.Time, msg core.Message) { s.m.onReq(at, msg) }

// NewMem creates the controller.
func NewMem(p Params) *Mem {
	m := &Mem{name: "memctl", p: p, ports: make(map[int]core.Port)}
	m.cost = &m.own
	m.reqSink.m = m
	return m
}

// UseCost redirects the controller's cost charges to a shared account.
func (m *Mem) UseCost(a *core.CostAccount) { m.cost = a }

// Name implements core.Component.
func (m *Mem) Name() string { return m.name }

// Attach implements core.Component; service completions register as a
// named event.
func (m *Mem) Attach(env core.Env) {
	m.env = env
	m.serveH = env.RegisterNamed("memsim/"+m.name+"/serve",
		func(sim.NamedArgs) { m.serveNext() })
}

// Start implements core.Component.
func (m *Mem) Start(end sim.Time) {}

// Cost implements core.Coster.
func (m *Mem) Cost() *core.CostAccount { return m.cost }

// TimeTaxNsPerVirtualUs reports the controller's idle simulation cost.
func (m *Mem) TimeTaxNsPerVirtualUs() float64 { return 20 }

// BindCore sets the response port toward core id.
func (m *Mem) BindCore(id int, p core.Port) { m.ports[id] = p }

// ReqSink returns the sink receiving memory requests.
func (m *Mem) ReqSink() core.Sink { return &m.reqSink }

// onReq serves a transaction: bandwidth-bound occupancy, then respond.
func (m *Mem) onReq(at sim.Time, msg core.Message) {
	req := msg.(MemReq)
	m.cost.Charge(CostPerMemTxnNs)
	m.Txns++
	start := m.env.Now()
	if m.busyUntil > start {
		start = m.busyUntil
	}
	m.busyUntil = start + m.p.MemService
	if _, ok := m.ports[req.Core]; !ok {
		panic(fmt.Sprintf("memsim: no port for core %d", req.Core))
	}
	m.pend = append(m.pend, req)
	m.env.PostNamed(m.busyUntil, m.serveH, sim.NamedArgs{})
}

// serveNext completes the oldest pending transaction.
func (m *Mem) serveNext() {
	req := m.pend[m.pendHead]
	m.pendHead++
	if m.pendHead == len(m.pend) {
		m.pend = m.pend[:0]
		m.pendHead = 0
	}
	m.ports[req.Core].Send(MemResp{Core: req.Core, ID: req.ID})
}
