package hostsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/tcpstack"
)

// UDPHandler aliases the shared socket-callback type; handlers run after
// the receive path has consumed CPU time.
type UDPHandler = core.UDPHandler

// App is an application process running on a detailed host.
type App interface {
	Start(h *Host)
}

// AppFunc adapts a function to App.
type AppFunc func(h *Host)

// Start implements App.
func (f AppFunc) Start(h *Host) { f(h) }

// Host is a detailed full-system host simulator instance; it implements
// core.Component and tcpstack.Transport.
type Host struct {
	name string
	env  core.Env
	cost core.CostAccount
	p    Params
	ip   proto.IP
	mac  proto.MAC
	rng  *sim.Rand
	end  sim.Time

	// Clock is the guest system clock (oscillator + chrony corrections).
	Clock DisciplinedClock

	nicPort core.Port // PCI channel toward the NIC

	// One busy-until horizon per simulated core; work lands on the least
	// loaded core (deterministic lowest-index tie break).
	cpuBusyUntil []sim.Time
	cpuBusy      sim.Time // accumulated busy time, for utilization stats

	txID       uint64
	txWaiters  map[uint64]func(hw sim.Time)
	phcID      uint64
	phcWaiters map[uint64]func(hw sim.Time)

	udpPorts map[uint16]UDPHandler
	tcpConns map[tcpKey]*tcpstack.Conn
	apps     []App

	// lastHW and lastSW hold the hardware and software (driver-entry)
	// timestamps of the packet currently delivered to a UDP handler.
	lastHW sim.Time
	lastSW sim.Time

	// pool recycles parsed frames and encode buffers for this host's stack.
	pool proto.FramePool

	// freeTxJob/freeRxJob recycle the stack-traversal descriptors parked in
	// the scheduler while simulated CPU time elapses.
	freeTxJob []*txJob
	freeRxJob []*rxJob

	// txSink and rxSink are the typed-delivery sinks for stack-compute
	// completion events — one queue slot per in-flight packet, no closures.
	txSink hostTxSink
	rxSink hostRxSink

	// Statistics.
	RxPackets, TxPackets uint64
}

// txJob is a frame traversing the transmit stack: already encoded, waiting
// for its simulated CPU time to elapse before the PCI doorbell.
type txJob struct {
	h     *Host
	bytes []byte
	stamp bool
	onTx  func(sim.Time)
}

// Size implements core.Message.
func (j *txJob) Size() int { return len(j.bytes) }

// Release implements core.Releaser for end-of-run scheduler sweeps.
func (j *txJob) Release() {
	if j.bytes != nil {
		j.h.pool.PutBuf(j.bytes)
		j.bytes = nil
	}
	j.onTx = nil
}

// rxJob is a parsed frame traversing the receive stack (IRQ + driver +
// stack cost) on its way to the socket layer.
type rxJob struct {
	h      *Host
	f      *proto.Frame
	hw, sw sim.Time
}

// Size implements core.Message.
func (j *rxJob) Size() int { return j.f.Size() }

// Release implements core.Releaser for end-of-run scheduler sweeps.
func (j *rxJob) Release() {
	if j.f != nil {
		j.f.Release()
		j.f = nil
	}
}

// hostTxSink fires when the transmit stack's CPU time has elapsed: the
// doorbell rings and the descriptor crosses the PCI channel.
type hostTxSink struct{ h *Host }

// Deliver implements core.Sink.
func (k *hostTxSink) Deliver(_ sim.Time, m core.Message) {
	h := k.h
	j := m.(*txJob)
	if h.nicPort == nil {
		panic("hostsim: " + h.name + " has no NIC bound")
	}
	h.txID++
	id := h.txID
	if j.stamp && j.onTx != nil {
		h.txWaiters[id] = j.onTx
	}
	b := pci.GetTxBatch()
	b.Subs = append(b.Subs, pci.TxSubmit{ID: id, Frame: j.bytes, Timestamp: j.stamp})
	h.nicPort.Send(b)
	j.bytes, j.onTx = nil, nil
	h.freeTxJob = append(h.freeTxJob, j)
}

// hostRxSink fires when the receive stack's CPU time has elapsed: the
// packet reaches the socket layer and the frame returns to the pool.
type hostRxSink struct{ h *Host }

// Deliver implements core.Sink.
func (k *hostRxSink) Deliver(_ sim.Time, m core.Message) {
	h := k.h
	j := m.(*rxJob)
	h.demux(j.f, j.hw, j.sw)
	j.f.Release()
	j.f = nil
	h.freeRxJob = append(h.freeRxJob, j)
}

type tcpKey struct {
	remote proto.IP
	rport  uint16
	lport  uint16
}

// New creates a detailed host. seed derives all of the host's randomness
// (timing noise); the oscillator is configured separately via Clock.Osc.
func New(name string, ip proto.IP, p Params, seed uint64) *Host {
	h := &Host{
		name: name, ip: ip, mac: proto.MACFromID(uint32(ip)), p: p,
		rng:          sim.NewRand(seed ^ uint64(ip)*0x9e3779b97f4a7c15),
		cpuBusyUntil: make([]sim.Time, 1),
		txWaiters:    make(map[uint64]func(sim.Time)),
		phcWaiters:   make(map[uint64]func(sim.Time)),
		udpPorts:     make(map[uint16]UDPHandler),
		tcpConns:     make(map[tcpKey]*tcpstack.Conn),
	}
	h.txSink.h = h
	h.rxSink.h = h
	return h
}

// SetCores configures the number of simulated cores (default 1 — the
// paper's host configuration). Call before the simulation starts.
func (h *Host) SetCores(n int) {
	if n < 1 {
		panic("hostsim: need at least one core")
	}
	h.cpuBusyUntil = make([]sim.Time, n)
}

// Cores returns the simulated core count.
func (h *Host) Cores() int { return len(h.cpuBusyUntil) }

// Name implements core.Component.
func (h *Host) Name() string { return h.name }

// Attach implements core.Component.
func (h *Host) Attach(env core.Env) { h.env = env }

// Start implements core.Component.
func (h *Host) Start(end sim.Time) {
	h.end = end
	for _, a := range h.apps {
		a.Start(h)
	}
}

// Cost implements core.Coster.
func (h *Host) Cost() *core.CostAccount { return &h.cost }

// TimeTaxNsPerVirtualUs reports the fidelity tier's background simulation
// cost for the makespan model.
func (h *Host) TimeTaxNsPerVirtualUs() float64 { return h.p.SimTimeTaxNsPerUs }

// Params returns the host's parameter set.
func (h *Host) Params() Params { return h.p }

// Fidelity returns the host simulator tier (qemu or gem5).
func (h *Host) Fidelity() core.Fidelity { return h.p.Fidelity }

// AddApp registers an application started with the simulation.
func (h *Host) AddApp(a App) { h.apps = append(h.apps, a) }

// BindNIC sets the outgoing PCI port toward the host's NIC.
func (h *Host) BindNIC(p core.Port) { h.nicPort = p }

// NICSink returns the sink receiving PCI messages from the NIC.
func (h *Host) NICSink() core.Sink { return core.SinkFunc(h.fromNIC) }

// --- app/system API -------------------------------------------------------

// Now returns true virtual time (the simulator's global clock).
func (h *Host) Now() sim.Time { return h.env.Now() }

// End returns the simulation end time.
func (h *Host) End() sim.Time { return h.end }

// ClockNow returns the guest system clock — what gettimeofday would report,
// including oscillator error and chrony corrections.
func (h *Host) ClockNow() sim.Time { return h.Clock.Read(h.env.Now()) }

// After schedules fn after d of true time (timer wheel; consumes no CPU).
func (h *Host) After(d sim.Time, fn func()) *sim.Timer { return h.env.After(d, fn) }

// At schedules fn at absolute true time t.
func (h *Host) At(t sim.Time, fn func()) *sim.Timer { return h.env.At(t, fn) }

// Rand returns the host's deterministic random source.
func (h *Host) Rand() *sim.Rand { return h.rng }

// LocalIP returns the host address.
func (h *Host) LocalIP() proto.IP { return h.ip }

// LocalMAC returns the host Ethernet address.
func (h *Host) LocalMAC() proto.MAC { return h.mac }

// jitter applies the fidelity tier's multiplicative timing noise.
func (h *Host) jitter(d sim.Time) sim.Time {
	if h.p.CostNoiseFrac == 0 || d == 0 {
		return d
	}
	f := 1 + h.p.CostNoiseFrac*(2*h.rng.Float64()-1)
	return sim.Time(float64(d) * f)
}

// computeDone books d of work on the least-loaded simulated core and
// returns its completion time, serialized behind previously queued work.
// This is the mechanism that makes servers saturate and adds the latency
// the protocol-level simulator cannot see.
func (h *Host) computeDone(d sim.Time) sim.Time {
	d = h.jitter(d)
	ci := 0
	for i := 1; i < len(h.cpuBusyUntil); i++ {
		if h.cpuBusyUntil[i] < h.cpuBusyUntil[ci] {
			ci = i
		}
	}
	start := h.env.Now()
	if h.cpuBusyUntil[ci] > start {
		start = h.cpuBusyUntil[ci]
	}
	h.cpuBusyUntil[ci] = start + d
	h.cpuBusy += d
	h.cost.Charge(h.p.SimCostPerEventNs)
	return h.cpuBusyUntil[ci]
}

// Compute runs fn after a simulated core has spent d executing this work.
func (h *Host) Compute(d sim.Time, fn func()) {
	h.env.At(h.computeDone(d), fn)
}

// CPUBusy returns accumulated busy time of the simulated core.
func (h *Host) CPUBusy() sim.Time { return h.cpuBusy }

// BindUDP registers a datagram handler on a local port.
func (h *Host) BindUDP(port uint16, fn UDPHandler) {
	if _, dup := h.udpPorts[port]; dup {
		panic(fmt.Sprintf("hostsim: %s: UDP port %d already bound", h.name, port))
	}
	h.udpPorts[port] = fn
}

// SendUDP transmits a datagram: the send syscall and stack consume CPU,
// then the frame is submitted to the NIC over PCI. The payload is encoded
// synchronously, so the caller's slice is free for reuse on return.
func (h *Host) SendUDP(dst proto.IP, srcPort, dstPort uint16, payload []byte, virtual int) {
	f := h.pool.Get()
	f.Eth = proto.Ethernet{Dst: proto.MACFromID(uint32(dst)), Src: h.mac}
	f.IP = proto.IPv4{Src: h.ip, Dst: dst, Proto: proto.IPProtoUDP}
	f.UDP = proto.UDP{SrcPort: srcPort, DstPort: dstPort}
	f.Payload = payload
	f.VirtualPayload = virtual
	f.Seal()
	h.sendFrame(f, false, nil)
}

// SendUDPTimestamped is SendUDP with hardware TX timestamping requested;
// onTx receives the NIC hardware clock value at wire departure (the
// SO_TIMESTAMPING path ptp4l uses).
func (h *Host) SendUDPTimestamped(dst proto.IP, srcPort, dstPort uint16,
	payload []byte, onTx func(hw sim.Time)) {
	f := h.pool.Get()
	f.Eth = proto.Ethernet{Dst: proto.MACFromID(uint32(dst)), Src: h.mac}
	f.IP = proto.IPv4{Src: h.ip, Dst: dst, Proto: proto.IPProtoUDP}
	f.UDP = proto.UDP{SrcPort: srcPort, DstPort: dstPort}
	f.Payload = payload
	f.Seal()
	h.sendFrame(f, true, onTx)
}

// Output implements tcpstack.Transport: the TCP transmit path consumes CPU
// like any other send.
func (h *Host) Output(f *proto.Frame) { h.sendFrame(f, false, nil) }

// NewFrame implements tcpstack.Transport: segments come from the host's
// frame pool.
func (h *Host) NewFrame() *proto.Frame { return h.pool.Get() }

// Post implements tcpstack.Transport's cheap timer primitive.
func (h *Host) Post(d sim.Time, fn func()) { h.env.Post(h.env.Now()+d, fn) }

// PostRTO implements tcpstack.Transport. Detailed hosts are not checkpoint
// targets, so a plain closure firing suffices here.
func (h *Host) PostRTO(c *tcpstack.Conn, d sim.Time) { h.env.Post(h.env.Now()+d, c.RTOFire) }

// FrameStats implements core.FramePooler.
func (h *Host) FrameStats() proto.PoolStats { return h.pool.Stats() }

// sendFrame encodes f into a pooled buffer and releases it, then parks a
// transmit descriptor in the scheduler until the stack's CPU time elapses.
// Encoding happens before the frame's backing storage can be recycled, so
// payloads may alias a received frame's buffer.
func (h *Host) sendFrame(f *proto.Frame, stamp bool, onTx func(sim.Time)) {
	h.TxPackets++
	var j *txJob
	if k := len(h.freeTxJob); k > 0 {
		j = h.freeTxJob[k-1]
		h.freeTxJob = h.freeTxJob[:k-1]
	} else {
		j = &txJob{h: h}
	}
	j.bytes = proto.AppendFrame(h.pool.GetBuf(), f)
	j.stamp, j.onTx = stamp, onTx
	f.Release()
	h.env.PostDelivery(h.computeDone(h.p.TxStackCost), &h.txSink, j)
}

// ReadPHC issues a PTP-hardware-clock read; fn receives the PHC value and
// runs when the PCIe round trip completes.
func (h *Host) ReadPHC(fn func(hw sim.Time)) {
	h.phcID++
	id := h.phcID
	h.phcWaiters[id] = fn
	h.nicPort.Send(pci.PHCRead{ID: id})
}

// DialTCP creates the sending side of a TCP flow toward a remote endpoint.
// The conn is registered for demux; start it with StartFlow.
func (h *Host) DialTCP(remote proto.IP, lport, rport uint16, algo tcpstack.CCAlgo,
	bytes int64, onDone func()) *tcpstack.Conn {
	c := tcpstack.NewSender(h, remote, proto.MACFromID(uint32(remote)), lport, rport, algo, bytes, onDone)
	h.tcpConns[tcpKey{remote: remote, rport: rport, lport: lport}] = c
	return c
}

// ListenTCP creates the receiving side of a TCP flow.
func (h *Host) ListenTCP(remote proto.IP, lport, rport uint16, algo tcpstack.CCAlgo) *tcpstack.Conn {
	c := tcpstack.NewReceiver(h, remote, proto.MACFromID(uint32(remote)), lport, rport, algo)
	h.tcpConns[tcpKey{remote: remote, rport: rport, lport: lport}] = c
	return c
}

// --- PCI receive path ------------------------------------------------------

func (h *Host) fromNIC(at sim.Time, m core.Message) {
	switch msg := m.(type) {
	case *pci.RxBatch:
		for i := range msg.Pkts {
			h.receiveFrame(msg.Pkts[i])
		}
		pci.PutRxBatch(msg)
	case pci.RxPacket:
		h.receiveFrame(msg)
	case *pci.TxDone:
		if fn, ok := h.txWaiters[msg.ID]; ok {
			delete(h.txWaiters, msg.ID)
			fn(msg.HWTime)
		}
		pci.PutTxDone(msg)
	case pci.TxDone:
		if fn, ok := h.txWaiters[msg.ID]; ok {
			delete(h.txWaiters, msg.ID)
			fn(msg.HWTime)
		}
	case pci.PHCValue:
		if fn, ok := h.phcWaiters[msg.ID]; ok {
			delete(h.phcWaiters, msg.ID)
			fn(msg.HWTime)
		}
	default:
		panic("hostsim: unexpected NIC message")
	}
}

// receiveFrame models interrupt + driver + stack costs, then demuxes to the
// socket layer. The DMA'd bytes are adopted by a pooled frame.
func (h *Host) receiveFrame(msg pci.RxPacket) {
	h.RxPackets++
	f := h.pool.Get()
	if err := proto.ParseFrameInto(f, msg.Frame); err != nil {
		f.Release() // corrupt frame: dropped by the driver
		return
	}
	if f.Eth.EtherType != proto.EtherTypeIPv4 || f.IP.Dst != h.ip {
		f.Release()
		return
	}
	var j *rxJob
	if k := len(h.freeRxJob); k > 0 {
		j = h.freeRxJob[k-1]
		h.freeRxJob = h.freeRxJob[:k-1]
	} else {
		j = &rxJob{h: h}
	}
	// SO_TIMESTAMP software receive timestamp: taken when the driver sees
	// the packet, before it waits behind other work on the CPU.
	j.f, j.hw, j.sw = f, msg.HWTime, h.ClockNow()
	h.env.PostDelivery(h.computeDone(h.p.IRQOverhead+h.p.RxStackCost), &h.rxSink, j)
}

func (h *Host) demux(f *proto.Frame, hw, sw sim.Time) {
	switch f.IP.Proto {
	case proto.IPProtoUDP:
		h.lastHW = hw
		h.lastSW = sw
		if fn, ok := h.udpPorts[f.UDP.DstPort]; ok {
			fn(f.IP.Src, f.UDP.SrcPort, f.Payload, f.VirtualPayload)
		}
	case proto.IPProtoTCP:
		key := tcpKey{remote: f.IP.Src, rport: f.TCP.SrcPort, lport: f.TCP.DstPort}
		if c, ok := h.tcpConns[key]; ok {
			c.Input(f)
		}
	}
}

// LastRxHWTime returns the NIC hardware timestamp of the datagram currently
// being handled (valid only inside a UDPHandler) — the SO_TIMESTAMPING
// receive path.
func (h *Host) LastRxHWTime() sim.Time { return h.lastHW }

// LastRxSWTime returns the software (driver-entry) system-clock timestamp
// of the datagram currently being handled — SO_TIMESTAMP semantics, which
// exclude time the packet spent queued behind other work on the CPU.
func (h *Host) LastRxSWTime() sim.Time { return h.lastSW }
