package hostsim

import (
	"math"

	"repro/internal/sim"
)

// Oscillator models an imperfect clock source: a fixed frequency error
// (drift) plus a slow sinusoidal frequency wander standing in for
// temperature-driven variation. The model is deliberately deterministic —
// reads are pure functions of true time — so clock-synchronization results
// are exactly reproducible.
type Oscillator struct {
	// Offset is the initial phase error.
	Offset sim.Time
	// DriftPPM is the constant frequency error in parts per million.
	DriftPPM float64
	// WanderPPM is the amplitude of the sinusoidal frequency wander.
	WanderPPM float64
	// WanderPeriod is the wander period (0 disables wander).
	WanderPeriod sim.Time
	// Phase shifts the wander sinusoid so hosts don't wander in lockstep.
	Phase float64
}

// Read returns the oscillator's time at true time t.
func (o *Oscillator) Read(t sim.Time) sim.Time {
	err := o.DriftPPM * float64(t) / 1e6
	if o.WanderPPM != 0 && o.WanderPeriod > 0 {
		w := 2 * math.Pi / float64(o.WanderPeriod)
		// Phase error is the integral of the frequency wander
		// A*sin(w*t+phi): -(A/w)*cos(w*t+phi), normalized to start at 0.
		a := o.WanderPPM * 1e-6 / w
		err += a * (math.Cos(o.Phase) - math.Cos(w*float64(t)+o.Phase))
	}
	return t + o.Offset + sim.Time(err)
}

// FreqPPM returns the instantaneous frequency error at true time t, in ppm.
func (o *Oscillator) FreqPPM(t sim.Time) float64 {
	f := o.DriftPPM
	if o.WanderPPM != 0 && o.WanderPeriod > 0 {
		w := 2 * math.Pi / float64(o.WanderPeriod)
		f += o.WanderPPM * math.Sin(w*float64(t)+o.Phase)
	}
	return f
}

// DisciplinedClock is the guest's system clock: the raw oscillator plus the
// corrections a synchronization daemon (chrony) applies — a phase step/slew
// and a frequency adjustment, as clock_adjtime exposes.
type DisciplinedClock struct {
	Osc Oscillator

	corrOffset sim.Time // accumulated phase correction
	corrFreq   float64  // applied frequency correction, ppm
	corrBase   sim.Time // raw-clock time the frequency correction started at
}

// Read returns the disciplined system-clock time at true time t.
func (c *DisciplinedClock) Read(t sim.Time) sim.Time {
	raw := c.Osc.Read(t)
	return raw + c.corrOffset + sim.Time(c.corrFreq*float64(raw-c.corrBase)/1e6)
}

// Adjust applies a phase correction (step) and replaces the frequency
// correction, folding the old frequency term into the accumulated offset.
func (c *DisciplinedClock) Adjust(t sim.Time, offsetDelta sim.Time, freqPPM float64) {
	raw := c.Osc.Read(t)
	c.corrOffset += sim.Time(c.corrFreq*float64(raw-c.corrBase)/1e6) + offsetDelta
	c.corrFreq = freqPPM
	c.corrBase = raw
}

// FreqCorrPPM returns the currently applied frequency correction.
func (c *DisciplinedClock) FreqCorrPPM() float64 { return c.corrFreq }
