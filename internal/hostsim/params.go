// Package hostsim is the detailed full-system host simulator — the analog
// of qemu (instruction counting) and gem5 (detailed timing) running a Linux
// guest. It models what the protocol-level simulator cannot: a finite CPU
// that serializes interrupt handling, network-stack processing, and
// application work; an imperfect local oscillator behind the system clock;
// and a NIC attached over a latency-bearing PCI channel.
//
// Fidelity is a parameter, not a different implementation: Coarse (qemu)
// uses fixed instruction-count timing, Detailed (gem5) uses higher, noisier
// costs that stand in for cache and pipeline effects. The two tiers also
// carry very different simulation-cost models — gem5 is orders of magnitude
// slower to run — which is what the paper's mixed-fidelity trade-off and
// partitioning studies (Figs. 4, 9) measure.
package hostsim

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Params configures a host's timing and simulation-cost model.
type Params struct {
	Fidelity core.Fidelity

	// Guest timing: virtual time consumed by OS operations on the single
	// simulated core.
	IRQOverhead sim.Time // per received-packet interrupt + driver entry
	RxStackCost sim.Time // IP/UDP/TCP receive path + socket wakeup
	TxStackCost sim.Time // syscall + stack + driver transmit path

	// CostNoiseFrac adds multiplicative timing noise (+/- frac, uniform) to
	// every CPU cost. The detailed tier uses it to stand in for cache and
	// pipeline variability that instruction counting cannot see.
	CostNoiseFrac float64

	// Simulation-cost model (host-CPU nanoseconds the simulator itself
	// burns; consumed by the decomp makespan model).
	SimCostPerEventNs uint64  // per simulated packet/compute event
	SimTimeTaxNsPerUs float64 // per virtual microsecond simulated
}

// QemuParams models qemu with instruction counting: deterministic coarse
// timing, comparatively cheap to simulate.
func QemuParams() Params {
	return Params{
		Fidelity:          core.Coarse,
		IRQOverhead:       1200 * sim.Nanosecond,
		RxStackCost:       2500 * sim.Nanosecond,
		TxStackCost:       2000 * sim.Nanosecond,
		CostNoiseFrac:     0,
		SimCostPerEventNs: 3000,
		SimTimeTaxNsPerUs: 12_000, // ~12 s of simulation per simulated s
	}
}

// Gem5Params models gem5 detailed timing: slightly higher and noisy guest
// costs, and a simulation cost two orders of magnitude above qemu's.
func Gem5Params() Params {
	return Params{
		Fidelity:          core.Detailed,
		IRQOverhead:       1600 * sim.Nanosecond,
		RxStackCost:       3200 * sim.Nanosecond,
		TxStackCost:       2600 * sim.Nanosecond,
		CostNoiseFrac:     0.10,
		SimCostPerEventNs: 25000,
		SimTimeTaxNsPerUs: 400_000, // detailed timing: ~30x slower than qemu
	}
}
