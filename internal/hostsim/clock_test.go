package hostsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestOscillatorZeroIsPerfect(t *testing.T) {
	var o Oscillator
	f := func(raw uint32) bool {
		tt := sim.Time(raw) * sim.Microsecond
		return o.Read(tt) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOscillatorDriftLinear(t *testing.T) {
	o := Oscillator{DriftPPM: 25}
	// Error grows linearly: 25us per second.
	for _, s := range []sim.Time{sim.Second, 2 * sim.Second, 4 * sim.Second} {
		err := o.Read(s) - s
		want := sim.Time(25*int64(s)/1_000_000) * 1
		diff := err - want
		if diff < 0 {
			diff = -diff
		}
		if diff > sim.Nanosecond {
			t.Fatalf("at %v: err %v want %v", s, err, want)
		}
	}
}

func TestWanderBounded(t *testing.T) {
	o := Oscillator{WanderPPM: 2, WanderPeriod: sim.Second}
	// Phase error from sinusoidal wander is bounded by 2A/w = 2*2e-6*T/2pi.
	bound := 2 * 2e-6 * float64(sim.Second) / (2 * math.Pi)
	for tt := sim.Time(0); tt < 5*sim.Second; tt += 37 * sim.Millisecond {
		err := float64(o.Read(tt) - tt)
		if math.Abs(err) > bound*1.01 {
			t.Fatalf("wander error %v exceeds bound %v at %v", err, bound, tt)
		}
	}
}

func TestFreqPPMMatchesDerivative(t *testing.T) {
	o := Oscillator{DriftPPM: 10, WanderPPM: 3, WanderPeriod: 2 * sim.Second, Phase: 0.7}
	// Numeric derivative of the phase error matches FreqPPM.
	at := 700 * sim.Millisecond
	const h = sim.Millisecond
	num := float64(o.Read(at+h)-o.Read(at-h))/float64(2*h) - 1
	ana := o.FreqPPM(at) * 1e-6
	if math.Abs(num-ana) > 1e-7 {
		t.Fatalf("numeric %v vs analytic %v", num, ana)
	}
}

func TestDisciplinedClockFoldsFrequencyHistory(t *testing.T) {
	c := DisciplinedClock{Osc: Oscillator{DriftPPM: 30}}
	// Apply a frequency correction at t1, then replace it at t2; the phase
	// accumulated under the first correction must be preserved.
	t1 := sim.Second
	c.Adjust(t1, 0, -30)
	t2 := 2 * sim.Second
	readBefore := c.Read(t2)
	c.Adjust(t2, 0, -30) // re-apply same frequency: no phase jump allowed
	readAfter := c.Read(t2)
	if readBefore != readAfter {
		t.Fatalf("Adjust jumped the clock: %v -> %v", readBefore, readAfter)
	}
	if c.FreqCorrPPM() != -30 {
		t.Fatalf("freq corr = %v", c.FreqCorrPPM())
	}
}

func TestComputeSerializationProperty(t *testing.T) {
	// N Compute calls of random durations finish in order, back to back.
	f := func(dursRaw []uint8) bool {
		if len(dursRaw) == 0 || len(dursRaw) > 20 {
			return true
		}
		h := New("h", 1, QemuParams(), 1)
		s := sim.NewScheduler(0)
		h.Attach(core.Env{Sched: s, Src: 1})
		var finishes []sim.Time
		var total sim.Time
		for _, d := range dursRaw {
			dur := sim.Time(int(d)+1) * sim.Microsecond
			total += dur
			h.Compute(dur, func() { finishes = append(finishes, s.Now()) })
		}
		s.Run()
		if len(finishes) != len(dursRaw) {
			return false
		}
		for i := 1; i < len(finishes); i++ {
			if finishes[i] <= finishes[i-1] {
				return false
			}
		}
		return finishes[len(finishes)-1] == total && h.CPUBusy() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiCoreParallelism(t *testing.T) {
	// Two cores complete two equal jobs in the time one core needs for one.
	run := func(cores int) sim.Time {
		h := New("h", 1, QemuParams(), 1)
		h.SetCores(cores)
		s := sim.NewScheduler(0)
		h.Attach(core.Env{Sched: s, Src: 1})
		var last sim.Time
		for i := 0; i < 4; i++ {
			h.Compute(10*sim.Microsecond, func() { last = s.Now() })
		}
		s.Run()
		return last
	}
	if one, two := run(1), run(2); two*2 != one {
		t.Fatalf("4 jobs: 1 core %v, 2 cores %v — want exact 2x", one, two)
	}
	if four := run(4); four != 10*sim.Microsecond {
		t.Fatalf("4 cores should finish 4 jobs in one job time, got %v", four)
	}
	h := New("h", 1, QemuParams(), 1)
	if h.Cores() != 1 {
		t.Fatal("default core count")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCores(0) should panic")
		}
	}()
	h.SetCores(0)
}
