package hostsim_test

import (
	"fmt"
	"testing"

	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/tcpstack"
)

// rig is a two-detailed-host testbed: h1+nic1 and h2+nic2 on one switch.
type rig struct {
	sim    *orch.Simulation
	net    *netsim.Network
	h1, h2 *hostsim.Host
	n1, n2 *nicsim.NIC
	sw     *netsim.Switch
}

func buildRig(params hostsim.Params) *rig {
	r := &rig{}
	ip1, ip2 := proto.HostIP(1), proto.HostIP(2)
	r.net = netsim.New("net", 1)
	r.sw = r.net.AddSwitch("sw")
	ext1 := r.net.AddExternal(r.sw, "h1", 10*sim.Gbps, ip1)
	ext2 := r.net.AddExternal(r.sw, "h2", 10*sim.Gbps, ip2)
	ext1.SetEncode(true)
	ext2.SetEncode(true)
	r.net.ComputeRoutes()

	r.h1 = hostsim.New("h1", ip1, params, 42)
	r.h2 = hostsim.New("h2", ip2, params, 43)
	r.n1 = nicsim.New("n1", nicsim.DefaultParams())
	r.n2 = nicsim.New("n2", nicsim.DefaultParams())

	s := orch.New()
	s.Add(r.net)
	s.Add(r.h1)
	s.Add(r.n1)
	s.Add(r.h2)
	s.Add(r.n2)
	s.Connect("h1.pci", pci.DefaultLatency, 0,
		orch.Side{Comp: r.h1, Bind: r.h1.BindNIC, Sink: r.h1.NICSink()},
		orch.Side{Comp: r.n1, Bind: r.n1.BindHost, Sink: r.n1.HostSink()})
	s.Connect("n1.eth", 500*sim.Nanosecond, 0,
		orch.Side{Comp: r.n1, Bind: r.n1.BindNet, Sink: r.n1.NetSink()},
		orch.Side{Comp: r.net, Bind: ext1.Bind, Sink: ext1})
	s.Connect("h2.pci", pci.DefaultLatency, 0,
		orch.Side{Comp: r.h2, Bind: r.h2.BindNIC, Sink: r.h2.NICSink()},
		orch.Side{Comp: r.n2, Bind: r.n2.BindHost, Sink: r.n2.HostSink()})
	s.Connect("n2.eth", 500*sim.Nanosecond, 0,
		orch.Side{Comp: r.n2, Bind: r.n2.BindNet, Sink: r.n2.NetSink()},
		orch.Side{Comp: r.net, Bind: ext2.Bind, Sink: ext2})
	r.sim = s
	return r
}

func TestE2EPingRTT(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	// Echo server on h2.
	r.h2.BindUDP(7, func(src proto.IP, sport uint16, payload []byte, _ int) {
		r.h2.SendUDP(src, 7, sport, payload, 0)
	})
	var rtt sim.Time = -1
	var sentAt sim.Time
	r.h1.BindUDP(8000, func(proto.IP, uint16, []byte, int) {
		rtt = r.h1.Now() - sentAt
	})
	r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		sentAt = h.Now()
		h.SendUDP(proto.HostIP(2), 8000, 7, make([]byte, 32), 0)
	}))
	r.sim.RunSequential(1 * sim.Millisecond)
	if rtt < 0 {
		t.Fatal("no echo received")
	}
	// The detailed path must cost far more than the ~2.6us protocol-level
	// RTT: PCI hops, DMA, IRQ and stack costs on both hosts, both ways.
	if rtt < 15*sim.Microsecond || rtt > 60*sim.Microsecond {
		t.Fatalf("e2e RTT = %v, want 15-60us", rtt)
	}
}

func TestServerCPUSerializesRequests(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	const serverOp = 8 * sim.Microsecond
	var replies []sim.Time
	r.h2.BindUDP(7, func(src proto.IP, sport uint16, payload []byte, _ int) {
		r.h2.Compute(serverOp, func() {
			r.h2.SendUDP(src, 7, sport, payload, 0)
		})
	})
	r.h1.BindUDP(8000, func(proto.IP, uint16, []byte, int) {
		replies = append(replies, r.h1.Now())
	})
	r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		for i := 0; i < 10; i++ {
			h.SendUDP(proto.HostIP(2), 8000, 7, make([]byte, 16), 0)
		}
	}))
	r.sim.RunSequential(5 * sim.Millisecond)
	if len(replies) != 10 {
		t.Fatalf("got %d replies, want 10", len(replies))
	}
	// The server core serializes all work, so finishing 10 requests takes
	// at least 10x the per-request CPU occupancy (IRQ + rx stack + app op
	// + tx stack), regardless of pipeline interleaving.
	p := hostsim.QemuParams()
	perReq := p.IRQOverhead + p.RxStackCost + serverOp + p.TxStackCost
	if last := replies[len(replies)-1]; last < 10*perReq {
		t.Fatalf("last reply at %v, want >= %v (server CPU-bound)", last, 10*perReq)
	}
	if r.h2.CPUBusy() < 10*perReq {
		t.Fatalf("server busy %v, want >= %v", r.h2.CPUBusy(), 10*perReq)
	}
	if r.h2.CPUBusy() == 0 {
		t.Fatal("server CPU accounted no busy time")
	}
}

func TestSequentialMatchesCoupled(t *testing.T) {
	trace := func(mode string) []string {
		r := buildRig(hostsim.QemuParams())
		var events []string
		r.h2.BindUDP(7, func(src proto.IP, sport uint16, payload []byte, _ int) {
			events = append(events, fmt.Sprintf("srv@%v", r.h2.Now()))
			r.h2.SendUDP(src, 7, sport, payload, 0)
		})
		r.h1.BindUDP(8000, func(proto.IP, uint16, []byte, int) {
			events = append(events, fmt.Sprintf("cli@%v", r.h1.Now()))
		})
		r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
			var tick func()
			i := 0
			tick = func() {
				if i >= 20 {
					return
				}
				i++
				h.SendUDP(proto.HostIP(2), 8000, 7, make([]byte, 16), 0)
				h.After(30*sim.Microsecond, tick)
			}
			tick()
		}))
		if mode == "seq" {
			r.sim.RunSequential(3 * sim.Millisecond)
		} else {
			if err := r.sim.RunCoupled(3 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return events
	}
	a := trace("seq")
	b := trace("coupled")
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("modes diverged:\nseq:     %v\ncoupled: %v", a, b)
	}
	if len(a) != 40 {
		t.Fatalf("expected 40 events, got %d", len(a))
	}
}

func TestTCPBetweenDetailedHosts(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	done := false
	snd := r.h1.DialTCP(proto.HostIP(2), 40000, proto.PortBulk, tcpstack.CCReno,
		500_000, func() { done = true })
	rcv := r.h2.ListenTCP(proto.HostIP(1), proto.PortBulk, 40000, tcpstack.CCReno)
	r.h1.AddApp(hostsim.AppFunc(func(*hostsim.Host) { snd.StartFlow() }))
	r.sim.RunSequential(200 * sim.Millisecond)
	if !done {
		t.Fatalf("transfer incomplete: acked %d delivered %d rtx %d",
			snd.Acked(), rcv.Delivered(), snd.Retransmits)
	}
	if rcv.Delivered() != 500_000 {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
}

func TestPHCReadRoundTrip(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	var got sim.Time = -1
	var at sim.Time
	r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		h.ReadPHC(func(hw sim.Time) {
			got = hw
			at = h.Now()
		})
	}))
	r.sim.RunSequential(1 * sim.Millisecond)
	if got < 0 {
		t.Fatal("no PHC value")
	}
	// Round trip: 2x PCI latency + NIC read latency.
	want := 2*pci.DefaultLatency + 300*sim.Nanosecond
	if at != want {
		t.Fatalf("PHC read completed at %v, want %v", at, want)
	}
	// PHC (zero drift default) read taken at NIC when request arrived +
	// read latency.
	if got != pci.DefaultLatency+300*sim.Nanosecond {
		t.Fatalf("PHC value %v", got)
	}
}

func TestTxHardwareTimestamp(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	var hwTx sim.Time = -1
	r.h2.BindUDP(proto.PortPTPEvent, func(proto.IP, uint16, []byte, int) {})
	r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		h.SendUDPTimestamped(proto.HostIP(2), proto.PortPTPEvent, proto.PortPTPEvent,
			proto.AppendPTP(nil, proto.PTPMsg{Type: proto.PTPSync, Seq: 1}),
			func(hw sim.Time) { hwTx = hw })
	}))
	r.sim.RunSequential(1 * sim.Millisecond)
	if hwTx < 0 {
		t.Fatal("no TX timestamp delivered")
	}
	// Wire departure: TxStack(2us) + PCI(500ns) + TxDMA(900ns) + serialize.
	if hwTx < 3*sim.Microsecond || hwTx > 5*sim.Microsecond {
		t.Fatalf("hw TX timestamp %v outside expected window", hwTx)
	}
}

func TestGem5NoiseChangesTiming(t *testing.T) {
	rtt := func(params hostsim.Params) sim.Time {
		r := buildRig(params)
		var rtt sim.Time = -1
		var sentAt sim.Time
		r.h2.BindUDP(7, func(src proto.IP, sport uint16, p []byte, _ int) {
			r.h2.SendUDP(src, 7, sport, p, 0)
		})
		r.h1.BindUDP(8000, func(proto.IP, uint16, []byte, int) { rtt = r.h1.Now() - sentAt })
		r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
			sentAt = h.Now()
			h.SendUDP(proto.HostIP(2), 8000, 7, nil, 0)
		}))
		r.sim.RunSequential(1 * sim.Millisecond)
		return rtt
	}
	q := rtt(hostsim.QemuParams())
	g := rtt(hostsim.Gem5Params())
	if g <= q {
		t.Fatalf("gem5 RTT %v should exceed qemu RTT %v (higher stack costs)", g, q)
	}
}

func TestHostCostAccounting(t *testing.T) {
	r := buildRig(hostsim.QemuParams())
	r.h2.BindUDP(7, func(src proto.IP, sport uint16, p []byte, _ int) {})
	r.h1.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		h.SendUDP(proto.HostIP(2), 8000, 7, nil, 0)
	}))
	r.sim.RunSequential(1 * sim.Millisecond)
	if r.h1.Cost().BusyNanos() == 0 || r.h2.Cost().BusyNanos() == 0 {
		t.Fatal("host simulators accounted no cost")
	}
	if r.n1.Cost().BusyNanos() == 0 {
		t.Fatal("NIC simulator accounted no cost")
	}
	if r.h1.TimeTaxNsPerVirtualUs() <= r.n1.TimeTaxNsPerVirtualUs() {
		t.Fatal("host sim must have a higher time tax than the NIC model")
	}
}
