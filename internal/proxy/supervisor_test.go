package proxy_test

import (
	"context"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/link"
	"repro/internal/proto"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func fastCfg(seed uint64) proxy.Config {
	return proxy.Config{
		Heartbeat:   10 * time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
		BackoffMin:  time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Linger:      300 * time.Millisecond,
		MaxAttempts: 200,
		Seed:        seed,
	}
}

// settleGoroutines polls until the goroutine count returns to its
// pre-test baseline, failing the test if it never does.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runSupervised runs the two-network experiment with each side's spliced
// half owned by a Supervisor over real TCP, returning the hosts' receive
// counts and both transport counter snapshots.
func runSupervised(t *testing.T, serverCfg, clientCfg proxy.Config,
	wrapLn func(net.Listener) net.Listener) (rx1, rx2 uint64, sc, cc proxy.Counters) {
	t.Helper()
	n1, h1, x1 := buildNet("n1", 1, 2, 7)
	n2, h2, x2 := buildNet("n2", 2, 1, 7)
	h1.SetApp(senderApp{dst: h2.IP(), count: 50, interval: 20 * sim.Microsecond})
	h2.SetApp(senderApp{dst: h1.IP(), count: 30, interval: 35 * sim.Microsecond})
	h1.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})

	epA, remA := link.NewHalf("x", latency, 0)
	epB, remB := link.NewHalf("x", latency, 0)
	r1 := link.NewRunner("p1", sim.NewScheduler(1))
	r2 := link.NewRunner("p2", sim.NewScheduler(2))
	r1.Attach(epA)
	r2.Attach(epB)
	epA.SetSink(0, 100, x1)
	epB.SetSink(0, 101, x2)
	x1.Bind(epA)
	x2.Bind(epB)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var lnUse net.Listener = ln
	if wrapLn != nil {
		lnUse = wrapLn(ln)
	}
	supS := proxy.NewSupervisor(serverCfg)
	supS.AddChannel(0, remA, proxy.RawFrameCodec{})
	supC := proxy.NewSupervisor(clientCfg)
	supC.AddChannel(0, remB, proxy.RawFrameCodec{})
	sErr := make(chan error, 1)
	cErr := make(chan error, 1)
	go func() { sErr <- supS.Serve(context.Background(), lnUse) }()
	go func() { cErr <- supC.Dial(context.Background(), addr) }()

	r1.AddComponent(n1, 10)
	r2.AddComponent(n2, 11)
	g := &link.Group{}
	g.Add(r1, r2)
	if err := g.Run(end); err != nil {
		t.Fatal(err)
	}
	if err := <-sErr; err != nil {
		t.Fatalf("server supervisor: %v", err)
	}
	if err := <-cErr; err != nil {
		t.Fatalf("client supervisor: %v", err)
	}
	return h1.RxPackets, h2.RxPackets, supS.Counters(), supC.Counters()
}

// TestSupervisedMatchesDirect: on a healthy network, the supervised
// transport changes nothing about the simulation.
func TestSupervisedMatchesDirect(t *testing.T) {
	before := runtime.NumGoroutine()
	d1, d2 := runDirect(t)
	s1, s2, sc, cc := runSupervised(t, fastCfg(1), fastCfg(2), nil)
	if d1 == 0 || d2 == 0 {
		t.Fatal("no traffic in direct run")
	}
	if s1 != d1 || s2 != d2 {
		t.Fatalf("supervised run diverged: direct rx=(%d,%d) supervised rx=(%d,%d)", d1, d2, s1, s2)
	}
	if cc.Dials != 1 || cc.Reconnects != 0 {
		t.Fatalf("clean run dialed oddly: %+v", cc)
	}
	if sc.FramesTx == 0 || sc.FramesRx == 0 || sc.BytesTx == 0 || sc.BytesRx == 0 {
		t.Fatalf("server transport counters empty: %+v", sc)
	}
	settleGoroutines(t, before)
}

// TestSupervisedChaosBitIdentical is the tentpole acceptance test: with
// deterministic connection kills, garbles, and delays injected on BOTH
// sides of the transport, the coupled run must reconnect, resync, and
// still produce output identical to the unfaulted run — with zero leaked
// goroutines. The fault budget guarantees eventual completion, so the
// outcome is always exact: identical output or a typed error.
func TestSupervisedChaosBitIdentical(t *testing.T) {
	before := runtime.NumGoroutine()
	d1, d2 := runDirect(t)
	serverChaos := proxy.NewChaos(42, 2, 4000)
	clientChaos := proxy.NewChaos(43, 3, 4000)
	ccfg := fastCfg(3)
	ccfg.DialFunc = clientChaos.Dialer()
	s1, s2, sc, cc := runSupervised(t, fastCfg(4), ccfg, func(ln net.Listener) net.Listener {
		return proxy.FaultListener{Listener: ln, Chaos: serverChaos}
	})
	if s1 != d1 || s2 != d2 {
		t.Fatalf("chaos run diverged: direct rx=(%d,%d) chaos rx=(%d,%d)", d1, d2, s1, s2)
	}
	_, faultyS := serverChaos.Dealt()
	_, faultyC := clientChaos.Dealt()
	if faultyS+faultyC == 0 {
		t.Fatal("chaos dealt no faults; the test exercised nothing")
	}
	if sc.Reconnects+cc.Reconnects == 0 {
		t.Fatalf("no reconnects despite %d faults: server=%+v client=%+v",
			faultyS+faultyC, sc, cc)
	}
	settleGoroutines(t, before)
}

// TestSupervisedScriptedGarble: one scripted bit flip in the client's
// stream must be caught by the checksum (counted on the server), trigger a
// reconnect, and leave the result untouched.
func TestSupervisedScriptedGarble(t *testing.T) {
	d1, d2 := runDirect(t)
	var dialed atomic.Int32
	var d net.Dialer
	ccfg := fastCfg(5)
	ccfg.DialFunc = func(ctx context.Context, addr string) (net.Conn, error) {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if dialed.Add(1) == 1 {
			return proxy.NewFaultConn(conn, proxy.FaultPlan{KillAt: -1, GarbleAt: 300, DelayAt: -1}), nil
		}
		return conn, nil
	}
	s1, s2, sc, cc := runSupervised(t, fastCfg(6), ccfg, nil)
	if s1 != d1 || s2 != d2 {
		t.Fatalf("garbled run diverged: direct rx=(%d,%d) got rx=(%d,%d)", d1, d2, s1, s2)
	}
	if sc.Corrupt == 0 {
		t.Fatalf("server never counted the corrupt frame: %+v", sc)
	}
	if cc.Dials < 2 || cc.Reconnects == 0 {
		t.Fatalf("client never reconnected: %+v", cc)
	}
}

// runTwoPair runs two independent network pairs; supervised mode carries
// both channels multiplexed over ONE TCP connection.
func runTwoPair(t *testing.T, supervised bool) [4]uint64 {
	t.Helper()
	n1, h1, x1 := buildNet("n1", 1, 2, 7)
	n2, h2, x2 := buildNet("n2", 2, 1, 7)
	n3, h3, x3 := buildNet("n3", 3, 4, 9)
	n4, h4, x4 := buildNet("n4", 4, 3, 9)
	h1.SetApp(senderApp{dst: h2.IP(), count: 50, interval: 20 * sim.Microsecond})
	h2.SetApp(senderApp{dst: h1.IP(), count: 30, interval: 35 * sim.Microsecond})
	h3.SetApp(senderApp{dst: h4.IP(), count: 40, interval: 25 * sim.Microsecond})
	h4.SetApp(senderApp{dst: h3.IP(), count: 25, interval: 30 * sim.Microsecond})
	drop := func(proto.IP, uint16, []byte, int) {}
	h1.BindUDP(9, drop)
	h2.BindUDP(9, drop)
	h3.BindUDP(9, drop)
	h4.BindUDP(9, drop)

	r1 := link.NewRunner("p1", sim.NewScheduler(1))
	r2 := link.NewRunner("p2", sim.NewScheduler(2))
	if !supervised {
		ch1 := link.NewChannel("x", latency, 0)
		ch2 := link.NewChannel("y", latency, 0)
		r1.Attach(ch1.SideA())
		r2.Attach(ch1.SideB())
		r1.Attach(ch2.SideA())
		r2.Attach(ch2.SideB())
		ch1.SideA().SetSink(0, 100, x1)
		ch1.SideB().SetSink(0, 101, x2)
		ch2.SideA().SetSink(0, 102, x3)
		ch2.SideB().SetSink(0, 103, x4)
		x1.Bind(ch1.SideA())
		x2.Bind(ch1.SideB())
		x3.Bind(ch2.SideA())
		x4.Bind(ch2.SideB())
	} else {
		epA, remA := link.NewHalf("x", latency, 0)
		epB, remB := link.NewHalf("x", latency, 0)
		epC, remC := link.NewHalf("y", latency, 0)
		epD, remD := link.NewHalf("y", latency, 0)
		r1.Attach(epA)
		r2.Attach(epB)
		r1.Attach(epC)
		r2.Attach(epD)
		epA.SetSink(0, 100, x1)
		epB.SetSink(0, 101, x2)
		epC.SetSink(0, 102, x3)
		epD.SetSink(0, 103, x4)
		x1.Bind(epA)
		x2.Bind(epB)
		x3.Bind(epC)
		x4.Bind(epD)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		supS := proxy.NewSupervisor(fastCfg(10))
		supS.AddChannel(0, remA, proxy.RawFrameCodec{})
		supS.AddChannel(1, remC, proxy.RawFrameCodec{})
		supC := proxy.NewSupervisor(fastCfg(11))
		supC.AddChannel(0, remB, proxy.RawFrameCodec{})
		supC.AddChannel(1, remD, proxy.RawFrameCodec{})
		sErr := make(chan error, 1)
		cErr := make(chan error, 1)
		go func() { sErr <- supS.Serve(context.Background(), ln) }()
		go func() { cErr <- supC.Dial(context.Background(), ln.Addr().String()) }()
		t.Cleanup(func() {
			if err := <-sErr; err != nil {
				t.Errorf("server supervisor: %v", err)
			}
			if err := <-cErr; err != nil {
				t.Errorf("client supervisor: %v", err)
			}
		})
	}
	r1.AddComponent(n1, 10)
	r1.AddComponent(n3, 12)
	r2.AddComponent(n2, 11)
	r2.AddComponent(n4, 13)
	g := &link.Group{}
	g.Add(r1, r2)
	if err := g.Run(end); err != nil {
		t.Fatal(err)
	}
	return [4]uint64{h1.RxPackets, h2.RxPackets, h3.RxPackets, h4.RxPackets}
}

// TestSupervisedMuxMatchesDirect: two spliced channels share one TCP
// connection through the supervisor mux and still match the in-process
// run exactly.
func TestSupervisedMuxMatchesDirect(t *testing.T) {
	direct := runTwoPair(t, false)
	muxed := runTwoPair(t, true)
	for i := range direct {
		if direct[i] == 0 {
			t.Fatalf("pair host %d saw no traffic", i)
		}
	}
	if muxed != direct {
		t.Fatalf("muxed run diverged: direct=%v muxed=%v", direct, muxed)
	}
}

func TestCountersTableRenders(t *testing.T) {
	tab := proxy.CountersTable(
		[]string{"server", "client"},
		[]proxy.Counters{{Dials: 1, FramesTx: 10}, {Dials: 2, Reconnects: 1, BackoffNanos: 3e6}},
	)
	out := tab.String()
	for _, want := range []string{"server", "client", "reconn", "backoff_ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
