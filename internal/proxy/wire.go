package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/sim"
)

// Wire protocol v2. Every frame is
//
//	u32  length of the remainder (header + payload)
//	u8   kind
//	u16  channel id (mux; one TCP connection carries many spliced channels)
//	u64  virtual timestamp (ps; 0 for control frames)
//	u16  sub-channel (trunk demux; 0 for sync and control frames)
//	u32  CRC32-C over the header fields above and the payload
//	payload bytes
//
// Data and sync frames are sequenced implicitly: the k-th message frame on
// a channel has sequence number k, because both TCP and the channel pipes
// are FIFO. hello and ack frames carry explicit per-channel receive
// counts, which is what makes resync-after-reconnect exact. Heartbeats are
// pure wall-clock liveness traffic and never touch virtual time.
const (
	kindSync      byte = 0 // advances the peer's horizon, no payload
	kindData      byte = 1 // codec-encoded channel payload
	kindEOS       byte = 2 // clean end of one channel's stream
	kindHeartbeat byte = 3 // wall-clock idle liveness, no payload
	kindHello     byte = 4 // session handshake: version + per-channel recvSeq
	kindAck       byte = 5 // per-channel receive counts (prunes retransmit buffers)
	kindReject    byte = 6 // peer refuses the connection (already serving)
	kindBye       byte = 7 // sender is finished and confirms full receipt
)

const headerLen = 1 + 2 + 8 + 2 + 4 // kind + channel + timestamp + sub + crc

// crcOffset is where the checksum sits inside the remainder.
const crcOffset = 1 + 2 + 8 + 2

// maxFrame bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 16 << 20

const (
	helloMagic   = 0x53535058 // "SSPX"
	protoVersion = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed transport errors. Callers can errors.Is against these to
// distinguish failure modes; everything else is an ordinary I/O error.
var (
	// ErrClosed reports a dirty disconnect: the connection ended
	// mid-stream, before every channel delivered its kindEOS.
	ErrClosed = errors.New("proxy: connection closed mid-stream")
	// ErrCorrupt reports a frame that failed validation (bad length,
	// checksum mismatch, unknown kind, or trailing garbage).
	ErrCorrupt = errors.New("proxy: corrupt frame")
	// ErrRejected reports that the peer refused the connection because it
	// is already serving another one.
	ErrRejected = errors.New("proxy: connection rejected by peer")
	// ErrHandshake reports an unrecoverable hello exchange failure
	// (protocol version or channel set mismatch, resync out of range).
	ErrHandshake = errors.New("proxy: handshake failed")
	// ErrGaveUp reports that the supervisor exhausted its reconnect
	// attempts.
	ErrGaveUp = errors.New("proxy: gave up reconnecting")
)

// frame is one decoded wire unit.
type frame struct {
	kind    byte
	ch      uint16
	t       sim.Time
	sub     uint16
	payload []byte
}

// appendWireFrame encodes f (length prefix included) onto dst.
func appendWireFrame(dst []byte, f frame) []byte {
	n := headerLen + len(f.payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	base := len(dst)
	dst = append(dst, f.kind)
	dst = binary.BigEndian.AppendUint16(dst, f.ch)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.t))
	dst = binary.BigEndian.AppendUint16(dst, f.sub)
	crc := crc32.Checksum(dst[base:base+crcOffset], crcTable)
	crc = crc32.Update(crc, crcTable, f.payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return append(dst, f.payload...)
}

// parseFrame decodes the remainder of a frame (everything after the u32
// length prefix). The returned payload aliases b. Every validation failure
// wraps ErrCorrupt: a checksum mismatch, an unknown kind, or a control
// frame carrying bytes it must not (the historical bug was accepting
// sync/EOS frames with trailing garbage, letting framing desync go
// unnoticed until a later frame exploded deep in the endpoint).
func parseFrame(b []byte) (frame, error) {
	var f frame
	if len(b) < headerLen {
		return f, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(b), headerLen)
	}
	f.kind = b[0]
	f.ch = binary.BigEndian.Uint16(b[1:])
	f.t = sim.Time(binary.BigEndian.Uint64(b[3:]))
	f.sub = binary.BigEndian.Uint16(b[11:])
	want := binary.BigEndian.Uint32(b[crcOffset:])
	got := crc32.Checksum(b[:crcOffset], crcTable)
	got = crc32.Update(got, crcTable, b[headerLen:])
	if got != want {
		return f, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	f.payload = b[headerLen:]
	switch f.kind {
	case kindData:
		// any payload
	case kindSync, kindEOS:
		if len(f.payload) != 0 {
			return f, fmt.Errorf("%w: kind %d with %d trailing bytes", ErrCorrupt, f.kind, len(f.payload))
		}
		if f.sub != 0 {
			return f, fmt.Errorf("%w: kind %d with sub-channel %d", ErrCorrupt, f.kind, f.sub)
		}
	case kindHeartbeat, kindReject, kindBye:
		if len(f.payload) != 0 || f.sub != 0 || f.t != 0 {
			return f, fmt.Errorf("%w: control kind %d with non-empty header/payload", ErrCorrupt, f.kind)
		}
	case kindHello, kindAck:
		if f.sub != 0 || f.t != 0 {
			return f, fmt.Errorf("%w: control kind %d with non-empty header", ErrCorrupt, f.kind)
		}
	default:
		return f, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, f.kind)
	}
	return f, nil
}

// readFrame reads one length-prefixed frame from r. The returned payload
// is freshly allocated. I/O errors come back verbatim (see mapEOF for the
// dirty-disconnect translation).
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen || n > maxFrame {
		return frame{}, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	return parseFrame(buf)
}

// mapEOF translates an end-of-stream I/O error into ErrClosed — the
// connection died before the protocol said goodbye — leaving every other
// error (timeouts included) intact.
func mapEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w (%v)", ErrClosed, err)
	}
	return err
}

// chanSeq pairs a channel id with a receive count, the unit of hello and
// ack payloads.
type chanSeq struct {
	id  uint16
	seq uint64
}

// appendHelloFrame builds a complete hello frame: magic, version, and one
// (id, recvSeq) pair per channel.
func appendHelloFrame(dst []byte, seqs []chanSeq) []byte {
	p := make([]byte, 0, 4+1+2+len(seqs)*10)
	p = binary.BigEndian.AppendUint32(p, helloMagic)
	p = append(p, protoVersion)
	p = binary.BigEndian.AppendUint16(p, uint16(len(seqs)))
	for _, cs := range seqs {
		p = binary.BigEndian.AppendUint16(p, cs.id)
		p = binary.BigEndian.AppendUint64(p, cs.seq)
	}
	return appendWireFrame(dst, frame{kind: kindHello, payload: p})
}

// parseHello decodes a hello payload, validating magic, version, and exact
// length.
func parseHello(p []byte) ([]chanSeq, error) {
	if len(p) < 7 {
		return nil, fmt.Errorf("%w: hello payload %d bytes", ErrCorrupt, len(p))
	}
	if binary.BigEndian.Uint32(p) != helloMagic {
		return nil, fmt.Errorf("%w: bad hello magic", ErrHandshake)
	}
	if v := p[4]; v != protoVersion {
		return nil, fmt.Errorf("%w: peer speaks wire protocol v%d, want v%d", ErrHandshake, v, protoVersion)
	}
	n := int(binary.BigEndian.Uint16(p[5:]))
	if len(p) != 7+n*10 {
		return nil, fmt.Errorf("%w: hello payload %d bytes for %d channels", ErrCorrupt, len(p), n)
	}
	seqs := make([]chanSeq, n)
	for i := range seqs {
		off := 7 + i*10
		seqs[i] = chanSeq{
			id:  binary.BigEndian.Uint16(p[off:]),
			seq: binary.BigEndian.Uint64(p[off+2:]),
		}
	}
	return seqs, nil
}

// appendAckFrame builds a complete ack frame carrying per-channel receive
// counts.
func appendAckFrame(dst []byte, seqs []chanSeq) []byte {
	p := make([]byte, 0, 2+len(seqs)*10)
	p = binary.BigEndian.AppendUint16(p, uint16(len(seqs)))
	for _, cs := range seqs {
		p = binary.BigEndian.AppendUint16(p, cs.id)
		p = binary.BigEndian.AppendUint64(p, cs.seq)
	}
	return appendWireFrame(dst, frame{kind: kindAck, payload: p})
}

// parseAck decodes an ack payload, validating exact length.
func parseAck(p []byte) ([]chanSeq, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("%w: ack payload %d bytes", ErrCorrupt, len(p))
	}
	n := int(binary.BigEndian.Uint16(p))
	if len(p) != 2+n*10 {
		return nil, fmt.Errorf("%w: ack payload %d bytes for %d channels", ErrCorrupt, len(p), n)
	}
	seqs := make([]chanSeq, n)
	for i := range seqs {
		off := 2 + i*10
		seqs[i] = chanSeq{
			id:  binary.BigEndian.Uint16(p[off:]),
			seq: binary.BigEndian.Uint64(p[off+2:]),
		}
	}
	return seqs, nil
}

// controlFrame encodes a payload-free frame of the given kind.
func controlFrame(kind byte) []byte {
	return appendWireFrame(nil, frame{kind: kind})
}
