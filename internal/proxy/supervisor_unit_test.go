package proxy

import (
	"bufio"
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/link"
	"repro/internal/sim"
)

func fastConfig(seed uint64) Config {
	return Config{
		Heartbeat:   10 * time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
		BackoffMin:  time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Linger:      200 * time.Millisecond,
		Seed:        seed,
	}
}

func newIdleSupervisor(id uint64) *Supervisor {
	s := NewSupervisor(fastConfig(id))
	_, rem := link.NewHalf("x", sim.Microsecond, 0)
	s.AddChannel(0, rem, RawFrameCodec{})
	return s
}

// TestSupervisorIdleHeartbeatsAndReject drives an idle supervised session:
// heartbeats must flow in both directions on wall-clock time alone, a
// third connection must be refused with a typed reject frame, and context
// cancellation must tear everything down without leaking a goroutine.
func TestSupervisorIdleHeartbeatsAndReject(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	supA, supB := newIdleSupervisor(1), newIdleSupervisor(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aErr := make(chan error, 1)
	bErr := make(chan error, 1)
	go func() { aErr <- supA.Serve(ctx, ln) }()
	go func() { bErr <- supB.Dial(ctx, ln.Addr().String()) }()

	deadline := time.Now().Add(5 * time.Second)
	for supA.Counters().HeartbeatsRx == 0 || supB.Counters().HeartbeatsRx == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no heartbeats: server=%+v client=%+v", supA.Counters(), supB.Counters())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The session is live, so an extra peer gets a reject frame.
	extra, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bufio.NewReader(extra))
	if err != nil {
		t.Fatalf("reading reject: %v", err)
	}
	if f.kind != kindReject {
		t.Fatalf("extra connection got frame kind %d, want reject", f.kind)
	}
	extra.Close()

	cancel()
	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("server: got %v, want context.Canceled", err)
	}
	if err := <-bErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("client: got %v, want context.Canceled", err)
	}
	waitGoroutines(t, before)
}

// TestSupervisorGivesUpTyped: with nobody listening, the client must fail
// with ErrGaveUp after its attempt budget — quickly, and without leaking
// the channel collector goroutines.
func TestSupervisorGivesUpTyped(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // guaranteed connection-refused
	cfg := fastConfig(3)
	cfg.MaxAttempts = 3
	sup := NewSupervisor(cfg)
	_, rem := link.NewHalf("x", sim.Microsecond, 0)
	sup.AddChannel(0, rem, RawFrameCodec{})
	err = sup.Dial(context.Background(), addr)
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("got %v, want ErrGaveUp", err)
	}
	if c := sup.Counters(); c.DialFailures < 3 || c.BackoffNanos == 0 {
		t.Fatalf("counters after give-up: %+v", c)
	}
	waitGoroutines(t, before)
}

// TestSupervisorChannelMismatch: peers registering different channel sets
// must fail the handshake with ErrHandshake on both sides instead of
// exchanging frames for channels the other side cannot route.
func TestSupervisorChannelMismatch(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	supA := newIdleSupervisor(4) // one channel
	supB := NewSupervisor(fastConfig(5))
	_, remB0 := link.NewHalf("x", sim.Microsecond, 0)
	_, remB1 := link.NewHalf("y", sim.Microsecond, 0)
	supB.AddChannel(0, remB0, RawFrameCodec{})
	supB.AddChannel(1, remB1, RawFrameCodec{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aErr := make(chan error, 1)
	bErr := make(chan error, 1)
	go func() { aErr <- supA.Serve(ctx, ln) }()
	go func() { bErr <- supB.Dial(ctx, ln.Addr().String()) }()
	if err := <-aErr; !errors.Is(err, ErrHandshake) {
		t.Fatalf("server: got %v, want ErrHandshake", err)
	}
	if err := <-bErr; !errors.Is(err, ErrHandshake) {
		t.Fatalf("client: got %v, want ErrHandshake", err)
	}
	waitGoroutines(t, before)
}

// TestSupervisorRejectedPeerGivesUp: a second full supervisor dialing into
// an occupied server retries its budget and fails typed — never hangs.
func TestSupervisorRejectedPeerGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	supA, supB := newIdleSupervisor(6), newIdleSupervisor(7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aErr := make(chan error, 1)
	bErr := make(chan error, 1)
	go func() { aErr <- supA.Serve(ctx, ln) }()
	go func() { bErr <- supB.Dial(ctx, ln.Addr().String()) }()
	deadline := time.Now().Add(5 * time.Second)
	for supA.Counters().HeartbeatsRx == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never established")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cfg := fastConfig(8)
	cfg.MaxAttempts = 2
	supC := NewSupervisor(cfg)
	_, remC := link.NewHalf("x", sim.Microsecond, 0)
	supC.AddChannel(0, remC, RawFrameCodec{})
	err = supC.Dial(ctx, ln.Addr().String())
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("intruding peer: got %v, want ErrGaveUp", err)
	}
	cancel()
	<-aErr
	<-bErr
}
