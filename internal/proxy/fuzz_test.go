package proxy

import (
	"bytes"
	"testing"
)

// FuzzProxyFraming mutation-fuzzes the wire format: parseFrame must never
// panic, must reject anything appendWireFrame did not produce, and must
// round-trip exactly what it accepts. readFrame gets the same bytes with
// the length prefix attached so the prefix validation is covered too.
func FuzzProxyFraming(f *testing.F) {
	seed := func(fr frame) {
		enc := appendWireFrame(nil, fr)
		f.Add(enc[4:])
	}
	seed(frame{kind: kindSync, ch: 1, t: 12345})
	seed(frame{kind: kindData, ch: 2, t: 67, sub: 1, payload: []byte("payload")})
	seed(frame{kind: kindEOS, ch: 3, t: 9})
	seed(frame{kind: kindHeartbeat})
	seed(frame{kind: kindBye})
	f.Add(appendHelloFrame(nil, []chanSeq{{id: 0, seq: 4}, {id: 7, seq: 1 << 33}})[4:])
	f.Add(appendAckFrame(nil, []chanSeq{{id: 0, seq: 99}})[4:])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0xfd})

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := parseFrame(body)
		if err != nil {
			return // rejected; that is a fine outcome for arbitrary bytes
		}
		// Accepted frames must be canonical: re-encoding reproduces the
		// input bit for bit (so decode accepts nothing encode cannot make).
		enc := appendWireFrame(nil, fr)
		if !bytes.Equal(enc[4:], body) {
			t.Fatalf("accepted non-canonical frame: %x re-encodes as %x", body, enc[4:])
		}
		// And the stream reader agrees with the buffer parser.
		got, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("readFrame rejected what parseFrame accepted: %v", err)
		}
		if got.kind != fr.kind || got.ch != fr.ch || got.t != fr.t || got.sub != fr.sub ||
			!bytes.Equal(got.payload, fr.payload) {
			t.Fatalf("readFrame round trip changed frame: %+v -> %+v", fr, got)
		}
		// Control payloads must parse without panicking on mutated input.
		switch fr.kind {
		case kindHello:
			parseHello(fr.payload)
		case kindAck:
			parseAck(fr.payload)
		}
	})
}
