package proxy

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/link"
	"repro/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{kind: kindSync, ch: 3, t: 12345},
		{kind: kindData, ch: 7, t: 99, sub: 2, payload: []byte("hello world")},
		{kind: kindData, ch: 0, t: 0, payload: nil},
		{kind: kindEOS, ch: 65535, t: 42},
		{kind: kindHeartbeat},
		{kind: kindReject},
		{kind: kindBye},
	}
	for _, want := range cases {
		enc := appendWireFrame(nil, want)
		got, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("kind %d: %v", want.kind, err)
		}
		if got.kind != want.kind || got.ch != want.ch || got.t != want.t ||
			got.sub != want.sub || !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("kind %d: round trip changed frame: %+v -> %+v", want.kind, want, got)
		}
	}
}

// TestRejectsTrailingGarbage is the satellite-4 regression: sync and EOS
// frames whose length field claims payload bytes must be rejected even when
// the checksum is consistent, instead of silently accepted.
func TestRejectsTrailingGarbage(t *testing.T) {
	for _, kind := range []byte{kindSync, kindEOS, kindHeartbeat, kindReject, kindBye} {
		enc := appendWireFrame(nil, frame{kind: kind, payload: []byte{0xde, 0xad}})
		if _, err := parseFrame(enc[4:]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("kind %d with trailing garbage: got %v, want ErrCorrupt", kind, err)
		}
	}
	// Sub-channel and timestamp abuse on control frames is garbage too.
	if _, err := parseFrame(appendWireFrame(nil, frame{kind: kindSync, sub: 1})[4:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sync with sub-channel: got %v, want ErrCorrupt", err)
	}
	if _, err := parseFrame(appendWireFrame(nil, frame{kind: kindHeartbeat, t: 5})[4:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("heartbeat with timestamp: got %v, want ErrCorrupt", err)
	}
}

// TestEveryBitFlipDetected flips each bit of an encoded frame body and
// demands the parser notice: this is the checksum layer's whole job.
func TestEveryBitFlipDetected(t *testing.T) {
	enc := appendWireFrame(nil, frame{kind: kindData, ch: 9, t: 777, sub: 1, payload: []byte("payload bytes")})
	body := enc[4:]
	for i := 0; i < len(body)*8; i++ {
		mut := append([]byte(nil), body...)
		mut[i/8] ^= 1 << (i % 8)
		if _, err := parseFrame(mut); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	seqs := []chanSeq{{id: 0, seq: 17}, {id: 3, seq: 0}, {id: 9, seq: 1 << 40}}
	hf, err := readFrame(bytes.NewReader(appendHelloFrame(nil, seqs)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseHello(hf.payload)
	if err != nil {
		t.Fatal(err)
	}
	af, err := readFrame(bytes.NewReader(appendAckFrame(nil, seqs)))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := parseAck(af.payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqs {
		if got[i] != seqs[i] || got2[i] != seqs[i] {
			t.Fatalf("hello/ack round trip changed pair %d", i)
		}
	}
	// Version and length validation.
	bad := append([]byte(nil), hf.payload...)
	bad[4] = 99
	if _, err := parseHello(bad); !errors.Is(err, ErrHandshake) {
		t.Fatalf("wrong version: got %v, want ErrHandshake", err)
	}
	if _, err := parseHello(hf.payload[:len(hf.payload)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated hello: got %v, want ErrCorrupt", err)
	}
	if _, err := parseAck(af.payload[:len(af.payload)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated ack: got %v, want ErrCorrupt", err)
	}
}

// TestPumpDirtyDisconnectIsErrClosed is the satellite-1 regression: a
// connection dying mid-frame must surface as ErrClosed, not a bare EOF.
func TestPumpDirtyDisconnectIsErrClosed(t *testing.T) {
	client, server := net.Pipe()
	_, rem := link.NewHalf("x", sim.Microsecond, 0)
	errc := make(chan error, 1)
	go func() { errc <- Pump(server, rem, RawFrameCodec{}) }()
	// A length prefix promising 20 bytes, then only 3 and a slammed door.
	client.Write([]byte{0, 0, 0, 20, 1, 2, 3})
	client.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("dirty disconnect: got %v, want ErrClosed", err)
	}
}

// TestPumpCleanEOSReturnsNil is satellite 1's other half: a proper EOS is
// not an error. The local side is stood in for by an interrupt (its
// simulator already drained).
func TestPumpCleanEOSReturnsNil(t *testing.T) {
	client, server := net.Pipe()
	_, rem := link.NewHalf("x", sim.Microsecond, 0)
	errc := make(chan error, 1)
	go func() { errc <- Pump(server, rem, RawFrameCodec{}) }()
	if _, err := client.Write(appendWireFrame(nil, frame{kind: kindEOS})); err != nil {
		t.Fatal(err)
	}
	rem.Interrupt()
	if err := <-errc; err != nil {
		t.Fatalf("clean EOS: got %v, want nil", err)
	}
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (small slack for runtime helpers).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPumpDoesNotLeakGoroutines is the satellite-2 regression: the old
// Pump returned on the first error while its outbound goroutine stayed
// blocked in Recv forever. Hammer the dirty path and count goroutines.
func TestPumpDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		client, server := net.Pipe()
		_, rem := link.NewHalf("x", sim.Microsecond, 0)
		errc := make(chan error, 1)
		go func() { errc <- Pump(server, rem, RawFrameCodec{}) }()
		client.Close()
		if err := <-errc; !errors.Is(err, ErrClosed) {
			t.Fatalf("iteration %d: got %v, want ErrClosed", i, err)
		}
	}
	waitGoroutines(t, before)
}

// TestServeClosesListenerAfterAccept is the satellite-3 regression: once a
// peer is connected, the listener must be gone so stray dials fail fast
// instead of rotting in the accept backlog.
func TestServeClosesListenerAfterAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_, rem := link.NewHalf("x", sim.Microsecond, 0)
	errc := make(chan error, 1)
	go func() { errc <- Serve(ln, rem, RawFrameCodec{}) }()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The listener closes right after the accept; a second dial must be
	// refused (poll briefly to let Serve get there).
	deadline := time.Now().Add(5 * time.Second)
	for {
		extra, err := net.Dial("tcp", addr)
		if err != nil {
			break // refused: the listener is gone
		}
		extra.Close()
		if time.Now().After(deadline) {
			t.Fatal("second dial still accepted; listener was not closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	conn.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("after dirty client close: got %v, want ErrClosed", err)
	}
}
