package proxy

import (
	"io"
	"sync/atomic"

	"repro/internal/stats"
)

// Counters is a snapshot of one supervisor's transport activity — the
// scale-out analog of link.Counters: where those feed the WTPG with
// per-adapter synchronization cost, these expose what the wall-clock
// transport underneath is doing (frames, bytes, heartbeats, reconnects,
// time lost to backoff).
type Counters struct {
	Dials        uint64 // connection attempts (client) / accepts (server)
	DialFailures uint64 // failed connection attempts
	Reconnects   uint64 // sessions re-established after a failure
	FramesTx     uint64 // frames written (data, sync, EOS)
	FramesRx     uint64 // frames read (all kinds)
	BytesTx      uint64 // bytes written to the socket
	BytesRx      uint64 // bytes read from the socket
	HeartbeatsTx uint64 // idle heartbeats sent
	HeartbeatsRx uint64 // heartbeats received
	AcksTx       uint64 // ack frames sent
	AcksRx       uint64 // ack frames received
	Retransmits  uint64 // frames re-sent during a post-reconnect resync
	Corrupt      uint64 // frames rejected by checksum/validation
	BackoffNanos uint64 // wall-clock nanoseconds spent in reconnect backoff
}

// ctrs is the live, atomically-updated mirror of Counters. Reader, writer,
// and supervision loop all bump fields concurrently.
type ctrs struct {
	dials, dialFailures, reconnects atomic.Uint64
	framesTx, framesRx              atomic.Uint64
	bytesTx, bytesRx                atomic.Uint64
	heartbeatsTx, heartbeatsRx      atomic.Uint64
	acksTx, acksRx                  atomic.Uint64
	retransmits, corrupt, backoff   atomic.Uint64
}

func (c *ctrs) snapshot() Counters {
	return Counters{
		Dials:        c.dials.Load(),
		DialFailures: c.dialFailures.Load(),
		Reconnects:   c.reconnects.Load(),
		FramesTx:     c.framesTx.Load(),
		FramesRx:     c.framesRx.Load(),
		BytesTx:      c.bytesTx.Load(),
		BytesRx:      c.bytesRx.Load(),
		HeartbeatsTx: c.heartbeatsTx.Load(),
		HeartbeatsRx: c.heartbeatsRx.Load(),
		AcksTx:       c.acksTx.Load(),
		AcksRx:       c.acksRx.Load(),
		Retransmits:  c.retransmits.Load(),
		Corrupt:      c.corrupt.Load(),
		BackoffNanos: c.backoff.Load(),
	}
}

// CountersTable renders named counter snapshots as an aligned table, one
// supervisor per row — the same presentation the experiment harnesses use
// for paper-style results.
func CountersTable(names []string, snaps []Counters) *stats.Table {
	t := stats.NewTable("proxy", "dials", "reconn", "ftx", "frx", "btx", "brx",
		"hb", "acks", "retx", "corrupt", "backoff_ms")
	for i, c := range snaps {
		t.Row(names[i], c.Dials, c.Reconnects, c.FramesTx, c.FramesRx,
			c.BytesTx, c.BytesRx, c.HeartbeatsTx, c.AcksTx, c.Retransmits,
			c.Corrupt, c.BackoffNanos/1e6)
	}
	return t
}

// countWriter / countReader count raw socket bytes at the I/O boundary, so
// the byte counters include framing, heartbeats, and handshakes.
type countWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

type countReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}
