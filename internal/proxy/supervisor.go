package proxy

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/link"
	"repro/internal/sim"
)

// Config tunes a Supervisor. The zero value gets production defaults; the
// chaos tests shrink every interval to milliseconds.
type Config struct {
	// Heartbeat is the wall-clock interval at which an idle connection
	// emits liveness frames (and piggybacked acks). Heartbeats never touch
	// virtual time. Default 200ms.
	Heartbeat time.Duration
	// ReadTimeout declares a connection dead when no frame arrives for
	// this long. Default 4×Heartbeat.
	ReadTimeout time.Duration
	// WriteTimeout bounds each socket flush. Default 10s.
	WriteTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential reconnect backoff.
	// Each sleep is jittered uniformly in [0.5, 1.5)× the current value.
	// Defaults 10ms and 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Linger is how long a finished server keeps accepting so the peer can
	// reconnect once more and learn (via the hello exchange) that its last
	// frames arrived. Default 1s.
	Linger time.Duration
	// MaxAttempts is the number of consecutive failed connection attempts
	// (or sessions that die before completing the handshake) tolerated
	// before the supervisor fails with ErrGaveUp. <0 means unlimited.
	// Default 8.
	MaxAttempts int
	// Seed seeds the deterministic backoff-jitter PRNG (sim.Rand), so a
	// given failure sequence reproduces exactly.
	Seed uint64
	// DialFunc overrides the transport dialer; fault-injection tests wrap
	// connections here. Defaults to a plain TCP dial.
	DialFunc func(ctx context.Context, addr string) (net.Conn, error)
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 200 * time.Millisecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 4 * c.Heartbeat
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.Linger <= 0 {
		c.Linger = time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.DialFunc == nil {
		var d net.Dialer
		c.DialFunc = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return c
}

// chanState is the supervisor's view of one proxied channel: the spliced
// link.Remote, the payload codec, the retransmit buffer of encoded frames
// awaiting acknowledgment, and the implicit sequence counters on both
// directions that make resync-after-reconnect exact.
type chanState struct {
	id     uint16
	remote *link.Remote
	codec  Codec

	mu         sync.Mutex
	sent       [][]byte // encoded frames [base, next), pruned by acks
	base       uint64   // sequence number of sent[0]
	next       uint64   // sequence number the collector assigns next
	maxFlushed uint64   // highest sequence ever written to a socket
	localDone  bool     // local endpoint drained; final frame in sent is EOS
	recvSeq    uint64   // peer frames applied to the local endpoint
	peerDone   bool     // peer EOS applied
	peerAck    uint64   // peer-confirmed receive count for our frames
}

func (cs *chanState) append(fb []byte) {
	cs.mu.Lock()
	cs.sent = append(cs.sent, fb)
	cs.next++
	cs.mu.Unlock()
}

// ack records that the peer has received every frame below seq, pruning
// the retransmit buffer.
func (cs *chanState) ack(seq uint64) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if seq > cs.next {
		return fmt.Errorf("%w: peer acked %d frames on channel %d, only %d sent",
			ErrCorrupt, seq, cs.id, cs.next)
	}
	if seq > cs.peerAck {
		cs.peerAck = seq
	}
	for cs.base < seq && len(cs.sent) > 0 {
		cs.sent[0] = nil
		cs.sent = cs.sent[1:]
		cs.base++
	}
	return nil
}

// resync validates the peer's hello receive count and treats it as an ack.
// A count outside [base, next] means the two processes have diverged state
// (e.g. one restarted from scratch); that is unrecoverable.
func (cs *chanState) resync(seq uint64) error {
	cs.mu.Lock()
	base, next := cs.base, cs.next
	cs.mu.Unlock()
	if seq < base || seq > next {
		return fmt.Errorf("%w: peer resyncs channel %d at frame %d, retransmit window is [%d,%d]",
			ErrHandshake, cs.id, seq, base, next)
	}
	return cs.ack(seq)
}

// framesFrom returns up to max encoded frames starting at sequence seq.
// The frames are immutable; the caller writes them without holding locks.
func (cs *chanState) framesFrom(seq uint64, max int) ([][]byte, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if seq < cs.base {
		return nil, fmt.Errorf("%w: need frame %d on channel %d, buffer starts at %d",
			ErrHandshake, seq, cs.id, cs.base)
	}
	i := int(seq - cs.base)
	if i >= len(cs.sent) {
		return nil, nil
	}
	frames := cs.sent[i:]
	if len(frames) > max {
		frames = frames[:max]
	}
	return frames, nil
}

// Supervisor owns the lifecycle of one or more proxied channels over a
// single TCP connection: it dials (or accepts) with bounded exponential
// backoff plus deterministic jitter, multiplexes every registered channel
// over the connection, exchanges wall-clock heartbeats so a dead peer is
// detected in bounded time, and — when the connection dies — reconnects
// and resyncs from per-channel retransmit buffers so the simulation stream
// resumes exactly where it left off. A run supervised on both ends either
// completes bit-identically to the in-process coupled run or fails with a
// typed error; it never deadlocks and never leaks its pump goroutines.
type Supervisor struct {
	cfg Config
	rng *sim.Rand

	chans []*chanState // sorted by id
	byID  map[uint16]*chanState

	kick    chan struct{} // outbound work available / ack requested
	started sync.Once

	running  atomic.Bool // a session is active (extra accepts are rejected)
	byeSeen  atomic.Bool // peer confirmed completion
	ackDirty atomic.Bool // reader requests an eager ack (EOS applied)
	unacked  atomic.Uint64

	fatalMu sync.Mutex
	fatal   error

	ctrs ctrs
}

// NewSupervisor creates a supervisor with the given configuration.
// Register channels with AddChannel, then call Dial or Serve (exactly one
// of them, matching the peer's role).
func NewSupervisor(cfg Config) *Supervisor {
	cfg = cfg.withDefaults()
	return &Supervisor{
		cfg:  cfg,
		rng:  sim.NewRand(cfg.Seed),
		byID: make(map[uint16]*chanState),
		kick: make(chan struct{}, 1),
	}
}

// AddChannel registers one spliced channel half under a wire channel id.
// Both peers must register the same id set; the hello handshake rejects
// mismatches. Must be called before Dial or Serve.
func (s *Supervisor) AddChannel(id uint16, remote *link.Remote, codec Codec) {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("proxy: channel id %d registered twice", id))
	}
	cs := &chanState{id: id, remote: remote, codec: codec}
	s.byID[id] = cs
	s.chans = append(s.chans, cs)
	sort.Slice(s.chans, func(i, j int) bool { return s.chans[i].id < s.chans[j].id })
}

// Counters returns a snapshot of the transport counters.
func (s *Supervisor) Counters() Counters { return s.ctrs.snapshot() }

func (s *Supervisor) fail(err error) {
	s.fatalMu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.fatalMu.Unlock()
}

func (s *Supervisor) fatalErr() error {
	s.fatalMu.Lock()
	defer s.fatalMu.Unlock()
	return s.fatal
}

func (s *Supervisor) kickWriter() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// finished reports transport completion: every channel's local endpoint
// has drained (EOS collected), the peer's EOS has been applied, and the
// peer has acknowledged every frame we ever produced — including the EOS.
func (s *Supervisor) finished() bool {
	for _, cs := range s.chans {
		cs.mu.Lock()
		ok := cs.localDone && cs.peerDone && cs.peerAck >= cs.next
		cs.mu.Unlock()
		if !ok {
			return false
		}
	}
	return true
}

// startCollectors spawns one goroutine per channel that drains the local
// endpoint into the retransmit buffer. Encoding happens here, once per
// message, so retransmission after a reconnect reuses the same bytes.
func (s *Supervisor) startCollectors() {
	s.started.Do(func() {
		for _, cs := range s.chans {
			cs := cs
			go func() {
				for {
					m, ok, intr := cs.remote.RecvInterruptible()
					if intr {
						return
					}
					if !ok {
						fb := appendWireFrame(nil, frame{kind: kindEOS, ch: cs.id})
						cs.mu.Lock()
						cs.sent = append(cs.sent, fb)
						cs.next++
						cs.localDone = true
						cs.mu.Unlock()
						s.kickWriter()
						return
					}
					fb, err := encodeMsg(nil, cs.id, m, cs.codec)
					if err != nil {
						s.fail(fmt.Errorf("proxy: channel %d: %w", cs.id, err))
						s.kickWriter()
						return
					}
					cs.append(fb)
					s.kickWriter()
				}
			}()
		}
	})
}

// release interrupts the collectors (so they exit instead of leaking) and
// closes every channel toward the local simulator, guaranteeing that a
// failed transport can never leave a runner blocked forever on a message
// that will not come: the run finishes — with wrong-but-discarded results
// under the supervisor's returned error — rather than deadlocking.
func (s *Supervisor) release() {
	for _, cs := range s.chans {
		cs.remote.Interrupt()
		cs.remote.CloseToLocal()
	}
}

// Dial supervises the client role: connect to addr, reconnecting with
// backoff on failure, until the transport completes or fails terminally.
func (s *Supervisor) Dial(ctx context.Context, addr string) error {
	connect := func(ctx context.Context) (net.Conn, error) {
		return s.cfg.DialFunc(ctx, addr)
	}
	return s.run(ctx, true, connect)
}

// errDone is the internal signal that a finished server's linger window
// expired with no final reconnect: everything is delivered, stop serving.
var errDone = errors.New("proxy: transport complete")

// Serve supervises the server role: accept sessions on ln (one at a time;
// concurrent extra connections are refused with a reject frame, which
// surfaces as ErrRejected at the dialer) until the transport completes or
// fails terminally. Serve owns ln and closes it on return.
func (s *Supervisor) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	conns := make(chan net.Conn, 1)
	acceptErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-done:
				}
				return
			}
			if s.running.Load() {
				s.reject(c)
				continue
			}
			select {
			case conns <- c:
			default:
				s.reject(c)
			}
		}
	}()
	connect := func(ctx context.Context) (net.Conn, error) {
		if s.finished() {
			// Grace window: the peer may reconnect once more purely to
			// learn from our hello that its final frames arrived.
			t := time.NewTimer(s.cfg.Linger)
			defer t.Stop()
			select {
			case c := <-conns:
				return c, nil
			case <-t.C:
				return nil, errDone
			case err := <-acceptErr:
				return nil, err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		select {
		case c := <-conns:
			return c, nil
		case err := <-acceptErr:
			return nil, err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.run(ctx, false, connect)
}

// reject refuses an extra connection with a typed wire frame so the dialer
// fails fast with ErrRejected instead of hanging.
func (s *Supervisor) reject(c net.Conn) {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	c.Write(controlFrame(kindReject))
	c.Close()
}

// run is the supervision loop shared by both roles.
func (s *Supervisor) run(ctx context.Context, client bool, connect func(context.Context) (net.Conn, error)) error {
	if len(s.chans) == 0 {
		return errors.New("proxy: supervisor has no channels")
	}
	s.startCollectors()
	defer s.release()

	failures := 0
	backoff := s.cfg.BackoffMin
	giveUp := func(err error) error {
		return fmt.Errorf("%w after %d attempts: %v", ErrGaveUp, failures, err)
	}
	for {
		if err := s.fatalErr(); err != nil {
			return err
		}
		if s.finished() && (client || s.byeSeen.Load()) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := connect(ctx)
		if errors.Is(err, errDone) {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !client {
				return err // the listener itself broke
			}
			s.ctrs.dialFailures.Add(1)
			failures++
			if s.cfg.MaxAttempts >= 0 && failures > s.cfg.MaxAttempts {
				return giveUp(err)
			}
			backoff = s.sleepBackoff(ctx, backoff)
			continue
		}
		s.ctrs.dials.Add(1)
		wasRetry := failures > 0
		helloOK, serr := s.session(ctx, conn)
		if helloOK {
			failures = 0
			backoff = s.cfg.BackoffMin
			if wasRetry {
				s.ctrs.reconnects.Add(1)
			}
		}
		if err := s.fatalErr(); err != nil {
			return err
		}
		if s.finished() && (client || s.byeSeen.Load()) {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if serr != nil {
			failures++
			if s.cfg.MaxAttempts >= 0 && failures > s.cfg.MaxAttempts {
				return giveUp(serr)
			}
		}
		backoff = s.sleepBackoff(ctx, backoff)
	}
}

// sleepBackoff sleeps the current backoff with uniform jitter in
// [0.5, 1.5)×, charges the wall time to the backoff counter, and returns
// the doubled (capped) next value. The jitter PRNG is a seeded sim.Rand,
// so a given failure sequence backs off identically across runs.
func (s *Supervisor) sleepBackoff(ctx context.Context, cur time.Duration) time.Duration {
	d := time.Duration(float64(cur) * (0.5 + s.rng.Float64()))
	s.ctrs.backoff.Add(uint64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	next := cur * 2
	if next > s.cfg.BackoffMax {
		next = s.cfg.BackoffMax
	}
	return next
}

// helloFrame encodes a hello with the current per-channel receive counts.
func (s *Supervisor) helloFrame() []byte {
	seqs := make([]chanSeq, len(s.chans))
	for i, cs := range s.chans {
		cs.mu.Lock()
		seqs[i] = chanSeq{id: cs.id, seq: cs.recvSeq}
		cs.mu.Unlock()
	}
	return appendHelloFrame(nil, seqs)
}

// ackSeqs snapshots the receive counts for an ack frame.
func (s *Supervisor) ackSeqs() []chanSeq {
	seqs := make([]chanSeq, len(s.chans))
	for i, cs := range s.chans {
		cs.mu.Lock()
		seqs[i] = chanSeq{id: cs.id, seq: cs.recvSeq}
		cs.mu.Unlock()
	}
	return seqs
}

// session runs one connection: hello handshake, then concurrent read and
// write pumps until completion or failure. helloOK reports whether the
// handshake finished (used to reset the consecutive-failure budget).
func (s *Supervisor) session(ctx context.Context, conn net.Conn) (helloOK bool, err error) {
	s.running.Store(true)
	defer s.running.Store(false)
	defer conn.Close()

	// Unblock both pumps if the context dies mid-session.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-sessionDone:
		}
	}()

	cw := countWriter{w: conn, n: &s.ctrs.bytesTx}
	cr := countReader{r: conn, n: &s.ctrs.bytesRx}
	br := bufio.NewReader(cr)

	// Handshake: both sides write their hello, then read the peer's.
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, err := cw.Write(s.helloFrame()); err != nil {
		return false, mapEOF(err)
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	f, err := readFrame(br)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.ctrs.corrupt.Add(1)
		}
		return false, mapEOF(err)
	}
	switch f.kind {
	case kindReject:
		return false, ErrRejected
	case kindHello:
	default:
		return false, fmt.Errorf("%w: expected hello, got frame kind %d", ErrHandshake, f.kind)
	}
	seqs, err := parseHello(f.payload)
	if err != nil {
		if errors.Is(err, ErrHandshake) {
			s.fail(err)
		}
		return false, err
	}
	if len(seqs) != len(s.chans) {
		err := fmt.Errorf("%w: peer has %d channels, we have %d", ErrHandshake, len(seqs), len(s.chans))
		s.fail(err)
		return false, err
	}
	cursors := make([]uint64, len(s.chans))
	for i, cs := range s.chans {
		if seqs[i].id != cs.id {
			err := fmt.Errorf("%w: peer channel id %d, want %d", ErrHandshake, seqs[i].id, cs.id)
			s.fail(err)
			return false, err
		}
		if err := cs.resync(seqs[i].seq); err != nil {
			s.fail(err)
			return false, err
		}
		cursors[i] = seqs[i].seq
	}
	helloOK = true

	// Pumps: the writer owns all socket writes (frames, acks, heartbeats,
	// bye); the reader dispatches inbound frames and requests eager acks.
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		werr := s.writeLoop(conn, cw, cursors, stop)
		if werr != nil {
			conn.Close() // unblock the reader promptly
		}
		writerErr <- werr
	}()
	rerr := s.readLoop(conn, br)
	close(stop)
	werr := <-writerErr
	if rerr == nil {
		return true, nil
	}
	if werr != nil && !errors.Is(rerr, ErrClosed) {
		return true, rerr
	}
	if werr != nil {
		return true, werr
	}
	return true, rerr
}

// writeLoop drains retransmit buffers onto the socket, piggybacks acks,
// emits idle heartbeats, and announces completion with a bye frame. It
// exits when stop closes (after a final best-effort ack+bye flush) or on a
// write error.
func (s *Supervisor) writeLoop(conn net.Conn, cw countWriter, cursors []uint64, stop <-chan struct{}) error {
	bw := bufio.NewWriter(cw)
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	byeSent := false
	lastActivity := time.Now()

	flush := func(heartbeat bool) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		wrote := false
		for i, cs := range s.chans {
			for {
				frames, err := cs.framesFrom(cursors[i], 64)
				if err != nil {
					s.fail(err)
					return err
				}
				if len(frames) == 0 {
					break
				}
				for _, fb := range frames {
					if _, err := bw.Write(fb); err != nil {
						return err
					}
					cursors[i]++
					s.ctrs.framesTx.Add(1)
					cs.mu.Lock()
					if cursors[i] <= cs.maxFlushed {
						s.ctrs.retransmits.Add(1)
					} else {
						cs.maxFlushed = cursors[i]
					}
					cs.mu.Unlock()
					wrote = true
				}
			}
		}
		sendAck := s.ackDirty.Swap(false) || s.unacked.Load() >= ackEvery
		if heartbeat && !wrote && time.Since(lastActivity) >= s.cfg.Heartbeat {
			if _, err := bw.Write(controlFrame(kindHeartbeat)); err != nil {
				return err
			}
			s.ctrs.heartbeatsTx.Add(1)
			sendAck = true
			wrote = true
		}
		fin := s.finished()
		if fin && !byeSent {
			sendAck = true
		}
		if sendAck {
			s.unacked.Store(0)
			if _, err := bw.Write(appendAckFrame(nil, s.ackSeqs())); err != nil {
				return err
			}
			s.ctrs.acksTx.Add(1)
			wrote = true
		}
		if fin && !byeSent {
			if _, err := bw.Write(controlFrame(kindBye)); err != nil {
				return err
			}
			byeSent = true
			wrote = true
		}
		if wrote {
			lastActivity = time.Now()
		}
		return bw.Flush()
	}

	for {
		if err := flush(false); err != nil {
			return err
		}
		select {
		case <-stop:
			flush(false) // best effort: final frames + ack + bye
			return nil
		case <-hb.C:
			if err := flush(true); err != nil {
				return err
			}
		case <-s.kick:
		}
	}
}

// ackEvery is how many applied frames the reader tolerates before
// requesting an eager ack (bounding the peer's retransmit buffer even
// between heartbeats).
const ackEvery = 512

// readLoop dispatches inbound frames until the session ends. It returns
// nil exactly when the transport is complete from this side's point of
// view: everything sent and acknowledged in both directions — plus, on the
// server, the client's bye (the client exits first; the server lingers).
func (s *Supervisor) readLoop(conn net.Conn, br *bufio.Reader) error {
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		f, err := readFrame(br)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				s.ctrs.corrupt.Add(1)
			}
			if s.finished() && s.byeSeen.Load() {
				return nil
			}
			return mapEOF(err)
		}
		s.ctrs.framesRx.Add(1)
		switch f.kind {
		case kindHeartbeat:
			s.ctrs.heartbeatsRx.Add(1)
		case kindBye:
			s.byeSeen.Store(true)
			if s.finished() {
				s.kickWriter() // answer with our own ack+bye before teardown
				return nil
			}
		case kindAck:
			seqs, err := parseAck(f.payload)
			if err != nil {
				s.ctrs.corrupt.Add(1)
				return err
			}
			s.ctrs.acksRx.Add(1)
			for _, q := range seqs {
				cs, ok := s.byID[q.id]
				if !ok {
					return fmt.Errorf("%w: ack for unknown channel %d", ErrCorrupt, q.id)
				}
				if err := cs.ack(q.seq); err != nil {
					s.fail(err)
					return err
				}
			}
			if s.finished() {
				// Completion: wake the writer so the bye goes out; the
				// client can now leave, the server waits for the bye.
				s.kickWriter()
				if s.byeSeen.Load() {
					return nil
				}
			}
		case kindSync, kindData, kindEOS:
			cs, ok := s.byID[f.ch]
			if !ok {
				return fmt.Errorf("%w: frame for unknown channel %d", ErrCorrupt, f.ch)
			}
			if err := s.apply(cs, f); err != nil {
				return err
			}
		case kindHello:
			return fmt.Errorf("%w: unexpected mid-session hello", ErrCorrupt)
		case kindReject:
			return ErrRejected
		}
	}
}

// apply injects one inbound channel frame into the local endpoint and
// advances the receive sequence. Frames after EOS are protocol violations
// (the resync discipline guarantees the peer never replays past our
// advertised receive count).
func (s *Supervisor) apply(cs *chanState, f frame) error {
	cs.mu.Lock()
	if cs.peerDone {
		cs.mu.Unlock()
		return fmt.Errorf("%w: frame after EOS on channel %d", ErrCorrupt, cs.id)
	}
	cs.recvSeq++
	if f.kind == kindEOS {
		cs.peerDone = true
	}
	cs.mu.Unlock()
	switch f.kind {
	case kindEOS:
		cs.remote.CloseToLocal()
		s.ackDirty.Store(true)
		s.kickWriter()
	case kindSync:
		cs.remote.Inject(link.Message{T: f.t, Kind: link.KindSync})
		s.unacked.Add(1)
	case kindData:
		payload, err := cs.codec.Decode(f.payload)
		if err != nil {
			return err
		}
		cs.remote.Inject(link.Message{T: f.t, Kind: link.KindData, Sub: f.sub, Payload: payload})
		s.unacked.Add(1)
	}
	if s.unacked.Load() >= ackEvery {
		s.kickWriter()
	}
	return nil
}
