package proxy_test

import (
	"net"
	"testing"

	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// buildNet makes a one-switch network with a local host and an external
// port toward the peer network.
func buildNet(name string, localID, remoteID uint32, seed uint64) (*netsim.Network, *netsim.Host, *netsim.ExtPort) {
	n := netsim.New(name, seed)
	sw := n.AddSwitch("sw")
	h := n.AddHost("h", proto.HostIP(localID))
	n.ConnectHostSwitch(h, sw, 10*sim.Gbps, sim.Microsecond)
	x := n.AddExternal(sw, "x", 10*sim.Gbps, proto.HostIP(remoteID))
	x.SetEncode(true) // frames cross the wire as honest bytes
	n.ComputeRoutes()
	return n, h, x
}

// senderApp fires count datagrams at interval.
type senderApp struct {
	dst      proto.IP
	count    int
	interval sim.Time
}

func (s senderApp) Start(h *netsim.Host) {
	sent := 0
	var tick func()
	tick = func() {
		if sent >= s.count {
			return
		}
		sent++
		h.SendUDP(s.dst, 1, 9, []byte("ping"), 200)
		h.After(s.interval, tick)
	}
	tick()
}

const (
	latency = 2 * sim.Microsecond
	end     = 2 * sim.Millisecond
)

// runDirect wires the two networks with an ordinary in-process channel.
func runDirect(t *testing.T) (uint64, uint64) {
	t.Helper()
	n1, h1, x1 := buildNet("n1", 1, 2, 7)
	n2, h2, x2 := buildNet("n2", 2, 1, 7)
	wire(t, n1, n2, h1, h2, x1, x2, nil)
	return h1.RxPackets, h2.RxPackets
}

// runProxied wires them through a real TCP connection on localhost.
func runProxied(t *testing.T) (uint64, uint64) {
	t.Helper()
	n1, h1, x1 := buildNet("n1", 1, 2, 7)
	n2, h2, x2 := buildNet("n2", 2, 1, 7)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wire(t, n1, n2, h1, h2, x1, x2, ln)
	return h1.RxPackets, h2.RxPackets
}

// wire assembles runners; with ln == nil it uses one in-process channel,
// otherwise each side gets a spliced half pumped over TCP.
func wire(t *testing.T, n1, n2 *netsim.Network, h1, h2 *netsim.Host,
	x1, x2 *netsim.ExtPort, ln net.Listener) {
	t.Helper()
	h1.SetApp(senderApp{dst: h2.IP(), count: 50, interval: 20 * sim.Microsecond})
	h2.SetApp(senderApp{dst: h1.IP(), count: 30, interval: 35 * sim.Microsecond})
	h1.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})

	r1 := link.NewRunner("p1", sim.NewScheduler(1))
	r2 := link.NewRunner("p2", sim.NewScheduler(2))

	if ln == nil {
		ch := link.NewChannel("x", latency, 0)
		r1.Attach(ch.SideA())
		r2.Attach(ch.SideB())
		ch.SideA().SetSink(0, 100, x1)
		ch.SideB().SetSink(0, 101, x2)
		x1.Bind(ch.SideA())
		x2.Bind(ch.SideB())
	} else {
		epA, remA := link.NewHalf("x", latency, 0)
		epB, remB := link.NewHalf("x", latency, 0)
		r1.Attach(epA)
		r2.Attach(epB)
		epA.SetSink(0, 100, x1)
		epB.SetSink(0, 101, x2)
		x1.Bind(epA)
		x2.Bind(epB)
		done := make(chan error, 2)
		go func() { done <- proxy.Serve(ln, remA, proxy.RawFrameCodec{}) }()
		go func() { done <- proxy.Dial(ln.Addr().String(), remB, proxy.RawFrameCodec{}) }()
		t.Cleanup(func() {
			for i := 0; i < 2; i++ {
				if err := <-done; err != nil {
					t.Errorf("proxy: %v", err)
				}
			}
		})
	}
	r1.AddComponent(n1, 10)
	r2.AddComponent(n2, 11)
	g := &link.Group{}
	g.Add(r1, r2)
	if err := g.Run(end); err != nil {
		t.Fatal(err)
	}
}

// TestProxiedMatchesDirect is the scale-out correctness property: tunneling
// the channel over TCP changes nothing about the simulation.
func TestProxiedMatchesDirect(t *testing.T) {
	d1, d2 := runDirect(t)
	p1, p2 := runProxied(t)
	if d1 == 0 || d2 == 0 {
		t.Fatal("no traffic in direct run")
	}
	if p1 != d1 || p2 != d2 {
		t.Fatalf("proxied run diverged: direct rx=(%d,%d) proxied rx=(%d,%d)",
			d1, d2, p1, p2)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := &proto.Frame{
		Eth: proto.Ethernet{Dst: proto.MACFromID(2), Src: proto.MACFromID(1)},
		IP:  proto.IPv4{Src: proto.HostIP(1), Dst: proto.HostIP(2), Proto: proto.IPProtoUDP},
		UDP: proto.UDP{SrcPort: 1, DstPort: 9},
	}
	f.Seal()
	raw := proto.RawFrame(proto.AppendFrame(nil, f))
	c := proxy.RawFrameCodec{}
	b, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(proto.RawFrame)
	if string(got) != string(raw) {
		t.Fatal("codec round trip changed bytes")
	}
	if _, err := c.Encode(badMsg{}); err == nil {
		t.Fatal("encoding a non-RawFrame should fail")
	}
}

type badMsg struct{}

func (badMsg) Size() int { return 0 }

func TestRejectsOversizedFrame(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		// A corrupt 1GB length prefix.
		client.Write([]byte{0x40, 0x00, 0x00, 0x00})
		client.Close()
	}()
	ep, rem := link.NewHalf("x", latency, 0)
	_ = ep
	errc := make(chan error, 1)
	go func() { errc <- proxy.Pump(server, rem, proxy.RawFrameCodec{}) }()
	// Give the local side nothing to send; close it so outbound finishes.
	// The inbound reader must reject the bogus frame.
	go func() {
		// Drain Recv by simulating a finished local endpoint: nothing was
		// attached, so just let Pump's outbound block; the inbound error
		// closes the connection, unblocking everything.
	}()
	if err := <-errc; err == nil {
		t.Fatal("expected error for oversized frame")
	}
}
