package proxy

import (
	"context"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// FaultPlan scripts deterministic faults for one connection's outbound
// byte stream. Offsets are absolute byte positions; a negative offset
// disables that fault. Faults fire on the write path, which exercises both
// peers: the writer sees the failure directly, the reader sees a truncated
// or corrupted stream.
type FaultPlan struct {
	// KillAt closes the connection after this many bytes have been
	// written (the remainder of the triggering write is dropped).
	KillAt int64
	// GarbleAt flips one bit in the byte at this stream offset before it
	// reaches the wire — the checksum layer must catch it.
	GarbleAt int64
	// DelayAt sleeps Delay before the write containing this offset,
	// stretching wall-clock time without touching virtual time.
	DelayAt int64
	Delay   time.Duration
	// DoubleClose makes Close call the underlying Close twice, exercising
	// idempotent teardown.
	DoubleClose bool
}

// clean reports whether the plan injects nothing.
func (p FaultPlan) clean() bool {
	return p.KillAt < 0 && p.GarbleAt < 0 && p.DelayAt < 0 && !p.DoubleClose
}

// FaultConn wraps a net.Conn and executes a FaultPlan. It is the chaos
// harness for the supervisor tests: every fault is scripted, so a failing
// run replays exactly.
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu      sync.Mutex
	written int64
	killed  bool
}

// NewFaultConn wraps conn with the given plan.
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	return &FaultConn{Conn: conn, plan: plan}
}

// Write implements net.Conn with fault injection.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	start := c.written
	killed := c.killed
	c.mu.Unlock()
	if killed {
		return 0, net.ErrClosed
	}
	end := start + int64(len(p))
	if c.plan.DelayAt >= 0 && start <= c.plan.DelayAt && c.plan.DelayAt < end {
		time.Sleep(c.plan.Delay)
	}
	if c.plan.GarbleAt >= 0 && start <= c.plan.GarbleAt && c.plan.GarbleAt < end {
		q := append([]byte(nil), p...)
		q[c.plan.GarbleAt-start] ^= 0x20
		p = q
	}
	if c.plan.KillAt >= 0 && end > c.plan.KillAt {
		// Write the prefix up to the kill point, then die mid-frame.
		keep := c.plan.KillAt - start
		if keep > 0 {
			n, _ := c.Conn.Write(p[:keep])
			c.mu.Lock()
			c.written += int64(n)
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.killed = true
		c.mu.Unlock()
		c.Conn.Close()
		return int(max64(0, c.plan.KillAt-start)), net.ErrClosed
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, err
}

// Close implements net.Conn; with DoubleClose it closes twice.
func (c *FaultConn) Close() error {
	err := c.Conn.Close()
	if c.plan.DoubleClose {
		c.Conn.Close()
	}
	return err
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Chaos deals deterministic fault plans to successive connections from a
// seeded sim.Rand — the supervisor's fault-injection harness. The first
// Budget connections each get a random fault (kill, garble, or delay at a
// random byte offset, plus occasional double-close); connections after the
// budget are clean, so a supervised run always completes eventually and
// the assertion can be exact: bit-identical output, typed error, or
// nothing — never a deadlock.
type Chaos struct {
	mu     sync.Mutex
	rng    *sim.Rand
	budget int
	window int64
	delay  time.Duration
	faults []FaultPlan // plans actually dealt, for test introspection
}

// NewChaos creates a dealer injecting faults into the first budget
// connections, at byte offsets uniform in [0, window).
func NewChaos(seed uint64, budget int, window int64) *Chaos {
	return &Chaos{rng: sim.NewRand(seed), budget: budget, window: window,
		delay: 2 * time.Millisecond}
}

// next deals the plan for one more connection.
func (c *Chaos) next() FaultPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	plan := FaultPlan{KillAt: -1, GarbleAt: -1, DelayAt: -1}
	if len(c.faults) < c.budget {
		off := c.rng.Int63n(c.window)
		switch c.rng.Intn(3) {
		case 0:
			plan.KillAt = off
		case 1:
			plan.GarbleAt = off
		case 2:
			plan.DelayAt = off
			plan.Delay = c.delay
			// A delay alone never breaks the session; kill later so the
			// reconnect path still runs.
			plan.KillAt = off + 1 + c.rng.Int63n(c.window)
		}
		plan.DoubleClose = c.rng.Intn(2) == 0
	}
	c.faults = append(c.faults, plan)
	return plan
}

// Wrap applies the next fault plan to conn.
func (c *Chaos) Wrap(conn net.Conn) net.Conn {
	plan := c.next()
	if plan.clean() {
		return conn
	}
	return NewFaultConn(conn, plan)
}

// Dealt returns how many connections were wrapped and how many carried
// faults.
func (c *Chaos) Dealt() (conns, faulty int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.faults {
		if !p.clean() {
			faulty++
		}
	}
	return len(c.faults), faulty
}

// Dialer returns a Config.DialFunc that dials TCP and wraps every
// connection with the next fault plan.
func (c *Chaos) Dialer() func(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return func(ctx context.Context, addr string) (net.Conn, error) {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return c.Wrap(conn), nil
	}
}

// FaultListener wraps a listener so every accepted connection gets the
// next fault plan — the server-side counterpart of Chaos.Dialer.
type FaultListener struct {
	net.Listener
	Chaos *Chaos
}

// Accept implements net.Listener.
func (l FaultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.Chaos.Wrap(conn), nil
}
