// Package proxy tunnels SplitSim channels between OS processes over TCP —
// the SimBricks proxy mechanism the paper relies on for scaling
// simulations out across machines ("scales out with proxy components that
// forward messages between simulator instances across hosts").
//
// One spliced channel half (link.NewHalf) lives in each process; a proxy
// pumps its messages over a length-prefixed TCP framing. The conservative
// synchronization protocol rides along unchanged: data and sync messages
// carry the sender's virtual timestamps, so the receiver's horizon
// computation is identical to the in-process case. Transport latency costs
// wall-clock time only, never simulated time.
//
// Message payloads must be serializable; a Codec maps payload types to
// bytes. RawFrameCodec covers Ethernet channels (the boundary type used by
// network partitioning), and codecs compose per sub-channel for trunks.
package proxy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Codec serializes channel payloads for the wire.
type Codec interface {
	Encode(m core.Message) ([]byte, error)
	Decode(b []byte) (core.Message, error)
}

// RawFrameCodec carries proto.RawFrame payloads (Ethernet channels).
type RawFrameCodec struct{}

// Encode implements Codec.
func (RawFrameCodec) Encode(m core.Message) ([]byte, error) {
	f, ok := m.(proto.RawFrame)
	if !ok {
		return nil, fmt.Errorf("proxy: expected RawFrame, got %T", m)
	}
	return f, nil
}

// Decode implements Codec.
func (RawFrameCodec) Decode(b []byte) (core.Message, error) {
	return proto.RawFrame(append([]byte(nil), b...)), nil
}

// Wire framing: every message is
//
//	u32 length of the remainder
//	u8  kind (0 sync, 1 data, 2 end-of-stream)
//	i64 virtual timestamp (ps)
//	u16 sub-channel
//	payload bytes (data only)
const (
	kindSync byte = 0
	kindData byte = 1
	kindEOS  byte = 2
)

const headerLen = 1 + 8 + 2

// maxFrame bounds a frame to keep a corrupted length prefix from
// allocating unbounded memory.
const maxFrame = 16 << 20

// writeMsg frames one channel message onto w.
func writeMsg(w io.Writer, m link.Message, codec Codec) error {
	var payload []byte
	kind := kindSync
	if m.Kind == link.KindData {
		kind = kindData
		var err error
		payload, err = codec.Encode(m.Payload)
		if err != nil {
			return err
		}
	}
	buf := make([]byte, 4+headerLen, 4+headerLen+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(headerLen+len(payload)))
	buf[4] = kind
	binary.BigEndian.PutUint64(buf[5:], uint64(m.T))
	binary.BigEndian.PutUint16(buf[13:], m.Sub)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// writeEOS signals a clean end of stream.
func writeEOS(w io.Writer) error {
	var buf [4 + headerLen]byte
	binary.BigEndian.PutUint32(buf[:], headerLen)
	buf[4] = kindEOS
	_, err := w.Write(buf[:])
	return err
}

// readMsg reads one framed message. done reports a clean end of stream.
func readMsg(r io.Reader, codec Codec) (m link.Message, done bool, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return m, false, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen || n > maxFrame {
		return m, false, fmt.Errorf("proxy: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return m, false, err
	}
	kind := buf[0]
	m.T = sim.Time(binary.BigEndian.Uint64(buf[1:]))
	m.Sub = binary.BigEndian.Uint16(buf[9:])
	switch kind {
	case kindEOS:
		return m, true, nil
	case kindSync:
		m.Kind = link.KindSync
		return m, false, nil
	case kindData:
		m.Kind = link.KindData
		m.Payload, err = codec.Decode(buf[headerLen:])
		return m, false, err
	default:
		return m, false, fmt.Errorf("proxy: unknown frame kind %d", kind)
	}
}

// Pump runs both directions of one proxied channel over conn until the
// local side finishes (outbound EOS sent) and the remote side finishes
// (inbound EOS received). It owns the connection and closes it.
func Pump(conn net.Conn, remote *link.Remote, codec Codec) error {
	defer conn.Close()
	errc := make(chan error, 2)

	// Outbound: local simulator -> peer process.
	go func() {
		for {
			m, ok := remote.Recv()
			if !ok {
				errc <- writeEOS(conn)
				return
			}
			if err := writeMsg(conn, m, codec); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Inbound: peer process -> local simulator.
	go func() {
		for {
			m, done, err := readMsg(conn, codec)
			if err != nil {
				remote.CloseToLocal()
				errc <- fmt.Errorf("proxy inbound: %w", err)
				return
			}
			if done {
				remote.CloseToLocal()
				errc <- nil
				return
			}
			remote.Inject(m)
		}
	}()

	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			// The deferred close unblocks the other direction: its next
			// conn operation fails, or the local endpoint's completion
			// drains it. errc is buffered, so it never leaks.
			return err
		}
	}
	return nil
}

// Serve accepts exactly one peer connection on ln and pumps the channel.
func Serve(ln net.Listener, remote *link.Remote, codec Codec) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	return Pump(conn, remote, codec)
}

// Dial connects to a listening proxy and pumps the channel.
func Dial(addr string, remote *link.Remote, codec Codec) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return Pump(conn, remote, codec)
}

// ErrClosed is returned by helpers when the transport ended unexpectedly.
var ErrClosed = errors.New("proxy: connection closed")
