// Package proxy tunnels SplitSim channels between OS processes over TCP —
// the SimBricks proxy mechanism the paper relies on for scaling
// simulations out across machines ("scales out with proxy components that
// forward messages between simulator instances across hosts").
//
// One spliced channel half (link.NewHalf) lives in each process; a proxy
// pumps its messages over a length-prefixed, CRC32-C-checksummed TCP
// framing (wire protocol v2, see wire.go and DESIGN.md). The conservative
// synchronization protocol rides along unchanged: data and sync messages
// carry the sender's virtual timestamps, so the receiver's horizon
// computation is identical to the in-process case. Transport latency —
// and every recovery mechanism in this package: heartbeats, reconnect
// backoff, retransmission — costs wall-clock time only, never simulated
// time.
//
// Two layers are exported. Pump/Serve/Dial run one channel over one
// connection with no recovery: if the connection dies, they fail with a
// typed error (ErrClosed for a dirty disconnect). Supervisor (see
// supervisor.go) is the production transport: it multiplexes many
// channels over one connection, reconnects with bounded backoff, resyncs
// retransmit state through a hello handshake so a resumed run is
// bit-identical, and exports per-connection counters.
//
// Message payloads must be serializable; a Codec maps payload types to
// bytes. RawFrameCodec covers Ethernet channels (the boundary type used by
// network partitioning), and codecs compose per sub-channel for trunks.
package proxy

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/proto"
)

// Codec serializes channel payloads for the wire.
type Codec interface {
	Encode(m core.Message) ([]byte, error)
	Decode(b []byte) (core.Message, error)
}

// RawFrameCodec carries proto.RawFrame payloads (Ethernet channels).
type RawFrameCodec struct{}

// Encode implements Codec.
func (RawFrameCodec) Encode(m core.Message) ([]byte, error) {
	switch f := m.(type) {
	case proto.RawFrame:
		return f, nil
	case *proto.WireFrame:
		// The wrapper is not recycled here: it crossed a goroutine boundary
		// to reach the proxy, and the bytes outlive this call on the wire.
		return f.B, nil
	default:
		return nil, fmt.Errorf("proxy: expected an encoded frame, got %T", m)
	}
}

// Decode implements Codec.
func (RawFrameCodec) Decode(b []byte) (core.Message, error) {
	return proto.RawFrame(append([]byte(nil), b...)), nil
}

// encodeMsg turns one channel message into a complete wire frame on
// channel id ch.
func encodeMsg(dst []byte, ch uint16, m link.Message, codec Codec) ([]byte, error) {
	if m.Kind == link.KindData {
		payload, err := codec.Encode(m.Payload)
		if err != nil {
			return nil, err
		}
		if headerLen+len(payload) > maxFrame {
			return nil, fmt.Errorf("proxy: payload of %d bytes exceeds frame limit", len(payload))
		}
		return appendWireFrame(dst, frame{kind: kindData, ch: ch, t: m.T, sub: m.Sub, payload: payload}), nil
	}
	return appendWireFrame(dst, frame{kind: kindSync, ch: ch, t: m.T}), nil
}

// writeMsg frames one channel message onto w (single-channel transport:
// channel id 0).
func writeMsg(w io.Writer, m link.Message, codec Codec) error {
	buf, err := encodeMsg(nil, 0, m, codec)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// writeEOS signals a clean end of stream.
func writeEOS(w io.Writer) error {
	_, err := w.Write(appendWireFrame(nil, frame{kind: kindEOS}))
	return err
}

// readMsg reads one framed message. done reports a clean end of stream; a
// connection that dies before that point surfaces as ErrClosed, so callers
// can tell a dirty disconnect from a clean shutdown. Heartbeats are
// consumed silently (they carry no simulation content); any other control
// frame is a protocol violation on a single-channel transport.
func readMsg(r io.Reader, codec Codec) (m link.Message, done bool, err error) {
	for {
		f, err := readFrame(r)
		if err != nil {
			return m, false, mapEOF(err)
		}
		switch f.kind {
		case kindEOS:
			return m, true, nil
		case kindSync:
			return link.Message{T: f.t, Kind: link.KindSync}, false, nil
		case kindData:
			payload, err := codec.Decode(f.payload)
			if err != nil {
				return m, false, err
			}
			return link.Message{T: f.t, Kind: link.KindData, Sub: f.sub, Payload: payload}, false, nil
		case kindHeartbeat:
			continue
		case kindReject:
			return m, false, ErrRejected
		default:
			return m, false, fmt.Errorf("%w: unexpected control frame kind %d", ErrCorrupt, f.kind)
		}
	}
}

// Pump runs both directions of one proxied channel over conn until the
// local side finishes (outbound EOS sent) and the remote side finishes
// (inbound EOS received). It owns the connection and closes it. Pump
// returns only after both pump goroutines have exited: when one direction
// fails, the connection is closed (unblocking the inbound reader) and the
// Remote is interrupted (unblocking the outbound goroutine, which waits on
// a pipe that no socket close could ever wake — the leak this design
// fixes).
func Pump(conn net.Conn, remote *link.Remote, codec Codec) error {
	var once sync.Once
	stop := func() {
		once.Do(func() {
			conn.Close()
			remote.Interrupt()
		})
	}
	defer stop()

	errc := make(chan error, 2)
	// Outbound: local simulator -> peer process.
	go func() {
		err := func() error {
			for {
				m, ok, intr := remote.RecvInterruptible()
				if intr {
					return nil // torn down by the inbound direction
				}
				if !ok {
					return writeEOS(conn)
				}
				if err := writeMsg(conn, m, codec); err != nil {
					return err
				}
			}
		}()
		if err != nil {
			stop()
		}
		errc <- err
	}()
	// Inbound: peer process -> local simulator.
	go func() {
		br := bufio.NewReader(conn)
		err := func() error {
			for {
				m, done, err := readMsg(br, codec)
				if err != nil {
					remote.CloseToLocal()
					return fmt.Errorf("proxy inbound: %w", err)
				}
				if done {
					remote.CloseToLocal()
					return nil
				}
				remote.Inject(m)
			}
		}()
		if err != nil {
			stop()
		}
		errc <- err
	}()

	var first error
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Serve accepts exactly one peer connection on ln and pumps the channel.
// The listener is closed as soon as the connection is accepted, so a
// second accidental dial fails fast at the dialer instead of hanging
// silently in the accept backlog forever.
func Serve(ln net.Listener, remote *link.Remote, codec Codec) error {
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	ln.Close()
	return Pump(conn, remote, codec)
}

// Dial connects to a listening proxy and pumps the channel.
func Dial(addr string, remote *link.Remote, codec Codec) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return Pump(conn, remote, codec)
}
