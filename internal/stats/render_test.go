package stats

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestCDFAgreesWithPercentile pins the CDF/Percentile consistency contract:
// for every evenly spaced fraction, the CDF point must carry exactly the
// value Percentile returns for that fraction, including at float-rounding
// boundaries.
func TestCDFAgreesWithPercentile(t *testing.T) {
	for _, tc := range []struct{ samples, points int }{
		{10, 10},
		{10, 4},
		{7, 7},
		{100, 33},
		// 15/22*22 computes as 14.999999999999998: truncation used to
		// select rank 13 where the nearest-rank rule selects rank 14.
		{22, 22},
		{1, 5},
	} {
		var l Latency
		for i := 0; i < tc.samples; i++ {
			l.Add(sim.Time(1000 * (i + 1)))
		}
		cdf := l.CDF(tc.points)
		if len(cdf) != tc.points {
			t.Fatalf("CDF(%d) on %d samples: got %d points", tc.points, tc.samples, len(cdf))
		}
		for _, pt := range cdf {
			want := l.Percentile(pt.Frac * 100)
			if pt.Value != want {
				t.Errorf("samples=%d points=%d frac=%v: CDF value %v != Percentile %v",
					tc.samples, tc.points, pt.Frac, pt.Value, want)
			}
		}
		// The final point must be the maximum.
		if cdf[len(cdf)-1].Value != l.Max() {
			t.Errorf("samples=%d points=%d: last CDF value %v != max %v",
				tc.samples, tc.points, cdf[len(cdf)-1].Value, l.Max())
		}
	}
}

// TestCDFBoundaryRank pins the specific float-rounding case: rank 15 of 22.
func TestCDFBoundaryRank(t *testing.T) {
	var l Latency
	for i := 1; i <= 22; i++ {
		l.Add(sim.Time(i))
	}
	cdf := l.CDF(22)
	// Point 15 (f = 15/22) must be the 15th smallest sample, not the 14th.
	if got := cdf[14].Value; got != 15 {
		t.Fatalf("CDF point at f=15/22 = %v, want 15", got)
	}
}

// TestTableOverflowColumns renders rows wider than the header: every
// overflow cell must get its own column width and the separator must span
// all columns.
func TestTableOverflowColumns(t *testing.T) {
	tb := NewTable("name", "val")
	tb.Row("a", 1, "extra-wide-overflow", 7)
	tb.Row("bb", 22, "x", 88888)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	sep := lines[1]
	// Separator spans all four columns: four dash runs.
	if got := len(strings.Fields(sep)); got != 4 {
		t.Fatalf("separator has %d runs, want 4:\n%s", got, out)
	}
	// Cells of one column start at the same offset in every row.
	row1, row2 := lines[2], lines[3]
	if strings.Index(row1, "extra-wide-overflow") != strings.Index(row2, "x") {
		t.Fatalf("overflow column misaligned:\n%s", out)
	}
	if strings.Index(row1, "7") != strings.Index(row2, "88888") {
		t.Fatalf("final overflow column misaligned:\n%s", out)
	}
	// Separator dashes must be at least as wide as the widest cell of the
	// column they span.
	fields := strings.Fields(sep)
	if len(fields[2]) < len("extra-wide-overflow") {
		t.Fatalf("separator run %q narrower than widest cell:\n%s", fields[2], out)
	}
}

// TestTableHeaderOnlyUnchanged guards the common no-overflow rendering.
func TestTableHeaderOnlyUnchanged(t *testing.T) {
	tb := NewTable("col-one", "c2")
	tb.Row("x", "y")
	out := tb.String()
	if !strings.HasPrefix(out, "col-one  c2") {
		t.Fatalf("header row changed:\n%s", out)
	}
	if !strings.Contains(out, "-------  --") {
		t.Fatalf("separator changed:\n%s", out)
	}
}
