package stats

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(sim.Time(i) * sim.Microsecond)
	}
	if got := l.Percentile(50); got != 50*sim.Microsecond {
		t.Errorf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*sim.Microsecond {
		t.Errorf("p99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*sim.Microsecond {
		t.Errorf("p100 = %v", got)
	}
	if l.Min() != sim.Microsecond || l.Max() != 100*sim.Microsecond {
		t.Errorf("min/max = %v/%v", l.Min(), l.Max())
	}
	if l.Mean() != 50500*sim.Nanosecond {
		t.Errorf("mean = %v", l.Mean())
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
}

func TestEmptyLatency(t *testing.T) {
	var l Latency
	if l.Percentile(50) != 0 || l.Mean() != 0 || l.Max() != 0 || len(l.CDF(10)) != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		for _, r := range raw {
			l.Add(sim.Time(r) * sim.Nanosecond)
		}
		cdf := l.CDF(20)
		if len(cdf) != 20 {
			return false
		}
		vals := make([]int64, len(cdf))
		for i, p := range cdf {
			if p.Frac <= 0 || p.Frac > 1 {
				return false
			}
			vals[i] = int64(p.Value)
		}
		return sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) ||
			isNonDecreasing(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isNonDecreasing(v []int64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		for _, r := range raw {
			l.Add(sim.Time(r))
		}
		p := float64(pRaw%100) + 1
		v := l.Percentile(p)
		return v >= l.Min() && v <= l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRates(t *testing.T) {
	if Rate(1000, sim.Second) != 1000 {
		t.Error("Rate")
	}
	if Throughput(125, sim.Second) != 1000 {
		t.Error("Throughput")
	}
	if Rate(5, 0) != 0 || Throughput(5, 0) != 0 {
		t.Error("zero duration should not divide")
	}
}

func TestFormatting(t *testing.T) {
	if FmtRate(2_500_000) != "2.50Mop/s" {
		t.Errorf("FmtRate = %s", FmtRate(2_500_000))
	}
	if FmtRate(1500) != "1.5kop/s" || FmtRate(10) != "10op/s" {
		t.Error("FmtRate small values")
	}
	if FmtBps(9.64e9) != "9.64Gbps" || FmtBps(3.2e6) != "3.2Mbps" {
		t.Errorf("FmtBps: %s %s", FmtBps(9.64e9), FmtBps(3.2e6))
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("config", "tput", "lat")
	tb.Row("ns3", "1.2M", "7us")
	tb.Row("end-to-end", "800k", "600us")
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "config") || !strings.Contains(lines[3], "end-to-end") {
		t.Fatalf("bad table:\n%s", s)
	}
}

func TestSummaryString(t *testing.T) {
	var l Latency
	l.Add(10 * sim.Microsecond)
	if !strings.Contains(l.Summary(), "p99=") {
		t.Fatal("summary missing fields")
	}
}

func TestReservoirBoundsRetention(t *testing.T) {
	l := NewReservoir(100, 7)
	for i := 0; i < 10_000; i++ {
		l.Add(sim.Time(i))
	}
	if l.Count() != 10_000 {
		t.Fatalf("Count = %d, want 10000 (observations, not retention)", l.Count())
	}
	if l.Sampled() != 100 {
		t.Fatalf("Sampled = %d, want 100", l.Sampled())
	}
	// A uniform sample of 0..9999 should have a median near 5000.
	if p50 := l.Percentile(50); p50 < 3000 || p50 > 7000 {
		t.Fatalf("reservoir median %v far from 5000", p50)
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(50, 3), NewReservoir(50, 3)
	for i := 0; i < 1000; i++ {
		a.Add(sim.Time(i * 7))
		b.Add(sim.Time(i * 7))
	}
	if a.Mean() != b.Mean() || a.Percentile(99) != b.Percentile(99) {
		t.Fatal("same seed produced different reservoirs")
	}
}

func TestReservoirMergePreservesCounts(t *testing.T) {
	a := NewReservoir(64, 1)
	b := NewReservoir(64, 2)
	for i := 0; i < 500; i++ {
		a.Add(sim.Time(i))
		b.Add(sim.Time(1000 + i))
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged Count = %d, want 1000", a.Count())
	}
	if a.Sampled() != 64 {
		t.Fatalf("merged Sampled = %d, want 64", a.Sampled())
	}

	// Unbounded merge keeps every sample.
	var u, v Latency
	u.Add(1)
	v.Add(2)
	v.Add(3)
	u.Merge(&v)
	if u.Count() != 3 || u.Sampled() != 3 {
		t.Fatalf("unbounded merge count=%d sampled=%d, want 3/3", u.Count(), u.Sampled())
	}
}
