package stats

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snap"
)

// Snapshot appends the recorder's full state: retained samples, the sort
// flag, reservoir bounds, observation count, and the replacement RNG. A
// restored recorder continues the exact same sample-replacement sequence an
// uninterrupted one would have produced.
func (l *Latency) Snapshot(e *snap.Encoder) {
	e.U32(uint32(len(l.samples)))
	for _, s := range l.samples {
		e.I64(int64(s))
	}
	e.Bool(l.sorted)
	e.U32(uint32(l.cap))
	e.U64(l.seen)
	e.Bool(l.rng != nil)
	if l.rng != nil {
		e.U64(l.rng.State())
	}
}

// Restore loads state captured by Snapshot into l, replacing whatever it
// held. The recorder's bound must match the snapshot's (both come from the
// same construction parameters on an identical build).
func (l *Latency) Restore(d *snap.Decoder) error {
	n := int(d.U32())
	l.samples = l.samples[:0]
	for i := 0; i < n; i++ {
		if d.Err() != nil {
			return d.Err()
		}
		l.samples = append(l.samples, sim.Time(d.I64()))
	}
	l.sorted = d.Bool()
	if cap := int(d.U32()); d.Err() == nil && cap != l.cap {
		return fmt.Errorf("stats: reservoir bound mismatch (snapshot %d, recorder %d)", cap, l.cap)
	}
	l.seen = d.U64()
	hasRNG := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasRNG != (l.rng != nil) {
		return fmt.Errorf("stats: reservoir RNG presence mismatch")
	}
	if hasRNG {
		l.rng.SetState(d.U64())
	}
	return d.Err()
}
