// Package stats provides the small statistics toolkit the experiment
// harnesses use: latency recorders with percentiles and CDFs, throughput
// counters, and formatting helpers for paper-style result rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Latency records latency samples and answers distribution queries. The
// zero value retains every sample; NewReservoir bounds retention with
// uniform reservoir sampling so million-flow workloads don't hold a
// million samples.
type Latency struct {
	samples []sim.Time
	sorted  bool

	// Reservoir state (Vitter's Algorithm R). cap == 0 means unbounded.
	cap  int
	seen uint64
	rng  *sim.Rand
}

// NewReservoir creates a bounded recorder keeping a uniform sample of at
// most capacity values. Replacement decisions come from a deterministic
// seeded generator, so runs are reproducible.
func NewReservoir(capacity int, seed uint64) *Latency {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Latency{cap: capacity, rng: sim.NewRand(seed)}
}

// Add records one sample. On a bounded recorder past capacity, the sample
// replaces a uniformly random retained one with probability cap/seen.
func (l *Latency) Add(d sim.Time) {
	l.seen++
	if l.cap == 0 || len(l.samples) < l.cap {
		l.samples = append(l.samples, d)
		l.sorted = false
		return
	}
	if j := l.rng.Int63n(int64(l.seen)); j < int64(l.cap) {
		l.samples[j] = d
		l.sorted = false
	}
}

// Count returns the number of samples observed (not retained: on a bounded
// recorder this keeps counting past capacity).
func (l *Latency) Count() int {
	if l.cap != 0 {
		return int(l.seen)
	}
	return len(l.samples)
}

// Sampled returns the number of samples actually retained, which the
// distribution queries are computed over.
func (l *Latency) Sampled() int { return len(l.samples) }

// Merge folds o's retained samples into l (and o's observation count into
// l's). Merging bounded recorders approximates a reservoir over the union:
// each retained sample of o passes through l's replacement rule.
func (l *Latency) Merge(o *Latency) {
	extra := uint64(0)
	if o.cap != 0 {
		extra = o.seen - uint64(len(o.samples)) // observed but not retained
	}
	for _, s := range o.samples {
		l.Add(s)
	}
	l.seen += extra
}

func (l *Latency) sortSamples() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *Latency) Percentile(p float64) sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	rank := int(math.Ceil(p/100*float64(len(l.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// Mean returns the arithmetic mean.
func (l *Latency) Mean() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range l.samples {
		sum += s
	}
	return sum / sim.Time(len(l.samples))
}

// Min and Max return the extremes.
func (l *Latency) Min() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[0]
}

// Max returns the largest sample.
func (l *Latency) Max() sim.Time {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[len(l.samples)-1]
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value sim.Time
	Frac  float64
}

// CDF returns n evenly spaced quantile points, suitable for plotting the
// paper's latency CDFs. Each point's value is the nearest-rank quantile —
// the same rule Percentile uses — so CDF(n)[i] always equals
// Percentile(100*(i+1)/n) for the same fraction. Truncating instead of
// rounding up here used to pick one rank lower whenever f*N landed just
// under an integer (float rounding, e.g. 0.3*10 = 2.9999999999999996).
func (l *Latency) CDF(n int) []CDFPoint {
	if len(l.samples) == 0 || n <= 0 {
		return nil
	}
	l.sortSamples()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(math.Ceil(f*float64(len(l.samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(l.samples) {
			idx = len(l.samples) - 1
		}
		out = append(out, CDFPoint{Value: l.samples[idx], Frac: f})
	}
	return out
}

// Summary renders "mean/p50/p99/max".
func (l *Latency) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p99=%v max=%v",
		l.Mean(), l.Percentile(50), l.Percentile(99), l.Max())
}

// Rate converts a count over a duration into an operations/second value.
func Rate(count int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(count) / d.Seconds()
}

// Throughput converts bytes over a duration into bits/second.
func Throughput(bytes int64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds()
}

// FmtRate renders an ops/s figure compactly.
func FmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fMop/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fkop/s", r/1e3)
	default:
		return fmt.Sprintf("%.0fop/s", r)
	}
}

// FmtBps renders a bits/second figure compactly.
func FmtBps(r float64) string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.2fGbps", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.1fMbps", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fkbps", r/1e3)
	default:
		return fmt.Sprintf("%.0fbps", r)
	}
}

// Table accumulates aligned text rows for paper-style output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(cols ...string) *Table { return &Table{header: cols} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmt.Sprint(v)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns. Rows may carry more cells
// than there are headers; overflow columns get their own widths and the
// separator row spans them.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
