package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/profiler"
	"repro/internal/proto"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scale-out hardening harness: the same two-pair topology is run three
// ways — monolithic coupled, distributed over a supervised TCP transport,
// and distributed again with deterministic connection faults injected —
// and the harness checks the paper's scale-out invariant: the simulation
// results are identical in all three, because transport failures cost only
// wall-clock time, never simulated time. It also prints the transport
// counters and the profiler's transport lines, the observability side of
// the supervisor.

// ScaleOutResult holds the three runs' outputs and transport telemetry.
type ScaleOutResult struct {
	End        sim.Time
	MonoRx     [2]uint64
	CleanRx    [2]uint64
	FaultedRx  [2]uint64
	Identical  bool
	FaultyConn int
	Clean      []proxy.Counters // server, client
	Faulted    []proxy.Counters // server, client
	ProfLog    string           // splitsim-prof transport lines
	CleanMs    float64
	FaultedMs  float64
}

// String renders the harness output.
func (r *ScaleOutResult) String() string {
	var b strings.Builder
	b.WriteString("Scale-out transport hardening: monolithic vs distributed vs distributed+faults\n")
	t := stats.NewTable("run", "rx(pair1)", "rx(pair2)", "wall-ms")
	t.Row("monolithic", r.MonoRx[0], r.MonoRx[1], "-")
	t.Row("distributed", r.CleanRx[0], r.CleanRx[1], fmt.Sprintf("%.1f", r.CleanMs))
	t.Row("dist+faults", r.FaultedRx[0], r.FaultedRx[1], fmt.Sprintf("%.1f", r.FaultedMs))
	b.WriteString(t.String())
	if r.Identical {
		b.WriteString(fmt.Sprintf("results identical across all runs (with %d faulted connections)\n", r.FaultyConn))
	} else {
		b.WriteString("RESULTS DIVERGED — scale-out invariant violated\n")
	}
	b.WriteString("clean transport counters:\n")
	b.WriteString(proxy.CountersTable([]string{"server", "client"}, r.Clean).String())
	b.WriteString("faulted transport counters:\n")
	b.WriteString(proxy.CountersTable([]string{"server", "client"}, r.Faulted).String())
	b.WriteString("profiler transport lines:\n")
	b.WriteString(r.ProfLog)
	return b.String()
}

// scaleOutSite builds one partition's network: a switch, one host, and an
// external port toward its remote pair host.
func scaleOutSite(name string, localID, remoteID uint32) (*netsim.Network, *netsim.Host, *netsim.ExtPort) {
	n := netsim.New(name, 1)
	sw := n.AddSwitch("sw")
	h := n.AddHost("h", proto.HostIP(localID))
	n.ConnectHostSwitch(h, sw, 10*sim.Gbps, sim.Microsecond)
	x := n.AddExternal(sw, "x", 10*sim.Gbps, proto.HostIP(remoteID))
	x.SetEncode(true)
	n.ComputeRoutes()
	return n, h, x
}

// scaleOutTopo is the assembled two-pair topology.
type scaleOutTopo struct {
	n    [4]*netsim.Network
	h    [4]*netsim.Host
	x    [4]*netsim.ExtPort
	lat  sim.Time
	sync sim.Time
}

func buildScaleOutTopo() *scaleOutTopo {
	t := &scaleOutTopo{lat: 2 * sim.Microsecond}
	ids := [4][2]uint32{{1, 2}, {2, 1}, {3, 4}, {4, 3}}
	for i, p := range ids {
		t.n[i], t.h[i], t.x[i] = scaleOutSite(fmt.Sprintf("net%d", i+1), p[0], p[1])
	}
	sender := func(dst proto.IP, iv sim.Time) netsim.AppFunc {
		return func(h *netsim.Host) {
			var tick func()
			tick = func() {
				h.SendUDP(dst, 1, 9, nil, 400)
				h.After(iv, tick)
			}
			tick()
		}
	}
	t.h[0].SetApp(sender(t.h[1].IP(), 20*sim.Microsecond))
	t.h[2].SetApp(sender(t.h[3].IP(), 25*sim.Microsecond))
	drop := func(proto.IP, uint16, []byte, int) {}
	t.h[1].BindUDP(9, drop)
	t.h[3].BindUDP(9, drop)
	return t
}

func (t *scaleOutTopo) side(i int) orch.Side {
	return orch.Side{Comp: t.n[i], Bind: t.x[i].Bind, Sink: t.x[i]}
}

func (t *scaleOutTopo) rx() [2]uint64 {
	return [2]uint64{t.h[1].RxPackets, t.h[3].RxPackets}
}

// runScaleOutMono runs the topology as one coupled process.
func runScaleOutMono(end sim.Time) ([2]uint64, error) {
	t := buildScaleOutTopo()
	s := orch.New()
	for i := range t.n {
		s.Add(t.n[i])
	}
	s.Connect("x12", t.lat, t.sync, t.side(0), t.side(1))
	s.Connect("x34", t.lat, t.sync, t.side(2), t.side(3))
	if err := s.RunCoupled(end); err != nil {
		return [2]uint64{}, err
	}
	checkDrained(s)
	return t.rx(), nil
}

// runScaleOutDist splits the topology into two supervised processes, with
// optional client-side fault injection.
func runScaleOutDist(end sim.Time, seed uint64, chaos *proxy.Chaos) ([2]uint64, []proxy.Counters, error) {
	t := buildScaleOutTopo()

	sA := orch.New() // n1, n3 — side A of both boundaries
	sA.Add(t.n[0])
	sA.Reserve(1)
	sA.Add(t.n[2])
	sA.Reserve(1)
	remA12 := sA.ConnectRemote("x12", t.lat, t.sync, t.side(0), true)
	remA34 := sA.ConnectRemote("x34", t.lat, t.sync, t.side(2), true)

	sB := orch.New() // n2, n4 — side B
	sB.Reserve(1)
	sB.Add(t.n[1])
	sB.Reserve(1)
	sB.Add(t.n[3])
	remB12 := sB.ConnectRemote("x12", t.lat, t.sync, t.side(1), false)
	remB34 := sB.ConnectRemote("x34", t.lat, t.sync, t.side(3), false)

	cfg := proxy.Config{
		Heartbeat:   20 * time.Millisecond,
		BackoffMin:  time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Linger:      500 * time.Millisecond,
		MaxAttempts: 200,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return [2]uint64{}, nil, err
	}
	srvCfg := cfg
	srvCfg.Seed = seed
	supA := proxy.NewSupervisor(srvCfg)
	supA.AddChannel(0, remA12, proxy.RawFrameCodec{})
	supA.AddChannel(1, remA34, proxy.RawFrameCodec{})
	cliCfg := cfg
	cliCfg.Seed = seed + 1
	if chaos != nil {
		cliCfg.DialFunc = chaos.Dialer()
	}
	supB := proxy.NewSupervisor(cliCfg)
	supB.AddChannel(0, remB12, proxy.RawFrameCodec{})
	supB.AddChannel(1, remB34, proxy.RawFrameCodec{})

	errs := make(chan error, 4)
	go func() { errs <- supA.Serve(context.Background(), ln) }()
	go func() { errs <- supB.Dial(context.Background(), ln.Addr().String()) }()
	go func() { errs <- sA.RunCoupled(end) }()
	go func() { errs <- sB.RunCoupled(end) }()
	var first error
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return [2]uint64{}, nil, first
	}
	checkDrained(sA)
	checkDrained(sB)
	return t.rx(), []proxy.Counters{supA.Counters(), supB.Counters()}, nil
}

// ScaleOut runs the harness.
func ScaleOut(o Options) (*ScaleOutResult, error) {
	end := o.Dur(2*sim.Millisecond, 500*sim.Microsecond)
	r := &ScaleOutResult{End: end}

	var err error
	if r.MonoRx, err = runScaleOutMono(end); err != nil {
		return nil, fmt.Errorf("monolithic run: %w", err)
	}

	sw := newStopwatch()
	if r.CleanRx, r.Clean, err = runScaleOutDist(end, o.Seed, nil); err != nil {
		return nil, fmt.Errorf("distributed run: %w", err)
	}
	r.CleanMs = sw.ms()

	chaos := proxy.NewChaos(o.Seed, 3, 4000)
	sw = newStopwatch()
	if r.FaultedRx, r.Faulted, err = runScaleOutDist(end, o.Seed+2, chaos); err != nil {
		return nil, fmt.Errorf("faulted distributed run: %w", err)
	}
	r.FaultedMs = sw.ms()
	_, r.FaultyConn = chaos.Dealt()
	r.Identical = r.MonoRx == r.CleanRx && r.MonoRx == r.FaultedRx

	// Attach the transport counters to a profiler log, the way a real
	// distributed run would ship them home.
	col := profiler.NewCollector()
	col.AddTransport(profiler.TransportSample{Name: "clean/server", Counters: r.Clean[0]})
	col.AddTransport(profiler.TransportSample{Name: "clean/client", Counters: r.Clean[1]})
	col.AddTransport(profiler.TransportSample{Name: "faulted/server", Counters: r.Faulted[0]})
	col.AddTransport(profiler.TransportSample{Name: "faulted/client", Counters: r.Faulted[1]})
	var b strings.Builder
	if _, err := col.WriteTo(&b); err != nil {
		return nil, err
	}
	r.ProfLog = b.String()
	return r, nil
}
