package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/flowsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scale — the ROADMAP item-1 experiment: build a datacenter-scale multi-pod
// Clos with aggregate (prefix) routing and lazy hosts, and drive incast and
// all-to-all shuffle workloads over it, reporting sustained simulated
// packets per wall-clock second and resident routing state per host.
//
// At Scale=1 the fabric is the acceptance configuration: 100 pods × 32
// leaves × 8 spines with 32 hosts per leaf — 102,400 host slots on 4,032
// switches. Scale shrinks the pod count (floor 4). Only the 65 workload
// participants are materialized; the other ~10⁵ slots cost one TopoHost
// record each, which is the point.

// ScalePhase is one workload phase's outcome.
type ScalePhase struct {
	Name       string
	Flows      int
	Completed  int
	Bytes      int64
	FCTMean    sim.Time
	FCTP99     sim.Time
	SimPkts    uint64  // frames through switches, simulated
	WallMs     float64 // harness wall time
	PktsPerSec float64 // SimPkts / wall

	// Background flow-tier accounting (zero unless Options.Bg == "flow"):
	// active elephants, scheduler events the fluid tier consumed, and the
	// packet-level event projection for the traffic it drained.
	BgFlows         int
	BgEvents        uint64
	BgProjPktEvents uint64
}

// ScaleResult is the experiment outcome.
type ScaleResult struct {
	Hosts        int
	Switches     int
	Pods         int
	BuildMs      float64
	MaxEntries   int     // max per-switch routing entries (must be O(pods))
	BytesPerHost float64 // total routing state / hosts
	Phases       []ScalePhase
}

// String renders the result table.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: %d-host Clos (%d pods, %d switches), built in %.1f ms\n",
		r.Hosts, r.Pods, r.Switches, r.BuildMs)
	fmt.Fprintf(&b, "routing state: max %d entries/switch, %.1f B/host (per-IP would be %d entries/switch)\n",
		r.MaxEntries, r.BytesPerHost, r.Hosts)
	t := stats.NewTable("phase", "flows", "done", "fct-mean", "fct-p99", "simpkts", "pkts/s(wall)")
	for _, p := range r.Phases {
		t.Row(p.Name, p.Flows, p.Completed, p.FCTMean, p.FCTP99, p.SimPkts,
			stats.FmtRate(p.PktsPerSec))
	}
	b.WriteString(t.String())
	for _, p := range r.Phases {
		if p.BgEvents > 0 {
			fmt.Fprintf(&b, "%s background: %d elephants, %d flow events vs %d projected packet events (%.0fx fewer)\n",
				p.Name, p.BgFlows, p.BgEvents, p.BgProjPktEvents,
				float64(p.BgProjPktEvents)/float64(p.BgEvents))
		}
	}
	return b.String()
}

// scaleSpec derives the fabric from the option scale, or from an explicit
// -hosts target. Million-endpoint targets densify the leaves and switch to
// default-up routing so switch count and per-switch route state stay flat
// while the slot count crosses 10⁶.
func scaleSpec(opts Options) topogen.ClosSpec {
	spec := topogen.ClosSpec{
		LeafPerPod: 32, SpinePerPod: 8, Cores: 32, HostsPerLeaf: 32,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps, CoreRate: 100 * sim.Gbps,
		LinkDelay: sim.Microsecond, Lazy: true,
	}
	if opts.Hosts > 0 {
		if opts.Hosts >= 200_000 {
			spec.HostsPerLeaf = 64
			spec.DefaultUp = true
		}
		perPod := spec.LeafPerPod * spec.HostsPerLeaf
		pods := (opts.Hosts + perPod - 1) / perPod
		if pods < 4 {
			pods = 4
		}
		spec.Pods = pods
		return spec
	}
	pods := int(math.Round(100 * opts.scale()))
	if pods < 4 {
		pods = 4
	}
	spec.Pods = pods
	return spec
}

// scaleAllSlots flattens every host slot of the fabric — the flow tier's
// endpoint set. No slot is materialized by this.
func scaleAllSlots(m *topogen.ClosMeta) []int {
	out := make([]int, 0, m.TotalHosts())
	for _, pod := range m.HostSlots {
		for _, leaf := range pod {
			out = append(out, leaf...)
		}
	}
	return out
}

// bgElephants pairs load·n/2 disjoint endpoints into long-lived background
// flows starting at t=0. Each endpoint appears in at most one flow, so a
// pair's max-min rate is its access-link share and the fabric carries
// roughly load·n/2 concurrent elephants for the whole horizon — a steady
// background occupancy knob that costs the fluid tier O(1) events after
// the initial admission.
func bgElephants(n int, load float64, seed uint64) *workload.Trace {
	k := int(load * float64(n) / 2)
	tr := &workload.Trace{}
	if k <= 0 {
		return tr
	}
	perm := sim.NewRand(seed).Perm(n)
	tr.Flows = make([]workload.TraceFlow, k)
	for i := 0; i < k; i++ {
		tr.Flows[i] = workload.TraceFlow{Src: perm[2*i], Dst: perm[2*i+1], Bytes: 1 << 30}
	}
	return tr
}

// scaleParticipants picks n host slots spread across pods and leaves.
func scaleParticipants(m *topogen.ClosMeta, n int) []int {
	slots := make([]int, 0, n)
	seen := map[int]bool{}
	for i := 0; len(slots) < n; i++ {
		p := i % m.Spec.Pods
		l := (i / m.Spec.Pods) % m.Spec.LeafPerPod
		h := (i / (m.Spec.Pods * m.Spec.LeafPerPod)) % m.Spec.HostsPerLeaf
		s := m.HostSlots[p][l][h]
		if !seen[s] {
			seen[s] = true
			slots = append(slots, s)
		}
	}
	return slots
}

// scalePhase builds a fresh fabric, materializes the participants, runs one
// workload phase, and folds the outcome into a ScalePhase row.
func scalePhase(name string, opts Options, wl workload.Spec, participants int, dur sim.Time, r *ScaleResult) ScalePhase {
	sw := newStopwatch()
	spec := scaleSpec(opts)
	topo, m := topogen.Clos(spec)
	b := topo.Build("scale", opts.Seed, nil, nil)
	buildMs := sw.ms()

	slots := scaleParticipants(m, participants)
	hosts := make([]*netsim.Host, len(slots))
	for i, slot := range slots {
		hosts[i] = b.MaterializeSlot(slot)
	}
	eng := workload.Install(hosts, wl)
	var bg *flowsim.Engine
	if opts.Bg == "flow" {
		// Steady elephant background over every slot at 30% endpoint
		// occupancy — no background host is ever materialized.
		bg = flowsim.Install(b, scaleAllSlots(m), flowsim.Spec{
			Trace: bgElephants(m.TotalHosts(), 0.3, opts.Seed^0xb105),
			Seed:  opts.Seed ^ 0xb105,
		})
	}
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)

	runW := newStopwatch()
	s.RunSequential(dur)
	wallMs := runW.ms()
	checkDrained(s)

	var pkts uint64
	maxEntries, totalBytes := 0, 0
	for _, swi := range b.Switches {
		pkts += swi.RxPackets
		perIP, prefix := swi.RouteEntries()
		if perIP+prefix > maxEntries {
			maxEntries = perIP + prefix
		}
		totalBytes += swi.RouteStateBytes()
	}
	if r.Hosts == 0 {
		r.Hosts = m.TotalHosts()
		r.Switches = len(b.Switches)
		r.Pods = spec.Pods
		r.BuildMs = buildMs
		r.MaxEntries = maxEntries
		r.BytesPerHost = float64(totalBytes) / float64(m.TotalHosts())
	}

	rep := eng.Collect()
	ph := ScalePhase{
		Name:       name,
		Flows:      rep.FlowsStarted,
		Completed:  rep.FlowsCompleted,
		Bytes:      rep.BytesSent,
		FCTMean:    rep.FCT.Mean(),
		FCTP99:     rep.FCT.Percentile(99),
		SimPkts:    pkts,
		WallMs:     wallMs,
		PktsPerSec: float64(pkts) / (wallMs / 1000),
	}
	if bg != nil {
		br := bg.Collect()
		ph.BgFlows = br.ActiveFlows
		ph.BgEvents = br.Events
		ph.BgProjPktEvents = br.ProjPacketEvents
	}
	return ph
}

// Scale runs the incast and shuffle phases.
func Scale(opts Options) *ScaleResult {
	dur := opts.Dur(5*sim.Millisecond, 1*sim.Millisecond)
	r := &ScaleResult{}
	r.Phases = append(r.Phases, scalePhase("incast", opts, workload.Spec{
		Pattern: workload.Incast{Victim: 0},
		Sizes:   workload.Fixed(20_000),
		Arrival: workload.Closed{Concurrency: 2},
		Seed:    opts.Seed,
	}, 65, dur, r))
	r.Phases = append(r.Phases, scalePhase("shuffle", opts, workload.Spec{
		Pattern: workload.Shuffle{},
		Sizes:   workload.Pareto{Min: 1000, Alpha: 1.3, Max: 500_000},
		Arrival: workload.Open{FlowsPerSec: 20_000},
		Seed:    opts.Seed,
	}, 64, dur, r))
	return r
}
