package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// TestWarmStart checks the sweep's core guarantee: the identity point,
// forked from the warmup checkpoint, reproduces the cold run bit for bit,
// and the checkpoint file round-trips through -checkpoint-file /
// -restore-file.
func TestWarmStart(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.25
	dir := t.TempDir()
	opts.CheckpointFile = filepath.Join(dir, "warm.ckpt")

	r, err := WarmStart(opts)
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if !r.IdentityMatch {
		t.Fatalf("identity point diverged from the cold run:\n%s", r)
	}
	if len(r.Points) != 3 || r.Points[0].Name != "identity" {
		t.Fatalf("unexpected sweep points: %+v", r.Points)
	}
	if r.Points[0].Completed == 0 || r.Points[0].Events != r.ColdEvents {
		t.Fatalf("identity point: completed=%d events=%d (cold %d)",
			r.Points[0].Completed, r.Points[0].Events, r.ColdEvents)
	}
	if _, err := os.Stat(opts.CheckpointFile); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	// Resume the whole sweep from the saved file: no warmup simulation, same
	// results.
	opts2 := DefaultOptions()
	opts2.Scale = 0.25
	opts2.RestoreFile = opts.CheckpointFile
	r2, err := WarmStart(opts2)
	if err != nil {
		t.Fatalf("WarmStart(restore): %v", err)
	}
	if !r2.IdentityMatch {
		t.Fatalf("restored sweep identity point diverged:\n%s", r2)
	}
	if r2.Points[0].Events != r.Points[0].Events {
		t.Fatalf("restored sweep events %d != original %d", r2.Points[0].Events, r.Points[0].Events)
	}

	// A horizon outside the run is rejected, not silently clamped.
	bad := DefaultOptions()
	bad.Scale = 0.25
	bad.CheckpointAt = 10 * sim.Millisecond
	if _, err := WarmStart(bad); err == nil {
		t.Fatal("CheckpointAt beyond the run duration should fail")
	}
}
