package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/kv"
	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig. 9 — simulation speed of different network-partition strategies on
// the 1,200-host datacenter topology with background traffic, with a pair
// of detailed hosts (qemu or gem5) attached through two NICs. The paper's
// point: predicted performance is unintuitive — strategies with identical
// core counts differ, and beyond a point more cores make the simulation
// slower. Fig. 10 then uses the profiler to explain why.

// Fig9Point is one (strategy, host kind) measurement.
type Fig9Point struct {
	Strategy string
	HostKind string // "qemu" or "gem5"
	// Parts is the number of network processes.
	Parts int
	// Cores includes the 4 host/NIC components, as the paper counts.
	Cores int
	// SimSpeed is simulated seconds per modeled wall second.
	SimSpeed float64
}

// Fig9Result holds the sweep plus the raw model inputs for Fig. 10.
type Fig9Result struct {
	Points []Fig9Point
}

// Get returns the point for (strategy, hostKind).
func (r *Fig9Result) Get(strategy, hostKind string) Fig9Point {
	for _, p := range r.Points {
		if p.Strategy == strategy && p.HostKind == hostKind {
			return p
		}
	}
	panic("experiments: missing fig9 point")
}

// String renders the figure.
func (r *Fig9Result) String() string {
	t := stats.NewTable("strategy", "hosts", "net-parts", "cores", "sim-speed(sim-s/s)")
	for _, p := range r.Points {
		t.Row(p.Strategy, p.HostKind, p.Parts, p.Cores, fmt.Sprintf("%.2e", p.SimSpeed))
	}
	var b strings.Builder
	b.WriteString("Fig 9: simulation speed per partition strategy (1200-host topology + detailed host pair)\n")
	b.WriteString(t.String())
	b.WriteString("paper's observations: strategies differ widely; same cores can differ; past a\n")
	b.WriteString("point more cores slow the simulation; gem5 hosts shift the bottleneck to hosts\n")
	return b.String()
}

// Fig9Strategies is the strategy set from the paper's table.
var Fig9Strategies = []decomp.Strategy{
	{Name: "s"},
	{Name: "ac"},
	{Name: "cr", N: 6},
	{Name: "cr", N: 3},
	{Name: "cr", N: 1},
	{Name: "rs"},
}

// fig9Setup is the built-and-run system plus its model graph.
type fig9Setup struct {
	comps []decomp.Comp
	links []decomp.Link
	parts int
	dur   sim.Time
}

// fig9Run builds the partitioned datacenter with a detailed host pair
// exchanging request/response traffic, runs it, and returns the model
// inputs.
func fig9Run(strategy decomp.Strategy, hostKind string, opts Options) *fig9Setup {
	dur := opts.Dur(500*sim.Millisecond, 100*sim.Millisecond)
	spec := clockSyncSpec(opts)
	topo, meta := netsim.ThreeTier(spec)
	assign := strategy.Assign(meta, len(topo.Switches))

	// Two detailed-host slots in different aggregation blocks.
	slotA := meta.HostsByRack[0][0][0]
	slotB := meta.HostsByRack[1][0][0]
	topo.MakeExternal(slotA)
	topo.MakeExternal(slotB)

	b := topo.Build("net", opts.Seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)

	// Background bulk pairs. At full scale they load the core layer to
	// ~90% with 1500-byte packets, the regime where ns-3 dominates the
	// simulation (§3.1's 3-5x slowdown). Scaled-down runs sample the load
	// (carry scale-fraction of the traffic) and the network components'
	// modeled cost is scaled back up below — standard flow sampling.
	// Pair endpoints follow datacenter locality: ~80% of pairs stay within
	// a rack, ~15% within an aggregation block, the rest cross the core.
	var bg []*netsim.Host
	hostAgg := make(map[*netsim.Host]int)
	hostRack := make(map[*netsim.Host]int)
	rackID := 0
	for a := range meta.HostsByRack {
		for r := range meta.HostsByRack[a] {
			for _, slot := range meta.HostsByRack[a][r] {
				if h := b.Hosts[slot]; h != nil {
					bg = append(bg, h)
					hostAgg[h] = a
					hostRack[h] = rackID
				}
			}
			rackID++
		}
	}
	rng := sim.NewRand(opts.Seed ^ 0x99)
	order := rng.Perm(len(bg))
	paired := make(map[*netsim.Host]bool)
	var pairList [][2]*netsim.Host
	for _, i := range order {
		a := bg[i]
		if paired[a] {
			continue
		}
		var want func(c *netsim.Host) bool
		switch r := rng.Float64(); {
		case r < 0.80:
			want = func(c *netsim.Host) bool { return hostRack[c] == hostRack[a] }
		case r < 0.95:
			want = func(c *netsim.Host) bool {
				return hostAgg[c] == hostAgg[a] && hostRack[c] != hostRack[a]
			}
		default:
			want = func(c *netsim.Host) bool { return hostAgg[c] != hostAgg[a] }
		}
		var partner *netsim.Host
		for _, j := range order {
			c := bg[j]
			if c == a || paired[c] || !want(c) {
				continue
			}
			partner = c
			break
		}
		if partner == nil {
			continue
		}
		paired[a], paired[partner] = true, true
		pairList = append(pairList, [2]*netsim.Host{a, partner})
	}
	pairs := len(pairList)
	pairRate := 0.9 * float64(spec.CoreRate) * float64(spec.Aggs) * opts.scale() / float64(pairs)
	if max := 0.9 * float64(spec.HostRate); pairRate > max {
		pairRate = max
	}
	const pktSize = 1500
	gap := sim.FromSeconds(pktSize * 8 / pairRate)
	for _, pr := range pairList {
		pr[0].SetApp(&bulkApp{dst: pr[1].IP(), gap: gap, size: pktSize})
		pr[1].BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
	}

	// The detailed pair: a KV server and a closed-loop client.
	hp := hostsim.QemuParams()
	if hostKind == "gem5" {
		hp = hostsim.Gem5Params()
	}
	mk := func(slot int, name string, seed uint64) *instantiate.DetailedHost {
		dh := instantiate.NewDetailedHost(name, topo.Hosts[slot].IP, hp,
			nicsim.DefaultParams(), seed)
		dh.Wire(s, b.Parts[b.HostPart[slot]], b.Exts[slot])
		return dh
	}
	hostA := mk(slotA, "hostA", opts.Seed+1)
	hostB := mk(slotB, "hostB", opts.Seed+2)
	srv := kv.NewServer(kv.DefaultServerParams())
	hostB.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { srv.Run(h) }))
	cp := kv.DefaultClientParams(0, []proto.IP{hostB.Host.LocalIP()})
	cp.Outstanding = 4
	cp.WarmUp = 0
	cli := kv.NewClient(cp)
	hostA.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { cli.Run(h) }))

	s.RunSequential(dur)
	checkDrained(s)
	comps, links := s.ModelGraph(dur)
	// Undo the load sampling: each simulated background packet stands for
	// 1/scale packets of the full-scale workload.
	if f := 1 / opts.scale(); f > 1 {
		for i := range comps {
			if strings.HasPrefix(comps[i].Name, "net") {
				comps[i].BusyNs *= f
			}
		}
		for i := range links {
			links[i].Msgs = uint64(float64(links[i].Msgs) * f)
		}
	}
	return &fig9Setup{comps: comps, links: links, parts: strategy.Parts(meta), dur: dur}
}

// machineCores is the evaluation machine's core count (2x Xeon 6336Y).
const machineCores = 48

// Fig9 sweeps strategies and host kinds.
func Fig9(opts Options) *Fig9Result {
	r := &Fig9Result{}
	for _, hostKind := range []string{"qemu", "gem5"} {
		for _, st := range Fig9Strategies {
			setup := fig9Run(st, hostKind, opts)
			mp := decomp.DefaultParams(setup.dur)
			mp.Cores = machineCores
			model := decomp.Makespan(setup.comps, setup.links, mp)
			r.Points = append(r.Points, Fig9Point{
				Strategy: st.String(), HostKind: hostKind,
				Parts: setup.parts, Cores: setup.parts + 4,
				SimSpeed: model.SimSpeed,
			})
		}
	}
	return r
}

// Fig10Result carries the WTPGs for the ac and cr3 strategies.
type Fig10Result struct {
	ACDot   string
	CR3Dot  string
	ACText  string
	CR3Text string
	// ACBottlenecks and CR3Bottlenecks list the red nodes.
	ACBottlenecks, CR3Bottlenecks []string
}

// String renders both profiles.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 10: wait-time-profile graphs (qemu hosts)\n")
	b.WriteString("--- ac partition strategy ---\n")
	b.WriteString(r.ACText)
	fmt.Fprintf(&b, "bottlenecks: %v (paper: the rack-carrying ns-3 instances)\n", r.ACBottlenecks)
	b.WriteString("--- cr3 partition strategy ---\n")
	b.WriteString(r.CR3Text)
	fmt.Fprintf(&b, "bottlenecks: %v (paper: shifting toward the qemu hosts)\n", r.CR3Bottlenecks)
	return b.String()
}

// Fig10 profiles the ac and cr3 strategies with qemu hosts.
func Fig10(opts Options) *Fig10Result {
	r := &Fig10Result{}
	for _, st := range []decomp.Strategy{{Name: "ac"}, {Name: "cr", N: 3}} {
		setup := fig9Run(st, "qemu", opts)
		mp := decomp.DefaultParams(setup.dur)
		a := decomp.ModeledAnalysis(setup.comps, setup.links, mp)
		g := decomp.BuildWTPGFromAnalysis(a)
		switch st.String() {
		case "ac":
			r.ACDot, r.ACText = g.DOT(), g.Render()
			r.ACBottlenecks = a.Bottlenecks(0.10)
		default:
			r.CR3Dot, r.CR3Text = g.DOT(), g.Render()
			r.CR3Bottlenecks = a.Bottlenecks(0.10)
		}
	}
	return r
}
