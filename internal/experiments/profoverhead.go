package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/profiler"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ProfilerOverheadResult measures what the always-on profiler costs — the
// experiment the paper sketches but defers ("could add another quick
// experiment with the profiler overhead"). We run the same coupled
// simulation with and without the collector attached and compare wall
// time; the instrumentation itself (counter increments in the adapters)
// is compiled in either way, as in SimBricks' #define-guarded builds, so
// the measured delta is the sampling and aggregation cost.
type ProfilerOverheadResult struct {
	BaseMs     float64
	ProfiledMs float64
	Overhead   float64 // fraction
	Samples    int
}

// String renders the measurement.
func (r *ProfilerOverheadResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: profiler overhead (coupled fat-tree run)\n")
	t := stats.NewTable("configuration", "wall-ms")
	t.Row("profiling off", fmt.Sprintf("%.1f", r.BaseMs))
	t.Row(fmt.Sprintf("profiling on (%d samples)", r.Samples), fmt.Sprintf("%.1f", r.ProfiledMs))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "overhead: %.1f%% of wall time\n", r.Overhead*100)
	return b.String()
}

// profOverheadRun builds a partitioned fat tree and runs it coupled,
// optionally profiled, returning wall ms and sample count.
func profOverheadRun(opts Options, profile bool) (float64, int) {
	dur := opts.Dur(10*sim.Millisecond, 4*sim.Millisecond)
	topo, meta := netsim.FatTree(4, 10*sim.Gbps, 40*sim.Gbps, 1*sim.Microsecond)
	assign := decomp.EvenFatTree(meta, len(topo.Switches), 4)
	b := topo.Build("net", opts.Seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)
	hosts := b.Hosts
	gap := sim.FromSeconds(8900 * 8 / 2e9)
	for i := 0; i < len(hosts)/2; i++ {
		a, c := hosts[i], hosts[len(hosts)/2+i]
		a.SetApp(&bulkApp{dst: c.IP(), gap: gap, size: 8900})
		c.BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
	}
	var col *profiler.Collector
	if profile {
		col = profiler.NewCollector()
		s.PreRun = func(g *link.Group) { col.Attach(g, 100*sim.Microsecond) }
	}
	start := time.Now()
	if err := s.RunCoupled(dur); err != nil {
		panic(err)
	}
	checkDrained(s)
	ms := float64(time.Since(start).Microseconds()) / 1000
	n := 0
	if col != nil {
		n = len(col.Samples())
	}
	return ms, n
}

// ProfilerOverhead measures the profiler's cost. A discarded warm-up run
// precedes measurement, and the two configurations alternate with the
// minimum of three runs each, damping scheduler and cache noise.
func ProfilerOverhead(opts Options) *ProfilerOverheadResult {
	profOverheadRun(opts, false) // warm up caches and the runtime

	var base, prof float64
	samples := 0
	for i := 0; i < 3; i++ {
		if ms, _ := profOverheadRun(opts, false); i == 0 || ms < base {
			base = ms
		}
		ms, n := profOverheadRun(opts, true)
		if i == 0 || ms < prof {
			prof = ms
		}
		if n > samples {
			samples = n
		}
	}
	r := &ProfilerOverheadResult{BaseMs: base, ProfiledMs: prof, Samples: samples}
	if base > 0 {
		r.Overhead = prof/base - 1
	}
	return r
}
