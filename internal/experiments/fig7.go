package experiments

import (
	"fmt"
	"strings"

	"repro/internal/decomp"
	"repro/internal/memsim"
	"repro/internal/orch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig. 7 — parallelizing sequential multi-core gem5 simulations by
// splitting each core into its own process connected through SplitSim
// adapters over the port-based memory interface. Sequential and split
// instantiations simulate identical behavior (memsim tests verify this);
// the figure compares their simulation runtimes across core counts.

// Fig7Point is one core count's results.
type Fig7Point struct {
	Cores int
	// SeqSPerSimS and SplitSPerSimS are modeled runtimes in seconds per
	// simulated second (sequential gem5 vs SplitSim-parallelized).
	SeqSPerSimS, SplitSPerSimS float64
	// Speedup is sequential/split.
	Speedup float64
	// Blocks is total compute blocks simulated (progress sanity metric).
	Blocks uint64
	// WallMs is the harness's measured wall time for the split run.
	WallMs float64
}

// Fig7Result holds the sweep.
type Fig7Result struct {
	Points []Fig7Point
}

// Get returns the point for a core count.
func (r *Fig7Result) Get(cores int) Fig7Point {
	for _, p := range r.Points {
		if p.Cores == cores {
			return p
		}
	}
	panic("experiments: missing fig7 point")
}

// String renders the figure.
func (r *Fig7Result) String() string {
	t := stats.NewTable("cores", "seq(s/sim-s)", "split(s/sim-s)", "speedup")
	for _, p := range r.Points {
		t.Row(p.Cores, fmt.Sprintf("%.0f", p.SeqSPerSimS),
			fmt.Sprintf("%.0f", p.SplitSPerSimS), fmt.Sprintf("%.1fx", p.Speedup))
	}
	var b strings.Builder
	b.WriteString("Fig 7: SplitSim-parallelized multi-core gem5 vs sequential gem5\n")
	b.WriteString(t.String())
	if has8, has44 := contains(r.Points, 8), contains(r.Points, 44); has8 && has44 {
		fmt.Fprintf(&b, "speedup at 8 cores: %.1fx (paper: ~5x)\n", r.Get(8).Speedup)
		fmt.Fprintf(&b, "split time 44/8 cores: %.2fx (paper: ~2x)\n",
			r.Get(44).SplitSPerSimS/r.Get(8).SplitSPerSimS)
	}
	return b.String()
}

func contains(ps []Fig7Point, cores int) bool {
	for _, p := range ps {
		if p.Cores == cores {
			return true
		}
	}
	return false
}

// fig7Run simulates n cores in the split instantiation and derives both
// runtimes from the cost accounts: the sequential time is the total work in
// one process (no channels), the split time is the makespan of the
// per-component work plus channel synchronization overhead.
func fig7Run(n int, opts Options) Fig7Point {
	dur := opts.Dur(2*sim.Millisecond, 500*sim.Microsecond)
	p := memsim.DefaultParams()
	s := orch.New()
	cores, _ := memsim.BuildSplit(s, n, p)
	sw := newStopwatch()
	s.RunSequential(dur)
	checkDrained(s)
	pt := Fig7Point{Cores: n, WallMs: sw.ms()}
	for _, c := range cores {
		pt.Blocks += c.Blocks
	}
	comps, links := s.ModelGraph(dur)
	mp := decomp.DefaultParams(dur)
	comps, links = applyModelPlacement(opts.Placement, comps, links, mp)
	split := decomp.Makespan(comps, links, mp)
	pt.SeqSPerSimS = split.SeqNs / 1e9 / dur.Seconds()
	pt.SplitSPerSimS = split.ParNs / 1e9 / dur.Seconds()
	pt.Speedup = split.Speedup
	return pt
}

// Fig7 sweeps core counts.
func Fig7(opts Options) *Fig7Result {
	r := &Fig7Result{}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 44} {
		r.Points = append(r.Points, fig7Run(n, opts))
	}
	return r
}
