package experiments

import (
	"fmt"
	"strings"

	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcpstack"
)

// Fig. 6 — DCTCP congestion-control behavior versus ECN marking threshold
// on a dumbbell with a 10G bottleneck and two hosts per side, in three
// configurations: protocol-level ns-3, mixed fidelity (one detailed pair +
// one ns-3 pair), and full end-to-end (all four hosts detailed gem5).
// Host-internal behavior (stack costs, timing noise) lowers achievable
// throughput at small thresholds; the protocol-level simulation misses it.

// Fig6Point is one (config, K) measurement.
type Fig6Point struct {
	Config Fig4Config
	// KPackets is the marking threshold in MSS-sized packets.
	KPackets int
	// Goodput is aggregate receiver goodput in bits/s across both flows.
	Goodput float64
	// Flow0 is the measured (first) flow's goodput — the detailed pair in
	// mixed and e2e configurations.
	Flow0 float64
	// Retransmits across senders (DCTCP should keep this at zero).
	Retransmits uint64
}

// Fig6Result holds the three series.
type Fig6Result struct {
	Ks     []int
	Points []Fig6Point
}

// Get returns the measurement for (config, k).
func (r *Fig6Result) Get(cfg Fig4Config, k int) Fig6Point {
	for _, p := range r.Points {
		if p.Config == cfg && p.KPackets == k {
			return p
		}
	}
	panic("experiments: missing fig6 point")
}

// String renders the three series.
func (r *Fig6Result) String() string {
	t := stats.NewTable("K(pkts)", "ns3", "mixed(flow0)", "e2e(flow0)", "mixed/e2e", "ns3/e2e")
	for _, k := range r.Ks {
		ns3 := r.Get(ConfigNS3, k).Flow0
		mx := r.Get(ConfigMixed, k).Flow0
		e2e := r.Get(ConfigE2E, k).Flow0
		t.Row(k, stats.FmtBps(ns3), stats.FmtBps(mx), stats.FmtBps(e2e),
			fmt.Sprintf("%.2f", mx/e2e), fmt.Sprintf("%.2f", ns3/e2e))
	}
	var b strings.Builder
	b.WriteString("Fig 6: DCTCP throughput vs ECN marking threshold (dumbbell, 10G bottleneck)\n")
	b.WriteString(t.String())
	b.WriteString("expected shape: mixed tracks e2e closely; ns-3 diverges (overestimates at small K)\n")
	return b.String()
}

// fig6NICParams enables i40e-style interrupt moderation, the dominant
// host-side effect on DCTCP at small marking thresholds: ACKs arrive in
// bursts, the sender transmits in bursts, and the instantaneous queue
// overshoots the threshold.
func fig6NICParams() nicsim.Params {
	np := nicsim.DefaultParams()
	np.IRQModeration = 20 * sim.Microsecond
	return np
}

// fig6HostParams returns gem5 parameters tuned for a 10G-capable stack
// (interrupt coalescing, GRO-like batching reduce per-packet costs).
func fig6HostParams() hostsim.Params {
	p := hostsim.Gem5Params()
	p.IRQOverhead = 300 * sim.Nanosecond
	p.RxStackCost = 600 * sim.Nanosecond
	p.TxStackCost = 800 * sim.Nanosecond
	return p
}

// fig6Run measures one (config, K) cell.
func fig6Run(cfg Fig4Config, kPackets int, opts Options) Fig6Point {
	dur := opts.Dur(60*sim.Millisecond, 30*sim.Millisecond)
	warmup := 10 * sim.Millisecond

	n := netsim.New("net", opts.Seed)
	swL := n.AddSwitch("swL")
	swR := n.AddSwitch("swR")
	li, ri := n.ConnectSwitches(swL, swR, 10*sim.Gbps, 1*sim.Microsecond)
	for _, ifc := range []*netsim.Iface{swL.Ifaces()[li], swR.Ifaces()[ri]} {
		ifc.MarkThresholdBytes = kPackets * (tcpstack.MSS + 54)
		ifc.QueueCapBytes = 4 << 20
	}

	s := orch.New()
	s.Add(n)

	detailedPairs := 0
	switch cfg {
	case ConfigMixed:
		detailedPairs = 1
	case ConfigE2E:
		detailedPairs = 2
	}

	type flowEnd interface{}
	_ = flowEnd(nil)
	var rcvs []*tcpstack.Conn
	var snds []*tcpstack.Conn

	for i := 0; i < 2; i++ {
		// Pair 0 transfers left->right, pair 1 right->left: each direction
		// of the bottleneck carries one bulk flow.
		lIP := proto.HostIP(uint32(1 + i))
		rIP := proto.HostIP(uint32(101 + i))
		if i == 1 {
			lIP, rIP = rIP, lIP
		}
		port := uint16(41000 + i)
		swSnd, swRcv := swL, swR
		if i == 1 {
			swSnd, swRcv = swR, swL
		}
		if i < detailedPairs {
			extL := n.AddExternal(swSnd, fmt.Sprintf("l%d", i), 10*sim.Gbps, lIP)
			extR := n.AddExternal(swRcv, fmt.Sprintf("r%d", i), 10*sim.Gbps, rIP)
			dl := instantiate.NewDetailedHost(fmt.Sprintf("l%d", i), lIP,
				fig6HostParams(), fig6NICParams(), opts.Seed+uint64(i))
			dr := instantiate.NewDetailedHost(fmt.Sprintf("r%d", i), rIP,
				fig6HostParams(), fig6NICParams(), opts.Seed+uint64(10+i))
			snd := dl.Host.DialTCP(rIP, port, proto.PortBulk, tcpstack.CCDCTCP, 0, nil)
			rcv := dr.Host.ListenTCP(lIP, proto.PortBulk, port, tcpstack.CCDCTCP)
			dl.Host.AddApp(hostsim.AppFunc(func(*hostsim.Host) { snd.StartFlow() }))
			dl.Wire(s, n, extL)
			dr.Wire(s, n, extR)
			snds = append(snds, snd)
			rcvs = append(rcvs, rcv)
		} else {
			hl := n.AddHost(fmt.Sprintf("l%d", i), lIP)
			hr := n.AddHost(fmt.Sprintf("r%d", i), rIP)
			n.ConnectHostSwitch(hl, swSnd, 10*sim.Gbps, instantiate.EthLatency)
			n.ConnectHostSwitch(hr, swRcv, 10*sim.Gbps, instantiate.EthLatency)
			snd, rcv := netsim.NewFlow(hl, hr, port, proto.PortBulk, netsim.CCDCTCP, 0, nil)
			hl.SetApp(netsim.AppFunc(func(*netsim.Host) { snd.StartFlow() }))
			snds = append(snds, snd)
			rcvs = append(rcvs, rcv)
		}
	}
	n.ComputeRoutes()

	// Record delivered bytes at warmup end, measure the remainder.
	var atWarmup [2]int64
	markWarm := netsim.AppFunc(func(h *netsim.Host) {
		h.After(warmup, func() {
			for i, r := range rcvs {
				atWarmup[i] = r.Delivered()
			}
		})
	})
	// Attach the warmup marker to a fresh observer host on the left switch.
	obs := n.AddHost("obs", proto.HostIP(250))
	n.ConnectHostSwitch(obs, swL, sim.Gbps, instantiate.EthLatency)
	obs.SetApp(markWarm)
	n.ComputeRoutes()

	s.RunSequential(dur)
	checkDrained(s)

	var bytes int64
	var rtx uint64
	for i, r := range rcvs {
		bytes += r.Delivered() - atWarmup[i]
	}
	for _, sd := range snds {
		rtx += sd.Retransmits
	}
	return Fig6Point{
		Config: cfg, KPackets: kPackets,
		Goodput:     stats.Throughput(bytes, dur-warmup),
		Flow0:       stats.Throughput(rcvs[0].Delivered()-atWarmup[0], dur-warmup),
		Retransmits: rtx,
	}
}

// Fig6 sweeps the marking threshold for all three configurations.
func Fig6(opts Options) *Fig6Result {
	r := &Fig6Result{Ks: []int{2, 4, 8, 16, 32, 64}}
	for _, cfg := range []Fig4Config{ConfigNS3, ConfigMixed, ConfigE2E} {
		for _, k := range r.Ks {
			r.Points = append(r.Points, fig6Run(cfg, k, opts))
		}
	}
	return r
}
