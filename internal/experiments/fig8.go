package experiments

import (
	"fmt"
	"strings"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig. 8 — SplitSim parallelization versus the native (MPI-style,
// global-barrier) parallelization of ns-3 and OMNeT++ on the DONS FatTree8
// configuration (k=8 fat tree, 128 servers), evenly partitioned into 1, 2,
// 16 and 32 components. Both schemes run the same partitions; they differ
// only in synchronization: SplitSim syncs each channel with its neighbor at
// the channel's latency lookahead, the native scheme synchronizes all
// partitions in lockstep rounds whose cost grows with the partition count.
//
// The OMNeT++ flavor differs from the ns-3 flavor by its relative
// per-event simulation cost (calibrated constant; see EXPERIMENTS.md).

// Fig8Point is one (flavor, partitions) measurement.
type Fig8Point struct {
	Flavor       string // "ns3" or "omnet"
	Parts        int
	NativeS      float64 // native-parallel modeled runtime, s per sim-s
	SplitSimS    float64 // SplitSim modeled runtime, s per sim-s
	Reduction    float64 // 1 - SplitSim/Native
	BoundaryMsgs uint64
}

// Fig8Result holds all points.
type Fig8Result struct {
	Points []Fig8Point
}

// Get returns the point for (flavor, parts).
func (r *Fig8Result) Get(flavor string, parts int) Fig8Point {
	for _, p := range r.Points {
		if p.Flavor == flavor && p.Parts == parts {
			return p
		}
	}
	panic("experiments: missing fig8 point")
}

// String renders the figure.
func (r *Fig8Result) String() string {
	t := stats.NewTable("flavor", "parts", "native(s/sim-s)", "splitsim(s/sim-s)", "reduction")
	best := 0.0
	for _, p := range r.Points {
		t.Row(p.Flavor, p.Parts, fmt.Sprintf("%.1f", p.NativeS),
			fmt.Sprintf("%.1f", p.SplitSimS), fmt.Sprintf("%.0f%%", p.Reduction*100))
		if p.Reduction > best {
			best = p.Reduction
		}
	}
	var b strings.Builder
	b.WriteString("Fig 8: SplitSim vs native (MPI/barrier) parallelization, FatTree8, 128 servers\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "max simulation-time reduction: %.0f%% (paper: up to 57%%)\n", best*100)
	return b.String()
}

// omnetCostFactor scales netsim event costs to OMNeT++'s relative speed.
const omnetCostFactor = 1.35

// fig8Run builds the partitioned fat tree, drives the DONS-style workload,
// and evaluates both synchronization schemes on the resulting cost graph.
func fig8Run(flavor string, parts int, opts Options) Fig8Point {
	dur := opts.Dur(20*sim.Millisecond, 5*sim.Millisecond)
	topo, meta := netsim.FatTree(8, 10*sim.Gbps, 40*sim.Gbps, 1*sim.Microsecond)
	assign := decomp.EvenFatTree(meta, len(topo.Switches), parts)
	b := topo.Build("net", opts.Seed, assign, nil)

	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)

	// DONS-style workload: every server streams CBR traffic to a fixed
	// partner in another pod.
	hosts := b.Hosts
	n := len(hosts)
	perm := sim.NewRand(opts.Seed ^ 0xf8).Perm(n)
	const pktSize = 8900
	rate := 2.0 * 1e9 // 2 Gbps per host keeps event counts tractable
	gap := sim.FromSeconds(pktSize * 8 / rate)
	for i := 0; i < n/2; i++ {
		a, c := hosts[perm[2*i]], hosts[perm[2*i+1]]
		a.SetApp(&bulkApp{dst: c.IP(), gap: gap, size: pktSize})
		c.SetApp(&bulkApp{dst: a.IP(), gap: gap, size: pktSize})
		a.BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
		c.BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
	}

	s.RunSequential(dur)
	checkDrained(s)

	comps, links := s.ModelGraph(dur)
	if flavor == "omnet" {
		for i := range comps {
			comps[i].BusyNs *= omnetCostFactor
		}
	}
	mp := decomp.DefaultParams(dur)
	comps, links = applyModelPlacement(opts.Placement, comps, links, mp)
	native := decomp.NativeBarrier(comps, links, mp)
	split := decomp.Makespan(comps, links, mp)
	pt := Fig8Point{
		Flavor: flavor, Parts: parts,
		NativeS:      native.ParNs / 1e9 / dur.Seconds(),
		SplitSimS:    split.ParNs / 1e9 / dur.Seconds(),
		BoundaryMsgs: instantiate.BoundaryMsgs(b),
	}
	pt.Reduction = 1 - pt.SplitSimS/pt.NativeS
	return pt
}

// Fig8 sweeps flavors and partition counts.
func Fig8(opts Options) *Fig8Result {
	r := &Fig8Result{}
	for _, flavor := range []string{"ns3", "omnet"} {
		for _, parts := range []int{1, 2, 16, 32} {
			r.Points = append(r.Points, fig8Run(flavor, parts, opts))
		}
	}
	return r
}
