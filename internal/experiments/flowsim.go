package experiments

import (
	"fmt"
	"strings"

	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/flowsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Flowsim — the mixed-fidelity figure: a packet-level foreground incast in
// one pod of a lazy datacenter Clos, with the flow-level background tier
// occupying a sweep of endpoint fractions fabric-wide. The figure plots
// foreground FCT percentiles against background load, and reports the
// fluid tier's scheduler-event count next to the packet-level projection
// for the traffic it drained — the "background for the price of an
// arithmetic update" claim.
//
// Background load is an endpoint-occupancy knob: at load ρ, ρ·n/2 disjoint
// endpoint pairs carry long-lived elephants for the whole horizon (see
// bgElephants). Foreground hosts are the only materialized slots plus the
// incast participants; background never materializes anything.

// FlowsimPoint is one background-load level's outcome.
type FlowsimPoint struct {
	Load        float64
	BgFlows     int
	FgCompleted int
	FgFCTP50    sim.Time
	FgFCTP99    sim.Time
	BgEvents    uint64
	BgProjPkt   uint64
	WallMs      float64
}

// FlowsimResult is the experiment outcome.
type FlowsimResult struct {
	Hosts  int
	Points []FlowsimPoint
}

// String renders the figure series.
func (r *FlowsimResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flowsim: mixed-fidelity Clos, %d host slots, packet-level incast foreground\n", r.Hosts)
	t := stats.NewTable("bg-load", "bg-flows", "fg-done", "fg-fct-p50", "fg-fct-p99", "bg-events", "proj-pkt-events", "ratio")
	for _, p := range r.Points {
		ratio := "-"
		if p.BgEvents > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(p.BgProjPkt)/float64(p.BgEvents))
		}
		t.Row(fmt.Sprintf("%.0f%%", p.Load*100), p.BgFlows, p.FgCompleted,
			p.FgFCTP50, p.FgFCTP99, p.BgEvents, p.BgProjPkt, ratio)
	}
	b.WriteString(t.String())
	return b.String()
}

// Flowsim sweeps background load over {0, 30, 60, 90}% endpoint occupancy.
func Flowsim(opts Options) (*FlowsimResult, error) {
	if opts.Bg != "" && opts.Bg != "flow" {
		return nil, fmt.Errorf("flowsim: unknown background tier %q (want \"flow\")", opts.Bg)
	}
	dur := opts.Dur(5*sim.Millisecond, 1*sim.Millisecond)
	r := &FlowsimResult{}
	for _, load := range []float64{0, 0.3, 0.6, 0.9} {
		sw := newStopwatch()
		spec := scaleSpec(opts)
		topo, m := topogen.Clos(spec)
		b := topo.Build("flowsim", opts.Seed, nil, nil)
		r.Hosts = m.TotalHosts()

		slots := scaleParticipants(m, 33)
		hosts := make([]*netsim.Host, len(slots))
		for i, slot := range slots {
			hosts[i] = b.MaterializeSlot(slot)
		}
		// Open-loop so the offered foreground load is identical at every
		// background level: degradation shows up in the FCT percentiles
		// rather than in a closed loop's completion count.
		weng := workload.Install(hosts, workload.Spec{
			Pattern: workload.Incast{Victim: 0},
			Sizes:   workload.Fixed(20_000),
			Arrival: workload.Open{FlowsPerSec: 1_000},
			Seed:    opts.Seed,
		})
		var bg *flowsim.Engine
		if load > 0 {
			bg = flowsim.Install(b, scaleAllSlots(m), flowsim.Spec{
				Trace: bgElephants(m.TotalHosts(), load, opts.Seed^0xb105),
				Seed:  opts.Seed ^ 0xb105,
			})
		}
		s := orch.New()
		instantiate.WirePartitions(s, topo, b, true)
		s.RunSequential(dur)
		checkDrained(s)

		rep := weng.Collect()
		p := FlowsimPoint{
			Load:        load,
			FgCompleted: rep.FlowsCompleted,
			FgFCTP50:    rep.FCT.Percentile(50),
			FgFCTP99:    rep.FCT.Percentile(99),
			WallMs:      sw.ms(),
		}
		if bg != nil {
			br := bg.Collect()
			p.BgFlows = br.ActiveFlows
			p.BgEvents = br.Events
			p.BgProjPkt = br.ProjPacketEvents
		}
		r.Points = append(r.Points, p)
	}
	return r, nil
}
