package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/kv"
	"repro/internal/apps/pegasus"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig. 5 — Pegasus latency CDFs measured by an ns-3 client versus a qemu
// client in the same mixed-fidelity simulation, once with servers
// saturated and once under low load. Under saturation the server queueing
// dominates and both clients measure the same distribution; under low load
// the detailed client's own stack contributes a visible share, so the
// protocol-level client under-reports latency.

// Fig5Workload names a load level.
type Fig5Workload string

// The two workloads compared.
const (
	WorkloadSaturated   Fig5Workload = "saturated"
	WorkloadUnsaturated Fig5Workload = "unsaturated"
)

// Fig5Series is one CDF.
type Fig5Series struct {
	Workload Fig5Workload
	Client   string // "ns3" or "qemu"
	CDF      []stats.CDFPoint
	P50, P99 sim.Time
	Mean     sim.Time
	Samples  int
}

// Fig5Result holds the four series.
type Fig5Result struct {
	Series []Fig5Series
}

// Get returns the series for (workload, client).
func (r *Fig5Result) Get(w Fig5Workload, client string) Fig5Series {
	for _, s := range r.Series {
		if s.Workload == w && s.Client == client {
			return s
		}
	}
	panic("experiments: missing fig5 series")
}

// String renders per-series summaries and the paper's comparison ratios.
func (r *Fig5Result) String() string {
	t := stats.NewTable("workload", "client", "p50", "p99", "mean", "samples")
	for _, s := range r.Series {
		t.Row(string(s.Workload), s.Client, s.P50, s.P99, s.Mean, s.Samples)
	}
	var b strings.Builder
	b.WriteString("Fig 5: Pegasus latency CDFs, ns-3 vs qemu client, mixed-fidelity simulation\n")
	b.WriteString(t.String())
	sat := float64(r.Get(WorkloadSaturated, "qemu").P50) / float64(r.Get(WorkloadSaturated, "ns3").P50)
	uns := float64(r.Get(WorkloadUnsaturated, "qemu").P50) / float64(r.Get(WorkloadUnsaturated, "ns3").P50)
	fmt.Fprintf(&b, "saturated   qemu/ns3 median ratio: %.2f (paper: ~1, distributions match)\n", sat)
	fmt.Fprintf(&b, "unsaturated qemu/ns3 median ratio: %.2f (paper: clearly above 1)\n", uns)
	return b.String()
}

// fig5Run builds the mixed-fidelity Pegasus setup (2 detailed servers, 2
// ns-3 clients, 1 qemu client) under one workload and returns the two
// measured series.
func fig5Run(w Fig5Workload, opts Options) []Fig5Series {
	p := defaultFig4Params()
	dur := opts.Dur(60*sim.Millisecond, 20*sim.Millisecond)

	n := netsim.New("net", opts.Seed)
	sw := n.AddSwitch("sw")
	serverIPs := []proto.IP{proto.HostIP(100), proto.HostIP(101)}
	sw.Dataplane = pegasus.New(fig4VIP, serverIPs, p.hotKeys)

	s := orch.New()
	s.Add(n)

	for i, ip := range serverIPs {
		srv := kv.NewServer(p.serverParams)
		ext := n.AddExternal(sw, fmt.Sprintf("srv%d", i), p.serverLinkRate, ip)
		dh := instantiate.NewDetailedHost(fmt.Sprintf("srv%d", i), ip,
			hostsim.QemuParams(), serverNIC(p.serverLinkRate), opts.Seed+uint64(i))
		dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { srv.Run(h) }))
		dh.Wire(s, n, ext)
	}

	mkParams := func(id uint32) kv.ClientParams {
		cp := kv.DefaultClientParams(id, serverIPs)
		cp.VIP = fig4VIP
		cp.ValueSize = p.valueSize
		cp.WarmUp = p.warmup
		if w == WorkloadSaturated {
			cp.Outstanding = p.outstanding
		} else {
			cp.Outstanding = 0
			cp.Rate = 4000 // far below server capacity
		}
		return cp
	}

	// Two protocol-level clients.
	var ns3Clients []*kv.Client
	for i := 0; i < 2; i++ {
		ip := proto.HostIP(uint32(1 + i))
		cli := kv.NewClient(mkParams(uint32(i)))
		ns3Clients = append(ns3Clients, cli)
		h := n.AddHost(fmt.Sprintf("cli%d", i), ip)
		n.ConnectHostSwitch(h, sw, p.clientLinkRate, instantiate.EthLatency)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
	}
	// One detailed (qemu) client.
	qemuIP := proto.HostIP(3)
	qemuCli := kv.NewClient(mkParams(2))
	ext := n.AddExternal(sw, "cli2", p.clientLinkRate, qemuIP)
	dh := instantiate.NewDetailedHost("cli2", qemuIP,
		hostsim.QemuParams(), nicsim.DefaultParams(), opts.Seed+99)
	dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { qemuCli.Run(h) }))
	dh.Wire(s, n, ext)

	n.ComputeRoutes()
	s.RunSequential(dur)
	checkDrained(s)

	series := func(client string, lats ...*stats.Latency) Fig5Series {
		var merged stats.Latency
		for _, l := range lats {
			for _, pt := range l.CDF(400) {
				merged.Add(pt.Value)
			}
		}
		return Fig5Series{
			Workload: w, Client: client,
			CDF: merged.CDF(50),
			P50: merged.Percentile(50), P99: merged.Percentile(99),
			Mean: merged.Mean(), Samples: merged.Count(),
		}
	}
	return []Fig5Series{
		series("ns3", &ns3Clients[0].Lat, &ns3Clients[1].Lat),
		series("qemu", &qemuCli.Lat),
	}
}

// Fig5 runs both workloads.
func Fig5(opts Options) *Fig5Result {
	r := &Fig5Result{}
	r.Series = append(r.Series, fig5Run(WorkloadSaturated, opts)...)
	r.Series = append(r.Series, fig5Run(WorkloadUnsaturated, opts)...)
	return r
}
