package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The experiment tests assert the paper's qualitative claims (who wins, by
// roughly what factor, where crossovers fall) at reduced scale; the bench
// harness regenerates the full tables. Heavy cases honor -short.

func TestFig4OppositeTrends(t *testing.T) {
	r := Fig4(Options{Scale: 0.4, Seed: 42})

	// Protocol-level: NetCache ahead (paper: +33%).
	nc, pg := r.Get(SystemNetCache, ConfigNS3), r.Get(SystemPegasus, ConfigNS3)
	if ratio := nc.Tput / pg.Tput; ratio < 1.05 {
		t.Errorf("protocol-level NetCache/Pegasus = %.2f, want > 1.05", ratio)
	}
	// End-to-end: Pegasus ahead decisively (paper: +47%).
	nc, pg = r.Get(SystemNetCache, ConfigE2E), r.Get(SystemPegasus, ConfigE2E)
	if ratio := pg.Tput / nc.Tput; ratio < 1.25 {
		t.Errorf("end-to-end Pegasus/NetCache = %.2f, want > 1.25", ratio)
	}
	// Mixed fidelity tracks end-to-end for both systems.
	for _, sys := range []Fig4System{SystemNetCache, SystemPegasus} {
		e2e, mx := r.Get(sys, ConfigE2E), r.Get(sys, ConfigMixed)
		rel := mx.Tput / e2e.Tput
		if rel < 0.9 || rel > 1.1 {
			t.Errorf("%s mixed/e2e tput = %.2f, want within 10%%", sys, rel)
		}
	}
	// Core counts: 1 (ns3), 11 (e2e), 5 (mixed) — the paper's 54% saving.
	if c := r.Get(SystemNetCache, ConfigNS3).Cores; c != 1 {
		t.Errorf("ns3 cores = %d, want 1", c)
	}
	if c := r.Get(SystemNetCache, ConfigE2E).Cores; c != 11 {
		t.Errorf("e2e cores = %d, want 11", c)
	}
	if c := r.Get(SystemNetCache, ConfigMixed).Cores; c != 5 {
		t.Errorf("mixed cores = %d, want 5", c)
	}
	// Latency: end-to-end far above protocol-level under saturation.
	if e, n := r.Get(SystemPegasus, ConfigE2E).MeanLat, r.Get(SystemPegasus, ConfigNS3).MeanLat; e < 2*n {
		t.Errorf("e2e latency %v should dwarf protocol-level %v", e, n)
	}
	// Modeled simulation runtime: detailed configurations far above ns3;
	// mixed no more expensive than e2e. (The paper's additional 17% gap
	// between e2e and mixed is not reproduced — both are bound by the same
	// qemu host component in our model; see EXPERIMENTS.md.)
	e2eCost := r.Get(SystemPegasus, ConfigE2E).ModeledRunSPerSimS
	mixedCost := r.Get(SystemPegasus, ConfigMixed).ModeledRunSPerSimS
	ns3Cost := r.Get(SystemPegasus, ConfigNS3).ModeledRunSPerSimS
	if mixedCost > e2eCost*1.02 {
		t.Errorf("mixed cost %.1f should not exceed e2e %.1f", mixedCost, e2eCost)
	}
	if mixedCost < 2*ns3Cost {
		t.Errorf("mixed cost %.1f should dwarf ns3 %.1f", mixedCost, ns3Cost)
	}
	if !strings.Contains(r.String(), "Fig 4") {
		t.Error("missing render")
	}
}

func TestFig5ClientFidelity(t *testing.T) {
	r := Fig5(Options{Scale: 0.4, Seed: 42})
	// Saturated: both clients measure the same distribution (within 10%).
	sat := float64(r.Get(WorkloadSaturated, "qemu").P50) /
		float64(r.Get(WorkloadSaturated, "ns3").P50)
	if sat < 0.9 || sat > 1.15 {
		t.Errorf("saturated qemu/ns3 p50 ratio = %.2f, want ~1", sat)
	}
	// Unsaturated: the qemu client measures clearly higher latency.
	uns := float64(r.Get(WorkloadUnsaturated, "qemu").P50) /
		float64(r.Get(WorkloadUnsaturated, "ns3").P50)
	if uns < 1.2 {
		t.Errorf("unsaturated qemu/ns3 p50 ratio = %.2f, want > 1.2", uns)
	}
	for _, s := range r.Series {
		if s.Samples == 0 || len(s.CDF) == 0 {
			t.Errorf("series %s/%s empty", s.Workload, s.Client)
		}
	}
}

func TestFig6MixedTracksE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: -short")
	}
	r := Fig6(Options{Scale: 0.3, Seed: 42})
	for _, k := range r.Ks {
		e2e, mx := r.Get(ConfigE2E, k).Flow0, r.Get(ConfigMixed, k).Flow0
		if rel := mx / e2e; rel < 0.85 || rel > 1.15 {
			t.Errorf("K=%d: mixed/e2e = %.2f, want within 15%%", k, rel)
		}
	}
	// Protocol-level overestimates achievable throughput.
	over := 0
	for _, k := range r.Ks {
		if r.Get(ConfigNS3, k).Flow0 > 1.15*r.Get(ConfigE2E, k).Flow0 {
			over++
		}
	}
	if over < len(r.Ks)/2 {
		t.Errorf("ns-3 overestimated at only %d/%d thresholds", over, len(r.Ks))
	}
	// DCTCP with ECN avoids drops in the protocol-level runs.
	for _, k := range r.Ks {
		if k >= 16 && r.Get(ConfigNS3, k).Retransmits > 0 {
			t.Errorf("K=%d: unexpected retransmits in ns-3 config", k)
		}
	}
}

func TestClockSyncCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: -short")
	}
	r := ClockSync(Options{Scale: 0.05, Seed: 42})
	ntp, ptp := r.Get(ModeNTP), r.Get(ModePTP)
	// Bound improves by roughly an order of magnitude (paper 11us -> 943ns).
	if ntp.Bound < 5*sim.Microsecond || ntp.Bound > 50*sim.Microsecond {
		t.Errorf("NTP bound %v, want ~10us scale", ntp.Bound)
	}
	if ptp.Bound > 2*sim.Microsecond {
		t.Errorf("PTP bound %v, want ~1us scale", ptp.Bound)
	}
	if ptp.Bound*5 > ntp.Bound {
		t.Errorf("PTP bound %v should be >=5x tighter than NTP %v", ptp.Bound, ntp.Bound)
	}
	// Both disciplines actually synchronize the clock.
	if ntp.TrueErr > 20*sim.Microsecond || ptp.TrueErr > 2*sim.Microsecond {
		t.Errorf("true errors too large: ntp %v ptp %v", ntp.TrueErr, ptp.TrueErr)
	}
	// The tighter bound improves writes (paper: +38%% tput, -15%% latency).
	if ptp.WriteTput <= ntp.WriteTput {
		t.Errorf("PTP write tput %.0f should beat NTP %.0f", ptp.WriteTput, ntp.WriteTput)
	}
	if ptp.WriteP50 >= ntp.WriteP50 {
		t.Errorf("PTP write p50 %v should beat NTP %v", ptp.WriteP50, ntp.WriteP50)
	}
	// 7 detailed hosts + 7 NICs + network = 15 components.
	if ntp.Cores != 15 {
		t.Errorf("cores = %d, want 15", ntp.Cores)
	}
}

func TestFig7Parallelization(t *testing.T) {
	r := Fig7(Options{Scale: 1, Seed: 42})
	// Speedup at 8 cores around 5x (paper: ~5x).
	if s := r.Get(8).Speedup; s < 3.5 || s > 7 {
		t.Errorf("8-core speedup = %.1f, want ~5", s)
	}
	// Split time grows by only ~2x from 8 to 44 cores (paper: ~2x).
	ratio := r.Get(44).SplitSPerSimS / r.Get(8).SplitSPerSimS
	if ratio < 1.3 || ratio > 3 {
		t.Errorf("44/8 split-time ratio = %.2f, want ~2", ratio)
	}
	// Sequential time grows with core count; split stays far below it.
	if r.Get(44).SeqSPerSimS <= r.Get(8).SeqSPerSimS {
		t.Error("sequential time should grow with simulated cores")
	}
	for _, p := range r.Points {
		if p.Cores > 1 && p.Speedup <= 1 {
			t.Errorf("cores=%d speedup=%.2f, want > 1", p.Cores, p.Speedup)
		}
	}
}

func TestFig8SplitSimBeatsNative(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: -short")
	}
	r := Fig8(Options{Scale: 0.3, Seed: 42})
	best := 0.0
	for _, p := range r.Points {
		if p.Parts == 1 {
			continue
		}
		if p.SplitSimS >= p.NativeS {
			t.Errorf("%s parts=%d: SplitSim %.1f should beat native %.1f",
				p.Flavor, p.Parts, p.SplitSimS, p.NativeS)
		}
		if p.Reduction > best {
			best = p.Reduction
		}
	}
	// Paper: up to 57% lower simulation time.
	if best < 0.35 || best > 0.70 {
		t.Errorf("max reduction = %.0f%%, want roughly 40-60%%", best*100)
	}
}

func TestFig9PartitionStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: -short")
	}
	opts := Options{Scale: 0.08, Seed: 42}
	r := Fig9(opts)
	// Partitioning helps: every strategy beats "s" with qemu hosts.
	s := r.Get("s", "qemu").SimSpeed
	for _, name := range []string{"ac", "cr3", "rs"} {
		if r.Get(name, "qemu").SimSpeed <= s {
			t.Errorf("%s should beat the single-process strategy", name)
		}
	}
	// More cores does not monotonically help: cr1 (29 cores) is slower
	// than ac (9 cores).
	if r.Get("cr1", "qemu").SimSpeed >= r.Get("ac", "qemu").SimSpeed {
		t.Error("cr1 (more cores) should be slower than ac — sync overhead")
	}
	// gem5 hosts bottleneck everything: partitioning is futile.
	g5s := r.Get("s", "gem5").SimSpeed
	for _, name := range []string{"ac", "cr3", "rs"} {
		rel := r.Get(name, "gem5").SimSpeed / g5s
		if rel > 1.2 {
			t.Errorf("gem5 %s speed %.2fx of s — partitioning should not help much", name, rel)
		}
	}
	// qemu much faster than gem5 overall.
	if r.Get("ac", "qemu").SimSpeed < 5*r.Get("ac", "gem5").SimSpeed {
		t.Error("qemu configurations should be much faster than gem5")
	}
}

func TestFig10Profiles(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: -short")
	}
	r := Fig10(Options{Scale: 0.08, Seed: 42})
	// ac: network partitions are among the bottlenecks, the core-only
	// partition (p0) and the NICs are not.
	foundNet := false
	for _, b := range r.ACBottlenecks {
		if strings.HasPrefix(b, "net.p") && b != "net.p0" {
			foundNet = true
		}
		if strings.Contains(b, ".nic") {
			t.Errorf("ac: NIC %s flagged as bottleneck", b)
		}
	}
	if !foundNet {
		t.Errorf("ac bottlenecks %v should include rack-carrying partitions", r.ACBottlenecks)
	}
	// DOT output is well-formed and colored.
	for _, dot := range []string{r.ACDot, r.CR3Dot} {
		if !strings.Contains(dot, "digraph wtpg") || !strings.Contains(dot, "fillcolor") {
			t.Error("malformed DOT output")
		}
	}
	if !strings.Contains(r.String(), "cr3") {
		t.Error("missing render")
	}
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"SplitSim", "SimBricks", "end-to-end", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	rows := Table1Rows()
	if len(rows) != 5 || !rows[4].EndToEnd || !rows[4].Scalability || !rows[4].Fidelity {
		t.Error("SplitSim row must claim all three properties")
	}
}

func TestConfigEffort(t *testing.T) {
	r, err := ConfigEffort("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Lines < 20 {
			t.Errorf("%s: %d lines — suspiciously small", row.File, row.Lines)
		}
		if row.Lines > 600 {
			t.Errorf("%s: %d lines — configs should stay compact", row.File, row.Lines)
		}
	}
	if !strings.Contains(r.String(), "252 lines") {
		t.Error("render should cite the paper's numbers")
	}
}

func TestOptionsDur(t *testing.T) {
	o := Options{Scale: 0.1}
	if d := o.Dur(100*sim.Millisecond, 20*sim.Millisecond); d != 20*sim.Millisecond {
		t.Errorf("Dur floor: %v", d)
	}
	o = Options{Scale: 2}
	if d := o.Dur(100*sim.Millisecond, 20*sim.Millisecond); d != 200*sim.Millisecond {
		t.Errorf("Dur scale: %v", d)
	}
	o = Options{}
	if d := o.Dur(100*sim.Millisecond, 20*sim.Millisecond); d != 100*sim.Millisecond {
		t.Errorf("Dur default: %v", d)
	}
}

func TestPlacementStudy(t *testing.T) {
	r, err := PlacementStudy(Options{Scale: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(PlacementNames()) {
		t.Fatalf("points = %d, want %d", len(r.Points), len(PlacementNames()))
	}
	for _, p := range r.Points {
		if !p.Identical {
			t.Errorf("placement %s not bit-identical to sequential", p.Placement)
		}
		if p.PredSPerSimS <= 0 || p.AcctSPerSimS <= 0 {
			t.Errorf("placement %s has non-positive makespans: pred=%g acct=%g",
				p.Placement, p.PredSPerSimS, p.AcctSPerSimS)
		}
	}
	// Fully co-located: no synchronization at all.
	if s := r.Get("s"); s.Groups != 1 || s.SyncMsgs != 0 {
		t.Errorf("s placement: groups=%d syncmsgs=%d, want 1 group with 0 syncs", s.Groups, s.SyncMsgs)
	}
	// Finest placement pays the most synchronization.
	if rs, s := r.Get("rs"), r.Get("ac"); rs.SyncMsgs <= s.SyncMsgs {
		t.Errorf("rs syncmsgs %d should exceed ac's %d", rs.SyncMsgs, s.SyncMsgs)
	}
	// Co-location trades parallelism for sync: s predicts slower than rs here.
	if s, rs := r.Get("s"), r.Get("rs"); s.PredSPerSimS <= rs.PredSPerSimS {
		t.Errorf("s pred %.2f should exceed rs pred %.2f on this busy workload",
			s.PredSPerSimS, rs.PredSPerSimS)
	}

	// Single-placement filter.
	one, err := PlacementStudy(Options{Scale: 0.5, Seed: 42, Placement: "ac"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Points) != 1 || one.Points[0].Placement != "ac" {
		t.Fatalf("filtered study = %+v", one.Points)
	}
	if _, err := PlacementStudy(Options{Scale: 0.5, Seed: 42, Placement: "nope"}); err == nil {
		t.Fatal("unknown placement not rejected")
	}
}

func TestPlanFor(t *testing.T) {
	for _, tc := range []struct {
		exp, placement string
		want           []string
	}{
		{"placement", "", []string{"plan \"rs\"", "7 groups", "coupled"}},
		{"placement", "s", []string{"plan \"s\"", "1 groups", "co-located"}},
		{"placement", "auto", []string{"plan \"auto\""}},
		{"fig7", "", []string{"plan \"percomp\""}},
		{"fig7", "s", []string{"1 groups"}},
		{"fig8", "", []string{"16 groups"}},
	} {
		out, err := PlanFor(tc.exp, Options{Scale: 0.5, Seed: 42, Placement: tc.placement})
		if err != nil {
			t.Fatalf("PlanFor(%s, %q): %v", tc.exp, tc.placement, err)
		}
		for _, w := range tc.want {
			if !strings.Contains(out, w) {
				t.Errorf("PlanFor(%s, %q) missing %q:\n%s", tc.exp, tc.placement, w, out)
			}
		}
	}
	if _, err := PlanFor("fig4", Options{}); err == nil {
		t.Fatal("PlanFor should reject experiments without plans")
	}
	if _, err := PlanFor("fig7", Options{Placement: "cr2"}); err == nil {
		t.Fatal("PlanFor fig7 should reject study-only placements")
	}
}

func TestFigPlacementOption(t *testing.T) {
	base := Fig7(Options{Scale: 0.2, Seed: 42})
	coloc := Fig7(Options{Scale: 0.2, Seed: 42, Placement: "s"})
	// Fully co-located split == sequential: no channels, speedup 1.
	p := coloc.Get(8)
	if p.Speedup < 0.99 || p.Speedup > 1.01 {
		t.Errorf("fig7 co-located speedup = %.2f, want ~1", p.Speedup)
	}
	if base.Get(8).Speedup <= p.Speedup {
		t.Errorf("per-component speedup %.2f should beat co-located %.2f",
			base.Get(8).Speedup, p.Speedup)
	}
}
