package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/clocksync"
	"repro/internal/apps/crdb"
	"repro/internal/apps/kv"
	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// §4.3 — the clock-synchronization case study: NTP versus PTP host clock
// synchronization in a large three-tier datacenter full of background bulk
// traffic, and its effect on a commit-wait database. Seven detailed hosts
// (2 replicas, 4 clients, 1 clock server) are embedded in the topology;
// every other host is protocol-level background load. PTP uses NIC hardware
// timestamping plus transparent-clock switches.

// ClockSyncMode selects the synchronization protocol.
type ClockSyncMode string

// The two compared configurations.
const (
	ModeNTP ClockSyncMode = "ntp"
	ModePTP ClockSyncMode = "ptp"
)

// ClockSyncRow is one configuration's results.
type ClockSyncRow struct {
	Mode ClockSyncMode
	// Bound is the mean clock error bound chrony reports on the leader.
	Bound sim.Time
	// TrueErr is the actual leader clock error at the end (ground truth).
	TrueErr sim.Time
	// WriteTput is committed writes/s across the four clients.
	WriteTput float64
	// WriteP50 and ReadP50 are client-observed latencies.
	WriteP50, ReadP50 sim.Time
	// ModeledRunSPerSimS is the modeled simulation slowdown.
	ModeledRunSPerSimS float64
	// Cores is the component count.
	Cores int
	// BackgroundHosts is the number of protocol-level hosts.
	BackgroundHosts int
}

// ClockSyncResult holds both rows.
type ClockSyncResult struct {
	Rows []ClockSyncRow
	Dur  sim.Time
}

// Get returns the row for a mode.
func (r *ClockSyncResult) Get(m ClockSyncMode) ClockSyncRow {
	for _, row := range r.Rows {
		if row.Mode == m {
			return row
		}
	}
	panic("experiments: missing clocksync row")
}

// String renders the §4.3 numbers.
func (r *ClockSyncResult) String() string {
	t := stats.NewTable("mode", "clock-bound", "true-err", "write-tput", "write-p50", "read-p50", "cores", "model-run(s/sim-s)")
	for _, row := range r.Rows {
		t.Row(string(row.Mode), row.Bound, row.TrueErr, stats.FmtRate(row.WriteTput),
			row.WriteP50, row.ReadP50, row.Cores, fmt.Sprintf("%.0f", row.ModeledRunSPerSimS))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Case study: NTP vs PTP clock sync + commit-wait DB (%d background hosts, %v)\n",
		r.Rows[0].BackgroundHosts, r.Dur)
	b.WriteString(t.String())
	ntp, ptp := r.Get(ModeNTP), r.Get(ModePTP)
	fmt.Fprintf(&b, "bound: %v -> %v (paper: 11us -> 943ns)\n", ntp.Bound, ptp.Bound)
	fmt.Fprintf(&b, "write tput: +%.0f%% with PTP (paper: +38%%)\n",
		(ptp.WriteTput/ntp.WriteTput-1)*100)
	fmt.Fprintf(&b, "write p50: %+.0f%% with PTP (paper: -15%%)\n",
		(float64(ptp.WriteP50)/float64(ntp.WriteP50)-1)*100)
	return b.String()
}

// clockSyncSpec derives the (possibly scaled-down) datacenter topology.
func clockSyncSpec(opts Options) netsim.ThreeTierSpec {
	spec := netsim.DefaultThreeTier
	if opts.scale() < 1 {
		hpr := int(float64(spec.HostsPerRack) * opts.scale())
		if hpr < 3 {
			hpr = 3 // the leader's rack hosts two measured clients
		}
		spec.HostsPerRack = hpr
	}
	return spec
}

// bulkApp is the background workload: constant-rate virtual-payload UDP
// toward a fixed partner (the randomized bulk-transfer pairs of §4.3).
type bulkApp struct {
	dst  proto.IP
	gap  sim.Time
	size int
}

func (b *bulkApp) Start(h *netsim.Host) {
	// Desynchronize via a random phase.
	h.After(sim.Time(h.Rand().Int63n(int64(b.gap))), func() { b.tick(h) })
}

func (b *bulkApp) tick(h *netsim.Host) {
	h.SendUDP(b.dst, proto.PortBulk, proto.PortBulk, nil, b.size)
	h.After(b.gap, func() { b.tick(h) })
}

// runClockSync executes one mode.
func runClockSync(mode ClockSyncMode, opts Options) ClockSyncRow {
	spec := clockSyncSpec(opts)
	topo, meta := netsim.ThreeTier(spec)
	for i := range topo.Switches {
		topo.Switches[i].TC = true // PTP transparent clocks everywhere
	}

	// Reserve 7 host slots for the detailed machines: replicas in the
	// first rack of agg0/agg1, clock server in agg0 rack1, clients spread.
	slots := []int{
		meta.HostsByRack[0][0][0], // replica 0 (leader)
		meta.HostsByRack[0][1][0], // replica 1 (adjacent rack, same agg)
		meta.HostsByRack[0][2][0], // clock server
		// Measured write clients sit in the leader's rack (short paths, so
		// the commit wait is a visible share of write latency)...
		meta.HostsByRack[0][0][1], meta.HostsByRack[0][0][2],
		// ...while the social-mix clients run across the datacenter.
		meta.HostsByRack[2][0][0], meta.HostsByRack[3][0][0],
	}
	for _, s := range slots {
		topo.MakeExternal(s)
	}
	b := topo.Build("net", opts.Seed, nil, nil)
	net := b.Parts[0]

	s := orch.New()
	s.Add(net)

	// Background bulk pairs among all remaining protocol-level hosts,
	// sized to load the aggregation/core layer to ~30%. Jumbo frames keep
	// simulated event counts manageable at full scale.
	var bg []*netsim.Host
	for _, h := range b.Hosts {
		if h != nil {
			bg = append(bg, h)
		}
	}
	perm := sim.NewRand(opts.Seed ^ 0xb6).Perm(len(bg))
	pairs := len(bg) / 2
	pairRate := 0.3 * float64(spec.CoreRate) * float64(spec.Aggs) / float64(pairs)
	if max := 0.3 * float64(spec.HostRate); pairRate > max {
		pairRate = max
	}
	const pktSize = 8900 // jumbo frames
	gap := sim.FromSeconds(pktSize * 8 / pairRate)
	for i := 0; i < pairs; i++ {
		a, c := bg[perm[2*i]], bg[perm[2*i+1]]
		a.SetApp(&bulkApp{dst: c.IP(), gap: gap, size: pktSize})
		c.BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
	}

	// Detailed hosts.
	mkHost := func(slot int, name string, seed uint64, drift float64) *instantiate.DetailedHost {
		ip := topo.Hosts[slot].IP
		np := nicsim.DefaultParams()
		if drift != 0 {
			np.PHCDriftPPM = drift + 5
		}
		dh := instantiate.NewDetailedHost(name, ip, hostsim.QemuParams(), np, seed)
		if drift != 0 {
			dh.Host.Clock.Osc = hostsim.Oscillator{
				Offset:   sim.Time(seed%7) * sim.Millisecond,
				DriftPPM: drift, WanderPPM: 1,
				WanderPeriod: 10 * sim.Second, Phase: float64(seed),
			}
		}
		dh.Wire(s, net, b.Exts[slot])
		return dh
	}
	leader := mkHost(slots[0], "replica0", opts.Seed+1, 32)
	follower := mkHost(slots[1], "replica1", opts.Seed+2, -21)
	// The clock server is the stratum-1/GPS reference: perfect oscillator.
	clock := mkHost(slots[2], "clocksrv", opts.Seed+3, 0)
	var clients []*instantiate.DetailedHost
	for i := 0; i < 4; i++ {
		clients = append(clients, mkHost(slots[3+i], fmt.Sprintf("client%d", i),
			opts.Seed+uint64(4+i), []float64{18, -9, 44, 27}[i]))
	}

	// Clock synchronization: chrony on both replicas.
	syncInterval := 50 * sim.Millisecond
	mkChrony := func(dh *instantiate.DetailedHost) *clocksync.Chrony {
		ch := clocksync.NewChrony()
		dh.Host.AddApp(hostsim.AppFunc(ch.Run))
		switch mode {
		case ModeNTP:
			nc := &clocksync.NTPClient{Server: clock.Host.LocalIP(), Poll: syncInterval}
			nc.OnMeasurement = ch.OnMeasurement
			dh.Host.AddApp(hostsim.AppFunc(nc.Run))
		case ModePTP:
			slave := &clocksync.PTPSlave{Master: clock.Host.LocalIP(), NIC: dh.NIC}
			ref := &clocksync.PHCRefClock{Slave: slave, NIC: dh.NIC, Poll: syncInterval}
			ref.OnMeasurement = ch.OnMeasurement
			dh.Host.AddApp(hostsim.AppFunc(slave.Run))
			dh.Host.AddApp(hostsim.AppFunc(ref.Run))
		}
		return ch
	}
	leaderChrony := mkChrony(leader)
	mkChrony(follower)
	switch mode {
	case ModeNTP:
		srv := &clocksync.NTPServer{}
		clock.Host.AddApp(hostsim.AppFunc(srv.Run))
	case ModePTP:
		gm := &clocksync.PTPMaster{
			Slaves:   []proto.IP{leader.Host.LocalIP(), follower.Host.LocalIP()},
			Interval: syncInterval,
		}
		clock.Host.AddApp(hostsim.AppFunc(gm.Run))
	}

	// Commit-wait database: leader replicates to follower; commit wait is
	// the leader chrony's live bound.
	lp := crdb.DefaultParams()
	lp.Follower = follower.Host.LocalIP()
	lp.Bound = leaderChrony.Bound
	leaderSrv := crdb.NewServer(lp)
	leader.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { leaderSrv.Run(h) }))
	followerSrv := crdb.NewServer(crdb.DefaultParams())
	follower.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { followerSrv.Run(h) }))

	dur := opts.Dur(20*sim.Second, 2*sim.Second)
	warm := dur / 4
	// Two clients issue the measured write transactions; two issue the
	// read-mostly social background mix.
	var kvClients []*kv.Client
	for i, c := range clients {
		cp := crdb.SocialClientParams(uint32(i), leader.Host.LocalIP())
		cp.WarmUp = warm
		cp.Outstanding = 1
		if i < 2 {
			cp.WriteFrac = 1
		}
		cli := kv.NewClient(cp)
		kvClients = append(kvClients, cli)
		c.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { cli.Run(h) }))
	}

	s.RunSequential(dur)
	checkDrained(s)

	row := ClockSyncRow{
		Mode:            mode,
		Bound:           leaderChrony.Bounds.Mean(),
		TrueErr:         leaderChrony.TrueError(),
		Cores:           s.NumComponents(),
		BackgroundHosts: len(bg),
	}
	var writes uint64
	var wl, rl stats.Latency
	for _, c := range kvClients {
		writes += uint64(c.WriteLat.Count())
		for _, pt := range c.WriteLat.CDF(200) {
			wl.Add(pt.Value)
		}
		for _, pt := range c.ReadLat.CDF(200) {
			rl.Add(pt.Value)
		}
	}
	row.WriteTput = stats.Rate(int(writes), dur-warm)
	row.WriteP50 = wl.Percentile(50)
	row.ReadP50 = rl.Percentile(50)
	comps, links := s.ModelGraph(dur)
	model := decomp.Makespan(comps, links, decomp.DefaultParams(dur))
	if model.SimSpeed > 0 {
		row.ModeledRunSPerSimS = 1 / model.SimSpeed
	}
	return row
}

// ClockSync runs both modes.
func ClockSync(opts Options) *ClockSyncResult {
	r := &ClockSyncResult{Dur: opts.Dur(20*sim.Second, 2*sim.Second)}
	r.Rows = append(r.Rows, runClockSync(ModeNTP, opts), runClockSync(ModePTP, opts))
	return r
}
