package experiments

import (
	"strings"
	"testing"
)

// TestScaleSmoke is the fast `make scale` gate: a small fat-tree-class
// Clos (Scale well below 1 floors at 4 pods) must complete incast and
// shuffle flows with zero frame leaks (checkDrained panics inside Scale
// otherwise) and O(pods) routing state.
func TestScaleSmoke(t *testing.T) {
	opts := Options{Scale: 0.01, Seed: 3}
	r := Scale(opts)
	if r.Pods != 4 {
		t.Fatalf("Pods = %d, want floor 4", r.Pods)
	}
	if r.Hosts != 4*32*32 {
		t.Fatalf("Hosts = %d, want 4096", r.Hosts)
	}
	if r.MaxEntries > r.Pods+32+2 {
		t.Fatalf("max routing entries %d not O(pods)", r.MaxEntries)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want incast + shuffle", len(r.Phases))
	}
	for _, p := range r.Phases {
		if p.Completed == 0 {
			t.Fatalf("%s: no flows completed", p.Name)
		}
		if p.SimPkts == 0 {
			t.Fatalf("%s: no packets moved", p.Name)
		}
		if p.FCTMean <= 0 {
			t.Fatalf("%s: non-positive mean FCT %v", p.Name, p.FCTMean)
		}
	}
	out := r.String()
	if !strings.Contains(out, "incast") || !strings.Contains(out, "shuffle") {
		t.Fatalf("render missing phases:\n%s", out)
	}
}
