package experiments

import (
	"strings"
	"testing"
)

// TestScaleSmoke is the fast `make scale` gate: a small fat-tree-class
// Clos (Scale well below 1 floors at 4 pods) must complete incast and
// shuffle flows with zero frame leaks (checkDrained panics inside Scale
// otherwise) and O(pods) routing state.
func TestScaleSmoke(t *testing.T) {
	opts := Options{Scale: 0.01, Seed: 3}
	r := Scale(opts)
	if r.Pods != 4 {
		t.Fatalf("Pods = %d, want floor 4", r.Pods)
	}
	if r.Hosts != 4*32*32 {
		t.Fatalf("Hosts = %d, want 4096", r.Hosts)
	}
	if r.MaxEntries > r.Pods+32+2 {
		t.Fatalf("max routing entries %d not O(pods)", r.MaxEntries)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want incast + shuffle", len(r.Phases))
	}
	for _, p := range r.Phases {
		if p.Completed == 0 {
			t.Fatalf("%s: no flows completed", p.Name)
		}
		if p.SimPkts == 0 {
			t.Fatalf("%s: no packets moved", p.Name)
		}
		if p.FCTMean <= 0 {
			t.Fatalf("%s: non-positive mean FCT %v", p.Name, p.FCTMean)
		}
	}
	out := r.String()
	if !strings.Contains(out, "incast") || !strings.Contains(out, "shuffle") {
		t.Fatalf("render missing phases:\n%s", out)
	}
}

// TestScaleMixedSmoke runs the scale phases with the flow-level background
// tier active: elephants must occupy the fabric for the price of a handful
// of scheduler events while the packet-level foreground still completes.
func TestScaleMixedSmoke(t *testing.T) {
	r := Scale(Options{Scale: 0.01, Seed: 3, Bg: "flow"})
	for _, p := range r.Phases {
		if p.Completed == 0 {
			t.Fatalf("%s: no foreground flows completed under background load", p.Name)
		}
		if p.BgFlows == 0 || p.BgEvents == 0 {
			t.Fatalf("%s: background tier idle (flows=%d events=%d)", p.Name, p.BgFlows, p.BgEvents)
		}
		if p.BgProjPktEvents < 10*p.BgEvents {
			t.Fatalf("%s: background spent %d events vs %d projected — want ≥10×",
				p.Name, p.BgEvents, p.BgProjPktEvents)
		}
	}
	if !strings.Contains(r.String(), "background") {
		t.Fatalf("render missing background line:\n%s", r.String())
	}
}

// TestScaleSpecHostsTarget pins the -hosts derivation: a million-endpoint
// target must cross 10⁶ slots with default-up routing and dense leaves.
func TestScaleSpecHostsTarget(t *testing.T) {
	spec := scaleSpec(Options{Hosts: 1_000_000})
	if got := spec.Pods * spec.LeafPerPod * spec.HostsPerLeaf; got < 1_000_000 {
		t.Fatalf("spec yields %d slots, want ≥ 1e6", got)
	}
	if !spec.DefaultUp || spec.HostsPerLeaf != 64 {
		t.Fatalf("million-endpoint spec not densified: DefaultUp=%v HostsPerLeaf=%d",
			spec.DefaultUp, spec.HostsPerLeaf)
	}
	small := scaleSpec(Options{Hosts: 8_000})
	if small.DefaultUp || small.Pods != 8 {
		t.Fatalf("small target mis-derived: DefaultUp=%v Pods=%d", small.DefaultUp, small.Pods)
	}
}

// TestFlowsimSmoke: the mixed-fidelity figure at tiny scale — foreground
// p99 must degrade monotonically from idle to 90% background occupancy,
// with the fluid tier's event bill at least 10× under the packet
// projection.
func TestFlowsimSmoke(t *testing.T) {
	r, err := Flowsim(Options{Scale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(r.Points))
	}
	idle, loaded := r.Points[0], r.Points[len(r.Points)-1]
	if idle.FgCompleted == 0 || loaded.FgCompleted == 0 {
		t.Fatal("foreground idle in some point")
	}
	if loaded.FgFCTP99 <= idle.FgFCTP99 {
		t.Fatalf("background occupancy did not degrade foreground p99: idle %v, loaded %v",
			idle.FgFCTP99, loaded.FgFCTP99)
	}
	for _, p := range r.Points[1:] {
		if p.BgEvents == 0 || p.BgProjPkt < 10*p.BgEvents {
			t.Fatalf("load %.0f%%: events=%d proj=%d — want ≥10×", p.Load*100, p.BgEvents, p.BgProjPkt)
		}
	}
}
