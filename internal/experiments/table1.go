package experiments

import "repro/internal/stats"

// Table 1 — the qualitative comparison of network-simulation approaches.
// Reproduced as printed output; the properties are the paper's claims, and
// this repository is itself the evidence for the SplitSim row (end-to-end
// and mixed-fidelity case studies, decomposition-based scalability, packet-
// level fidelity, non-intrusive adapters).

// Table1Row is one approach's characteristics.
type Table1Row struct {
	Approach    string
	EndToEnd    bool
	Scalability bool
	Fidelity    bool
	Effort      string
}

// Table1Rows returns the table's content.
func Table1Rows() []Table1Row {
	return []Table1Row{
		{"AI-powered estimators", false, true, false, "high"},
		{"original DES (ns-3/OMNeT++)", false, false, true, "low"},
		{"parallel DES (MPI)", false, true, true, "low"},
		{"modular simulators (SimBricks)", true, false, true, "low"},
		{"SplitSim", true, true, true, "low"},
	}
}

// Table1 renders the comparison.
func Table1() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	t := stats.NewTable("approach", "end-to-end", "scalability", "fidelity", "effort")
	for _, r := range Table1Rows() {
		t.Row(r.Approach, mark(r.EndToEnd), mark(r.Scalability), mark(r.Fidelity), r.Effort)
	}
	return "Table 1: network simulator characteristics\n" + t.String()
}
