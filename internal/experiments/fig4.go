package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/kv"
	"repro/internal/apps/netcache"
	"repro/internal/apps/pegasus"
	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig. 4 / §4.2 — the in-network-processing case study: NetCache vs
// Pegasus under three simulation configurations (protocol-level ns-3, full
// end-to-end, mixed fidelity), 2 servers + 3 clients on one switch,
// zipf-1.8 keys, 70% writes, all clients at the same offered load.

// Fig4Config names a simulation configuration.
type Fig4Config string

// The three configurations compared in Fig. 4.
const (
	ConfigNS3   Fig4Config = "ns3"
	ConfigE2E   Fig4Config = "e2e"
	ConfigMixed Fig4Config = "mixed"
)

// Fig4System names an in-network system.
type Fig4System string

// The two systems under evaluation.
const (
	SystemNetCache Fig4System = "netcache"
	SystemPegasus  Fig4System = "pegasus"
)

// Fig4Cell is one bar of the figure plus the §4.2 resource numbers.
type Fig4Cell struct {
	System Fig4System
	Config Fig4Config
	// Tput is completed client operations per second.
	Tput float64
	// MeanLat and P99 are end-to-end request latencies.
	MeanLat, P99 sim.Time
	// Cores is the number of simulator components (one core each).
	Cores int
	// ModeledRunSPerSimS is the modeled simulation runtime in seconds per
	// simulated second (from the decomposition performance model).
	ModeledRunSPerSimS float64
	// WallMs is this harness's measured wall-clock milliseconds.
	WallMs float64
	// SwitchHitFrac is the fraction of completed ops served by the switch.
	SwitchHitFrac float64
}

// Fig4Result holds all six cells.
type Fig4Result struct {
	Dur   sim.Time
	Cells []Fig4Cell
}

// Get returns the cell for (system, config).
func (r *Fig4Result) Get(sys Fig4System, cfg Fig4Config) Fig4Cell {
	for _, c := range r.Cells {
		if c.System == sys && c.Config == cfg {
			return c
		}
	}
	panic("experiments: missing fig4 cell")
}

// String renders the figure's bar groups as a table.
func (r *Fig4Result) String() string {
	t := stats.NewTable("config", "system", "tput", "mean-lat", "p99-lat", "cores", "model-run(s/sim-s)", "switch-hit%")
	for _, cfg := range []Fig4Config{ConfigNS3, ConfigE2E, ConfigMixed} {
		for _, sys := range []Fig4System{SystemNetCache, SystemPegasus} {
			c := r.Get(sys, cfg)
			t.Row(string(cfg), string(sys), stats.FmtRate(c.Tput), c.MeanLat, c.P99,
				c.Cores, fmt.Sprintf("%.1f", c.ModeledRunSPerSimS),
				fmt.Sprintf("%.0f%%", c.SwitchHitFrac*100))
		}
	}
	var b strings.Builder
	b.WriteString("Fig 4: NetCache vs Pegasus throughput under different simulation configurations\n")
	b.WriteString(t.String())
	nc, pg := r.Get(SystemNetCache, ConfigNS3), r.Get(SystemPegasus, ConfigNS3)
	fmt.Fprintf(&b, "protocol-level: NetCache/Pegasus = %.2f (paper: ~1.33)\n", nc.Tput/pg.Tput)
	nc, pg = r.Get(SystemNetCache, ConfigE2E), r.Get(SystemPegasus, ConfigE2E)
	fmt.Fprintf(&b, "end-to-end:     Pegasus/NetCache = %.2f (paper: ~1.47)\n", pg.Tput/nc.Tput)
	return b.String()
}

// fig4Params collects the case study's fixed parameters.
type fig4Params struct {
	nServers, nClients int
	serverLinkRate     int64
	clientLinkRate     int64
	valueSize          int
	outstanding        int // closed-loop window per client (offered load)
	hotKeys            int
	serverParams       kv.ServerParams
	warmup             sim.Time
}

func defaultFig4Params() fig4Params {
	sp := kv.DefaultServerParams()
	sp.ValueSize = 512 // reads return full objects
	return fig4Params{
		nServers: 2, nClients: 3,
		serverLinkRate: 500 * sim.Mbps,
		clientLinkRate: 10 * sim.Gbps,
		valueSize:      64, // writes carry small updates
		outstanding:    24,
		hotKeys:        64,
		serverParams:   sp,
		warmup:         5 * sim.Millisecond,
	}
}

const fig4VIP = proto.IP(0x0a00ff01)

// fig4Build assembles one (system, config) instance.
type fig4Instance struct {
	sim     *orch.Simulation
	clients []*kv.Client
	dur     sim.Time
	warmup  sim.Time
}

func fig4Build(sys Fig4System, cfg Fig4Config, opts Options, p fig4Params, dur sim.Time) *fig4Instance {
	n := netsim.New("net", opts.Seed)
	sw := n.AddSwitch("sw")

	serverIPs := make([]proto.IP, p.nServers)
	for i := range serverIPs {
		serverIPs[i] = proto.HostIP(uint32(100 + i))
	}

	// Dataplane.
	switch sys {
	case SystemNetCache:
		sw.Dataplane = netcache.New(p.hotKeys, p.serverParams.ValueSize)
	case SystemPegasus:
		sw.Dataplane = pegasus.New(fig4VIP, serverIPs, p.hotKeys)
	}

	s := orch.New()
	s.Add(n)

	detailedServers := cfg == ConfigE2E || cfg == ConfigMixed
	detailedClients := cfg == ConfigE2E

	// Servers.
	for i, ip := range serverIPs {
		srv := kv.NewServer(p.serverParams)
		if detailedServers {
			ext := n.AddExternal(sw, fmt.Sprintf("srv%d", i), p.serverLinkRate, ip)
			dh := instantiate.NewDetailedHost(fmt.Sprintf("srv%d", i), ip,
				hostsim.QemuParams(), serverNIC(p.serverLinkRate), opts.Seed+uint64(i))
			dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { srv.Run(h) }))
			dh.Wire(s, n, ext)
		} else {
			h := n.AddHost(fmt.Sprintf("srv%d", i), ip)
			n.ConnectHostSwitch(h, sw, p.serverLinkRate, instantiate.EthLatency)
			h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { srv.Run(hh) }))
		}
	}

	// Clients.
	inst := &fig4Instance{sim: s, dur: dur, warmup: p.warmup}
	for i := 0; i < p.nClients; i++ {
		ip := proto.HostIP(uint32(1 + i))
		cp := kv.DefaultClientParams(uint32(i), serverIPs)
		cp.Outstanding = p.outstanding
		cp.ValueSize = p.valueSize
		cp.WarmUp = p.warmup
		if sys == SystemPegasus {
			cp.VIP = fig4VIP
		}
		cli := kv.NewClient(cp)
		inst.clients = append(inst.clients, cli)
		if detailedClients {
			ext := n.AddExternal(sw, fmt.Sprintf("cli%d", i), p.clientLinkRate, ip)
			dh := instantiate.NewDetailedHost(fmt.Sprintf("cli%d", i), ip,
				hostsim.QemuParams(), nicsim.DefaultParams(), opts.Seed+uint64(10+i))
			dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) { cli.Run(h) }))
			dh.Wire(s, n, ext)
		} else {
			h := n.AddHost(fmt.Sprintf("cli%d", i), ip)
			n.ConnectHostSwitch(h, sw, p.clientLinkRate, instantiate.EthLatency)
			h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
		}
	}

	n.ComputeRoutes()
	return inst
}

// serverNIC configures the NIC model at the server link rate.
func serverNIC(rate int64) nicsim.Params {
	np := nicsim.DefaultParams()
	np.Rate = rate
	return np
}

// run executes the instance and extracts the cell metrics.
func (inst *fig4Instance) run(sys Fig4System, cfg Fig4Config) Fig4Cell {
	sw := newStopwatch()
	inst.sim.RunSequential(inst.dur)
	checkDrained(inst.sim)
	window := inst.dur - inst.warmup

	cell := Fig4Cell{System: sys, Config: cfg, Cores: inst.sim.NumComponents(), WallMs: sw.ms()}
	var lat stats.Latency
	var completed, hits uint64
	for _, c := range inst.clients {
		completed += c.Completed
		hits += c.SwitchHits
		lat.Add(c.Lat.Percentile(50)) // aggregate via per-client medians below
	}
	// Merge latency across clients properly.
	var all stats.Latency
	for _, c := range inst.clients {
		for _, pt := range c.Lat.CDF(200) {
			all.Add(pt.Value)
		}
	}
	cell.Tput = stats.Rate(int(completed), window)
	cell.MeanLat = all.Mean()
	cell.P99 = all.Percentile(99)
	if completed > 0 {
		cell.SwitchHitFrac = float64(hits) / float64(completed)
	}
	comps, links := inst.sim.ModelGraph(inst.dur)
	model := decomp.Makespan(comps, links, decomp.DefaultParams(inst.dur))
	if model.SimSpeed > 0 {
		cell.ModeledRunSPerSimS = 1 / model.SimSpeed
	}
	return cell
}

// Fig4 runs all six cells.
func Fig4(opts Options) *Fig4Result {
	p := defaultFig4Params()
	dur := opts.Dur(60*sim.Millisecond, 20*sim.Millisecond)
	r := &Fig4Result{Dur: dur}
	for _, cfg := range []Fig4Config{ConfigNS3, ConfigE2E, ConfigMixed} {
		for _, sys := range []Fig4System{SystemNetCache, SystemPegasus} {
			inst := fig4Build(sys, cfg, opts, p, dur)
			r.Cells = append(r.Cells, inst.run(sys, cfg))
		}
	}
	return r
}
