package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/memsim"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Placement micro-study — the same partitioned datacenter workload executed
// under every placement the pipeline can emit: the paper's partition
// strategies lifted onto the finest build (s, ac, cr2, rs) plus the
// profiler-driven recommendation (auto). For each placement the study
// reports the model-predicted makespan of the placed run, the accounted
// makespan reconstructed from the placed run's real synchronization
// counters, and verifies the run stayed bit-identical to sequential — the
// tentpole's acceptance property exercised end to end.

// PlacementNames lists the placements the study accepts, in report order.
func PlacementNames() []string { return []string{"s", "ac", "cr2", "rs", "auto"} }

// PlacementPoint is one placement's measurements.
type PlacementPoint struct {
	Placement string
	Groups    int
	// PredSPerSimS is the model-predicted makespan of the placed run
	// (merge the model graph under the placement, then Makespan).
	PredSPerSimS float64
	// AcctSPerSimS is the accounted makespan: per runner, the group's busy
	// time plus channel overhead priced from the run's REAL sync/data
	// counters; the maximum over runners is the makespan.
	AcctSPerSimS float64
	// SyncMsgs counts sync messages actually sent across all runners.
	SyncMsgs uint64
	// WallMs is harness wall time for the placed run.
	WallMs float64
	// Identical reports bit-identity with the sequential reference
	// (delivered packets and total scheduler events).
	Identical bool
}

// PlacementResult holds the study.
type PlacementResult struct {
	Points []PlacementPoint
}

// Get returns the point for a placement name.
func (r *PlacementResult) Get(name string) PlacementPoint {
	for _, p := range r.Points {
		if p.Placement == name {
			return p
		}
	}
	panic("experiments: missing placement point")
}

// String renders the study.
func (r *PlacementResult) String() string {
	t := stats.NewTable("placement", "groups", "pred(s/sim-s)", "acct(s/sim-s)", "syncmsgs", "identical")
	for _, p := range r.Points {
		t.Row(p.Placement, p.Groups, fmt.Sprintf("%.2f", p.PredSPerSimS),
			fmt.Sprintf("%.2f", p.AcctSPerSimS), p.SyncMsgs, p.Identical)
	}
	var b strings.Builder
	b.WriteString("Placement study: one build, every placement; model-predicted vs accounted makespan\n")
	b.WriteString(t.String())
	b.WriteString("every placement must be bit-identical to sequential; co-location trades\n")
	b.WriteString("parallelism for deleted synchronization (syncmsgs -> 0 at one group)\n")
	return b.String()
}

// placementStudySim is one fresh build of the study system.
type placementStudySim struct {
	s        *orch.Simulation
	topo     *netsim.Topology
	meta     netsim.ThreeTierMeta
	rs       []int // finest (rs) switch->partition assignment the build uses
	received *uint64
}

// buildPlacementStudy constructs the study system at the finest (rs)
// partitioning — 1 core + 2 agg + 4 rack components — with cross-rack bulk
// traffic pairs. Placements then only ever coarsen this build.
func buildPlacementStudy(opts Options) *placementStudySim {
	spec := netsim.ThreeTierSpec{
		Aggs: 2, RacksPerAgg: 2, HostsPerRack: 3,
		CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	}
	topo, meta := netsim.ThreeTier(spec)
	rs := decomp.StrategyRS(meta, len(topo.Switches))
	b := topo.Build("net", opts.Seed, rs, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)

	received := new(uint64)
	hosts := b.Hosts
	perm := sim.NewRand(opts.Seed ^ 0x91a).Perm(len(hosts))
	const pktSize = 1500
	gap := sim.FromSeconds(pktSize * 8 / (2.0 * 1e9))
	for i := 0; i+1 < len(perm); i += 2 {
		a, c := hosts[perm[i]], hosts[perm[i+1]]
		a.SetApp(&bulkApp{dst: c.IP(), gap: gap, size: pktSize})
		c.SetApp(&bulkApp{dst: a.IP(), gap: gap, size: pktSize})
		// Hosts in different groups hit this from different runner
		// goroutines during coupled runs.
		sink := func(proto.IP, uint16, []byte, int) { atomic.AddUint64(received, 1) }
		a.BindUDP(proto.PortBulk, sink)
		c.BindUDP(proto.PortBulk, sink)
	}
	return &placementStudySim{s: s, topo: topo, meta: meta, rs: rs, received: received}
}

// studyPlacement resolves a placement name against the study build: the
// strategy names coarsen the rs build via decomp.Coarsen, "rs" is
// per-component, and "auto" runs the recommender over the reference model
// graph.
func (ps *placementStudySim) studyPlacement(name string, refComps []decomp.Comp,
	refLinks []decomp.Link, mp decomp.Params) (decomp.Placement, error) {
	n := ps.s.NumComponents()
	switch name {
	case "s":
		return decomp.SingleGroup(n), nil
	case "rs":
		p := decomp.PerComponent(n)
		p.Name = "rs"
		return p, nil
	case "auto":
		return decomp.AutoPlace(refComps, refLinks, mp, decomp.RecommendOptions{}), nil
	case "ac", "cr2":
		st := decomp.Strategy{Name: "ac"}
		if name == "cr2" {
			st = decomp.Strategy{Name: "cr", N: 2}
		}
		coarse := st.Assign(ps.meta, len(ps.topo.Switches))
		groups, err := decomp.Coarsen(ps.rs, coarse)
		if err != nil {
			return decomp.Placement{}, err
		}
		return decomp.Placement{Name: name, Groups: groups}, nil
	}
	return decomp.Placement{}, fmt.Errorf("experiments: unknown placement %q (want one of %v)",
		name, PlacementNames())
}

// PlacementStudy runs the micro-study. With opts.Placement set, only that
// placement is measured.
func PlacementStudy(opts Options) (*PlacementResult, error) {
	dur := opts.Dur(5*sim.Millisecond, sim.Millisecond)
	mp := decomp.DefaultParams(dur)

	// Sequential reference: the ground truth every placement must match,
	// and the cost/traffic graph every prediction starts from.
	ref := buildPlacementStudy(opts)
	refSched := ref.s.RunSequential(dur)
	checkDrained(ref.s)
	refReceived, refEvents := *ref.received, refSched.Processed()
	if refReceived == 0 {
		return nil, fmt.Errorf("experiments: placement reference run carried no traffic")
	}
	refComps, refLinks := ref.s.ModelGraph(dur)

	names := PlacementNames()
	if opts.Placement != "" {
		names = []string{opts.Placement}
	}
	r := &PlacementResult{}
	for _, name := range names {
		p, err := ref.studyPlacement(name, refComps, refLinks, mp)
		if err != nil {
			return nil, err
		}
		norm, err := p.Normalized(len(refComps))
		if err != nil {
			return nil, err
		}

		run := buildPlacementStudy(opts)
		sw := newStopwatch()
		var runErr error
		switch {
		case opts.Optimistic:
			oo := orch.DefaultOptimisticOptions()
			if opts.OptimisticK > 0 {
				oo.MaxWindows = opts.OptimisticK
			}
			var pl *orch.ExecutionPlan
			if pl, runErr = run.s.Plan(p); runErr == nil {
				_, runErr = pl.RunOptimisticOpts(dur, oo)
			}
		case opts.Parallel:
			runErr = run.s.RunParallel(dur, p)
		default:
			runErr = run.s.RunPlaced(dur, p)
		}
		if runErr != nil {
			return nil, fmt.Errorf("experiments: placement %s: %w", name, runErr)
		}
		checkDrained(run.s)
		wall := sw.ms()
		var events, syncMsgs uint64
		for _, rn := range run.s.Group.Runners {
			events += rn.Scheduler().Processed()
			syncMsgs += rn.Counters().TxSync
		}

		// Model-predicted makespan of the placed run.
		mc, ml, err := decomp.MergePlacement(refComps, refLinks, norm)
		if err != nil {
			return nil, err
		}
		pred := decomp.Makespan(mc, ml, mp)

		// Accounted makespan: group busy time plus overhead priced from the
		// run's real counters. Runner order equals normalized group order.
		acct := 0.0
		for gi, rn := range run.s.Group.Runners {
			load := 0.0
			for ci, g := range norm.Groups {
				if g == gi {
					load += refComps[ci].BusyNs
				}
			}
			cnt := rn.Counters()
			load += float64(cnt.TxSync)*mp.SyncCostNs + float64(cnt.TxData)*mp.MsgCostNs
			if load > acct {
				acct = load
			}
		}

		r.Points = append(r.Points, PlacementPoint{
			Placement:    name,
			Groups:       norm.NumGroups(),
			PredSPerSimS: pred.ParNs / 1e9 / dur.Seconds(),
			AcctSPerSimS: acct / 1e9 / dur.Seconds(),
			SyncMsgs:     syncMsgs,
			WallMs:       wall,
			Identical:    *run.received == refReceived && events == refEvents,
		})
	}
	return r, nil
}

// applyModelPlacement folds a model graph under a named placement before
// prediction: "" and "percomp" leave it per-component, "s" fully
// co-locates, "auto" asks the recommender. fig7 and fig8 use it so their
// predictions honor -placement.
func applyModelPlacement(name string, comps []decomp.Comp, links []decomp.Link,
	mp decomp.Params) ([]decomp.Comp, []decomp.Link) {
	var p decomp.Placement
	switch name {
	case "", "percomp":
		return comps, links
	case "s":
		p = decomp.SingleGroup(len(comps))
	case "auto":
		p = decomp.AutoPlace(comps, links, mp, decomp.RecommendOptions{})
	default:
		panic(fmt.Sprintf("experiments: placement %q not usable here (want s, percomp, auto)", name))
	}
	mc, ml, err := decomp.MergePlacement(comps, links, p)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return mc, ml
}

// PlanFor builds the named experiment's simulation and renders its
// execution plan under the resolved placement — without running it (except
// "auto", which needs a sequential reference run to profile).
func PlanFor(name string, opts Options) (string, error) {
	placement := opts.Placement
	switch name {
	case "placement":
		if placement == "" {
			placement = "rs"
		}
		dur := opts.Dur(5*sim.Millisecond, sim.Millisecond)
		mp := decomp.DefaultParams(dur)
		ps := buildPlacementStudy(opts)
		var refComps []decomp.Comp
		var refLinks []decomp.Link
		if placement == "auto" {
			ref := buildPlacementStudy(opts)
			ref.s.RunSequential(dur)
			checkDrained(ref.s)
			refComps, refLinks = ref.s.ModelGraph(dur)
		}
		p, err := ps.studyPlacement(placement, refComps, refLinks, mp)
		if err != nil {
			return "", err
		}
		pl, err := ps.s.Plan(p)
		if err != nil {
			return "", err
		}
		return pl.String(), nil
	case "fig7":
		const cores = 8
		dur := opts.Dur(2*sim.Millisecond, 500*sim.Microsecond)
		build := func() *orch.Simulation {
			s := orch.New()
			memsim.BuildSplit(s, cores, memsim.DefaultParams())
			return s
		}
		s := build()
		p, err := planPlacement(placement, s, dur, build)
		if err != nil {
			return "", err
		}
		pl, err := s.Plan(p)
		if err != nil {
			return "", err
		}
		return pl.String(), nil
	case "fig8":
		const parts = 16
		dur := opts.Dur(20*sim.Millisecond, 5*sim.Millisecond)
		build := func() *orch.Simulation {
			topo, meta := netsim.FatTree(8, 10*sim.Gbps, 40*sim.Gbps, sim.Microsecond)
			assign := decomp.EvenFatTree(meta, len(topo.Switches), parts)
			b := topo.Build("net", opts.Seed, assign, nil)
			s := orch.New()
			instantiate.WirePartitions(s, topo, b, true)
			return s
		}
		s := build()
		p, err := planPlacement(placement, s, dur, build)
		if err != nil {
			return "", err
		}
		pl, err := s.Plan(p)
		if err != nil {
			return "", err
		}
		return pl.String(), nil
	}
	return "", fmt.Errorf("experiments: no plan for %q (want placement, fig7, fig8)", name)
}

// planPlacement resolves a generic placement name for PlanFor: per
// component by default, fully co-located for "s", recommender-driven for
// "auto" (profiling a fresh build sequentially first).
func planPlacement(name string, s *orch.Simulation, dur sim.Time,
	build func() *orch.Simulation) (decomp.Placement, error) {
	n := s.NumComponents()
	switch name {
	case "", "percomp":
		return decomp.PerComponent(n), nil
	case "s":
		return decomp.SingleGroup(n), nil
	case "auto":
		probe := build()
		probe.RunSequential(dur)
		checkDrained(probe)
		comps, links := probe.ModelGraph(dur)
		return decomp.AutoPlace(comps, links, decomp.DefaultParams(dur), decomp.RecommendOptions{}), nil
	}
	return decomp.Placement{}, fmt.Errorf("experiments: placement %q not usable here (want s, percomp, auto)", name)
}
