package experiments

import (
	"fmt"
	"strings"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Ablations for the design choices DESIGN.md calls out: the trunk adapter
// (multiplexing many logical links over one synchronized channel) and the
// synchronization quantum (the channel-latency lookahead).

// TrunkAblationResult compares trunked against per-link channel wiring.
type TrunkAblationResult struct {
	Parts                 int
	TrunkChannels         int
	PerLinkChannels       int
	TrunkSPerSimS         float64
	PerLinkSPerSimS       float64
	SavingFrac            float64
	BoundaryMsgsPerSimSec float64
}

// String renders the comparison.
func (r *TrunkAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: trunk adapters (FatTree8 partitions)\n")
	t := stats.NewTable("wiring", "sync-channels", "modeled-run(s/sim-s)")
	t.Row("per-link channels", r.PerLinkChannels, fmt.Sprintf("%.2f", r.PerLinkSPerSimS))
	t.Row("trunk adapters", r.TrunkChannels, fmt.Sprintf("%.2f", r.TrunkSPerSimS))
	b.WriteString(t.String())
	fmt.Fprintf(&b, "trunking removes %d sync streams: %.0f%% lower modeled runtime\n",
		r.PerLinkChannels-r.TrunkChannels, r.SavingFrac*100)
	return b.String()
}

// trunkAblationRun wires the same partitioned topology one way and runs it.
func trunkAblationRun(trunk bool, opts Options) (*orch.Simulation, *netsim.Built, sim.Time) {
	dur := opts.Dur(20*sim.Millisecond, 5*sim.Millisecond)
	topo, meta := netsim.FatTree(8, 10*sim.Gbps, 40*sim.Gbps, 1*sim.Microsecond)
	assign := decomp.EvenFatTree(meta, len(topo.Switches), 8)
	b := topo.Build("net", opts.Seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, trunk)
	hosts := b.Hosts
	perm := sim.NewRand(opts.Seed ^ 0xab).Perm(len(hosts))
	const pktSize = 8900
	gap := sim.FromSeconds(pktSize * 8 / 2e9)
	for i := 0; i < len(hosts)/2; i++ {
		a, c := hosts[perm[2*i]], hosts[perm[2*i+1]]
		a.SetApp(&bulkApp{dst: c.IP(), gap: gap, size: pktSize})
		c.BindUDP(proto.PortBulk, func(proto.IP, uint16, []byte, int) {})
	}
	s.RunSequential(dur)
	checkDrained(s)
	return s, b, dur
}

// TrunkAblation measures the trunk adapter's saving.
func TrunkAblation(opts Options) *TrunkAblationResult {
	r := &TrunkAblationResult{Parts: 8}

	st, bt, dur := trunkAblationRun(true, opts)
	comps, links := st.ModelGraph(dur)
	mt := decomp.Makespan(comps, links, decomp.DefaultParams(dur))
	r.TrunkChannels = len(links)
	r.TrunkSPerSimS = mt.ParNs / 1e9 / dur.Seconds()
	r.BoundaryMsgsPerSimSec = float64(instantiate.BoundaryMsgs(bt)) / dur.Seconds()

	sp, _, dur2 := trunkAblationRun(false, opts)
	comps2, links2 := sp.ModelGraph(dur2)
	mp := decomp.Makespan(comps2, links2, decomp.DefaultParams(dur2))
	r.PerLinkChannels = len(links2)
	r.PerLinkSPerSimS = mp.ParNs / 1e9 / dur2.Seconds()

	r.SavingFrac = 1 - r.TrunkSPerSimS/r.PerLinkSPerSimS
	return r
}

// SyncQuantumPoint is one lookahead setting's modeled runtime.
type SyncQuantumPoint struct {
	// QuantumFactor scales the channels' natural (latency) quantum.
	QuantumFactor float64
	SPerSimS      float64
}

// SyncQuantumAblationResult sweeps the synchronization interval.
type SyncQuantumAblationResult struct {
	Points []SyncQuantumPoint
}

// String renders the sweep.
func (r *SyncQuantumAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: synchronization quantum (lookahead) sweep\n")
	t := stats.NewTable("quantum (x latency)", "modeled-run(s/sim-s)")
	for _, p := range r.Points {
		t.Row(fmt.Sprintf("%.2f", p.QuantumFactor), fmt.Sprintf("%.2f", p.SPerSimS))
	}
	b.WriteString(t.String())
	b.WriteString("smaller quanta mean more null messages per simulated second; the channel\n")
	b.WriteString("latency is the largest quantum that preserves accuracy (conservative sync)\n")
	return b.String()
}

// SyncQuantumAblation reuses one partitioned run and re-evaluates the
// performance model under scaled synchronization quanta.
func SyncQuantumAblation(opts Options) *SyncQuantumAblationResult {
	s, _, dur := trunkAblationRun(true, opts)
	comps, links := s.ModelGraph(dur)
	r := &SyncQuantumAblationResult{}
	for _, f := range []float64{0.25, 0.5, 1, 2, 4} {
		scaled := make([]decomp.Link, len(links))
		copy(scaled, links)
		for i := range scaled {
			scaled[i].Quantum = sim.Time(float64(scaled[i].Quantum) * f)
		}
		m := decomp.Makespan(comps, scaled, decomp.DefaultParams(dur))
		r.Points = append(r.Points, SyncQuantumPoint{
			QuantumFactor: f,
			SPerSimS:      m.ParNs / 1e9 / dur.Seconds(),
		})
	}
	return r
}
