package experiments

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/stats"
)

// §4.6 — configuration and orchestration effort. The paper counts the
// lines of Python needed to configure each evaluation (252 lines for the
// whole clock-sync study, 195 of them app command generation; the reusable
// topology module is 195 lines). The Go analog: this harness counts the
// experiment-configuration code in this repository and the reusable
// topology/instantiation modules it shares, demonstrating the same
// separation of system configuration from simulator choices.

// ConfigEffortRow is one artifact's size.
type ConfigEffortRow struct {
	Artifact string
	File     string
	Lines    int
	Shared   bool // reusable across experiments
}

// ConfigEffortResult lists measured configuration sizes.
type ConfigEffortResult struct {
	Rows []ConfigEffortRow
}

// String renders the comparison with the paper's numbers.
func (r *ConfigEffortResult) String() string {
	t := stats.NewTable("artifact", "file", "lines", "reusable")
	for _, row := range r.Rows {
		shared := ""
		if row.Shared {
			shared = "yes"
		}
		t.Row(row.Artifact, row.File, row.Lines, shared)
	}
	var b strings.Builder
	b.WriteString("Config & orchestration effort (paper: clock-sync config = 252 lines of\n")
	b.WriteString("Python, 195 of them app-command generation; shared topology module = 195 lines)\n")
	b.WriteString(t.String())
	return b.String()
}

// countLines counts non-blank, non-comment lines of a Go file.
func countLines(path string) (int, error) {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, path, nil, 0); err != nil {
		return 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(raw), "\n") {
		l := strings.TrimSpace(line)
		if l == "" || strings.HasPrefix(l, "//") {
			continue
		}
		n++
	}
	return n, nil
}

// ConfigEffort measures this repository's experiment-configuration sizes.
// root is the repository root (tests pass ".." chains as needed).
func ConfigEffort(root string) (*ConfigEffortResult, error) {
	entries := []struct {
		artifact string
		rel      string
		shared   bool
	}{
		{"clock-sync case study config", "internal/experiments/clocksync.go", false},
		{"in-network case study config", "internal/experiments/fig4.go", false},
		{"DCTCP case study config", "internal/experiments/fig6.go", false},
		{"partitioning study config", "internal/experiments/fig9.go", false},
		{"shared topology module", "internal/netsim/builders.go", true},
		{"shared instantiation module", "internal/instantiate/instantiate.go", true},
	}
	r := &ConfigEffortResult{}
	for _, e := range entries {
		path := filepath.Join(root, e.rel)
		n, err := countLines(path)
		if err != nil {
			return nil, fmt.Errorf("configeffort: %s: %w", e.rel, err)
		}
		r.Rows = append(r.Rows, ConfigEffortRow{
			Artifact: e.artifact, File: e.rel, Lines: n, Shared: e.shared,
		})
	}
	return r, nil
}
