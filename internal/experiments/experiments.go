// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness builds the system with the configuration
// and orchestration layers, runs it, and prints rows/series shaped like the
// paper's. EXPERIMENTS.md records paper-vs-measured for each.
//
// Every harness accepts Options.Scale to shrink simulated durations (and,
// where applicable, topology size) so the full suite runs in seconds as Go
// benchmarks; Scale=1 reproduces the paper-scale configuration.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/orch"
	"repro/internal/sim"
)

// Options tunes experiment scale and seeding.
type Options struct {
	// Scale multiplies simulated durations (1.0 = paper-scale defaults;
	// benches use ~0.1).
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Placement selects the execution placement for experiments that honor
	// it (the placement study accepts s/ac/cr2/rs/auto; fig7 and fig8 fold
	// their model predictions under s/percomp/auto). Empty keeps each
	// experiment's default.
	Placement string
	// Parallel executes placed runs with the multi-core executor
	// (orch.RunParallel: pinned OS threads, batched horizon windows)
	// instead of the plain coupled executor. Results are bit-identical
	// either way; only wall-clock measurements change.
	Parallel bool
	// Optimistic executes placed runs with the optimistic executor
	// (orch.RunOptimistic: groups speculate past their conservative sync
	// horizons with per-group snapshot/rollback). Implies the parallel
	// executor's thread placement. Results stay bit-identical; only
	// wall-clock measurements change.
	Optimistic bool
	// OptimisticK overrides the speculation depth (sync windows past the
	// committed horizon) for Optimistic runs. 0 keeps the executor default.
	OptimisticK int
	// CheckpointAt overrides the warmup horizon for experiments that
	// checkpoint (warmstart). Zero keeps the experiment's default.
	CheckpointAt sim.Time
	// CheckpointFile, when set, persists the captured checkpoint bytes.
	CheckpointFile string
	// RestoreFile, when set, resumes from a previously saved checkpoint
	// instead of simulating the warmup prefix.
	RestoreFile string
	// Hosts overrides the scale experiments' fabric size with a target
	// endpoint count (e.g. 1000000). Zero keeps the Scale-derived fabric.
	// Large targets (≥200k) switch the generator to default-up routing
	// and denser leaves so switch count and route state stay tractable.
	Hosts int
	// Bg selects a background-traffic tier for the scale experiments:
	// "" (none) or "flow" (the flow-level fluid tier over every host
	// slot, coupled to the packet-level foreground at shared links).
	Bg string
}

// DefaultOptions returns paper-scale settings.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 42} }

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// Dur scales a base duration, clamping to a floor so heavily scaled-down
// runs still produce meaningful statistics.
func (o Options) Dur(base, floor sim.Time) sim.Time {
	d := sim.Time(float64(base) * o.scale())
	if d < floor {
		return floor
	}
	return d
}

// checkDrained panics when a finished run left pooled frames checked out —
// a leak on the zero-alloc packet path. Every harness calls it after its
// run, so the whole evaluation doubles as a pool-ownership audit.
func checkDrained(s *orch.Simulation) {
	if n := s.LiveFrames(); n != 0 {
		panic(fmt.Sprintf("experiments: %d pooled frames still live after run", n))
	}
}

// stopwatch measures harness wall time.
type stopwatch struct{ start time.Time }

func newStopwatch() stopwatch   { return stopwatch{start: time.Now()} }
func (s stopwatch) ms() float64 { return float64(time.Since(s.start).Microseconds()) / 1000 }
