package experiments

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/stats"
)

// Warm-started parameter sweeps: run the warmup prefix once, checkpoint at
// the sync horizon, then fork every sweep point from the checkpoint instead
// of re-simulating the warmup. Each point restores into a fresh build,
// applies its configuration delta, and runs only the measured window. The
// identity point (no delta) must be bit-identical to a cold run whose
// wall-clock includes the warmup — the checkpoint layer's determinism
// guarantee, checked here end to end on the experiment surface.

// WarmStartPoint is one sweep point's outcome.
type WarmStartPoint struct {
	Name string
	// QueueCapBytes is the switch egress queue bound applied after warmup
	// (0 keeps the build's unbounded default — the identity point).
	QueueCapBytes int
	Flows         int
	Completed     int
	FCTP99        sim.Time
	Drops         uint64
	// Events is BaseEvents plus the resumed run's scheduler events.
	Events uint64
	WallMs float64
}

// WarmStartResult is the sweep report.
type WarmStartResult struct {
	Warmup, Dur     sim.Time
	BaseEvents      uint64
	CheckpointBytes int
	WarmupMs        float64
	ColdMs          float64
	ColdEvents      uint64
	// IdentityMatch records whether the identity point's final state digest
	// and event count matched the cold run exactly.
	IdentityMatch bool
	Points        []WarmStartPoint
}

func (r *WarmStartResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm-started sweep: warmup %v once (%.1f ms wall, %d events, %d checkpoint bytes), each point runs %v from the checkpoint\n",
		r.Warmup, r.WarmupMs, r.BaseEvents, r.CheckpointBytes, r.Dur-r.Warmup)
	fmt.Fprintf(&b, "cold reference: %.1f ms wall, %d events; identity point bit-identical: %v\n",
		r.ColdMs, r.ColdEvents, r.IdentityMatch)
	t := stats.NewTable("point", "queue_cap", "flows", "completed", "fct_p99", "drops", "events", "wall_ms")
	for _, p := range r.Points {
		cap := "unbounded"
		if p.QueueCapBytes > 0 {
			cap = fmt.Sprintf("%d", p.QueueCapBytes)
		}
		t.Row(p.Name, cap, p.Flows, p.Completed, p.FCTP99, p.Drops, p.Events, fmt.Sprintf("%.1f", p.WallMs))
	}
	b.WriteString(t.String())
	return b.String()
}

// buildWarmStart constructs one instance of the sweep fixture: a
// partitioned three-tier fabric with an open-loop UDP workload registered
// as checkpoint aux state. Every call with the same seed builds the
// identical simulation, which is what lets a checkpoint taken from one
// instance restore into another.
func buildWarmStart(opts Options) (*orch.Simulation, *netsim.Built, *workload.Engine) {
	spec := netsim.ThreeTierSpec{
		Aggs: 2, RacksPerAgg: 2, HostsPerRack: 2,
		CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	}
	topo, meta := netsim.ThreeTier(spec)
	assign := decomp.Strategy{Name: "ac"}.Assign(meta, len(topo.Switches))
	built := topo.Build("net", opts.Seed, assign, nil)
	eng := workload.Install(built.Hosts, workload.Spec{
		Pattern: workload.Uniform{},
		Sizes:   workload.Pareto{Min: 600, Alpha: 1.3, Max: 20_000},
		Arrival: workload.Open{FlowsPerSec: 50_000},
		Seed:    opts.Seed,
	})
	s := orch.New()
	instantiate.WirePartitions(s, topo, built, true)
	s.AddAuxState("wl", eng)
	return s, built, eng
}

// warmStartDigest folds the fabric's and workload's full explicit state
// into one comparable value.
func warmStartDigest(built *netsim.Built, eng *workload.Engine) (uint64, error) {
	var e snap.Encoder
	for _, p := range built.Parts {
		if err := p.SnapshotState(&e); err != nil {
			return 0, err
		}
	}
	if err := eng.SnapshotState(&e); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(e.Bytes())
	return h.Sum64(), nil
}

// setQueueCaps applies a sweep point's egress queue bound to every switch
// interface of every partition.
func setQueueCaps(built *netsim.Built, capBytes int) {
	if capBytes <= 0 {
		return
	}
	for _, p := range built.Parts {
		for _, sw := range p.Switches() {
			for _, ifc := range sw.Ifaces() {
				ifc.QueueCapBytes = capBytes
			}
		}
	}
}

func sumDrops(built *netsim.Built) uint64 {
	var n uint64
	for _, p := range built.Parts {
		for _, sw := range p.Switches() {
			for _, ifc := range sw.Ifaces() {
				n += ifc.Drops
			}
		}
	}
	return n
}

// WarmStart runs the warm-started sweep. Options.CheckpointAt overrides the
// warmup horizon; Options.CheckpointFile persists the checkpoint after
// capture; Options.RestoreFile skips the warmup run entirely and resumes
// from a previously saved checkpoint (which must come from an identical
// build: same seed, same scale).
func WarmStart(opts Options) (*WarmStartResult, error) {
	dur := opts.Dur(2*sim.Millisecond, 500*sim.Microsecond)
	warmup := dur / 2
	if opts.CheckpointAt > 0 {
		warmup = opts.CheckpointAt
		if warmup >= dur {
			return nil, fmt.Errorf("warmstart: -checkpoint-at %v must fall inside the run (duration %v)", warmup, dur)
		}
	}
	r := &WarmStartResult{Warmup: warmup, Dur: dur}

	// Warmup prefix: simulate once and checkpoint, or reload a saved one.
	var ck *orch.Checkpoint
	if opts.RestoreFile != "" {
		data, err := os.ReadFile(opts.RestoreFile)
		if err != nil {
			return nil, err
		}
		if ck, err = orch.LoadCheckpoint(data); err != nil {
			return nil, fmt.Errorf("warmstart: %s: %w", opts.RestoreFile, err)
		}
		if ck.At != warmup {
			return nil, fmt.Errorf("warmstart: checkpoint taken at %v, expected warmup horizon %v", ck.At, warmup)
		}
	} else {
		sw := newStopwatch()
		ws, _, _ := buildWarmStart(opts)
		var err error
		if ck, err = ws.CheckpointSequential(warmup); err != nil {
			return nil, err
		}
		r.WarmupMs = sw.ms()
	}
	r.BaseEvents = ck.BaseEvents
	r.CheckpointBytes = len(ck.Data)
	if opts.CheckpointFile != "" {
		if err := os.WriteFile(opts.CheckpointFile, ck.Data, 0o644); err != nil {
			return nil, err
		}
	}

	// Cold reference: the identity point simulated from time zero, warmup
	// included — the digest and event count the warm identity point must
	// reproduce exactly.
	coldW := newStopwatch()
	cold, coldBuilt, coldEng := buildWarmStart(opts)
	coldSched := cold.RunSequential(dur)
	r.ColdMs = coldW.ms()
	r.ColdEvents = coldSched.Processed()
	checkDrained(cold)
	coldDigest, err := warmStartDigest(coldBuilt, coldEng)
	if err != nil {
		return nil, err
	}

	points := []struct {
		name string
		cap  int
	}{
		{"identity", 0},
		{"q32k", 32 << 10},
		{"q128k", 128 << 10},
	}
	for _, pt := range points {
		sw := newStopwatch()
		s, built, eng := buildWarmStart(opts)
		setQueueCaps(built, pt.cap)
		sched, err := s.ResumeSequential(ck, dur)
		if err != nil {
			return nil, fmt.Errorf("warmstart: point %s: %w", pt.name, err)
		}
		wall := sw.ms()
		checkDrained(s)
		rep := eng.Collect()
		p := WarmStartPoint{
			Name:          pt.name,
			QueueCapBytes: pt.cap,
			Flows:         rep.FlowsStarted,
			Completed:     rep.FlowsCompleted,
			FCTP99:        rep.FCT.Percentile(99),
			Drops:         sumDrops(built),
			Events:        ck.BaseEvents + sched.Processed(),
			WallMs:        wall,
		}
		if pt.name == "identity" {
			d, err := warmStartDigest(built, eng)
			if err != nil {
				return nil, err
			}
			r.IdentityMatch = d == coldDigest && p.Events == r.ColdEvents
		}
		r.Points = append(r.Points, p)
	}
	return r, nil
}
