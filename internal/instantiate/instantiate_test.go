package instantiate_test

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
)

func TestDetailedHostWire(t *testing.T) {
	n := netsim.New("net", 1)
	sw := n.AddSwitch("sw")
	ip := proto.HostIP(5)
	ext := n.AddExternal(sw, "h", 10*sim.Gbps, ip)
	peer := n.AddHost("peer", proto.HostIP(6))
	n.ConnectHostSwitch(peer, sw, 10*sim.Gbps, sim.Microsecond)
	n.ComputeRoutes()

	s := orch.New()
	s.Add(n)
	dh := instantiate.NewDetailedHost("h", ip, hostsim.QemuParams(), nicsim.DefaultParams(), 3)
	dh.Wire(s, n, ext)
	if s.NumComponents() != 3 {
		t.Fatalf("components = %d, want net+host+nic", s.NumComponents())
	}

	// Traffic flows both ways through the wired stack.
	got := 0
	peer.BindUDP(9, func(src proto.IP, sport uint16, p []byte, _ int) {
		got++
		peer.SendUDP(src, 9, sport, p, 0)
	})
	echoed := 0
	dh.Host.BindUDP(7, func(proto.IP, uint16, []byte, int) { echoed++ })
	dh.Host.AddApp(hostsim.AppFunc(func(h *hostsim.Host) {
		h.SendUDP(proto.HostIP(6), 7, 9, []byte("x"), 0)
	}))
	s.RunSequential(2 * sim.Millisecond)
	if got != 1 || echoed != 1 {
		t.Fatalf("traffic: got=%d echoed=%d", got, echoed)
	}
}

// buildParts builds a 2-partition dumbbell-ish topology.
func buildParts(trunk bool) (*orch.Simulation, *netsim.Built, *netsim.Topology) {
	topo := &netsim.Topology{}
	a := topo.AddSwitch("a")
	b := topo.AddSwitch("b")
	// Two parallel links — the trunk groups them into one channel.
	topo.AddLink(a, b, 10*sim.Gbps, sim.Microsecond)
	topo.AddLink(a, b, 10*sim.Gbps, sim.Microsecond)
	topo.AddHost("h1", proto.HostIP(1), a, 10*sim.Gbps, sim.Microsecond)
	topo.AddHost("h2", proto.HostIP(2), b, 10*sim.Gbps, sim.Microsecond)
	built := topo.Build("net", 1, []int{0, 1}, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, built, trunk)
	return s, built, topo
}

func TestWirePartitionsTrunkVsPerLink(t *testing.T) {
	for _, trunk := range []bool{true, false} {
		s, built, _ := buildParts(trunk)
		h1, h2 := built.Hosts[0], built.Hosts[1]
		rx := 0
		h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { rx++ })
		h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
			for i := 0; i < 5; i++ {
				h.SendUDP(proto.HostIP(2), 1, 9, nil, 100)
			}
		}))
		s.RunSequential(2 * sim.Millisecond)
		if rx != 5 {
			t.Fatalf("trunk=%v: delivered %d/5", trunk, rx)
		}
		comps, links := s.ModelGraph(2 * sim.Millisecond)
		if len(comps) != 2 {
			t.Fatalf("comps = %d", len(comps))
		}
		wantLinks := 2 // per-link
		if trunk {
			wantLinks = 1 // both boundary links share one trunk channel
		}
		if len(links) != wantLinks {
			t.Fatalf("trunk=%v: %d model links, want %d", trunk, len(links), wantLinks)
		}
	}
}

func TestBoundaryMsgsCounts(t *testing.T) {
	s, built, _ := buildParts(true)
	h1, h2 := built.Hosts[0], built.Hosts[1]
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		for i := 0; i < 7; i++ {
			h.SendUDP(proto.HostIP(2), 1, 9, nil, 100)
		}
	}))
	s.RunSequential(2 * sim.Millisecond)
	if got := instantiate.BoundaryMsgs(built); got != 7 {
		t.Fatalf("BoundaryMsgs = %d, want 7", got)
	}
}

func TestPartitionStrategiesProduceRunnableSims(t *testing.T) {
	// Every strategy on a small three-tier topology must yield a working
	// partitioned simulation (cross-partition reachability).
	spec := netsim.ThreeTierSpec{
		Aggs: 2, RacksPerAgg: 2, HostsPerRack: 2,
		CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	}
	for _, st := range []decomp.Strategy{{Name: "s"}, {Name: "ac"}, {Name: "cr", N: 2}, {Name: "rs"}} {
		topo, meta := netsim.ThreeTier(spec)
		assign := st.Assign(meta, len(topo.Switches))
		built := topo.Build("net", 1, assign, nil)
		s := orch.New()
		instantiate.WirePartitions(s, topo, built, true)
		first, last := built.Hosts[0], built.Hosts[len(built.Hosts)-1]
		ok := false
		last.BindUDP(9, func(proto.IP, uint16, []byte, int) { ok = true })
		dst := last.IP()
		first.SetApp(netsim.AppFunc(func(h *netsim.Host) { h.SendUDP(dst, 1, 9, nil, 0) }))
		s.RunSequential(2 * sim.Millisecond)
		if !ok {
			t.Fatalf("strategy %v: cross-partition packet lost", st)
		}
	}
}
