package instantiate_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
)

// batchedRun builds a detailed host behind a switch, bursts four echo
// requests at it from a protocol-level peer, runs in the given mode, and
// returns a digest of every observable delivery (virtual timestamps and
// payload sizes at both applications, plus final packet counters), the PCI
// channel's logical message count, the executed event count (sequential mode
// only), and the post-run live-frame count.
func batchedRun(t *testing.T, mode string, moderation sim.Time) (digest string, pciMsgs, events, live uint64) {
	t.Helper()
	n := netsim.New("net", 1)
	sw := n.AddSwitch("sw")
	ip := proto.HostIP(5)
	ext := n.AddExternal(sw, "h", 10*sim.Gbps, ip)
	peer := n.AddHost("peer", proto.HostIP(6))
	n.ConnectHostSwitch(peer, sw, 10*sim.Gbps, sim.Microsecond)
	n.ComputeRoutes()

	s := orch.New()
	s.Add(n)
	np := nicsim.DefaultParams()
	np.IRQModeration = moderation
	dh := instantiate.NewDetailedHost("h", ip, hostsim.QemuParams(), np, 3)
	dh.Wire(s, n, ext)

	var b strings.Builder
	dh.Host.BindUDP(7, func(src proto.IP, sport uint16, p []byte, virt int) {
		fmt.Fprintf(&b, "h rx %d %d %d\n", dh.Host.Now(), len(p), virt)
		dh.Host.SendUDP(src, 7, sport, p, virt)
	})
	peer.BindUDP(9, func(_ proto.IP, _ uint16, p []byte, virt int) {
		fmt.Fprintf(&b, "peer rx %d %d %d\n", peer.Now(), len(p), virt)
	})
	peer.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		for i := 0; i < 4; i++ {
			at := sim.Time(i) * sim.Microsecond
			h.At(at, func() { h.SendUDP(ip, 9, 7, []byte("ping"), 256) })
		}
	}))

	end := 5 * sim.Millisecond
	switch mode {
	case "seq":
		events = s.RunSequential(end).Processed()
	case "coupled":
		if err := s.RunCoupled(end); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	case "placed":
		// Host and NIC co-located, network on its own runner.
		p := decomp.Placement{Name: "2g", Groups: []int{0, 1, 1}}
		if err := s.RunPlaced(end, p); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	fmt.Fprintf(&b, "counters h.rx=%d h.tx=%d nic.rx=%d nic.tx=%d sw.rx=%d peer.rx=%d\n",
		dh.Host.RxPackets, dh.Host.TxPackets, dh.NIC.RxFrames, dh.NIC.TxFrames,
		sw.RxPackets, peer.RxPackets)
	_, links := s.ModelGraph(end)
	// Wire registers the PCI connection first, so links[0] is host<->NIC.
	return b.String(), links[0].Msgs, events, s.LiveFrames()
}

// TestBatchedNICDeliveryBitIdentical proves the tentpole invariant for the
// batched PCI path: with interrupt moderation coalescing RX frames into
// multi-packet batch messages, every run mode still observes the identical
// event sequence — same virtual timestamps, same payloads, same counters —
// and no mode leaks a pooled frame.
func TestBatchedNICDeliveryBitIdentical(t *testing.T) {
	const moderation = 20 * sim.Microsecond
	ref, _, _, refLive := batchedRun(t, "seq", moderation)
	if refLive != 0 {
		t.Fatalf("seq: %d frames live after run", refLive)
	}
	if !strings.Contains(ref, "peer rx") || !strings.Contains(ref, "h rx") {
		t.Fatalf("reference run carried no traffic:\n%s", ref)
	}
	for _, mode := range []string{"coupled", "placed"} {
		got, _, _, live := batchedRun(t, mode, moderation)
		if live != 0 {
			t.Fatalf("%s: %d frames live after run", mode, live)
		}
		if got != ref {
			t.Fatalf("%s digest differs from sequential:\n--- seq ---\n%s--- %s ---\n%s",
				mode, ref, mode, got)
		}
	}
}

// TestBatchedNICDeliveryCutsPCIMessages proves the batching is real on the
// channel without distorting the decomposition model. Two things must hold
// at once:
//
//   - the scheduler executes fewer events: the four moderated RX frames
//     share one NIC DMA-complete event and one PCI channel delivery instead
//     of four of each (exactly 6 fewer events, everything else equal);
//   - the link's logical message counter does NOT shrink, because batches
//     implement link.MultiMessage and channel accounting (credits, model
//     graph Msgs) deliberately counts the frames inside, keeping the
//     performance model's inputs placement-independent.
func TestBatchedNICDeliveryCutsPCIMessages(t *testing.T) {
	_, unmodMsgs, unmodEvents, _ := batchedRun(t, "seq", 0)
	_, modMsgs, modEvents, _ := batchedRun(t, "seq", 20*sim.Microsecond)
	if modEvents != unmodEvents-6 {
		t.Fatalf("scheduler events: moderated %d, unmoderated %d, want exactly 6 fewer",
			modEvents, unmodEvents)
	}
	if modMsgs != unmodMsgs {
		t.Fatalf("logical PCI messages: moderated %d, unmoderated %d, want equal (batches count their frames)",
			modMsgs, unmodMsgs)
	}
}
