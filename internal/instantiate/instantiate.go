// Package instantiate is SplitSim's "implementation choices" layer: given
// a system description, it assembles concrete simulator instances — which
// hosts are detailed (qemu/gem5) versus protocol-level, how network
// partitions are wired (trunked or not), and how host/NIC/network
// components connect — into an orch.Simulation ready to run. It provides
// the library of common instantiation strategies the paper describes
// rather than a one-size-fits-all automatic translator.
package instantiate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hostsim"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/pci"
	"repro/internal/proto"
	"repro/internal/sim"
)

// EthLatency is the default Ethernet channel latency between a NIC and the
// network simulator (the link's propagation delay).
const EthLatency = 500 * sim.Nanosecond

// DetailedHost is a full-fidelity host: a host simulator plus its NIC
// simulator, coupled over a PCI channel — two simulator components, i.e.
// two cores in the paper's accounting.
type DetailedHost struct {
	Host *hostsim.Host
	NIC  *nicsim.NIC
}

// NewDetailedHost constructs the pair.
func NewDetailedHost(name string, ip proto.IP, hp hostsim.Params, np nicsim.Params, seed uint64) *DetailedHost {
	return &DetailedHost{
		Host: hostsim.New(name, ip, hp, seed),
		NIC:  nicsim.New(name+".nic", np),
	}
}

// Wire registers the host and NIC on s and connects host<->NIC over PCI
// and NIC<->network through the given external port. netComp is the
// component owning ext (the network or one of its partitions).
func (d *DetailedHost) Wire(s *orch.Simulation, netComp core.Component, ext *netsim.ExtPort) {
	ext.SetEncode(true) // frames cross the Ethernet channel as raw bytes
	s.Add(d.Host)
	s.Add(d.NIC)
	s.Connect(d.Host.Name()+".pci", pci.DefaultLatency, 0,
		orch.Side{Comp: d.Host, Bind: d.Host.BindNIC, Sink: d.Host.NICSink()},
		orch.Side{Comp: d.NIC, Bind: d.NIC.BindHost, Sink: d.NIC.HostSink()})
	s.Connect(d.Host.Name()+".eth", EthLatency, 0,
		orch.Side{Comp: d.NIC, Bind: d.NIC.BindNet, Sink: d.NIC.NetSink()},
		orch.Side{Comp: netComp, Bind: ext.Bind, Sink: ext})
}

// WirePartitions registers every partition network of a Built topology on
// s and connects the cross-partition boundaries. With trunk=true, all
// boundary links between the same pair of partitions share one
// synchronized trunk channel (the paper's trunk adapter); otherwise each
// boundary link gets its own channel — the configuration the trunk
// ablation compares.
func WirePartitions(s *orch.Simulation, topo *netsim.Topology, b *netsim.Built, trunk bool) {
	for _, part := range b.Parts {
		s.Add(part)
	}
	if !trunk {
		for _, bd := range b.Boundaries {
			lat := topo.Links[bd.Link].Delay
			s.Connect(fmt.Sprintf("bd%d", bd.Link), lat, 0,
				orch.Side{Comp: b.Parts[bd.PartA], Bind: bd.PortA.Bind, Sink: bd.PortA},
				orch.Side{Comp: b.Parts[bd.PartB], Bind: bd.PortB.Bind, Sink: bd.PortB})
		}
		return
	}
	type pairKey struct{ a, b int }
	groups := make(map[pairKey][]netsim.Boundary)
	var order []pairKey
	for _, bd := range b.Boundaries {
		k := pairKey{bd.PartA, bd.PartB}
		if k.a > k.b {
			k = pairKey{k.b, k.a}
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], bd)
	}
	for _, k := range order {
		bds := groups[k]
		lat := topo.Links[bds[0].Link].Delay
		var pairs []orch.TrunkPair
		for _, bd := range bds {
			if d := topo.Links[bd.Link].Delay; d < lat {
				lat = d // trunk syncs at the tightest member latency
			}
			pa, pb := bd.PortA, bd.PortB
			if bd.PartA != k.a {
				pa, pb = pb, pa
			}
			pairs = append(pairs, orch.TrunkPair{
				BindA: pa.Bind, SinkA: pa,
				BindB: pb.Bind, SinkB: pb,
			})
		}
		s.ConnectTrunk(fmt.Sprintf("trunk%d-%d", k.a, k.b), lat, 0,
			b.Parts[k.a], b.Parts[k.b], pairs)
	}
}

// ComponentGroups maps an explicit component→group assignment onto the
// simulation's registration order — the index space decomp.Placement uses.
// Components missing from groupOf each receive a fresh group of their own
// (the per-component default), numbered after the largest assigned group.
// This is the bridge between instantiation-level placement decisions
// ("partition 2 and its detailed hosts share a runner") and the
// orchestrator's placement-index space.
func ComponentGroups(s *orch.Simulation, groupOf map[core.Component]int) []int {
	next := 0
	for _, g := range groupOf {
		if g+1 > next {
			next = g + 1
		}
	}
	comps := s.Components()
	groups := make([]int, len(comps))
	for i, c := range comps {
		if g, ok := groupOf[c]; ok {
			groups[i] = g
			continue
		}
		groups[i] = next
		next++
	}
	return groups
}

// BoundaryMsgs sums frames delivered across all partition boundaries of a
// Built topology (both directions) — input to the decomposition
// performance model.
func BoundaryMsgs(b *netsim.Built) uint64 {
	var total uint64
	for _, bd := range b.Boundaries {
		total += bd.PortA.RxFrames + bd.PortB.RxFrames
	}
	return total
}
