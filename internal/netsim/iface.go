package netsim

import (
	"repro/internal/proto"
	"repro/internal/sim"
)

// Iface is one direction's transmitter of a full-duplex point-to-point
// link. The output queue is virtual: the backlog is derived from how far
// busyUntil extends past the current time at the link's fixed rate, which is
// exact for a FIFO served at constant rate and avoids materializing a
// packet list.
type Iface struct {
	net   *Network
	owner node
	name  string
	rate  int64    // bits per second; 0 means infinitely fast
	delay sim.Time // one-way propagation
	peer  *Iface   // nil when ext != nil
	ext   *ExtPort

	busyUntil sim.Time

	// bgRate is the bandwidth currently reserved by the flow-level
	// background tier (flowsim) on this interface; bgDelay is the queueing
	// delay its standing backlog imposes on packet-tier traffic entering
	// here. Both change only at background rate-recompute events, via
	// Reserve, so the packet tier stays deterministic between them.
	bgRate  int64
	bgDelay sim.Time

	// QueueCapBytes bounds the output queue; beyond it packets drop.
	// Zero means unbounded.
	QueueCapBytes int
	// MarkThresholdBytes enables ECN CE marking of ECT packets when the
	// instantaneous backlog exceeds it (DCTCP-style step marking).
	// Zero disables marking.
	MarkThresholdBytes int
	// RED, when non-nil, replaces step marking with RED: between MinBytes
	// and MaxBytes the mark (ECT) / drop (non-ECT) probability rises
	// linearly to MaxP; above MaxBytes everything marks or drops.
	RED *REDParams
	// Tap, when set, observes every frame accepted for transmission (after
	// marking, before serialization) — the capture point.
	Tap func(now sim.Time, f *proto.Frame)

	// Statistics.
	TxPackets, TxBytes uint64
	Drops, Marks       uint64

	// enqSink and rxSink are the typed-delivery sinks for the two scheduled
	// hops a frame takes through this interface: the switch pipeline delay
	// before Enqueue, and the propagation delay before the peer receives.
	// Embedded by value so the forwarding path allocates nothing.
	enqSink ifaceEnqSink
	rxSink  ifaceRxSink
}

// ifaceEnqSink runs the switch-pipeline arrival: enqueue on the egress
// interface, then transparent-clock residence accounting.
type ifaceEnqSink struct{ i *Iface }

// Deliver implements core.Sink. at is the pipeline-arrival instant (the
// closure-based predecessor read env.Now() here, which equals at).
func (k *ifaceEnqSink) Deliver(at sim.Time, m sim.Payload) {
	i := k.i
	f := m.(*proto.Frame)
	depart := i.Enqueue(f)
	if depart >= 0 {
		if sw, ok := i.owner.(*Switch); ok && sw.TransparentClock {
			sw.addResidence(f, depart-at+i.net.SwitchLatency)
		}
	}
}

// ifaceRxSink runs the propagation arrival: the owning node receives the
// frame from this interface.
type ifaceRxSink struct{ i *Iface }

// Deliver implements core.Sink.
func (k *ifaceRxSink) Deliver(_ sim.Time, m sim.Payload) {
	k.i.owner.receive(k.i, m.(*proto.Frame))
}

// Name returns the interface name ("a->b").
func (i *Iface) Name() string { return i.name }

// Rate returns the configured link rate in bits per second.
func (i *Iface) Rate() int64 { return i.rate }

// Delay returns the one-way propagation delay.
func (i *Iface) Delay() sim.Time { return i.delay }

// Peer returns the other side's interface, nil for external ports.
func (i *Iface) Peer() *Iface { return i.peer }

// backlogBytes returns the queue occupancy implied by busyUntil, at the
// rate the queue is actually drained (the effective rate under background
// reservation).
func (i *Iface) backlogBytes(now sim.Time) int {
	if i.busyUntil <= now || i.rate <= 0 {
		return 0
	}
	bits := float64(i.busyUntil-now) * float64(i.effRate()) / float64(sim.Second)
	return int(bits / 8)
}

// bgMinShareDiv floors the effective foreground rate at rate/bgMinShareDiv:
// however loaded the background tier is, packet-level traffic keeps at
// least 1/16 of the link (matching the bgMaxRho delay clamp below), so
// foreground flows degrade instead of starving.
const bgMinShareDiv = 16

// bgMaxRho caps the background utilization used in the queueing-delay
// model at 15/16, where the M/M/1-style ρ/(1−ρ) term reaches 15 MTU
// serialization times — beyond that the fluid model's "steady backlog"
// assumption is doing all the work anyway.
const bgMaxRho = float64(bgMinShareDiv-1) / float64(bgMinShareDiv)

// effRate is the serialization rate the packet tier sees: the configured
// rate minus the background reservation, floored at rate/bgMinShareDiv.
func (i *Iface) effRate() int64 {
	if i.bgRate <= 0 || i.rate <= 0 {
		return i.rate
	}
	eff := i.rate - i.bgRate
	if min := i.rate / bgMinShareDiv; eff < min {
		eff = min
	}
	return eff
}

// Reserve sets the bandwidth the flow-level background tier currently
// consumes on this interface. Packet-tier transmissions serialize at the
// residual rate and see an extra queueing delay modeling the background
// backlog (ρ/(1−ρ) MTU times, ρ capped at bgMaxRho). Reserve is called
// only at background rate-recompute events; between two such events the
// packet tier's timing is a pure function of its own traffic, which is
// what keeps foreground runs deterministic and placement-bit-identical.
func (i *Iface) Reserve(rate int64) {
	if rate < 0 {
		rate = 0
	}
	i.bgRate = rate
	i.bgDelay = 0
	if rate > 0 && i.rate > 0 {
		rho := float64(rate) / float64(i.rate)
		if rho > bgMaxRho {
			rho = bgMaxRho
		}
		mtuT := float64(sim.TransmitTime(1500, i.rate))
		i.bgDelay = sim.Time(mtuT * rho / (1 - rho))
	}
}

// Reserved returns the background tier's current reservation.
func (i *Iface) Reserved() int64 { return i.bgRate }

// REDParams configures Random Early Detection on an interface. The
// averaging is instantaneous (gentle-RED variants differ only in shape for
// the behaviors exercised here).
type REDParams struct {
	MinBytes int
	MaxBytes int
	MaxP     float64
}

// redVerdict decides a packet's fate under RED.
type redVerdict int

const (
	redPass redVerdict = iota
	redMark
	redDrop
)

func (i *Iface) redDecide(backlog int, ect bool) redVerdict {
	r := i.RED
	act := redDrop
	if ect {
		act = redMark
	}
	switch {
	case backlog <= r.MinBytes:
		return redPass
	case backlog >= r.MaxBytes:
		return act
	default:
		p := r.MaxP * float64(backlog-r.MinBytes) / float64(r.MaxBytes-r.MinBytes)
		if i.net.rng.Float64() < p {
			return act
		}
		return redPass
	}
}

// QueueDelay returns the current queueing delay on this interface,
// including the background tier's standing-backlog contribution.
func (i *Iface) QueueDelay(now sim.Time) sim.Time {
	if i.busyUntil <= now {
		return i.bgDelay
	}
	return i.busyUntil - now + i.bgDelay
}

// Enqueue places f on the output queue. It returns the departure time
// (when the last bit leaves the interface) or -1 when the packet is
// dropped. Marking and dropping happen here, at enqueue, on the
// instantaneous backlog. Enqueue owns the frame: dropped frames are
// released, accepted frames travel on to the peer (or external port).
func (i *Iface) Enqueue(f *proto.Frame) sim.Time {
	env := i.net.env
	now := env.Now()
	backlog := i.backlogBytes(now)
	size := f.WireLen()
	if i.QueueCapBytes > 0 && backlog+size > i.QueueCapBytes {
		i.Drops++
		f.Release()
		return -1
	}
	ect := f.IP.ECN() == proto.ECNECT0 || f.IP.ECN() == proto.ECNECT1
	if i.RED != nil {
		switch i.redDecide(backlog, ect) {
		case redDrop:
			i.Drops++
			f.Release()
			return -1
		case redMark:
			f.IP = f.IP.WithECN(proto.ECNCE)
			i.Marks++
		}
	} else if i.MarkThresholdBytes > 0 && backlog > i.MarkThresholdBytes && ect {
		f.IP = f.IP.WithECN(proto.ECNCE)
		i.Marks++
	}
	if i.Tap != nil {
		i.Tap(now, f)
	}
	start := now + i.bgDelay
	if i.busyUntil > start {
		start = i.busyUntil
	}
	depart := start + sim.TransmitTime(size, i.effRate())
	i.busyUntil = depart
	i.TxPackets++
	i.TxBytes += uint64(size)

	if i.ext != nil {
		env.PostDelivery(depart, &i.ext.outSink, f)
		return depart
	}
	env.PostDelivery(depart+i.delay, &i.peer.rxSink, f)
	return depart
}
