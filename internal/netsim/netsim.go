// Package netsim is SplitSim-Go's protocol-level network simulator — the
// ns-3/OMNeT++ analog. It models hosts with UDP and TCP stacks (Reno and
// DCTCP congestion control), point-to-point links with serialization and
// propagation delay, and output-queued switches with drop-tail queues, ECN
// marking, programmable dataplanes (NetCache, Pegasus, PTP transparent
// clocks), and static shortest-path routing.
//
// A Network is one SplitSim component: it can run alone (pure
// protocol-level simulation), alongside detailed host simulators attached
// through external ports (mixed fidelity), or split into multiple partition
// components connected by trunk channels (parallelization through
// decomposition, package decomp).
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Simulation-cost model: how many nanoseconds of real CPU the protocol-level
// simulator spends per simulated action. These feed core.CostAccount and the
// decomp makespan model; they are calibrated to the relative speeds the
// paper reports (see EXPERIMENTS.md) rather than to any absolute machine.
const (
	// CostPerSwitchPacketNs is charged for each packet a switch forwards.
	CostPerSwitchPacketNs = 350
	// CostPerHostPacketNs is charged for each packet a protocol-level host
	// sends or receives (stack + app processing in the simulator).
	CostPerHostPacketNs = 500
	// CostPerBoundaryPacketNs is the extra cost of serializing a packet
	// onto a SplitSim channel at a partition boundary.
	CostPerBoundaryPacketNs = 150
	// CostPerFlowEventNs is charged for each flow-level (background tier)
	// scheduler event attributed to this partition — a whole rate
	// recompute, not a packet, hence pricier than one switch hop but
	// amortized over every modeled flow.
	CostPerFlowEventNs = 400
)

// DefaultSwitchLatency is the fixed forwarding pipeline delay of a switch.
const DefaultSwitchLatency = 500 * sim.Nanosecond

// Network is a protocol-level network simulator instance. It implements
// core.Component.
type Network struct {
	name string
	env  core.Env
	end  sim.Time
	cost core.CostAccount
	seed uint64
	rng  *sim.Rand

	switches []*Switch
	hosts    []*Host
	exts     []*ExtPort
	hostByIP map[proto.IP]*Host

	// regs holds named-event handlers registered before Attach (workload
	// re-arm hooks, the TCP RTO dispatcher); Attach registers them on the
	// scheduler under "net/<name>/<suffix>" in registration order, which is
	// deterministic across placements. See state.go for why closures on the
	// timer path migrated here.
	regs    []namedReg
	tcpRtoH int

	// pool recycles frames and their payload buffers; every frame the
	// network originates (SendUDP, TCP segments) or decodes at an external
	// port comes from here, and every terminal sink returns frames to it.
	pool proto.FramePool

	// encRx/encTx count frames decoded from / encoded onto partition
	// boundaries; the lazy Cost() recomputation charges them at
	// CostPerBoundaryPacketNs each.
	encRx, encTx uint64

	// flowEvents counts flow-level background-tier events attributed to
	// this partition (see flowsim); charged at CostPerFlowEventNs.
	flowEvents uint64

	// startHooks run at Start, after host applications — the attachment
	// point for non-host engines (the flow-level background tier) that must
	// seed their first event when the simulation begins. Restored runs skip
	// them: their scheduled work rides in the checkpoint's event section.
	startHooks []func()

	// SwitchLatency is the per-switch pipeline delay applied to every
	// forwarded packet.
	SwitchLatency sim.Time

	// partitionRouted marks a network built as one partition of a
	// multi-partition topology: its routes were installed globally by
	// Topology.Build and point through boundary links ComputeRoutes cannot
	// see. prefixRouted marks a network whose reachability lives in the
	// aggregate tier. Either makes ComputeRoutes refuse to run — rewriting
	// the tables locally would silently break cross-partition or aggregate
	// forwarding.
	partitionRouted bool
	prefixRouted    bool

	started bool
}

// New creates an empty network simulator named name, with all randomness
// derived from seed.
func New(name string, seed uint64) *Network {
	n := &Network{
		name:          name,
		seed:          seed,
		rng:           sim.NewRand(seed),
		hostByIP:      make(map[proto.IP]*Host),
		SwitchLatency: DefaultSwitchLatency,
	}
	n.tcpRtoH = n.RegisterNamed("tcprto", n.tcpRTOFire)
	return n
}

// Name implements core.Component.
func (n *Network) Name() string { return n.name }

// Attach implements core.Component. Deferred named-event handlers register
// here, in deterministic order, under names scoped by the component name.
func (n *Network) Attach(env core.Env) {
	n.env = env
	for i := range n.regs {
		n.regs[i].h = env.RegisterNamed("net/"+n.name+"/"+n.regs[i].suffix, n.regs[i].fn)
	}
}

// Start implements core.Component: it starts every host's application.
func (n *Network) Start(end sim.Time) {
	n.end = end
	n.started = true
	for _, h := range n.hosts {
		if h.app != nil {
			h.app.Start(h)
		}
	}
	for _, fn := range n.startHooks {
		fn()
	}
}

// OnStart registers fn to run when the network starts, after host
// applications. Hooks run in registration order (deterministic for an
// identical build) and are skipped on StartRestored.
func (n *Network) OnStart(fn func()) { n.startHooks = append(n.startHooks, fn) }

// NoteFlowEvents attributes k flow-level background-tier events to this
// partition's cost account.
func (n *Network) NoteFlowEvents(k uint64) { n.flowEvents += k }

// End returns the simulation end time (valid after Start).
func (n *Network) End() sim.Time { return n.end }

// Env returns the component environment (valid after Attach).
func (n *Network) Env() core.Env { return n.env }

// Cost implements core.Coster. The account is refreshed lazily from the
// packet counters — Σ switch receives × CostPerSwitchPacketNs + Σ host
// sends/receives × CostPerHostPacketNs + boundary crossings ×
// CostPerBoundaryPacketNs — instead of charging in the per-packet inner
// loops; callers must read BusyNanos right after Cost().
func (n *Network) Cost() *core.CostAccount {
	var total uint64
	for _, s := range n.switches {
		total += s.RxPackets * CostPerSwitchPacketNs
	}
	for _, h := range n.hosts {
		total += (h.TxPackets + h.RxPackets) * CostPerHostPacketNs
	}
	total += (n.encRx + n.encTx) * CostPerBoundaryPacketNs
	total += n.flowEvents * CostPerFlowEventNs
	n.cost.Store(total)
	return &n.cost
}

// NewFrame returns a zeroed pooled frame owned by the caller; handing it to
// the stack (transmit, Inject) transfers ownership back to the simulator.
func (n *Network) NewFrame() *proto.Frame { return n.pool.Get() }

// FrameStats implements core.FramePooler.
func (n *Network) FrameStats() proto.PoolStats { return n.pool.Stats() }

// Rand returns the network's deterministic random source.
func (n *Network) Rand() *sim.Rand { return n.rng }

// Hosts returns all protocol-level hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// Switches returns all switches.
func (n *Network) Switches() []*Switch { return n.switches }

// node is anything that terminates an interface.
type node interface {
	receive(in *Iface, f *proto.Frame)
	nodeName() string
}

// AddSwitch creates a switch.
func (n *Network) AddSwitch(name string) *Switch {
	s := &Switch{net: n, name: name, routes: make(map[proto.IP]int)}
	n.switches = append(n.switches, s)
	return s
}

// AddHost creates a protocol-level host with address ip.
func (n *Network) AddHost(name string, ip proto.IP) *Host {
	h := &Host{
		net: n, name: name, ip: ip,
		mac:      proto.MACFromID(uint32(ip)),
		udpPorts: make(map[uint16]UDPHandler),
		tcpConns: make(map[tcpKey]*TCPConn),
		// The host stream depends only on the experiment seed and the
		// host address, never on creation order, so any partitioning of
		// the same topology generates identical workloads.
		rng: sim.NewRand(n.seed ^ uint64(ip)*0x9e3779b97f4a7c15),
	}
	n.hosts = append(n.hosts, h)
	n.hostByIP[ip] = h
	return h
}

// newIface wires a fresh interface owned by o.
func (n *Network) newIface(o node, name string, rate int64, delay sim.Time) *Iface {
	i := &Iface{net: n, owner: o, name: name, rate: rate, delay: delay}
	i.enqSink.i = i
	i.rxSink.i = i
	return i
}

// ConnectHostSwitch links host h to switch s with a full-duplex link of the
// given rate and one-way propagation delay. It returns the switch-side
// interface index.
func (n *Network) ConnectHostSwitch(h *Host, s *Switch, rate int64, delay sim.Time) int {
	hi := n.newIface(h, h.name+"->"+s.name, rate, delay)
	si := n.newIface(s, s.name+"->"+h.name, rate, delay)
	hi.peer, si.peer = si, hi
	if h.iface != nil {
		panic(fmt.Sprintf("netsim: host %s already connected", h.name))
	}
	h.iface = hi
	s.ifaces = append(s.ifaces, si)
	s.invalidateFlowCache()
	return len(s.ifaces) - 1
}

// ConnectSwitches links two switches, returning the interface index on each.
func (n *Network) ConnectSwitches(a, b *Switch, rate int64, delay sim.Time) (ai, bi int) {
	ia := n.newIface(a, a.name+"->"+b.name, rate, delay)
	ib := n.newIface(b, b.name+"->"+a.name, rate, delay)
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	a.invalidateFlowCache()
	b.invalidateFlowCache()
	return len(a.ifaces) - 1, len(b.ifaces) - 1
}

// ExtPort attaches an external component (a detailed host's NIC, or a peer
// network partition) to a switch port. Frames leaving the switch through
// this port are sent on the bound core.Port; frames arriving from the
// external side enter through Deliver (ExtPort implements core.Sink).
type ExtPort struct {
	net   *Network
	name  string
	iface *Iface
	sw    *Switch
	out   core.Port
	ips   []proto.IP

	// encode selects byte-serialization of frames crossing this port
	// (partition boundaries) over passing the frame struct (in-process
	// attachment of detailed hosts).
	encode bool

	// RxFrames counts frames delivered from the external side.
	RxFrames uint64

	// outSink is the typed-delivery sink for this port's departure events
	// (see Iface.Enqueue): one queue slot per departing frame, no closure.
	outSink extOutSink
}

// extOutSink hands departed frames to ExtPort.sendOut from a typed delivery
// event.
type extOutSink struct{ p *ExtPort }

// Deliver implements core.Sink.
func (k *extOutSink) Deliver(_ sim.Time, m core.Message) {
	k.p.sendOut(m.(*proto.Frame))
}

// AddExternal creates an external port on switch s. The link's serialization
// rate is modeled here; propagation delay is the channel latency configured
// at wiring time. ips lists addresses reachable through this port, used by
// ComputeRoutes.
func (n *Network) AddExternal(s *Switch, name string, rate int64, ips ...proto.IP) *ExtPort {
	p := &ExtPort{net: n, name: name, sw: s, ips: ips}
	p.outSink.p = p
	ifc := n.newIface(s, s.name+"->"+name, rate, 0)
	ifc.ext = p
	p.iface = ifc
	s.ifaces = append(s.ifaces, ifc)
	s.invalidateFlowCache()
	n.exts = append(n.exts, p)
	return p
}

// Bind sets the outgoing port toward the external component. It must be
// called before the simulation starts.
func (p *ExtPort) Bind(out core.Port) { p.out = out }

// Iface returns the switch-side interface of this external port.
func (p *ExtPort) Iface() *Iface { return p.iface }

// IPs returns the addresses reachable through this port.
func (p *ExtPort) IPs() []proto.IP { return p.ips }

// Deliver implements core.Sink: a frame (or encoded frame) arrives from the
// external component and enters the switch. Decoded frames come from the
// network's pool and adopt the incoming wire buffer, so the boundary receive
// path allocates nothing in steady state.
func (p *ExtPort) Deliver(_ sim.Time, m core.Message) {
	var f *proto.Frame
	switch v := m.(type) {
	case *proto.Frame:
		f = v
	case *proto.WireFrame:
		f = p.net.pool.Get()
		if err := proto.ParseFrameInto(f, v.B); err != nil {
			panic(fmt.Sprintf("netsim: %s: bad frame from external port: %v", p.name, err))
		}
		proto.PutWireFrame(v)
		p.net.encRx++
	case proto.RawFrame:
		// Legacy byte path (proxy transports, tests). The sender built the
		// slice fresh for this message, so the frame adopts it directly.
		f = p.net.pool.Get()
		if err := proto.ParseFrameInto(f, v); err != nil {
			panic(fmt.Sprintf("netsim: %s: bad frame from external port: %v", p.name, err))
		}
		p.net.encRx++
	default:
		panic(fmt.Sprintf("netsim: %s: unexpected message %T", p.name, m))
	}
	p.RxFrames++
	p.sw.receive(p.iface, f)
}

// sendOut transmits a frame to the external component, serializing it to
// honest bytes when this port is a partition boundary. Encoding reuses a
// pooled buffer and releases the frame; without encoding, frame ownership
// transfers with the message.
func (p *ExtPort) sendOut(f *proto.Frame) {
	if p.out == nil {
		panic("netsim: external port " + p.name + " not bound")
	}
	if p.encode {
		p.net.encTx++
		p.out.Send(proto.GetWireFrame(proto.AppendFrame(p.net.pool.GetBuf(), f)))
		f.Release()
		return
	}
	p.out.Send(f)
}

// SetEncode controls byte-serialization of frames crossing this port.
func (p *ExtPort) SetEncode(on bool) { p.encode = on }
