package netsim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// benchFabric builds a star of n hosts around one switch on a fresh
// scheduler, started and ready to forward — the substrate rig for the
// steady-state packet-path benchmarks.
func benchFabric(hosts int) ([]*Host, *sim.Scheduler) {
	n := New("net", 1)
	sw := n.AddSwitch("sw")
	hs := make([]*Host, hosts)
	for i := range hs {
		hs[i] = n.AddHost(fmt.Sprintf("h%d", i), proto.HostIP(uint32(i+1)))
		n.ConnectHostSwitch(hs[i], sw, 10*sim.Gbps, 1*sim.Microsecond)
	}
	n.ComputeRoutes()
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Time(1) << 62)
	return hs, s
}

// BenchmarkSubstrateSwitchForward measures one full host->switch->host
// traversal per op: UDP build, two link enqueues, switch forwarding, and
// terminal delivery. This is the netsim inner loop every experiment runs
// millions of times.
func BenchmarkSubstrateSwitchForward(b *testing.B) {
	hs, s := benchFabric(2)
	got := 0
	hs[1].BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	dst := hs[1].IP()
	for i := 0; i < 64; i++ { // warm pools, queue, and flow cache
		hs[0].SendUDP(dst, 1, 9, nil, 1400)
		s.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs[0].SendUDP(dst, 1, 9, nil, 1400)
		s.Run()
	}
	b.StopTimer()
	if got != b.N+64 {
		b.Fatalf("delivered %d of %d", got, b.N+64)
	}
}

// BenchmarkSubstrateNetFanIn is the netsim-heavy end-to-end benchmark: 8
// hosts on one switch each burst 4 packets to their ring neighbor per op
// (32 packets/op), exercising concurrent egress queueing and every flow in
// the switch's cache.
func BenchmarkSubstrateNetFanIn(b *testing.B) {
	const hosts, burst = 8, 4
	hs, s := benchFabric(hosts)
	got := 0
	for _, h := range hs {
		h.BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	}
	op := func() {
		for i, h := range hs {
			dst := hs[(i+1)%hosts].IP()
			for k := 0; k < burst; k++ {
				h.SendUDP(dst, 1, 9, nil, 1400)
			}
		}
		s.Run()
	}
	for i := 0; i < 16; i++ {
		op()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	b.StopTimer()
	if want := (b.N + 16) * hosts * burst; got != want {
		b.Fatalf("delivered %d of %d", got, want)
	}
}

// TestSubstrateSwitchForwardZeroAlloc pins the tentpole property: after
// warm-up, a packet's whole journey through the network substrate allocates
// nothing — frames and payload buffers come from pools, deliveries are
// typed queue slots, the flow cache short-circuits route lookups.
func TestSubstrateSwitchForwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	hs, s := benchFabric(2)
	hs[1].BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	dst := hs[1].IP()
	op := func() {
		hs[0].SendUDP(dst, 1, 9, nil, 1400)
		s.Run()
	}
	for i := 0; i < 64; i++ {
		op()
	}
	if avg := testing.AllocsPerRun(200, op); avg != 0 {
		t.Fatalf("switch forward path allocates %.2f/op, want 0", avg)
	}
}

// TestSubstrateNetFanInZeroAlloc extends the zero-alloc assertion to the
// multi-flow case, where the flow cache holds several entries and egress
// queues overlap in time.
func TestSubstrateNetFanInZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	const hosts, burst = 8, 4
	hs, s := benchFabric(hosts)
	for _, h := range hs {
		h.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	}
	op := func() {
		for i, h := range hs {
			dst := hs[(i+1)%hosts].IP()
			for k := 0; k < burst; k++ {
				h.SendUDP(dst, 1, 9, nil, 1400)
			}
		}
		s.Run()
	}
	for i := 0; i < 16; i++ {
		op()
	}
	if avg := testing.AllocsPerRun(100, op); avg != 0 {
		t.Fatalf("fan-in path allocates %.2f/op, want 0", avg)
	}
}
