//go:build !race

package netsim

// raceEnabled is off in regular builds; see race_enabled_test.go.
const raceEnabled = false
