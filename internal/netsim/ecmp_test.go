package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// TestECMPSpreadsAcrossCores verifies that a fat tree's cross-pod traffic
// uses multiple core switches (per-destination hashed equal-cost paths) —
// without it the tree collapses onto one core and partitioned load is
// meaningless.
func TestECMPSpreadsAcrossCores(t *testing.T) {
	topo, m := FatTree(4, 10*sim.Gbps, 40*sim.Gbps, sim.Microsecond)
	b := topo.Build("ft", 1, nil, nil)
	n := b.Parts[0]

	// Every pod-0 host sends to every pod-2 host.
	for _, dstSlot := range m.HostsByPod[2] {
		b.Hosts[dstSlot].BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	}
	dsts := make([]proto.IP, 0, len(m.HostsByPod[2]))
	for _, s := range m.HostsByPod[2] {
		dsts = append(dsts, b.Hosts[s].IP())
	}
	for _, srcSlot := range m.HostsByPod[0] {
		b.Hosts[srcSlot].SetApp(AppFunc(func(h *Host) {
			for _, d := range dsts {
				h.SendUDP(d, 1, 9, nil, 100)
			}
		}))
	}

	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(10 * sim.Millisecond)
	for {
		at, ok := s.PeekTime()
		if !ok || at >= 10*sim.Millisecond {
			break
		}
		s.Step()
	}

	coresUsed := 0
	for _, ci := range m.Core {
		if b.Switches[ci].RxPackets > 0 {
			coresUsed++
		}
	}
	if coresUsed < 2 {
		t.Fatalf("cross-pod traffic used %d core switches; ECMP should spread it", coresUsed)
	}
}

// TestECMPDeterministic verifies the hashed path choice is stable across
// builds (routing must not depend on map iteration or build order noise).
func TestECMPDeterministic(t *testing.T) {
	counts := func() []uint64 {
		topo, m := FatTree(4, 10*sim.Gbps, 40*sim.Gbps, sim.Microsecond)
		b := topo.Build("ft", 1, nil, nil)
		n := b.Parts[0]
		dst := b.Hosts[m.HostsByPod[3][0]]
		dst.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
		ip := dst.IP()
		b.Hosts[m.HostsByPod[0][0]].SetApp(AppFunc(func(h *Host) {
			for i := 0; i < 10; i++ {
				h.SendUDP(ip, 1, 9, nil, 50)
			}
		}))
		s := sim.NewScheduler(0)
		n.Attach(core.Env{Sched: s, Src: 1})
		n.Start(5 * sim.Millisecond)
		for {
			at, ok := s.PeekTime()
			if !ok || at >= 5*sim.Millisecond {
				break
			}
			s.Step()
		}
		out := make([]uint64, len(m.Core))
		for i, ci := range m.Core {
			out[i] = b.Switches[ci].RxPackets
		}
		return out
	}
	a, b := counts(), counts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("core %d packet counts diverged across identical builds: %d vs %d",
				i, a[i], b[i])
		}
	}
}

func TestIfaceStats(t *testing.T) {
	n := New("net", 1)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, sim.Microsecond)
	n.ConnectHostSwitch(h2, sw, 10*sim.Gbps, sim.Microsecond)
	n.ComputeRoutes()
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(AppFunc(func(h *Host) {
		h.SendUDP(proto.HostIP(2), 1, 9, nil, 958) // wire size 1000B
	}))
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Millisecond)
	s.RunBefore(sim.Millisecond)
	up := h1.Iface()
	if up.TxPackets != 1 || up.TxBytes != 1000 {
		t.Fatalf("uplink stats: %d pkts %d bytes", up.TxPackets, up.TxBytes)
	}
	if up.Name() == "" || up.Rate() != 10*sim.Gbps || up.Delay() != sim.Microsecond {
		t.Fatal("iface accessors broken")
	}
	if q := up.QueueDelay(s.Now()); q != 0 {
		t.Fatalf("queue should be drained, delay %v", q)
	}
}
