package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Dataplane is the programmable-switch hook: it sees every frame before
// forwarding and may consume it, mutate it, or inject new frames (via
// Switch.Inject). The NetCache and Pegasus in-network dataplanes and test
// fixtures implement it.
type Dataplane interface {
	// Process handles a frame arriving on in. Returning false consumes the
	// frame (the switch does not forward it).
	Process(sw *Switch, in *Iface, f *proto.Frame) (forward bool)
}

// Switch is an output-queued IP switch with static routes, an optional
// programmable dataplane, and optional PTP transparent-clock support.
type Switch struct {
	net    *Network
	name   string
	ifaces []*Iface
	routes map[proto.IP]int

	// Dataplane, when non-nil, processes every received frame.
	Dataplane Dataplane

	// TransparentClock makes the switch add per-packet residence time to
	// the correction field of PTP event messages, as IEEE 1588 transparent
	// clocks do. The clock-synchronization case study extends switches
	// with this, mirroring the paper's ns-3 extension.
	TransparentClock bool

	// RxPackets counts frames entering the switch.
	RxPackets uint64
	// NoRoute counts frames dropped for want of a route.
	NoRoute uint64
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

func (s *Switch) nodeName() string { return s.name }

// Network returns the owning network.
func (s *Switch) Network() *Network { return s.net }

// Ifaces returns the switch's interfaces in attachment order.
func (s *Switch) Ifaces() []*Iface { return s.ifaces }

// SetRoute installs iface index out as the next hop for ip.
func (s *Switch) SetRoute(ip proto.IP, out int) {
	if out < 0 || out >= len(s.ifaces) {
		panic(fmt.Sprintf("netsim: %s: route to %v via invalid iface %d", s.name, ip, out))
	}
	s.routes[ip] = out
}

// Route returns the next-hop interface index for ip.
func (s *Switch) Route(ip proto.IP) (int, bool) {
	out, ok := s.routes[ip]
	return out, ok
}

// receive implements node.
func (s *Switch) receive(in *Iface, f *proto.Frame) {
	s.RxPackets++
	s.net.cost.Charge(CostPerSwitchPacketNs)
	if s.Dataplane != nil {
		if !s.Dataplane.Process(s, in, f) {
			return
		}
	}
	s.forward(in, f)
}

// forward routes f out of the switch, applying the pipeline latency.
func (s *Switch) forward(in *Iface, f *proto.Frame) {
	out, ok := s.routes[f.IP.Dst]
	if !ok {
		s.NoRoute++
		return
	}
	ifc := s.ifaces[out]
	lat := s.net.SwitchLatency
	env := s.net.env
	env.At(env.Now()+lat, func() {
		arrive := env.Now()
		depart := ifc.Enqueue(f)
		if depart >= 0 && s.TransparentClock {
			s.addResidence(f, depart-arrive+lat)
		}
	})
}

// Inject sends a locally generated frame out the route for its destination,
// used by dataplanes to emit replies (e.g., NetCache cache hits).
func (s *Switch) Inject(f *proto.Frame) {
	s.forward(nil, f)
}

// addResidence implements the transparent clock: PTP event messages get the
// switch residence time (pipeline + queueing + serialization start skew)
// added to their correction field.
func (s *Switch) addResidence(f *proto.Frame, residence sim.Time) {
	if f.IP.Proto != proto.IPProtoUDP || f.UDP.DstPort != proto.PortPTPEvent {
		return
	}
	m, err := proto.ParsePTP(f.Payload)
	if err != nil {
		return
	}
	m.Correction += residence
	f.Payload = proto.AppendPTP(f.Payload[:0], m)
}
