package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Dataplane is the programmable-switch hook: it sees every frame before
// forwarding and may consume it, mutate it, or inject new frames (via
// Switch.Inject). The NetCache and Pegasus in-network dataplanes and test
// fixtures implement it.
type Dataplane interface {
	// Process handles a frame arriving on in. Returning false consumes the
	// frame (the switch does not forward it).
	Process(sw *Switch, in *Iface, f *proto.Frame) (forward bool)
}

// flowCacheSize is the number of direct-mapped flow-cache entries per
// switch. Power of two; sized for the handful of hot destinations a switch
// port typically serves between topology changes.
const flowCacheSize = 8

// flowEntry is one flow-cache slot: the last next-hop resolved for ip.
type flowEntry struct {
	ip  proto.IP
	out int32
	ok  bool
}

// Switch is an output-queued IP switch with static routes (a per-IP map
// plus a longest-prefix aggregate tier), an optional programmable
// dataplane, and optional PTP transparent-clock support.
type Switch struct {
	net    *Network
	name   string
	ifaces []*Iface
	routes map[proto.IP]int

	// The aggregate tier under the per-IP map: prefixes[bits] maps a
	// masked address to its equal-cost next-hop candidates, and
	// prefixLens holds the lengths present, longest first, so a lookup is
	// one map probe per distinct length (datacenter fabrics use two or
	// three: leaf, pod, default). An empty candidate slice is an explicit
	// blackhole — the match consumes the packet as unroutable rather than
	// letting a shorter prefix bounce it back into the fabric.
	prefixes   map[uint8]map[proto.IP][]int32
	prefixLens []uint8

	// fcache short-circuits the route tables on the forwarding hot path. It
	// is a pure cache over the per-IP map and prefix tier — lookups through
	// it are behavior-identical — and every topology or route mutation
	// clears it.
	fcache [flowCacheSize]flowEntry

	// Dataplane, when non-nil, processes every received frame.
	Dataplane Dataplane

	// TransparentClock makes the switch add per-packet residence time to
	// the correction field of PTP event messages, as IEEE 1588 transparent
	// clocks do. The clock-synchronization case study extends switches
	// with this, mirroring the paper's ns-3 extension.
	TransparentClock bool

	// RxPackets counts frames entering the switch.
	RxPackets uint64
	// NoRoute counts frames dropped for want of a route.
	NoRoute uint64
	// FlowCacheHits counts forwarding decisions served from fcache.
	FlowCacheHits uint64
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

func (s *Switch) nodeName() string { return s.name }

// Network returns the owning network.
func (s *Switch) Network() *Network { return s.net }

// Ifaces returns the switch's interfaces in attachment order.
func (s *Switch) Ifaces() []*Iface { return s.ifaces }

// SetRoute installs iface index out as the next hop for ip.
func (s *Switch) SetRoute(ip proto.IP, out int) {
	if out < 0 || out >= len(s.ifaces) {
		panic(fmt.Sprintf("netsim: %s: route to %v via invalid iface %d", s.name, ip, out))
	}
	s.routes[ip] = out
	s.invalidateFlowCache()
}

// SetPrefixRoute installs equal-cost next-hop candidates for a CIDR
// aggregate. A packet whose longest match is this prefix picks one
// candidate by the deterministic per-destination hash (static ECMP, the
// same rule Topology.Build applies to per-IP routes). No candidates means
// an explicit blackhole: addresses inside the prefix with no longer match
// are dropped here instead of looping through shorter aggregates.
func (s *Switch) SetPrefixRoute(p proto.Prefix, outs ...int) {
	cands := make([]int32, len(outs))
	for i, out := range outs {
		if out < 0 || out >= len(s.ifaces) {
			panic(fmt.Sprintf("netsim: %s: prefix route %v via invalid iface %d", s.name, p, out))
		}
		cands[i] = int32(out)
	}
	if s.prefixes == nil {
		s.prefixes = make(map[uint8]map[proto.IP][]int32)
	}
	m := s.prefixes[p.Bits]
	if m == nil {
		m = make(map[proto.IP][]int32)
		s.prefixes[p.Bits] = m
		// Keep the present lengths sorted longest-first.
		at := len(s.prefixLens)
		for i, l := range s.prefixLens {
			if p.Bits > l {
				at = i
				break
			}
		}
		s.prefixLens = append(s.prefixLens, 0)
		copy(s.prefixLens[at+1:], s.prefixLens[at:])
		s.prefixLens[at] = p.Bits
	}
	m[p.Addr.Masked(p.Bits)] = cands
	s.invalidateFlowCache()
}

// ecmpHash is the per-destination spreading hash shared by every equal-cost
// choice in the simulator (topology build, prefix tier, ComputeRoutes), so
// any of them installed for the same candidate set forwards identically.
func ecmpHash(ip proto.IP) uint64 {
	return uint64(ip) * 0x9e3779b97f4a7c15 >> 32
}

// Route returns the next-hop interface index ip resolves to — per-IP map
// first, then the longest-prefix tier — without touching the flow cache or
// hit counters. The second result is false for unroutable addresses and
// blackholed aggregates.
func (s *Switch) Route(ip proto.IP) (int, bool) {
	if out, ok := s.routes[ip]; ok {
		return out, true
	}
	return s.lookupPrefix(ip)
}

// lookupPrefix resolves ip through the aggregate tier, longest prefix
// first, spreading equal-cost candidates with the per-destination hash.
func (s *Switch) lookupPrefix(ip proto.IP) (int, bool) {
	for _, bits := range s.prefixLens {
		cands, ok := s.prefixes[bits][ip.Masked(bits)]
		if !ok {
			continue
		}
		if len(cands) == 0 {
			return 0, false // explicit blackhole
		}
		return int(cands[ecmpHash(ip)%uint64(len(cands))]), true
	}
	return 0, false
}

// lookup resolves the next hop for ip through the flow cache, falling back
// to (and refilling from) the per-IP map and prefix tier on a miss.
func (s *Switch) lookup(ip proto.IP) (int, bool) {
	e := &s.fcache[uint32(ip)&(flowCacheSize-1)]
	if e.ok && e.ip == ip {
		s.FlowCacheHits++
		return int(e.out), true
	}
	out, ok := s.routes[ip]
	if !ok {
		out, ok = s.lookupPrefix(ip)
	}
	if ok {
		*e = flowEntry{ip: ip, out: int32(out), ok: true}
	}
	return out, ok
}

// RouteEntries returns the resident routing-table sizes: exact per-IP
// entries and aggregate (prefix) entries. The scale tests assert the
// aggregate build keeps perIP+prefix O(pods), not O(hosts).
func (s *Switch) RouteEntries() (perIP, prefix int) {
	perIP = len(s.routes)
	for _, m := range s.prefixes {
		prefix += len(m)
	}
	return perIP, prefix
}

// RouteStateBytes estimates the bytes of routing state this switch holds:
// map-entry overhead for per-IP routes plus key, slice header, and
// candidate storage for each aggregate. An estimate, but a consistent one —
// the scale benchmarks track it per host across revisions.
func (s *Switch) RouteStateBytes() int {
	const mapEntry = 16 // ~IP key + int value, amortized bucket overhead
	bytes := len(s.routes) * mapEntry
	for _, m := range s.prefixes {
		for _, cands := range m {
			bytes += 8 + 24 + 4*len(cands) // key + slice header + outs
		}
	}
	return bytes
}

// invalidateFlowCache clears every cached forwarding decision. Called on any
// mutation that could change a next hop: SetRoute and interface additions.
func (s *Switch) invalidateFlowCache() {
	s.fcache = [flowCacheSize]flowEntry{}
}

// receive implements node. The switch owns the frame: a dataplane that
// consumes it (Process returning false) must not retain it — the switch
// releases it on return.
func (s *Switch) receive(in *Iface, f *proto.Frame) {
	s.RxPackets++
	if s.Dataplane != nil {
		if !s.Dataplane.Process(s, in, f) {
			f.Release()
			return
		}
	}
	s.forward(in, f)
}

// forward routes f out of the switch, applying the pipeline latency. The
// pipeline hop is a typed delivery event onto the egress interface's enqueue
// sink — no closure, no Timer.
func (s *Switch) forward(in *Iface, f *proto.Frame) {
	out, ok := s.lookup(f.IP.Dst)
	if !ok {
		s.NoRoute++
		f.Release()
		return
	}
	env := s.net.env
	env.PostDelivery(env.Now()+s.net.SwitchLatency, &s.ifaces[out].enqSink, f)
}

// Inject sends a locally generated frame out the route for its destination,
// used by dataplanes to emit replies (e.g., NetCache cache hits).
func (s *Switch) Inject(f *proto.Frame) {
	s.forward(nil, f)
}

// addResidence implements the transparent clock: PTP event messages get the
// switch residence time (pipeline + queueing + serialization start skew)
// added to their correction field.
func (s *Switch) addResidence(f *proto.Frame, residence sim.Time) {
	if f.IP.Proto != proto.IPProtoUDP || f.UDP.DstPort != proto.PortPTPEvent {
		return
	}
	m, err := proto.ParsePTP(f.Payload)
	if err != nil {
		return
	}
	m.Correction += residence
	f.Payload = proto.AppendPTP(f.Payload[:0], m)
}
