package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Dataplane is the programmable-switch hook: it sees every frame before
// forwarding and may consume it, mutate it, or inject new frames (via
// Switch.Inject). The NetCache and Pegasus in-network dataplanes and test
// fixtures implement it.
type Dataplane interface {
	// Process handles a frame arriving on in. Returning false consumes the
	// frame (the switch does not forward it).
	Process(sw *Switch, in *Iface, f *proto.Frame) (forward bool)
}

// flowCacheSize is the number of direct-mapped flow-cache entries per
// switch. Power of two; sized for the handful of hot destinations a switch
// port typically serves between topology changes.
const flowCacheSize = 8

// flowEntry is one flow-cache slot: the last next-hop resolved for ip.
type flowEntry struct {
	ip  proto.IP
	out int32
	ok  bool
}

// Switch is an output-queued IP switch with static routes, an optional
// programmable dataplane, and optional PTP transparent-clock support.
type Switch struct {
	net    *Network
	name   string
	ifaces []*Iface
	routes map[proto.IP]int

	// fcache short-circuits the routes map on the forwarding hot path. It
	// is a pure cache over routes — lookups through it are behavior-
	// identical to the map — and every topology or route mutation clears it.
	fcache [flowCacheSize]flowEntry

	// Dataplane, when non-nil, processes every received frame.
	Dataplane Dataplane

	// TransparentClock makes the switch add per-packet residence time to
	// the correction field of PTP event messages, as IEEE 1588 transparent
	// clocks do. The clock-synchronization case study extends switches
	// with this, mirroring the paper's ns-3 extension.
	TransparentClock bool

	// RxPackets counts frames entering the switch.
	RxPackets uint64
	// NoRoute counts frames dropped for want of a route.
	NoRoute uint64
	// FlowCacheHits counts forwarding decisions served from fcache.
	FlowCacheHits uint64
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

func (s *Switch) nodeName() string { return s.name }

// Network returns the owning network.
func (s *Switch) Network() *Network { return s.net }

// Ifaces returns the switch's interfaces in attachment order.
func (s *Switch) Ifaces() []*Iface { return s.ifaces }

// SetRoute installs iface index out as the next hop for ip.
func (s *Switch) SetRoute(ip proto.IP, out int) {
	if out < 0 || out >= len(s.ifaces) {
		panic(fmt.Sprintf("netsim: %s: route to %v via invalid iface %d", s.name, ip, out))
	}
	s.routes[ip] = out
	s.invalidateFlowCache()
}

// Route returns the next-hop interface index for ip.
func (s *Switch) Route(ip proto.IP) (int, bool) {
	out, ok := s.routes[ip]
	return out, ok
}

// lookup resolves the next hop for ip through the flow cache, falling back
// to (and refilling from) the routes map on a miss.
func (s *Switch) lookup(ip proto.IP) (int, bool) {
	e := &s.fcache[uint32(ip)&(flowCacheSize-1)]
	if e.ok && e.ip == ip {
		s.FlowCacheHits++
		return int(e.out), true
	}
	out, ok := s.routes[ip]
	if ok {
		*e = flowEntry{ip: ip, out: int32(out), ok: true}
	}
	return out, ok
}

// invalidateFlowCache clears every cached forwarding decision. Called on any
// mutation that could change a next hop: SetRoute and interface additions.
func (s *Switch) invalidateFlowCache() {
	s.fcache = [flowCacheSize]flowEntry{}
}

// receive implements node. The switch owns the frame: a dataplane that
// consumes it (Process returning false) must not retain it — the switch
// releases it on return.
func (s *Switch) receive(in *Iface, f *proto.Frame) {
	s.RxPackets++
	if s.Dataplane != nil {
		if !s.Dataplane.Process(s, in, f) {
			f.Release()
			return
		}
	}
	s.forward(in, f)
}

// forward routes f out of the switch, applying the pipeline latency. The
// pipeline hop is a typed delivery event onto the egress interface's enqueue
// sink — no closure, no Timer.
func (s *Switch) forward(in *Iface, f *proto.Frame) {
	out, ok := s.lookup(f.IP.Dst)
	if !ok {
		s.NoRoute++
		f.Release()
		return
	}
	env := s.net.env
	env.PostDelivery(env.Now()+s.net.SwitchLatency, &s.ifaces[out].enqSink, f)
}

// Inject sends a locally generated frame out the route for its destination,
// used by dataplanes to emit replies (e.g., NetCache cache hits).
func (s *Switch) Inject(f *proto.Frame) {
	s.forward(nil, f)
}

// addResidence implements the transparent clock: PTP event messages get the
// switch residence time (pipeline + queueing + serialization start skew)
// added to their correction field.
func (s *Switch) addResidence(f *proto.Frame, residence sim.Time) {
	if f.IP.Proto != proto.IPProtoUDP || f.UDP.DstPort != proto.PortPTPEvent {
		return
	}
	m, err := proto.ParsePTP(f.Payload)
	if err != nil {
		return
	}
	m.Correction += residence
	f.Payload = proto.AppendPTP(f.Payload[:0], m)
}
