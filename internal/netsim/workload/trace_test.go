package workload_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/netsim/workload"
	"repro/internal/sim"
)

func TestTraceCSVParse(t *testing.T) {
	in := `# start_ns,src,dst,bytes
1000, 0, 1, 2000

2000,1,0,500
3000,2,0,10000
`
	tr, err := workload.ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.TraceFlow{
		{Start: 1000, Src: 0, Dst: 1, Bytes: 2000},
		{Start: 2000, Src: 1, Dst: 0, Bytes: 500},
		{Start: 3000, Src: 2, Dst: 0, Bytes: 10000},
	}
	if len(tr.Flows) != len(want) {
		t.Fatalf("parsed %d flows, want %d", len(tr.Flows), len(want))
	}
	for i, f := range tr.Flows {
		if f != want[i] {
			t.Fatalf("flow %d: got %+v, want %+v", i, f, want[i])
		}
	}
	if _, err := workload.ParseTraceCSV(strings.NewReader("1000,0,1\n")); err == nil {
		t.Fatal("3-field line parsed without error")
	}
	if _, err := workload.ParseTraceCSV(strings.NewReader("x,0,1,10\n")); err == nil {
		t.Fatal("non-numeric field parsed without error")
	}
}

func TestTraceBinaryRoundTripAndAutoDetect(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.TraceFlow{
		{Start: 0, Src: 3, Dst: 1, Bytes: 1},
		{Start: 5 * sim.Microsecond, Src: 0, Dst: 2, Bytes: 1 << 40},
	}}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := workload.ParseTraceBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range got.Flows {
		if f != tr.Flows[i] {
			t.Fatalf("flow %d: got %+v, want %+v", i, f, tr.Flows[i])
		}
	}
	if _, err := workload.ParseTraceBinary(buf.Bytes()[:10]); err == nil {
		t.Fatal("truncated binary trace parsed without error")
	}

	// LoadTrace detects binary by magic and falls back to CSV.
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	if err := workload.SaveTrace(bin, tr); err != nil {
		t.Fatal(err)
	}
	if got, err := workload.LoadTrace(bin); err != nil || len(got.Flows) != 2 {
		t.Fatalf("binary load: %v (%d flows)", err, len(got.Flows))
	}
	csv := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csv, []byte("0,3,1,1\n5000,0,2,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := workload.LoadTrace(csv); err != nil || len(got.Flows) != 2 {
		t.Fatalf("csv load: %v", err)
	}
}

func TestTraceValidate(t *testing.T) {
	ok := &workload.Trace{Flows: []workload.TraceFlow{
		{Start: 0, Src: 0, Dst: 1, Bytes: 10},
		{Start: 0, Src: 1, Dst: 0, Bytes: 10},
		{Start: 5, Src: 2, Dst: 0, Bytes: 10},
	}}
	if err := ok.Validate(3); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []workload.Trace{
		{Flows: []workload.TraceFlow{{Start: 5, Src: 0, Dst: 1, Bytes: 1}, {Start: 0, Src: 0, Dst: 1, Bytes: 1}}},
		{Flows: []workload.TraceFlow{{Start: 0, Src: 0, Dst: 3, Bytes: 1}}},
		{Flows: []workload.TraceFlow{{Start: 0, Src: -1, Dst: 1, Bytes: 1}}},
		{Flows: []workload.TraceFlow{{Start: 0, Src: 1, Dst: 1, Bytes: 1}}},
		{Flows: []workload.TraceFlow{{Start: 0, Src: 0, Dst: 1, Bytes: 0}}},
	}
	for i := range bad {
		if err := bad[i].Validate(3); err == nil {
			t.Fatalf("bad trace %d accepted", i)
		}
	}
}

// TestTraceReplayPacketTier replays a hand-written trace over a small Clos
// and checks every tuple became exactly one flow with the traced size, at
// the traced time.
func TestTraceReplayPacketTier(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.TraceFlow{
		{Start: 0, Src: 0, Dst: 5, Bytes: 2000},
		{Start: 10 * sim.Microsecond, Src: 3, Dst: 1, Bytes: 40_000},
		{Start: 10 * sim.Microsecond, Src: 3, Dst: 2, Bytes: 1500},
		{Start: 50 * sim.Microsecond, Src: 7, Dst: 0, Bytes: 100},
	}}
	s, _, hosts := closHosts(t, smallClos, 23, 1)
	eng := workload.Install(hosts, workload.Spec{
		Arrival: tr,
		Seed:    23,
	})
	s.RunSequential(2 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsStarted != len(tr.Flows) {
		t.Fatalf("started %d flows, want %d", r.FlowsStarted, len(tr.Flows))
	}
	if r.FlowsCompleted != len(tr.Flows) {
		t.Fatalf("completed %d flows, want %d", r.FlowsCompleted, len(tr.Flows))
	}
	var wantBytes int64
	for _, f := range tr.Flows {
		wantBytes += f.Bytes
	}
	if r.BytesSent != wantBytes {
		t.Fatalf("sent %d bytes, want %d", r.BytesSent, wantBytes)
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames leaked", live)
	}
}

// TestTraceReplayDeterministicAcrossPartitions: the same trace on the same
// fabric produces identical flow counts however the fabric is partitioned.
func TestTraceReplayDeterministicAcrossPartitions(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.TraceFlow{
		{Start: 0, Src: 0, Dst: 9, Bytes: 3000},
		{Start: 2 * sim.Microsecond, Src: 9, Dst: 0, Bytes: 3000},
		{Start: 4 * sim.Microsecond, Src: 4, Dst: 12, Bytes: 30_000},
	}}
	run := func(parts int) workload.Report {
		s, _, hosts := closHosts(t, smallClos, 29, parts)
		eng := workload.Install(hosts, workload.Spec{Arrival: tr, Seed: 29})
		if parts > 1 {
			if err := s.RunCoupled(1 * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
		} else {
			s.RunSequential(1 * sim.Millisecond)
		}
		return eng.Collect()
	}
	a, b := run(1), run(4)
	if a.FlowsStarted != b.FlowsStarted || a.FlowsCompleted != b.FlowsCompleted ||
		a.BytesSent != b.BytesSent || a.FCT.Mean() != b.FCT.Mean() {
		t.Fatalf("partitioned replay diverged: %v vs %v", a, b)
	}
}
