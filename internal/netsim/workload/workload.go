// Package workload drives synthetic datacenter traffic over netsim hosts:
// open- or closed-loop flow arrivals, heavy-tailed (Pareto, lognormal) flow
// sizes, and incast / all-to-all shuffle / uniform destination patterns,
// recording flow-completion times into bounded reservoir-sampled
// recorders.
//
// The engine is partition-safe by construction: every host owns its state
// (arrival process, RNG, counters, FCT reservoir) and mutates it only from
// events on that host's own timeline, with all cross-host interaction
// carried by simulated packets. Per-host RNG streams are keyed by host IP
// and the workload seed — not by instantiation order — so the same spec on
// the same fabric produces bit-identical traffic no matter how the fabric
// is partitioned. Reports are merged after the run.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/stats"
)

// SizeDist draws flow sizes in bytes.
type SizeDist interface {
	Sample(r *sim.Rand) int
}

// Fixed is a constant flow size in bytes.
type Fixed int

// Sample implements SizeDist.
func (f Fixed) Sample(*sim.Rand) int { return int(f) }

// Pareto is the bounded Pareto distribution: Min·U^(-1/Alpha) clipped to
// Max. Alpha in (1, 2) gives the heavy tail measured in datacenter traces —
// most flows tiny, most bytes in elephants.
type Pareto struct {
	Min   int
	Alpha float64
	Max   int
}

// Sample implements SizeDist.
func (p Pareto) Sample(r *sim.Rand) int {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	s := float64(p.Min) * math.Pow(u, -1/p.Alpha)
	if p.Max > 0 && s > float64(p.Max) {
		return p.Max
	}
	return int(s)
}

// Lognormal draws exp(N(ln Median, Sigma)) clipped to Max.
type Lognormal struct {
	Median int
	Sigma  float64
	Max    int
}

// Sample implements SizeDist.
func (l Lognormal) Sample(r *sim.Rand) int {
	s := float64(l.Median) * math.Exp(r.Normal(0, l.Sigma))
	if l.Max > 0 && s > float64(l.Max) {
		return l.Max
	}
	if s < 1 {
		return 1
	}
	return int(s)
}

// Arrival is the flow arrival process, per source host.
type Arrival interface {
	isArrival()
}

// Open is an open-loop Poisson process: each source starts FlowsPerSec
// flows per second (of virtual time) regardless of completions. The
// aggregate over n sources is Poisson with rate n·FlowsPerSec by
// superposition, which is what keeps the process partition-safe — no
// global coordinator.
type Open struct {
	FlowsPerSec float64
}

func (Open) isArrival() {}

// Closed is a closed loop: each source keeps Concurrency flows
// outstanding, starting the next one Think after a completion
// acknowledgment arrives.
type Closed struct {
	Concurrency int
	Think       sim.Time
}

func (Closed) isArrival() {}

// Pattern picks the destination for a source's flow'th flow among n
// participants, or -1 for a source that generates no traffic.
type Pattern interface {
	Dst(r *sim.Rand, src, flow, n int) int
}

// Uniform sends each flow to a uniformly random other participant.
type Uniform struct{}

// Dst implements Pattern.
func (Uniform) Dst(r *sim.Rand, src, _, n int) int {
	d := r.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Incast converges every other participant's flows on participant Victim.
type Incast struct {
	Victim int
}

// Dst implements Pattern.
func (p Incast) Dst(_ *sim.Rand, src, _, _ int) int {
	if src == p.Victim {
		return -1
	}
	return p.Victim
}

// Shuffle is the all-to-all exchange of a MapReduce-style shuffle stage:
// source s's flow f goes to (s+1+f mod n-1) mod n, rotating through every
// other participant.
type Shuffle struct{}

// Dst implements Pattern.
func (Shuffle) Dst(_ *sim.Rand, src, flow, n int) int {
	return (src + 1 + flow%(n-1)) % n
}

// Transport selects how flows move bytes.
type Transport int

const (
	// TransportUDP paces raw datagrams at the access-link rate — no
	// congestion control, cheap enough for 10⁵-host fabrics, and safe
	// across partition boundaries.
	TransportUDP Transport = iota
	// TransportTCP runs each flow over the tcpstack (congestion-controlled,
	// FCT measured at last-byte-acked). Flow setup registers conn state on
	// both endpoints, so every participant must live in the same Network —
	// Install panics otherwise.
	TransportTCP
)

// Fidelity selects which tier simulates a workload's flows — the SplitSim
// mixed-fidelity knob (paper §3.1) applied to traffic.
type Fidelity int

const (
	// FidelityPacket runs every flow packet-by-packet over materialized
	// protocol-level hosts — the default, and the only fidelity
	// workload.Install accepts.
	FidelityPacket Fidelity = iota
	// FidelityFlow runs flows as fluid rates in the flow-level background
	// tier (netsim/flowsim): no hosts materialized, no frames, O(active
	// flows) state. Install a FidelityFlow spec with flowsim.InstallSpec,
	// which dispatches on this knob and accepts host *slots* rather than
	// hosts.
	FidelityFlow
)

// Spec configures one workload.
type Spec struct {
	Pattern Pattern
	Sizes   SizeDist
	Arrival Arrival

	// Fidelity selects packet-level (default) or flow-level execution.
	Fidelity Fidelity

	Seed uint64

	// Transport defaults to TransportUDP.
	Transport Transport
	// CC is the congestion-control algorithm for TransportTCP
	// (default netsim.CCReno).
	CC netsim.CCAlgo

	// Port is the UDP port flows run over (default 9000).
	Port uint16
	// MTU is the payload bytes per packet (default 1448).
	MTU int
	// Burst is how many packets a flow emits per pacing quantum
	// (default 16); pacing bounds frames-in-flight per flow.
	Burst int
	// FCTCap bounds each host's flow-completion-time reservoir
	// (default 4096 retained samples).
	FCTCap int
}

func (s *Spec) defaults() {
	if s.Port == 0 {
		s.Port = 9000
	}
	if s.MTU == 0 {
		s.MTU = 1448
	}
	if s.Burst == 0 {
		s.Burst = 16
	}
	if s.FCTCap == 0 {
		s.FCTCap = 4096
	}
}

// Flow packet payload: flow ID, flow start time, and a marker byte —
// 0 = data, 1 = last data packet, 2 = completion ack.
const hdrLen = 4 + 8 + 1

const (
	markData = 0
	markLast = 1
	markAck  = 2
)

// Engine installs a workload on a set of hosts and collects its results.
type Engine struct {
	spec   Spec
	states []*hostState

	// traceIdx[i] lists the indices into the Trace's flow list sourced by
	// participant i, in replay order; nil unless Arrival is a *Trace.
	traceIdx [][]int32
}

// hostState is the per-host slice of the workload; only events on its own
// host touch it.
type hostState struct {
	eng  *Engine
	h    *netsim.Host
	idx  int
	rng  *sim.Rand
	fct  *stats.Latency // FCTs of flows *received* by this host
	port uint16

	flows     int // flows started (and pattern sequence number)
	completed int // flows fully received here
	acked     int // completions acknowledged back to this source
	bytesSent int64

	// Named-event handles (see Install): timer re-arms post these instead of
	// closures so pending workload timers serialize into checkpoints.
	nextH  int // open-loop arrival tick
	burstH int // UDP burst re-arm, args: {dst<<32|flowID, flowStart, remaining}
	thinkH int // closed-loop think expiry
	traceH int // trace-replay cursor advance, args: {cursor}
}

// Install binds the workload onto hosts: every host becomes a receiver on
// spec.Port, and every host whose pattern emits traffic becomes a source.
// Hosts may span multiple partition networks — all interaction is packets.
// Call before the simulation starts; results come from Collect after it
// ends.
func Install(hosts []*netsim.Host, spec Spec) *Engine {
	spec.defaults()
	if spec.Fidelity != FidelityPacket {
		panic("workload: Install is packet-level; use flowsim.InstallSpec for FidelityFlow specs")
	}
	if len(hosts) < 2 {
		panic("workload: need at least two hosts")
	}
	if spec.Transport == TransportTCP {
		for _, h := range hosts[1:] {
			if h.Network() != hosts[0].Network() {
				panic("workload: TransportTCP requires all hosts in one Network " +
					"(flow setup touches both endpoints); use TransportUDP across partitions")
			}
		}
	}
	e := &Engine{spec: spec, states: make([]*hostState, len(hosts))}
	if tr, ok := spec.Arrival.(*Trace); ok {
		if err := tr.Validate(len(hosts)); err != nil {
			panic("workload: " + err.Error())
		}
		e.traceIdx = make([][]int32, len(hosts))
		for fi, f := range tr.Flows {
			e.traceIdx[f.Src] = append(e.traceIdx[f.Src], int32(fi))
		}
	}
	for i, h := range hosts {
		// Key the stream by address, not slot order: the same host draws
		// the same stream however the fabric is partitioned or the host
		// list is assembled.
		key := spec.Seed ^ uint64(h.IP())*0x9e3779b97f4a7c15
		st := &hostState{
			eng:  e,
			h:    h,
			idx:  i,
			rng:  sim.NewRand(key),
			fct:  stats.NewReservoir(spec.FCTCap, key^0xa5a5a5a5a5a5a5a5),
			port: spec.Port,
		}
		e.states[i] = st
		// Timer handlers are named per (port, slot) so several engines can
		// share a network; registration order follows host order, which is
		// deterministic for an identical build.
		st.nextH = h.RegisterNamed(fmt.Sprintf("wl/%d/%d/next", spec.Port, i), st.nextArrival)
		st.burstH = h.RegisterNamed(fmt.Sprintf("wl/%d/%d/burst", spec.Port, i), st.burstFire)
		st.thinkH = h.RegisterNamed(fmt.Sprintf("wl/%d/%d/think", spec.Port, i), st.thinkFire)
		st.traceH = h.RegisterNamed(fmt.Sprintf("wl/%d/%d/trace", spec.Port, i), st.traceFire)
		h.BindUDP(spec.Port, st.receive)
		h.SetApp(netsim.AppFunc(func(*netsim.Host) { st.start() }))
	}
	return e
}

// start launches the host's arrival process at simulation start.
func (st *hostState) start() {
	switch a := st.eng.spec.Arrival.(type) {
	case Open:
		if a.FlowsPerSec <= 0 {
			panic("workload: Open.FlowsPerSec must be positive")
		}
		// Probe the pattern: a passive host (Dst < 0) runs no process.
		if st.dstPeek() < 0 {
			return
		}
		st.scheduleNext(a)
	case Closed:
		if a.Concurrency <= 0 {
			panic("workload: Closed.Concurrency must be positive")
		}
		if st.dstPeek() < 0 {
			return
		}
		for i := 0; i < a.Concurrency; i++ {
			st.startFlow()
		}
	case *Trace:
		list := st.eng.traceIdx[st.idx]
		if len(list) == 0 {
			return
		}
		// Simulation start is time 0, so the first flow's absolute start
		// time is also its delay from now.
		st.h.PostNamed(a.Flows[list[0]].Start, st.traceH, sim.NamedArgs{0})
	default:
		panic(fmt.Sprintf("workload: unknown arrival %T", st.eng.spec.Arrival))
	}
}

// dstPeek asks the pattern whether this host sources traffic at all,
// without consuming RNG state.
func (st *hostState) dstPeek() int {
	probe := *st.rng
	return st.eng.spec.Pattern.Dst(&probe, st.idx, 0, len(st.eng.states))
}

// scheduleNext arms the next open-loop arrival.
func (st *hostState) scheduleNext(a Open) {
	gap := sim.Time(st.rng.Exp(float64(sim.Second) / a.FlowsPerSec))
	st.h.PostNamed(gap, st.nextH, sim.NamedArgs{})
}

// nextArrival is the open-loop tick: start a flow, re-arm.
func (st *hostState) nextArrival(sim.NamedArgs) {
	a, ok := st.eng.spec.Arrival.(Open)
	if !ok || st.h.Now() >= st.h.End() {
		return
	}
	st.startFlow()
	st.scheduleNext(a)
}

// burstFire resumes a paced UDP flow from its re-arm event.
func (st *hostState) burstFire(args sim.NamedArgs) {
	st.sendBurst(proto.IP(args[0]>>32), uint32(args[0]), sim.Time(args[1]), int(args[2]))
}

// thinkFire starts the closed loop's next flow after the think time. The
// end-of-run check happened when the think was armed, matching the old
// direct st.startFlow post.
func (st *hostState) thinkFire(sim.NamedArgs) {
	st.startFlow()
}

// traceFire replays this host's next trace flow and re-arms for the one
// after. The cursor rides in the event args, so a pending replay position
// checkpoints with the scheduler's event section.
func (st *hostState) traceFire(args sim.NamedArgs) {
	tr := st.eng.spec.Arrival.(*Trace)
	list := st.eng.traceIdx[st.idx]
	cur := int(args[0])
	f := tr.Flows[list[cur]]
	st.launch(f.Dst, int(f.Bytes))
	if cur+1 < len(list) {
		d := tr.Flows[list[cur+1]].Start - st.h.Now()
		if d < 0 {
			d = 0
		}
		st.h.PostNamed(d, st.traceH, sim.NamedArgs{uint64(cur + 1)})
	}
}

// startFlow draws a destination and size and begins transmitting.
func (st *hostState) startFlow() {
	n := len(st.eng.states)
	dst := st.eng.spec.Pattern.Dst(st.rng, st.idx, st.flows, n)
	if dst < 0 || dst == st.idx {
		return
	}
	size := st.eng.spec.Sizes.Sample(st.rng)
	st.launch(dst, size)
}

// launch begins transmitting one flow of size bytes to participant dst —
// the common tail of pattern-drawn (startFlow) and trace-replayed
// (traceFire) flows.
func (st *hostState) launch(dst, size int) {
	if size < 1 {
		size = 1
	}
	flowID := uint32(st.idx)<<16 | uint32(st.flows&0xffff)
	seq := st.flows
	st.flows++
	if st.eng.spec.Transport == TransportTCP {
		st.startTCPFlow(st.eng.states[dst], seq, size)
		return
	}
	st.sendBurst(st.eng.states[dst].h.IP(), flowID, st.h.Now(), size)
}

// startTCPFlow runs one flow over the tcpstack. FCT is last-byte-acked at
// the sender (the TCP analog of the UDP last-packet-received measure, one
// half-RTT longer); completion also drives the closed loop and tears the
// conn state down on both ends.
func (st *hostState) startTCPFlow(dst *hostState, seq, size int) {
	spec := &st.eng.spec
	// tcpKey is (remote, rport, lport): rotating the source port keeps
	// concurrent flows to the same destination distinct.
	sport := uint16(40000 + seq%20000)
	start := st.h.Now()
	var snd *netsim.TCPConn
	snd, _ = netsim.NewFlow(st.h, dst.h, sport, spec.Port, spec.CC, int64(size), func() {
		st.fct.Add(st.h.Now() - start)
		st.completed++
		st.bytesSent += int64(size)
		st.h.UnregisterTCP(dst.h.IP(), spec.Port, sport)
		dst.h.UnregisterTCP(st.h.IP(), sport, spec.Port)
		if a, ok := spec.Arrival.(Closed); ok {
			if st.h.Now() >= st.h.End() {
				return
			}
			if a.Think > 0 {
				st.h.PostNamed(a.Think, st.thinkH, sim.NamedArgs{})
			} else {
				st.startFlow()
			}
		}
	})
	snd.StartFlow()
}

// sendBurst transmits up to Burst packets of the flow's remaining bytes,
// then re-arms itself after the burst's serialization time at the access
// link rate — bounding frames in flight per flow to one burst.
func (st *hostState) sendBurst(dst proto.IP, flowID uint32, flowStart sim.Time, remaining int) {
	spec := &st.eng.spec
	var hdr [hdrLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], flowID)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(flowStart))
	burstBytes := 0
	for i := 0; i < spec.Burst && remaining > 0; i++ {
		pay := spec.MTU
		if pay > remaining {
			pay = remaining
		}
		remaining -= pay
		if remaining == 0 {
			hdr[12] = markLast
		} else {
			hdr[12] = markData
		}
		st.h.SendUDP(dst, spec.Port, spec.Port, hdr[:], pay)
		burstBytes += pay + hdrLen
		st.bytesSent += int64(pay)
	}
	if remaining > 0 {
		gap := sim.TransmitTime(burstBytes, st.h.Iface().Rate())
		st.h.PostNamed(gap, st.burstH, sim.NamedArgs{
			uint64(dst)<<32 | uint64(flowID), uint64(flowStart), uint64(remaining)})
	}
}

// receive handles both flow data (recording the FCT when the last packet
// lands and acknowledging to the source) and completion acks (closing the
// loop under Closed arrivals).
func (st *hostState) receive(src proto.IP, _ uint16, payload []byte, _ int) {
	if len(payload) < hdrLen {
		return
	}
	switch payload[12] {
	case markData:
	case markLast:
		start := sim.Time(binary.BigEndian.Uint64(payload[4:12]))
		st.fct.Add(st.h.Now() - start)
		st.completed++
		// Acknowledge so a closed-loop source can start its next flow.
		var ack [hdrLen]byte
		copy(ack[:12], payload[:12])
		ack[12] = markAck
		st.h.SendUDP(src, st.port, st.port, ack[:], 0)
	case markAck:
		st.acked++
		if a, ok := st.eng.spec.Arrival.(Closed); ok {
			if st.h.Now() >= st.h.End() {
				return
			}
			if a.Think > 0 {
				st.h.PostNamed(a.Think, st.thinkH, sim.NamedArgs{})
			} else {
				st.startFlow()
			}
		}
	}
}

// Engine rides along in checkpoints as auxiliary state: per-host RNG
// streams, counters, and FCT reservoirs serialize, while the spec and host
// bindings are reproduced by the identical build. Pending workload timers
// are named events and travel in the scheduler's event section.
var _ core.AuxState = (*Engine)(nil)

// SnapshotState implements core.AuxState.
func (e *Engine) SnapshotState(enc *snap.Encoder) error {
	enc.U32(uint32(len(e.states)))
	for _, st := range e.states {
		enc.U64(uint64(st.h.IP())) // identity check on restore
		enc.U64(st.rng.State())
		enc.I64(int64(st.flows))
		enc.I64(int64(st.completed))
		enc.I64(int64(st.acked))
		enc.I64(st.bytesSent)
		st.fct.Snapshot(enc)
	}
	return nil
}

// RestoreState implements core.AuxState. The engine must be installed on
// the same host set, in the same order, as the one snapshotted.
func (e *Engine) RestoreState(dec *snap.Decoder) error {
	if got := int(dec.U32()); got != len(e.states) {
		return fmt.Errorf("%w: workload: snapshot has %d hosts, engine has %d",
			core.ErrNotCheckpointable, got, len(e.states))
	}
	for _, st := range e.states {
		if ip := proto.IP(dec.U64()); ip != st.h.IP() {
			return fmt.Errorf("%w: workload: host order mismatch (%v vs %v)",
				core.ErrNotCheckpointable, ip, st.h.IP())
		}
		st.rng.SetState(dec.U64())
		st.flows = int(dec.I64())
		st.completed = int(dec.I64())
		st.acked = int(dec.I64())
		st.bytesSent = dec.I64()
		if err := st.fct.Restore(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// Report is the merged outcome of a workload run.
type Report struct {
	FlowsStarted   int
	FlowsCompleted int
	BytesSent      int64
	FCT            *stats.Latency
}

// Collect merges per-host results. Call after the simulation has run.
func (e *Engine) Collect() Report {
	r := Report{FCT: &stats.Latency{}}
	for _, st := range e.states {
		r.FlowsStarted += st.flows
		r.FlowsCompleted += st.completed
		r.BytesSent += st.bytesSent
		r.FCT.Merge(st.fct)
	}
	return r
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("flows=%d completed=%d bytes=%d fct{%s n=%d sampled=%d}",
		r.FlowsStarted, r.FlowsCompleted, r.BytesSent,
		r.FCT.Summary(), r.FCT.Count(), r.FCT.Sampled())
}
