package workload

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// TraceFlow is one recorded flow arrival: at Start, participant Src sends
// Bytes bytes to participant Dst. Indices are positions in the participant
// set the trace is replayed over, not host slots or addresses, so the same
// trace drives any fabric.
type TraceFlow struct {
	Start sim.Time
	Src   int
	Dst   int
	Bytes int64
}

// Trace replays a recorded arrival schedule over the participant set — the
// ROADMAP "trace replay" arrival process. It implements Arrival for the
// packet tier (workload.Install) and is equally consumed by the flow-level
// tier (netsim/flowsim), so one trace file can drive either fidelity.
// Under a trace the Spec's Pattern and Sizes are ignored: destinations,
// sizes, and timing all come from the tuples.
type Trace struct {
	Flows []TraceFlow
}

func (*Trace) isArrival() {}

// Validate checks the trace against a participant count n: non-decreasing
// start times, indices in [0, n), no self-flows, positive sizes.
func (tr *Trace) Validate(n int) error {
	var prev sim.Time
	for i, f := range tr.Flows {
		if f.Start < prev {
			return fmt.Errorf("trace: flow %d starts at %v, before flow %d (%v) — sort by start time",
				i, f.Start, i-1, prev)
		}
		prev = f.Start
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("trace: flow %d endpoints (%d→%d) outside participant set of %d",
				i, f.Src, f.Dst, n)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("trace: flow %d is a self-flow (src == dst == %d)", i, f.Src)
		}
		if f.Bytes < 1 {
			return fmt.Errorf("trace: flow %d has non-positive size %d", i, f.Bytes)
		}
	}
	return nil
}

// traceMagic heads the binary trace format: records are fixed-width little-
// endian (start int64 ns, src uint32, dst uint32, bytes int64) after a
// uint32 count.
var traceMagic = []byte("SSTR1\n")

// ParseTraceCSV reads the text trace format: one "start_ns,src,dst,bytes"
// line per flow, blank lines and #-comments skipped.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: line %d: want start_ns,src,dst,bytes, got %q", lineNo, line)
		}
		var vals [4]int64
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		tr.Flows = append(tr.Flows, TraceFlow{
			Start: sim.Time(vals[0]), Src: int(vals[1]), Dst: int(vals[2]), Bytes: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return tr, nil
}

// ParseTraceBinary reads the binary trace format (traceMagic header).
func ParseTraceBinary(b []byte) (*Trace, error) {
	if !bytes.HasPrefix(b, traceMagic) {
		return nil, fmt.Errorf("trace: missing %q magic", traceMagic)
	}
	b = b[len(traceMagic):]
	if len(b) < 4 {
		return nil, fmt.Errorf("trace: truncated header")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	const rec = 8 + 4 + 4 + 8
	if len(b) != n*rec {
		return nil, fmt.Errorf("trace: %d records declared, %d bytes of payload (want %d)",
			n, len(b), n*rec)
	}
	tr := &Trace{Flows: make([]TraceFlow, n)}
	for i := 0; i < n; i++ {
		r := b[i*rec:]
		tr.Flows[i] = TraceFlow{
			Start: sim.Time(binary.LittleEndian.Uint64(r)),
			Src:   int(binary.LittleEndian.Uint32(r[8:])),
			Dst:   int(binary.LittleEndian.Uint32(r[12:])),
			Bytes: int64(binary.LittleEndian.Uint64(r[16:])),
		}
	}
	return tr, nil
}

// WriteBinary serializes the trace in the binary format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	buf := make([]byte, 0, len(traceMagic)+4+len(tr.Flows)*24)
	buf = append(buf, traceMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr.Flows)))
	for _, f := range tr.Flows {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Start))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Src))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Bytes))
	}
	_, err := w.Write(buf)
	return err
}

// LoadTrace reads a trace file, auto-detecting the binary format by magic
// and falling back to CSV.
func LoadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(b, traceMagic) {
		return ParseTraceBinary(b)
	}
	return ParseTraceCSV(bytes.NewReader(b))
}

// SaveTrace writes the trace to path in the binary format.
func SaveTrace(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
