package workload_test

import (
	"fmt"
	"testing"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
)

func TestParetoBoundedAndDeterministic(t *testing.T) {
	d := workload.Pareto{Min: 100, Alpha: 1.3, Max: 100_000}
	r1, r2 := sim.NewRand(5), sim.NewRand(5)
	sawBig := false
	for i := 0; i < 10_000; i++ {
		a, b := d.Sample(r1), d.Sample(r2)
		if a != b {
			t.Fatal("same seed, different samples")
		}
		if a < 100 || a > 100_000 {
			t.Fatalf("sample %d outside [100, 100000]", a)
		}
		if a > 10_000 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("heavy tail never produced a large flow")
	}
}

func TestLognormalBounded(t *testing.T) {
	d := workload.Lognormal{Median: 1000, Sigma: 1.5, Max: 50_000}
	r := sim.NewRand(9)
	below, above := 0, 0
	for i := 0; i < 5000; i++ {
		s := d.Sample(r)
		if s < 1 || s > 50_000 {
			t.Fatalf("sample %d out of range", s)
		}
		if s < 1000 {
			below++
		} else {
			above++
		}
	}
	// Median should split the mass roughly in half.
	if below < 2000 || above < 2000 {
		t.Fatalf("median split %d/%d, want roughly even", below, above)
	}
}

func TestShufflePatternCoversAllPeers(t *testing.T) {
	var p workload.Shuffle
	n := 5
	for src := 0; src < n; src++ {
		seen := map[int]bool{}
		for f := 0; f < n-1; f++ {
			d := p.Dst(nil, src, f, n)
			if d == src || d < 0 || d >= n {
				t.Fatalf("src %d flow %d: bad dst %d", src, f, d)
			}
			seen[d] = true
		}
		if len(seen) != n-1 {
			t.Fatalf("src %d: %d distinct dsts in one rotation, want %d", src, len(seen), n-1)
		}
	}
}

// closHosts builds a small Clos and returns the simulation plus its hosts
// in slot order.
func closHosts(t *testing.T, spec topogen.ClosSpec, seed uint64, parts int) (*orch.Simulation, *netsim.Built, []*netsim.Host) {
	t.Helper()
	topo, m := topogen.Clos(spec)
	var assign []int
	if parts > 1 {
		assign = m.AssignByPod(parts)
	}
	b := topo.Build("clos", seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)
	var hosts []*netsim.Host
	for _, pod := range m.HostSlots {
		for _, leaf := range pod {
			for _, slot := range leaf {
				h := b.Hosts[slot]
				if h == nil {
					h = b.MaterializeSlot(slot)
				}
				hosts = append(hosts, h)
			}
		}
	}
	return s, b, hosts
}

var smallClos = topogen.ClosSpec{
	Pods: 4, LeafPerPod: 2, SpinePerPod: 2, Cores: 4, HostsPerLeaf: 2,
	HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps,
	LinkDelay: sim.Microsecond,
}

func TestClosedLoopIncast(t *testing.T) {
	s, b, hosts := closHosts(t, smallClos, 11, 1)
	eng := workload.Install(hosts, workload.Spec{
		Pattern: workload.Incast{Victim: 0},
		Sizes:   workload.Fixed(20_000),
		Arrival: workload.Closed{Concurrency: 2},
		Seed:    11,
	})
	s.RunSequential(2 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsCompleted == 0 {
		t.Fatal("no flows completed")
	}
	if r.FlowsCompleted > r.FlowsStarted {
		t.Fatalf("completed %d > started %d", r.FlowsCompleted, r.FlowsStarted)
	}
	if r.FCT.Count() != r.FlowsCompleted {
		t.Fatalf("FCT count %d != completions %d", r.FCT.Count(), r.FlowsCompleted)
	}
	if r.FCT.Min() <= 0 {
		t.Fatalf("non-positive FCT %v", r.FCT.Min())
	}
	var noRoute uint64
	for _, sw := range b.Switches {
		noRoute += sw.NoRoute
	}
	if noRoute != 0 {
		t.Fatalf("%d no-route drops", noRoute)
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames leaked", live)
	}
}

func TestOpenLoopShuffleHeavyTailed(t *testing.T) {
	s, _, hosts := closHosts(t, smallClos, 13, 1)
	eng := workload.Install(hosts, workload.Spec{
		Pattern: workload.Shuffle{},
		Sizes:   workload.Pareto{Min: 1000, Alpha: 1.3, Max: 200_000},
		Arrival: workload.Open{FlowsPerSec: 50_000},
		Seed:    13,
	})
	s.RunSequential(2 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsStarted == 0 || r.FlowsCompleted == 0 {
		t.Fatalf("flows started=%d completed=%d", r.FlowsStarted, r.FlowsCompleted)
	}
	if r.BytesSent == 0 {
		t.Fatal("no bytes sent")
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames leaked", live)
	}
}

func TestTCPTransportClosedLoop(t *testing.T) {
	s, _, hosts := closHosts(t, smallClos, 17, 1)
	eng := workload.Install(hosts, workload.Spec{
		Pattern:   workload.Uniform{},
		Sizes:     workload.Fixed(50_000),
		Arrival:   workload.Closed{Concurrency: 1},
		Transport: workload.TransportTCP,
		Seed:      17,
	})
	s.RunSequential(5 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsCompleted == 0 {
		t.Fatal("no TCP flows completed")
	}
	if r.FCT.Min() <= 0 {
		t.Fatalf("non-positive FCT %v", r.FCT.Min())
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames leaked", live)
	}
}

func TestTCPAcrossPartitionsRejected(t *testing.T) {
	_, _, hosts := closHosts(t, smallClos, 19, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("TCP across partitions should panic at Install")
		}
	}()
	workload.Install(hosts, workload.Spec{
		Pattern:   workload.Uniform{},
		Sizes:     workload.Fixed(1000),
		Arrival:   workload.Closed{Concurrency: 1},
		Transport: workload.TransportTCP,
	})
}

// digest captures everything observable about a workload run.
func digest(eng *workload.Engine, b *netsim.Built) string {
	r := eng.Collect()
	var rx uint64
	for _, sw := range b.Switches {
		rx += sw.RxPackets
	}
	return fmt.Sprintf("flows=%d done=%d bytes=%d fctN=%d fctMean=%v fctMax=%v swRx=%d",
		r.FlowsStarted, r.FlowsCompleted, r.BytesSent,
		r.FCT.Count(), r.FCT.Mean(), r.FCT.Max(), rx)
}

// TestPlacementBitIdentity is the standing-invariant property test on the
// new stack: the same partitioned Clos + workload run under RunSequential,
// RunPlaced(per-component), and RunPlaced(random placement) must agree on
// every observable — flow counts, FCT distribution, switch packet counts.
func TestPlacementBitIdentity(t *testing.T) {
	const end = 2 * sim.Millisecond
	spec := workload.Spec{
		Pattern: workload.Shuffle{},
		Sizes:   workload.Pareto{Min: 800, Alpha: 1.4, Max: 100_000},
		Arrival: workload.Open{FlowsPerSec: 30_000},
		Seed:    23,
	}
	run := func(placement *decomp.Placement) string {
		s, b, hosts := closHosts(t, smallClos, 23, 4)
		eng := workload.Install(hosts, spec)
		if placement == nil {
			s.RunSequential(end)
		} else if err := s.RunPlaced(end, *placement); err != nil {
			t.Fatalf("RunPlaced(%v): %v", placement.Groups, err)
		}
		if live := s.LiveFrames(); live != 0 {
			t.Fatalf("%d frames leaked", live)
		}
		return digest(eng, b)
	}

	ref := run(nil)
	nComps := 0
	{
		// Count components once: partitions (4) plus trunk channels.
		s, _, _ := closHosts(t, smallClos, 23, 4)
		nComps = s.NumComponents()
	}
	placements := []decomp.Placement{decomp.PerComponent(nComps)}
	prng := sim.NewRand(23 * 104729)
	for k := 0; k < 2; k++ {
		groups := make([]int, nComps)
		for i := range groups {
			groups[i] = prng.Intn(1 + prng.Intn(nComps))
		}
		placements = append(placements, decomp.Placement{Name: fmt.Sprintf("rand%d", k), Groups: groups})
	}
	for _, p := range placements {
		p := p
		if got := run(&p); got != ref {
			t.Fatalf("placement %s diverged:\n  placed:     %s\n  sequential: %s", p.Name, got, ref)
		}
	}
}
