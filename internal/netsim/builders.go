package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// DumbbellSpec parametrizes the classic congestion-control topology: n
// hosts on each side of two switches joined by a bottleneck link.
type DumbbellSpec struct {
	HostsPerSide    int
	EdgeRate        int64
	BottleneckRate  int64
	EdgeDelay       sim.Time
	BottleneckDelay sim.Time
}

// DumbbellMeta indexes the pieces of a dumbbell topology.
type DumbbellMeta struct {
	Left, Right     []int // host slot indices
	SwLeft, SwRight int   // switch indices
	Bottleneck      int   // link index
}

// Dumbbell builds the Fig. 6 topology. Host i on the left pairs with host i
// on the right.
func Dumbbell(spec DumbbellSpec) (*Topology, DumbbellMeta) {
	t := &Topology{}
	var m DumbbellMeta
	m.SwLeft = t.AddSwitch("swL")
	m.SwRight = t.AddSwitch("swR")
	m.Bottleneck = t.AddLink(m.SwLeft, m.SwRight, spec.BottleneckRate, spec.BottleneckDelay)
	for i := 0; i < spec.HostsPerSide; i++ {
		l := t.AddHost(fmt.Sprintf("l%d", i), proto.HostIP(uint32(1+i)), m.SwLeft,
			spec.EdgeRate, spec.EdgeDelay)
		r := t.AddHost(fmt.Sprintf("r%d", i), proto.HostIP(uint32(101+i)), m.SwRight,
			spec.EdgeRate, spec.EdgeDelay)
		m.Left = append(m.Left, l)
		m.Right = append(m.Right, r)
	}
	return t, m
}

// FatTreeMeta indexes a k-ary fat tree.
type FatTreeMeta struct {
	K          int
	Core       []int   // core switch indices
	Agg        [][]int // [pod][i] aggregation switches
	Edge       [][]int // [pod][i] edge switches
	HostsByPod [][]int // [pod] host slot indices
}

// FatTree builds a k-ary fat tree with k^3/4 hosts (k even). k=8 yields the
// FatTree8 configuration with 128 servers used in Fig. 8 (following DONS).
func FatTree(k int, hostRate, fabricRate int64, linkDelay sim.Time) (*Topology, FatTreeMeta) {
	if k%2 != 0 || k < 2 {
		panic("netsim: fat tree needs even k >= 2")
	}
	t := &Topology{}
	m := FatTreeMeta{K: k}
	half := k / 2
	for i := 0; i < half*half; i++ {
		m.Core = append(m.Core, t.AddSwitch(fmt.Sprintf("core%d", i)))
	}
	hostID := uint32(1)
	for p := 0; p < k; p++ {
		var aggs, edges, hosts []int
		for i := 0; i < half; i++ {
			aggs = append(aggs, t.AddSwitch(fmt.Sprintf("agg%d.%d", p, i)))
		}
		for i := 0; i < half; i++ {
			edges = append(edges, t.AddSwitch(fmt.Sprintf("edge%d.%d", p, i)))
		}
		// Pod wiring: every edge to every agg in the pod.
		for _, e := range edges {
			for _, a := range aggs {
				t.AddLink(e, a, fabricRate, linkDelay)
			}
		}
		// Core wiring: agg i connects to cores [i*half, (i+1)*half).
		for i, a := range aggs {
			for c := 0; c < half; c++ {
				t.AddLink(a, m.Core[i*half+c], fabricRate, linkDelay)
			}
		}
		// Hosts: half per edge switch.
		for _, e := range edges {
			for h := 0; h < half; h++ {
				hi := t.AddHost(fmt.Sprintf("h%d", hostID), proto.HostIP(hostID), e,
					hostRate, linkDelay)
				hosts = append(hosts, hi)
				hostID++
			}
		}
		m.Agg = append(m.Agg, aggs)
		m.Edge = append(m.Edge, edges)
		m.HostsByPod = append(m.HostsByPod, hosts)
	}
	return t, m
}

// ThreeTierSpec parametrizes the reusable large-scale datacenter topology
// shared by the clock-synchronization case study and the partitioning
// experiments (the paper keeps it in a reusable Python module; here it is a
// reusable Go constructor).
type ThreeTierSpec struct {
	Aggs         int // aggregation switches under the single core
	RacksPerAgg  int
	HostsPerRack int
	CoreRate     int64 // core <-> agg links (paper: 100 Gbps)
	AggRate      int64 // agg <-> ToR links
	HostRate     int64
	LinkDelay    sim.Time
}

// DefaultThreeTier is the 1,200-host configuration: 1 core, 4 aggregation
// switches, 6 racks each, 50 hosts per rack. The paper's prose says 40
// machines per rack but also reports 1,200 hosts total and 1,193 background
// hosts plus 7 detailed hosts; 4·6·40 = 960 does not reach either figure, so
// we use 50 per rack, which gives exactly 1,200 slots.
var DefaultThreeTier = ThreeTierSpec{
	Aggs:         4,
	RacksPerAgg:  6,
	HostsPerRack: 50,
	CoreRate:     100 * sim.Gbps,
	AggRate:      40 * sim.Gbps,
	HostRate:     10 * sim.Gbps,
	LinkDelay:    1 * sim.Microsecond,
}

// ThreeTierMeta indexes the datacenter topology.
type ThreeTierMeta struct {
	Spec        ThreeTierSpec
	Core        int       // core switch index
	Agg         []int     // aggregation switch indices
	Tor         [][]int   // [agg][rack] ToR switch indices
	HostsByRack [][][]int // [agg][rack][i] host slot indices
}

// ThreeTier builds the datacenter topology.
func ThreeTier(spec ThreeTierSpec) (*Topology, ThreeTierMeta) {
	t := &Topology{}
	m := ThreeTierMeta{Spec: spec}
	m.Core = t.AddSwitch("core")
	hostID := uint32(1)
	for a := 0; a < spec.Aggs; a++ {
		agg := t.AddSwitch(fmt.Sprintf("agg%d", a))
		m.Agg = append(m.Agg, agg)
		t.AddLink(m.Core, agg, spec.CoreRate, spec.LinkDelay)
		var tors []int
		var rackHosts [][]int
		for r := 0; r < spec.RacksPerAgg; r++ {
			tor := t.AddSwitch(fmt.Sprintf("tor%d.%d", a, r))
			tors = append(tors, tor)
			t.AddLink(agg, tor, spec.AggRate, spec.LinkDelay)
			var hosts []int
			for h := 0; h < spec.HostsPerRack; h++ {
				hi := t.AddHost(fmt.Sprintf("h%d.%d.%d", a, r, h), proto.HostIP(hostID),
					tor, spec.HostRate, spec.LinkDelay)
				hosts = append(hosts, hi)
				hostID++
			}
			rackHosts = append(rackHosts, hosts)
		}
		m.Tor = append(m.Tor, tors)
		m.HostsByRack = append(m.HostsByRack, rackHosts)
	}
	return t, m
}

// TotalHosts returns the number of host slots in the topology.
func (m ThreeTierMeta) TotalHosts() int {
	return m.Spec.Aggs * m.Spec.RacksPerAgg * m.Spec.HostsPerRack
}
