package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// UDPHandler aliases the shared socket-callback type.
type UDPHandler = core.UDPHandler

// App is a protocol-level application bound to a host. Protocol-level apps
// run with zero host processing cost — exactly the ns-3 modeling gap the
// paper's case studies expose.
type App interface {
	Start(h *Host)
}

// AppFunc adapts a function to App.
type AppFunc func(h *Host)

// Start implements App.
func (f AppFunc) Start(h *Host) { f(h) }

// Host is a protocol-level end host: an IP/UDP/TCP stack and an application,
// with no CPU, OS, or NIC model.
type Host struct {
	net   *Network
	name  string
	ip    proto.IP
	mac   proto.MAC
	iface *Iface
	app   App
	rng   *sim.Rand

	udpPorts map[uint16]UDPHandler
	tcpConns map[tcpKey]*TCPConn

	// Statistics.
	RxPackets, TxPackets uint64
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

func (h *Host) nodeName() string { return h.name }

// IP returns the host address.
func (h *Host) IP() proto.IP { return h.ip }

// LocalIP returns the host address (alias used by the shared app API).
func (h *Host) LocalIP() proto.IP { return h.ip }

// MAC returns the host's Ethernet address.
func (h *Host) MAC() proto.MAC { return h.mac }

// Iface returns the host's link interface.
func (h *Host) Iface() *Iface { return h.iface }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// Rand returns the host's private deterministic random source.
func (h *Host) Rand() *sim.Rand { return h.rng }

// Now returns the current virtual time.
func (h *Host) Now() sim.Time { return h.net.env.Now() }

// End returns the simulation end time.
func (h *Host) End() sim.Time { return h.net.end }

// After schedules fn d from now.
func (h *Host) After(d sim.Time, fn func()) *sim.Timer { return h.net.env.After(d, fn) }

// Post schedules fn d from now without a cancellation handle (implements
// tcpstack.Transport's cheap timer primitive).
func (h *Host) Post(d sim.Time, fn func()) { h.net.env.Post(h.net.env.Now()+d, fn) }

// At schedules fn at absolute time t.
func (h *Host) At(t sim.Time, fn func()) *sim.Timer { return h.net.env.At(t, fn) }

// SetApp installs the host application; it starts when the network starts.
func (h *Host) SetApp(a App) { h.app = a }

// Compute models application CPU time. A protocol-level host has no CPU:
// the ns-3 idiom is Simulator::Schedule(delay, respond), i.e. processing
// becomes a pure delay with unbounded concurrency — latency is modeled,
// capacity is not. That missing queueing/serialization is exactly the
// modeling gap the paper's in-network case study exposes.
func (h *Host) Compute(d sim.Time, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	h.After(d, fn)
}

// BindUDP registers a datagram handler for a local port.
func (h *Host) BindUDP(port uint16, fn UDPHandler) {
	if _, dup := h.udpPorts[port]; dup {
		panic(fmt.Sprintf("netsim: %s: UDP port %d already bound", h.name, port))
	}
	h.udpPorts[port] = fn
}

// SendUDP transmits a datagram. payload carries the semantic bytes; virtual
// adds synthetic payload size. The frame comes from the network's pool and
// takes a pooled copy of payload, so handlers may echo their received
// payload slice even though the frame backing it is recycled when the
// handler returns.
func (h *Host) SendUDP(dst proto.IP, srcPort, dstPort uint16, payload []byte, virtual int) {
	f := h.net.pool.Get()
	f.Eth = proto.Ethernet{Dst: proto.MACFromID(uint32(dst)), Src: h.mac}
	f.IP = proto.IPv4{Src: h.ip, Dst: dst, Proto: proto.IPProtoUDP}
	f.UDP = proto.UDP{SrcPort: srcPort, DstPort: dstPort}
	f.CopyPayload(payload)
	f.VirtualPayload = virtual
	f.Seal()
	h.transmit(f)
}

// NewFrame implements tcpstack.Transport: segments the TCP stack builds on
// this host come from the network's frame pool.
func (h *Host) NewFrame() *proto.Frame { return h.net.pool.Get() }

// transmit pushes a sealed frame onto the host link, transferring ownership.
func (h *Host) transmit(f *proto.Frame) {
	if h.iface == nil {
		panic("netsim: host " + h.name + " not connected")
	}
	h.TxPackets++
	h.iface.Enqueue(f)
}

// receive implements node. The host is a terminal sink: after the handler
// or TCP input returns — neither retains the frame or its payload — the
// frame goes back to its pool.
func (h *Host) receive(_ *Iface, f *proto.Frame) {
	h.RxPackets++
	if f.IP.Dst != h.ip {
		f.Release() // mis-delivered; drop silently like a real NIC without promisc
		return
	}
	switch f.IP.Proto {
	case proto.IPProtoUDP:
		if fn, ok := h.udpPorts[f.UDP.DstPort]; ok {
			fn(f.IP.Src, f.UDP.SrcPort, f.Payload, f.VirtualPayload)
		}
	case proto.IPProtoTCP:
		key := tcpKey{remote: f.IP.Src, rport: f.TCP.SrcPort, lport: f.TCP.DstPort}
		if c, ok := h.tcpConns[key]; ok {
			c.Input(f)
		}
	}
	f.Release()
}
