package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Topology is a declarative description of a network: switches, protocol-
// level hosts, switch-to-switch links, and attachment points for detailed
// (externally simulated) hosts. One Topology can be instantiated as a single
// Network or split across several partition Networks — the SplitSim
// "parallelization through decomposition" path — with globally consistent
// shortest-path routes either way.
type Topology struct {
	Switches []TopoSwitch
	Hosts    []TopoHost
	Links    []TopoLink
	// Prefixes, when non-empty, switches Build into hierarchical routing:
	// per-IP routes are installed only on each host's owning switch, and
	// these aggregates cover remote reachability with O(prefixes-in-scope)
	// state per switch instead of O(hosts).
	Prefixes []TopoPrefix
}

// TopoSwitch describes one switch.
type TopoSwitch struct {
	Name string
	// TC enables the PTP transparent clock on this switch.
	TC bool
}

// TopoHost describes a host attachment. When External is true the slot is a
// detailed host simulated outside this network and reachable via an
// external port.
type TopoHost struct {
	Name     string
	IP       proto.IP
	Switch   int
	Rate     int64
	Delay    sim.Time
	External bool
	// Lazy marks a slot whose protocol-level host is not instantiated by
	// Build; Built.MaterializeSlot creates it on first use. Generators mark
	// the bulk of a 10⁴–10⁵-host fabric lazy so only workload participants
	// pay host-instantiation cost.
	Lazy bool
}

// TopoPrefix declares an aggregate route: every address inside Prefix
// attaches at (or behind) one of the listed switches. Build installs one
// prefix entry per switch with equal-cost candidates toward the nearest
// member (multi-source BFS), and an explicit blackhole on the members
// themselves so unknown addresses inside the aggregate die there instead
// of looping.
type TopoPrefix struct {
	Prefix   proto.Prefix
	Switches []int
	// Scope limits installation to the listed switches (members always get
	// their blackhole); nil installs on every switch. Generators scope leaf
	// aggregates to their pod so per-switch state stays O(pods), not
	// O(leaves).
	Scope []int
}

// TopoLink is a switch-to-switch link.
type TopoLink struct {
	A, B  int
	Rate  int64
	Delay sim.Time
}

// AddSwitch appends a switch and returns its index.
func (t *Topology) AddSwitch(name string) int {
	t.Switches = append(t.Switches, TopoSwitch{Name: name})
	return len(t.Switches) - 1
}

// AddHost appends a protocol-level host attached to switch sw.
func (t *Topology) AddHost(name string, ip proto.IP, sw int, rate int64, delay sim.Time) int {
	t.Hosts = append(t.Hosts, TopoHost{Name: name, IP: ip, Switch: sw, Rate: rate, Delay: delay})
	return len(t.Hosts) - 1
}

// AddLink appends a switch-to-switch link.
func (t *Topology) AddLink(a, b int, rate int64, delay sim.Time) int {
	t.Links = append(t.Links, TopoLink{A: a, B: b, Rate: rate, Delay: delay})
	return len(t.Links) - 1
}

// AddLazyHost appends a host slot that Build leaves uninstantiated until
// Built.MaterializeSlot is called for it.
func (t *Topology) AddLazyHost(name string, ip proto.IP, sw int, rate int64, delay sim.Time) int {
	t.Hosts = append(t.Hosts, TopoHost{Name: name, IP: ip, Switch: sw, Rate: rate, Delay: delay, Lazy: true})
	return len(t.Hosts) - 1
}

// AddAggregate appends an aggregate route whose addresses live at (or
// behind) the given switches, installed on every switch in scope (nil =
// all). It returns the aggregate's index.
func (t *Topology) AddAggregate(p proto.Prefix, switches []int, scope []int) int {
	if len(switches) == 0 {
		panic("netsim: aggregate " + p.String() + " has no member switches")
	}
	t.Prefixes = append(t.Prefixes, TopoPrefix{Prefix: p, Switches: switches, Scope: scope})
	return len(t.Prefixes) - 1
}

// Hierarchical reports whether Build will install aggregate (prefix)
// routes instead of global per-IP routes.
func (t *Topology) Hierarchical() bool { return len(t.Prefixes) > 0 }

// aggIndex answers "does any aggregate contain ip" in O(distinct prefix
// lengths): one masked-address set per length. The per-host coverage check
// used to scan the whole prefix list per host — at 10⁶ lazy slots over
// ~10³ aggregates that linear scan dominated the hierarchical build.
type aggIndex struct {
	lens  []uint8
	byLen map[uint8]map[proto.IP]struct{}
}

// aggregateIndex builds the coverage index over the declared prefixes.
func (t *Topology) aggregateIndex() *aggIndex {
	ix := &aggIndex{byLen: make(map[uint8]map[proto.IP]struct{})}
	for _, p := range t.Prefixes {
		m := ix.byLen[p.Prefix.Bits]
		if m == nil {
			m = make(map[proto.IP]struct{})
			ix.byLen[p.Prefix.Bits] = m
			ix.lens = append(ix.lens, p.Prefix.Bits)
		}
		m[p.Prefix.Addr.Masked(p.Prefix.Bits)] = struct{}{}
	}
	return ix
}

// covers reports whether any aggregate contains ip.
func (ix *aggIndex) covers(ip proto.IP) bool {
	for _, bits := range ix.lens {
		if _, ok := ix.byLen[bits][ip.Masked(bits)]; ok {
			return true
		}
	}
	return false
}

// MakeExternal converts host slot i into a detailed-host attachment point.
func (t *Topology) MakeExternal(i int) {
	if t.Hosts[i].Lazy {
		panic("netsim: lazy host slot cannot be external")
	}
	t.Hosts[i].External = true
}

// Boundary is a cross-partition link whose two halves must be wired through
// a synchronized channel.
type Boundary struct {
	Link         int // index into Topology.Links
	PartA, PartB int
	PortA, PortB *ExtPort
}

// Build instantiates the topology, split into partitions according to
// assign (assign[switchIdx] = partition id, ids 0..max contiguous). Hosts
// follow their switch's partition. namer names each partition component;
// nil derives "name.pN". A nil or all-zero assign yields one network.
type Built struct {
	// Parts holds one Network per partition.
	Parts []*Network
	// Hosts maps host slot index to its protocol-level host (nil for
	// external slots).
	Hosts []*Host
	// HostPart maps host slot index to partition id.
	HostPart []int
	// Exts maps external host slot index to its attachment port.
	Exts map[int]*ExtPort
	// Switches maps topology switch index to the instantiated switch.
	Switches []*Switch
	// SwitchPart maps topology switch index to partition id.
	SwitchPart []int
	// Boundaries lists cross-partition links to be wired by decomp.
	Boundaries []Boundary

	// LinkIfaces maps each topology link to its transmitter interface
	// indices: LinkIfaces[li][0] is the iface index on switch Links[li].A,
	// [1] the index on Links[li].B. At partition boundaries these are the
	// external-port ifaces. It lets a path resolver walk Switch.Route
	// results across the whole link graph without chasing peer pointers
	// (which are nil at boundaries) — the flow-level tier depends on it.
	LinkIfaces [][2]int32

	// topo is the topology this Built instantiates; MaterializeSlot reads
	// lazy slots' parameters from it.
	topo *Topology

	// aggs indexes the aggregate prefixes by length so per-host coverage
	// checks are O(distinct lengths), not O(prefixes); nil in flat mode.
	aggs *aggIndex
}

// Topo returns the topology this Built instantiates.
func (b *Built) Topo() *Topology { return b.topo }

// MaterializeSlot instantiates lazy host slot i on first use: the host, its
// access link, and the direct route on the owning switch (remote
// reachability is already covered — by aggregates in hierarchical mode, by
// the per-IP routes Build installs regardless of laziness in flat mode).
// It is idempotent and must run before the simulation starts for the
// host's app to be started.
func (b *Built) MaterializeSlot(i int) *Host {
	if h := b.Hosts[i]; h != nil {
		return h
	}
	th := b.topo.Hosts[i]
	if !th.Lazy {
		panic(fmt.Sprintf("netsim: slot %d (%s) is not a lazy host", i, th.Name))
	}
	if b.topo.Hierarchical() && !b.aggs.covers(th.IP) {
		panic(fmt.Sprintf("netsim: lazy host %s (%v) is not covered by any aggregate", th.Name, th.IP))
	}
	net := b.Parts[b.HostPart[i]]
	sw := b.Switches[th.Switch]
	h := net.AddHost(th.Name, th.IP)
	fi := net.ConnectHostSwitch(h, sw, th.Rate, th.Delay)
	sw.SetRoute(th.IP, fi)
	b.Hosts[i] = h
	return h
}

// Build instantiates the topology across partitions.
func (t *Topology) Build(name string, seed uint64, assign []int, namer func(part int) string) *Built {
	if assign == nil {
		assign = make([]int, len(t.Switches))
	}
	if len(assign) != len(t.Switches) {
		panic("netsim: assign length != switch count")
	}
	nparts := 0
	for _, p := range assign {
		if p+1 > nparts {
			nparts = p + 1
		}
	}
	if namer == nil {
		namer = func(p int) string {
			if nparts == 1 {
				return name
			}
			return fmt.Sprintf("%s.p%d", name, p)
		}
	}

	b := &Built{
		Parts:      make([]*Network, nparts),
		Hosts:      make([]*Host, len(t.Hosts)),
		HostPart:   make([]int, len(t.Hosts)),
		Exts:       make(map[int]*ExtPort),
		Switches:   make([]*Switch, len(t.Switches)),
		SwitchPart: append([]int(nil), assign...),
		topo:       t,
	}
	for p := 0; p < nparts; p++ {
		b.Parts[p] = New(namer(p), seed)
	}
	for i, ts := range t.Switches {
		sw := b.Parts[assign[i]].AddSwitch(ts.Name)
		sw.TransparentClock = ts.TC
		b.Switches[i] = sw
	}

	// hostIface[i] = switch-local iface index serving host slot i
	// (-1 for lazy slots, whose access link does not exist yet).
	hostIface := make([]int, len(t.Hosts))
	for i, th := range t.Hosts {
		part := assign[th.Switch]
		b.HostPart[i] = part
		net := b.Parts[part]
		sw := b.Switches[th.Switch]
		if th.Lazy {
			hostIface[i] = -1
			continue
		}
		if th.External {
			p := net.AddExternal(sw, th.Name, th.Rate, th.IP)
			b.Exts[i] = p
			hostIface[i] = switchIfaceIndex(sw, p.iface)
			continue
		}
		h := net.AddHost(th.Name, th.IP)
		hostIface[i] = net.ConnectHostSwitch(h, sw, th.Rate, th.Delay)
		b.Hosts[i] = h
	}

	b.LinkIfaces = make([][2]int32, len(t.Links))
	for li, l := range t.Links {
		pa, pb := assign[l.A], assign[l.B]
		sa, sb := b.Switches[l.A], b.Switches[l.B]
		if pa == pb {
			ai, bi := b.Parts[pa].ConnectSwitches(sa, sb, l.Rate, l.Delay)
			b.LinkIfaces[li] = [2]int32{int32(ai), int32(bi)}
			continue
		}
		ea := b.Parts[pa].AddExternal(sa, fmt.Sprintf("x%d.a", li), l.Rate)
		eb := b.Parts[pb].AddExternal(sb, fmt.Sprintf("x%d.b", li), l.Rate)
		ea.SetEncode(true)
		eb.SetEncode(true)
		b.LinkIfaces[li] = [2]int32{
			int32(switchIfaceIndex(sa, ea.iface)), int32(switchIfaceIndex(sb, eb.iface))}
		b.Boundaries = append(b.Boundaries, Boundary{Link: li, PartA: pa, PartB: pb, PortA: ea, PortB: eb})
	}

	if nparts > 1 {
		for _, p := range b.Parts {
			p.partitionRouted = true
		}
	}
	if t.Hierarchical() {
		for _, p := range b.Parts {
			p.prefixRouted = true
		}
		b.aggs = t.aggregateIndex()
	}

	t.installGlobalRoutes(b, hostIface, func(li int) (int, int) {
		p := b.LinkIfaces[li]
		return int(p[0]), int(p[1])
	})
	return b
}

// switchIfaceIndex returns the index of f among sw's interfaces. A missing
// interface is a wiring bug — Build used to fall back silently to iface 0
// here, turning it into misrouting — so it panics instead.
func switchIfaceIndex(sw *Switch, f *Iface) int {
	for fi, g := range sw.ifaces {
		if g == f {
			return fi
		}
	}
	panic(fmt.Sprintf("netsim: iface %s not found on switch %s", f.name, sw.name))
}

// topoBFS holds the reusable breadth-first-search state for route
// installation: one dist array, one index-cursor queue (the old
// `queue = queue[1:]` pop retained the whole backing array per target and
// reallocated per destination), and one candidate buffer, shared across
// every destination so generator-scale route computation does not thrash
// the allocator.
type topoBFS struct {
	adj   [][]topoEdge
	dist  []int
	queue []int
	cands []int
	// seen[v] == epoch marks dist[v] as valid for the current search.
	// Stamping replaces the old full dist clear per search — a scoped
	// search that pops a handful of switches no longer pays O(switches)
	// to reset, which is what made per-leaf aggregates affordable on
	// 10⁶-endpoint fabrics.
	seen  []uint32
	epoch uint32
}

type topoEdge struct {
	nb    int
	iface int // local iface index on this switch for this link
}

// run fills dist from the seed set (multi-source, all seeds at distance 0).
// When need is non-nil, the search stops as soon as the needCount marked
// switches have been popped — by then every popped switch's shortest-path
// predecessors have final distances, which is all candidates() reads.
func (s *topoBFS) run(seeds []int, need []bool, needCount int) {
	s.epoch++
	if s.epoch == 0 { // stamp wrap: clear once per 2³² searches
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	for _, sd := range seeds {
		if s.seen[sd] == s.epoch {
			continue // duplicate seed
		}
		s.seen[sd] = s.epoch
		s.dist[sd] = 0
		s.queue = append(s.queue, sd)
	}
	remaining := needCount
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		if need != nil && need[u] {
			if remaining--; remaining == 0 {
				return
			}
		}
		for _, e := range s.adj[u] {
			if s.seen[e.nb] != s.epoch {
				s.seen[e.nb] = s.epoch
				s.dist[e.nb] = s.dist[u] + 1
				s.queue = append(s.queue, e.nb)
			}
		}
	}
}

// distOf returns the last run's distance of v from the seed set, or -1
// when the search never reached v.
func (s *topoBFS) distOf(v int) int {
	if s.seen[v] != s.epoch {
		return -1
	}
	return s.dist[v]
}

// candidates returns the ifaces on v that start a shortest path toward the
// last run's seed set, in adjacency order (the deterministic ECMP
// candidate order). The returned slice aliases the reusable buffer.
func (s *topoBFS) candidates(v int) []int {
	s.cands = s.cands[:0]
	for _, e := range s.adj[v] {
		if s.seen[e.nb] == s.epoch && s.dist[e.nb] == s.dist[v]-1 {
			s.cands = append(s.cands, e.iface)
		}
	}
	return s.cands
}

// installGlobalRoutes computes shortest paths on the whole topology and
// installs next hops on every switch in every partition. Equal-cost paths
// are spread per destination address (deterministic hash), the static
// analog of ECMP — essential for fat trees, whose capacity lives in the
// multiplicity of core paths.
//
// Without aggregates, every switch gets a per-IP route for every host
// (including lazy slots — only the owning switch's direct route waits for
// MaterializeSlot). BFS state is computed per destination *switch* and
// streamed — hosts sharing a switch share one search — instead of holding
// the all-pairs next-hop matrix, so route installation is O(S·E) time and
// O(S) transient memory.
//
// With aggregates (hierarchical mode), per-IP routes exist only on each
// host's owning switch; each TopoPrefix gets a multi-source BFS from its
// member switches and one prefix entry per switch in scope, keeping
// per-switch state proportional to the number of visible aggregates.
func (t *Topology) installGlobalRoutes(b *Built, hostIface []int, linkIfaces func(li int) (aIface, bIface int)) {
	ns := len(t.Switches)
	bfs := &topoBFS{
		adj:  make([][]topoEdge, ns),
		dist: make([]int, ns),
		seen: make([]uint32, ns),
	}
	for li, l := range t.Links {
		ai, bi := linkIfaces(li)
		bfs.adj[l.A] = append(bfs.adj[l.A], topoEdge{nb: l.B, iface: ai})
		bfs.adj[l.B] = append(bfs.adj[l.B], topoEdge{nb: l.A, iface: bi})
	}

	if !t.Hierarchical() {
		t.installFlatRoutes(b, hostIface, bfs)
		return
	}

	// Hierarchical mode. Direct routes on each owning switch (lazy slots
	// get theirs at MaterializeSlot), with a loud coverage check: a host
	// address no aggregate contains would be silently unreachable remotely.
	for hi, th := range t.Hosts {
		if !b.aggs.covers(th.IP) {
			panic(fmt.Sprintf("netsim: hierarchical build: host %s (%v) is not covered by any aggregate",
				th.Name, th.IP))
		}
		if hostIface[hi] >= 0 {
			b.Switches[th.Switch].SetRoute(th.IP, hostIface[hi])
		}
	}

	need := make([]bool, ns)
	marked := make([]int, 0, ns)
	for _, p := range t.Prefixes {
		var needCount int
		if p.Scope != nil {
			mark := func(si int) {
				if !need[si] {
					need[si] = true
					marked = append(marked, si)
					needCount++
				}
			}
			for _, si := range p.Scope {
				mark(si)
			}
			for _, si := range p.Switches {
				mark(si)
			}
			bfs.run(p.Switches, need, needCount)
		} else {
			bfs.run(p.Switches, nil, 0)
		}

		install := func(v int) {
			switch d := bfs.distOf(v); {
			case d < 0:
				// Unreachable from the aggregate's members — a partition
				// that genuinely cannot see them; leave no entry.
			case d == 0:
				// Member switch: unknown addresses inside the aggregate die
				// here rather than bouncing off a shorter prefix.
				b.Switches[v].SetPrefixRoute(p.Prefix)
			default:
				b.Switches[v].SetPrefixRoute(p.Prefix, bfs.candidates(v)...)
			}
		}
		if p.Scope != nil {
			for _, v := range p.Scope {
				install(v)
			}
			for _, v := range p.Switches {
				install(v) // members outside the scope still blackhole
			}
			for _, si := range marked {
				need[si] = false
			}
			marked = marked[:0]
		} else {
			for v := 0; v < ns; v++ {
				install(v)
			}
		}
	}
}

// installFlatRoutes is the classic per-IP mode: one BFS per destination
// switch, streamed, hashed-spread over equal-cost candidates.
func (t *Topology) installFlatRoutes(b *Built, hostIface []int, bfs *topoBFS) {
	ns := len(t.Switches)
	bySwitch := make([][]int, ns) // host slot indices per owning switch
	for hi, th := range t.Hosts {
		bySwitch[th.Switch] = append(bySwitch[th.Switch], hi)
	}
	for tgt := 0; tgt < ns; tgt++ {
		slots := bySwitch[tgt]
		if len(slots) == 0 {
			continue
		}
		bfs.run([]int{tgt}, nil, 0)
		for _, hi := range slots {
			if fi := hostIface[hi]; fi >= 0 {
				b.Switches[tgt].SetRoute(t.Hosts[hi].IP, fi)
			}
		}
		for v := 0; v < ns; v++ {
			if v == tgt || bfs.distOf(v) < 0 {
				continue
			}
			cands := bfs.candidates(v)
			if len(cands) == 0 {
				continue
			}
			sw := b.Switches[v]
			for _, hi := range slots {
				ip := t.Hosts[hi].IP
				sw.SetRoute(ip, cands[ecmpHash(ip)%uint64(len(cands))])
			}
		}
	}
}
