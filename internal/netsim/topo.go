package netsim

import (
	"fmt"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Topology is a declarative description of a network: switches, protocol-
// level hosts, switch-to-switch links, and attachment points for detailed
// (externally simulated) hosts. One Topology can be instantiated as a single
// Network or split across several partition Networks — the SplitSim
// "parallelization through decomposition" path — with globally consistent
// shortest-path routes either way.
type Topology struct {
	Switches []TopoSwitch
	Hosts    []TopoHost
	Links    []TopoLink
}

// TopoSwitch describes one switch.
type TopoSwitch struct {
	Name string
	// TC enables the PTP transparent clock on this switch.
	TC bool
}

// TopoHost describes a host attachment. When External is true the slot is a
// detailed host simulated outside this network and reachable via an
// external port.
type TopoHost struct {
	Name     string
	IP       proto.IP
	Switch   int
	Rate     int64
	Delay    sim.Time
	External bool
}

// TopoLink is a switch-to-switch link.
type TopoLink struct {
	A, B  int
	Rate  int64
	Delay sim.Time
}

// AddSwitch appends a switch and returns its index.
func (t *Topology) AddSwitch(name string) int {
	t.Switches = append(t.Switches, TopoSwitch{Name: name})
	return len(t.Switches) - 1
}

// AddHost appends a protocol-level host attached to switch sw.
func (t *Topology) AddHost(name string, ip proto.IP, sw int, rate int64, delay sim.Time) int {
	t.Hosts = append(t.Hosts, TopoHost{Name: name, IP: ip, Switch: sw, Rate: rate, Delay: delay})
	return len(t.Hosts) - 1
}

// AddLink appends a switch-to-switch link.
func (t *Topology) AddLink(a, b int, rate int64, delay sim.Time) int {
	t.Links = append(t.Links, TopoLink{A: a, B: b, Rate: rate, Delay: delay})
	return len(t.Links) - 1
}

// MakeExternal converts host slot i into a detailed-host attachment point.
func (t *Topology) MakeExternal(i int) {
	t.Hosts[i].External = true
}

// Boundary is a cross-partition link whose two halves must be wired through
// a synchronized channel.
type Boundary struct {
	Link         int // index into Topology.Links
	PartA, PartB int
	PortA, PortB *ExtPort
}

// Build instantiates the topology, split into partitions according to
// assign (assign[switchIdx] = partition id, ids 0..max contiguous). Hosts
// follow their switch's partition. namer names each partition component;
// nil derives "name.pN". A nil or all-zero assign yields one network.
type Built struct {
	// Parts holds one Network per partition.
	Parts []*Network
	// Hosts maps host slot index to its protocol-level host (nil for
	// external slots).
	Hosts []*Host
	// HostPart maps host slot index to partition id.
	HostPart []int
	// Exts maps external host slot index to its attachment port.
	Exts map[int]*ExtPort
	// Switches maps topology switch index to the instantiated switch.
	Switches []*Switch
	// SwitchPart maps topology switch index to partition id.
	SwitchPart []int
	// Boundaries lists cross-partition links to be wired by decomp.
	Boundaries []Boundary
}

// Build instantiates the topology across partitions.
func (t *Topology) Build(name string, seed uint64, assign []int, namer func(part int) string) *Built {
	if assign == nil {
		assign = make([]int, len(t.Switches))
	}
	if len(assign) != len(t.Switches) {
		panic("netsim: assign length != switch count")
	}
	nparts := 0
	for _, p := range assign {
		if p+1 > nparts {
			nparts = p + 1
		}
	}
	if namer == nil {
		namer = func(p int) string {
			if nparts == 1 {
				return name
			}
			return fmt.Sprintf("%s.p%d", name, p)
		}
	}

	b := &Built{
		Parts:      make([]*Network, nparts),
		Hosts:      make([]*Host, len(t.Hosts)),
		HostPart:   make([]int, len(t.Hosts)),
		Exts:       make(map[int]*ExtPort),
		Switches:   make([]*Switch, len(t.Switches)),
		SwitchPart: append([]int(nil), assign...),
	}
	for p := 0; p < nparts; p++ {
		b.Parts[p] = New(namer(p), seed)
	}
	for i, ts := range t.Switches {
		sw := b.Parts[assign[i]].AddSwitch(ts.Name)
		sw.TransparentClock = ts.TC
		b.Switches[i] = sw
	}

	// hostIface[i] = switch-local iface index serving host slot i.
	hostIface := make([]int, len(t.Hosts))
	for i, th := range t.Hosts {
		part := assign[th.Switch]
		b.HostPart[i] = part
		net := b.Parts[part]
		sw := b.Switches[th.Switch]
		if th.External {
			p := net.AddExternal(sw, th.Name, th.Rate, th.IP)
			b.Exts[i] = p
			for fi, f := range sw.ifaces {
				if f == p.iface {
					hostIface[i] = fi
				}
			}
			continue
		}
		h := net.AddHost(th.Name, th.IP)
		hostIface[i] = net.ConnectHostSwitch(h, sw, th.Rate, th.Delay)
		b.Hosts[i] = h
	}

	// linkIface[li] = (iface idx on A, iface idx on B).
	type pair struct{ a, b int }
	linkIface := make([]pair, len(t.Links))
	for li, l := range t.Links {
		pa, pb := assign[l.A], assign[l.B]
		sa, sb := b.Switches[l.A], b.Switches[l.B]
		if pa == pb {
			ai, bi := b.Parts[pa].ConnectSwitches(sa, sb, l.Rate, l.Delay)
			linkIface[li] = pair{ai, bi}
			continue
		}
		ea := b.Parts[pa].AddExternal(sa, fmt.Sprintf("x%d.a", li), l.Rate)
		eb := b.Parts[pb].AddExternal(sb, fmt.Sprintf("x%d.b", li), l.Rate)
		ea.SetEncode(true)
		eb.SetEncode(true)
		var ai, bi int
		for fi, f := range sa.ifaces {
			if f == ea.iface {
				ai = fi
			}
		}
		for fi, f := range sb.ifaces {
			if f == eb.iface {
				bi = fi
			}
		}
		linkIface[li] = pair{ai, bi}
		b.Boundaries = append(b.Boundaries, Boundary{Link: li, PartA: pa, PartB: pb, PortA: ea, PortB: eb})
	}

	t.installGlobalRoutes(b, hostIface, func(li int) (int, int) {
		p := linkIface[li]
		return p.a, p.b
	})
	return b
}

// installGlobalRoutes computes shortest paths on the whole topology and
// installs next hops on every switch in every partition. Equal-cost paths
// are spread per destination address (deterministic hash), the static
// analog of ECMP — essential for fat trees, whose capacity lives in the
// multiplicity of core paths.
func (t *Topology) installGlobalRoutes(b *Built, hostIface []int, linkIfaces func(li int) (aIface, bIface int)) {
	ns := len(t.Switches)
	type edge struct {
		nb    int
		iface int // local iface index on this switch for this link
	}
	adj := make([][]edge, ns)
	for li, l := range t.Links {
		ai, bi := linkIfaces(li)
		adj[l.A] = append(adj[l.A], edge{nb: l.B, iface: ai})
		adj[l.B] = append(adj[l.B], edge{nb: l.A, iface: bi})
	}
	// nexts[s][t] = all ifaces on s that start a shortest path toward t.
	nexts := make([][][]int, ns)
	for i := range nexts {
		nexts[i] = make([][]int, ns)
	}
	dist := make([]int, ns)
	for target := 0; target < ns; target++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[target] = 0
		queue := []int{target}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				if dist[e.nb] < 0 {
					dist[e.nb] = dist[u] + 1
					queue = append(queue, e.nb)
				}
			}
		}
		for v := 0; v < ns; v++ {
			if v == target || dist[v] < 0 {
				continue
			}
			for _, e := range adj[v] {
				if dist[e.nb] == dist[v]-1 {
					nexts[v][target] = append(nexts[v][target], e.iface)
				}
			}
		}
	}

	for hi, th := range t.Hosts {
		tgt := th.Switch
		h := uint64(th.IP) * 0x9e3779b97f4a7c15 >> 32
		for si := range t.Switches {
			sw := b.Switches[si]
			if si == tgt {
				sw.SetRoute(th.IP, hostIface[hi])
			} else if cands := nexts[si][tgt]; len(cands) > 0 {
				sw.SetRoute(th.IP, cands[h%uint64(len(cands))])
			}
		}
	}
}
