package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// TestFlowCacheHits verifies the forwarding hot path is actually served from
// the flow cache: the first packet to a destination misses and fills, every
// subsequent one hits.
func TestFlowCacheHits(t *testing.T) {
	n, h1, h2, sw := buildStar()
	got := 0
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	const pkts = 5
	h1.SetApp(AppFunc(func(h *Host) {
		for i := 0; i < pkts; i++ {
			h.SendUDP(h2.IP(), 1, 9, nil, 0)
		}
	}))
	runSeq(1*sim.Millisecond, n)
	if got != pkts {
		t.Fatalf("delivered %d/%d", got, pkts)
	}
	if sw.FlowCacheHits != pkts-1 {
		t.Fatalf("FlowCacheHits = %d, want %d (first packet fills, rest hit)", sw.FlowCacheHits, pkts-1)
	}
}

// TestFlowCacheInvalidatedOnSetRoute proves a route change takes effect even
// for a destination whose next hop is already cached: packets follow the new
// route, not the stale cache entry.
func TestFlowCacheInvalidatedOnSetRoute(t *testing.T) {
	n, h1, h2, sw := buildStar()
	h2got, h1got := 0, 0
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { h2got++ })
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Second)
	send := func() {
		h1.SendUDP(h2.IP(), 1, 9, nil, 0)
		s.Run()
	}
	send() // fills the cache with h2's real next hop
	send() // hit
	if sw.FlowCacheHits != 1 {
		t.Fatalf("FlowCacheHits = %d, want 1", sw.FlowCacheHits)
	}
	// Redirect h2's address out the port toward h1. h1 receives the
	// mis-routed frames and silently drops them (wrong destination IP).
	h1got = int(h1.RxPackets)
	sw.SetRoute(h2.IP(), 0)
	send()
	if h2got != 2 {
		t.Fatalf("h2 got %d packets after reroute, want 2", h2got)
	}
	if int(h1.RxPackets) != h1got+1 {
		t.Fatalf("rerouted packet did not follow the new route (h1 RxPackets %d, want %d)",
			h1.RxPackets, h1got+1)
	}
}

// TestFlowCacheInvalidatedOnTopologyChange checks that every topology
// mutation that can change a next hop clears the cache: connecting a host,
// connecting two switches, adding an external port, and recomputing routes.
func TestFlowCacheInvalidatedOnTopologyChange(t *testing.T) {
	n := New("net", 1)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, sim.Microsecond)
	n.ComputeRoutes()

	fill := func() {
		if _, ok := sw.lookup(h1.IP()); !ok {
			t.Fatal("no route to h1")
		}
		e := &sw.fcache[uint32(h1.IP())&(flowCacheSize-1)]
		if !e.ok {
			t.Fatal("lookup did not fill the flow cache")
		}
	}
	assertEmpty := func(step string) {
		t.Helper()
		for i := range sw.fcache {
			if sw.fcache[i].ok {
				t.Fatalf("%s left a live flow-cache entry at slot %d", step, i)
			}
		}
	}

	fill()
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h2, sw, 10*sim.Gbps, sim.Microsecond)
	assertEmpty("ConnectHostSwitch")

	fill()
	sw2 := n.AddSwitch("sw2")
	n.ConnectSwitches(sw, sw2, 10*sim.Gbps, sim.Microsecond)
	assertEmpty("ConnectSwitches")

	fill()
	n.AddExternal(sw, "ext", 10*sim.Gbps, proto.HostIP(9))
	assertEmpty("AddExternal")

	fill()
	n.ComputeRoutes()
	assertEmpty("ComputeRoutes")
}
