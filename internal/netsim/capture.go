package netsim

import (
	"repro/internal/pcap"
	"repro/internal/proto"
	"repro/internal/sim"
)

// AttachPcap taps an interface into a pcap writer: every frame the
// interface transmits is recorded with its virtual timestamp. Elided
// virtual payloads appear as pcap snap-length truncation, so standard
// tools (tcpdump, Wireshark) read the captures directly.
func AttachPcap(i *Iface, w *pcap.Writer) {
	i.Tap = func(now sim.Time, f *proto.Frame) {
		// Errors deliberately stop the capture rather than the simulation.
		if err := w.WritePacket(now, f.WireLen(), proto.AppendFrame(nil, f)); err != nil {
			i.Tap = nil
		}
	}
}
