package netsim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Network implements core.Stateful: every piece of mutable simulation state
// — PRNGs, per-host and per-switch counters, interface transmitter clocks,
// installed TCP connection numerics — serializes, and every delivery sink a
// pending event can target carries a stable name derived from build order.
//
// Not captured, by design: routing tables and topology (rebuilt
// deterministically from the same build calls), the switch flow cache (a
// pure cache; dropped caches only perturb FlowCacheHits, which is therefore
// excluded from checkpoint digests), and TCP connections created
// dynamically mid-run (their identity lives in callbacks a fresh build
// cannot reproduce — restoring one surfaces core.ErrNotCheckpointable).

// namedReg is one deferred named-event registration (see Network.Attach).
type namedReg struct {
	suffix string
	fn     func(sim.NamedArgs)
	h      int32
}

// RegisterNamed registers a named-event handler under a network-scoped
// suffix and returns an index for PostNamed. Before Attach the
// registration is deferred; afterwards it lands on the scheduler
// immediately. Registration order must be deterministic — it follows build
// order, like everything else here.
func (n *Network) RegisterNamed(suffix string, fn func(sim.NamedArgs)) int {
	r := namedReg{suffix: suffix, fn: fn, h: -1}
	if n.env.Sched != nil {
		r.h = n.env.RegisterNamed("net/"+n.name+"/"+suffix, fn)
	}
	n.regs = append(n.regs, r)
	return len(n.regs) - 1
}

// namedHandle resolves a RegisterNamed index to its scheduler handle.
func (n *Network) namedHandle(idx int) int32 {
	h := n.regs[idx].h
	if h < 0 {
		panic("netsim: " + n.name + ": PostNamed before Attach")
	}
	return h
}

// PostNamed schedules the idx-th registered handler at absolute time t. It
// orders identically to an Env.Post at the same call position.
func (n *Network) PostNamed(t sim.Time, idx int, args sim.NamedArgs) {
	n.env.PostNamed(t, n.namedHandle(idx), args)
}

// RegisterNamed registers a handler scoped to the host's network.
func (h *Host) RegisterNamed(suffix string, fn func(sim.NamedArgs)) int {
	return h.net.RegisterNamed(suffix, fn)
}

// PostNamed schedules a registered handler d from now (mirroring Host.Post,
// which the closure-based call sites used).
func (h *Host) PostNamed(d sim.Time, idx int, args sim.NamedArgs) {
	h.net.PostNamed(h.net.env.Now()+d, idx, args)
}

// StartRestored implements core.Stateful: adopt the run window but seed no
// initial events — in particular, host applications do not start, because
// their scheduled work rides in the checkpoint's event section.
func (n *Network) StartRestored(end sim.Time) {
	n.end = end
	n.started = true
}

// WalkSinks implements core.Stateful. Names are positional in build order,
// which identical builds reproduce exactly.
func (n *Network) WalkSinks(fn func(name string, s core.Sink)) {
	for i, h := range n.hosts {
		if h.iface == nil {
			continue
		}
		fn(fmt.Sprintf("h/%d/enq", i), &h.iface.enqSink)
		fn(fmt.Sprintf("h/%d/rx", i), &h.iface.rxSink)
	}
	for i, sw := range n.switches {
		for j, ifc := range sw.ifaces {
			fn(fmt.Sprintf("sw/%d/if/%d/enq", i, j), &ifc.enqSink)
			fn(fmt.Sprintf("sw/%d/if/%d/rx", i, j), &ifc.rxSink)
		}
	}
	for i, p := range n.exts {
		fn(fmt.Sprintf("ext/%d/out", i), &p.outSink)
	}
}

func snapshotIface(e *snap.Encoder, i *Iface) {
	e.I64(int64(i.busyUntil))
	e.U64(i.TxPackets)
	e.U64(i.TxBytes)
	e.U64(i.Drops)
	e.U64(i.Marks)
	e.I64(i.bgRate)
	e.I64(int64(i.bgDelay))
}

func restoreIface(d *snap.Decoder, i *Iface) {
	i.busyUntil = sim.Time(d.I64())
	i.TxPackets = d.U64()
	i.TxBytes = d.U64()
	i.Drops = d.U64()
	i.Marks = d.U64()
	i.bgRate = d.I64()
	i.bgDelay = sim.Time(d.I64())
}

// sortedTCPKeys returns the host's connection keys in a deterministic
// order (maps iterate randomly).
func sortedTCPKeys(h *Host) []tcpKey {
	keys := make([]tcpKey, 0, len(h.tcpConns))
	for k := range h.tcpConns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].remote != keys[b].remote {
			return keys[a].remote < keys[b].remote
		}
		if keys[a].rport != keys[b].rport {
			return keys[a].rport < keys[b].rport
		}
		return keys[a].lport < keys[b].lport
	})
	return keys
}

// SnapshotState implements core.Stateful.
func (n *Network) SnapshotState(e *snap.Encoder) error {
	e.U64(n.rng.State())
	e.U64(n.encRx)
	e.U64(n.encTx)
	e.U64(n.flowEvents)
	e.U32(uint32(len(n.hosts)))
	for _, h := range n.hosts {
		e.U64(uint64(h.ip)) // identity check on restore
		e.U64(h.RxPackets)
		e.U64(h.TxPackets)
		e.U64(h.rng.State())
		e.Bool(h.iface != nil)
		if h.iface != nil {
			snapshotIface(e, h.iface)
		}
		keys := sortedTCPKeys(h)
		e.U32(uint32(len(keys)))
		for _, k := range keys {
			e.U64(uint64(k.remote))
			e.U32(uint32(k.rport)<<16 | uint32(k.lport))
			h.tcpConns[k].Snapshot(e)
		}
	}
	e.U32(uint32(len(n.switches)))
	for _, sw := range n.switches {
		e.U64(sw.RxPackets)
		e.U64(sw.NoRoute)
		e.U32(uint32(len(sw.ifaces)))
		for _, ifc := range sw.ifaces {
			snapshotIface(e, ifc)
		}
	}
	e.U32(uint32(len(n.exts)))
	for _, p := range n.exts {
		e.U64(p.RxFrames)
	}
	return nil
}

// RestoreState implements core.Stateful. It runs on a freshly built,
// identically configured network after Attach; mismatched build shapes
// surface as typed errors.
func (n *Network) RestoreState(d *snap.Decoder) error {
	n.rng.SetState(d.U64())
	n.encRx = d.U64()
	n.encTx = d.U64()
	n.flowEvents = d.U64()
	if got := int(d.U32()); got != len(n.hosts) {
		return fmt.Errorf("%w: %s: snapshot has %d hosts, build has %d",
			core.ErrNotCheckpointable, n.name, got, len(n.hosts))
	}
	for _, h := range n.hosts {
		if ip := proto.IP(d.U64()); ip != h.ip {
			return fmt.Errorf("%w: %s: host order mismatch (%v vs %v)",
				core.ErrNotCheckpointable, n.name, ip, h.ip)
		}
		h.RxPackets = d.U64()
		h.TxPackets = d.U64()
		h.rng.SetState(d.U64())
		if d.Bool() {
			if h.iface == nil {
				return fmt.Errorf("%w: %s: host %s lost its interface",
					core.ErrNotCheckpointable, n.name, h.name)
			}
			restoreIface(d, h.iface)
		}
		nconns := int(d.U32())
		restored := make(map[tcpKey]bool, nconns)
		for c := 0; c < nconns; c++ {
			remote := proto.IP(d.U64())
			ports := d.U32()
			key := tcpKey{remote: remote, rport: uint16(ports >> 16), lport: uint16(ports)}
			conn, ok := h.tcpConns[key]
			if !ok {
				// A connection created dynamically mid-run: the fresh build
				// cannot reproduce its callbacks, so the checkpoint is not
				// restorable. (Build-time flows — NewFlow before the run —
				// always exist here.)
				return fmt.Errorf("%w: %s: host %s has no TCP conn %v:%d->%d (created mid-run?)",
					core.ErrNotCheckpointable, n.name, h.name, key.remote, key.rport, key.lport)
			}
			if err := conn.Restore(d); err != nil {
				return err
			}
			restored[key] = true
		}
		// Build-time conns absent from the snapshot were torn down before
		// the checkpoint; drop them from the demux table to match.
		for k := range h.tcpConns {
			if !restored[k] {
				delete(h.tcpConns, k)
			}
		}
	}
	if got := int(d.U32()); got != len(n.switches) {
		return fmt.Errorf("%w: %s: snapshot has %d switches, build has %d",
			core.ErrNotCheckpointable, n.name, got, len(n.switches))
	}
	for _, sw := range n.switches {
		sw.RxPackets = d.U64()
		sw.NoRoute = d.U64()
		if got := int(d.U32()); got != len(sw.ifaces) {
			return fmt.Errorf("%w: %s: switch %s iface count mismatch",
				core.ErrNotCheckpointable, n.name, sw.name)
		}
		for _, ifc := range sw.ifaces {
			restoreIface(d, ifc)
		}
		// The flow cache restores empty: it is a pure cache, and refills
		// behavior-identically on first use.
		sw.invalidateFlowCache()
	}
	if got := int(d.U32()); got != len(n.exts) {
		return fmt.Errorf("%w: %s: snapshot has %d external ports, build has %d",
			core.ErrNotCheckpointable, n.name, got, len(n.exts))
	}
	for _, p := range n.exts {
		p.RxFrames = d.U64()
	}
	return d.Err()
}
