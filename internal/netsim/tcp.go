package netsim

import (
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/tcpstack"
)

// Re-exported congestion-control selectors and constants so callers of the
// protocol-level simulator need not import tcpstack directly.
const (
	CCReno  = tcpstack.CCReno
	CCDCTCP = tcpstack.CCDCTCP
	MSS     = tcpstack.MSS
)

// CCAlgo re-exports tcpstack.CCAlgo.
type CCAlgo = tcpstack.CCAlgo

// TCPConn re-exports tcpstack.Conn.
type TCPConn = tcpstack.Conn

type tcpKey struct {
	remote proto.IP
	rport  uint16
	lport  uint16
}

// Output implements tcpstack.Transport on protocol-level hosts: frames go
// straight to the link with zero host processing cost beyond the simulator's
// per-packet accounting — the ns-3 modeling gap the paper measures.
func (h *Host) Output(f *proto.Frame) { h.transmit(f) }

// PostRTO implements tcpstack.Transport: the firing is a named event
// carrying (host, connection key), so pending retransmission timers
// serialize into checkpoints instead of hiding in bound closures.
func (h *Host) PostRTO(c *TCPConn, d sim.Time) {
	env := h.net.env
	env.PostNamed(env.Now()+d, h.net.namedHandle(h.net.tcpRtoH), sim.NamedArgs{
		uint64(h.ip),
		uint64(c.Remote()),
		uint64(c.RemotePort())<<16 | uint64(c.LocalPort()),
	})
}

// tcpRTOFire dispatches a posted RTO named event back to its connection.
// A vanished host or connection (flow completed and unregistered after the
// event was posted) makes the firing a no-op, exactly like a stale closure
// firing did.
func (n *Network) tcpRTOFire(args sim.NamedArgs) {
	h, ok := n.hostByIP[proto.IP(args[0])]
	if !ok {
		return
	}
	key := tcpKey{remote: proto.IP(args[1]), rport: uint16(args[2] >> 16), lport: uint16(args[2])}
	if c, ok := h.tcpConns[key]; ok {
		c.RTOFire()
	}
}

// LocalMAC implements tcpstack.Transport.
func (h *Host) LocalMAC() proto.MAC { return h.mac }

// NewFlow creates a pre-established bulk flow from src to dst. bytes is the
// transfer size (0 = run until simulation end). onDone, if non-nil, fires on
// the sender when the last byte is acknowledged. The returned conns are
// (sender, receiver); data flows once the sender's StartFlow runs.
func NewFlow(src, dst *Host, sport, dport uint16, algo CCAlgo, bytes int64, onDone func()) (*TCPConn, *TCPConn) {
	snd := tcpstack.NewSender(src, dst.ip, dst.mac, sport, dport, algo, bytes, onDone)
	rcv := tcpstack.NewReceiver(dst, src.ip, src.mac, dport, sport, algo)
	src.tcpConns[tcpKey{remote: dst.ip, rport: dport, lport: sport}] = snd
	dst.tcpConns[tcpKey{remote: src.ip, rport: sport, lport: dport}] = rcv
	return snd, rcv
}

// RegisterTCP installs an externally created conn (e.g., whose peer lives on
// a detailed host) into this host's demux table.
func (h *Host) RegisterTCP(remote proto.IP, rport, lport uint16, c *TCPConn) {
	h.tcpConns[tcpKey{remote: remote, rport: rport, lport: lport}] = c
}

// UnregisterTCP removes a conn from the demux table. Workloads that churn
// through many short flows tear each one down on completion so the table
// does not grow without bound.
func (h *Host) UnregisterTCP(remote proto.IP, rport, lport uint16) {
	delete(h.tcpConns, tcpKey{remote: remote, rport: rport, lport: lport})
}
