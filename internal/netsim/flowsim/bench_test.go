package flowsim_test

import (
	"testing"

	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/flowsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
)

// BenchmarkScaleMixed1M is the tentpole scaling benchmark, recorded into
// BENCH_scale.json by scripts/bench.sh: a 10⁶-endpoint Clos (489 pods ×
// 32 leaves × 64 hosts/leaf = 1,001,472 slots, default-up routing) carries
// a packet-level incast foreground in one pod while the flow-level tier
// holds elephants on 30% of all endpoints. No background host is ever
// materialized; the fluid tier's whole event bill is the admission wave.
// Reported metrics: endpoints (fabric size), x-events (packet-level event
// projection over flow-tier events — the mixed-fidelity speedup), pkts/s
// (foreground packet throughput per wall-clock second).
func BenchmarkScaleMixed1M(b *testing.B) {
	spec := topogen.ClosSpec{
		Pods: 489, LeafPerPod: 32, SpinePerPod: 8, Cores: 32, HostsPerLeaf: 64,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps, CoreRate: 100 * sim.Gbps,
		LinkDelay: sim.Microsecond, Lazy: true, DefaultUp: true,
	}
	const dur = 2 * sim.Millisecond
	var endpoints int
	var pkts, events, proj uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, m := topogen.Clos(spec)
		bt := topo.Build("mixed1m", 42, nil, nil)
		endpoints = m.TotalHosts()

		slots := m.HostSlots[0][0][:33]
		hosts := make([]*netsim.Host, len(slots))
		for j, slot := range slots {
			hosts[j] = bt.MaterializeSlot(slot)
		}
		weng := workload.Install(hosts, workload.Spec{
			Pattern: workload.Incast{Victim: 0},
			Sizes:   workload.Fixed(20_000),
			Arrival: workload.Open{FlowsPerSec: 1_000},
			Seed:    42,
		})

		all := make([]int, 0, endpoints)
		for _, pod := range m.HostSlots {
			for _, leaf := range pod {
				all = append(all, leaf...)
			}
		}
		tr := &workload.Trace{}
		perm := sim.NewRand(42).Perm(endpoints)
		k := int(0.3 * float64(endpoints) / 2)
		tr.Flows = make([]workload.TraceFlow, k)
		for j := 0; j < k; j++ {
			tr.Flows[j] = workload.TraceFlow{Src: perm[2*j], Dst: perm[2*j+1], Bytes: 1 << 30}
		}
		feng := flowsim.Install(bt, all, flowsim.Spec{Trace: tr, Seed: 7})

		s := orch.New()
		instantiate.WirePartitions(s, topo, bt, true)
		s.RunSequential(dur)

		wr := weng.Collect()
		fr := feng.Collect()
		if wr.FlowsCompleted == 0 {
			b.Fatal("foreground idle under background load")
		}
		if fr.ActiveFlows != k {
			b.Fatalf("background admitted %d/%d elephants", fr.ActiveFlows, k)
		}
		if fr.ProjPacketEvents < 10*fr.Events {
			b.Fatalf("flow tier spent %d events vs %d projected — want ≥10×", fr.Events, fr.ProjPacketEvents)
		}
		for _, sw := range bt.Switches {
			pkts += sw.RxPackets
		}
		events += fr.Events
		proj += fr.ProjPacketEvents
	}
	b.ReportMetric(float64(endpoints), "endpoints")
	b.ReportMetric(float64(proj)/float64(events), "x-events")
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}
