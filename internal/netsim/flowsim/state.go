package flowsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snap"
)

// Engine implements core.AuxState so mixed-fidelity runs checkpoint: the
// fluid trajectory rides in the snapshot next to the packet-level
// substrate (whose per-iface reservations Network snapshots itself).
//
// Only replica 0 is encoded — all replicas hold identical state by
// construction — and paths, rates, and link tables are NOT stored:
// RestoreState re-resolves each flow's path against the freshly built
// fabric and recomputes rates, reproducing them bit-for-bit from the same
// routing tables and arithmetic. The pending wake event itself rides in
// the checkpoint's event section under the engine's registered name.

// SnapshotState implements core.AuxState.
func (e *Engine) SnapshotState(enc *snap.Encoder) error {
	r := e.reps[0]
	enc.U64(r.rng.State())
	enc.I64(int64(r.lastAdvance))
	enc.I64(int64(r.nextArrival))
	enc.I64(int64(r.nextWake))
	enc.U64(uint64(r.traceCur))
	enc.U64(uint64(r.started))
	enc.U64(uint64(r.completed))
	enc.U64(uint64(r.skipped))
	enc.U64(uint64(r.unroutable))
	enc.I64(r.bytesModeled)
	enc.U64(r.events)
	enc.U64(r.pktEvProj)

	// Endpoint sequence counters, sparse: at any checkpoint the vast
	// majority of a 10⁶-endpoint set has launched nothing.
	nz := uint32(0)
	for _, s := range r.seqs {
		if s != 0 {
			nz++
		}
	}
	enc.U32(nz)
	for i, s := range r.seqs {
		if s != 0 {
			enc.U32(uint32(i))
			enc.U32(uint32(s))
		}
	}

	enc.U32(uint32(len(r.flows)))
	for _, f := range r.flows {
		enc.U32(uint32(f.src))
		enc.U32(uint32(f.dst))
		enc.I64(f.bytes)
		enc.F64(f.remaining)
		enc.I64(int64(f.start))
	}
	r.fct.Snapshot(enc)
	return nil
}

// RestoreState implements core.AuxState: decode once, then rebuild every
// replica's state from the decoded trajectory — each re-resolves paths
// and reapplies reservations against its own partition's ifaces (writing
// the same values Network.RestoreState already placed there, which keeps
// the two layers consistent without ordering constraints between them).
func (e *Engine) RestoreState(dec *snap.Decoder) error {
	rngState := dec.U64()
	lastAdvance := sim.Time(dec.I64())
	nextArrival := sim.Time(dec.I64())
	nextWake := sim.Time(dec.I64())
	traceCur := int(dec.U64())
	started := int(dec.U64())
	completed := int(dec.U64())
	skipped := int(dec.U64())
	unroutable := int(dec.U64())
	bytesModeled := dec.I64()
	events := dec.U64()
	pktEvProj := dec.U64()

	nz := int(dec.U32())
	seqIdx := make([]uint32, nz)
	seqVal := make([]uint32, nz)
	for i := 0; i < nz; i++ {
		seqIdx[i] = dec.U32()
		seqVal[i] = dec.U32()
	}

	nf := int(dec.U32())
	type flowRec struct {
		src, dst uint32
		bytes    int64
		rem      float64
		start    sim.Time
	}
	recs := make([]flowRec, nf)
	for i := range recs {
		recs[i] = flowRec{
			src:   dec.U32(),
			dst:   dec.U32(),
			bytes: dec.I64(),
			rem:   dec.F64(),
			start: sim.Time(dec.I64()),
		}
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("flowsim: %w", err)
	}

	for _, r := range e.reps {
		r.rng.SetState(rngState)
		r.lastAdvance = lastAdvance
		r.nextArrival = nextArrival
		r.nextWake = nextWake
		r.traceCur = traceCur
		r.started = started
		r.completed = completed
		r.skipped = skipped
		r.unroutable = unroutable
		r.bytesModeled = bytesModeled
		r.events = events
		r.pktEvProj = pktEvProj

		for i := range r.seqs {
			r.seqs[i] = 0
		}
		for i := 0; i < nz; i++ {
			idx := int(seqIdx[i])
			if idx >= len(r.seqs) {
				return fmt.Errorf("flowsim: snapshot endpoint %d outside set of %d", idx, len(r.seqs))
			}
			r.seqs[idx] = int32(seqVal[i])
		}

		r.flows = r.flows[:0]
		r.links = make(map[uint64]*blink)
		r.active = r.active[:0]
		for i, rec := range recs {
			if int(rec.src) >= len(e.endpoints) || int(rec.dst) >= len(e.endpoints) {
				return fmt.Errorf("flowsim: snapshot flow %d endpoints outside set", i)
			}
			f := &flow{
				src:       int32(rec.src),
				dst:       int32(rec.dst),
				bytes:     rec.bytes,
				remaining: rec.rem,
				start:     rec.start,
			}
			if !r.resolve(f) {
				return fmt.Errorf("flowsim: snapshot flow %d (%d→%d) no longer routes", i, rec.src, rec.dst)
			}
			r.flows = append(r.flows, f)
			for _, bl := range f.links {
				bl.nflows++
				if bl.activeIdx < 0 {
					bl.activeIdx = len(r.active)
					r.active = append(r.active, bl)
				}
			}
		}
		r.recompute()
		r.applyReservations()
	}
	// One FCT decode, shared: restore replica 0's reservoir then copy its
	// decoded form to the others by re-walking the same bytes is wasteful;
	// instead restore 0 and clone state into siblings via snapshot replay.
	if err := e.reps[0].fct.Restore(dec); err != nil {
		return fmt.Errorf("flowsim: fct: %w", err)
	}
	for _, r := range e.reps[1:] {
		var tmp snap.Encoder
		e.reps[0].fct.Snapshot(&tmp)
		d := snap.NewDecoder(tmp.Bytes())
		if err := r.fct.Restore(d); err != nil {
			return fmt.Errorf("flowsim: fct replica: %w", err)
		}
	}
	return nil
}
