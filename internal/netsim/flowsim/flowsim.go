// Package flowsim is the flow-level background-traffic tier: it models
// bulk flows as fluid rates under max-min fair sharing over the fabric's
// link graph instead of as individual frames. Time advances only at flow
// starts, completions, and the rate recomputations they trigger, so the
// scheduler cost is O(active flows), independent of flow size — a 10⁶-
// endpoint background mix costs thousands of events where the packet tier
// would cost billions of frames.
//
// The tier coexists with the packet-level substrate on one fabric
// (SplitSim's mixed-fidelity split: only flows under study pay packet-
// level cost). Coupling is one-way at shared links: whenever a link's
// aggregate background rate changes, the engine calls Iface.Reserve on
// the transmitter, which shrinks the capacity foreground frames serialize
// at and adds an M/M/1-style queueing delay. Foreground traffic does not
// push back on background flows; the fluid trajectory is a pure function
// of virtual time.
//
// Determinism by replication: partitioned builds get one replica of the
// whole fluid computation per partition. Every replica computes the
// identical global trajectory from the same seed (flow arrivals, paths,
// rates — all pure), but applies reservations only to ifaces its own
// partition owns. No cross-partition state is touched, so foreground
// digests stay bit-identical across sequential, coupled, and parallel
// placements with the background tier active.
package flowsim

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/netsim/workload"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Spec configures the background-flow mix. Exactly one arrival source must
// be set: FlowsPerSec (open-loop Poisson over the endpoint set) or Trace.
type Spec struct {
	// Pattern and Sizes draw each synthetic flow's destination and size,
	// exactly as in the packet tier. Ignored under Trace.
	Pattern workload.Pattern
	Sizes   workload.SizeDist

	// FlowsPerSec is the per-endpoint open-loop arrival rate; the engine
	// draws from the aggregate Poisson process of rate n·FlowsPerSec
	// (superposition), so arrival cost does not scale with endpoints.
	FlowsPerSec float64

	// Trace replays a recorded arrival schedule instead (same format the
	// packet tier consumes), indices into the endpoint set.
	Trace *workload.Trace

	Seed uint64

	// MTU is the payload bytes per packet the fluid model assumes when
	// accounting per-packet wire overhead (default 1448, matching the
	// packet tier).
	MTU int
	// FCTCap bounds the flow-completion-time reservoir (default 4096).
	FCTCap int
}

func (s *Spec) defaults() {
	if s.MTU == 0 {
		s.MTU = 1448
	}
	if s.FCTCap == 0 {
		s.FCTCap = 4096
	}
}

// perPktOverhead is the per-packet wire overhead the packet tier pays:
// Ethernet + IPv4 + UDP headers plus the 13-byte workload flow header.
// The fluid model drains wire bytes, not goodput bytes, so flow-level and
// packet-level completion times stay comparable.
const perPktOverhead = proto.EthernetLen + proto.IPv4Len + proto.UDPLen + 13

// rateInf stands in for "unconstrained" (a path with no finite-capacity
// links): 10¹⁵ bit/s drains any flow in under a microsecond without
// introducing float infinities into the arithmetic.
const rateInf = 1e15

// completeEps is the residual (in bits) below which a flow counts as
// drained; it absorbs float rounding between the scheduled completion
// time (ceiled to whole nanoseconds) and the advance arithmetic.
const completeEps = 1e-3

// Directed-link key packing: bits 0..31 index (topology link or host
// slot), bit 32 access flag, bit 33 direction.
const (
	dirFwd  = 0 // A→B on a topology link; host→switch on an access link
	dirRev  = 1 // B→A; switch→host
	keyAcc  = 1 << 32
	keyRev  = 1 << 33
	maxHops = 64 // routing-loop guard on path walks
)

func topoLinkKey(li int32, dir int8) uint64 {
	k := uint64(uint32(li))
	if dir == dirRev {
		k |= keyRev
	}
	return k
}

func accessKey(slot int32, dir int8) uint64 {
	k := uint64(uint32(slot)) | keyAcc
	if dir == dirRev {
		k |= keyRev
	}
	return k
}

// hop is one step of a path walk: leaving a switch through iface idx
// traverses topology link li to switch next.
type hop struct {
	li   int32
	next int32
	dir  int8
}

// blink is a directed link the fluid computation tracks: capacity, the
// number of active flows crossing it, and — when this replica's partition
// owns the transmitting iface — the handle reservations are applied to.
type blink struct {
	cap   float64       // bit/s
	iface *netsim.Iface // nil unless owned by this replica's partition
	resv  int64         // last reservation applied (bit/s)

	nflows    int
	activeIdx int // index in replica.active, -1 when idle

	// progressive-filling scratch
	avail   float64
	unfixed int
	sum     float64
}

// flow is one active background flow. links holds only finite-capacity
// directed links on its path; remaining counts wire bits (payload plus
// per-packet overhead) still to drain.
type flow struct {
	src, dst  int32 // endpoint indices
	bytes     int64
	remaining float64
	rate      float64 // bit/s, assigned by recompute
	share     float64 // recompute scratch
	start     sim.Time
	baseDelay sim.Time // propagation + switch pipeline + store-and-forward fill
	hops      int32    // switches on the path
	links     []*blink
}

// Engine drives one background mix over a built fabric: one replica per
// partition, all computing the same trajectory.
type Engine struct {
	topo      *netsim.Topology
	b         *netsim.Built
	endpoints []int
	spec      Spec

	hops          map[uint64]hop // (switch, ifaceIdx) → traversal
	switchLatency sim.Time
	reps          []*replica
}

// replica is the per-partition copy of the fluid state. Every field
// evolves identically across replicas; only iface pointers (and thus the
// side effects of Reserve) differ.
type replica struct {
	eng   *Engine
	net   *netsim.Network
	part  int
	nextH int

	rng    *sim.Rand
	seqs   []int32 // per-endpoint flow sequence numbers (Pattern input)
	flows  []*flow // active flows in arrival order
	links  map[uint64]*blink
	active []*blink // links with ≥1 active flow, first-use order

	lastAdvance sim.Time
	nextArrival sim.Time // -1 when the arrival process is exhausted
	nextWake    sim.Time // earliest outstanding posted wake, -1 if none
	traceCur    int

	started, completed, skipped, unroutable int
	bytesModeled                            int64
	events                                  uint64
	pktEvProj                               uint64
	fct                                     *stats.Latency
}

// Install sets up the background tier over b for the given endpoint set
// (host slot indices — lazy slots are fine and are never materialized).
// Call it after netsim.Build and before the run starts; registration
// order matters for determinism, like everything else.
func Install(b *netsim.Built, endpoints []int, spec Spec) *Engine {
	spec.defaults()
	if len(endpoints) < 2 {
		panic("flowsim: need at least two endpoints")
	}
	if spec.Trace != nil {
		if spec.FlowsPerSec != 0 {
			panic("flowsim: set FlowsPerSec or Trace, not both")
		}
		if err := spec.Trace.Validate(len(endpoints)); err != nil {
			panic(err)
		}
	} else {
		if spec.FlowsPerSec <= 0 {
			panic("flowsim: FlowsPerSec must be positive (or provide a Trace)")
		}
		if spec.Pattern == nil || spec.Sizes == nil {
			panic("flowsim: synthetic arrivals need Pattern and Sizes")
		}
	}
	topo := b.Topo()
	if topo == nil {
		panic("flowsim: built fabric carries no topology")
	}
	eng := &Engine{
		topo:          topo,
		b:             b,
		endpoints:     endpoints,
		spec:          spec,
		switchLatency: b.Parts[0].SwitchLatency,
		hops:          make(map[uint64]hop, 2*len(topo.Links)),
	}
	for li := range topo.Links {
		l := &topo.Links[li]
		eng.hops[hopKey(int32(l.A), b.LinkIfaces[li][0])] = hop{li: int32(li), next: int32(l.B), dir: dirFwd}
		eng.hops[hopKey(int32(l.B), b.LinkIfaces[li][1])] = hop{li: int32(li), next: int32(l.A), dir: dirRev}
	}
	for p, net := range b.Parts {
		r := &replica{
			eng:         eng,
			net:         net,
			part:        p,
			rng:         sim.NewRand(spec.Seed ^ 0x9e3779b97f4a7c15),
			seqs:        make([]int32, len(endpoints)),
			links:       make(map[uint64]*blink),
			nextArrival: -1,
			nextWake:    -1,
			fct:         stats.NewReservoir(spec.FCTCap, spec.Seed^0xc3c3c3c3c3c3c3c3),
		}
		r.nextH = net.RegisterNamed(fmt.Sprintf("flowsim/%d/next", spec.Seed), r.fire)
		net.OnStart(func() {
			now := r.net.Env().Now()
			r.lastAdvance = now
			r.scheduleArrival(now)
			r.scheduleWake(now)
		})
		eng.reps = append(eng.reps, r)
	}
	return eng
}

// InstallSpec dispatches a workload.Spec by fidelity: FidelityFlow specs
// install here, translated field-for-field. (FidelityPacket specs go
// through workload.Install, which materializes hosts; the point of this
// entry is that flow specs never do.)
func InstallSpec(b *netsim.Built, endpoints []int, ws workload.Spec) *Engine {
	if ws.Fidelity != workload.FidelityFlow {
		panic("flowsim: InstallSpec is for FidelityFlow specs; use workload.Install for packet-level")
	}
	fs := Spec{
		Pattern: ws.Pattern,
		Sizes:   ws.Sizes,
		Seed:    ws.Seed,
		MTU:     ws.MTU,
		FCTCap:  ws.FCTCap,
	}
	switch a := ws.Arrival.(type) {
	case workload.Open:
		fs.FlowsPerSec = a.FlowsPerSec
	case *workload.Trace:
		fs.Trace = a
	case workload.Closed:
		panic("flowsim: the flow tier is open-loop; Closed arrivals need the packet tier")
	default:
		panic("flowsim: spec needs an Open or Trace arrival")
	}
	return Install(b, endpoints, fs)
}

func hopKey(sw, iface int32) uint64 { return uint64(uint32(sw))<<32 | uint64(uint32(iface)) }

// wireBits is the on-the-wire size of a flow in bits: payload plus
// per-packet overhead at the configured MTU.
func (e *Engine) wireBits(bytes int64) float64 {
	pkts := (bytes + int64(e.spec.MTU) - 1) / int64(e.spec.MTU)
	return float64(bytes+pkts*perPktOverhead) * 8
}

// lastPktWire is the wire size of a flow's final packet, used for the
// store-and-forward pipeline-fill term of the base delay.
func (e *Engine) lastPktWire(bytes int64) int {
	mtu := int64(e.spec.MTU)
	pkts := (bytes + mtu - 1) / mtu
	last := bytes - (pkts-1)*mtu
	return int(last) + perPktOverhead
}

// topoIface returns the transmitting iface of a directed topology link if
// this replica's partition owns it, else nil. At partition boundaries the
// iface is the external port's, which still lives on the owning switch.
func (r *replica) topoIface(li int32, dir int8) *netsim.Iface {
	l := &r.eng.topo.Links[li]
	sw, idx := l.A, r.eng.b.LinkIfaces[li][0]
	if dir == dirRev {
		sw, idx = l.B, r.eng.b.LinkIfaces[li][1]
	}
	if r.eng.b.SwitchPart[sw] != r.part || idx < 0 {
		return nil
	}
	return r.eng.b.Switches[sw].Ifaces()[idx]
}

// accessIface returns the transmitting iface of a host access link in the
// given direction if this partition owns it. Lazy slots that were never
// materialized have no ifaces — no foreground traffic crosses them, so
// there is nothing to throttle and nil is correct, not a loss. (A slot
// materialized after a blink was first cached keeps a nil iface; install
// foreground workloads before the background mix touches their slots.)
func (r *replica) accessIface(slot int32, dir int8) *netsim.Iface {
	b := r.eng.b
	th := &r.eng.topo.Hosts[slot]
	if dir == dirFwd { // host → switch: host-side transmitter
		if h := b.Hosts[slot]; h != nil && b.HostPart[slot] == r.part {
			return h.Iface()
		}
		return nil // external or unmaterialized: transmitter not in this network
	}
	// switch → host: switch-side transmitter
	if b.SwitchPart[th.Switch] != r.part {
		return nil
	}
	if th.External {
		if p := b.Exts[int(slot)]; p != nil {
			return p.Iface()
		}
		return nil
	}
	if h := b.Hosts[slot]; h != nil && h.Iface() != nil {
		return h.Iface().Peer()
	}
	return nil
}

// link returns the replica's blink for a directed link, creating it on
// first use.
func (r *replica) link(key uint64, cap int64, ifc func() *netsim.Iface) *blink {
	if bl, ok := r.links[key]; ok {
		return bl
	}
	bl := &blink{cap: float64(cap), iface: ifc(), activeIdx: -1}
	r.links[key] = bl
	return bl
}

// resolve walks the flow's path hop-for-hop with the same Switch.Route
// lookups the packet tier uses (so ECMP choices — and therefore which
// links carry the load — match exactly), collecting finite-capacity links
// and accumulating the rate-independent base delay: propagation, switch
// pipeline latency, and the store-and-forward fill of the last packet
// across every link after the first.
func (r *replica) resolve(f *flow) bool {
	eng := r.eng
	srcSlot := int32(eng.endpoints[f.src])
	dstSlot := int32(eng.endpoints[f.dst])
	srcTH := &eng.topo.Hosts[srcSlot]
	dstTH := &eng.topo.Hosts[dstSlot]

	lastWire := eng.lastPktWire(f.bytes)
	delay := srcTH.Delay + dstTH.Delay
	var fill sim.Time

	if srcTH.Rate > 0 {
		f.links = append(f.links, r.link(accessKey(srcSlot, dirFwd), srcTH.Rate,
			func() *netsim.Iface { return r.accessIface(srcSlot, dirFwd) }))
	}
	cur := srcTH.Switch
	nsw := int32(1)
	for cur != dstTH.Switch {
		out, ok := eng.b.Switches[cur].Route(dstTH.IP)
		if !ok {
			return false
		}
		hp, ok := eng.hops[hopKey(int32(cur), int32(out))]
		if !ok {
			return false // routed into an attachment port, not the fabric
		}
		l := &eng.topo.Links[hp.li]
		if l.Rate > 0 {
			li, dir := hp.li, hp.dir
			f.links = append(f.links, r.link(topoLinkKey(li, dir), l.Rate,
				func() *netsim.Iface { return r.topoIface(li, dir) }))
			fill += sim.TransmitTime(lastWire, l.Rate)
		}
		delay += l.Delay
		cur = int(hp.next)
		if nsw++; nsw > maxHops {
			return false
		}
	}
	if dstTH.Rate > 0 {
		f.links = append(f.links, r.link(accessKey(dstSlot, dirRev), dstTH.Rate,
			func() *netsim.Iface { return r.accessIface(dstSlot, dirRev) }))
		fill += sim.TransmitTime(lastWire, dstTH.Rate)
	}
	f.hops = nsw
	f.baseDelay = delay + sim.Time(nsw)*eng.switchLatency + fill
	return true
}

// fire is the single named-event handler: advance the fluid state to now,
// admit due arrivals, retire drained flows, recompute rates if membership
// changed, and schedule the next wake. Superseded wakes fire harmlessly —
// every step is idempotent at a given virtual time.
func (r *replica) fire(sim.NamedArgs) {
	now := r.net.Env().Now()
	r.events++
	r.net.NoteFlowEvents(1)
	if r.nextWake == now {
		r.nextWake = -1
	}
	r.advanceTo(now)
	changed := false
	for r.nextArrival >= 0 && r.nextArrival <= now {
		if r.startFlow(now) {
			changed = true
		}
		r.scheduleArrival(now)
	}
	if r.completeDue(now) {
		changed = true
	}
	if changed {
		r.recompute()
		r.applyReservations()
	}
	r.scheduleWake(now)
}

// advanceTo drains every active flow at its current rate over the elapsed
// virtual time.
func (r *replica) advanceTo(now sim.Time) {
	dt := now - r.lastAdvance
	if dt <= 0 {
		return
	}
	sec := float64(dt) / float64(sim.Second)
	for _, f := range r.flows {
		f.remaining -= f.rate * sec
	}
	r.lastAdvance = now
}

// startFlow admits the next arrival (trace tuple or synthetic draw).
// Returns false when the draw is a no-op (pattern returned -1 or self,
// or the path is unroutable) — counted, never fatal.
func (r *replica) startFlow(now sim.Time) bool {
	n := len(r.eng.endpoints)
	var src, dst int
	var bytes int64
	if tr := r.eng.spec.Trace; tr != nil {
		tf := tr.Flows[r.traceCur]
		r.traceCur++
		src, dst, bytes = tf.Src, tf.Dst, tf.Bytes
	} else {
		src = r.rng.Intn(n)
		seq := int(r.seqs[src])
		r.seqs[src]++
		dst = r.eng.spec.Pattern.Dst(r.rng, src, seq, n)
		if dst < 0 || dst == src {
			r.skipped++
			return false
		}
		bytes = int64(r.eng.spec.Sizes.Sample(r.rng))
		if bytes < 1 {
			bytes = 1
		}
	}
	f := &flow{
		src:       int32(src),
		dst:       int32(dst),
		bytes:     bytes,
		remaining: r.eng.wireBits(bytes),
		start:     now,
	}
	if !r.resolve(f) {
		r.unroutable++
		return false
	}
	r.flows = append(r.flows, f)
	for _, bl := range f.links {
		bl.nflows++
		if bl.activeIdx < 0 {
			bl.activeIdx = len(r.active)
			r.active = append(r.active, bl)
		}
	}
	r.started++
	return true
}

// projEvents is what the packet tier would have scheduled to move
// drainedBits of this flow: per packet, one departure and one delivery
// event on each of the path's hops+1 links. Acks and retransmissions are
// ignored, so the projection undercounts — any speedup claim it supports
// is conservative. Counting drained bits (not flow size) keeps the
// projection honest for long flows still active at the horizon: only
// traffic the fluid model actually moved is credited.
func projEvents(f *flow, drainedBits float64, mtu int) uint64 {
	pkts := uint64(drainedBits / 8 / float64(mtu+perPktOverhead))
	return pkts * 2 * uint64(f.hops+1)
}

// completeDue retires every flow whose wire bits have drained, recording
// its completion time (drain span plus the path's base delay). Compaction
// preserves arrival order so float accumulation stays replica-identical.
func (r *replica) completeDue(now sim.Time) bool {
	w := 0
	done := false
	for _, f := range r.flows {
		if f.remaining > completeEps {
			r.flows[w] = f
			w++
			continue
		}
		done = true
		r.completed++
		r.bytesModeled += f.bytes
		r.pktEvProj += projEvents(f, r.eng.wireBits(f.bytes), r.eng.spec.MTU)
		r.fct.Add(now - f.start + f.baseDelay)
		for _, bl := range f.links {
			bl.nflows--
		}
	}
	if done {
		for i := w; i < len(r.flows); i++ {
			r.flows[i] = nil
		}
		r.flows = r.flows[:w]
	}
	return done
}

// recompute assigns every active flow its max-min fair rate by
// progressive filling, flow-side: each round computes each unfixed flow's
// minimum per-link fair share, fixes the flows achieving the global
// minimum (they traverse the bottleneck), subtracts, and repeats. No
// link→flow lists are materialized; cost is O(rounds × flows × hops)
// with rounds bounded by the number of distinct bottlenecks.
func (r *replica) recompute() {
	const maxRounds = 100
	for _, bl := range r.active {
		bl.avail = bl.cap
		bl.unfixed = bl.nflows
	}
	unfixed := 0
	for _, f := range r.flows {
		if len(f.links) == 0 {
			f.rate = rateInf
		} else {
			f.rate = -1
			unfixed++
		}
	}
	for round := 0; unfixed > 0; round++ {
		minShare := math.Inf(1)
		for _, f := range r.flows {
			if f.rate >= 0 {
				continue
			}
			s := math.Inf(1)
			for _, bl := range f.links {
				if bl.unfixed <= 0 {
					continue
				}
				if sh := bl.avail / float64(bl.unfixed); sh < s {
					s = sh
				}
			}
			if s < 0 {
				s = 0
			}
			f.share = s
			if s < minShare {
				minShare = s
			}
		}
		// Past the round bound (degenerate all-distinct-bottleneck mixes)
		// fix everything at its current share: approximate but
		// deterministic, and oversubscription is absorbed by effRate's
		// capacity floor on the packet side.
		last := round == maxRounds-1
		for _, f := range r.flows {
			if f.rate >= 0 || (!last && f.share > minShare) {
				continue
			}
			f.rate = f.share
			for _, bl := range f.links {
				bl.avail -= f.share
				bl.unfixed--
			}
			unfixed--
		}
	}
}

// applyReservations pushes each link's aggregate background rate to its
// iface — only on links this partition owns, and only when the value
// changed — then drops idle links from the active list (order-preserving,
// with their reservation cleared by the zero sum).
func (r *replica) applyReservations() {
	for _, bl := range r.active {
		bl.sum = 0
	}
	for _, f := range r.flows {
		for _, bl := range f.links {
			bl.sum += f.rate
		}
	}
	w := 0
	for _, bl := range r.active {
		resv := int64(bl.sum)
		if resv != bl.resv {
			bl.resv = resv
			if bl.iface != nil {
				bl.iface.Reserve(resv)
			}
		}
		if bl.nflows == 0 {
			bl.activeIdx = -1
			continue
		}
		bl.activeIdx = w
		r.active[w] = bl
		w++
	}
	r.active = r.active[:w]
}

// scheduleArrival draws the next arrival time: the trace cursor's tuple,
// or an exponential gap from the aggregate Poisson process.
func (r *replica) scheduleArrival(now sim.Time) {
	if tr := r.eng.spec.Trace; tr != nil {
		if r.traceCur >= len(tr.Flows) {
			r.nextArrival = -1
			return
		}
		r.nextArrival = tr.Flows[r.traceCur].Start
		return
	}
	mean := float64(sim.Second) / (r.eng.spec.FlowsPerSec * float64(len(r.eng.endpoints)))
	r.nextArrival = now + sim.Time(r.rng.Exp(mean))
}

// scheduleWake posts the named wake at the earliest pending moment (next
// arrival or earliest completion) unless an earlier wake is already
// outstanding. Later outstanding wakes are left to fire stale — fire is
// idempotent — because the scheduler has no cancel.
func (r *replica) scheduleWake(now sim.Time) {
	t := r.nextArrival
	for _, f := range r.flows {
		if f.rate <= 0 {
			continue
		}
		dt := sim.Time(math.Ceil(f.remaining / f.rate * float64(sim.Second)))
		if dt < 1 {
			dt = 1
		}
		if c := now + dt; t < 0 || c < t {
			t = c
		}
	}
	if t < 0 {
		return
	}
	if r.nextWake >= 0 && r.nextWake <= t {
		return
	}
	r.net.PostNamed(t, r.nextH, sim.NamedArgs{})
	r.nextWake = t
}

// Report summarizes the background tier (replica 0's view — all replicas
// agree by construction).
type Report struct {
	FlowsStarted   int
	FlowsCompleted int
	ActiveFlows    int
	// Skipped counts synthetic draws the pattern declined (-1 or self);
	// Unroutable counts flows whose path walk failed.
	Skipped    int
	Unroutable int
	// BytesModeled is payload bytes of completed flows.
	BytesModeled int64
	// Events is the number of scheduler events one replica consumed.
	Events uint64
	// ProjPacketEvents is what the packet tier would have scheduled to
	// move the traffic the fluid model drained — completed flows in full,
	// active flows pro-rata (conservative undercount; see projEvents).
	ProjPacketEvents uint64
	FCT              *stats.Latency
}

// Collect returns the tier's report. Call it after the run: active flows'
// drained traffic is projected forward to the run horizon (advance is
// lazy — state only moves at events — so flows still active at the end
// have provably drained rate×span beyond their last event).
func (e *Engine) Collect() Report {
	r := e.reps[0]
	proj := r.pktEvProj
	var sec float64
	if dt := r.net.End() - r.lastAdvance; dt > 0 {
		sec = float64(dt) / float64(sim.Second)
	}
	for _, f := range r.flows {
		rem := f.remaining - f.rate*sec
		if rem < 0 {
			rem = 0
		}
		proj += projEvents(f, e.wireBits(f.bytes)-rem, e.spec.MTU)
	}
	return Report{
		FlowsStarted:     r.started,
		FlowsCompleted:   r.completed,
		ActiveFlows:      len(r.flows),
		Skipped:          r.skipped,
		Unroutable:       r.unroutable,
		BytesModeled:     r.bytesModeled,
		Events:           r.events,
		ProjPacketEvents: proj,
		FCT:              r.fct,
	}
}

func (rp Report) String() string {
	return fmt.Sprintf("flows=%d/%d active=%d bytes=%d events=%d projPktEvents=%d",
		rp.FlowsCompleted, rp.FlowsStarted, rp.ActiveFlows, rp.BytesModeled, rp.Events, rp.ProjPacketEvents)
}
