package flowsim_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/decomp"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/flowsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/stats"
)

var smallClos = topogen.ClosSpec{
	Pods: 4, LeafPerPod: 2, SpinePerPod: 2, Cores: 4, HostsPerLeaf: 2,
	HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps,
	LinkDelay: sim.Microsecond,
}

func buildFabric(t testing.TB, spec topogen.ClosSpec, seed uint64, parts int) (*orch.Simulation, *netsim.Built, *topogen.ClosMeta) {
	t.Helper()
	topo, m := topogen.Clos(spec)
	var assign []int
	if parts > 1 {
		assign = m.AssignByPod(parts)
	}
	b := topo.Build("clos", seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)
	return s, b, m
}

func allSlots(m *topogen.ClosMeta) []int {
	var out []int
	for _, pod := range m.HostSlots {
		for _, leaf := range pod {
			out = append(out, leaf...)
		}
	}
	return out
}

func materializePod(b *netsim.Built, m *topogen.ClosMeta, pod int) []*netsim.Host {
	var hosts []*netsim.Host
	for _, leaf := range m.HostSlots[pod] {
		for _, slot := range leaf {
			h := b.Hosts[slot]
			if h == nil {
				h = b.MaterializeSlot(slot)
			}
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// TestFlowSmoke is the fast mixed-fidelity smoke `make scale` runs: a lazy
// fabric carries a pure flow-level background mix — no host is ever
// materialized, no frame is ever minted — and the event count stays far
// under the packet-level projection.
func TestFlowSmoke(t *testing.T) {
	lazy := smallClos
	lazy.Lazy = true
	s, b, m := buildFabric(t, lazy, 7, 1)
	eng := flowsim.Install(b, allSlots(m), flowsim.Spec{
		Pattern:     workload.Uniform{},
		Sizes:       workload.Fixed(1_000_000),
		FlowsPerSec: 200, // per endpoint; 16 endpoints → 3.2k flows/s
		Seed:        7,
	})
	s.RunSequential(20 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsStarted == 0 || r.FlowsCompleted == 0 {
		t.Fatalf("flows started=%d completed=%d", r.FlowsStarted, r.FlowsCompleted)
	}
	if r.Unroutable != 0 {
		t.Fatalf("%d unroutable flows", r.Unroutable)
	}
	if r.FCT.Min() <= 0 {
		t.Fatalf("non-positive FCT %v", r.FCT.Min())
	}
	for i, h := range b.Hosts {
		if h != nil {
			t.Fatalf("slot %d materialized by the flow tier", i)
		}
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames minted by the flow tier", live)
	}
	if r.ProjPacketEvents < 10*r.Events {
		t.Fatalf("flow tier spent %d events vs %d projected packet events — want ≥10×",
			r.Events, r.ProjPacketEvents)
	}
	t.Logf("%v (%.0fx fewer events than packet projection)",
		r, float64(r.ProjPacketEvents)/float64(r.Events))
}

// TestFlowTraceReplay drives the flow tier from the same trace format the
// packet tier consumes.
func TestFlowTraceReplay(t *testing.T) {
	tr := &workload.Trace{Flows: []workload.TraceFlow{
		{Start: 0, Src: 0, Dst: 13, Bytes: 50_000},
		{Start: 100 * sim.Microsecond, Src: 5, Dst: 9, Bytes: 2_000},
		{Start: 100 * sim.Microsecond, Src: 9, Dst: 5, Bytes: 2_000},
		{Start: 400 * sim.Microsecond, Src: 15, Dst: 0, Bytes: 1_000_000},
	}}
	lazy := smallClos
	lazy.Lazy = true
	s, b, m := buildFabric(t, lazy, 11, 1)
	eng := flowsim.Install(b, allSlots(m), flowsim.Spec{Trace: tr, Seed: 11})
	s.RunSequential(5 * sim.Millisecond)
	r := eng.Collect()
	if r.FlowsStarted != len(tr.Flows) || r.FlowsCompleted != len(tr.Flows) {
		t.Fatalf("started=%d completed=%d, want %d", r.FlowsStarted, r.FlowsCompleted, len(tr.Flows))
	}
	var want int64
	for _, f := range tr.Flows {
		want += f.Bytes
	}
	if r.BytesModeled != want {
		t.Fatalf("modeled %d bytes, want %d", r.BytesModeled, want)
	}
}

// TestInstallSpecDispatch: a FidelityFlow workload.Spec installs through
// the flow tier; packet specs are refused here and flow specs are refused
// by the packet tier.
func TestInstallSpecDispatch(t *testing.T) {
	lazy := smallClos
	lazy.Lazy = true
	s, b, m := buildFabric(t, lazy, 3, 1)
	eng := flowsim.InstallSpec(b, allSlots(m), workload.Spec{
		Fidelity: workload.FidelityFlow,
		Pattern:  workload.Uniform{},
		Sizes:    workload.Fixed(100_000),
		Arrival:  workload.Open{FlowsPerSec: 100},
		Seed:     3,
	})
	s.RunSequential(10 * sim.Millisecond)
	if r := eng.Collect(); r.FlowsCompleted == 0 {
		t.Fatalf("no flows completed: %v", r)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("InstallSpec(packet)", func() {
		flowsim.InstallSpec(b, allSlots(m), workload.Spec{
			Pattern: workload.Uniform{}, Sizes: workload.Fixed(1), Arrival: workload.Open{FlowsPerSec: 1},
		})
	})
	mustPanic("workload.Install(flow)", func() {
		workload.Install(materializePod(b, m, 0), workload.Spec{
			Fidelity: workload.FidelityFlow,
			Pattern:  workload.Uniform{}, Sizes: workload.Fixed(1), Arrival: workload.Open{FlowsPerSec: 1},
		})
	})
}

// runTierFCT runs one fixed-size trace through the chosen tier on a fresh
// fabric and returns the mean FCT.
func runTierFCT(t *testing.T, size int64, packet bool) sim.Time {
	t.Helper()
	// Well-separated cross-pod flows: no sharing, so the fluid model and
	// the packet tier should agree up to burst-pacing granularity.
	var tr workload.Trace
	for i := 0; i < 6; i++ {
		tr.Flows = append(tr.Flows, workload.TraceFlow{
			Start: sim.Time(i) * 600 * sim.Microsecond,
			Src:   i, Dst: (i + 9) % 16, Bytes: size,
		})
	}
	spec := smallClos
	if !packet {
		spec.Lazy = true
	}
	s, b, m := buildFabric(t, spec, 31, 1)
	end := 10 * sim.Millisecond
	if packet {
		var hosts []*netsim.Host
		for pod := range m.HostSlots {
			hosts = append(hosts, materializePod(b, m, pod)...)
		}
		eng := workload.Install(hosts, workload.Spec{Arrival: &tr, Seed: 31})
		s.RunSequential(end)
		r := eng.Collect()
		if r.FlowsCompleted != len(tr.Flows) {
			t.Fatalf("packet tier completed %d/%d", r.FlowsCompleted, len(tr.Flows))
		}
		return r.FCT.Mean()
	}
	eng := flowsim.Install(b, allSlots(m), flowsim.Spec{Trace: &tr, Seed: 31})
	s.RunSequential(end)
	r := eng.Collect()
	if r.FlowsCompleted != len(tr.Flows) {
		t.Fatalf("flow tier completed %d/%d", r.FlowsCompleted, len(tr.Flows))
	}
	return r.FCT.Mean()
}

// TestFlowFCTMatchesPacketBySize is the cross-fidelity validity check: on
// an uncongested fabric the fluid model's completion times must track the
// packet tier's per size bucket. Tolerance is 5% of the packet-tier mean
// plus 5µs of slack for burst-pacing re-arm granularity, which dominates
// short flows (documented in DESIGN.md "Mixed fidelity"; observed error
// is under 2% per bucket).
func TestFlowFCTMatchesPacketBySize(t *testing.T) {
	for _, size := range []int64{2_000, 40_000, 400_000} {
		pkt := runTierFCT(t, size, true)
		fl := runTierFCT(t, size, false)
		diff := pkt - fl
		if diff < 0 {
			diff = -diff
		}
		tol := pkt/20 + 5*sim.Microsecond
		t.Logf("size %7d: packet %v, flow %v (Δ %v, tol %v)", size, pkt, fl, diff, tol)
		if diff > tol {
			t.Errorf("size %d: flow-tier FCT %v vs packet-tier %v exceeds tolerance %v", size, fl, pkt, tol)
		}
	}
}

// foregroundDigest folds everything the foreground observes into one
// comparable string: workload report, FCT distribution, switch packet
// counters, plus the background tier's own counters.
func foregroundDigest(w *workload.Engine, f *flowsim.Engine, b *netsim.Built) string {
	r := w.Collect()
	var rx uint64
	for _, sw := range b.Switches {
		rx += sw.RxPackets
	}
	return fmt.Sprintf("flows=%d done=%d bytes=%d fctN=%d fctMean=%v fctMax=%v swRx=%d bg=%v",
		r.FlowsStarted, r.FlowsCompleted, r.BytesSent,
		r.FCT.Count(), r.FCT.Mean(), r.FCT.Max(), rx, f.Collect())
}

// mixedSetup installs a packet-level foreground (pod 0) and a flow-level
// background (every slot) on one partitioned fabric.
func mixedSetup(t testing.TB, seed uint64, parts int) (*orch.Simulation, *netsim.Built, *workload.Engine, *flowsim.Engine) {
	s, b, m := buildFabric(t, smallClos, seed, parts)
	weng := workload.Install(materializePod(b, m, 0), workload.Spec{
		Pattern: workload.Shuffle{},
		Sizes:   workload.Pareto{Min: 800, Alpha: 1.4, Max: 100_000},
		Arrival: workload.Open{FlowsPerSec: 30_000},
		Seed:    seed,
	})
	feng := flowsim.Install(b, allSlots(m), flowsim.Spec{
		Pattern:     workload.Uniform{},
		Sizes:       workload.Fixed(250_000),
		FlowsPerSec: 2_000,
		Seed:        seed ^ 0xbeef,
	})
	return s, b, weng, feng
}

// TestMixedFidelityPlacementBitIdentity is the tentpole's determinism
// property: with the background tier actively reserving capacity on shared
// links, the foreground's every observable must stay bit-identical across
// sequential, placed, random-placement, and parallel execution.
func TestMixedFidelityPlacementBitIdentity(t *testing.T) {
	const end = 2 * sim.Millisecond
	const seed = 41
	run := func(placement *decomp.Placement, parallel bool) string {
		s, b, weng, feng := mixedSetup(t, seed, 4)
		switch {
		case placement == nil:
			s.RunSequential(end)
		case parallel:
			if err := s.RunParallel(end, *placement); err != nil {
				t.Fatalf("RunParallel: %v", err)
			}
		default:
			if err := s.RunPlaced(end, *placement); err != nil {
				t.Fatalf("RunPlaced(%v): %v", placement.Groups, err)
			}
		}
		if live := s.LiveFrames(); live != 0 {
			t.Fatalf("%d frames leaked", live)
		}
		return foregroundDigest(weng, feng, b)
	}

	ref := run(nil, false)
	var nComps int
	{
		s, _, _, _ := mixedSetup(t, seed, 4)
		nComps = s.NumComponents()
	}
	placements := []decomp.Placement{decomp.PerComponent(nComps)}
	prng := sim.NewRand(seed * 104729)
	for k := 0; k < 2; k++ {
		groups := make([]int, nComps)
		for i := range groups {
			groups[i] = prng.Intn(1 + prng.Intn(nComps))
		}
		placements = append(placements, decomp.Placement{Name: fmt.Sprintf("rand%d", k), Groups: groups})
	}
	for _, p := range placements {
		p := p
		if got := run(&p, false); got != ref {
			t.Fatalf("placement %s diverged:\n  placed:     %s\n  sequential: %s", p.Name, got, ref)
		}
	}
	pc := decomp.PerComponent(nComps)
	if got := run(&pc, true); got != ref {
		t.Fatalf("parallel run diverged:\n  parallel:   %s\n  sequential: %s", got, ref)
	}
}

// TestBackgroundThrottlesForeground checks the coupling direction: heavy
// background load on shared links must slow foreground completions, and
// clearing it must restore them.
func TestBackgroundThrottlesForeground(t *testing.T) {
	const end = 2 * sim.Millisecond
	fg := func(bgRate float64) sim.Time {
		s, b, m := buildFabric(t, smallClos, 53, 1)
		weng := workload.Install(materializePod(b, m, 0), workload.Spec{
			Pattern: workload.Shuffle{},
			Sizes:   workload.Fixed(40_000),
			Arrival: workload.Open{FlowsPerSec: 10_000},
			Seed:    53,
		})
		if bgRate > 0 {
			flowsim.Install(b, allSlots(m), flowsim.Spec{
				Pattern:     workload.Uniform{},
				Sizes:       workload.Fixed(10_000_000),
				FlowsPerSec: bgRate,
				Seed:        99,
			})
		}
		s.RunSequential(end)
		r := weng.Collect()
		if r.FlowsCompleted == 0 {
			t.Fatal("no foreground flows completed")
		}
		return r.FCT.Mean()
	}
	quiet := fg(0)
	loaded := fg(5_000)
	t.Logf("foreground mean FCT: quiet %v, loaded %v", quiet, loaded)
	if loaded <= quiet {
		t.Fatalf("background load did not slow foreground: quiet %v, loaded %v", quiet, loaded)
	}
}

// mixedDigest hashes the full explicit state of fabric plus both tiers.
func mixedDigest(t *testing.T, b *netsim.Built, w *workload.Engine, f *flowsim.Engine) uint64 {
	t.Helper()
	var e snap.Encoder
	for _, p := range b.Parts {
		if err := p.SnapshotState(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SnapshotState(&e); err != nil {
		t.Fatal(err)
	}
	if err := f.SnapshotState(&e); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(e.Bytes())
	return h.Sum64()
}

// TestMixedFidelityCheckpointRestore: a mixed-fidelity run checkpointed at
// the horizon and resumed on a fresh build must land bit-identical to the
// uninterrupted run — the fluid trajectory rides the checkpoint as aux
// state instead of rejecting with ErrNotCheckpointable.
func TestMixedFidelityCheckpointRestore(t *testing.T) {
	const at, end = sim.Millisecond, 3 * sim.Millisecond
	const seed = 61

	build := func() (*orch.Simulation, *netsim.Built, *workload.Engine, *flowsim.Engine) {
		s, b, weng, feng := mixedSetup(t, seed, 1)
		s.AddAuxState("wl", weng)
		s.AddAuxState("bg", feng)
		return s, b, weng, feng
	}

	s0, b0, w0, f0 := build()
	s0.RunSequential(end)
	want := mixedDigest(t, b0, w0, f0)

	s1, _, _, _ := build()
	ck, err := s1.CheckpointSequential(at)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s2, b2, w2, f2 := build()
	if _, err := s2.ResumeSequential(ck, end); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := mixedDigest(t, b2, w2, f2); got != want {
		t.Fatalf("restored run diverged: digest %x, want %x", got, want)
	}
	fr := f2.Collect()
	if fr.FlowsCompleted == 0 || fr.FlowsStarted == 0 {
		t.Fatalf("restored background tier idle: %v", fr)
	}
}

// TestFlowReportFCTIsLatency pins the report type so experiment code can
// use the stats helpers directly.
func TestFlowReportFCTIsLatency(t *testing.T) {
	var _ *stats.Latency = flowsim.Report{}.FCT
}
