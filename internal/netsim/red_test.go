package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
)

// redRig: h1 (10G) -> sw -> h2 (1G), RED on the bottleneck egress.
func redRig(red *REDParams) (*Network, *Host, *Host, *Iface) {
	n := New("net", 5)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, sim.Microsecond)
	idx := n.ConnectHostSwitch(h2, sw, 1*sim.Gbps, sim.Microsecond)
	bottleneck := sw.Ifaces()[idx]
	bottleneck.RED = red
	n.ComputeRoutes()
	return n, h1, h2, bottleneck
}

// burst sends n back-to-back ECT or non-ECT datagrams.
func burst(h *Host, dst proto.IP, n int, ect bool) {
	h.SetApp(AppFunc(func(hh *Host) {
		for i := 0; i < n; i++ {
			f := &proto.Frame{
				Eth:            proto.Ethernet{Dst: proto.MACFromID(uint32(dst)), Src: hh.MAC()},
				IP:             proto.IPv4{Src: hh.IP(), Dst: dst, Proto: proto.IPProtoUDP},
				UDP:            proto.UDP{SrcPort: 1, DstPort: 9},
				VirtualPayload: 1400,
			}
			if ect {
				f.IP = f.IP.WithECN(proto.ECNECT0)
			}
			f.Seal()
			hh.transmit(f)
		}
	}))
}

func run(n *Network, end sim.Time) {
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(end)
	s.RunBefore(end)
}

func TestREDMarksECTTraffic(t *testing.T) {
	red := &REDParams{MinBytes: 3000, MaxBytes: 20000, MaxP: 1}
	n, h1, h2, bn := redRig(red)
	got := 0
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	burst(h1, h2.IP(), 40, true)
	run(n, 5*sim.Millisecond)
	if bn.Marks == 0 {
		t.Fatal("RED marked nothing")
	}
	if bn.Drops != 0 {
		t.Fatal("ECT traffic must be marked, not dropped")
	}
	// Everything still delivered (marking is lossless).
	if got != 40 {
		t.Fatalf("delivered %d/40", got)
	}
	// Early packets below MinBytes must pass unmarked.
	if bn.Marks >= 40 {
		t.Fatal("packets below min threshold must not be marked")
	}
}

func TestREDDropsNonECTTraffic(t *testing.T) {
	red := &REDParams{MinBytes: 3000, MaxBytes: 20000, MaxP: 1}
	n, h1, h2, bn := redRig(red)
	got := 0
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	burst(h1, h2.IP(), 40, false)
	run(n, 5*sim.Millisecond)
	if bn.Drops == 0 {
		t.Fatal("RED dropped nothing for non-ECT overload")
	}
	if bn.Marks != 0 {
		t.Fatal("non-ECT traffic cannot be CE-marked")
	}
	if got+int(bn.Drops) != 40 {
		t.Fatalf("delivered %d + dropped %d != 40", got, bn.Drops)
	}
}

func TestREDProbabilityRamp(t *testing.T) {
	// With MaxP = 0.5 and a queue held in the middle of the band, roughly
	// a quarter of packets should be affected — far from 0 and far from all.
	red := &REDParams{MinBytes: 2000, MaxBytes: 200000, MaxP: 0.5}
	n, h1, h2, bn := redRig(red)
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	burst(h1, h2.IP(), 120, true)
	run(n, 10*sim.Millisecond)
	frac := float64(bn.Marks) / 120
	if frac < 0.05 || frac > 0.95 {
		t.Fatalf("mid-band mark fraction = %.2f, want probabilistic ramp", frac)
	}
}

func TestREDAboveMaxActsAlways(t *testing.T) {
	red := &REDParams{MinBytes: 100, MaxBytes: 1500, MaxP: 0.01}
	n, h1, h2, bn := redRig(red)
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	burst(h1, h2.IP(), 30, true)
	run(n, 5*sim.Millisecond)
	// Queue exceeds MaxBytes almost immediately: nearly every subsequent
	// ECT packet must be marked despite the tiny MaxP.
	if bn.Marks < 25 {
		t.Fatalf("marks = %d, want force-marking above max threshold", bn.Marks)
	}
}

func TestDCTCPOverRED(t *testing.T) {
	// DCTCP works over RED-configured bottlenecks too (RED in ECN mode is
	// how many switches approximate the DCTCP step).
	topo, m := Dumbbell(DumbbellSpec{
		HostsPerSide: 1, EdgeRate: 10 * sim.Gbps, BottleneckRate: 1 * sim.Gbps,
		EdgeDelay: 2 * sim.Microsecond, BottleneckDelay: 10 * sim.Microsecond,
	})
	b := topo.Build("d", 1, nil, nil)
	n := b.Parts[0]
	for _, f := range b.Switches[m.SwLeft].Ifaces() {
		if f.Peer() != nil {
			if _, isSw := f.Peer().owner.(*Switch); isSw {
				f.RED = &REDParams{MinBytes: 15000, MaxBytes: 90000, MaxP: 0.3}
				f.QueueCapBytes = 1 << 20
			}
		}
	}
	src, dst := b.Hosts[m.Left[0]], b.Hosts[m.Right[0]]
	snd, rcv := NewFlow(src, dst, 40000, proto.PortBulk, CCDCTCP, 0, nil)
	src.SetApp(AppFunc(func(*Host) { snd.StartFlow() }))
	run(n, 50*sim.Millisecond)
	goodput := float64(rcv.Delivered()) * 8 / (50 * sim.Millisecond).Seconds()
	if goodput < 0.75e9 {
		t.Fatalf("DCTCP over RED goodput %.2e, want near 1G", goodput)
	}
	if snd.Retransmits != 0 {
		t.Fatalf("rtx = %d", snd.Retransmits)
	}
}
