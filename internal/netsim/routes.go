package netsim

import "repro/internal/proto"

// ComputeRoutes installs shortest-path routes on every switch for every
// host and external-port address in this network. Paths are computed with
// BFS over the switch graph; equal-cost next hops are spread per
// destination address with the same deterministic hash Topology.Build
// uses (static ECMP), so a hand-wired network forwards identically to the
// same fabric built through a Topology.
//
// ComputeRoutes panics on a network produced as one partition of a
// multi-partition Topology.Build, or one carrying aggregate (prefix)
// routes: those tables encode global reachability this local computation
// cannot reconstruct, and rewriting them used to silently collapse ECMP
// to single-path and strand cross-partition destinations.
func (n *Network) ComputeRoutes() {
	if n.partitionRouted {
		panic("netsim: ComputeRoutes on a partition of a multi-partition topology; " +
			"routes were installed globally by Topology.Build and must not be rewritten locally")
	}
	if n.prefixRouted {
		panic("netsim: ComputeRoutes on a prefix-routed network; " +
			"aggregate routes were installed by Topology.Build and must not be rewritten locally")
	}
	ns := len(n.switches)
	idx := make(map[*Switch]int, ns)
	for i, s := range n.switches {
		idx[s] = i
	}
	type edge struct {
		nb    int // neighbor switch index
		iface int // local iface index
	}
	adj := make([][]edge, ns)
	for i, s := range n.switches {
		for fi, f := range s.ifaces {
			if f.peer == nil {
				continue
			}
			if ps, ok := f.peer.owner.(*Switch); ok {
				adj[i] = append(adj[i], edge{nb: idx[ps], iface: fi})
			}
		}
	}

	// Reusable BFS state: one distance array and an index-cursor queue
	// (popping with queue[1:] kept the whole backing array live and
	// reallocated it per destination).
	dist := make([]int, ns)
	queue := make([]int, 0, ns)
	cands := make([]int, 0, 8)

	install := func(attached *Switch, directIface int, ips []proto.IP) {
		ti := idx[attached]
		for i := range dist {
			dist[i] = -1
		}
		dist[ti] = 0
		queue = append(queue[:0], ti)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, e := range adj[u] {
				if dist[e.nb] < 0 {
					dist[e.nb] = dist[u] + 1
					queue = append(queue, e.nb)
				}
			}
		}
		for si, s := range n.switches {
			if si == ti {
				for _, ip := range ips {
					s.SetRoute(ip, directIface)
				}
				continue
			}
			if dist[si] < 0 {
				continue
			}
			cands = cands[:0]
			for _, e := range adj[si] {
				if dist[e.nb] == dist[si]-1 {
					cands = append(cands, e.iface)
				}
			}
			for _, ip := range ips {
				s.SetRoute(ip, cands[ecmpHash(ip)%uint64(len(cands))])
			}
		}
	}

	for _, h := range n.hosts {
		sw, fi := n.attachment(h.iface)
		install(sw, fi, []proto.IP{h.ip})
	}
	for _, p := range n.exts {
		install(p.sw, switchIfaceIndex(p.sw, p.iface), p.ips)
	}
}

// attachment finds the switch and iface index a host interface peers with.
func (n *Network) attachment(hostIface *Iface) (*Switch, int) {
	if hostIface == nil || hostIface.peer == nil {
		panic("netsim: host not attached to a switch")
	}
	sw, ok := hostIface.peer.owner.(*Switch)
	if !ok {
		panic("netsim: host attached to non-switch")
	}
	return sw, switchIfaceIndex(sw, hostIface.peer)
}
