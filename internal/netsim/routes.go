package netsim

import "repro/internal/proto"

// ComputeRoutes installs shortest-path routes on every switch for every
// host and external-port address in this network. Paths are computed with
// BFS over the switch graph; ties resolve deterministically by switch and
// interface order (single-path routing — the simulator does not model
// ECMP).
func (n *Network) ComputeRoutes() {
	ns := len(n.switches)
	idx := make(map[*Switch]int, ns)
	for i, s := range n.switches {
		idx[s] = i
	}
	type edge struct {
		nb    int // neighbor switch index
		iface int // local iface index
	}
	adj := make([][]edge, ns)
	// toward[v][u] = first iface on v leading to u.
	toward := make([]map[int]int, ns)
	for i := range toward {
		toward[i] = make(map[int]int)
	}
	for i, s := range n.switches {
		for fi, f := range s.ifaces {
			if f.peer == nil {
				continue
			}
			if ps, ok := f.peer.owner.(*Switch); ok {
				j := idx[ps]
				adj[i] = append(adj[i], edge{nb: j, iface: fi})
				if _, dup := toward[i][j]; !dup {
					toward[i][j] = fi
				}
			}
		}
	}

	// next[s][t]: iface on switch s toward switch t; -1 if unreachable.
	next := make([][]int, ns)
	for i := range next {
		next[i] = make([]int, ns)
		for j := range next[i] {
			next[i][j] = -1
		}
	}
	for t := 0; t < ns; t++ {
		visited := make([]bool, ns)
		visited[t] = true
		queue := []int{t}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range adj[u] {
				v := e.nb
				if visited[v] {
					continue
				}
				visited[v] = true
				next[v][t] = toward[v][u]
				queue = append(queue, v)
			}
		}
	}

	install := func(attached *Switch, directIface int, ips []proto.IP) {
		ti := idx[attached]
		for si, s := range n.switches {
			for _, ip := range ips {
				if si == ti {
					s.SetRoute(ip, directIface)
				} else if nf := next[si][ti]; nf >= 0 {
					s.SetRoute(ip, nf)
				}
			}
		}
	}

	for _, h := range n.hosts {
		sw, fi := n.attachment(h.iface)
		install(sw, fi, []proto.IP{h.ip})
	}
	for _, p := range n.exts {
		fi := -1
		for i, f := range p.sw.ifaces {
			if f == p.iface {
				fi = i
				break
			}
		}
		install(p.sw, fi, p.ips)
	}
}

// attachment finds the switch and iface index a host interface peers with.
func (n *Network) attachment(hostIface *Iface) (*Switch, int) {
	if hostIface == nil || hostIface.peer == nil {
		panic("netsim: host not attached to a switch")
	}
	sw, ok := hostIface.peer.owner.(*Switch)
	if !ok {
		panic("netsim: host attached to non-switch")
	}
	for i, f := range sw.ifaces {
		if f == hostIface.peer {
			return sw, i
		}
	}
	panic("netsim: inconsistent attachment")
}
