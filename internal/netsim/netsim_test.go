package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/proto"
	"repro/internal/sim"
)

// runSeq drives one or more networks on a shared scheduler until end,
// mirroring what the orchestrator's sequential mode does.
func runSeq(end sim.Time, nets ...*Network) *sim.Scheduler {
	s := sim.NewScheduler(0)
	for i, n := range nets {
		n.Attach(core.Env{Sched: s, Src: int32(10 + i)})
	}
	for _, n := range nets {
		n.Start(end)
	}
	for {
		at, ok := s.PeekTime()
		if !ok || at >= end {
			break
		}
		s.Step()
	}
	return s
}

// buildStar builds h1 -- sw -- h2 with 10G/1us links.
func buildStar() (*Network, *Host, *Host, *Switch) {
	n := New("net", 1)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, 1*sim.Microsecond)
	n.ConnectHostSwitch(h2, sw, 10*sim.Gbps, 1*sim.Microsecond)
	n.ComputeRoutes()
	return n, h1, h2, sw
}

func TestUDPExactLatency(t *testing.T) {
	n, h1, h2, _ := buildStar()
	var arrival sim.Time = -1
	var gotPayload []byte
	h2.BindUDP(9999, func(src proto.IP, sport uint16, payload []byte, virtual int) {
		arrival = h2.Now()
		gotPayload = payload
	})
	payload := make([]byte, 32)
	h1.SetApp(AppFunc(func(h *Host) {
		h.SendUDP(h2.IP(), 1111, 9999, payload, 0)
	}))
	runSeq(1*sim.Millisecond, n)

	// Wire size 74B; tx@10G = 59.2ns; path = tx + 1us + 500ns switch + tx + 1us.
	want := 59200*sim.Picosecond + 1*sim.Microsecond + 500*sim.Nanosecond +
		59200*sim.Picosecond + 1*sim.Microsecond
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
	if len(gotPayload) != 32 {
		t.Fatalf("payload length %d", len(gotPayload))
	}
}

func TestUDPVirtualPayloadAffectsTiming(t *testing.T) {
	n, h1, h2, _ := buildStar()
	var arrival sim.Time = -1
	h2.BindUDP(9, func(_ proto.IP, _ uint16, _ []byte, virtual int) {
		arrival = h2.Now()
		if virtual != 1400 {
			t.Errorf("virtual = %d, want 1400", virtual)
		}
	})
	h1.SetApp(AppFunc(func(h *Host) { h.SendUDP(h2.IP(), 1, 9, nil, 1400) }))
	runSeq(1*sim.Millisecond, n)
	// Wire size 14+20+8+1400 = 1442B -> tx = 1153.6ns each hop.
	want := 2*1153600*sim.Picosecond + 2*sim.Microsecond + 500*sim.Nanosecond
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestSwitchDropsUnrouted(t *testing.T) {
	n, h1, _, sw := buildStar()
	h1.SetApp(AppFunc(func(h *Host) {
		h.SendUDP(proto.HostIP(77), 1, 2, nil, 0) // no such host
	}))
	runSeq(1*sim.Millisecond, n)
	if sw.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", sw.NoRoute)
	}
}

func TestQueueDropTail(t *testing.T) {
	n, h1, h2, _ := buildStar()
	// Cap h1's uplink queue to ~3 packets of 1442B.
	h1.Iface().QueueCapBytes = 4500
	got := 0
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) { got++ })
	h1.SetApp(AppFunc(func(h *Host) {
		for i := 0; i < 10; i++ {
			h.SendUDP(h2.IP(), 1, 9, nil, 1400) // burst at t=0
		}
	}))
	runSeq(1*sim.Millisecond, n)
	if h1.Iface().Drops == 0 {
		t.Fatal("expected drops on capped queue")
	}
	if got+int(h1.Iface().Drops) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", got, h1.Iface().Drops)
	}
}

func TestECNMarking(t *testing.T) {
	n, h1, h2, _ := buildStar()
	h1.Iface().MarkThresholdBytes = 2000
	var ce, total int
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	// Count CE directly at the receiving host by a dataplane-free hack:
	// wrap receive via switch dataplane on the path back? Instead send
	// ECT-marked UDP and inspect frames at h2 via a custom handler on the
	// raw frame path: we use TCP's machinery elsewhere; here check Marks.
	h1.SetApp(AppFunc(func(h *Host) {
		for i := 0; i < 8; i++ {
			f := &proto.Frame{
				Eth: proto.Ethernet{Dst: proto.MACFromID(uint32(h2.IP())), Src: h.MAC()},
				IP: proto.IPv4{Src: h.IP(), Dst: h2.IP(),
					Proto: proto.IPProtoUDP}.WithECN(proto.ECNECT0),
				UDP:            proto.UDP{SrcPort: 1, DstPort: 9},
				VirtualPayload: 1400,
			}
			f.Seal()
			h.transmit(f)
		}
	}))
	runSeq(1*sim.Millisecond, n)
	_ = ce
	_ = total
	if h1.Iface().Marks == 0 {
		t.Fatal("expected CE marks above threshold")
	}
	if h1.Iface().Marks >= h1.Iface().TxPackets {
		t.Fatal("first packets (empty queue) must not be marked")
	}
}

func TestTCPBulkThroughput(t *testing.T) {
	// Dumbbell with a 1 Gbps bottleneck; a single Reno flow should achieve
	// close to line rate with an unbounded queue (no losses).
	topo, m := Dumbbell(DumbbellSpec{
		HostsPerSide: 1, EdgeRate: 10 * sim.Gbps, BottleneckRate: 1 * sim.Gbps,
		EdgeDelay: 5 * sim.Microsecond, BottleneckDelay: 20 * sim.Microsecond,
	})
	b := topo.Build("dumbbell", 1, nil, nil)
	n := b.Parts[0]
	src, dst := b.Hosts[m.Left[0]], b.Hosts[m.Right[0]]
	snd, rcv := NewFlow(src, dst, 40000, proto.PortBulk, CCReno, 0, nil)
	src.SetApp(AppFunc(func(*Host) { snd.StartFlow() }))
	const dur = 50 * sim.Millisecond
	runSeq(dur, n)

	goodput := float64(rcv.Delivered()) * 8 / dur.Seconds()
	wire := float64(1*sim.Gbps) * float64(MSS) / float64(MSS+54)
	if goodput < 0.85*wire || goodput > 1.01*wire {
		t.Fatalf("goodput = %.0f bps, want ~%.0f", goodput, wire)
	}
	if snd.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", snd.Retransmits)
	}
}

func TestTCPBoundedTransferCompletes(t *testing.T) {
	n, h1, h2, _ := buildStar()
	done := false
	snd, rcv := NewFlow(h1, h2, 40000, proto.PortBulk, CCReno, 1_000_000, func() { done = true })
	h1.SetApp(AppFunc(func(*Host) { snd.StartFlow() }))
	runSeq(100*sim.Millisecond, n)
	if !done || !snd.Done() {
		t.Fatal("bounded transfer did not complete")
	}
	if rcv.Delivered() != 1_000_000 {
		t.Fatalf("delivered %d, want 1000000", rcv.Delivered())
	}
}

func TestTCPRecoversFromDrops(t *testing.T) {
	topo, m := Dumbbell(DumbbellSpec{
		HostsPerSide: 1, EdgeRate: 10 * sim.Gbps, BottleneckRate: 1 * sim.Gbps,
		EdgeDelay: 5 * sim.Microsecond, BottleneckDelay: 20 * sim.Microsecond,
	})
	b := topo.Build("dumbbell", 1, nil, nil)
	n := b.Parts[0]
	// Small bottleneck queue forces drops.
	left := b.Switches[m.SwLeft]
	for _, f := range left.Ifaces() {
		if f.Peer() != nil {
			if _, isSw := f.Peer().owner.(*Switch); isSw {
				f.QueueCapBytes = 30_000
			}
		}
	}
	src, dst := b.Hosts[m.Left[0]], b.Hosts[m.Right[0]]
	snd, rcv := NewFlow(src, dst, 40000, proto.PortBulk, CCReno, 3_000_000, nil)
	src.SetApp(AppFunc(func(*Host) { snd.StartFlow() }))
	runSeq(200*sim.Millisecond, n)
	if snd.Retransmits == 0 {
		t.Fatal("expected drops and retransmits with a tiny queue")
	}
	if rcv.Delivered() != 3_000_000 {
		t.Fatalf("delivered %d, want 3000000 despite losses", rcv.Delivered())
	}
}

func TestDCTCPBoundsQueue(t *testing.T) {
	topo, m := Dumbbell(DumbbellSpec{
		HostsPerSide: 2, EdgeRate: 10 * sim.Gbps, BottleneckRate: 1 * sim.Gbps,
		EdgeDelay: 5 * sim.Microsecond, BottleneckDelay: 20 * sim.Microsecond,
	})
	b := topo.Build("dumbbell", 1, nil, nil)
	n := b.Parts[0]
	// ECN threshold K = 20 packets on the bottleneck, generous cap.
	var bottleneck *Iface
	for _, f := range b.Switches[m.SwLeft].Ifaces() {
		if f.Peer() != nil {
			if _, isSw := f.Peer().owner.(*Switch); isSw {
				bottleneck = f
			}
		}
	}
	bottleneck.MarkThresholdBytes = 20 * (MSS + 54)
	bottleneck.QueueCapBytes = 1_000_000

	var snds []*TCPConn
	var rcvs []*TCPConn
	for i := range m.Left {
		snd, rcv := NewFlow(b.Hosts[m.Left[i]], b.Hosts[m.Right[i]],
			uint16(40000+i), proto.PortBulk, CCDCTCP, 0, nil)
		b.Hosts[m.Left[i]].SetApp(AppFunc(func(*Host) { snd.StartFlow() }))
		snds = append(snds, snd)
		rcvs = append(rcvs, rcv)
	}

	// Sample the bottleneck queue during steady state.
	var maxQ int
	env := core.Env{}
	_ = env
	sampler := AppFunc(func(h *Host) {
		var tick func()
		tick = func() {
			if h.Now() > 20*sim.Millisecond {
				if q := bottleneck.backlogBytes(h.Now()); q > maxQ {
					maxQ = q
				}
			}
			h.After(100*sim.Microsecond, tick)
		}
		tick()
	})
	b.Hosts[m.Right[0]].SetApp(sampler)

	const dur = 80 * sim.Millisecond
	runSeq(dur, n)

	total := int64(0)
	for _, r := range rcvs {
		total += r.Delivered()
	}
	goodput := float64(total) * 8 / dur.Seconds()
	if goodput < 0.80*1e9 {
		t.Fatalf("DCTCP goodput %.0f bps, want >80%% of 1G", goodput)
	}
	if bottleneck.Marks == 0 {
		t.Fatal("no ECN marks at bottleneck")
	}
	if snds[0].Alpha() <= 0 || snds[0].Alpha() > 1 {
		t.Fatalf("alpha = %v out of range", snds[0].Alpha())
	}
	// DCTCP should keep the steady-state queue within a few K.
	if maxQ > 6*20*(MSS+54) {
		t.Fatalf("queue grew to %d bytes, DCTCP should bound it near K", maxQ)
	}
	if snds[0].Retransmits != 0 {
		t.Fatalf("DCTCP with ECN should avoid drops, got %d rtx", snds[0].Retransmits)
	}
}

func TestFatTreeAllPairsRouted(t *testing.T) {
	topo, m := FatTree(4, 10*sim.Gbps, 40*sim.Gbps, 1*sim.Microsecond)
	b := topo.Build("ft", 1, nil, nil)
	if len(b.Hosts) != 16 {
		t.Fatalf("k=4 fat tree should have 16 hosts, got %d", len(b.Hosts))
	}
	if len(topo.Switches) != 4+8+8 {
		t.Fatalf("k=4 fat tree should have 20 switches, got %d", len(topo.Switches))
	}
	// Host 0 pings every other host; all must arrive.
	got := make(map[proto.IP]bool)
	for _, h := range b.Hosts {
		h := h
		h.BindUDP(9, func(src proto.IP, _ uint16, _ []byte, _ int) { got[h.IP()] = true })
	}
	src := b.Hosts[m.HostsByPod[0][0]]
	src.SetApp(AppFunc(func(h *Host) {
		for _, other := range b.Hosts {
			if other != h {
				h.SendUDP(other.IP(), 1, 9, nil, 0)
			}
		}
	}))
	runSeq(10*sim.Millisecond, b.Parts[0])
	if len(got) != 15 {
		t.Fatalf("reached %d/15 hosts", len(got))
	}
}

func TestThreeTierScale(t *testing.T) {
	topo, m := ThreeTier(DefaultThreeTier)
	if m.TotalHosts() != 1200 {
		t.Fatalf("TotalHosts = %d, want 1200", m.TotalHosts())
	}
	if len(topo.Switches) != 1+4+24 {
		t.Fatalf("switches = %d, want 29", len(topo.Switches))
	}
	b := topo.Build("dc", 1, nil, nil)
	// Cross-pod ping: first host to last host.
	last := b.Hosts[len(b.Hosts)-1]
	ok := false
	last.BindUDP(9, func(proto.IP, uint16, []byte, int) { ok = true })
	b.Hosts[0].SetApp(AppFunc(func(h *Host) { h.SendUDP(last.IP(), 1, 9, nil, 0) }))
	runSeq(5*sim.Millisecond, b.Parts[0])
	if !ok {
		t.Fatal("cross-datacenter ping failed")
	}
}

// deterministic periodic sender used for partition-equivalence tests.
type periodicApp struct {
	dst      proto.IP
	interval sim.Time
	count    int
}

func (p *periodicApp) Start(h *Host) {
	sent := 0
	var tick func()
	tick = func() {
		if sent >= p.count {
			return
		}
		h.SendUDP(p.dst, 1, 9, nil, 200)
		sent++
		h.After(p.interval, tick)
	}
	tick()
}

// TestPartitionedMatchesSingle is the decomposition-correctness property:
// the same topology split into partitions (wired through latency-faithful
// ports) delivers exactly the same packets as the single-network build.
func TestPartitionedMatchesSingle(t *testing.T) {
	build := func(assign []int) (nets []*Network, rx func() map[string]uint64) {
		topo, m := ThreeTier(ThreeTierSpec{
			Aggs: 2, RacksPerAgg: 2, HostsPerRack: 3,
			CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
			HostRate: 10 * sim.Gbps, LinkDelay: 1 * sim.Microsecond,
		})
		_ = m
		b := topo.Build("dc", 7, assign, nil)
		// Every host sends to the "opposite" host periodically.
		nh := len(b.Hosts)
		for i, h := range b.Hosts {
			peer := b.Hosts[(i+nh/2)%nh]
			h.SetApp(&periodicApp{dst: peer.IP(), interval: 50 * sim.Microsecond, count: 20})
			h.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
		}
		// Wire boundaries with direct ports on a shared scheduler; the
		// caller runs all parts sequentially.
		return b.Parts, func() map[string]uint64 {
			out := make(map[string]uint64)
			for _, h := range b.Hosts {
				out[h.Name()] = h.RxPackets
			}
			return out
		}
	}

	// Single network.
	nets, rxSingle := build(nil)
	runSeq(5*sim.Millisecond, nets...)

	// Two partitions: agg0 subtree in part 0 (with core), agg1 subtree in 1.
	assign := []int{0, 0, 1, 0, 0, 1, 1} // core,agg0,agg1,tor00,tor01,tor10,tor11
	nets2, rxPart := build(assign)
	if len(nets2) != 2 {
		t.Fatalf("expected 2 partitions, got %d", len(nets2))
	}
	// Wire boundaries through DirectPorts on the shared scheduler.
	s := sim.NewScheduler(0)
	for i, n := range nets2 {
		n.Attach(core.Env{Sched: s, Src: int32(10 + i)})
	}
	var topoB *Built
	_ = topoB
	// Boundaries are reachable via the networks' ext ports.
	bds := boundariesOf(nets2)
	if len(bds) == 0 {
		t.Fatal("no boundaries found")
	}
	srcID := int32(100)
	for _, bd := range bds {
		la := bd.a.iface.rate
		_ = la
		pa := link.NewDirectPort(s, 1*sim.Microsecond, srcID, bd.b)
		pb := link.NewDirectPort(s, 1*sim.Microsecond, srcID+1, bd.a)
		bd.a.Bind(pa)
		bd.b.Bind(pb)
		srcID += 2
	}
	for _, n := range nets2 {
		n.Start(5 * sim.Millisecond)
	}
	for {
		at, ok := s.PeekTime()
		if !ok || at >= 5*sim.Millisecond {
			break
		}
		s.Step()
	}

	a, b := rxSingle(), rxPart()
	for name, cnt := range a {
		if b[name] != cnt {
			t.Fatalf("host %s: partitioned rx %d != single rx %d", name, b[name], cnt)
		}
	}
}

type bdPair struct{ a, b *ExtPort }

// boundariesOf pairs up ext ports across partitions by link name.
func boundariesOf(nets []*Network) []bdPair {
	byName := make(map[string]*ExtPort)
	var out []bdPair
	for _, n := range nets {
		for _, p := range n.exts {
			base := p.name[:len(p.name)-2]
			if other, ok := byName[base]; ok {
				out = append(out, bdPair{a: other, b: p})
			} else {
				byName[base] = p
			}
		}
	}
	return out
}

func TestTransparentClockAddsResidence(t *testing.T) {
	// Asymmetric star: h1 at 10G, h2 at 1G, so the queue builds at the
	// switch egress toward h2 where the transparent clock measures it.
	n := New("net", 1)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, 1*sim.Microsecond)
	n.ConnectHostSwitch(h2, sw, 1*sim.Gbps, 1*sim.Microsecond)
	n.ComputeRoutes()
	sw.TransparentClock = true
	var got proto.PTPMsg
	h2.BindUDP(proto.PortPTPEvent, func(_ proto.IP, _ uint16, payload []byte, _ int) {
		m, err := proto.ParsePTP(payload)
		if err != nil {
			t.Error(err)
		}
		got = m
	})
	h1.SetApp(AppFunc(func(h *Host) {
		// Congest the switch->h2 port first so the PTP packet queues.
		for i := 0; i < 20; i++ {
			h.SendUDP(h2.IP(), 1, 9, nil, 1400)
		}
		m := proto.PTPMsg{Type: PTPSyncType(), Seq: 1, Origin: h.Now()}
		h.SendUDP(h2.IP(), proto.PortPTPEvent, proto.PortPTPEvent, proto.AppendPTP(nil, m), 0)
	}))
	runSeq(10*sim.Millisecond, n)
	if got.Type != proto.PTPSync {
		t.Fatal("PTP sync not delivered")
	}
	// Residence must cover most of the ~20 queued 1442B packets at 10G
	// (~23 us) plus the switch pipeline latency.
	if got.Correction < 10*sim.Microsecond {
		t.Fatalf("correction = %v, want >= 10us of queueing residence", got.Correction)
	}
}

func PTPSyncType() proto.PTPType { return proto.PTPSync }

// consumeDataplane swallows KV GETs and answers from the switch.
type consumeDataplane struct{ hits int }

func (d *consumeDataplane) Process(sw *Switch, in *Iface, f *proto.Frame) bool {
	if f.IP.Proto != proto.IPProtoUDP || f.UDP.DstPort != proto.PortKV {
		return true
	}
	m, err := proto.ParseKV(f.Payload)
	if err != nil || m.Op != proto.KVGet {
		return true
	}
	d.hits++
	reply := &proto.Frame{
		Eth: proto.Ethernet{Dst: f.Eth.Src, Src: f.Eth.Dst},
		IP:  proto.IPv4{Src: f.IP.Dst, Dst: f.IP.Src, Proto: proto.IPProtoUDP},
		UDP: proto.UDP{SrcPort: proto.PortKV, DstPort: f.UDP.SrcPort},
		Payload: proto.AppendKV(nil, proto.KVMsg{
			Op: proto.KVGetReply, Key: m.Key, Client: m.Client, Seq: m.Seq,
			Flags: proto.KVFlagSwitchHit,
		}),
	}
	reply.Seal()
	sw.Inject(reply)
	return false
}

func TestDataplaneConsumeAndInject(t *testing.T) {
	n, h1, h2, sw := buildStar()
	dp := &consumeDataplane{}
	sw.Dataplane = dp
	var reply proto.KVMsg
	h1.BindUDP(5555, func(_ proto.IP, _ uint16, payload []byte, _ int) {
		reply, _ = proto.ParseKV(payload)
	})
	serverGot := 0
	h2.BindUDP(proto.PortKV, func(proto.IP, uint16, []byte, int) { serverGot++ })
	h1.SetApp(AppFunc(func(h *Host) {
		h.SendUDP(h2.IP(), 5555, proto.PortKV,
			proto.AppendKV(nil, proto.KVMsg{Op: proto.KVGet, Key: 1, Client: 1, Seq: 1}), 0)
	}))
	runSeq(1*sim.Millisecond, n)
	if dp.hits != 1 || serverGot != 0 {
		t.Fatalf("dataplane hits=%d serverGot=%d; switch should consume", dp.hits, serverGot)
	}
	if reply.Op != proto.KVGetReply || reply.Flags&proto.KVFlagSwitchHit == 0 {
		t.Fatalf("bad switch reply: %+v", reply)
	}
}

func TestCostAccounting(t *testing.T) {
	n, h1, h2, _ := buildStar()
	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(AppFunc(func(h *Host) { h.SendUDP(h2.IP(), 1, 9, nil, 0) }))
	runSeq(1*sim.Millisecond, n)
	want := uint64(CostPerHostPacketNs*2 + CostPerSwitchPacketNs)
	if n.Cost().BusyNanos() != want {
		t.Fatalf("cost = %d, want %d", n.Cost().BusyNanos(), want)
	}
}
