package topogen_test

import (
	"fmt"
	"testing"

	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/topogen"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
)

const probePort = 7

// buildAndWire instantiates a Clos topology into an orch simulation.
func buildAndWire(t *testing.T, topo *netsim.Topology, seed uint64, assign []int) (*orch.Simulation, *netsim.Built) {
	t.Helper()
	b := topo.Build("clos", seed, assign, nil)
	s := orch.New()
	instantiate.WirePartitions(s, topo, b, true)
	return s, b
}

func TestFatTreeSpecShape(t *testing.T) {
	spec := topogen.FatTree(4, 10*sim.Gbps, 40*sim.Gbps, sim.Microsecond, false)
	topo, m := topogen.Clos(spec)
	if got := m.TotalHosts(); got != 16 {
		t.Fatalf("k=4 fat tree: %d hosts, want 16 (k³/4)", got)
	}
	// 4 pods × (2 leaves + 2 spines) + 4 cores.
	if got, want := len(topo.Switches), 4*(2+2)+4; got != want {
		t.Fatalf("switches = %d, want %d", got, want)
	}
	// Per pod: 2×2 leaf-spine + 2 spines × 2 cores = 8 links; 4 pods.
	if got, want := len(topo.Links), 4*(2*2+2*2); got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	if len(topo.Hosts) != 16 {
		t.Fatalf("host slots = %d", len(topo.Hosts))
	}
}

func TestAddressPlanIsPodAligned(t *testing.T) {
	_, m := topogen.Clos(topogen.ClosSpec{
		Pods: 3, LeafPerPod: 2, SpinePerPod: 2, Cores: 4, HostsPerLeaf: 3,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps,
		LinkDelay: sim.Microsecond,
	})
	seen := map[proto.IP]bool{}
	for p := 0; p < 3; p++ {
		for l := 0; l < 2; l++ {
			for i := 0; i < 3; i++ {
				ip := m.HostIP(p, l, i)
				if seen[ip] {
					t.Fatalf("duplicate address %v", ip)
				}
				seen[ip] = true
				if !m.LeafPrefix[p][l].Contains(ip) {
					t.Errorf("%v outside its leaf prefix %v", ip, m.LeafPrefix[p][l])
				}
				if !m.PodPrefix[p].Contains(ip) {
					t.Errorf("%v outside its pod prefix %v", ip, m.PodPrefix[p])
				}
				for q := 0; q < 3; q++ {
					if q != p && m.PodPrefix[q].Contains(ip) {
						t.Errorf("%v inside foreign pod prefix %v", ip, m.PodPrefix[q])
					}
				}
			}
		}
	}
}

// TestRoutingStateIsOPodsAt100kHosts is the tentpole's acceptance bound: a
// 10⁵-host multi-pod Clos builds with per-switch routing state proportional
// to pods (+ pod-local leaves), three orders of magnitude below per-host
// state.
func TestRoutingStateIsOPodsAt100kHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host build in -short mode")
	}
	spec := topogen.ClosSpec{
		Pods: 100, LeafPerPod: 32, SpinePerPod: 8, Cores: 32, HostsPerLeaf: 32,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps, CoreRate: 100 * sim.Gbps,
		LinkDelay: sim.Microsecond, Lazy: true,
	}
	topo, m := topogen.Clos(spec)
	if got := m.TotalHosts(); got != 102400 {
		t.Fatalf("TotalHosts = %d, want 102400", got)
	}
	b := topo.Build("clos100k", 1, nil, nil)

	bound := spec.Pods + spec.LeafPerPod + 2 // pod aggregates + own pod's leaves + slack
	maxEntries, totalBytes := 0, 0
	for _, sw := range b.Switches {
		perIP, prefix := sw.RouteEntries()
		if perIP != 0 {
			t.Fatalf("%s: %d per-IP routes on a lazy hierarchical build", sw.Name(), perIP)
		}
		if perIP+prefix > maxEntries {
			maxEntries = perIP + prefix
		}
		totalBytes += sw.RouteStateBytes()
	}
	if maxEntries > bound {
		t.Fatalf("max per-switch routing entries = %d, want <= %d (O(pods), hosts = %d)",
			maxEntries, bound, m.TotalHosts())
	}
	// Flat per-IP routing would hold hosts×switches entries ≈ 64 KB/host;
	// the aggregate build must stay orders of magnitude below that.
	perHost := float64(totalBytes) / float64(m.TotalHosts())
	if perHost > 512 {
		t.Fatalf("routing state = %.1f B/host, want < 512", perHost)
	}
	t.Logf("switches=%d maxEntries=%d routingState=%.1fB/host",
		len(b.Switches), maxEntries, perHost)

	// Materializing a slot wires the host and its direct route.
	h := b.MaterializeSlot(m.HostSlots[3][5][7])
	if h == nil || h.IP() != m.HostIP(3, 5, 7) {
		t.Fatal("MaterializeSlot returned wrong host")
	}
	if b.MaterializeSlot(m.HostSlots[3][5][7]) != h {
		t.Fatal("MaterializeSlot is not idempotent")
	}
}

// probeCounts sends one probe from every host to every other host and
// returns per-destination delivery counts plus the total NoRoute drops.
func probeCounts(t *testing.T, spec topogen.ClosSpec, seed uint64) ([]uint64, uint64) {
	t.Helper()
	topo, m := topogen.Clos(spec)
	s, b := buildAndWire(t, topo, seed, nil)
	n := m.TotalHosts()
	hosts := make([]*netsim.Host, 0, n)
	for _, pod := range m.HostSlots {
		for _, leaf := range pod {
			for _, slot := range leaf {
				hosts = append(hosts, b.Hosts[slot])
			}
		}
	}
	got := make([]uint64, n)
	for i, h := range hosts {
		i := i
		h.BindUDP(probePort, func(proto.IP, uint16, []byte, int) { got[i]++ })
	}
	for i, h := range hosts {
		i, h := i, h
		h.SetApp(netsim.AppFunc(func(*netsim.Host) {
			for j, dst := range hosts {
				if j == i {
					continue
				}
				h.SendUDP(dst.IP(), probePort, probePort, nil, 100)
			}
		}))
	}
	s.RunSequential(5 * sim.Millisecond)
	var noRoute uint64
	for _, sw := range b.Switches {
		noRoute += sw.NoRoute
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d frames leaked", live)
	}
	return got, noRoute
}

// TestPrefixRouteEquivalence is the satellite property test: on random
// generated fabrics, aggregate (prefix) routing delivers every frame to
// exactly the destination per-IP routing delivers it to — full-mesh probes,
// zero drops, identical per-destination counts.
func TestPrefixRouteEquivalence(t *testing.T) {
	rng := sim.NewRand(7)
	for trial := 0; trial < 4; trial++ {
		spine := 1 + rng.Intn(2)
		spec := topogen.ClosSpec{
			Pods:         2 + rng.Intn(3),
			LeafPerPod:   1 + rng.Intn(3),
			SpinePerPod:  spine,
			Cores:        spine * (1 + rng.Intn(2)),
			HostsPerLeaf: 1 + rng.Intn(3),
			HostRate:     10 * sim.Gbps,
			LeafRate:     40 * sim.Gbps,
			LinkDelay:    sim.Microsecond,
		}
		if spec.LeafPerPod*spec.HostsPerLeaf*spec.Pods < 2 {
			spec.HostsPerLeaf = 2
		}
		name := fmt.Sprintf("pods%d.leaf%d.spine%d.core%d.hosts%d",
			spec.Pods, spec.LeafPerPod, spec.SpinePerPod, spec.Cores, spec.HostsPerLeaf)
		t.Run(name, func(t *testing.T) {
			flat := spec
			flat.FlatRoutes = true
			wantCounts, flatDrops := probeCounts(t, flat, 42)
			gotCounts, hierDrops := probeCounts(t, spec, 42)
			if flatDrops != 0 || hierDrops != 0 {
				t.Fatalf("drops: flat=%d hierarchical=%d, want 0", flatDrops, hierDrops)
			}
			n := len(wantCounts)
			for i := range wantCounts {
				if wantCounts[i] != uint64(n-1) {
					t.Fatalf("flat: host %d received %d probes, want %d", i, wantCounts[i], n-1)
				}
				if gotCounts[i] != wantCounts[i] {
					t.Fatalf("host %d: hierarchical delivered %d, per-IP %d",
						i, gotCounts[i], wantCounts[i])
				}
			}
		})
	}
}

// TestECMPDeterministicAcrossPartitionedBuilds asserts forwarding decisions
// are a function of the topology alone: building the same Clos monolithic,
// 2-way, and 4-way partitioned installs identical next-hop choices (same
// iface index for every destination on every switch).
func TestECMPDeterministicAcrossPartitionedBuilds(t *testing.T) {
	spec := topogen.ClosSpec{
		Pods: 4, LeafPerPod: 2, SpinePerPod: 2, Cores: 4, HostsPerLeaf: 2,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps,
		LinkDelay: sim.Microsecond,
	}
	build := func(parts int) (*netsim.Built, *topogen.ClosMeta) {
		topo, m := topogen.Clos(spec)
		var assign []int
		if parts > 1 {
			assign = m.AssignByPod(parts)
		}
		return topo.Build("clos", 99, assign, nil), m
	}
	ref, m := build(1)
	ips := make([]proto.IP, 0, m.TotalHosts())
	for p := 0; p < spec.Pods; p++ {
		for l := 0; l < spec.LeafPerPod; l++ {
			for i := 0; i < spec.HostsPerLeaf; i++ {
				ips = append(ips, m.HostIP(p, l, i))
			}
		}
	}
	for _, parts := range []int{2, 4} {
		b, _ := build(parts)
		for si := range ref.Switches {
			for _, ip := range ips {
				refOut, refOK := ref.Switches[si].Route(ip)
				out, ok := b.Switches[si].Route(ip)
				if refOK != ok || (ok && refOut != out) {
					t.Fatalf("switch %d route to %v: %d-way build got (%d,%v), monolithic (%d,%v)",
						si, ip, parts, out, ok, refOut, refOK)
				}
			}
		}
	}
}

// TestDefaultUpRouteEquivalence: the default-route plan must (a) deliver
// every full-mesh probe exactly like the per-pod aggregate plan, (b)
// install the same next hop for every valid host address on every switch —
// the ECMP candidate sets coincide tier by tier, so forwarding is
// hop-for-hop identical — and (c) keep per-pod-switch routing state
// independent of the pod count, pushing the O(Pods) tier onto the cores.
func TestDefaultUpRouteEquivalence(t *testing.T) {
	spec := topogen.ClosSpec{
		Pods: 4, LeafPerPod: 3, SpinePerPod: 2, Cores: 4, HostsPerLeaf: 2,
		HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps,
		LinkDelay: sim.Microsecond,
	}
	du := spec
	du.DefaultUp = true

	wantCounts, podDrops := probeCounts(t, spec, 42)
	gotCounts, duDrops := probeCounts(t, du, 42)
	if podDrops != 0 || duDrops != 0 {
		t.Fatalf("drops: per-pod=%d default-up=%d, want 0", podDrops, duDrops)
	}
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("host %d: default-up delivered %d, per-pod plan %d",
				i, gotCounts[i], wantCounts[i])
		}
	}

	topoPod, m := topogen.Clos(spec)
	bPod := topoPod.Build("clos", 7, nil, nil)
	topoDU, _ := topogen.Clos(du)
	bDU := topoDU.Build("clos", 7, nil, nil)
	for p := 0; p < spec.Pods; p++ {
		for l := 0; l < spec.LeafPerPod; l++ {
			for i := 0; i < spec.HostsPerLeaf; i++ {
				ip := m.HostIP(p, l, i)
				for si := range bPod.Switches {
					refOut, refOK := bPod.Switches[si].Route(ip)
					out, ok := bDU.Switches[si].Route(ip)
					if refOK != ok || (ok && refOut != out) {
						t.Fatalf("switch %d route to %v: default-up (%d,%v), per-pod (%d,%v)",
							si, ip, out, ok, refOut, refOK)
					}
				}
			}
		}
	}

	// Pod-switch state must not grow with the pod count.
	maxPodEntries := func(spec topogen.ClosSpec) int {
		topo, m := topogen.Clos(spec)
		b := topo.Build("clos", 7, nil, nil)
		max := 0
		for p := 0; p < spec.Pods; p++ {
			for _, si := range m.PodSwitches(p) {
				perIP, prefix := b.Switches[si].RouteEntries()
				if n := perIP + prefix; n > max {
					max = n
				}
			}
		}
		return max
	}
	small, big := du, du
	big.Pods = 8
	big.Cores = 4
	if a, b := maxPodEntries(small), maxPodEntries(big); a != b {
		t.Fatalf("default-up pod-switch entries grew with pods: %d pods → %d entries, %d pods → %d",
			small.Pods, a, big.Pods, b)
	}
}
