// Package topogen generates datacenter-scale fabrics for netsim: multi-pod
// Clos topologies (with the classic k-ary fat tree as a special case), pod-
// aligned IP addressing, aggregate (prefix) routes that keep per-switch
// routing state O(pods) instead of O(hosts), and lazy host slots so a
// 10⁴–10⁵-host fabric only pays instantiation cost for the hosts a workload
// actually touches.
package topogen

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// ClosSpec parametrizes a three-tier multi-pod Clos fabric: Pods pods of
// LeafPerPod leaf (ToR) switches and SpinePerPod spine switches each, joined
// by a core tier of Cores switches. Within a pod every leaf connects to
// every spine; spine j of every pod connects to the core group
// [j·g, (j+1)·g) where g = Cores/SpinePerPod, so any two pods are two hops
// apart through g parallel cores per spine pair.
type ClosSpec struct {
	Pods         int
	LeafPerPod   int
	SpinePerPod  int
	Cores        int // multiple of SpinePerPod; 0 allowed when Pods == 1
	HostsPerLeaf int

	HostRate int64 // host access links
	LeafRate int64 // leaf↔spine links; 0 derives from Oversub
	CoreRate int64 // spine↔core links; 0 copies LeafRate

	// Oversub is the leaf oversubscription ratio: downlink capacity
	// (HostsPerLeaf·HostRate) over uplink capacity (SpinePerPod·LeafRate).
	// Used only when LeafRate is 0; 0 means 1:1 (non-blocking).
	Oversub float64

	LinkDelay sim.Time

	// Lazy leaves every host slot uninstantiated until
	// Built.MaterializeSlot; mandatory in practice beyond ~10⁴ hosts.
	Lazy bool

	// FlatRoutes suppresses aggregates and installs classic per-IP routes
	// on every switch. O(hosts·switches) state — only viable for small
	// instances; it exists so tests can compare prefix and per-IP routing
	// on the same fabric.
	FlatRoutes bool

	// DefaultUp replaces the globally-visible per-pod aggregates with a
	// three-level default-route plan: leaf aggregates stay scoped to their
	// pod, pod aggregates are scoped to the core tier plus the pod's own
	// switches, and a single global 10.0.0.0/8 default targets the cores.
	// Off-pod reachability then costs every pod switch one entry instead
	// of O(Pods), moving the O(Pods) tier onto the cores alone — the
	// difference between 10⁵- and 10⁶-endpoint fabrics fitting in memory.
	// Forwarding is hop-for-hop identical to the per-pod plan for valid
	// addresses (the ECMP candidate sets coincide at every tier); invalid
	// pod bits blackhole at a core instead of dropping at the source leaf.
	// Only meaningful when Pods > 1 and LeafPerPod > 1.
	DefaultUp bool
}

// FatTree returns the spec of a k-ary fat tree (k even): k pods of k/2
// leaves and k/2 spines, (k/2)² cores, k/2 hosts per leaf — k³/4 hosts
// total, non-blocking.
func FatTree(k int, hostRate, fabricRate int64, delay sim.Time, lazy bool) ClosSpec {
	if k%2 != 0 || k < 2 {
		panic("topogen: fat tree needs even k >= 2")
	}
	half := k / 2
	return ClosSpec{
		Pods:         k,
		LeafPerPod:   half,
		SpinePerPod:  half,
		Cores:        half * half,
		HostsPerLeaf: half,
		HostRate:     hostRate,
		LeafRate:     fabricRate,
		CoreRate:     fabricRate,
		LinkDelay:    delay,
		Lazy:         lazy,
	}
}

// ClosMeta indexes the generated fabric.
type ClosMeta struct {
	Spec ClosSpec

	Core      []int     // core switch indices
	Spine     [][]int   // [pod][j] spine switch indices
	Leaf      [][]int   // [pod][l] leaf switch indices
	HostSlots [][][]int // [pod][leaf][i] host slot indices

	// PodPrefix[p] aggregates every address in pod p; LeafPrefix[p][l]
	// aggregates one leaf's block. Derivable from the bit layout but kept
	// explicit for tests and tooling.
	PodPrefix  []proto.Prefix
	LeafPrefix [][]proto.Prefix

	hostBits, leafBits, podBits uint
}

// bitsFor returns the smallest b with 1<<b >= n.
func bitsFor(n int) uint {
	b := uint(0)
	for 1<<b < n {
		b++
	}
	return b
}

// HostIP returns the pod-aligned address of host i (0-based) on leaf l of
// pod p: 10.<pod bits><leaf bits><host bits>, host index starting at 1 so a
// leaf's block base is never a host address.
func (m *ClosMeta) HostIP(pod, leaf, i int) proto.IP {
	return proto.IP(0x0a000000 |
		uint32(pod)<<(m.leafBits+m.hostBits) |
		uint32(leaf)<<m.hostBits |
		uint32(i+1))
}

// TotalHosts returns the number of host slots in the fabric.
func (m *ClosMeta) TotalHosts() int {
	return m.Spec.Pods * m.Spec.LeafPerPod * m.Spec.HostsPerLeaf
}

// PodSwitches returns the switch indices of pod p (leaves then spines).
func (m *ClosMeta) PodSwitches(pod int) []int {
	out := make([]int, 0, len(m.Leaf[pod])+len(m.Spine[pod]))
	out = append(out, m.Leaf[pod]...)
	out = append(out, m.Spine[pod]...)
	return out
}

// AssignByPod maps the fabric onto parts partitions for Topology.Build:
// each pod's switches land together on partition pod·parts/Pods, and cores
// spread proportionally. Hosts follow their leaf automatically.
func (m *ClosMeta) AssignByPod(parts int) []int {
	n := len(m.Core)
	for _, pod := range m.Spine {
		n += len(pod)
	}
	for _, pod := range m.Leaf {
		n += len(pod)
	}
	assign := make([]int, n)
	for p := 0; p < m.Spec.Pods; p++ {
		part := p * parts / m.Spec.Pods
		for _, s := range m.PodSwitches(p) {
			assign[s] = part
		}
	}
	for i, c := range m.Core {
		if len(m.Core) > 0 {
			assign[c] = i * parts / len(m.Core)
		}
	}
	return assign
}

// Clos generates the fabric as a netsim Topology plus its index. The
// address plan packs pod, leaf, and host fields into the low 24 bits of
// 10.0.0.0/8; aggregates (unless FlatRoutes) are one scoped prefix per leaf
// (visible inside its pod) and one global prefix per pod (targeting the
// pod's spines), so every switch holds O(Pods + LeafPerPod) routing entries
// regardless of host count.
func Clos(spec ClosSpec) (*netsim.Topology, *ClosMeta) {
	if spec.Pods < 1 || spec.LeafPerPod < 1 || spec.SpinePerPod < 1 || spec.HostsPerLeaf < 1 {
		panic("topogen: Pods, LeafPerPod, SpinePerPod, HostsPerLeaf must all be >= 1")
	}
	if spec.Cores == 0 && spec.Pods > 1 {
		panic("topogen: multi-pod Clos needs a core tier")
	}
	if spec.Cores > 0 && spec.Cores%spec.SpinePerPod != 0 {
		panic(fmt.Sprintf("topogen: Cores (%d) must be a multiple of SpinePerPod (%d)",
			spec.Cores, spec.SpinePerPod))
	}
	if spec.LeafRate == 0 {
		over := spec.Oversub
		if over == 0 {
			over = 1
		}
		spec.LeafRate = int64(float64(spec.HostsPerLeaf) * float64(spec.HostRate) /
			(float64(spec.SpinePerPod) * over))
		if spec.LeafRate <= 0 {
			panic("topogen: derived LeafRate is not positive")
		}
	}
	if spec.CoreRate == 0 {
		spec.CoreRate = spec.LeafRate
	}

	m := &ClosMeta{
		Spec:     spec,
		hostBits: bitsFor(spec.HostsPerLeaf + 1),
		leafBits: bitsFor(spec.LeafPerPod),
		podBits:  bitsFor(spec.Pods),
	}
	if m.hostBits+m.leafBits+m.podBits > 24 {
		panic(fmt.Sprintf("topogen: address plan needs %d bits, only 24 available in 10.0.0.0/8",
			m.hostBits+m.leafBits+m.podBits))
	}

	t := &netsim.Topology{}
	for c := 0; c < spec.Cores; c++ {
		m.Core = append(m.Core, t.AddSwitch(fmt.Sprintf("core%d", c)))
	}
	g := 0
	if spec.Cores > 0 {
		g = spec.Cores / spec.SpinePerPod
	}
	for p := 0; p < spec.Pods; p++ {
		var spines, leaves []int
		for j := 0; j < spec.SpinePerPod; j++ {
			spines = append(spines, t.AddSwitch(fmt.Sprintf("spine%d.%d", p, j)))
		}
		for l := 0; l < spec.LeafPerPod; l++ {
			leaves = append(leaves, t.AddSwitch(fmt.Sprintf("leaf%d.%d", p, l)))
		}
		for _, lf := range leaves {
			for _, sp := range spines {
				t.AddLink(lf, sp, spec.LeafRate, spec.LinkDelay)
			}
		}
		for j, sp := range spines {
			for c := 0; c < g; c++ {
				t.AddLink(sp, m.Core[j*g+c], spec.CoreRate, spec.LinkDelay)
			}
		}

		podHosts := make([][]int, spec.LeafPerPod)
		leafPrefixes := make([]proto.Prefix, spec.LeafPerPod)
		for l, lf := range leaves {
			leafPrefixes[l] = proto.MakePrefix(m.HostIP(p, l, 0), 32-int(m.hostBits))
			for i := 0; i < spec.HostsPerLeaf; i++ {
				ip := m.HostIP(p, l, i)
				name := fmt.Sprintf("h%d.%d.%d", p, l, i)
				var hi int
				if spec.Lazy {
					hi = t.AddLazyHost(name, ip, lf, spec.HostRate, spec.LinkDelay)
				} else {
					hi = t.AddHost(name, ip, lf, spec.HostRate, spec.LinkDelay)
				}
				podHosts[l] = append(podHosts[l], hi)
			}
		}
		m.Spine = append(m.Spine, spines)
		m.Leaf = append(m.Leaf, leaves)
		m.HostSlots = append(m.HostSlots, podHosts)
		m.PodPrefix = append(m.PodPrefix,
			proto.MakePrefix(m.HostIP(p, 0, 0), 32-int(m.hostBits+m.leafBits)))
		m.LeafPrefix = append(m.LeafPrefix, leafPrefixes)
	}

	if !spec.FlatRoutes {
		for p := 0; p < spec.Pods; p++ {
			if spec.LeafPerPod == 1 {
				// leafBits is 0, so the leaf block IS the pod block; a
				// scoped leaf aggregate plus a same-length pod aggregate
				// would collide (the pod blackhole at the spines would
				// shadow the leaf route). Install one global aggregate
				// per pod targeting its single leaf instead.
				t.AddAggregate(m.LeafPrefix[p][0], []int{m.Leaf[p][0]}, nil)
				continue
			}
			podScope := m.PodSwitches(p)
			for l, lf := range m.Leaf[p] {
				// One leaf aggregate, visible only inside the pod: pod
				// peers reach the leaf through the spines; everyone else
				// gets there through the pod aggregate first.
				t.AddAggregate(m.LeafPrefix[p][l], []int{lf}, podScope)
			}
			// One pod aggregate targeting the pod's spines. In a
			// single-pod fabric the leaf aggregates already cover
			// everything and a global spine-target would shadow nothing —
			// skip it and let unknown pods blackhole by absence. Under
			// DefaultUp the aggregate is scoped to the cores and the pod
			// itself; everyone else reaches the pod via the default below.
			if spec.Pods > 1 {
				if spec.DefaultUp {
					scope := make([]int, 0, len(m.Core)+len(podScope))
					scope = append(scope, m.Core...)
					scope = append(scope, podScope...)
					t.AddAggregate(m.PodPrefix[p], m.Spine[p], scope)
				} else {
					t.AddAggregate(m.PodPrefix[p], m.Spine[p], nil)
				}
			}
		}
		if spec.DefaultUp && spec.Pods > 1 && spec.LeafPerPod > 1 {
			// The global default: any address in 10/8 without a longer
			// match travels up to the core tier, where the pod aggregates
			// take over (or blackhole unknown pods).
			t.AddAggregate(proto.MakePrefix(proto.IP(0x0a000000), 8), m.Core, nil)
		}
	}
	return t, m
}
