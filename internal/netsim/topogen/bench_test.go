package topogen_test

import (
	"testing"

	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/netsim/topogen"
	"repro/internal/netsim/workload"
	"repro/internal/orch"
	"repro/internal/sim"
)

// The BenchmarkScale* suite is recorded into BENCH_scale.json by
// scripts/bench.sh. Beyond ns/op it reports the tentpole's two scaling
// figures via custom metrics: sustained simulated packets per wall-clock
// second ("pkts/s") and resident routing state per host ("bytes/host").

// scale10k is a 10⁴-host Clos: 16 pods × 16 leaves × 8 spines, 40 hosts
// per leaf = 10,240 hosts, 416 switches.
var scale10k = topogen.ClosSpec{
	Pods: 16, LeafPerPod: 16, SpinePerPod: 8, Cores: 32, HostsPerLeaf: 40,
	HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps, CoreRate: 100 * sim.Gbps,
	LinkDelay: sim.Microsecond, Lazy: true,
}

// scale100k is the acceptance-scale fabric: 100 pods × 32 leaves × 8
// spines, 32 hosts per leaf = 102,400 hosts, 4,032 switches.
var scale100k = topogen.ClosSpec{
	Pods: 100, LeafPerPod: 32, SpinePerPod: 8, Cores: 32, HostsPerLeaf: 32,
	HostRate: 10 * sim.Gbps, LeafRate: 40 * sim.Gbps, CoreRate: 100 * sim.Gbps,
	LinkDelay: sim.Microsecond, Lazy: true,
}

// reportRoutingState attaches the bytes-of-routing-state-per-host metric.
func reportRoutingState(b *testing.B, built *netsim.Built, hosts int) {
	total := 0
	for _, sw := range built.Switches {
		total += sw.RouteStateBytes()
	}
	b.ReportMetric(float64(total)/float64(hosts), "bytes/host")
}

// benchBuild measures topology generation + hierarchical route
// installation for a spec.
func benchBuild(b *testing.B, spec topogen.ClosSpec) {
	var built *netsim.Built
	var m *topogen.ClosMeta
	for i := 0; i < b.N; i++ {
		topo, meta := topogen.Clos(spec)
		built = topo.Build("clos", 1, nil, nil)
		m = meta
	}
	reportRoutingState(b, built, m.TotalHosts())
}

func BenchmarkScaleBuild10k(b *testing.B)  { benchBuild(b, scale10k) }
func BenchmarkScaleBuild100k(b *testing.B) { benchBuild(b, scale100k) }

// benchWorkload builds the fabric once per iteration, materializes the
// participating hosts, runs the workload for simDur, and reports sustained
// packets per wall-clock second across the whole benchmark.
func benchWorkload(b *testing.B, spec topogen.ClosSpec, pick func(m *topogen.ClosMeta) []int, wl workload.Spec, simDur sim.Time) {
	var pkts uint64
	var built *netsim.Built
	var m *topogen.ClosMeta
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, meta := topogen.Clos(spec)
		built = topo.Build("clos", 1, nil, nil)
		m = meta
		slots := pick(meta)
		hosts := make([]*netsim.Host, len(slots))
		for j, slot := range slots {
			hosts[j] = built.MaterializeSlot(slot)
		}
		eng := workload.Install(hosts, wl)
		s := orch.New()
		instantiate.WirePartitions(s, topo, built, true)
		b.StartTimer()

		s.RunSequential(simDur)

		b.StopTimer()
		if s.LiveFrames() != 0 {
			b.Fatalf("%d frames leaked", s.LiveFrames())
		}
		r := eng.Collect()
		if r.FlowsCompleted == 0 {
			b.Fatal("no flows completed")
		}
		for _, sw := range built.Switches {
			pkts += sw.RxPackets
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
	reportRoutingState(b, built, m.TotalHosts())
}

// incastSlots picks 64 clients spread across pods plus one victim.
func incastSlots(m *topogen.ClosMeta) []int {
	slots := []int{m.HostSlots[0][0][0]} // victim first
	for i := 0; len(slots) < 65; i++ {
		p := i % m.Spec.Pods
		l := (i / m.Spec.Pods) % m.Spec.LeafPerPod
		h := i % m.Spec.HostsPerLeaf
		s := m.HostSlots[p][l][h]
		if s != slots[0] {
			slots = append(slots, s)
		}
	}
	return slots
}

// shuffleSlots picks 64 hosts spread across pods.
func shuffleSlots(m *topogen.ClosMeta) []int {
	var slots []int
	for i := 0; len(slots) < 64; i++ {
		p := i % m.Spec.Pods
		l := (i / m.Spec.Pods) % m.Spec.LeafPerPod
		h := i % m.Spec.HostsPerLeaf
		slots = append(slots, m.HostSlots[p][l][h])
	}
	return slots
}

func BenchmarkScaleIncast10k(b *testing.B) {
	benchWorkload(b, scale10k, incastSlots, workload.Spec{
		Pattern: workload.Incast{Victim: 0},
		Sizes:   workload.Fixed(20_000),
		Arrival: workload.Closed{Concurrency: 2},
		Seed:    1,
	}, 2*sim.Millisecond)
}

func BenchmarkScaleShuffle10k(b *testing.B) {
	benchWorkload(b, scale10k, shuffleSlots, workload.Spec{
		Pattern: workload.Shuffle{},
		Sizes:   workload.Pareto{Min: 1000, Alpha: 1.3, Max: 500_000},
		Arrival: workload.Open{FlowsPerSec: 20_000},
		Seed:    1,
	}, 2*sim.Millisecond)
}

func BenchmarkScaleIncast100k(b *testing.B) {
	benchWorkload(b, scale100k, incastSlots, workload.Spec{
		Pattern: workload.Incast{Victim: 0},
		Sizes:   workload.Fixed(20_000),
		Arrival: workload.Closed{Concurrency: 2},
		Seed:    1,
	}, 2*sim.Millisecond)
}
