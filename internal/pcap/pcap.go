// Package pcap writes classic libpcap capture files of simulated traffic,
// so frames from any simulated link can be inspected with standard tooling
// (tcpdump -r, Wireshark). Virtual payloads are elided on the simulated
// wire, which maps exactly onto pcap's snap-length semantics: the captured
// length is the encoded bytes, the original length is the frame's true
// wire length.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim"
)

// magic is the little-endian libpcap magic for microsecond timestamps.
const magic = 0xa1b2c3d4

// linkTypeEthernet is LINKTYPE_ETHERNET.
const linkTypeEthernet = 1

// DefaultSnapLen is advertised in the global header.
const DefaultSnapLen = 65535

// Writer emits a libpcap stream.
type Writer struct {
	w io.Writer
	// Packets counts records written.
	Packets uint64
}

// NewWriter writes the global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magic)
	le.PutUint16(hdr[4:], 2)  // version major
	le.PutUint16(hdr[6:], 4)  // version minor
	le.PutUint32(hdr[8:], 0)  // thiszone
	le.PutUint32(hdr[12:], 0) // sigfigs
	le.PutUint32(hdr[16:], DefaultSnapLen)
	le.PutUint32(hdr[20:], linkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket records one frame captured at virtual time ts. origLen is the
// frame's true wire length (>= len(data) when virtual payload was elided).
func (p *Writer) WritePacket(ts sim.Time, origLen int, data []byte) error {
	if origLen < len(data) {
		origLen = len(data)
	}
	var hdr [16]byte
	le := binary.LittleEndian
	us := int64(ts) / int64(sim.Microsecond)
	le.PutUint32(hdr[0:], uint32(us/1_000_000))
	le.PutUint32(hdr[4:], uint32(us%1_000_000))
	le.PutUint32(hdr[8:], uint32(len(data)))
	le.PutUint32(hdr[12:], uint32(origLen))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := p.w.Write(data); err != nil {
		return fmt.Errorf("pcap: record data: %w", err)
	}
	p.Packets++
	return nil
}

// Record is one parsed capture record (used by tests and tools).
type Record struct {
	TS      sim.Time
	OrigLen int
	Data    []byte
}

// Parse reads back a libpcap stream written by this package.
func Parse(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short global header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("pcap: bad magic %#x", le.Uint32(hdr[0:]))
	}
	var out []Record
	for {
		var rh [16]byte
		if _, err := io.ReadFull(r, rh[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("pcap: record header: %w", err)
		}
		capLen := le.Uint32(rh[8:])
		if capLen > DefaultSnapLen {
			return nil, fmt.Errorf("pcap: captured length %d exceeds snaplen", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: record data: %w", err)
		}
		ts := sim.Time(le.Uint32(rh[0:]))*sim.Second + sim.Time(le.Uint32(rh[4:]))*sim.Microsecond
		out = append(out, Record{TS: ts, OrigLen: int(le.Uint32(rh[12:])), Data: data})
	}
}
