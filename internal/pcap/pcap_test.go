package pcap_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/pcap"
	"repro/internal/proto"
	"repro/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(1500*sim.Microsecond, 1000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(2*sim.Second, 4, []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || w.Packets != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].TS != 1500*sim.Microsecond || recs[0].OrigLen != 1000 {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if recs[1].TS != 2*sim.Second || !bytes.Equal(recs[1].Data, []byte{9, 9, 9, 9}) {
		t.Fatalf("record 1: %+v", recs[1])
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(tsUs uint32, data []byte) bool {
		if len(data) > 65535 {
			data = data[:65535]
		}
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf)
		if err != nil {
			return false
		}
		ts := sim.Time(tsUs) * sim.Microsecond
		if err := w.WritePacket(ts, len(data)+100, data); err != nil {
			return false
		}
		recs, err := pcap.Parse(&buf)
		if err != nil || len(recs) != 1 {
			return false
		}
		return recs[0].TS == ts && recs[0].OrigLen == len(data)+100 &&
			bytes.Equal(recs[0].Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := pcap.Parse(bytes.NewReader([]byte("not a pcap file at all...."))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestCaptureSimulatedLink taps a simulated link and verifies the capture
// holds decodable frames with monotone virtual timestamps and correct
// original (virtual-payload-inclusive) lengths.
func TestCaptureSimulatedLink(t *testing.T) {
	n := netsim.New("net", 1)
	sw := n.AddSwitch("sw")
	h1 := n.AddHost("h1", proto.HostIP(1))
	h2 := n.AddHost("h2", proto.HostIP(2))
	n.ConnectHostSwitch(h1, sw, 10*sim.Gbps, sim.Microsecond)
	n.ConnectHostSwitch(h2, sw, 10*sim.Gbps, sim.Microsecond)
	n.ComputeRoutes()

	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	netsim.AttachPcap(h1.Iface(), w)

	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		for i := 0; i < 5; i++ {
			h.After(sim.Time(i)*100*sim.Microsecond, func() {
				h.SendUDP(proto.HostIP(2), 1, 9, []byte("data"), 1000)
			})
		}
	}))
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(10 * sim.Millisecond)
	s.RunBefore(10 * sim.Millisecond)

	recs, err := pcap.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("captured %d packets, want 5", len(recs))
	}
	var last sim.Time = -1
	for _, r := range recs {
		if r.TS < last {
			t.Fatal("timestamps not monotone")
		}
		last = r.TS
		f, err := proto.ParseFrame(r.Data)
		if err != nil {
			t.Fatalf("captured frame undecodable: %v", err)
		}
		if f.IP.Dst != proto.HostIP(2) || f.VirtualPayload != 1000 {
			t.Fatalf("frame content wrong: %+v", f)
		}
		if r.OrigLen != f.WireLen() || r.OrigLen <= len(r.Data) {
			t.Fatalf("length semantics: orig %d cap %d wire %d",
				r.OrigLen, len(r.Data), f.WireLen())
		}
	}
}
