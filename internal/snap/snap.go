// Package snap is the checkpoint wire format: a flat, versioned,
// CRC-guarded container of named sections, each holding fixed-width
// little-endian primitives. It is deliberately dumb — no reflection, no
// schema evolution beyond the version gate — because checkpoint bytes must
// be bit-identical across executors and placements, and the simplest
// encoding is the easiest to keep deterministic.
//
// Reading never panics: truncated or garbled input surfaces as the typed
// errors ErrTruncated, ErrCorrupt, and ErrVersion. The Decoder carries a
// sticky error so restore code can decode a whole struct and check Err()
// once at the end.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// Typed read errors. Callers branch on these with errors.Is.
var (
	// ErrTruncated reports input that ends before a declared length.
	ErrTruncated = errors.New("snap: truncated input")
	// ErrCorrupt reports structurally invalid input: bad magic, CRC
	// mismatch, duplicate or malformed sections.
	ErrCorrupt = errors.New("snap: corrupt input")
	// ErrVersion reports a container written by an incompatible version.
	ErrVersion = errors.New("snap: unsupported version")
)

const (
	// magic identifies a snap container ("SPSN" little-endian).
	magic uint32 = 0x4e535053
	// Version is the current container version.
	Version uint16 = 1
)

// Encoder appends fixed-width little-endian primitives to a buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded bytes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset truncates the encoder to empty while keeping its backing array, so
// a periodic in-memory snapshot (the optimistic executor takes one per
// committed horizon) reuses one buffer instead of allocating each time.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 double.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads fixed-width primitives from a buffer with a sticky error:
// once a read runs past the end, Err() returns ErrTruncated and every
// subsequent read yields zero values. Check Err() after decoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky error, if any read failed.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 double.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a 0/1 byte; any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a uint32-length-prefixed byte slice. The returned slice
// aliases the decoder's buffer; copy it before retaining or mutating.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }

// Writer assembles a container: a header, named sections, and a trailing
// CRC over everything before it.
type Writer struct {
	buf   []byte
	names map[string]bool
}

// NewWriter starts a container.
func NewWriter() *Writer {
	w := &Writer{names: make(map[string]bool)}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, magic)
	w.buf = binary.LittleEndian.AppendUint16(w.buf, Version)
	return w
}

// Section appends a named section. Names must be unique within a container.
func (w *Writer) Section(name string, payload []byte) error {
	if w.names[name] {
		return fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
	}
	w.names[name] = true
	var e Encoder
	e.String(name)
	e.Bytes32(payload)
	w.buf = append(w.buf, e.Bytes()...)
	return nil
}

// Finish appends the CRC32 trailer and returns the container bytes. The
// writer must not be reused afterwards.
func (w *Writer) Finish() []byte {
	sum := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, sum)
	return w.buf
}

// Reader is a parsed container: a map from section name to payload.
type Reader struct {
	sections map[string][]byte
}

// Open validates the container (magic, version, CRC, section structure) and
// indexes its sections. Section payloads alias data.
func Open(data []byte) (*Reader, error) {
	if len(data) < 10 { // magic + version + CRC
		return nil, ErrTruncated
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != Version {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrVersion, v, Version)
	}
	r := &Reader{sections: make(map[string][]byte)}
	d := NewDecoder(body[6:])
	for d.Remaining() > 0 {
		name := d.String()
		payload := d.Bytes32()
		if d.Err() != nil {
			return nil, fmt.Errorf("%w: malformed section table", ErrCorrupt)
		}
		if _, dup := r.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		r.sections[name] = payload
	}
	return r, nil
}

// Section returns the payload of a named section.
func (r *Reader) Section(name string) ([]byte, error) {
	p, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
	}
	return p, nil
}

// Has reports whether a section is present.
func (r *Reader) Has(name string) bool {
	_, ok := r.sections[name]
	return ok
}

// Names returns the section names, sorted.
func (r *Reader) Names() []string {
	out := make([]string, 0, len(r.sections))
	for n := range r.sections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
