package snap

import (
	"errors"
	"testing"
)

// TestRoundTrip encodes every primitive through a sectioned container and
// decodes it back bit-exactly.
func TestRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(0xab)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.Bytes32([]byte{1, 2, 3})
	e.String("hello")

	w := NewWriter()
	if err := w.Section("a", e.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("b", nil); err != nil {
		t.Fatal(err)
	}
	data := w.Finish()

	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("a") || !r.Has("b") || r.Has("c") {
		t.Fatalf("section presence wrong: %v", r.Names())
	}
	p, err := r.Section("a")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(p)
	if v := d.U8(); v != 0xab {
		t.Fatalf("U8 = %#x", v)
	}
	if v := d.U16(); v != 0xbeef {
		t.Fatalf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip wrong")
	}
	if b := d.Bytes32(); string(b) != "\x01\x02\x03" {
		t.Fatalf("Bytes32 = %v", b)
	}
	if s := d.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

// TestDecoderSticky verifies reads past the end set ErrTruncated once and
// keep returning zeros instead of panicking.
func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U16()
	if v := d.U64(); v != 0 {
		t.Fatalf("read past end = %d, want 0", v)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Still sticky.
	if s := d.String(); s != "" {
		t.Fatalf("String after error = %q", s)
	}
}

// TestDecoderHugeLength checks a length prefix larger than the buffer is a
// truncation, not an allocation or panic.
func TestDecoderHugeLength(t *testing.T) {
	d := NewDecoder([]byte{0xff, 0xff, 0xff, 0xff, 0})
	if b := d.Bytes32(); b != nil {
		t.Fatalf("Bytes32 = %v, want nil", b)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
}

// TestOpenErrors drives Open through every typed failure.
func TestOpenErrors(t *testing.T) {
	w := NewWriter()
	if err := w.Section("s", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	good := w.Finish()

	if _, err := Open(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Open(good[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	// Flip a payload byte: CRC catches it.
	bad := append([]byte(nil), good...)
	bad[8] ^= 0xff
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbled: %v", err)
	}
	// Truncation also breaks the CRC.
	if _, err := Open(good[:len(good)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated tail: %v", err)
	}
	// Wrong version with a valid CRC.
	ver := append([]byte(nil), good...)
	ver[4] = 99
	ver = recrc(ver)
	if _, err := Open(ver); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
}

// recrc rewrites the trailing CRC so structural corruption tests get past
// the checksum gate.
func recrc(data []byte) []byte {
	w := Writer{buf: data[:len(data)-4]}
	return w.Finish()
}

func TestDuplicateSection(t *testing.T) {
	w := NewWriter()
	if err := w.Section("s", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("s", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dup write: %v", err)
	}
	// A hand-built container with two sections of the same name must be
	// rejected on read too.
	var e Encoder
	e.String("s")
	e.Bytes32(nil)
	w2 := NewWriter()
	w2.buf = append(w2.buf, e.Bytes()...)
	w2.buf = append(w2.buf, e.Bytes()...)
	if _, err := Open(w2.Finish()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dup read: %v", err)
	}
}

// FuzzSnapshot feeds arbitrary bytes to Open and, when they parse, re-reads
// every section. Mirrors FuzzProxyFraming: the decoder must return typed
// errors on any input, never panic, and valid containers must round-trip.
func FuzzSnapshot(f *testing.F) {
	w := NewWriter()
	_ = w.Section("meta", []byte{1, 2, 3, 4})
	_ = w.Section("events", []byte("abcdefgh"))
	f.Add(w.Finish())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x50, 0x53, 0x4e, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Parsed containers re-encode to the same section set.
		w := NewWriter()
		for _, name := range r.Names() {
			p, err := r.Section(name)
			if err != nil {
				t.Fatalf("listed section missing: %v", err)
			}
			if err := w.Section(name, p); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			d := NewDecoder(p)
			for d.Err() == nil && d.Remaining() > 0 {
				_ = d.U8()
			}
		}
		r2, err := Open(w.Finish())
		if err != nil {
			t.Fatalf("re-open: %v", err)
		}
		if len(r2.Names()) != len(r.Names()) {
			t.Fatalf("section count changed: %v vs %v", r2.Names(), r.Names())
		}
	})
}
