// Package crdb implements the commit-wait replicated key-value store of
// the clock-synchronization case study: a CockroachDB-like system (as
// modified by prior work the paper builds on) whose writes wait out the
// dynamic clock error bound reported by chrony before acknowledging, so
// that transaction timestamps are safely in the past on every node. The
// tighter the clock bound, the shorter the commit wait — which is how PTP's
// sub-microsecond bound turns into write throughput and latency gains.
package crdb

import (
	"repro/internal/apps/kv"
	"repro/internal/proto"
	"repro/internal/sim"
)

// ReplicationPort carries leader-to-follower replication traffic.
const ReplicationPort = proto.PortCRDB + 1

// Params configures a replica.
type Params struct {
	// ReadCost and WriteCost are per-operation CPU costs.
	ReadCost  sim.Time
	WriteCost sim.Time
	// Follower, when set, makes this replica the leader replicating to
	// that address.
	Follower proto.IP
	// Bound returns the current clock error bound (chrony's report); the
	// leader's commit wait. Nil means no commit wait (unsafe config).
	Bound func() sim.Time
}

// DefaultParams models the storage engine costs.
func DefaultParams() Params {
	return Params{
		ReadCost:  3 * sim.Microsecond,
		WriteCost: 6 * sim.Microsecond,
	}
}

type pendingWrite struct {
	src     proto.IP
	srcPort uint16
	msg     proto.KVMsg
	startAt sim.Time
}

// Server is one replica. The leader serves clients on proto.PortCRDB and
// replicates writes to the follower; the follower applies and acks.
type Server struct {
	env kv.Env
	p   Params

	versions  map[uint64]uint64
	lastWrite map[uint64]sim.Time      // commit timestamp (local clock) per key
	pending   map[uint64]*pendingWrite // by client seq (client ids disjoint ports)

	// Reads, Writes and Replicated count operations; ReadRestarts counts
	// reads delayed by the uncertainty interval.
	Reads, Writes, Replicated, ReadRestarts uint64
	// CommitWaits accumulates total commit-wait time (for reporting).
	CommitWaits sim.Time
}

// NewServer creates a replica.
func NewServer(p Params) *Server {
	return &Server{
		p:         p,
		versions:  make(map[uint64]uint64),
		lastWrite: make(map[uint64]sim.Time),
		pending:   make(map[uint64]*pendingWrite),
	}
}

// Run binds the replica; call from the host tier's app hook.
func (s *Server) Run(env kv.Env) {
	s.env = env
	env.BindUDP(proto.PortCRDB, s.onClient)
	env.BindUDP(ReplicationPort, s.onReplication)
}

func (s *Server) onClient(src proto.IP, srcPort uint16, payload []byte, _ int) {
	m, err := proto.ParseKV(payload)
	if err != nil {
		return
	}
	switch m.Op {
	case proto.KVGet:
		s.env.Compute(s.p.ReadCost, func() {
			// Uncertainty interval: a read whose timestamp falls within the
			// clock error bound of a recent write on the same key cannot
			// tell whether that write happened-before it; CockroachDB
			// restarts the read, which amounts to waiting out the remainder
			// of the interval.
			if wait := s.uncertaintyWait(m.Key); wait > 0 {
				s.ReadRestarts++
				s.env.After(wait, func() { s.serveRead(src, srcPort, m) })
				return
			}
			s.serveRead(src, srcPort, m)
		})
	case proto.KVSet:
		s.env.Compute(s.p.WriteCost, func() {
			s.Writes++
			s.versions[m.Key]++
			s.lastWrite[m.Key] = s.clockNow()
			if s.p.Follower == 0 {
				// Single replica: commit-wait immediately after applying.
				s.commitWait(&pendingWrite{src: src, srcPort: srcPort, msg: m})
				return
			}
			key := replKey(m)
			s.pending[key] = &pendingWrite{src: src, srcPort: srcPort, msg: m, startAt: s.env.Now()}
			repl := m
			s.env.SendUDP(s.p.Follower, ReplicationPort, ReplicationPort,
				proto.AppendKV(nil, repl), int(m.ValueLen))
		})
	}
}

// serveRead answers a GET.
func (s *Server) serveRead(src proto.IP, srcPort uint16, m proto.KVMsg) {
	s.Reads++
	reply := m
	reply.Op = proto.KVGetReply
	reply.Ver = s.versions[m.Key]
	reply.ValueLen = 128
	s.env.SendUDP(src, proto.PortCRDB, srcPort, proto.AppendKV(nil, reply), 128)
}

// uncertaintyWait returns how long a read of key must wait to move its
// timestamp past the uncertainty interval of the key's latest write.
func (s *Server) uncertaintyWait(key uint64) sim.Time {
	if s.p.Bound == nil {
		return 0
	}
	last, ok := s.lastWrite[key]
	if !ok {
		return 0
	}
	now := s.clockNow()
	if horizon := last + s.p.Bound(); horizon > now {
		return horizon - now
	}
	return 0
}

// clockNow reads the host system clock when available (detailed hosts),
// falling back to simulation time on protocol-level hosts.
func (s *Server) clockNow() sim.Time {
	if h, ok := s.env.(interface{ ClockNow() sim.Time }); ok {
		return h.ClockNow()
	}
	return s.env.Now()
}

// replKey builds a map key from the client id and sequence number.
func replKey(m proto.KVMsg) uint64 { return uint64(m.Client)<<48 ^ m.Seq }

func (s *Server) onReplication(src proto.IP, srcPort uint16, payload []byte, _ int) {
	m, err := proto.ParseKV(payload)
	if err != nil {
		return
	}
	switch m.Op {
	case proto.KVSet:
		// Follower applies and acks.
		s.env.Compute(s.p.WriteCost, func() {
			s.Replicated++
			s.versions[m.Key]++
			ack := m
			ack.Op = proto.KVSetReply
			s.env.SendUDP(src, ReplicationPort, srcPort, proto.AppendKV(nil, ack), 0)
		})
	case proto.KVSetReply:
		// Leader observes the quorum ack, then waits out the clock bound.
		pd, ok := s.pending[replKey(m)]
		if !ok {
			return
		}
		delete(s.pending, replKey(m))
		s.commitWait(pd)
	}
}

// commitWait delays the client ack until the commit timestamp is safely in
// the past on every replica — the clock-bound wait under study.
func (s *Server) commitWait(pd *pendingWrite) {
	var wait sim.Time
	if s.p.Bound != nil {
		wait = s.p.Bound()
	}
	s.CommitWaits += wait
	finish := func() {
		reply := pd.msg
		reply.Op = proto.KVSetReply
		reply.Ver = s.versions[pd.msg.Key]
		reply.ValueLen = 0
		s.env.SendUDP(pd.src, proto.PortCRDB, pd.srcPort, proto.AppendKV(nil, reply), 0)
	}
	if wait <= 0 {
		finish()
		return
	}
	s.env.After(wait, finish)
}

// SocialClientParams returns the case study's "social" workload: read-heavy
// zipf-distributed accesses with a meaningful write fraction, run closed
// loop against the leader on the CockroachDB port.
func SocialClientParams(id uint32, leader proto.IP) kv.ClientParams {
	p := kv.DefaultClientParams(id, []proto.IP{leader})
	p.Port = proto.PortCRDB
	p.WriteFrac = 0.3
	p.ZipfS = 1.2
	p.Keys = 50_000
	p.Outstanding = 4
	return p
}
