package crdb_test

import (
	"testing"

	"repro/internal/apps/crdb"
	"repro/internal/apps/kv"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// rig: leader + follower + one client on a single switch, protocol-level.
func rig(bound sim.Time) (*crdb.Server, *crdb.Server, *kv.Client, func(end sim.Time)) {
	n := netsim.New("net", 5)
	sw := n.AddSwitch("sw")
	leaderIP, followerIP := proto.HostIP(100), proto.HostIP(101)

	lp := crdb.DefaultParams()
	lp.Follower = followerIP
	lp.Bound = func() sim.Time { return bound }
	leader := crdb.NewServer(lp)
	lh := n.AddHost("leader", leaderIP)
	n.ConnectHostSwitch(lh, sw, 10*sim.Gbps, 1*sim.Microsecond)
	lh.SetApp(netsim.AppFunc(func(h *netsim.Host) { leader.Run(h) }))

	follower := crdb.NewServer(crdb.DefaultParams())
	fh := n.AddHost("follower", followerIP)
	n.ConnectHostSwitch(fh, sw, 10*sim.Gbps, 1*sim.Microsecond)
	fh.SetApp(netsim.AppFunc(func(h *netsim.Host) { follower.Run(h) }))

	cp := crdb.SocialClientParams(0, leaderIP)
	cp.WarmUp = 1 * sim.Millisecond
	cli := kv.NewClient(cp)
	ch := n.AddHost("cli", proto.HostIP(1))
	n.ConnectHostSwitch(ch, sw, 10*sim.Gbps, 1*sim.Microsecond)
	ch.SetApp(netsim.AppFunc(func(h *netsim.Host) { cli.Run(h) }))

	n.ComputeRoutes()
	run := func(end sim.Time) {
		s := sim.NewScheduler(0)
		n.Attach(core.Env{Sched: s, Src: 1})
		n.Start(end)
		for {
			at, ok := s.PeekTime()
			if !ok || at >= end {
				break
			}
			s.Step()
		}
	}
	return leader, follower, cli, run
}

func TestReplicationAndCommitWait(t *testing.T) {
	leader, follower, cli, run := rig(20 * sim.Microsecond)
	run(50 * sim.Millisecond)
	if cli.Completed == 0 {
		t.Fatal("no operations completed")
	}
	if leader.Writes == 0 || follower.Replicated == 0 {
		t.Fatalf("writes=%d replicated=%d", leader.Writes, follower.Replicated)
	}
	// Every leader write replicates; a handful may be in flight at cutoff.
	if d := leader.Writes - follower.Replicated; d > 4 {
		t.Fatalf("replication lag %d: leader %d vs follower %d",
			d, leader.Writes, follower.Replicated)
	}
	if leader.CommitWaits == 0 {
		t.Fatal("no commit-wait accumulated")
	}
	// Write latency must include replication RTT plus the 20us bound.
	if w := cli.WriteLat.Percentile(50); w < 25*sim.Microsecond {
		t.Fatalf("median write latency %v, want > replication + commit wait", w)
	}
	// Reads skip replication and commit-wait entirely.
	if r, w := cli.ReadLat.Percentile(50), cli.WriteLat.Percentile(50); r >= w {
		t.Fatalf("read p50 %v should be far below write p50 %v", r, w)
	}
}

func TestTighterBoundImprovesWrites(t *testing.T) {
	measure := func(bound sim.Time) (writeP50 sim.Time, rate float64) {
		_, _, cli, run := rig(bound)
		run(50 * sim.Millisecond)
		return cli.WriteLat.Percentile(50), float64(cli.Completed)
	}
	ntpLat, ntpOps := measure(11 * sim.Microsecond)
	ptpLat, ptpOps := measure(943 * sim.Nanosecond)
	if ptpLat >= ntpLat {
		t.Fatalf("PTP write p50 %v should beat NTP %v", ptpLat, ntpLat)
	}
	if ptpOps <= ntpOps {
		t.Fatalf("PTP throughput %v should beat NTP %v", ptpOps, ntpOps)
	}
	// The latency delta must be roughly the bound difference (~10us).
	diff := ntpLat - ptpLat
	if diff < 5*sim.Microsecond || diff > 20*sim.Microsecond {
		t.Fatalf("write latency delta %v, want ~10us", diff)
	}
}

func TestSingleReplicaCommitWait(t *testing.T) {
	n := netsim.New("net", 5)
	sw := n.AddSwitch("sw")
	ip := proto.HostIP(100)
	p := crdb.DefaultParams()
	p.Bound = func() sim.Time { return 50 * sim.Microsecond }
	srv := crdb.NewServer(p)
	sh := n.AddHost("srv", ip)
	n.ConnectHostSwitch(sh, sw, 10*sim.Gbps, 1*sim.Microsecond)
	sh.SetApp(netsim.AppFunc(func(h *netsim.Host) { srv.Run(h) }))
	cp := crdb.SocialClientParams(0, ip)
	cp.WriteFrac = 1
	cp.WarmUp = 0
	cp.Outstanding = 1
	cli := kv.NewClient(cp)
	ch := n.AddHost("cli", proto.HostIP(1))
	n.ConnectHostSwitch(ch, sw, 10*sim.Gbps, 1*sim.Microsecond)
	ch.SetApp(netsim.AppFunc(func(h *netsim.Host) { cli.Run(h) }))
	n.ComputeRoutes()
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(10 * sim.Millisecond)
	for {
		at, ok := s.PeekTime()
		if !ok || at >= 10*sim.Millisecond {
			break
		}
		s.Step()
	}
	if cli.Completed == 0 {
		t.Fatal("no writes completed")
	}
	// Closed loop with 1 outstanding: every write serializes behind the
	// 50us wait, so latency must exceed it.
	if w := cli.WriteLat.Min(); w < 50*sim.Microsecond {
		t.Fatalf("write latency %v below the commit wait", w)
	}
}

func TestUncertaintyIntervalRestartsReads(t *testing.T) {
	// A large bound plus a write-hot key forces reads into the uncertainty
	// window of recent writes.
	leader, _, cli, run := rig(200 * sim.Microsecond)
	_ = cli
	run(30 * sim.Millisecond)
	if leader.ReadRestarts == 0 {
		t.Fatal("no uncertainty restarts despite 200us bound and hot keys")
	}
	// With a tight bound, restarts become much rarer (they cannot hit zero:
	// back-to-back ops on the hottest key land within any positive bound).
	leader2, _, _, run2 := rig(500 * sim.Nanosecond)
	run2(30 * sim.Millisecond)
	if leader2.ReadRestarts*4 > leader.ReadRestarts {
		t.Fatalf("tight bound restarts %d should be far below loose bound %d",
			leader2.ReadRestarts, leader.ReadRestarts)
	}
}
