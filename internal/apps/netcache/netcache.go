// Package netcache implements the NetCache in-network key-value cache as a
// netsim switch dataplane (Jin et al., SOSP'17, as evaluated in the
// paper's in-network-processing case study).
//
// NetCache caches hot items in the switch: GETs for cached keys are
// answered directly from the dataplane, while all writes continue to the
// single responsible storage replica (clients range-partition the key
// space, so the hottest keys share one replica). A write passing through
// the switch updates the cached entry in place (write-through on the data
// path), and the server's SET reply confirms the authoritative version on
// the way back.
package netcache

import (
	"repro/internal/netsim"
	"repro/internal/proto"
)

// Dataplane is the switch program. Install on a netsim.Switch.
type Dataplane struct {
	// entries caches the hottest keys. Key ids double as popularity ranks
	// (the workload draws zipf ranks directly), so the controller warms
	// the cache with keys 0..HotKeys-1, matching NetCache's controller
	// keeping the hottest O(10k) items cached.
	entries   map[uint64]*entry
	valueSize uint16

	// Statistics.
	Hits, Misses, Updates, Refreshes uint64
}

type entry struct {
	ver      uint64
	valid    bool
	valueLen uint16
}

// New creates a dataplane with the hottest hotKeys items pre-cached (the
// controller's warm start), valueSize bytes each.
func New(hotKeys, valueSize int) *Dataplane {
	d := &Dataplane{entries: make(map[uint64]*entry, hotKeys), valueSize: uint16(valueSize)}
	for k := 0; k < hotKeys; k++ {
		d.entries[uint64(k)] = &entry{valid: true, valueLen: uint16(valueSize)}
	}
	return d
}

// CachedValid reports whether key currently has a valid cache entry.
func (d *Dataplane) CachedValid(key uint64) bool {
	e, ok := d.entries[key]
	return ok && e.valid
}

// Process implements netsim.Dataplane.
func (d *Dataplane) Process(sw *netsim.Switch, _ *netsim.Iface, f *proto.Frame) bool {
	if f.IP.Proto != proto.IPProtoUDP {
		return true
	}
	switch f.UDP.DstPort {
	case proto.PortKV:
		return d.onRequest(sw, f)
	default:
		d.onReplyPassing(f)
		return true
	}
}

// onRequest handles client->server traffic.
func (d *Dataplane) onRequest(sw *netsim.Switch, f *proto.Frame) bool {
	m, err := proto.ParseKV(f.Payload)
	if err != nil {
		return true
	}
	switch m.Op {
	case proto.KVGet:
		e, ok := d.entries[m.Key]
		if !ok || !e.valid {
			d.Misses++
			return true
		}
		d.Hits++
		reply := m
		reply.Op = proto.KVGetReply
		reply.Ver = e.ver
		reply.ValueLen = e.valueLen
		reply.Flags |= proto.KVFlagSwitchHit
		rf := &proto.Frame{
			Eth:            proto.Ethernet{Dst: f.Eth.Src, Src: f.Eth.Dst},
			IP:             proto.IPv4{Src: f.IP.Dst, Dst: f.IP.Src, Proto: proto.IPProtoUDP},
			UDP:            proto.UDP{SrcPort: proto.PortKV, DstPort: f.UDP.SrcPort},
			Payload:        proto.AppendKV(nil, reply),
			VirtualPayload: int(e.valueLen),
		}
		rf.Seal()
		sw.Inject(rf)
		return false // consumed: served from the switch
	case proto.KVSet:
		if e, ok := d.entries[m.Key]; ok {
			// Write-through: update the cached value as the write passes.
			e.ver = m.Ver
			e.valueLen = d.valueSize
			e.valid = true
			d.Updates++
		}
		return true // writes always go to the responsible replica
	default:
		return true
	}
}

// onReplyPassing watches server->client replies to refresh invalidated
// entries with the new version.
func (d *Dataplane) onReplyPassing(f *proto.Frame) {
	m, err := proto.ParseKV(f.Payload)
	if err != nil || m.Op != proto.KVSetReply {
		return
	}
	if e, ok := d.entries[m.Key]; ok {
		e.ver = m.Ver
		e.valid = true
		d.Refreshes++
	}
}
