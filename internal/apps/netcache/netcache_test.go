package netcache_test

import (
	"testing"

	"repro/internal/apps/kv"
	"repro/internal/apps/netcache"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

func rig(t *testing.T, writeFrac float64) (*netcache.Dataplane, []*kv.Server, *kv.Client, func(sim.Time)) {
	t.Helper()
	n := netsim.New("net", 9)
	sw := n.AddSwitch("sw")
	dp := netcache.New(16, 128)
	sw.Dataplane = dp

	var serverIPs []proto.IP
	var servers []*kv.Server
	for i := 0; i < 2; i++ {
		ip := proto.HostIP(uint32(100 + i))
		serverIPs = append(serverIPs, ip)
		h := n.AddHost("srv", ip)
		n.ConnectHostSwitch(h, sw, 10*sim.Gbps, 1*sim.Microsecond)
		s := kv.NewServer(kv.DefaultServerParams())
		servers = append(servers, s)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { s.Run(hh) }))
	}
	ch := n.AddHost("cli", proto.HostIP(1))
	n.ConnectHostSwitch(ch, sw, 10*sim.Gbps, 1*sim.Microsecond)
	p := kv.DefaultClientParams(0, serverIPs)
	p.WriteFrac = writeFrac
	p.WarmUp = 0
	cli := kv.NewClient(p)
	ch.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
	n.ComputeRoutes()

	run := func(end sim.Time) {
		s := sim.NewScheduler(0)
		n.Attach(core.Env{Sched: s, Src: 1})
		n.Start(end)
		for {
			at, ok := s.PeekTime()
			if !ok || at >= end {
				break
			}
			s.Step()
		}
	}
	return dp, servers, cli, run
}

func TestCacheServesHotReads(t *testing.T) {
	dp, servers, cli, run := rig(t, 0) // read-only workload
	run(10 * sim.Millisecond)
	if dp.Hits == 0 {
		t.Fatal("no switch cache hits")
	}
	// With zipf 1.8 and the 16 hottest of 10k keys cached, most reads hit.
	hitFrac := float64(dp.Hits) / float64(dp.Hits+dp.Misses)
	if hitFrac < 0.6 {
		t.Fatalf("hit fraction = %v, want most reads cached", hitFrac)
	}
	if cli.SwitchHits == 0 {
		t.Fatal("client saw no switch-served replies")
	}
	// Server reads only for cache misses (the last miss may still be in
	// flight at cutoff).
	if got, want := servers[0].Reads+servers[1].Reads, dp.Misses; want-got > 2 {
		t.Fatalf("server reads %d != misses %d", got, want)
	}
}

func TestWritesUpdateCacheInPlace(t *testing.T) {
	dp, servers, _, run := rig(t, 0.7)
	run(10 * sim.Millisecond)
	if dp.Updates == 0 {
		t.Fatal("writes never updated cache entries")
	}
	if dp.Refreshes == 0 {
		t.Fatal("SET replies never confirmed cache entries")
	}
	// All writes reach servers (NetCache never absorbs writes).
	if servers[0].Writes+servers[1].Writes == 0 {
		t.Fatal("no writes reached servers")
	}
	// Write-through means hot keys stay servable: hits continue even with
	// 70% writes.
	if dp.Hits == 0 {
		t.Fatal("no hits under write-through")
	}
}

func TestWriteSkewConcentratesOnResponsibleReplica(t *testing.T) {
	// The paper's end-to-end result hinges on this: with zipf-1.8 and 70%
	// writes, the replica responsible for the hot keys takes nearly all
	// write load.
	_, servers, _, run := rig(t, 0.7)
	run(10 * sim.Millisecond)
	w0, w1 := servers[0].Writes, servers[1].Writes
	if w0 < 2*w1 {
		t.Fatalf("responsible replica writes %d vs %d; want concentration", w0, w1)
	}
}

func TestCachedValid(t *testing.T) {
	dp := netcache.New(4, 64)
	if !dp.CachedValid(0) || !dp.CachedValid(3) {
		t.Fatal("warm entries should be valid")
	}
	if dp.CachedValid(4) {
		t.Fatal("key 4 should not be cached")
	}
}

func TestSwitchHitsAreFaster(t *testing.T) {
	// Read-only workload: switch-served replies must be measurably faster
	// than server-served ones — the latency benefit the protocol-level
	// Fig. 4 comparison turns on.
	dp, _, cli, run := rig(t, 0)
	run(10 * sim.Millisecond)
	if cli.SwitchHits == 0 || cli.Lat.Count() == 0 {
		t.Fatal("no traffic")
	}
	_ = dp
	// The latency distribution should be bimodal: its minimum (a switch
	// hit: 2 host links + switch turnaround) far below its maximum (a
	// server round trip).
	if min, max := cli.Lat.Min(), cli.Lat.Max(); min*2 > max {
		t.Fatalf("expected bimodal hit/miss latencies, got min=%v max=%v", min, max)
	}
}
