// Package kv implements the key-value client and server applications of
// the in-network-processing case study (NetCache / Pegasus, Fig. 4/5).
//
// The same application code runs at both fidelities — on protocol-level
// netsim hosts (where Compute is free, the ns-3 model) and on detailed
// hostsim hosts (where every receive, compute, and send consumes CPU on a
// single core). This mirrors the paper's setup, which runs the unmodified
// client/server binaries on the simulated Linux hosts and re-implements
// them as ns-3 applications for the protocol-level configuration.
package kv

import (
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Env is the host API the applications run against; both netsim.Host and
// hostsim.Host satisfy it.
type Env interface {
	Now() sim.Time
	End() sim.Time
	After(d sim.Time, fn func()) *sim.Timer
	Compute(d sim.Time, fn func())
	SendUDP(dst proto.IP, srcPort, dstPort uint16, payload []byte, virtual int)
	BindUDP(port uint16, fn core.UDPHandler)
	LocalIP() proto.IP
	Rand() *sim.Rand
}

// ClientPort is the UDP port clients receive replies on.
const ClientPort = 9001

// ServerParams configures a storage server.
type ServerParams struct {
	// ReadCost and WriteCost are the per-operation CPU costs. They only
	// take effect on detailed hosts; protocol-level hosts execute Compute
	// instantaneously, which is precisely the modeling gap under study.
	ReadCost  sim.Time
	WriteCost sim.Time
	// ValueSize is the value payload carried in replies.
	ValueSize int
}

// DefaultServerParams models a small in-memory KV store.
func DefaultServerParams() ServerParams {
	return ServerParams{
		ReadCost:  2 * sim.Microsecond,
		WriteCost: 4 * sim.Microsecond,
		ValueSize: 128,
	}
}

// Server is a replica of the key-value store.
type Server struct {
	env      Env
	p        ServerParams
	versions map[uint64]uint64

	// Reads and Writes count operations served.
	Reads, Writes uint64
}

// NewServer creates a server.
func NewServer(p ServerParams) *Server {
	return &Server{p: p, versions: make(map[uint64]uint64)}
}

// Run binds the server to its host; call from the host tier's app hook.
func (s *Server) Run(env Env) {
	s.env = env
	env.BindUDP(proto.PortKV, s.onRequest)
}

func (s *Server) onRequest(src proto.IP, srcPort uint16, payload []byte, _ int) {
	m, err := proto.ParseKV(payload)
	if err != nil {
		return
	}
	switch m.Op {
	case proto.KVGet:
		s.env.Compute(s.p.ReadCost, func() {
			s.Reads++
			reply := m
			reply.Op = proto.KVGetReply
			reply.Ver = s.versions[m.Key]
			reply.ValueLen = uint16(s.p.ValueSize)
			s.env.SendUDP(src, proto.PortKV, srcPort,
				proto.AppendKV(nil, reply), s.p.ValueSize)
		})
	case proto.KVSet:
		s.env.Compute(s.p.WriteCost, func() {
			s.Writes++
			s.versions[m.Key]++
			reply := m
			reply.Op = proto.KVSetReply
			reply.Ver = s.versions[m.Key]
			reply.ValueLen = 0
			s.env.SendUDP(src, proto.PortKV, srcPort,
				proto.AppendKV(nil, reply), 0)
		})
	}
}

// ClientParams configures a workload client.
type ClientParams struct {
	// ID distinguishes clients; echoed in requests for reply matching.
	ID uint32
	// Servers is the replica set. Requests for key k go to the replica
	// responsible for k's range (NetCache-style static partitioning by key
	// range, so the hottest keys cluster on one replica) unless VIP is set.
	Servers []proto.IP
	// VIP, when non-zero, routes every request to this virtual service
	// address (the Pegasus switch intercepts and redirects it).
	VIP proto.IP
	// Keys is the key-space size; ZipfS the skew (the paper uses 1.8).
	Keys  int
	ZipfS float64
	// WriteFrac is the SET fraction (the paper uses 0.7).
	WriteFrac float64
	// Rate, when positive, generates an open-loop Poisson workload at this
	// many ops/s. Otherwise the client runs closed-loop with Outstanding
	// requests in flight.
	Rate        float64
	Outstanding int
	// ValueSize is the value payload carried in SETs.
	ValueSize int
	// WarmUp excludes the initial portion from measurements.
	WarmUp sim.Time
	// RetransmitAfter rescues lost requests (drop-tail queues can discard
	// them under overload). Zero disables.
	RetransmitAfter sim.Time
	// Port overrides the server port (default proto.PortKV); the
	// commit-wait database reuses the client with its own port.
	Port uint16
}

// DefaultClientParams returns the paper's client configuration: zipf-1.8
// key popularity with 70% writes.
func DefaultClientParams(id uint32, servers []proto.IP) ClientParams {
	return ClientParams{
		ID: id, Servers: servers,
		Keys: 10_000, ZipfS: 1.8, WriteFrac: 0.7,
		Outstanding: 8, ValueSize: 128,
		WarmUp:          2 * sim.Millisecond,
		RetransmitAfter: 5 * sim.Millisecond,
	}
}

type pending struct {
	sentAt  sim.Time
	isWrite bool
	key     uint64
	timer   *sim.Timer
}

// Client generates the workload and records end-to-end statistics.
type Client struct {
	env  Env
	p    ClientParams
	zipf *sim.Zipf
	seq  uint64

	inflight map[uint64]*pending

	// Completed counts measured (post-warm-up) operations.
	Completed uint64
	// SwitchHits counts replies served directly by a switch cache.
	SwitchHits uint64
	// Lat, ReadLat and WriteLat record end-to-end latencies.
	Lat, ReadLat, WriteLat stats.Latency
	// Retransmits counts rescued requests.
	Retransmits uint64
}

// NewClient creates a client.
func NewClient(p ClientParams) *Client {
	if p.Keys <= 0 || (p.Rate <= 0 && p.Outstanding <= 0) {
		panic("kv: client needs keys and a rate or outstanding window")
	}
	if p.Port == 0 {
		p.Port = proto.PortKV
	}
	return &Client{p: p, zipf: sim.NewZipf(p.ZipfS, p.Keys), inflight: make(map[uint64]*pending)}
}

// Run binds and starts the client.
func (c *Client) Run(env Env) {
	c.env = env
	env.BindUDP(ClientPort, c.onReply)
	if c.p.Rate > 0 {
		c.scheduleOpen()
		return
	}
	for i := 0; i < c.p.Outstanding; i++ {
		c.sendNext()
	}
}

func (c *Client) scheduleOpen() {
	gap := sim.FromSeconds(c.env.Rand().Exp(1 / c.p.Rate))
	c.env.After(gap, func() {
		c.sendNext()
		c.scheduleOpen()
	})
}

// target picks the destination for a key: range partitioning over the
// popularity-ranked key space.
func (c *Client) target(key uint64) proto.IP {
	if c.p.VIP != 0 {
		return c.p.VIP
	}
	idx := int(key) * len(c.p.Servers) / c.p.Keys
	if idx >= len(c.p.Servers) {
		idx = len(c.p.Servers) - 1
	}
	return c.p.Servers[idx]
}

func (c *Client) sendNext() {
	key := uint64(c.zipf.Next(c.env.Rand()))
	isWrite := c.env.Rand().Float64() < c.p.WriteFrac
	c.seq++
	seq := c.seq
	pd := &pending{sentAt: c.env.Now(), isWrite: isWrite, key: key}
	c.inflight[seq] = pd
	c.transmit(seq, pd)
}

func (c *Client) transmit(seq uint64, pd *pending) {
	m := proto.KVMsg{Key: pd.key, Client: c.p.ID, Seq: seq}
	virtual := 0
	if pd.isWrite {
		m.Op = proto.KVSet
		m.ValueLen = uint16(c.p.ValueSize)
		virtual = c.p.ValueSize
	} else {
		m.Op = proto.KVGet
	}
	c.env.SendUDP(c.target(pd.key), ClientPort, c.p.Port,
		proto.AppendKV(nil, m), virtual)
	if c.p.RetransmitAfter > 0 {
		pd.timer = c.env.After(c.p.RetransmitAfter, func() {
			if _, still := c.inflight[seq]; still {
				c.Retransmits++
				c.transmit(seq, pd)
			}
		})
	}
}

func (c *Client) onReply(_ proto.IP, _ uint16, payload []byte, _ int) {
	m, err := proto.ParseKV(payload)
	if err != nil || (m.Op != proto.KVGetReply && m.Op != proto.KVSetReply) {
		return
	}
	pd, ok := c.inflight[m.Seq]
	if !ok {
		return // duplicate after retransmit
	}
	delete(c.inflight, m.Seq)
	if pd.timer != nil {
		pd.timer.Cancel()
	}
	now := c.env.Now()
	if now >= c.p.WarmUp {
		c.Completed++
		d := now - pd.sentAt
		c.Lat.Add(d)
		if pd.isWrite {
			c.WriteLat.Add(d)
		} else {
			c.ReadLat.Add(d)
		}
		if m.Flags&proto.KVFlagSwitchHit != 0 {
			c.SwitchHits++
		}
	}
	if c.p.Rate <= 0 {
		c.sendNext() // closed loop
	}
}

// MeasuredRate returns completed ops/s over the post-warm-up window.
func (c *Client) MeasuredRate() float64 {
	window := c.env.End() - c.p.WarmUp
	return stats.Rate(int(c.Completed), window)
}
