package kv_test

import (
	"testing"

	"repro/internal/apps/kv"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// protoRig builds nClients protocol-level clients and nServers servers on
// one switch and returns them plus a run function.
func protoRig(nServers, nClients int, clientCfg func(i int, p *kv.ClientParams)) (
	[]*kv.Server, []*kv.Client, func(end sim.Time)) {
	n := netsim.New("net", 7)
	sw := n.AddSwitch("sw")
	var serverIPs []proto.IP
	var servers []*kv.Server
	for i := 0; i < nServers; i++ {
		ip := proto.HostIP(uint32(100 + i))
		serverIPs = append(serverIPs, ip)
		h := n.AddHost("srv", ip)
		n.ConnectHostSwitch(h, sw, 10*sim.Gbps, 1*sim.Microsecond)
		s := kv.NewServer(kv.DefaultServerParams())
		servers = append(servers, s)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { s.Run(hh) }))
	}
	var clients []*kv.Client
	for i := 0; i < nClients; i++ {
		h := n.AddHost("cli", proto.HostIP(uint32(1+i)))
		n.ConnectHostSwitch(h, sw, 10*sim.Gbps, 1*sim.Microsecond)
		p := kv.DefaultClientParams(uint32(i), serverIPs)
		p.WarmUp = 1 * sim.Millisecond
		if clientCfg != nil {
			clientCfg(i, &p)
		}
		c := kv.NewClient(p)
		clients = append(clients, c)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { c.Run(hh) }))
	}
	n.ComputeRoutes()
	run := func(end sim.Time) {
		s := sim.NewScheduler(0)
		n.Attach(core.Env{Sched: s, Src: 1})
		n.Start(end)
		for {
			at, ok := s.PeekTime()
			if !ok || at >= end {
				break
			}
			s.Step()
		}
	}
	return servers, clients, run
}

func TestClosedLoopClientServer(t *testing.T) {
	servers, clients, run := protoRig(2, 3, nil)
	run(20 * sim.Millisecond)
	var total uint64
	for _, c := range clients {
		if c.Completed == 0 {
			t.Fatal("client completed nothing")
		}
		total += c.Completed
		if c.Lat.Count() == 0 || c.Lat.Mean() <= 0 {
			t.Fatal("no latency recorded")
		}
	}
	var reads, writes uint64
	for _, s := range servers {
		reads += s.Reads
		writes += s.Writes
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("servers: reads=%d writes=%d", reads, writes)
	}
	// 70% writes +/- noise.
	frac := float64(writes) / float64(reads+writes)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("write fraction = %v, want ~0.7", frac)
	}
}

func TestOpenLoopRate(t *testing.T) {
	_, clients, run := protoRig(1, 1, func(i int, p *kv.ClientParams) {
		p.Rate = 50_000
		p.Outstanding = 0
		p.WarmUp = 0
	})
	run(20 * sim.Millisecond)
	got := float64(clients[0].Completed) / 0.020
	if got < 35_000 || got > 65_000 {
		t.Fatalf("open-loop rate %.0f, want ~50k", got)
	}
}

func TestZipfKeySkewPartitioning(t *testing.T) {
	// With zipf 1.8 and hash partitioning over two servers, the server
	// responsible for key 0 (even keys) must see far more writes.
	servers, _, run := protoRig(2, 2, nil)
	run(20 * sim.Millisecond)
	w0, w1 := servers[0].Writes, servers[1].Writes
	if w0 < 2*w1 {
		t.Fatalf("hot-key replica writes=%d, cold=%d; want heavy skew", w0, w1)
	}
}

func TestClientRetransmitRescuesDrops(t *testing.T) {
	servers, clients, run := protoRig(1, 1, func(i int, p *kv.ClientParams) {
		p.Outstanding = 64
		p.RetransmitAfter = 2 * sim.Millisecond
		p.WarmUp = 0
	})
	// Squeeze the server's downlink so bursts drop.
	// (reach into netsim via the server host's iface)
	_ = servers
	_, _, _ = servers, clients, run
	// Build a fresh rig with a tiny queue instead.
	n := netsim.New("net", 7)
	sw := n.AddSwitch("sw")
	sip := proto.HostIP(100)
	sh := n.AddHost("srv", sip)
	// Server downlink 10x slower than the client uplink, with a queue that
	// only fits a couple of requests: bursts must drop.
	idx := n.ConnectHostSwitch(sh, sw, 1*sim.Gbps, 1*sim.Microsecond)
	sw.Ifaces()[idx].QueueCapBytes = 600
	srv := kv.NewServer(kv.DefaultServerParams())
	sh.SetApp(netsim.AppFunc(func(hh *netsim.Host) { srv.Run(hh) }))
	ch := n.AddHost("cli", proto.HostIP(1))
	n.ConnectHostSwitch(ch, sw, 10*sim.Gbps, 1*sim.Microsecond)
	p := kv.DefaultClientParams(0, []proto.IP{sip})
	p.Outstanding = 64
	p.WarmUp = 0
	p.RetransmitAfter = 2 * sim.Millisecond
	cli := kv.NewClient(p)
	ch.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
	n.ComputeRoutes()
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(50 * sim.Millisecond)
	for {
		at, ok := s.PeekTime()
		if !ok || at >= 50*sim.Millisecond {
			break
		}
		s.Step()
	}
	if cli.Retransmits == 0 {
		t.Fatal("expected retransmits with a 600-byte queue")
	}
	if cli.Completed == 0 {
		t.Fatal("client wedged despite retransmit logic")
	}
}

func TestClientValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("client without rate/outstanding should panic")
		}
	}()
	kv.NewClient(kv.ClientParams{Keys: 10, ZipfS: 1.0})
}
