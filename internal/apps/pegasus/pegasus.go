// Package pegasus implements the Pegasus in-network coherence directory as
// a netsim switch dataplane (Li et al., OSDI'20, as evaluated in the
// paper's in-network-processing case study).
//
// Pegasus does not cache values in the switch. Instead the switch keeps a
// coherence directory for the hottest keys: reads are load-balanced across
// the replicas holding the latest version, and writes are load-balanced to
// *any* replica, which then becomes the key's sole owner. Clients address a
// virtual service IP; the switch rewrites the destination.
package pegasus

import (
	"repro/internal/netsim"
	"repro/internal/proto"
)

// Dataplane is the switch program. Install on a netsim.Switch.
type Dataplane struct {
	// VIP is the virtual service address clients send to.
	VIP proto.IP
	// Servers is the replica set the directory balances across.
	Servers []proto.IP

	dir map[uint64]*dirEntry
	rr  int // round-robin cursor for writes

	// Statistics.
	FwdReads, FwdWrites, Untracked uint64
}

type dirEntry struct {
	owners []int // replica indices holding the newest version
	rr     int   // round-robin cursor for reads
}

// New creates a directory tracking the hottest tracked keys (key ids are
// popularity ranks). Initially every replica holds every tracked key.
func New(vip proto.IP, servers []proto.IP, tracked int) *Dataplane {
	d := &Dataplane{VIP: vip, Servers: servers, dir: make(map[uint64]*dirEntry, tracked)}
	all := make([]int, len(servers))
	for i := range all {
		all[i] = i
	}
	for k := 0; k < tracked; k++ {
		d.dir[uint64(k)] = &dirEntry{owners: append([]int(nil), all...)}
	}
	return d
}

// Owners returns the replica indices currently holding key (nil if the key
// is not tracked).
func (d *Dataplane) Owners(key uint64) []int {
	if e, ok := d.dir[key]; ok {
		return append([]int(nil), e.owners...)
	}
	return nil
}

// Process implements netsim.Dataplane.
func (d *Dataplane) Process(sw *netsim.Switch, _ *netsim.Iface, f *proto.Frame) bool {
	if f.IP.Proto != proto.IPProtoUDP || f.UDP.DstPort != proto.PortKV || f.IP.Dst != d.VIP {
		return true
	}
	m, err := proto.ParseKV(f.Payload)
	if err != nil {
		return true
	}
	var target int
	e, tracked := d.dir[m.Key]
	switch {
	case tracked && m.Op == proto.KVGet:
		// Load-balance reads over the owner set.
		target = e.owners[e.rr%len(e.owners)]
		e.rr++
		d.FwdReads++
	case tracked && m.Op == proto.KVSet:
		// Load-balance writes over all replicas; the chosen replica
		// becomes the sole owner of the new version.
		target = d.rr % len(d.Servers)
		d.rr++
		e.owners = e.owners[:0]
		e.owners = append(e.owners, target)
		d.FwdWrites++
	default:
		// Untracked keys are statically partitioned.
		target = int(m.Key % uint64(len(d.Servers)))
		d.Untracked++
	}
	g := f.Clone()
	g.IP.Dst = d.Servers[target]
	g.Eth.Dst = proto.MACFromID(uint32(g.IP.Dst))
	sw.Inject(g)
	return false // original (VIP-addressed) frame consumed
}
