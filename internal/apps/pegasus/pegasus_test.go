package pegasus_test

import (
	"testing"

	"repro/internal/apps/kv"
	"repro/internal/apps/pegasus"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

const vip = proto.IP(0x0a00ff01)

func rig(t *testing.T, writeFrac float64) (*pegasus.Dataplane, []*kv.Server, *kv.Client, func(sim.Time)) {
	t.Helper()
	n := netsim.New("net", 11)
	sw := n.AddSwitch("sw")
	var serverIPs []proto.IP
	var servers []*kv.Server
	for i := 0; i < 2; i++ {
		ip := proto.HostIP(uint32(100 + i))
		serverIPs = append(serverIPs, ip)
		h := n.AddHost("srv", ip)
		n.ConnectHostSwitch(h, sw, 10*sim.Gbps, 1*sim.Microsecond)
		s := kv.NewServer(kv.DefaultServerParams())
		servers = append(servers, s)
		h.SetApp(netsim.AppFunc(func(hh *netsim.Host) { s.Run(hh) }))
	}
	dp := pegasus.New(vip, serverIPs, 16)
	sw.Dataplane = dp

	ch := n.AddHost("cli", proto.HostIP(1))
	n.ConnectHostSwitch(ch, sw, 10*sim.Gbps, 1*sim.Microsecond)
	p := kv.DefaultClientParams(0, serverIPs)
	p.VIP = vip
	p.WriteFrac = writeFrac
	p.WarmUp = 0
	cli := kv.NewClient(p)
	ch.SetApp(netsim.AppFunc(func(hh *netsim.Host) { cli.Run(hh) }))
	n.ComputeRoutes()

	run := func(end sim.Time) {
		s := sim.NewScheduler(0)
		n.Attach(core.Env{Sched: s, Src: 1})
		n.Start(end)
		for {
			at, ok := s.PeekTime()
			if !ok || at >= end {
				break
			}
			s.Step()
		}
	}
	return dp, servers, cli, run
}

func TestVIPInterceptionWorks(t *testing.T) {
	dp, servers, cli, run := rig(t, 0.7)
	run(10 * sim.Millisecond)
	if cli.Completed == 0 {
		t.Fatal("no completed operations through the VIP")
	}
	if dp.FwdReads == 0 || dp.FwdWrites == 0 {
		t.Fatalf("directory forwarded reads=%d writes=%d", dp.FwdReads, dp.FwdWrites)
	}
	if servers[0].Reads+servers[1].Reads == 0 {
		t.Fatal("no reads reached servers (Pegasus does not cache values)")
	}
}

func TestWritesLoadBalanced(t *testing.T) {
	// The paper's headline: Pegasus spreads even a 70%-write zipf-1.8
	// workload nearly evenly over the replicas.
	_, servers, _, run := rig(t, 0.7)
	run(10 * sim.Millisecond)
	w0, w1 := float64(servers[0].Writes), float64(servers[1].Writes)
	if w0 == 0 || w1 == 0 {
		t.Fatalf("writes not balanced at all: %v vs %v", w0, w1)
	}
	ratio := w0 / w1
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("write balance ratio = %v, want ~1.0", ratio)
	}
}

func TestWriteMovesOwnership(t *testing.T) {
	servers := []proto.IP{proto.HostIP(100), proto.HostIP(101)}
	dp := pegasus.New(vip, servers, 4)
	if got := dp.Owners(1); len(got) != 2 {
		t.Fatalf("initial owners = %v", got)
	}
	// Simulate a SET for key 1 passing the switch.
	n := netsim.New("net", 1)
	sw := n.AddSwitch("sw")
	for _, ip := range servers {
		h := n.AddHost("s", ip)
		n.ConnectHostSwitch(h, sw, sim.Gbps, sim.Microsecond)
	}
	n.ComputeRoutes()
	s := sim.NewScheduler(0)
	n.Attach(core.Env{Sched: s, Src: 1})
	n.Start(sim.Second)
	f := &proto.Frame{
		Eth:     proto.Ethernet{},
		IP:      proto.IPv4{Src: proto.HostIP(1), Dst: vip, Proto: proto.IPProtoUDP},
		UDP:     proto.UDP{SrcPort: kv.ClientPort, DstPort: proto.PortKV},
		Payload: proto.AppendKV(nil, proto.KVMsg{Op: proto.KVSet, Key: 1}),
	}
	f.Seal()
	if dp.Process(sw, nil, f) {
		t.Fatal("VIP frame should be consumed")
	}
	if got := dp.Owners(1); len(got) != 1 {
		t.Fatalf("after write, owners = %v, want single owner", got)
	}
	// Untracked key is hash-partitioned, directory untouched.
	f2 := &proto.Frame{
		IP:      proto.IPv4{Src: proto.HostIP(1), Dst: vip, Proto: proto.IPProtoUDP},
		UDP:     proto.UDP{SrcPort: kv.ClientPort, DstPort: proto.PortKV},
		Payload: proto.AppendKV(nil, proto.KVMsg{Op: proto.KVGet, Key: 9999}),
	}
	f2.Seal()
	dp.Process(sw, nil, f2)
	if dp.Untracked != 1 {
		t.Fatalf("untracked counter = %d", dp.Untracked)
	}
}
