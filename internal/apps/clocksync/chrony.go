package clocksync

import (
	"repro/internal/hostsim"
	"repro/internal/nicsim"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Chrony disciplines the host system clock from a measurement source (NTP
// exchanges or the local PHC as a reference clock) and tracks the clock
// error bound it would report — the "dynamic clock bound" the modified
// CockroachDB consumes for its commit-wait period.
type Chrony struct {
	// DriftUncertaintyPPM is the assumed residual frequency error; the
	// bound grows at this rate between measurements (chrony's maxerror).
	DriftUncertaintyPPM float64
	// SampleEvery controls bound sampling for reporting (0 = 10 ms).
	SampleEvery sim.Time
	// WarmMeasurements is how many measurements must pass before bounds
	// are recorded (servo warm-up, like the profiler's warm-up drop).
	WarmMeasurements int

	h *hostsim.Host

	lastAt    sim.Time
	lastBound sim.Time
	synced    bool

	lastOffset   sim.Time
	lastOffsetAt sim.Time
	haveLast     bool
	measurements int

	// Bounds records the reported bound over time (post first sync).
	Bounds stats.Latency
	// Offsets records applied phase corrections.
	Offsets stats.Latency
}

// NewChrony creates a daemon with chrony-like defaults.
func NewChrony() *Chrony {
	return &Chrony{DriftUncertaintyPPM: 1.0, SampleEvery: 10 * sim.Millisecond, WarmMeasurements: 5}
}

// Run starts bound sampling; feed it measurements via OnMeasurement.
func (c *Chrony) Run(h *hostsim.Host) {
	c.h = h
	var tick func()
	tick = func() {
		if c.synced && c.measurements > c.WarmMeasurements {
			c.Bounds.Add(c.Bound())
		}
		h.After(c.SampleEvery, tick)
	}
	h.After(c.SampleEvery, tick)
}

// OnMeasurement applies one time-source observation: step the phase, learn
// the frequency error, and reset the error bound.
func (c *Chrony) OnMeasurement(m Measurement) {
	now := c.h.Now()
	c.measurements++
	c.Offsets.Add(m.Offset)
	// Frequency correction from consecutive offsets (post-step residuals).
	if c.haveLast {
		dt := now - c.lastOffsetAt
		if dt > 0 {
			freqErrPPM := float64(m.Offset) / float64(dt) * 1e6
			c.h.Clock.Adjust(now, m.Offset, c.h.Clock.FreqCorrPPM()+0.5*freqErrPPM)
		} else {
			c.h.Clock.Adjust(now, m.Offset, c.h.Clock.FreqCorrPPM())
		}
	} else {
		c.h.Clock.Adjust(now, m.Offset, 0)
	}
	c.haveLast = true
	c.lastOffset = m.Offset
	c.lastOffsetAt = now

	resid := m.Offset
	if resid < 0 {
		resid = -resid
	}
	// After stepping, the remaining uncertainty is the measurement's own
	// error bound; the residual term covers servo transients.
	c.lastBound = m.ErrBound + resid/4
	c.lastAt = now
	c.synced = true
}

// Bound returns the current clock error bound: the last measurement's
// uncertainty grown by the drift uncertainty since.
func (c *Chrony) Bound() sim.Time {
	if !c.synced {
		return 10 * sim.Millisecond // unsynchronized default
	}
	elapsed := c.h.Now() - c.lastAt
	return c.lastBound + sim.Time(c.DriftUncertaintyPPM*1e-6*float64(elapsed))
}

// TrueError returns the actual system clock error right now (simulator
// ground truth, unavailable to the guest; used for validation).
func (c *Chrony) TrueError() sim.Time {
	now := c.h.Now()
	e := c.h.Clock.Read(now) - now
	if e < 0 {
		e = -e
	}
	return e
}

// PHCRefClock feeds chrony from the local NIC's PTP hardware clock — the
// configuration the paper uses for PTP: ptp4l disciplines the PHC, chrony
// uses the PHC as reference clock for the system clock.
type PHCRefClock struct {
	// Slave provides the PHC's own synchronization error bound.
	Slave *PTPSlave
	// NIC is kept for symmetry/diagnostics.
	NIC *nicsim.NIC
	// Poll is the PHC comparison interval.
	Poll sim.Time
	// OnMeasurement receives each comparison (wired to Chrony).
	OnMeasurement func(Measurement)

	h *hostsim.Host
	// Reads counts completed PHC comparisons.
	Reads uint64
}

// Run starts polling the PHC.
func (r *PHCRefClock) Run(h *hostsim.Host) {
	r.h = h
	if r.Poll <= 0 {
		r.Poll = 250 * sim.Millisecond
	}
	var tick func()
	tick = func() {
		t0 := h.ClockNow()
		h.ReadPHC(func(hw sim.Time) {
			t1 := h.ClockNow()
			r.Reads++
			if r.OnMeasurement != nil {
				r.OnMeasurement(Measurement{
					At:     h.Now(),
					Offset: hw - (t0+t1)/2,
					// Read round-trip ambiguity plus the PHC's own bound.
					ErrBound: (t1-t0)/2 + r.Slave.Bound(),
				})
			}
		})
		h.After(r.Poll, tick)
	}
	h.After(r.Poll/3, tick)
}

// Sanity re-export so callers need not import proto for the NTP port.
const NTPPort = proto.PortNTP
