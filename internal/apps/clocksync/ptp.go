package clocksync

import (
	"repro/internal/hostsim"
	"repro/internal/nicsim"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PTPMaster is the grandmaster: it unicasts two-step Sync/FollowUp pairs to
// each slave and answers DelayReq with hardware receive timestamps. Run it
// on a host whose NIC PHC is the time reference (zero drift).
type PTPMaster struct {
	// Slaves lists the slave addresses.
	Slaves []proto.IP
	// Interval is the Sync interval (ptp4l default logSyncInterval 0 = 1s;
	// datacenter profiles run much faster).
	Interval sim.Time

	h *hostsim.Host
	// Syncs counts Sync messages sent.
	Syncs uint64
}

// Run starts the master; use from a hostsim app hook.
func (m *PTPMaster) Run(h *hostsim.Host) {
	m.h = h
	if m.Interval <= 0 {
		m.Interval = 250 * sim.Millisecond
	}
	// Answer DelayReq on the event port with the hardware RX timestamp.
	h.BindUDP(proto.PortPTPEvent, func(src proto.IP, sport uint16, payload []byte, _ int) {
		req, err := proto.ParsePTP(payload)
		if err != nil || req.Type != proto.PTPDelayReq {
			return
		}
		t4 := h.LastRxHWTime()
		resp := proto.PTPMsg{
			Type: proto.PTPDelayResp, Seq: req.Seq,
			Origin:     t4,
			Correction: req.Correction, // echo accumulated TC residence
		}
		h.SendUDP(src, proto.PortPTPGeneral, proto.PortPTPGeneral,
			proto.AppendPTP(nil, resp), 0)
	})
	seq := uint16(0)
	var tick func()
	tick = func() {
		seq++
		for _, slave := range m.Slaves {
			m.sendSync(slave, seq)
		}
		h.After(m.Interval, tick)
	}
	h.After(m.Interval/8, tick)
}

// sendSync sends a hardware-timestamped Sync and follows up with the
// precise origin timestamp (two-step clock).
func (m *PTPMaster) sendSync(slave proto.IP, seq uint16) {
	m.Syncs++
	h := m.h
	sync := proto.PTPMsg{Type: proto.PTPSync, Seq: seq}
	h.SendUDPTimestamped(slave, proto.PortPTPEvent, proto.PortPTPEvent,
		proto.AppendPTP(nil, sync), func(hwT1 sim.Time) {
			fu := proto.PTPMsg{Type: proto.PTPFollowUp, Seq: seq, Origin: hwT1}
			h.SendUDP(slave, proto.PortPTPGeneral, proto.PortPTPGeneral,
				proto.AppendPTP(nil, fu), 0)
		})
}

// PTPSlave is the ptp4l analog: it disciplines the local NIC's PTP
// hardware clock from Sync/FollowUp/DelayReq/DelayResp exchanges using
// hardware timestamps, with transparent-clock corrections removing switch
// queueing from both paths.
type PTPSlave struct {
	// Master is the grandmaster address.
	Master proto.IP
	// NIC is the slave's NIC, whose PHC the servo adjusts.
	NIC *nicsim.NIC
	// DelayReqEvery issues a delay measurement every n Syncs (default 1).
	DelayReqEvery int

	h *hostsim.Host

	// per-exchange state
	syncSeq  uint16
	t2       sim.Time // hw rx timestamp of Sync
	corrSync sim.Time // TC residence accumulated by the Sync
	t1       sim.Time // precise origin from FollowUp
	t3       sim.Time // hw tx timestamp of DelayReq
	corrDreq sim.Time

	// servo state
	lastOffset   sim.Time
	lastOffsetAt sim.Time
	haveLast     bool

	// Offsets records measured offsets (after TC correction).
	Offsets stats.Latency
	// PathDelay is the latest mean path delay estimate.
	PathDelay sim.Time
	// Exchanges counts completed offset computations.
	Exchanges uint64

	bound sim.Time
}

// Run binds the slave; use from a hostsim app hook.
func (s *PTPSlave) Run(h *hostsim.Host) {
	s.h = h
	if s.DelayReqEvery <= 0 {
		s.DelayReqEvery = 1
	}
	h.BindUDP(proto.PortPTPEvent, func(src proto.IP, _ uint16, payload []byte, _ int) {
		m, err := proto.ParsePTP(payload)
		if err != nil || m.Type != proto.PTPSync {
			return
		}
		s.syncSeq = m.Seq
		s.t2 = h.LastRxHWTime()
		s.corrSync = m.Correction
	})
	h.BindUDP(proto.PortPTPGeneral, func(src proto.IP, _ uint16, payload []byte, _ int) {
		m, err := proto.ParsePTP(payload)
		if err != nil {
			return
		}
		switch m.Type {
		case proto.PTPFollowUp:
			if m.Seq != s.syncSeq {
				return
			}
			s.t1 = m.Origin
			s.sendDelayReq(m.Seq)
		case proto.PTPDelayResp:
			if m.Seq != s.syncSeq {
				return
			}
			s.corrDreq = m.Correction
			s.complete(m.Origin)
		}
	})
}

func (s *PTPSlave) sendDelayReq(seq uint16) {
	req := proto.PTPMsg{Type: proto.PTPDelayReq, Seq: seq}
	s.h.SendUDPTimestamped(s.Master, proto.PortPTPEvent, proto.PortPTPEvent,
		proto.AppendPTP(nil, req), func(hwT3 sim.Time) {
			s.t3 = hwT3
		})
}

// complete runs when DelayResp closes the exchange: compute offset and mean
// path delay, discipline the PHC.
func (s *PTPSlave) complete(t4 sim.Time) {
	// Master-to-slave and slave-to-master deltas, with transparent-clock
	// residence removed.
	ms := (s.t2 - s.t1) - s.corrSync
	sm := (t4 - s.t3) - s.corrDreq
	// offsetFromMaster = slaveTime - masterTime (ptp4l's convention).
	offset := (ms - sm) / 2
	s.PathDelay = (ms + sm) / 2
	s.Exchanges++
	s.Offsets.Add(offset)

	now := s.h.Now()
	// ptp4l PI servo: step the phase, learn the frequency error.
	if s.haveLast {
		dt := now - s.lastOffsetAt
		if dt > 0 {
			freqErrPPM := float64(offset) / float64(dt) * 1e6
			s.NIC.AdjPHCFreq(-0.5 * freqErrPPM)
		}
	}
	s.NIC.SetPHCOffset(-offset)
	s.haveLast = true
	s.lastOffset = offset
	s.lastOffsetAt = now

	// Residual bound: timestamp granularity at four stamping points plus
	// the remaining (post-servo) offset magnitude.
	quantum := 8 * sim.Nanosecond
	resid := offset
	if resid < 0 {
		resid = -resid
	}
	s.bound = resid + 4*quantum
}

// Bound returns the slave's current PHC error bound estimate.
func (s *PTPSlave) Bound() sim.Time {
	if s.bound == 0 {
		return sim.Millisecond // not yet synchronized
	}
	return s.bound
}
