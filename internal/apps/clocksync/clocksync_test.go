package clocksync_test

import (
	"testing"

	"repro/internal/apps/clocksync"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/netsim"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
)

// rig builds a time server (perfect oscillator / reference PHC) and a
// client with a drifting clock, both detailed hosts on one TC switch.
type rig struct {
	sim    *orch.Simulation
	server *instantiate.DetailedHost
	client *instantiate.DetailedHost
}

func buildRig() *rig {
	n := netsim.New("net", 3)
	sw := n.AddSwitch("sw")
	sw.TransparentClock = true
	sIP, cIP := proto.HostIP(10), proto.HostIP(20)
	extS := n.AddExternal(sw, "tsrv", 10*sim.Gbps, sIP)
	extC := n.AddExternal(sw, "cli", 10*sim.Gbps, cIP)
	n.ComputeRoutes()

	s := orch.New()
	s.Add(n)
	srv := instantiate.NewDetailedHost("tsrv", sIP, hostsim.QemuParams(), nicsim.DefaultParams(), 1)
	cliNIC := nicsim.DefaultParams()
	cliNIC.PHCDriftPPM = 35 // the client NIC's oscillator is off by 35 ppm
	cli := instantiate.NewDetailedHost("cli", cIP, hostsim.QemuParams(), cliNIC, 2)
	// Client system clock: 2 ms initial offset, +40 ppm drift, slow wander.
	cli.Host.Clock.Osc = hostsim.Oscillator{
		Offset:   2 * sim.Millisecond,
		DriftPPM: 40, WanderPPM: 1, WanderPeriod: 5 * sim.Second,
	}
	srv.Wire(s, n, extS)
	cli.Wire(s, n, extC)
	return &rig{sim: s, server: srv, client: cli}
}

func TestNTPSyncConverges(t *testing.T) {
	r := buildRig()
	ntpd := &clocksync.NTPServer{}
	r.server.Host.AddApp(hostsim.AppFunc(ntpd.Run))

	ch := clocksync.NewChrony()
	nc := &clocksync.NTPClient{
		Server: r.server.Host.LocalIP(),
		Poll:   200 * sim.Millisecond,
	}
	nc.OnMeasurement = ch.OnMeasurement
	r.client.Host.AddApp(hostsim.AppFunc(ch.Run))
	r.client.Host.AddApp(hostsim.AppFunc(nc.Run))

	r.sim.RunSequential(10 * sim.Second)

	if ntpd.Served == 0 || nc.Exchanges < 40 {
		t.Fatalf("NTP exchanges = %d", nc.Exchanges)
	}
	// The 2ms initial offset and 40ppm drift must be disciplined away.
	if e := ch.TrueError(); e > 5*sim.Microsecond {
		t.Fatalf("true clock error %v after NTP discipline, want < 5us", e)
	}
	// Reported bound is on the order of half the RTT (~10us over the
	// detailed path), never absurdly small or large.
	bound := ch.Bounds.Mean()
	if bound < 2*sim.Microsecond || bound > 50*sim.Microsecond {
		t.Fatalf("NTP bound %v, want ~10us scale", bound)
	}
}

func TestPTPConvergesMuchTighter(t *testing.T) {
	r := buildRig()
	gm := &clocksync.PTPMaster{
		Slaves:   []proto.IP{r.client.Host.LocalIP()},
		Interval: 200 * sim.Millisecond,
	}
	r.server.Host.AddApp(hostsim.AppFunc(gm.Run))

	slave := &clocksync.PTPSlave{
		Master: r.server.Host.LocalIP(),
		NIC:    r.client.NIC,
	}
	ch := clocksync.NewChrony()
	ref := &clocksync.PHCRefClock{Slave: slave, NIC: r.client.NIC, Poll: 200 * sim.Millisecond}
	ref.OnMeasurement = ch.OnMeasurement
	r.client.Host.AddApp(hostsim.AppFunc(slave.Run))
	r.client.Host.AddApp(hostsim.AppFunc(ch.Run))
	r.client.Host.AddApp(hostsim.AppFunc(ref.Run))

	r.sim.RunSequential(10 * sim.Second)

	if slave.Exchanges < 40 {
		t.Fatalf("PTP exchanges = %d", slave.Exchanges)
	}
	// The PHC must be disciplined to well under a microsecond.
	if b := slave.Bound(); b > 500*sim.Nanosecond {
		t.Fatalf("ptp4l bound %v, want sub-500ns", b)
	}
	// System clock disciplined from the PHC: bound ~ PHC read RTT/2 +
	// slave bound, i.e. around a microsecond — the paper reports 943ns.
	bound := ch.Bounds.Mean()
	if bound < 100*sim.Nanosecond || bound > 3*sim.Microsecond {
		t.Fatalf("PTP system-clock bound %v, want ~1us scale", bound)
	}
	if e := ch.TrueError(); e > 2*sim.Microsecond {
		t.Fatalf("true clock error %v after PTP discipline", e)
	}
}

func TestPTPBeatsNTP(t *testing.T) {
	// Run both configurations and compare mean bounds: PTP must be around
	// an order of magnitude tighter, as in the paper (11us -> 943ns).
	ntpBound := func() sim.Time {
		r := buildRig()
		ntpd := &clocksync.NTPServer{}
		r.server.Host.AddApp(hostsim.AppFunc(ntpd.Run))
		ch := clocksync.NewChrony()
		nc := &clocksync.NTPClient{Server: r.server.Host.LocalIP(), Poll: 200 * sim.Millisecond}
		nc.OnMeasurement = ch.OnMeasurement
		r.client.Host.AddApp(hostsim.AppFunc(ch.Run))
		r.client.Host.AddApp(hostsim.AppFunc(nc.Run))
		r.sim.RunSequential(8 * sim.Second)
		return ch.Bounds.Mean()
	}()
	ptpBound := func() sim.Time {
		r := buildRig()
		gm := &clocksync.PTPMaster{Slaves: []proto.IP{r.client.Host.LocalIP()}, Interval: 200 * sim.Millisecond}
		r.server.Host.AddApp(hostsim.AppFunc(gm.Run))
		slave := &clocksync.PTPSlave{Master: r.server.Host.LocalIP(), NIC: r.client.NIC}
		ch := clocksync.NewChrony()
		ref := &clocksync.PHCRefClock{Slave: slave, NIC: r.client.NIC, Poll: 200 * sim.Millisecond}
		ref.OnMeasurement = ch.OnMeasurement
		r.client.Host.AddApp(hostsim.AppFunc(slave.Run))
		r.client.Host.AddApp(hostsim.AppFunc(ch.Run))
		r.client.Host.AddApp(hostsim.AppFunc(ref.Run))
		r.sim.RunSequential(8 * sim.Second)
		return ch.Bounds.Mean()
	}()
	if ptpBound*5 > ntpBound {
		t.Fatalf("PTP bound %v should be far tighter than NTP bound %v", ptpBound, ntpBound)
	}
}

func TestOscillatorModel(t *testing.T) {
	o := hostsim.Oscillator{Offset: sim.Millisecond, DriftPPM: 100}
	// After 1s, a +100ppm clock has gained 100us on top of the offset.
	got := o.Read(1 * sim.Second)
	want := 1*sim.Second + sim.Millisecond + 100*sim.Microsecond
	if got != want {
		t.Fatalf("Read = %v, want %v", got, want)
	}
	if f := o.FreqPPM(0); f != 100 {
		t.Fatalf("FreqPPM = %v", f)
	}
}

func TestDisciplinedClockAdjust(t *testing.T) {
	c := hostsim.DisciplinedClock{Osc: hostsim.Oscillator{DriftPPM: 50}}
	now := 1 * sim.Second
	raw := c.Osc.Read(now)
	err := raw - now // 50us fast
	c.Adjust(now, -err, -50)
	// Immediately after: corrected to true time.
	if got := c.Read(now); got != now {
		t.Fatalf("post-adjust Read = %v, want %v", got, now)
	}
	// Much later: frequency correction cancels the drift (to first order).
	later := 10 * sim.Second
	diff := c.Read(later) - later
	if diff < 0 {
		diff = -diff
	}
	if diff > 100*sim.Nanosecond {
		t.Fatalf("drift residual after freq correction: %v", diff)
	}
}
