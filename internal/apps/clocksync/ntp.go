// Package clocksync implements the clock-synchronization case study
// (§4.3): an NTP server, a PTP grandmaster and slave (ptp4l) with hardware
// timestamping and transparent-clock support, and a chrony-like daemon that
// disciplines the host system clock from either source and continuously
// reports its clock error bound — the quantity the paper compares between
// NTP (~11 µs) and PTP (~1 µs), and the input to the commit-wait database.
package clocksync

import (
	"repro/internal/hostsim"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NTPServer answers NTP requests with software timestamps. Run it on a
// host whose oscillator is configured perfect (stratum-1/GPS reference).
type NTPServer struct {
	h *hostsim.Host
	// Served counts requests answered.
	Served uint64
}

// Run binds the server; use from a hostsim app hook.
func (s *NTPServer) Run(h *hostsim.Host) {
	s.h = h
	h.BindUDP(proto.PortNTP, func(src proto.IP, sport uint16, payload []byte, _ int) {
		m, err := proto.ParseNTP(payload)
		if err != nil || m.Mode != proto.NTPModeClient {
			return
		}
		s.Served++
		// T2: SO_TIMESTAMP software receive timestamp (driver entry).
		// It still carries interrupt and transmit-path jitter — the reason
		// NTP accuracy is bounded by software timestamping.
		t2 := h.LastRxSWTime()
		reply := proto.NTPMsg{Mode: proto.NTPModeServer, T1: m.T1, T2: t2, T3: h.ClockNow()}
		h.SendUDP(src, proto.PortNTP, sport, proto.AppendNTP(nil, reply), 0)
	})
}

// Measurement is one time-source observation handed to the chrony servo.
type Measurement struct {
	// At is the local (true) time of the measurement.
	At sim.Time
	// Offset is the estimated system-clock error (reference - local).
	Offset sim.Time
	// ErrBound is the measurement's own error bound (path asymmetry,
	// timestamp granularity, reference uncertainty).
	ErrBound sim.Time
}

// NTPClient polls an NTP server and produces measurements.
type NTPClient struct {
	// Server is the NTP server address.
	Server proto.IP
	// Poll is the polling interval.
	Poll sim.Time
	// OnMeasurement receives each completed exchange (wired to Chrony).
	OnMeasurement func(Measurement)

	h    *hostsim.Host
	seq  uint64
	sent map[sim.Time]struct{}

	// Exchanges counts completed request/response pairs.
	Exchanges uint64
	// Delay records measured round-trip delays.
	Delay stats.Latency
}

// Run starts polling.
func (c *NTPClient) Run(h *hostsim.Host) {
	c.h = h
	if c.Poll <= 0 {
		c.Poll = 500 * sim.Millisecond
	}
	h.BindUDP(proto.PortNTP+1, c.onReply)
	var tick func()
	tick = func() {
		c.poll()
		h.After(c.Poll, tick)
	}
	// First poll after a short offset so hosts don't synchronize in
	// lockstep with workload start.
	h.After(c.Poll/4, tick)
}

func (c *NTPClient) poll() {
	t1 := c.h.ClockNow()
	m := proto.NTPMsg{Mode: proto.NTPModeClient, T1: t1}
	c.h.SendUDP(c.Server, proto.PortNTP+1, proto.PortNTP, proto.AppendNTP(nil, m), 0)
}

func (c *NTPClient) onReply(_ proto.IP, _ uint16, payload []byte, _ int) {
	m, err := proto.ParseNTP(payload)
	if err != nil || m.Mode != proto.NTPModeServer {
		return
	}
	t4 := c.h.LastRxSWTime()
	// Classic NTP offset/delay estimators.
	offset := ((m.T2 - m.T1) + (m.T3 - t4)) / 2
	delay := (t4 - m.T1) - (m.T3 - m.T2)
	if delay < 0 {
		delay = 0
	}
	c.Exchanges++
	c.Delay.Add(delay)
	if c.OnMeasurement != nil {
		c.OnMeasurement(Measurement{
			At:     c.h.Now(),
			Offset: offset,
			// The unknowable path asymmetry bounds the measurement error
			// at half the round-trip delay — queueing under load is what
			// pushes NTP into the tens of microseconds.
			ErrBound: delay / 2,
		})
	}
}
