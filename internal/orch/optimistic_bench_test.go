package orch_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/orch"
	"repro/internal/sim"
)

// The optimistic benchmarks measure ns per simulated event under the
// speculative executor, over the same done-events loop as the placement and
// parallel suites so BENCH_placement.json compares all three executors in
// one unit. Each benchmark sweeps GOMAXPROCS 1/2/4 as P1/P2/P4
// sub-benchmarks and reports an xspeedup metric — the conservative parallel
// executor's ns/event on the identical graph and placement, measured once
// per (benchmark, procs) pair, divided by the optimistic ns/event — so every
// data point carries its own baseline regardless of which benchmarks ran.
//
// The headline graph is LatencyDominated: chatter periods ~100x the channel
// latency, so the conservative executor climbs a ladder of empty sync
// windows between events while the optimistic executor's GVT leap jumps
// straight to the next event time. That is where the paper-motivated win
// lives, and it shows up even on one core because the ladder is pure
// overhead, not parallelizable work.

// specProcs are the GOMAXPROCS levels every optimistic benchmark sweeps.
var specProcs = []int{1, 2, 4}

// specRefMinEvents sizes the conservative baseline measurement.
const specRefMinEvents = 2000

// specRefNs caches the parallel executor's ns/event per (benchmark, procs)
// key so -count repetitions and metric reporting reuse one measurement.
var specRefNs = map[string]float64{}

func parallelRefNs(b *testing.B, key string,
	build func() (*orch.Simulation, []*specChatter), p decomp.Placement) float64 {
	if ns, ok := specRefNs[key]; ok {
		return ns
	}
	var events uint64
	start := time.Now()
	for events < specRefMinEvents {
		s, _ := build()
		if err := s.RunParallel(benchEnd, p); err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Group.Runners {
			events += r.Scheduler().Processed()
		}
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(events)
	specRefNs[key] = ns
	return ns
}

// benchOptimistic is the shared harness: for each procs level, run whole
// optimistic executions until b.N events have been processed.
func benchOptimistic(b *testing.B, name string,
	build func() (*orch.Simulation, []*specChatter), p decomp.Placement) {
	for _, procs := range specProcs {
		b.Run(fmt.Sprintf("P%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			ref := parallelRefNs(b, fmt.Sprintf("%s/P%d", name, procs), build, p)
			b.ReportAllocs()
			b.ResetTimer()
			var done uint64
			start := time.Now()
			for done < uint64(b.N) {
				s, _ := build()
				pl, err := s.Plan(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pl.RunOptimistic(benchEnd); err != nil {
					b.Fatal(err)
				}
				for _, r := range s.Group.Runners {
					done += r.Scheduler().Processed()
				}
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(done); ns > 0 {
				b.ReportMetric(ref/ns, "xspeedup")
			}
		})
	}
}

// benchParallelRef mirrors benchOptimistic with the conservative parallel
// executor, so the JSON carries directly comparable ns/event entries at each
// procs level.
func benchParallelRef(b *testing.B,
	build func() (*orch.Simulation, []*specChatter), p decomp.Placement) {
	for _, procs := range specProcs {
		b.Run(fmt.Sprintf("P%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			var done uint64
			for done < uint64(b.N) {
				s, _ := build()
				if err := s.RunParallel(benchEnd, p); err != nil {
					b.Fatal(err)
				}
				for _, r := range s.Group.Runners {
					done += r.Scheduler().Processed()
				}
			}
		})
	}
}

// buildSpecSyncLight is buildSyncLight with checkpointable components: two
// chatters over one channel whose sync interval is latency/8.
func buildSpecSyncLight() (*orch.Simulation, []*specChatter) {
	s := orch.New()
	ca := newSpecChatter("a", 64*sim.Microsecond, 1)
	cb := newSpecChatter("b", 96*sim.Microsecond, 2)
	s.Add(ca)
	s.Add(cb)
	ca.ports = append(ca.ports, nil)
	cb.ports = append(cb.ports, nil)
	s.Connect("light", 16*sim.Microsecond, 2*sim.Microsecond,
		orch.Side{Comp: ca, Bind: func(p core.Port) { ca.ports[0] = p }, Sink: ca.sink(0)},
		orch.Side{Comp: cb, Bind: func(p core.Port) { cb.ports[0] = p }, Sink: cb.sink(0)})
	return s, []*specChatter{ca, cb}
}

// buildSpecLatencyDominated is the headline graph: a 4-component line whose
// chatter periods (400-760us) dwarf the 5us channel latency. Between events
// the conservative horizon advances one 5us rung at a time — roughly a
// hundred empty sync exchanges per event — while a GVT leap crosses the
// whole gap in one observably-empty check.
func buildSpecLatencyDominated() (*orch.Simulation, []*specChatter) {
	s := orch.New()
	comps := make([]*specChatter, 4)
	for i := range comps {
		comps[i] = newSpecChatter(fmt.Sprintf("ld%d", i),
			sim.Time(400+120*i)*sim.Microsecond, uint64(i+1)*0x9e37)
		s.Add(comps[i])
	}
	for i := 1; i < len(comps); i++ {
		ca, cb := comps[i-1], comps[i]
		pa, pb := len(ca.ports), len(cb.ports)
		ca.ports = append(ca.ports, nil)
		cb.ports = append(cb.ports, nil)
		s.Connect(fmt.Sprintf("ld%d-%d", i-1, i), 5*sim.Microsecond, 5*sim.Microsecond,
			orch.Side{Comp: ca, Bind: func(p core.Port) { ca.ports[pa] = p }, Sink: ca.sink(pa)},
			orch.Side{Comp: cb, Bind: func(p core.Port) { cb.ports[pb] = p }, Sink: cb.sink(pb)})
	}
	return s, comps
}

func BenchmarkOptimisticSyncLight(b *testing.B) {
	benchOptimistic(b, "SyncLight", buildSpecSyncLight, decomp.PerComponent(2))
}

func BenchmarkOptimisticLatencyDominated(b *testing.B) {
	benchOptimistic(b, "LatencyDominated", buildSpecLatencyDominated, decomp.PerComponent(4))
}

func BenchmarkParallelLatencyDominated(b *testing.B) {
	benchParallelRef(b, buildSpecLatencyDominated, decomp.PerComponent(4))
}

func pairsPlacement(n int) decomp.Placement {
	groups := make([]int, n)
	for i := range groups {
		groups[i] = i / 2
	}
	return decomp.Placement{Name: "pairs", Groups: groups}
}

func BenchmarkOptimisticPairs(b *testing.B) {
	benchOptimistic(b, "Pairs",
		func() (*orch.Simulation, []*specChatter) { return buildSpecRandom(benchSeed, benchComps) },
		pairsPlacement(benchComps))
}
