package orch_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/proxy"
	"repro/internal/sim"
)

const (
	distLatency = 2 * sim.Microsecond
	distEnd     = 2 * sim.Millisecond
)

// buildSite makes one single-switch network with a host and an external
// port toward its remote pair.
func buildSite(name string, localID, remoteID uint32) (*netsim.Network, *netsim.Host, *netsim.ExtPort) {
	n := netsim.New(name, 1)
	sw := n.AddSwitch("sw")
	h := n.AddHost("h", proto.HostIP(localID))
	n.ConnectHostSwitch(h, sw, 10*sim.Gbps, sim.Microsecond)
	x := n.AddExternal(sw, "x", 10*sim.Gbps, proto.HostIP(remoteID))
	x.SetEncode(true)
	n.ComputeRoutes()
	return n, h, x
}

// wireSiteApps puts periodic senders on h1/h3 and sinks on h2/h4.
func wireSiteApps(h1, h2, h3, h4 *netsim.Host) {
	sender := func(dst proto.IP, iv sim.Time) netsim.AppFunc {
		return func(h *netsim.Host) {
			var tick func()
			tick = func() {
				h.SendUDP(dst, 1, 9, nil, 400)
				h.After(iv, tick)
			}
			tick()
		}
	}
	h1.SetApp(sender(h2.IP(), 20*sim.Microsecond))
	h3.SetApp(sender(h4.IP(), 25*sim.Microsecond))
	drop := func(proto.IP, uint16, []byte, int) {}
	h2.BindUDP(9, drop)
	h4.BindUDP(9, drop)
}

// runMonolithic runs the two-pair topology in one process, coupled.
func runMonolithic(t *testing.T) (rx2, rx4 uint64) {
	t.Helper()
	n1, h1, x1 := buildSite("net1", 1, 2)
	n2, h2, x2 := buildSite("net2", 2, 1)
	n3, h3, x3 := buildSite("net3", 3, 4)
	n4, h4, x4 := buildSite("net4", 4, 3)
	wireSiteApps(h1, h2, h3, h4)
	s := orch.New()
	s.Add(n1)
	s.Add(n2)
	s.Add(n3)
	s.Add(n4)
	s.Connect("x12", distLatency, 0,
		orch.Side{Comp: n1, Bind: x1.Bind, Sink: x1},
		orch.Side{Comp: n2, Bind: x2.Bind, Sink: x2})
	s.Connect("x34", distLatency, 0,
		orch.Side{Comp: n3, Bind: x3.Bind, Sink: x3},
		orch.Side{Comp: n4, Bind: x4.Bind, Sink: x4})
	if err := s.RunCoupled(distEnd); err != nil {
		t.Fatal(err)
	}
	return h2.RxPackets, h4.RxPackets
}

func distCfg(seed uint64) proxy.Config {
	return proxy.Config{
		Heartbeat:   10 * time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
		BackoffMin:  time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Linger:      300 * time.Millisecond,
		MaxAttempts: 200,
		Seed:        seed,
	}
}

// runDistributed partitions the same topology across two Simulations —
// standing in for two OS processes — joined by one supervised connection
// carrying both boundary channels. Every process scripts the same
// component/connection sequence, registering its own pieces and Reserving
// the peer's, so the source-id assignment matches the monolithic run
// exactly.
func runDistributed(t *testing.T, chaos *proxy.Chaos) (rx2, rx4 uint64, sc, cc proxy.Counters) {
	t.Helper()
	n1, h1, x1 := buildSite("net1", 1, 2)
	n2, h2, x2 := buildSite("net2", 2, 1)
	n3, h3, x3 := buildSite("net3", 3, 4)
	n4, h4, x4 := buildSite("net4", 4, 3)
	wireSiteApps(h1, h2, h3, h4)

	sA := orch.New() // holds n1, n3; side A of both boundaries
	sA.Add(n1)
	sA.Reserve(1) // n2 lives in the peer
	sA.Add(n3)
	sA.Reserve(1) // n4 lives in the peer
	remA12 := sA.ConnectRemote("x12", distLatency, 0,
		orch.Side{Comp: n1, Bind: x1.Bind, Sink: x1}, true)
	remA34 := sA.ConnectRemote("x34", distLatency, 0,
		orch.Side{Comp: n3, Bind: x3.Bind, Sink: x3}, true)

	sB := orch.New() // holds n2, n4; side B
	sB.Reserve(1)    // n1
	sB.Add(n2)
	sB.Reserve(1) // n3
	sB.Add(n4)
	remB12 := sB.ConnectRemote("x12", distLatency, 0,
		orch.Side{Comp: n2, Bind: x2.Bind, Sink: x2}, false)
	remB34 := sB.ConnectRemote("x34", distLatency, 0,
		orch.Side{Comp: n4, Bind: x4.Bind, Sink: x4}, false)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	supA := proxy.NewSupervisor(distCfg(20))
	supA.AddChannel(0, remA12, proxy.RawFrameCodec{})
	supA.AddChannel(1, remA34, proxy.RawFrameCodec{})
	ccfg := distCfg(21)
	if chaos != nil {
		ccfg.DialFunc = chaos.Dialer()
	}
	supB := proxy.NewSupervisor(ccfg)
	supB.AddChannel(0, remB12, proxy.RawFrameCodec{})
	supB.AddChannel(1, remB34, proxy.RawFrameCodec{})

	errs := make(chan error, 4)
	go func() { errs <- supA.Serve(context.Background(), ln) }()
	go func() { errs <- supB.Dial(context.Background(), ln.Addr().String()) }()
	go func() { errs <- sA.RunCoupled(distEnd) }()
	go func() { errs <- sB.RunCoupled(distEnd) }()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("distributed run: %v", err)
		}
	}
	return h2.RxPackets, h4.RxPackets, supA.Counters(), supB.Counters()
}

// TestDistributedMatchesMonolithic is the scale-out acceptance property:
// splitting the simulation across two supervised processes changes nothing
// about the results.
func TestDistributedMatchesMonolithic(t *testing.T) {
	m2, m4 := runMonolithic(t)
	if m2 == 0 || m4 == 0 {
		t.Fatal("no traffic in monolithic run")
	}
	d2, d4, _, cc := runDistributed(t, nil)
	if d2 != m2 || d4 != m4 {
		t.Fatalf("distributed run diverged: monolithic rx=(%d,%d) distributed rx=(%d,%d)",
			m2, m4, d2, d4)
	}
	if cc.FramesTx == 0 || cc.FramesRx == 0 {
		t.Fatalf("client transport idle: %+v", cc)
	}
}

// TestDistributedSurvivesConnectionKills re-runs the distributed setup
// with deterministic connection faults on the dialer: the supervisors must
// reconnect and the results must still be identical.
func TestDistributedSurvivesConnectionKills(t *testing.T) {
	m2, m4 := runMonolithic(t)
	chaos := proxy.NewChaos(77, 2, 3000)
	d2, d4, sc, cc := runDistributed(t, chaos)
	if d2 != m2 || d4 != m4 {
		t.Fatalf("faulted distributed run diverged: monolithic rx=(%d,%d) got rx=(%d,%d)",
			m2, m4, d2, d4)
	}
	if _, faulty := chaos.Dealt(); faulty == 0 {
		t.Fatal("chaos dealt no faults")
	}
	if sc.Reconnects+cc.Reconnects == 0 {
		t.Fatalf("no reconnects despite faults: server=%+v client=%+v", sc, cc)
	}
}

// TestRunSequentialRejectsRemoteConnections: a partitioned simulation has
// no sequential execution; silently running half a topology would be a
// correctness trap.
func TestRunSequentialRejectsRemoteConnections(t *testing.T) {
	n1, _, x1 := buildSite("net1", 1, 2)
	s := orch.New()
	s.Add(n1)
	s.ConnectRemote("x12", distLatency, 0,
		orch.Side{Comp: n1, Bind: x1.Bind, Sink: x1}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("RunSequential with a remote connection must panic")
		}
	}()
	s.RunSequential(distEnd)
}
