package orch

import (
	"runtime"

	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/sim"
)

// Multi-core execution of placement groups. The paper's bet (§3.2) is that
// a simulation decomposed into components synchronized over latency-
// lookahead channels can run truly in parallel; the coupled executor
// already runs one goroutine per runner group, but leaves thread placement
// and sync pacing to defaults tuned for a single core. RunParallel is the
// finished job:
//
//   - each runner group is locked to a dedicated OS thread (up to
//     GOMAXPROCS of them — beyond that, pinning would only multiply OS
//     threads competing for the same cores, so spillover groups stay on the
//     Go scheduler);
//   - horizon advancement is batched: one sync exchange covers a whole
//     lookahead window instead of pausing every sync interval
//     (link.Runner.SetBatchWindows);
//   - the channel fabric's blocking discipline switches, via the same
//     GOMAXPROCS signal, from yield-to-let-the-peer-run to
//     spin-then-park (link pipe recvAdaptive).
//
// The standing invariant is untouched: a parallel run is bit-identical to
// RunSequential for every placement — sync cadence and thread placement
// never schedule or reorder simulation events. The property tests in
// parallel_test.go enforce this at GOMAXPROCS 1, 2, 4, and NumCPU.

// ParallelOptions tunes the multi-core executor. The zero value is the
// plain coupled executor (no pinning, per-sync-interval pacing).
type ParallelOptions struct {
	// Pin locks runner goroutines to dedicated OS threads so group
	// placement survives Go scheduler preemption.
	Pin bool
	// MaxPinned caps how many runners are pinned (0 = all when Pin is set).
	// The parallel defaults set it to GOMAXPROCS: one pinned thread per
	// core's worth of parallelism, spillover groups multiplexed by the Go
	// scheduler.
	MaxPinned int
	// BatchWindows amortizes horizon advancement: one sync exchange per
	// lookahead window instead of per sync interval.
	BatchWindows bool
}

// DefaultParallelOptions derives the executor configuration from the host:
// batching always pays (fewer fabric messages for identical results), and
// pinning pays exactly when more than one core is available.
func DefaultParallelOptions() ParallelOptions {
	procs := runtime.GOMAXPROCS(0)
	return ParallelOptions{
		Pin:          procs > 1,
		MaxPinned:    procs,
		BatchWindows: true,
	}
}

// RunParallel executes the plan with the multi-core defaults for this host.
// Plans with remote connections are rejected with ErrRemoteUnsupported; use
// RunCoupled, which keeps remote channels conservatively synchronized.
func (pl *ExecutionPlan) RunParallel(end sim.Time) error {
	return pl.RunParallelOpts(end, DefaultParallelOptions())
}

// RunParallelOpts executes the plan under explicit executor options.
func (pl *ExecutionPlan) RunParallelOpts(end sim.Time, opts ParallelOptions) error {
	if err := pl.checkNoRemotes(); err != nil {
		return err
	}
	return pl.execute(end, opts)
}

// RunParallel executes the simulation under the given placement with runner
// groups on real cores — the multi-core analog of RunPlaced. Bit-identical
// to RunSequential for every placement.
func (s *Simulation) RunParallel(end sim.Time, p decomp.Placement) error {
	pl, err := s.Plan(p)
	if err != nil {
		return err
	}
	return pl.RunParallel(end)
}

// HostModelParams returns decomposition-model parameters tuned to the
// executing host rather than the calibrated paper constants: the core
// budget is GOMAXPROCS and the per-sync cost is measured on this machine's
// actual channel fabric (link.MeasuredSyncCost — priced once per process,
// cached thereafter). AutoPlace fed with these parameters weighs core count
// and real sync cost — it stops splitting beyond the cores that exist and
// merges groups whose sync bill, at measured prices, exceeds their
// parallelism win.
func HostModelParams(duration sim.Time) decomp.Params {
	return decomp.HostParams(duration, runtime.GOMAXPROCS(0), link.MeasuredSyncCost())
}
