package orch_test

import (
	"bytes"
	"errors"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/hostsim"
	"repro/internal/instantiate"
	"repro/internal/memsim"
	"repro/internal/netsim"
	"repro/internal/netsim/workload"
	"repro/internal/nicsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
)

// buildCkptSim constructs the checkpoint test fixture: a partitioned
// three-tier fabric (ac strategy: 1 core+agg part per agg block plus rack
// parts) with a UDP open-loop workload riding along as aux state. Every
// call with the same seed builds an identical simulation — the premise of
// restore-into-fresh-build.
func buildCkptSim(seed uint64, arrival workload.Arrival) (*orch.Simulation, *netsim.Built, *workload.Engine) {
	spec := netsim.ThreeTierSpec{
		Aggs: 2, RacksPerAgg: 2, HostsPerRack: 2,
		CoreRate: 100 * sim.Gbps, AggRate: 40 * sim.Gbps,
		HostRate: 10 * sim.Gbps, LinkDelay: sim.Microsecond,
	}
	topo, meta := netsim.ThreeTier(spec)
	assign := decomp.Strategy{Name: "ac"}.Assign(meta, len(topo.Switches))
	built := topo.Build("net", seed, assign, nil)
	eng := workload.Install(built.Hosts, workload.Spec{
		Pattern: workload.Uniform{},
		Sizes:   workload.Pareto{Min: 600, Alpha: 1.3, Max: 20_000},
		Arrival: arrival,
		Seed:    seed,
	})
	s := orch.New()
	instantiate.WirePartitions(s, topo, built, true)
	s.AddAuxState("wl", eng)
	return s, built, eng
}

// ckptDigest folds the full explicit state of the fabric and workload into
// one value. Two runs that reach the same virtual time with identical state
// produce identical digests regardless of placement or checkpointing.
func ckptDigest(t *testing.T, built *netsim.Built, eng *workload.Engine) uint64 {
	t.Helper()
	var e snap.Encoder
	for _, p := range built.Parts {
		if err := p.SnapshotState(&e); err != nil {
			t.Fatalf("digest snapshot: %v", err)
		}
	}
	if err := eng.SnapshotState(&e); err != nil {
		t.Fatalf("digest snapshot: %v", err)
	}
	h := fnv.New64a()
	h.Write(e.Bytes())
	return h.Sum64()
}

// TestCheckpointRestoreBitIdentical is the tentpole's acceptance property:
// checkpoint at the halfway horizon, restore into a fresh build, run to the
// end — the final state digest, the total event count, and the leaked-frame
// count (zero) all match an uninterrupted run exactly. The resumed half
// runs sequentially, coupled, and parallel-pinned, across GOMAXPROCS
// {1, 2, 4, NumCPU}.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const (
		dur  = 2 * sim.Millisecond
		half = sim.Millisecond
	)
	arrival := workload.Open{FlowsPerSec: 50_000}
	for seed := uint64(1); seed <= 2; seed++ {
		// Uninterrupted reference run.
		ref, refBuilt, refEng := buildCkptSim(seed, arrival)
		refSched := ref.RunSequential(dur)
		refEvents := refSched.Processed()
		refDigest := ckptDigest(t, refBuilt, refEng)
		if n := ref.LiveFrames(); n != 0 {
			t.Fatalf("seed %d: reference run leaked %d frames", seed, n)
		}

		// Sequential checkpoint at the halfway horizon.
		cs, _, _ := buildCkptSim(seed, arrival)
		ck, err := cs.CheckpointSequential(half)
		if err != nil {
			t.Fatalf("seed %d: CheckpointSequential: %v", seed, err)
		}
		if n := cs.LiveFrames(); n != 0 {
			t.Fatalf("seed %d: checkpoint run leaked %d frames", seed, n)
		}
		if ck.At != half || ck.BaseEvents == 0 || ck.BaseEvents >= refEvents {
			t.Fatalf("seed %d: checkpoint at=%v base=%d (ref total %d)",
				seed, ck.At, ck.BaseEvents, refEvents)
		}

		// Sequential resume.
		rs, rBuilt, rEng := buildCkptSim(seed, arrival)
		rSched, err := rs.ResumeSequential(ck, dur)
		if err != nil {
			t.Fatalf("seed %d: ResumeSequential: %v", seed, err)
		}
		if d := ckptDigest(t, rBuilt, rEng); d != refDigest {
			t.Fatalf("seed %d: sequential resume digest %#x != reference %#x", seed, d, refDigest)
		}
		if got := ck.BaseEvents + rSched.Processed(); got != refEvents {
			t.Fatalf("seed %d: events %d (base) + %d (resumed) = %d, want %d",
				seed, ck.BaseEvents, rSched.Processed(), got, refEvents)
		}
		if n := rs.LiveFrames(); n != 0 {
			t.Fatalf("seed %d: resumed run leaked %d frames", seed, n)
		}

		// Placed and parallel resumes at every GOMAXPROCS level.
		nComps := rs.NumComponents()
		for _, procs := range gomaxprocsSweep() {
			func() {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				modes := []struct {
					name string
					opts orch.ParallelOptions
				}{
					{"coupled", orch.ParallelOptions{}},
					{"parallel", orch.DefaultParallelOptions()},
				}
				for _, m := range modes {
					s2, b2, e2 := buildCkptSim(seed, arrival)
					if err := s2.ResumePlaced(ck, dur, decomp.PerComponent(nComps), m.opts); err != nil {
						t.Fatalf("seed %d procs %d %s: ResumePlaced: %v", seed, procs, m.name, err)
					}
					if d := ckptDigest(t, b2, e2); d != refDigest {
						t.Fatalf("seed %d procs %d %s: placed resume digest %#x != reference %#x",
							seed, procs, m.name, d, refDigest)
					}
					var events uint64
					for _, r := range s2.Group.Runners {
						events += r.Scheduler().Processed()
					}
					if got := ck.BaseEvents + events; got != refEvents {
						t.Fatalf("seed %d procs %d %s: events %d+%d != %d",
							seed, procs, m.name, ck.BaseEvents, events, refEvents)
					}
					if n := s2.LiveFrames(); n != 0 {
						t.Fatalf("seed %d procs %d %s: leaked %d frames", seed, procs, m.name, n)
					}
				}
			}()
		}
	}
}

// TestCheckpointBytesPlacementInvariant: the serialized checkpoint is
// byte-for-byte identical whether it was captured from a sequential run or
// a quiesced per-component coupled run — sink names and the canonical
// (time, source) event order erase the placement.
func TestCheckpointBytesPlacementInvariant(t *testing.T) {
	const half = sim.Millisecond
	arrival := workload.Open{FlowsPerSec: 50_000}

	seqSim, _, _ := buildCkptSim(3, arrival)
	seqCk, err := seqSim.CheckpointSequential(half)
	if err != nil {
		t.Fatalf("CheckpointSequential: %v", err)
	}
	for _, m := range []struct {
		name string
		opts orch.ParallelOptions
	}{
		{"coupled", orch.ParallelOptions{}},
		{"parallel", orch.DefaultParallelOptions()},
	} {
		ps, _, _ := buildCkptSim(3, arrival)
		pck, err := ps.CheckpointPlaced(half, decomp.PerComponent(ps.NumComponents()), m.opts)
		if err != nil {
			t.Fatalf("%s: CheckpointPlaced: %v", m.name, err)
		}
		if pck.BaseEvents != seqCk.BaseEvents {
			t.Fatalf("%s: base events %d != sequential %d", m.name, pck.BaseEvents, seqCk.BaseEvents)
		}
		if !bytes.Equal(pck.Data, seqCk.Data) {
			t.Fatalf("%s: checkpoint bytes differ from sequential capture (%d vs %d bytes)",
				m.name, len(pck.Data), len(seqCk.Data))
		}
		if n := ps.LiveFrames(); n != 0 {
			t.Fatalf("%s: placed checkpoint leaked %d frames", m.name, n)
		}
	}
}

// TestCheckpointClosedLoop drives the named think/burst re-arm paths: a
// closed-loop workload's pending think timers and pacing bursts must ride
// through the checkpoint and keep the resumed run bit-identical.
func TestCheckpointClosedLoop(t *testing.T) {
	const (
		dur  = 2 * sim.Millisecond
		half = sim.Millisecond
	)
	arrival := workload.Closed{Concurrency: 2, Think: 10 * sim.Microsecond}

	ref, refBuilt, refEng := buildCkptSim(7, arrival)
	refEvents := ref.RunSequential(dur).Processed()
	refDigest := ckptDigest(t, refBuilt, refEng)

	cs, _, _ := buildCkptSim(7, arrival)
	ck, err := cs.CheckpointSequential(half)
	if err != nil {
		t.Fatalf("CheckpointSequential: %v", err)
	}
	rs, rBuilt, rEng := buildCkptSim(7, arrival)
	rSched, err := rs.ResumeSequential(ck, dur)
	if err != nil {
		t.Fatalf("ResumeSequential: %v", err)
	}
	if d := ckptDigest(t, rBuilt, rEng); d != refDigest {
		t.Fatalf("closed-loop resume digest %#x != reference %#x", d, refDigest)
	}
	if got := ck.BaseEvents + rSched.Processed(); got != refEvents {
		t.Fatalf("closed-loop events %d+%d != %d", ck.BaseEvents, rSched.Processed(), refEvents)
	}
}

// TestCheckpointMemsimSplit checkpoints the split core/memory build midway
// and verifies the resumed halves reproduce the uninterrupted run's
// transaction counts and stall accounting, sequentially and placed.
func TestCheckpointMemsimSplit(t *testing.T) {
	const (
		dur  = 50 * sim.Microsecond
		half = 25 * sim.Microsecond
	)
	build := func() (*orch.Simulation, []*memsim.Core, *memsim.Mem) {
		s := orch.New()
		cores, mem := memsim.BuildSplit(s, 4, memsim.DefaultParams())
		return s, cores, mem
	}
	digest := func(cores []*memsim.Core, mem *memsim.Mem) uint64 {
		var e snap.Encoder
		if err := mem.SnapshotState(&e); err != nil {
			t.Fatalf("mem snapshot: %v", err)
		}
		for _, c := range cores {
			if err := c.SnapshotState(&e); err != nil {
				t.Fatalf("core snapshot: %v", err)
			}
		}
		h := fnv.New64a()
		h.Write(e.Bytes())
		return h.Sum64()
	}

	ref, refCores, refMem := build()
	refEvents := ref.RunSequential(dur).Processed()
	refDigest := digest(refCores, refMem)

	cs, _, _ := build()
	ck, err := cs.CheckpointSequential(half)
	if err != nil {
		t.Fatalf("CheckpointSequential: %v", err)
	}

	rs, rCores, rMem := build()
	rSched, err := rs.ResumeSequential(ck, dur)
	if err != nil {
		t.Fatalf("ResumeSequential: %v", err)
	}
	if d := digest(rCores, rMem); d != refDigest {
		t.Fatalf("memsim sequential resume digest %#x != reference %#x", d, refDigest)
	}
	if got := ck.BaseEvents + rSched.Processed(); got != refEvents {
		t.Fatalf("memsim events %d+%d != %d", ck.BaseEvents, rSched.Processed(), refEvents)
	}

	ps, pCores, pMem := build()
	if err := ps.ResumePlaced(ck, dur, decomp.PerComponent(ps.NumComponents()),
		orch.DefaultParallelOptions()); err != nil {
		t.Fatalf("ResumePlaced: %v", err)
	}
	if d := digest(pCores, pMem); d != refDigest {
		t.Fatalf("memsim placed resume digest %#x != reference %#x", d, refDigest)
	}
}

// TestLoadCheckpoint exercises the serialized form: a round trip through
// LoadCheckpoint preserves the metadata and restores correctly, while
// truncated or corrupted bytes surface the codec's typed errors instead of
// garbage state.
func TestLoadCheckpoint(t *testing.T) {
	arrival := workload.Open{FlowsPerSec: 50_000}
	cs, _, _ := buildCkptSim(5, arrival)
	ck, err := cs.CheckpointSequential(sim.Millisecond)
	if err != nil {
		t.Fatalf("CheckpointSequential: %v", err)
	}

	got, err := orch.LoadCheckpoint(ck.Data)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.At != ck.At || got.BaseEvents != ck.BaseEvents {
		t.Fatalf("round trip: at=%v base=%d, want at=%v base=%d",
			got.At, got.BaseEvents, ck.At, ck.BaseEvents)
	}
	rs, _, _ := buildCkptSim(5, arrival)
	if _, err := rs.ResumeSequential(got, 2*sim.Millisecond); err != nil {
		t.Fatalf("resume from reloaded checkpoint: %v", err)
	}

	if _, err := orch.LoadCheckpoint(ck.Data[:len(ck.Data)/2]); !errors.Is(err, snap.ErrTruncated) && !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("truncated checkpoint: err = %v, want ErrTruncated or ErrCorrupt", err)
	}
	garbled := append([]byte(nil), ck.Data...)
	garbled[len(garbled)/2] ^= 0x5a
	if _, err := orch.LoadCheckpoint(garbled); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("garbled checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointRejectsImplicitState: a simulation containing a component
// without explicit state (the detailed host pipeline) fails checkpointing
// with the typed error rather than silently dropping state.
func TestCheckpointRejectsImplicitState(t *testing.T) {
	n := netsim.New("net", 1)
	sw := n.AddSwitch("sw")
	ip := proto.HostIP(5)
	ext := n.AddExternal(sw, "h", 10*sim.Gbps, ip)
	n.ComputeRoutes()
	s := orch.New()
	s.Add(n)
	dh := instantiate.NewDetailedHost("h", ip, hostsim.QemuParams(), nicsim.DefaultParams(), 3)
	dh.Wire(s, n, ext)

	if _, err := s.CheckpointSequential(sim.Millisecond); !errors.Is(err, core.ErrNotCheckpointable) {
		t.Fatalf("detailed-host checkpoint: err = %v, want ErrNotCheckpointable", err)
	}
}
