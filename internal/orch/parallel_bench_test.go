package orch_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/orch"
	"repro/internal/sim"
)

// The parallel benchmarks mirror the placement suite under the multi-core
// executor (thread pinning + batched horizon windows) so
// BENCH_placement.json tracks both executors over the same graph and the
// same ns-per-event unit. On a single-core host the pinning is a no-op and
// the interesting number is the batching: the SyncLight pair below runs a
// channel whose sync interval is latency/8, where batched windows cut the
// fabric sync traffic ~8x whether or not real cores are available.

func benchParallel(b *testing.B, groups func() decomp.Placement) {
	b.ReportAllocs()
	var done uint64
	for done < uint64(b.N) {
		s, _ := buildRandom(benchSeed, benchComps)
		if err := s.RunParallel(benchEnd, groups()); err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Group.Runners {
			done += r.Scheduler().Processed()
		}
	}
}

func BenchmarkParallelColoc(b *testing.B) {
	benchParallel(b, func() decomp.Placement { return decomp.SingleGroup(benchComps) })
}

func BenchmarkParallelPairs(b *testing.B) {
	benchParallel(b, func() decomp.Placement {
		groups := make([]int, benchComps)
		for i := range groups {
			groups[i] = i / 2
		}
		return decomp.Placement{Name: "pairs", Groups: groups}
	})
}

func BenchmarkParallelPerComp(b *testing.B) {
	benchParallel(b, func() decomp.Placement { return decomp.PerComponent(benchComps) })
}

// The SyncLight pair isolates batched horizon advancement: two chatter
// components joined by a single channel whose sync interval is latency/8,
// run per-component so the channel is genuinely synchronized. The coupled
// executor pays a sync exchange every interval; the parallel executor
// covers a whole lookahead window per exchange — an ~8x cut in fabric sync
// traffic that shows up in ns/event even on one core.
func buildSyncLight() *orch.Simulation {
	s := orch.New()
	ca := &chatter{name: "a", period: 64 * sim.Microsecond, rng: sim.NewRand(1)}
	cb := &chatter{name: "b", period: 96 * sim.Microsecond, rng: sim.NewRand(2)}
	s.Add(ca)
	s.Add(cb)
	ca.ports = append(ca.ports, nil)
	cb.ports = append(cb.ports, nil)
	s.Connect("light", 16*sim.Microsecond, 2*sim.Microsecond,
		orch.Side{Comp: ca, Bind: func(p core.Port) { ca.ports[0] = p }, Sink: ca.sink(0)},
		orch.Side{Comp: cb, Bind: func(p core.Port) { cb.ports[0] = p }, Sink: cb.sink(0)})
	return s
}

func benchSyncLight(b *testing.B, parallel bool) {
	b.ReportAllocs()
	var done uint64
	for done < uint64(b.N) {
		s := buildSyncLight()
		p := decomp.PerComponent(2)
		var err error
		if parallel {
			err = s.RunParallel(benchEnd, p)
		} else {
			err = s.RunPlaced(benchEnd, p)
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Group.Runners {
			done += r.Scheduler().Processed()
		}
	}
}

func BenchmarkCoupledSyncLight(b *testing.B)  { benchSyncLight(b, false) }
func BenchmarkParallelSyncLight(b *testing.B) { benchSyncLight(b, true) }
