package orch

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Optimistic parallel execution. The conservative executor (RunParallel)
// never lets a group run past the horizon its peers have promised; on
// latency-dominated graphs that leaves cores idle climbing sync ladders
// through windows where nothing ever arrives. RunOptimistic lets each group
// speculate up to K sync windows past its committed horizon, holding a
// per-group in-memory snapshot to fall back on when a straggler message
// proves the speculation wrong. Outgoing messages stay withheld until the
// committed horizon passes them, so misspeculation never escapes a group and
// a rollback is strictly local. The standing invariant is inherited
// unchanged: an optimistic run is bit-identical to RunSequential for every
// placement, every K, and every interleaving.
//
// The fabric half (speculation loop, straggler detection, input-log replay,
// GVT leaping) lives in link/spec.go. This file is the orchestrator half:
// deciding which groups may speculate, building the snapshot/restore
// closures over the group's components and scheduler, wiring replay pool
// owners, and reporting what speculation did.

// ErrRemoteUnsupported reports a plan whose simulation has remote
// (cross-process) connections being handed to an executor that cannot
// synchronize them. RunParallel and RunOptimistic reject such plans; use
// RunCoupled, which keeps remote channels conservatively synchronized.
var ErrRemoteUnsupported = errors.New("orch: remote channels unsupported by this executor")

// checkNoRemotes guards the single-process executors.
func (pl *ExecutionPlan) checkNoRemotes() error {
	if n := len(pl.s.remotes); n > 0 {
		return fmt.Errorf("%w: plan has %d remote connection(s)", ErrRemoteUnsupported, n)
	}
	return nil
}

// OptimisticOptions tunes the optimistic executor.
type OptimisticOptions struct {
	// Parallel carries the thread-placement options shared with RunParallel.
	Parallel ParallelOptions
	// MaxWindows is K: how many sync windows past the committed horizon each
	// group may speculate. 0 disables speculation (groups still run the
	// optimistic loop for its GVT horizon leaping). The depth is adaptive at
	// runtime — a rollback halves a group's working K, clean commits earn it
	// back — so MaxWindows is a ceiling, not a fixed operating point.
	MaxWindows int
}

// DefaultOptimisticOptions is the multi-core default: parallel thread
// placement plus a moderate speculation ceiling. K = 8 is deep enough to
// bridge the empty-window stretches of latency-dominated graphs while
// keeping the worst-case re-execution (one snapshot window) cheap.
func DefaultOptimisticOptions() OptimisticOptions {
	return OptimisticOptions{Parallel: DefaultParallelOptions(), MaxWindows: 8}
}

// GroupSpec is one group's speculation outcome.
type GroupSpec struct {
	Group string
	// Conservative is the reason this group ran without speculation
	// ("" when it speculated): a build-time ineligibility (non-Stateful
	// component, aux state) or a runtime demotion (unsnapshottable queue,
	// unloggable input).
	Conservative string
	Counters     link.SpecCounters
}

// SpecReport is what speculation did across an optimistic run.
type SpecReport struct {
	Groups []GroupSpec
}

// Totals sums the per-group counters.
func (r *SpecReport) Totals() link.SpecCounters {
	var t link.SpecCounters
	for i := range r.Groups {
		c := r.Groups[i].Counters
		t.Snapshots += c.Snapshots
		t.Rollbacks += c.Rollbacks
		t.Leaps += c.Leaps
		t.Replayed += c.Replayed
		t.WastedNanos += c.WastedNanos
	}
	return t
}

// String renders the report as one line per group plus a totals line.
func (r *SpecReport) String() string {
	var b []byte
	for i := range r.Groups {
		g := &r.Groups[i]
		mode := "speculative"
		if g.Conservative != "" {
			mode = "conservative (" + g.Conservative + ")"
		}
		b = fmt.Appendf(b, "%s: %s snap=%d roll=%d leap=%d replay=%d\n",
			g.Group, mode, g.Counters.Snapshots, g.Counters.Rollbacks,
			g.Counters.Leaps, g.Counters.Replayed)
	}
	t := r.Totals()
	b = fmt.Appendf(b, "total: snap=%d roll=%d leap=%d replay=%d wasted=%dns",
		t.Snapshots, t.Rollbacks, t.Leaps, t.Replayed, t.WastedNanos)
	return string(b)
}

// payRef locates one pending delivery's deep-copied pooled payload inside a
// groupSnap's payload buffer (enc=false: the payload was captured by
// reference — it is not pooled, and messages are immutable after send).
type payRef struct {
	off, n int32
	enc    bool
	owner  core.Component
}

// groupSnap holds one group's recycled snapshot buffers and implements the
// SpecControl Snapshot/Restore closures. Everything is captured in memory by
// reference or into reused flat buffers — no canonical sort, no container
// framing, no file I/O — because the snapshot restores only into the very
// scheduler and components it was taken from.
type groupSnap struct {
	sched  *sim.Scheduler
	comps  []core.Stateful            // group members, registration order
	owners map[core.Sink]core.Component // pool owner per delivery sink

	mark  sim.Mark
	state snap.Encoder // concatenated per-component state
	offs  []int        // offs[i] = end of component i's bytes in state
	evs   []sim.PendingEvent
	prefs []payRef // parallel to evs
	pays  snap.Encoder
	work  []sim.PendingEvent // restore-side scratch
}

// snapshot captures the group at its committed horizon. An error (a closure
// event in the queue, a payload with no codec, a pooled delivery whose sink
// has no known owner) demotes the group to conservative execution — the
// fabric treats it as "cannot speculate", never as a failed run.
func (gs *groupSnap) snapshot() error {
	gs.state.Reset()
	gs.offs = gs.offs[:0]
	for _, c := range gs.comps {
		if err := c.SnapshotState(&gs.state); err != nil {
			return fmt.Errorf("component %s: %w", c.Name(), err)
		}
		gs.offs = append(gs.offs, gs.state.Len())
	}
	evs, err := gs.sched.ExportPendingInto(gs.evs)
	gs.evs = evs
	if err != nil {
		return err
	}
	gs.pays.Reset()
	gs.prefs = gs.prefs[:0]
	for i := range gs.evs {
		e := &gs.evs[i]
		var ref payRef
		if e.Kind == sim.PendingDelivery {
			if _, pooled := e.Payload.(core.Releaser); pooled {
				// The live payload returns to its pool if this snapshot is
				// ever restored (the rollback sweep releases the queue), so
				// the snapshot needs its own copy, re-mintable from the
				// owning component's pool.
				var owner core.Component
				if core.SinkComparable(e.Sink) {
					owner = gs.owners[e.Sink]
				}
				if owner == nil {
					return fmt.Errorf("%w: pooled delivery at %v with unowned sink %T",
						core.ErrUnknownSink, e.At, e.Sink)
				}
				off := gs.pays.Len()
				if err := core.EncodePayload(&gs.pays, e.Payload); err != nil {
					return err
				}
				ref = payRef{off: int32(off), n: int32(gs.pays.Len() - off), enc: true, owner: owner}
			}
		}
		gs.prefs = append(gs.prefs, ref)
	}
	gs.mark = gs.sched.CaptureMark()
	return nil
}

// restore rebuilds exactly the captured state. The fabric has already
// discarded the speculative queue (DiscardPending), so the scheduler is
// empty; records re-enter with their original sequence numbers, which is
// what makes re-execution from the restore point bit-identical.
func (gs *groupSnap) restore() error {
	gs.sched.RestoreMark(gs.mark)
	start := 0
	for i, c := range gs.comps {
		dec := snap.NewDecoder(gs.state.Bytes()[start:gs.offs[i]])
		if err := c.RestoreState(dec); err != nil {
			return fmt.Errorf("component %s: %w", c.Name(), err)
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("component %s: %w", c.Name(), err)
		}
		start = gs.offs[i]
	}
	gs.work = gs.work[:0]
	for i := range gs.evs {
		e := gs.evs[i]
		if ref := gs.prefs[i]; ref.enc {
			dec := snap.NewDecoder(gs.pays.Bytes()[ref.off : ref.off+ref.n])
			p, err := core.DecodePayload(dec, ref.owner)
			if err != nil {
				return err
			}
			e.Payload = p
		}
		gs.work = append(gs.work, e)
	}
	return gs.sched.RestorePending(gs.work)
}

// specOwners maps every delivery sink the wiring can target to the
// component whose frame pool re-mints pooled payloads for it — the in-memory
// analogue of the checkpoint sink table, keyed by live sink instead of by
// serialized name.
func (pl *ExecutionPlan) specOwners() map[core.Sink]core.Component {
	s := pl.s
	owners := make(map[core.Sink]core.Component)
	add := func(sk core.Sink, owner core.Component) {
		if sk == nil || !core.SinkComparable(sk) {
			return
		}
		if _, seen := owners[sk]; !seen {
			owners[sk] = owner
		}
	}
	for _, c := range s.comps {
		if st, ok := c.(core.Stateful); ok {
			st.WalkSinks(func(_ string, sk core.Sink) { add(sk, c) })
		}
	}
	for _, c := range s.conns {
		add(c.a.Sink, c.a.Comp)
		add(c.b.Sink, c.b.Comp)
	}
	for _, t := range s.trunks {
		for _, p := range t.pairs {
			add(p.SinkA, t.compA)
			add(p.SinkB, t.compB)
		}
	}
	return owners
}

// specReason decides build-time eligibility for group gi: "" when every
// member can snapshot, otherwise the reason the group must stay
// conservative. Runtime conditions (closure events posted by the profiler,
// payloads without codecs) are left to the fabric's demotion path.
func (pl *ExecutionPlan) specReason(gi int) string {
	if len(pl.s.auxs) > 0 {
		// Aux state (workload engines, reservoirs) is simulation-global and
		// mutated from component event handlers; it cannot roll back with a
		// single group, so no group may speculate past state it touches.
		return "aux state " + pl.s.auxs[0].name + " attached"
	}
	for _, ci := range pl.groupComps[gi] {
		if _, ok := pl.s.comps[ci].(core.Stateful); !ok {
			return "component " + pl.Comps[ci].Name + " is not checkpointable"
		}
	}
	return ""
}

// RunOptimistic executes the plan optimistically with the host defaults.
func (pl *ExecutionPlan) RunOptimistic(end sim.Time) (*SpecReport, error) {
	return pl.RunOptimisticOpts(end, DefaultOptimisticOptions())
}

// RunOptimisticOpts executes the plan under explicit optimistic options:
// the execute() body plus the speculation install step between wiring and
// launch. Groups that cannot speculate run the same loop conservatively
// (with GVT leaping) and are reported with their reason — a plan with no
// eligible group still runs, it just never speculates.
func (pl *ExecutionPlan) RunOptimisticOpts(end sim.Time, opts OptimisticOptions) (*SpecReport, error) {
	if err := pl.checkNoRemotes(); err != nil {
		return nil, err
	}
	s := pl.s
	g := &link.Group{}
	scheds := make([]*sim.Scheduler, pl.NumGroups())
	runners := make([]*link.Runner, pl.NumGroups())
	for gi, name := range pl.GroupNames {
		scheds[gi] = sim.NewScheduler(int32(1000 + gi))
		runners[gi] = link.NewRunner(name, scheds[gi])
		runners[gi].SetBatchWindows(opts.Parallel.BatchWindows)
		g.Add(runners[gi])
	}
	pl.wire(scheds, runners)
	for gi, members := range pl.groupComps {
		for _, ci := range members {
			c := s.comps[ci]
			runners[gi].AddComponent(c, s.srcOf[c])
		}
	}

	owners := pl.specOwners()
	for gi := range runners {
		ctl := &link.SpecControl{MaxWindows: opts.MaxWindows}
		if reason := pl.specReason(gi); reason != "" {
			ctl.Reason = reason
		} else if opts.MaxWindows > 0 {
			gs := &groupSnap{sched: scheds[gi], owners: owners}
			for _, ci := range pl.groupComps[gi] {
				gs.comps = append(gs.comps, s.comps[ci].(core.Stateful))
			}
			ctl.Snapshot = gs.snapshot
			ctl.Restore = gs.restore
		}
		runners[gi].SetSpec(ctl)
	}
	// Replay pool owners per cross-group endpoint sub-channel: a logged
	// pooled payload re-mints from the receiving side's component pool.
	for _, c := range s.conns {
		if c.epA != nil {
			c.epA.SetSpecOwner(0, c.a.Comp)
			c.epB.SetSpecOwner(0, c.b.Comp)
		}
	}
	for _, t := range s.trunks {
		if t.epA != nil {
			for i := range t.pairs {
				t.epA.SetSpecOwner(uint16(i), t.compA)
				t.epB.SetSpecOwner(uint16(i), t.compB)
			}
		}
	}
	link.NewSpecDomain(runners)

	s.Group = g
	if s.PreRun != nil {
		s.PreRun(g)
	}
	pinned := 0
	if opts.Parallel.Pin {
		pinned = len(runners)
		if opts.Parallel.MaxPinned > 0 && pinned > opts.Parallel.MaxPinned {
			pinned = opts.Parallel.MaxPinned
		}
	}
	runErr := g.RunPinned(end, pinned)
	for _, sc := range scheds {
		sc.DiscardPending(core.ReleaseMessage)
	}

	rep := &SpecReport{Groups: make([]GroupSpec, len(runners))}
	for gi, r := range runners {
		counters, reason, _ := r.SpecStats()
		rep.Groups[gi] = GroupSpec{Group: pl.GroupNames[gi], Conservative: reason, Counters: counters}
	}
	return rep, runErr
}

// RunOptimistic executes the simulation optimistically under the given
// placement — the speculative analog of RunParallel. Bit-identical to
// RunSequential for every placement and every speculation depth.
func (s *Simulation) RunOptimistic(end sim.Time, p decomp.Placement) (*SpecReport, error) {
	pl, err := s.Plan(p)
	if err != nil {
		return nil, err
	}
	return pl.RunOptimistic(end)
}
