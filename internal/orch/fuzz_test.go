package orch_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/orch"
	"repro/internal/sim"
)

// chatter is a component with arbitrarily many ports; it emits a message on
// every port at a component-specific period and logs every delivery. The
// reaction to a delivery (forwarding to a random-ish port) makes message
// orders observable, so any nondeterminism in the runtime shows up as a
// trace difference.
type chatter struct {
	name   string
	env    core.Env
	ports  []core.Port
	period sim.Time
	rng    *sim.Rand
	trace  []string // per-component: appended only from its own scheduler
	seq    int
}

func (c *chatter) Name() string        { return c.name }
func (c *chatter) Attach(env core.Env) { c.env = env }
func (c *chatter) Start(end sim.Time) {
	var tick func()
	tick = func() {
		for i, p := range c.ports {
			c.seq++
			p.Send(chatMsg{from: c.name, port: i, seq: c.seq})
		}
		c.env.After(c.period, tick)
	}
	c.env.After(c.period/2, tick)
}

func (c *chatter) sink(port int) core.Sink {
	return core.SinkFunc(func(at sim.Time, m core.Message) {
		msg := m.(chatMsg)
		c.trace = append(c.trace,
			fmt.Sprintf("%s<-%s.%d#%d@%v", c.name, msg.from, msg.port, msg.seq, at))
		// Occasionally forward, creating cross-channel causality.
		if c.rng.Float64() < 0.3 && len(c.ports) > 0 {
			c.seq++
			c.ports[c.rng.Intn(len(c.ports))].Send(chatMsg{from: c.name, port: -1, seq: c.seq})
		}
	})
}

type chatMsg struct {
	from string
	port int
	seq  int
}

func (chatMsg) Size() int { return 32 }

// buildRandom creates a random connected component graph.
func buildRandom(seed uint64, nComps int) (*orch.Simulation, []*chatter) {
	rng := sim.NewRand(seed)
	s := orch.New()
	comps := make([]*chatter, nComps)
	for i := range comps {
		comps[i] = &chatter{
			name:   fmt.Sprintf("c%d", i),
			period: sim.Time(50+rng.Intn(100)) * sim.Microsecond,
			rng:    sim.NewRand(seed ^ uint64(i)*0x9e37),
		}
		s.Add(comps[i])
	}
	connect := func(a, b int) {
		ca, cb := comps[a], comps[b]
		pa, pb := len(ca.ports), len(cb.ports)
		ca.ports = append(ca.ports, nil)
		cb.ports = append(cb.ports, nil)
		lat := sim.Time(1+rng.Intn(20)) * sim.Microsecond
		s.Connect(fmt.Sprintf("ch%d-%d", a, b), lat, 0,
			orch.Side{Comp: ca, Bind: func(p core.Port) { ca.ports[pa] = p }, Sink: ca.sink(pa)},
			orch.Side{Comp: cb, Bind: func(p core.Port) { cb.ports[pb] = p }, Sink: cb.sink(pb)})
	}
	// Spanning tree for connectivity plus random extra edges.
	for i := 1; i < nComps; i++ {
		connect(rng.Intn(i), i)
	}
	for k := 0; k < nComps/2; k++ {
		a, b := rng.Intn(nComps), rng.Intn(nComps)
		if a != b {
			connect(a, b)
		}
	}
	return s, comps
}

// TestRandomGraphDeterminism is the runtime's load-bearing property under
// fuzzing: for random component graphs, coupled execution equals
// sequential execution exactly, and both are stable across repetitions.
func TestRandomGraphDeterminism(t *testing.T) {
	const end = 3 * sim.Millisecond
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			nComps := 2 + int(seed)%6

			s1, comps1 := buildRandom(seed, nComps)
			s1.RunSequential(end)

			s2, comps2 := buildRandom(seed, nComps)
			if err := s2.RunCoupled(end); err != nil {
				t.Fatal(err)
			}

			total := 0
			for i := range comps1 {
				total += len(comps1[i].trace)
				if !equalSlices(comps1[i].trace, comps2[i].trace) {
					t.Fatalf("component %s trace diverged between modes", comps1[i].name)
				}
			}
			if total == 0 {
				t.Fatal("empty traces")
			}

			// Stability across repetitions of coupled mode.
			s3, comps3 := buildRandom(seed, nComps)
			if err := s3.RunCoupled(end); err != nil {
				t.Fatal(err)
			}
			for i := range comps2 {
				if !equalSlices(comps2[i].trace, comps3[i].trace) {
					t.Fatalf("component %s diverged across coupled runs", comps2[i].name)
				}
			}
		})
	}
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
