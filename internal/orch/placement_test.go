package orch_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/orch"
	"repro/internal/sim"
)

// buildTrunked creates a chain of chatter components where consecutive
// pairs are connected by a trunk carrying several logical links, so placed
// runs exercise both trunk wirings (direct ports intra-group, multiplexed
// channel cross-group).
func buildTrunked(seed uint64, nComps int) (*orch.Simulation, []*chatter) {
	rng := sim.NewRand(seed)
	s := orch.New()
	comps := make([]*chatter, nComps)
	for i := range comps {
		comps[i] = &chatter{
			name:   fmt.Sprintf("t%d", i),
			period: sim.Time(60+rng.Intn(80)) * sim.Microsecond,
			rng:    sim.NewRand(seed ^ uint64(i)*0x5bd1),
		}
		s.Add(comps[i])
	}
	for i := 1; i < nComps; i++ {
		ca, cb := comps[i-1], comps[i]
		nPairs := 2 + rng.Intn(2)
		pairs := make([]orch.TrunkPair, nPairs)
		for j := 0; j < nPairs; j++ {
			pa, pb := len(ca.ports), len(cb.ports)
			ca.ports = append(ca.ports, nil)
			cb.ports = append(cb.ports, nil)
			pairs[j] = orch.TrunkPair{
				BindA: func(p core.Port) { ca.ports[pa] = p },
				SinkA: ca.sink(pa),
				BindB: func(p core.Port) { cb.ports[pb] = p },
				SinkB: cb.sink(pb),
			}
		}
		lat := sim.Time(2+rng.Intn(10)) * sim.Microsecond
		s.ConnectTrunk(fmt.Sprintf("trunk%d", i), lat, 0, ca, cb, pairs)
	}
	return s, comps
}

type buildFn func(seed uint64, nComps int) (*orch.Simulation, []*chatter)

// runPlaced builds a fresh simulation, runs it under p (or sequentially
// when p is nil), and returns per-component traces plus the total number of
// scheduler events processed.
func runPlaced(t *testing.T, build buildFn, seed uint64, nComps int, end sim.Time, p *decomp.Placement) ([][]string, uint64) {
	t.Helper()
	s, comps := build(seed, nComps)
	var events uint64
	if p == nil {
		sched := s.RunSequential(end)
		events = sched.Processed()
	} else {
		if err := s.RunPlaced(end, *p); err != nil {
			t.Fatalf("RunPlaced(%v): %v", p.Groups, err)
		}
		for _, r := range s.Group.Runners {
			events += r.Scheduler().Processed()
		}
	}
	traces := make([][]string, len(comps))
	for i, c := range comps {
		traces[i] = c.trace
	}
	return traces, events
}

// TestPlacementDeterminism is the tentpole's acceptance property: for a
// fixed configuration and seed, RunCoupled under ANY placement — per
// component, fully co-located, or random co-locations in between — is
// bit-identical to RunSequential, including the number of scheduler events
// processed.
func TestPlacementDeterminism(t *testing.T) {
	const end = 3 * sim.Millisecond
	builders := []struct {
		name  string
		build buildFn
	}{
		{"direct", buildRandom},
		{"trunked", buildTrunked},
	}
	for _, bld := range builders {
		for seed := uint64(1); seed <= 4; seed++ {
			bld, seed := bld, seed
			t.Run(fmt.Sprintf("%s/seed%d", bld.name, seed), func(t *testing.T) {
				nComps := 3 + int(seed)%5
				refTraces, refEvents := runPlaced(t, bld.build, seed, nComps, end, nil)
				if refEvents == 0 {
					t.Fatal("sequential run processed no events")
				}

				placements := []decomp.Placement{
					decomp.PerComponent(nComps),
					decomp.SingleGroup(nComps),
				}
				prng := sim.NewRand(seed * 7919)
				for k := 0; k < 4; k++ {
					g := 1 + prng.Intn(nComps)
					groups := make([]int, nComps)
					for i := range groups {
						groups[i] = prng.Intn(g)
					}
					placements = append(placements,
						decomp.Placement{Name: fmt.Sprintf("rand%d", k), Groups: groups})
				}

				for _, p := range placements {
					p := p
					traces, events := runPlaced(t, bld.build, seed, nComps, end, &p)
					if events != refEvents {
						t.Errorf("placement %s %v: %d events, sequential %d",
							p.Name, p.Groups, events, refEvents)
					}
					for i := range traces {
						if !equalSlices(traces[i], refTraces[i]) {
							t.Fatalf("placement %s %v: component %d trace diverged from sequential",
								p.Name, p.Groups, i)
						}
					}
				}
			})
		}
	}
}

// TestAutoPlacementMatchesSequential closes the feedback loop end to end: a
// profiler-recommended placement, derived from a sequential run's model
// graph, replays bit-identically.
func TestAutoPlacementMatchesSequential(t *testing.T) {
	const end = 3 * sim.Millisecond
	const seed, nComps = 3, 6

	s, comps := buildRandom(seed, nComps)
	s.RunSequential(end)
	mc, ml := s.ModelGraph(end)
	auto := decomp.AutoPlace(mc, ml, decomp.DefaultParams(end), decomp.RecommendOptions{})

	refTraces := make([][]string, len(comps))
	for i, c := range comps {
		refTraces[i] = c.trace
	}

	traces, _ := runPlaced(t, buildRandom, seed, nComps, end, &auto)
	for i := range traces {
		if !equalSlices(traces[i], refTraces[i]) {
			t.Fatalf("auto placement %v: component %d diverged", auto.Groups, i)
		}
	}
}

// TestModelGraphAfterCoupled pins the satellite fix: a coupled run must
// yield the same per-link message counts as a sequential run, not silent
// zeros from nil sequential ports.
func TestModelGraphAfterCoupled(t *testing.T) {
	const end = 2 * sim.Millisecond
	for _, bld := range []struct {
		name  string
		build buildFn
	}{
		{"direct", buildRandom},
		{"trunked", buildTrunked},
	} {
		bld := bld
		t.Run(bld.name, func(t *testing.T) {
			s1, _ := bld.build(5, 4)
			s1.RunSequential(end)
			_, seqLinks := s1.ModelGraph(end)

			s2, _ := bld.build(5, 4)
			if err := s2.RunCoupled(end); err != nil {
				t.Fatal(err)
			}
			_, cplLinks := s2.ModelGraph(end)

			if len(seqLinks) != len(cplLinks) {
				t.Fatalf("link count %d vs %d", len(seqLinks), len(cplLinks))
			}
			var total uint64
			for i := range seqLinks {
				if cplLinks[i].Msgs != seqLinks[i].Msgs {
					t.Errorf("link %d: coupled %d msgs, sequential %d",
						i, cplLinks[i].Msgs, seqLinks[i].Msgs)
				}
				total += cplLinks[i].Msgs
			}
			if total == 0 {
				t.Fatal("coupled ModelGraph reported zero messages on every link")
			}
		})
	}
}

// TestPlanDescribes checks the inspectable plan surface: channel
// classification follows the placement, and rendering mentions the groups.
func TestPlanDescribes(t *testing.T) {
	s, _ := buildRandom(2, 4)

	if _, err := s.Plan(decomp.Placement{Name: "short", Groups: []int{0}}); err == nil {
		t.Fatal("undersized placement not rejected")
	}

	pl, err := s.Plan(decomp.Placement{Name: "half", Groups: []int{0, 0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", pl.NumGroups())
	}
	for _, ch := range pl.Channels {
		wantIntra := ch.GroupA == ch.GroupB
		if ch.Intra != wantIntra {
			t.Errorf("channel %s: Intra=%v with groups %d-%d", ch.Name, ch.Intra, ch.GroupA, ch.GroupB)
		}
	}
	out := pl.String()
	for _, want := range []string{"plan \"half\"", "4 components", "2 groups", "channel", "runner"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}

	seq, err := s.Plan(decomp.SingleGroup(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range seq.Channels {
		if !ch.Intra {
			t.Errorf("single-group plan has coupled channel %s", ch.Name)
		}
	}
}
