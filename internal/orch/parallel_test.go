package orch_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/decomp"
	"repro/internal/orch"
	"repro/internal/sim"
)

// runParallelTrial builds a fresh simulation and runs it with the
// multi-core executor under p, returning per-component traces and the total
// scheduler events processed.
func runParallelTrial(t *testing.T, build buildFn, seed uint64, nComps int, end sim.Time, p decomp.Placement) ([][]string, uint64) {
	t.Helper()
	s, comps := build(seed, nComps)
	if err := s.RunParallel(end, p); err != nil {
		t.Fatalf("RunParallel(%v): %v", p.Groups, err)
	}
	var events uint64
	for _, r := range s.Group.Runners {
		events += r.Scheduler().Processed()
	}
	traces := make([][]string, len(comps))
	for i, c := range comps {
		traces[i] = c.trace
	}
	return traces, events
}

// gomaxprocsSweep is the satellite's required sweep: the executor must be
// bit-identical to sequential whether it gets one core, a few, or the whole
// machine. Duplicates (NumCPU may be 1, 2, or 4) are dropped.
func gomaxprocsSweep() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range []int{1, 2, 4, runtime.NumCPU()} {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// TestParallelDigestMatchesSequential is the tentpole's acceptance
// property: RunParallel — thread pinning, batched horizon windows,
// spin-then-park blocking and all — produces bit-identical per-component
// traces and scheduler event counts to RunSequential, for random
// placements, at every GOMAXPROCS level. Sync pacing and thread placement
// must never schedule or reorder a simulation event.
func TestParallelDigestMatchesSequential(t *testing.T) {
	const end = 2 * sim.Millisecond
	builders := []struct {
		name  string
		build buildFn
	}{
		{"direct", buildRandom},
		{"trunked", buildTrunked},
	}
	for _, procs := range gomaxprocsSweep() {
		procs := procs
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, bld := range builders {
				for seed := uint64(1); seed <= 2; seed++ {
					nComps := 4 + int(seed)
					refTraces, refEvents := runPlaced(t, bld.build, seed, nComps, end, nil)
					if refEvents == 0 {
						t.Fatal("sequential run processed no events")
					}

					placements := []decomp.Placement{
						decomp.PerComponent(nComps),
						decomp.SingleGroup(nComps),
					}
					prng := sim.NewRand(seed * 104729)
					for k := 0; k < 2; k++ {
						groups := make([]int, nComps)
						for i := range groups {
							groups[i] = prng.Intn(1 + prng.Intn(nComps))
						}
						placements = append(placements,
							decomp.Placement{Name: fmt.Sprintf("rand%d", k), Groups: groups})
					}

					for _, p := range placements {
						traces, events := runParallelTrial(t, bld.build, seed, nComps, end, p)
						if events != refEvents {
							t.Errorf("%s/seed%d %s: %d events, sequential %d",
								bld.name, seed, p.Name, events, refEvents)
						}
						for i := range traces {
							if !equalSlices(traces[i], refTraces[i]) {
								t.Fatalf("%s/seed%d %s: trace of comp %d diverged from sequential",
									bld.name, seed, p.Name, i)
							}
						}
					}
				}
			}
		})
	}
}

// TestParallelFramesDrained runs the pooled-frame packet path under the
// multi-core executor: every frame borrowed from the pool must be returned
// once the run (including the post-run in-flight sweep) completes, and the
// delivered packet count must match the sequential run.
func TestParallelFramesDrained(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))

	ref, _, refH2 := twoNets()
	ref.RunSequential(2 * sim.Millisecond)
	if refH2.RxPackets == 0 {
		t.Fatal("sequential reference delivered no packets")
	}

	s, h1, h2 := twoNets()
	if err := s.RunParallel(2*sim.Millisecond, decomp.PerComponent(2)); err != nil {
		t.Fatal(err)
	}
	if h2.RxPackets != refH2.RxPackets {
		t.Fatalf("parallel delivered %d packets, sequential %d", h2.RxPackets, refH2.RxPackets)
	}
	if h1.TxPackets != h2.RxPackets {
		t.Fatalf("tx %d != rx %d", h1.TxPackets, h2.RxPackets)
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d pooled frames leaked after parallel run", live)
	}
}

// TestDefaultParallelOptions pins the host-derived executor defaults: never
// pin on a single core (an OS thread per group buys nothing and costs
// context switches), pin up to GOMAXPROCS otherwise, and always batch
// windows (fewer fabric messages for identical results).
func TestDefaultParallelOptions(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	runtime.GOMAXPROCS(1)
	opts := orch.DefaultParallelOptions()
	if opts.Pin {
		t.Error("GOMAXPROCS=1: Pin should be off")
	}
	if !opts.BatchWindows {
		t.Error("BatchWindows should default on")
	}

	runtime.GOMAXPROCS(4)
	opts = orch.DefaultParallelOptions()
	if !opts.Pin || opts.MaxPinned != 4 {
		t.Errorf("GOMAXPROCS=4: got Pin=%v MaxPinned=%d, want pinning capped at 4",
			opts.Pin, opts.MaxPinned)
	}
	if !opts.BatchWindows {
		t.Error("BatchWindows should default on")
	}
}

// TestHostModelParams checks the placement recommender's host tuning: the
// core budget tracks GOMAXPROCS and the sync price comes from a real
// measurement on this machine's fabric.
func TestHostModelParams(t *testing.T) {
	p := orch.HostModelParams(sim.Millisecond)
	if want := runtime.GOMAXPROCS(0); p.Cores != want {
		t.Errorf("Cores = %d, want GOMAXPROCS %d", p.Cores, want)
	}
	if p.SyncCostNs <= 0 {
		t.Error("SyncCostNs should be measured > 0")
	}
	if p.Duration != sim.Millisecond {
		t.Errorf("Duration = %v", p.Duration)
	}
}
