package orch_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/profiler"
	"repro/internal/proto"
	"repro/internal/sim"
)

// twoNets builds two single-switch networks joined by a boundary channel,
// with a periodic sender on one side and a sink on the other.
func twoNets() (*orch.Simulation, *netsim.Host, *netsim.Host) {
	n1 := netsim.New("net1", 1)
	n2 := netsim.New("net2", 1)
	sw1, sw2 := n1.AddSwitch("sw1"), n2.AddSwitch("sw2")
	h1 := n1.AddHost("h1", proto.HostIP(1))
	h2 := n2.AddHost("h2", proto.HostIP(2))
	n1.ConnectHostSwitch(h1, sw1, 10*sim.Gbps, 1*sim.Microsecond)
	n2.ConnectHostSwitch(h2, sw2, 10*sim.Gbps, 1*sim.Microsecond)
	x1 := n1.AddExternal(sw1, "x", 10*sim.Gbps, proto.HostIP(2))
	x2 := n2.AddExternal(sw2, "x", 10*sim.Gbps, proto.HostIP(1))
	x1.SetEncode(true)
	x2.SetEncode(true)
	n1.ComputeRoutes()
	n2.ComputeRoutes()

	s := orch.New()
	s.Add(n1)
	s.Add(n2)
	s.Connect("x", 1*sim.Microsecond, 0,
		orch.Side{Comp: n1, Bind: x1.Bind, Sink: x1},
		orch.Side{Comp: n2, Bind: x2.Bind, Sink: x2})

	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		var tick func()
		tick = func() {
			h.SendUDP(proto.HostIP(2), 1, 9, nil, 400)
			h.After(20*sim.Microsecond, tick)
		}
		tick()
	}))
	return s, h1, h2
}

func TestCrossNetworkSequential(t *testing.T) {
	s, h1, h2 := twoNets()
	s.RunSequential(2 * sim.Millisecond)
	if h2.RxPackets == 0 {
		t.Fatal("no packets crossed the boundary")
	}
	if h1.TxPackets != h2.RxPackets {
		t.Fatalf("tx %d != rx %d", h1.TxPackets, h2.RxPackets)
	}
}

func TestCoupledWithProfiler(t *testing.T) {
	s, _, h2 := twoNets()
	col := profiler.NewCollector()
	s.PreRun = func(g *link.Group) { col.Attach(g, 100*sim.Microsecond) }
	if err := s.RunCoupled(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h2.RxPackets == 0 {
		t.Fatal("no packets crossed the boundary")
	}
	samples := col.Samples()
	if len(samples) < 10 {
		t.Fatalf("collector gathered %d samples", len(samples))
	}
	a, err := profiler.Analyze(samples, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sims) != 2 {
		t.Fatalf("analysis covers %d sims, want 2", len(a.Sims))
	}
	if a.SimSpeed <= 0 {
		t.Fatalf("SimSpeed = %v", a.SimSpeed)
	}
	g := profiler.BuildWTPG(a)
	if len(g.Nodes) != 2 {
		t.Fatalf("WTPG nodes = %d", len(g.Nodes))
	}
}

func TestSeqMatchesCoupledAcrossBoundary(t *testing.T) {
	s1, h1a, h2a := twoNets()
	s1.RunSequential(2 * sim.Millisecond)
	s2, h1b, h2b := twoNets()
	if err := s2.RunCoupled(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h1a.TxPackets != h1b.TxPackets || h2a.RxPackets != h2b.RxPackets {
		t.Fatalf("modes diverged: seq tx/rx %d/%d, coupled %d/%d",
			h1a.TxPackets, h2a.RxPackets, h1b.TxPackets, h2b.RxPackets)
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	s := orch.New()
	n := netsim.New("n", 1)
	s.Add(n)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add should panic")
		}
	}()
	s.Add(n)
}

func TestConnectUnregisteredPanics(t *testing.T) {
	s := orch.New()
	n := netsim.New("n", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Connect with unregistered component should panic")
		}
	}()
	s.Connect("bad", sim.Microsecond, 0,
		orch.Side{Comp: n, Bind: func(core.Port) {}, Sink: nil},
		orch.Side{Comp: n, Bind: func(core.Port) {}, Sink: nil})
}

func TestNumComponents(t *testing.T) {
	s := orch.New()
	s.Add(netsim.New("a", 1))
	s.Add(netsim.New("b", 1))
	if s.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d", s.NumComponents())
	}
}
