package orch_test

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/netsim"
	"repro/internal/orch"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/snap"
)

// specChatter is the checkpointable analogue of chatter: same traffic shape
// (periodic sends on every port, probabilistic forwarding on delivery) but
// built on named events instead of closure timers, with every piece of
// mutable state — including the delivery trace, folded to an FNV-1a digest —
// serialized through core.Stateful. That makes it snapshot/rollback-able, so
// the optimistic executor can actually speculate over it, and a rollback
// that failed to restore anything (the PRNG, the sequence counter, the
// digest itself) shows up as a digest mismatch against sequential.
type specChatter struct {
	name   string
	env    core.Env
	ports  []core.Port
	period sim.Time
	rng    *sim.Rand
	tickH  int32

	hash uint64 // FNV-1a over delivery records
	n    uint64 // deliveries recorded
	seq  uint64 // messages sent
}

func newSpecChatter(name string, period sim.Time, seed uint64) *specChatter {
	return &specChatter{name: name, period: period, rng: sim.NewRand(seed), hash: 14695981039346656037}
}

func (c *specChatter) Name() string { return c.name }

func (c *specChatter) Attach(env core.Env) {
	c.env = env
	c.tickH = env.RegisterNamed("spec/"+c.name+"/tick", c.tick)
}

func (c *specChatter) Start(end sim.Time) {
	c.env.PostNamed(c.env.Now()+c.period/2, c.tickH, sim.NamedArgs{})
}

func (c *specChatter) tick(sim.NamedArgs) {
	for i, p := range c.ports {
		c.seq++
		p.Send(chatMsg{from: c.name, port: i, seq: int(c.seq)})
	}
	c.env.PostNamed(c.env.Now()+c.period, c.tickH, sim.NamedArgs{})
}

func (c *specChatter) record(s string) {
	for i := 0; i < len(s); i++ {
		c.hash ^= uint64(s[i])
		c.hash *= 1099511628211
	}
	c.n++
}

func (c *specChatter) sink(port int) core.Sink {
	return core.SinkFunc(func(at sim.Time, m core.Message) {
		msg := m.(chatMsg)
		c.record(fmt.Sprintf("%s<-%s.%d#%d@%v", c.name, msg.from, msg.port, msg.seq, at))
		if c.rng.Float64() < 0.3 && len(c.ports) > 0 {
			c.seq++
			c.ports[c.rng.Intn(len(c.ports))].Send(chatMsg{from: c.name, port: -1, seq: int(c.seq)})
		}
	})
}

func (c *specChatter) SnapshotState(e *snap.Encoder) error {
	e.U64(c.hash)
	e.U64(c.n)
	e.U64(c.seq)
	e.U64(c.rng.State())
	return nil
}

func (c *specChatter) RestoreState(d *snap.Decoder) error {
	c.hash = d.U64()
	c.n = d.U64()
	c.seq = d.U64()
	c.rng.SetState(d.U64())
	return d.Err()
}

func (c *specChatter) WalkSinks(func(string, core.Sink)) {}
func (c *specChatter) StartRestored(sim.Time)           {}

// buildSpecRandom mirrors buildRandom with specChatter components.
func buildSpecRandom(seed uint64, nComps int) (*orch.Simulation, []*specChatter) {
	rng := sim.NewRand(seed)
	s := orch.New()
	comps := make([]*specChatter, nComps)
	for i := range comps {
		comps[i] = newSpecChatter(fmt.Sprintf("s%d", i),
			sim.Time(50+rng.Intn(100))*sim.Microsecond, seed^uint64(i)*0x9e37)
		s.Add(comps[i])
	}
	connect := func(a, b int) {
		ca, cb := comps[a], comps[b]
		pa, pb := len(ca.ports), len(cb.ports)
		ca.ports = append(ca.ports, nil)
		cb.ports = append(cb.ports, nil)
		lat := sim.Time(1+rng.Intn(20)) * sim.Microsecond
		s.Connect(fmt.Sprintf("ch%d-%d", a, b), lat, 0,
			orch.Side{Comp: ca, Bind: func(p core.Port) { ca.ports[pa] = p }, Sink: ca.sink(pa)},
			orch.Side{Comp: cb, Bind: func(p core.Port) { cb.ports[pb] = p }, Sink: cb.sink(pb)})
	}
	for i := 1; i < nComps; i++ {
		connect(rng.Intn(i), i)
	}
	for k := 0; k < nComps/2; k++ {
		a, b := rng.Intn(nComps), rng.Intn(nComps)
		if a != b {
			connect(a, b)
		}
	}
	return s, comps
}

// buildSpecTrunked mirrors buildTrunked with specChatter components.
func buildSpecTrunked(seed uint64, nComps int) (*orch.Simulation, []*specChatter) {
	rng := sim.NewRand(seed)
	s := orch.New()
	comps := make([]*specChatter, nComps)
	for i := range comps {
		comps[i] = newSpecChatter(fmt.Sprintf("st%d", i),
			sim.Time(60+rng.Intn(80))*sim.Microsecond, seed^uint64(i)*0x5bd1)
		s.Add(comps[i])
	}
	for i := 1; i < nComps; i++ {
		ca, cb := comps[i-1], comps[i]
		nPairs := 2 + rng.Intn(2)
		pairs := make([]orch.TrunkPair, nPairs)
		for j := 0; j < nPairs; j++ {
			pa, pb := len(ca.ports), len(cb.ports)
			ca.ports = append(ca.ports, nil)
			cb.ports = append(cb.ports, nil)
			pairs[j] = orch.TrunkPair{
				BindA: func(p core.Port) { ca.ports[pa] = p },
				SinkA: ca.sink(pa),
				BindB: func(p core.Port) { cb.ports[pb] = p },
				SinkB: cb.sink(pb),
			}
		}
		lat := sim.Time(2+rng.Intn(10)) * sim.Microsecond
		s.ConnectTrunk(fmt.Sprintf("trunk%d", i), lat, 0, ca, cb, pairs)
	}
	return s, comps
}

type specBuildFn func(seed uint64, nComps int) (*orch.Simulation, []*specChatter)

// specDigest folds every component's trace digest and count into one pair.
func specDigest(comps []*specChatter) (uint64, uint64) {
	h, n := uint64(14695981039346656037), uint64(0)
	for _, c := range comps {
		for _, v := range []uint64{c.hash, c.n, c.seq} {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xff
				h *= 1099511628211
			}
		}
		n += c.n
	}
	return h, n
}

// runSpecSeq runs the build sequentially and returns digest, deliveries,
// and events processed.
func runSpecSeq(build specBuildFn, seed uint64, nComps int, end sim.Time) (uint64, uint64, uint64) {
	s, comps := build(seed, nComps)
	sched := s.RunSequential(end)
	h, n := specDigest(comps)
	return h, n, sched.Processed()
}

// runSpecOpt runs the build optimistically under p with the given options.
func runSpecOpt(t *testing.T, build specBuildFn, seed uint64, nComps int, end sim.Time,
	p decomp.Placement, opts orch.OptimisticOptions) (uint64, uint64, uint64, *orch.SpecReport) {
	t.Helper()
	s, comps := build(seed, nComps)
	pl, err := s.Plan(p)
	if err != nil {
		t.Fatalf("Plan(%v): %v", p.Groups, err)
	}
	rep, err := pl.RunOptimisticOpts(end, opts)
	if err != nil {
		t.Fatalf("RunOptimistic(%v): %v", p.Groups, err)
	}
	var events uint64
	for _, r := range s.Group.Runners {
		events += r.Scheduler().Processed()
	}
	h, n := specDigest(comps)
	return h, n, events, rep
}

// randPlacements is the placement set every optimistic property sweeps:
// fully split, fully co-located, and two random placements derived from the
// seed.
func randPlacements(seed uint64, nComps int) []decomp.Placement {
	ps := []decomp.Placement{
		decomp.PerComponent(nComps),
		decomp.SingleGroup(nComps),
	}
	prng := sim.NewRand(seed * 104729)
	for k := 0; k < 2; k++ {
		groups := make([]int, nComps)
		for i := range groups {
			groups[i] = prng.Intn(1 + prng.Intn(nComps))
		}
		ps = append(ps, decomp.Placement{Name: fmt.Sprintf("rand%d", k), Groups: groups})
	}
	return ps
}

// TestOptimisticDigestMatchesSequential is the tentpole's acceptance
// property: speculation, rollback, input-log replay, and GVT leaping must
// never schedule or reorder a simulation event. Optimistic runs produce
// bit-identical per-component digests and total event counts to
// RunSequential — for random placements, direct and trunked graphs, several
// speculation depths, at every GOMAXPROCS level.
func TestOptimisticDigestMatchesSequential(t *testing.T) {
	const end = 2 * sim.Millisecond
	builders := []struct {
		name  string
		build specBuildFn
	}{
		{"direct", buildSpecRandom},
		{"trunked", buildSpecTrunked},
	}
	for _, procs := range gomaxprocsSweep() {
		procs := procs
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, bld := range builders {
				for seed := uint64(1); seed <= 2; seed++ {
					nComps := 4 + int(seed)
					refH, refN, refEvents := runSpecSeq(bld.build, seed, nComps, end)
					if refN == 0 {
						t.Fatal("sequential run recorded no deliveries")
					}
					for _, p := range randPlacements(seed, nComps) {
						for _, k := range []int{8, 2} {
							opts := orch.DefaultOptimisticOptions()
							opts.MaxWindows = k
							h, n, events, _ := runSpecOpt(t, bld.build, seed, nComps, end, p, opts)
							if h != refH || n != refN {
								t.Fatalf("%s/seed%d %s K=%d: digest %#x/%d != sequential %#x/%d",
									bld.name, seed, p.Name, k, h, n, refH, refN)
							}
							if events != refEvents {
								t.Fatalf("%s/seed%d %s K=%d: %d events, sequential %d",
									bld.name, seed, p.Name, k, events, refEvents)
							}
						}
					}
				}
			}
		})
	}
}

// TestOptimisticSpeculates pins down that the machinery actually engages on
// an eligible graph: snapshots are taken, and across a spread of seeds and
// placements at a deep speculation ceiling, at least one straggler rollback
// (with replayed deliveries) occurs. The digest property above would pass
// vacuously if speculation never ran; this test closes that hole.
func TestOptimisticSpeculates(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))
	const end = 2 * sim.Millisecond
	opts := orch.DefaultOptimisticOptions()
	opts.MaxWindows = 32

	var total orch.SpecReport
	var snaps, rolls uint64
	for seed := uint64(1); seed <= 4; seed++ {
		nComps := 4 + int(seed)
		refH, _, _ := runSpecSeq(buildSpecRandom, seed, nComps, end)
		for _, p := range randPlacements(seed, nComps) {
			h, _, _, rep := runSpecOpt(t, buildSpecRandom, seed, nComps, end, p, opts)
			if h != refH {
				t.Fatalf("seed%d %s: digest diverged under deep speculation", seed, p.Name)
			}
			for _, g := range rep.Groups {
				if g.Conservative != "" && len(p.Groups) > 1 {
					t.Fatalf("seed%d %s: eligible group %s ran conservative: %s",
						seed, p.Name, g.Group, g.Conservative)
				}
			}
			tt := rep.Totals()
			snaps += tt.Snapshots
			rolls += tt.Rollbacks
			total.Groups = append(total.Groups, rep.Groups...)
		}
	}
	if snaps == 0 {
		t.Error("no snapshots taken across any seed/placement: speculation never armed")
	}
	if rolls == 0 {
		t.Error("no rollbacks across any seed/placement: straggler path never exercised")
	}
}

// TestOptimisticNonStatefulConservative: a graph of closure-timer chatter
// components (not core.Stateful) must run — bit-identically — with every
// group demoted to conservative execution under a typed reason, never fail.
func TestOptimisticNonStatefulConservative(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))
	const (
		seed   = uint64(3)
		nComps = 6
		end    = 2 * sim.Millisecond
	)
	refTraces, refEvents := runPlaced(t, buildRandom, seed, nComps, end, nil)

	s, comps := buildRandom(seed, nComps)
	pl, err := s.Plan(decomp.PerComponent(nComps))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pl.RunOptimisticOpts(end, orch.DefaultOptimisticOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Groups {
		if !strings.Contains(g.Conservative, "not checkpointable") {
			t.Errorf("group %s: reason %q, want a not-checkpointable demotion", g.Group, g.Conservative)
		}
		if g.Counters.Snapshots != 0 || g.Counters.Rollbacks != 0 {
			t.Errorf("group %s: conservative group took snapshots/rollbacks: %+v", g.Group, g.Counters)
		}
	}
	var events uint64
	for _, r := range s.Group.Runners {
		events += r.Scheduler().Processed()
	}
	if events != refEvents {
		t.Fatalf("%d events, sequential %d", events, refEvents)
	}
	for i, c := range comps {
		if !equalSlices(c.trace, refTraces[i]) {
			t.Fatalf("component %s trace diverged", c.name)
		}
	}
}

// auxProbe is a minimal aux-state holder for the eligibility test.
type auxProbe struct{}

func (auxProbe) SnapshotState(*snap.Encoder) error { return nil }
func (auxProbe) RestoreState(*snap.Decoder) error  { return nil }

// TestOptimisticAuxStateConservative: attached aux state is mutated from
// component handlers and cannot roll back with any single group, so its
// presence forces every group conservative.
func TestOptimisticAuxStateConservative(t *testing.T) {
	const (
		seed   = uint64(2)
		nComps = 4
		end    = sim.Millisecond
	)
	refH, refN, _ := runSpecSeq(buildSpecRandom, seed, nComps, end)

	s, comps := buildSpecRandom(seed, nComps)
	s.AddAuxState("probe", auxProbe{})
	pl, err := s.Plan(decomp.PerComponent(nComps))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pl.RunOptimisticOpts(end, orch.DefaultOptimisticOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Groups {
		if !strings.Contains(g.Conservative, "aux state") {
			t.Errorf("group %s: reason %q, want an aux-state demotion", g.Group, g.Conservative)
		}
	}
	if h, n := specDigest(comps); h != refH || n != refN {
		t.Fatalf("digest %#x/%d != sequential %#x/%d", h, n, refH, refN)
	}
}

// twoNetsNamed is twoNets with the sender application rebuilt on named
// events, so the packet graph is fully checkpointable and the optimistic
// executor genuinely speculates over pooled frames — exercising the
// deep-copy input log and snapshot payload re-minting.
func twoNetsNamed() (*orch.Simulation, *netsim.Host, *netsim.Host) {
	n1 := netsim.New("net1", 1)
	n2 := netsim.New("net2", 1)
	sw1, sw2 := n1.AddSwitch("sw1"), n2.AddSwitch("sw2")
	h1 := n1.AddHost("h1", proto.HostIP(1))
	h2 := n2.AddHost("h2", proto.HostIP(2))
	n1.ConnectHostSwitch(h1, sw1, 10*sim.Gbps, 1*sim.Microsecond)
	n2.ConnectHostSwitch(h2, sw2, 10*sim.Gbps, 1*sim.Microsecond)
	x1 := n1.AddExternal(sw1, "x", 10*sim.Gbps, proto.HostIP(2))
	x2 := n2.AddExternal(sw2, "x", 10*sim.Gbps, proto.HostIP(1))
	x1.SetEncode(true)
	x2.SetEncode(true)
	n1.ComputeRoutes()
	n2.ComputeRoutes()

	var tickIdx int
	tickIdx = h1.RegisterNamed("app", func(sim.NamedArgs) {
		h1.SendUDP(proto.HostIP(2), 1, 9, nil, 400)
		h1.PostNamed(20*sim.Microsecond, tickIdx, sim.NamedArgs{})
	})

	s := orch.New()
	s.Add(n1)
	s.Add(n2)
	s.Connect("x", 1*sim.Microsecond, 0,
		orch.Side{Comp: n1, Bind: x1.Bind, Sink: x1},
		orch.Side{Comp: n2, Bind: x2.Bind, Sink: x2})

	h2.BindUDP(9, func(proto.IP, uint16, []byte, int) {})
	h1.SetApp(netsim.AppFunc(func(h *netsim.Host) {
		h.PostNamed(0, tickIdx, sim.NamedArgs{})
	}))
	return s, h1, h2
}

// TestOptimisticFramesDrained runs the pooled-frame packet path under the
// optimistic executor: delivered counts match sequential, no frame leaks
// after the run — including frames that were logged, rolled back, and
// replayed — and the netsim groups actually speculate.
func TestOptimisticFramesDrained(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(runtime.NumCPU()))
	const end = 2 * sim.Millisecond

	ref, _, refH2 := twoNetsNamed()
	ref.RunSequential(end)
	if refH2.RxPackets == 0 {
		t.Fatal("sequential reference delivered no packets")
	}
	if live := ref.LiveFrames(); live != 0 {
		t.Fatalf("%d pooled frames leaked after sequential run", live)
	}

	s, h1, h2 := twoNetsNamed()
	pl, err := s.Plan(decomp.PerComponent(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pl.RunOptimisticOpts(end, orch.DefaultOptimisticOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h2.RxPackets != refH2.RxPackets {
		t.Fatalf("optimistic delivered %d packets, sequential %d", h2.RxPackets, refH2.RxPackets)
	}
	if h1.TxPackets != h2.RxPackets {
		t.Fatalf("tx %d != rx %d", h1.TxPackets, h2.RxPackets)
	}
	if live := s.LiveFrames(); live != 0 {
		t.Fatalf("%d pooled frames leaked after optimistic run", live)
	}
	for _, g := range rep.Groups {
		if g.Conservative != "" {
			t.Errorf("group %s demoted: %s", g.Group, g.Conservative)
		}
	}
	if rep.Totals().Snapshots == 0 {
		t.Error("netsim groups never snapshotted: speculation did not engage")
	}
}

// remoteSim builds a minimal simulation holding one remote connection.
func remoteSim() *orch.Simulation {
	s := orch.New()
	c := newSpecChatter("local", 50*sim.Microsecond, 1)
	c.ports = append(c.ports, nil)
	s.Add(c)
	s.Reserve(1)
	s.ConnectRemote("x", 5*sim.Microsecond, 0,
		orch.Side{Comp: c, Bind: func(p core.Port) { c.ports[0] = p }, Sink: c.sink(0)}, true)
	return s
}

// TestParallelRemoteRejected / TestOptimisticRemoteRejected: the
// single-process executors reject plans with remote channels via the typed
// error instead of deadlocking against a peer that will never answer.
func TestParallelRemoteRejected(t *testing.T) {
	s := remoteSim()
	err := s.RunParallel(sim.Millisecond, decomp.SingleGroup(1))
	if !errors.Is(err, orch.ErrRemoteUnsupported) {
		t.Fatalf("RunParallel with remotes: err = %v, want ErrRemoteUnsupported", err)
	}
}

func TestOptimisticRemoteRejected(t *testing.T) {
	s := remoteSim()
	_, err := s.RunOptimistic(sim.Millisecond, decomp.SingleGroup(1))
	if !errors.Is(err, orch.ErrRemoteUnsupported) {
		t.Fatalf("RunOptimistic with remotes: err = %v, want ErrRemoteUnsupported", err)
	}
}

// FuzzOptimisticRollback drives random graphs through random placements and
// speculation depths — stragglers land at arbitrary speculative depths —
// and checks the full bit-identity contract against sequential execution
// plus frame-pool hygiene (specChatter graphs hold no pooled frames, so
// LiveFrames must be 0 throughout).
func FuzzOptimisticRollback(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(5), uint64(7))
	f.Add(uint64(2), uint8(2), uint8(4), uint64(11))
	f.Add(uint64(3), uint8(32), uint8(6), uint64(13))
	f.Add(uint64(9), uint8(1), uint8(3), uint64(17))
	f.Add(uint64(14), uint8(16), uint8(7), uint64(23))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, nRaw uint8, placeSeed uint64) {
		const end = sim.Millisecond
		nComps := 3 + int(nRaw%5)
		k := int(kRaw % 33)

		refH, refN, refEvents := runSpecSeq(buildSpecRandom, seed, nComps, end)

		prng := sim.NewRand(placeSeed | 1)
		groups := make([]int, nComps)
		for i := range groups {
			groups[i] = prng.Intn(1 + prng.Intn(nComps))
		}
		p := decomp.Placement{Name: "fuzz", Groups: groups}

		opts := orch.DefaultOptimisticOptions()
		opts.MaxWindows = k
		s, comps := buildSpecRandom(seed, nComps)
		pl, err := s.Plan(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.RunOptimisticOpts(end, opts); err != nil {
			t.Fatal(err)
		}
		var events uint64
		for _, r := range s.Group.Runners {
			events += r.Scheduler().Processed()
		}
		if h, n := specDigest(comps); h != refH || n != refN {
			t.Fatalf("digest %#x/%d != sequential %#x/%d (K=%d, groups=%v)",
				h, n, refH, refN, k, groups)
		}
		if events != refEvents {
			t.Fatalf("%d events, sequential %d (K=%d, groups=%v)", events, refEvents, k, groups)
		}
		if live := s.LiveFrames(); live != 0 {
			t.Fatalf("%d pooled frames leaked", live)
		}
	})
}
