// Package orch is the SplitSim orchestration runtime: it takes a set of
// component simulators and channel connections, assigns deterministic event
// ordering sources, wires ports to sinks, and executes the simulation —
// either sequentially on one scheduler (fast, for sweeps) or coupled with
// one goroutine per component synchronized through SplitSim channels (the
// paper's process-parallel architecture). Both modes produce identical
// simulation results; the coupled mode additionally produces per-adapter
// synchronization/communication counters for the profiler.
package orch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Side describes one end of a connection: the owning component (which
// determines the executing runner in coupled mode), how to hand the
// component its outgoing port, and the sink receiving incoming messages.
type Side struct {
	Comp core.Component
	Bind func(core.Port)
	Sink core.Sink
}

type connection struct {
	name    string
	latency sim.Time
	syncIv  sim.Time
	a, b    Side
	idA     int32 // ordering source for deliveries to a.Sink
	idB     int32 // ordering source for deliveries to b.Sink

	// Exactly one wiring is live after a run, and ExecutionPlan.wire clears
	// the other: direct ports when both ends share a runner group (sequential
	// mode, or co-located in a placed run), channel endpoints when the ends
	// are in different groups. Both carry the message counters ModelGraph
	// reads.
	portAB, portBA *link.DirectPort
	epA, epB       *link.Endpoint
}

// trunkConn is a multiplexed connection: several logical links between the
// same pair of components carried over one synchronized channel.
type trunkConn struct {
	name    string
	latency sim.Time
	syncIv  sim.Time
	compA   core.Component
	compB   core.Component
	pairs   []TrunkPair
	idsA    []int32
	idsB    []int32

	// Live wiring for accounting, mirroring connection: per-pair direct
	// ports intra-group, one trunked channel's endpoints cross-group.
	ports    []*link.DirectPort
	epA, epB *link.Endpoint
}

// TrunkPair is one logical link inside a trunk connection.
type TrunkPair struct {
	BindA func(core.Port)
	SinkA core.Sink
	BindB func(core.Port)
	SinkB core.Sink
}

// remoteConn is one side of a connection whose peer component lives in
// another OS process: the local endpoint is wired like any channel side,
// and the spliced link.Remote half is pumped by a proxy supervisor
// (package proxy) over the scale-out transport.
type remoteConn struct {
	name   string
	side   Side
	id     int32 // ordering source for deliveries to side.Sink
	ep     *link.Endpoint
	remote *link.Remote
}

// Simulation is a configured set of components and connections.
type Simulation struct {
	comps   []core.Component
	srcOf   map[core.Component]int32
	conns   []*connection
	trunks  []*trunkConn
	remotes []*remoteConn
	auxs    []auxEntry
	nextSrc int32

	// Group is populated by RunCoupled for profiler attachment.
	Group *link.Group

	// PreRun, when set, is invoked by RunCoupled after all runners and
	// channels are wired but before execution starts — the profiler's
	// attachment point.
	PreRun func(*link.Group)
}

// New creates an empty simulation.
func New() *Simulation {
	return &Simulation{srcOf: make(map[core.Component]int32), nextSrc: 1}
}

// Add registers a component. Registration order fixes its event-ordering
// source, so callers must add components in a deterministic order.
func (s *Simulation) Add(c core.Component) {
	if _, dup := s.srcOf[c]; dup {
		panic("orch: component " + c.Name() + " added twice")
	}
	s.srcOf[c] = s.nextSrc
	s.nextSrc++
	s.comps = append(s.comps, c)
}

// Components returns the registered components in order.
func (s *Simulation) Components() []core.Component { return s.comps }

// NumComponents returns the component count — the number of simulator
// processes, and hence cores, the configuration needs in the paper's
// accounting.
func (s *Simulation) NumComponents() int { return len(s.comps) }

// Connect wires a bidirectional channel with the given latency between two
// sides. syncInterval <= 0 defaults to the latency.
func (s *Simulation) Connect(name string, latency, syncInterval sim.Time, a, b Side) {
	s.mustHave(a.Comp, name)
	s.mustHave(b.Comp, name)
	c := &connection{name: name, latency: latency, syncIv: syncInterval, a: a, b: b,
		idA: s.nextSrc, idB: s.nextSrc + 1}
	s.nextSrc += 2
	s.conns = append(s.conns, c)
}

// ConnectTrunk wires several logical links between compA and compB over a
// single synchronized channel — the paper's trunk adapter. In sequential
// mode the multiplexing is immaterial and each pair becomes a direct link.
func (s *Simulation) ConnectTrunk(name string, latency, syncInterval sim.Time,
	compA, compB core.Component, pairs []TrunkPair) {
	s.mustHave(compA, name)
	s.mustHave(compB, name)
	t := &trunkConn{name: name, latency: latency, syncIv: syncInterval,
		compA: compA, compB: compB, pairs: pairs}
	for range pairs {
		t.idsA = append(t.idsA, s.nextSrc)
		t.idsB = append(t.idsB, s.nextSrc+1)
		s.nextSrc += 2
	}
	s.trunks = append(s.trunks, t)
}

// Reserve advances the event-ordering source counter by n without
// registering anything. Partitioned processes use it to stand in for
// components that live in the peer process, keeping source-id assignment
// — and therefore event ordering — aligned with the monolithic run: every
// process scripts the SAME component/connection sequence, registering its
// own pieces and reserving the peer's.
func (s *Simulation) Reserve(n int32) {
	if n < 0 {
		panic("orch: Reserve with negative count")
	}
	s.nextSrc += n
}

// ConnectRemote wires the local side of a channel whose peer component
// runs in another process — the distributed-run analog of Connect. The
// returned link.Remote is the transport-facing half; hand it to a
// proxy.Supervisor before running. sideA says whether this process holds
// side A of the mirrored connection: Connect assigns the first id to side
// A's sink and the second to side B's, and the two processes must make the
// same choice from opposite ends for a distributed run to be bit-identical
// to the monolithic one. Simulations with remote connections only execute
// coupled; RunSequential panics.
func (s *Simulation) ConnectRemote(name string, latency, syncInterval sim.Time, local Side, sideA bool) *link.Remote {
	s.mustHave(local.Comp, name)
	id := s.nextSrc
	if !sideA {
		id = s.nextSrc + 1
	}
	s.nextSrc += 2
	ep, remote := link.NewHalf(name, latency, syncInterval)
	rc := &remoteConn{name: name, side: local, id: id, ep: ep, remote: remote}
	s.remotes = append(s.remotes, rc)
	return remote
}

func (s *Simulation) mustHave(c core.Component, conn string) {
	if _, ok := s.srcOf[c]; !ok {
		panic(fmt.Sprintf("orch: connection %s references unregistered component", conn))
	}
}

// RunSequential executes the whole simulation on a single scheduler until
// end (events at exactly end do not run). It returns the scheduler for
// statistics. Wiring goes through the one-group execution plan, so it is
// the same code path every placement uses — with every channel degraded to
// direct ports.
func (s *Simulation) RunSequential(end sim.Time) *sim.Scheduler {
	if len(s.remotes) > 0 {
		panic("orch: RunSequential on a simulation with remote connections; distributed runs are coupled-only")
	}
	pl, err := s.Plan(decomp.SingleGroup(len(s.comps)))
	if err != nil {
		panic("orch: " + err.Error())
	}
	sched := sim.NewScheduler(0)
	pl.wire([]*sim.Scheduler{sched}, nil)
	for _, c := range s.comps {
		c.Attach(core.Env{Sched: sched, Src: s.srcOf[c]})
	}
	for _, c := range s.comps {
		c.Start(end)
	}
	for {
		at, ok := sched.PeekTime()
		if !ok || at >= end {
			break
		}
		sched.Step()
	}
	// Frames still in flight at end (queued, in a link, mid-DMA) go back to
	// their pools so the leak counters read zero after every run.
	sched.DiscardPending(core.ReleaseMessage)
	return sched
}

// LiveFrames sums the outstanding pooled frames across all components —
// zero after a clean run plus end-of-run sweep, so tests and harnesses can
// assert the packet path leaks nothing.
func (s *Simulation) LiveFrames() uint64 {
	var n uint64
	for _, c := range s.comps {
		if fp, ok := c.(core.FramePooler); ok {
			n += fp.FrameStats().Live
		}
	}
	return n
}

// FrameStatsTable renders per-component frame-pool health (allocations,
// reuses, still-live frames) for components that own a pool.
func (s *Simulation) FrameStatsTable() *stats.Table {
	t := stats.NewTable("component", "frame_allocs", "frame_reuses", "frames_live")
	for _, c := range s.comps {
		if fp, ok := c.(core.FramePooler); ok {
			st := fp.FrameStats()
			t.Row(c.Name(), st.Allocs, st.Reuses, st.Live)
		}
	}
	return t
}

// RunCoupled executes the simulation with one runner (goroutine +
// scheduler) per component, synchronized through SplitSim channels — the
// per-component placement. The run is bit-identical to RunSequential. The
// link.Group is stored on the Simulation for post-run inspection
// (profiling).
func (s *Simulation) RunCoupled(end sim.Time) error {
	return s.RunPlaced(end, decomp.PerComponent(len(s.comps)))
}

// ModelGraph converts a finished run into the decomposition performance
// model's inputs: one Comp per component (event costs plus fidelity time
// tax over duration) and one Link per synchronized channel with its
// observed data-message count. Trunked connections become a single link
// with the combined count — exactly the trunk adapter's saving. Message
// counts come from whichever wiring the last run used: direct ports for
// co-located channels (sequential mode included), channel endpoints for
// coupled ones.
func (s *Simulation) ModelGraph(duration sim.Time) ([]decomp.Comp, []decomp.Link) {
	idx := make(map[core.Component]int, len(s.comps))
	comps := make([]decomp.Comp, len(s.comps))
	for i, c := range s.comps {
		idx[c] = i
		comps[i] = decomp.Comp{Name: c.Name(), BusyNs: decomp.BusyOf(c, duration)}
	}
	var links []decomp.Link
	for _, c := range s.conns {
		var msgs uint64
		switch {
		case c.portAB != nil:
			msgs = c.portAB.Stats.TxData + c.portBA.Stats.TxData
		case c.epA != nil:
			msgs = c.epA.Stats.TxData + c.epB.Stats.TxData
		}
		q := c.syncIv
		if q <= 0 {
			q = c.latency
		}
		links = append(links, decomp.Link{A: idx[c.a.Comp], B: idx[c.b.Comp], Msgs: msgs, Quantum: q})
	}
	for _, t := range s.trunks {
		var msgs uint64
		for _, p := range t.ports {
			msgs += p.Stats.TxData
		}
		if t.epA != nil {
			msgs += t.epA.Stats.TxData + t.epB.Stats.TxData
		}
		q := t.syncIv
		if q <= 0 {
			q = t.latency
		}
		links = append(links, decomp.Link{A: idx[t.compA], B: idx[t.compB], Msgs: msgs, Quantum: q})
	}
	return comps, links
}
