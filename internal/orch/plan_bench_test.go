package orch_test

import (
	"testing"

	"repro/internal/decomp"
	"repro/internal/sim"
)

// The placement benchmarks measure ns per simulated event for the same
// 8-component graph under placements from fully co-located (1 group, every
// channel a zero-sync direct port) to fully decomposed (8 groups, every
// channel synchronized). Each benchmark loops whole runs until b.N events
// have been processed, so ns/op reads as ns/event and the co-location fast
// path is directly comparable across revisions (BENCH_placement.json).

const (
	benchSeed  = 11
	benchComps = 8
	benchEnd   = 2 * sim.Millisecond
)

func benchPlacement(b *testing.B, groups func() decomp.Placement) {
	b.ReportAllocs()
	var done uint64
	for done < uint64(b.N) {
		s, _ := buildRandom(benchSeed, benchComps)
		if groups == nil {
			sched := s.RunSequential(benchEnd)
			done += sched.Processed()
			continue
		}
		if err := s.RunPlaced(benchEnd, groups()); err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Group.Runners {
			done += r.Scheduler().Processed()
		}
	}
}

func BenchmarkPlacementSeq(b *testing.B) {
	benchPlacement(b, nil)
}

func BenchmarkPlacementColoc(b *testing.B) {
	benchPlacement(b, func() decomp.Placement { return decomp.SingleGroup(benchComps) })
}

func BenchmarkPlacementPairs(b *testing.B) {
	benchPlacement(b, func() decomp.Placement {
		groups := make([]int, benchComps)
		for i := range groups {
			groups[i] = i / 2
		}
		return decomp.Placement{Name: "pairs", Groups: groups}
	})
}

func BenchmarkPlacementPerComp(b *testing.B) {
	benchPlacement(b, func() decomp.Placement { return decomp.PerComponent(benchComps) })
}
