package orch

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/snap"
)

// Deterministic checkpoint/restore at sync horizons.
//
// A checkpoint is taken at a quiesced group-run boundary: every runner has
// reached virtual time T and joined, every channel pipe has been drained of
// its residual final-window messages (FIFO timestamps plus the horizon
// invariant guarantee those deliver at or after T), and all state is
// therefore owned by exactly one goroutine. The capture then serializes
//
//   - every component's explicit state (core.Stateful),
//   - every auxiliary state holder (core.AuxState, e.g. workload engines),
//   - per-connection data-message counters (so ModelGraph carries across),
//   - and the merged pending-event set of all schedulers, sorted into the
//     canonical placement-invariant (time, source) order with per-scheduler
//     sequence numbers dropped.
//
// Because event records carry sink names and named-handler names rather
// than pointers, the same checkpoint restores into ANY placement of an
// identically built simulation: the bytes are bit-identical no matter which
// placement produced them, and the restored run is bit-identical to the
// uninterrupted one.
//
// Not captured: remote (cross-process) connections, dynamically created TCP
// flows, and raw closure timers — each surfaces a typed error at capture.

// Checkpoint is a restorable snapshot of a simulation at time At.
type Checkpoint struct {
	// At is the virtual time the snapshot was taken at; the restored run
	// resumes here.
	At sim.Time
	// BaseEvents is the total number of scheduler events executed before At.
	// An uninterrupted run's event count equals BaseEvents plus the restored
	// run's count exactly.
	BaseEvents uint64
	// Data is the self-contained serialized snapshot (snap format). It can
	// be written to a file and reloaded with LoadCheckpoint.
	Data []byte
}

// auxEntry is one registered auxiliary state holder.
type auxEntry struct {
	name string
	aux  core.AuxState
}

// AddAuxState registers a non-component state holder (workload engine,
// measurement reservoir) to ride along in checkpoints under a unique name.
// Register in the same order on the capturing and restoring builds.
func (s *Simulation) AddAuxState(name string, a core.AuxState) {
	for _, e := range s.auxs {
		if e.name == name {
			panic("orch: aux state " + name + " registered twice")
		}
	}
	s.auxs = append(s.auxs, auxEntry{name: name, aux: a})
}

// LoadCheckpoint parses a serialized checkpoint (validating its framing and
// checksum) back into a Checkpoint.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	r, err := snap.Open(data)
	if err != nil {
		return nil, err
	}
	mb, err := r.Section("meta")
	if err != nil {
		return nil, err
	}
	d := snap.NewDecoder(mb)
	at := sim.Time(d.I64())
	base := d.U64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	return &Checkpoint{At: at, BaseEvents: base, Data: data}, nil
}

// sinkTarget resolves a serialized sink name back to a live sink and the
// component owning it (whose frame pool re-mints pooled payloads).
type sinkTarget struct {
	sink  core.Sink
	owner core.Component
}

// sinkTable maps between live sinks and their stable checkpoint names.
// Component-owned sinks are named "c/<comp>/<local>" via WalkSinks;
// connection sinks get "conn/<name>/a|b" and "trunk/<name>/<i>/a|b"
// fallbacks for sinks no component exports. Non-comparable (func-typed)
// sinks are skipped — they only fail a checkpoint if a pending delivery
// actually targets one.
type sinkTable struct {
	nameOf map[core.Sink]string
	byName map[string]sinkTarget
}

func (s *Simulation) sinkTable() (*sinkTable, error) {
	t := &sinkTable{
		nameOf: make(map[core.Sink]string),
		byName: make(map[string]sinkTarget),
	}
	var err error
	add := func(name string, sk core.Sink, owner core.Component) {
		if err != nil || sk == nil || !core.SinkComparable(sk) {
			return
		}
		if _, dup := t.byName[name]; dup {
			err = fmt.Errorf("orch: duplicate sink name %q", name)
			return
		}
		t.byName[name] = sinkTarget{sink: sk, owner: owner}
		if _, seen := t.nameOf[sk]; !seen {
			t.nameOf[sk] = name
		}
	}
	for _, c := range s.comps {
		st, ok := c.(core.Stateful)
		if !ok {
			return nil, fmt.Errorf("%w: component %q does not implement core.Stateful",
				core.ErrNotCheckpointable, c.Name())
		}
		name := c.Name()
		st.WalkSinks(func(n string, sk core.Sink) { add("c/"+name+"/"+n, sk, c) })
	}
	for _, c := range s.conns {
		add("conn/"+c.name+"/a", c.a.Sink, c.a.Comp)
		add("conn/"+c.name+"/b", c.b.Sink, c.b.Comp)
	}
	for _, tr := range s.trunks {
		for i, p := range tr.pairs {
			add(fmt.Sprintf("trunk/%s/%d/a", tr.name, i), p.SinkA, tr.compA)
			add(fmt.Sprintf("trunk/%s/%d/b", tr.name, i), p.SinkB, tr.compB)
		}
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// capture serializes the quiesced simulation at time at. scheds holds every
// scheduler of the finished run (one in sequential mode, one per group in
// placed modes).
func (s *Simulation) capture(scheds []*sim.Scheduler, at sim.Time) (*Checkpoint, error) {
	table, err := s.sinkTable()
	if err != nil {
		return nil, err
	}
	var events []sim.PendingEvent
	var base uint64
	for _, sc := range scheds {
		evs, err := sc.ExportPending()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrNotCheckpointable, err)
		}
		events = append(events, evs...)
		base += sc.Processed()
	}
	// Canonical order: (time, source) is placement-invariant; the
	// per-scheduler sequence breaks ties within one (time, source) pair —
	// such ties always come from the same scheduler, so the comparison is
	// well-defined — and is then dropped from the serialized form. Re-posting
	// in this order reassigns fresh sequences that preserve it.
	sort.Slice(events, func(i, j int) bool {
		a, b := &events[i], &events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})

	w := snap.NewWriter()
	var meta snap.Encoder
	meta.I64(int64(at))
	meta.U64(base)
	meta.U32(uint32(len(s.comps)))
	for _, c := range s.comps {
		meta.String(c.Name())
	}
	meta.U32(uint32(len(s.auxs)))
	for _, a := range s.auxs {
		meta.String(a.name)
	}
	if err := w.Section("meta", meta.Bytes()); err != nil {
		return nil, err
	}

	var ev snap.Encoder
	ev.U32(uint32(len(events)))
	for i := range events {
		e := &events[i]
		ev.I64(int64(e.At))
		ev.U32(uint32(e.Src))
		ev.U8(e.Kind)
		switch e.Kind {
		case sim.PendingNamed:
			ev.String(e.Handler)
			ev.U64(e.Args[0])
			ev.U64(e.Args[1])
			ev.U64(e.Args[2])
		case sim.PendingDelivery:
			name, ok := "", false
			if core.SinkComparable(e.Sink) {
				name, ok = table.nameOf[e.Sink]
			}
			if !ok {
				return nil, fmt.Errorf("%w: %T (delivery at %v)", core.ErrUnknownSink, e.Sink, e.At)
			}
			ev.String(name)
			if err := core.EncodePayload(&ev, e.Payload); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("orch: unknown pending event kind %d", e.Kind)
		}
	}
	if err := w.Section("events", ev.Bytes()); err != nil {
		return nil, err
	}

	var cn snap.Encoder
	cn.U32(uint32(len(s.conns)))
	for _, c := range s.conns {
		var ab, ba uint64
		switch {
		case c.portAB != nil:
			ab, ba = c.portAB.Stats.TxData, c.portBA.Stats.TxData
		case c.epA != nil:
			ab, ba = c.epA.Stats.TxData, c.epB.Stats.TxData
		}
		cn.U64(ab)
		cn.U64(ba)
	}
	cn.U32(uint32(len(s.trunks)))
	for _, t := range s.trunks {
		// Only per-direction totals serialize: trunk ports alternate
		// (A-side, B-side) per pair, and ModelGraph reads sums.
		var ta, tb uint64
		for i := 0; i+1 < len(t.ports); i += 2 {
			ta += t.ports[i].Stats.TxData
			tb += t.ports[i+1].Stats.TxData
		}
		if t.epA != nil {
			ta += t.epA.Stats.TxData
			tb += t.epB.Stats.TxData
		}
		cn.U64(ta)
		cn.U64(tb)
	}
	if err := w.Section("conns", cn.Bytes()); err != nil {
		return nil, err
	}

	for _, c := range s.comps {
		var enc snap.Encoder
		if err := c.(core.Stateful).SnapshotState(&enc); err != nil {
			return nil, err
		}
		if err := w.Section("comp/"+c.Name(), enc.Bytes()); err != nil {
			return nil, err
		}
	}
	for _, a := range s.auxs {
		var enc snap.Encoder
		if err := a.aux.SnapshotState(&enc); err != nil {
			return nil, err
		}
		if err := w.Section("aux/"+a.name, enc.Bytes()); err != nil {
			return nil, err
		}
	}
	return &Checkpoint{At: at, BaseEvents: base, Data: w.Finish()}, nil
}

// restoreInto loads ck into a freshly built, wired, attached simulation:
// component and aux state restore section by section, connection counters
// land on whichever wiring the plan produced, and the canonical event list
// re-posts — named events to the scheduler holding the handler, deliveries
// to the scheduler of the group owning the target sink.
func (s *Simulation) restoreInto(ck *Checkpoint, pl *ExecutionPlan, scheds []*sim.Scheduler) error {
	r, err := snap.Open(ck.Data)
	if err != nil {
		return err
	}
	mb, err := r.Section("meta")
	if err != nil {
		return err
	}
	md := snap.NewDecoder(mb)
	if at := sim.Time(md.I64()); md.Err() == nil && at != ck.At {
		return fmt.Errorf("orch: checkpoint time %v does not match metadata %v", ck.At, at)
	}
	md.U64() // BaseEvents, informational
	if got := int(md.U32()); md.Err() == nil && got != len(s.comps) {
		return fmt.Errorf("%w: snapshot has %d components, build has %d",
			core.ErrNotCheckpointable, got, len(s.comps))
	}
	for _, c := range s.comps {
		if n := md.String(); md.Err() == nil && n != c.Name() {
			return fmt.Errorf("%w: component order mismatch (%q vs %q)",
				core.ErrNotCheckpointable, n, c.Name())
		}
	}
	if got := int(md.U32()); md.Err() == nil && got != len(s.auxs) {
		return fmt.Errorf("%w: snapshot has %d aux entries, build has %d",
			core.ErrNotCheckpointable, got, len(s.auxs))
	}
	for _, a := range s.auxs {
		if n := md.String(); md.Err() == nil && n != a.name {
			return fmt.Errorf("%w: aux order mismatch (%q vs %q)",
				core.ErrNotCheckpointable, n, a.name)
		}
	}
	if md.Err() != nil {
		return md.Err()
	}

	for _, c := range s.comps {
		sec, err := r.Section("comp/" + c.Name())
		if err != nil {
			return err
		}
		if err := c.(core.Stateful).RestoreState(snap.NewDecoder(sec)); err != nil {
			return err
		}
	}
	for _, a := range s.auxs {
		sec, err := r.Section("aux/" + a.name)
		if err != nil {
			return err
		}
		if err := a.aux.RestoreState(snap.NewDecoder(sec)); err != nil {
			return err
		}
	}

	cb, err := r.Section("conns")
	if err != nil {
		return err
	}
	cd := snap.NewDecoder(cb)
	if got := int(cd.U32()); cd.Err() == nil && got != len(s.conns) {
		return fmt.Errorf("%w: snapshot has %d connections, build has %d",
			core.ErrNotCheckpointable, got, len(s.conns))
	}
	for _, c := range s.conns {
		ab, ba := cd.U64(), cd.U64()
		switch {
		case c.portAB != nil:
			c.portAB.Stats.TxData, c.portBA.Stats.TxData = ab, ba
		case c.epA != nil:
			c.epA.SetTxData(ab)
			c.epB.SetTxData(ba)
		}
	}
	if got := int(cd.U32()); cd.Err() == nil && got != len(s.trunks) {
		return fmt.Errorf("%w: snapshot has %d trunks, build has %d",
			core.ErrNotCheckpointable, got, len(s.trunks))
	}
	for _, t := range s.trunks {
		ta, tb := cd.U64(), cd.U64()
		switch {
		case len(t.ports) >= 2:
			t.ports[0].Stats.TxData, t.ports[1].Stats.TxData = ta, tb
		case t.epA != nil:
			t.epA.SetTxData(ta)
			t.epB.SetTxData(tb)
		}
	}
	if cd.Err() != nil {
		return cd.Err()
	}

	table, err := s.sinkTable()
	if err != nil {
		return err
	}
	eb, err := r.Section("events")
	if err != nil {
		return err
	}
	ed := snap.NewDecoder(eb)
	n := int(ed.U32())
	for i := 0; i < n; i++ {
		if ed.Err() != nil {
			return ed.Err()
		}
		at := sim.Time(ed.I64())
		src := int32(ed.U32())
		kind := ed.U8()
		switch kind {
		case sim.PendingNamed:
			name := ed.String()
			var args sim.NamedArgs
			args[0], args[1], args[2] = ed.U64(), ed.U64(), ed.U64()
			if ed.Err() != nil {
				return ed.Err()
			}
			posted := false
			for _, sc := range scheds {
				if h, ok := sc.LookupNamed(name); ok {
					sc.PostNamed(at, src, h, args)
					posted = true
					break
				}
			}
			if !posted {
				return fmt.Errorf("orch: checkpoint names unregistered handler %q", name)
			}
		case sim.PendingDelivery:
			name := ed.String()
			if ed.Err() != nil {
				return ed.Err()
			}
			tgt, ok := table.byName[name]
			if !ok {
				return fmt.Errorf("%w: %q", core.ErrUnknownSink, name)
			}
			payload, err := core.DecodePayload(ed, tgt.owner)
			if err != nil {
				return err
			}
			scheds[pl.grpOf[tgt.owner]].PostDelivery(at, src, tgt.sink, payload)
		default:
			return fmt.Errorf("orch: unknown pending event kind %d", kind)
		}
	}
	return ed.Err()
}

// CheckpointSequential runs the simulation sequentially from time zero to
// at and captures a checkpoint there. The simulation is swept afterwards
// (pending frames return to their pools); restore into a freshly built,
// identically configured Simulation.
func (s *Simulation) CheckpointSequential(at sim.Time) (*Checkpoint, error) {
	if len(s.remotes) > 0 {
		return nil, fmt.Errorf("%w: remote connections", core.ErrNotCheckpointable)
	}
	pl, err := s.Plan(decomp.SingleGroup(len(s.comps)))
	if err != nil {
		return nil, err
	}
	sched := sim.NewScheduler(0)
	pl.wire([]*sim.Scheduler{sched}, nil)
	for _, c := range s.comps {
		c.Attach(core.Env{Sched: sched, Src: s.srcOf[c]})
	}
	for _, c := range s.comps {
		c.Start(at)
	}
	for {
		t, ok := sched.PeekTime()
		if !ok || t >= at {
			break
		}
		sched.Step()
	}
	ck, err := s.capture([]*sim.Scheduler{sched}, at)
	sched.DiscardPending(core.ReleaseMessage)
	return ck, err
}

// CheckpointPlaced runs the simulation coupled under placement p from time
// zero to at, quiesces every channel at that sync horizon, and captures a
// checkpoint. The resulting bytes are bit-identical to what any other
// placement — including CheckpointSequential — produces for the same build.
func (s *Simulation) CheckpointPlaced(at sim.Time, p decomp.Placement, opts ParallelOptions) (*Checkpoint, error) {
	if len(s.remotes) > 0 {
		return nil, fmt.Errorf("%w: remote connections", core.ErrNotCheckpointable)
	}
	pl, err := s.Plan(p)
	if err != nil {
		return nil, err
	}
	g := &link.Group{}
	scheds := make([]*sim.Scheduler, pl.NumGroups())
	runners := make([]*link.Runner, pl.NumGroups())
	for gi, name := range pl.GroupNames {
		scheds[gi] = sim.NewScheduler(int32(1000 + gi))
		runners[gi] = link.NewRunner(name, scheds[gi])
		runners[gi].SetBatchWindows(opts.BatchWindows)
		g.Add(runners[gi])
	}
	pl.wire(scheds, runners)
	for gi, members := range pl.groupComps {
		for _, ci := range members {
			c := s.comps[ci]
			runners[gi].AddComponent(c, s.srcOf[c])
		}
	}
	s.Group = g
	if s.PreRun != nil {
		s.PreRun(g)
	}
	pinned := 0
	if opts.Pin {
		pinned = len(runners)
		if opts.MaxPinned > 0 && pinned > opts.MaxPinned {
			pinned = opts.MaxPinned
		}
	}
	if err := g.RunPinned(at, pinned); err != nil {
		return nil, err
	}
	// Quiesce: every runner has joined at the sync horizon, but each stopped
	// as soon as it reached `at` without consuming peers' final-window
	// messages. Drain those residuals through the normal handle path — FIFO
	// timestamps plus the horizon invariant put them all at or after `at`,
	// so nothing schedules into the past — then assert every pipe is empty
	// (the outgoing direction is the peer's incoming one, so this sweep
	// covers both directions of every channel).
	for _, r := range g.Runners {
		for _, e := range r.Endpoints() {
			e.DrainResidual()
		}
	}
	for _, r := range g.Runners {
		for _, e := range r.Endpoints() {
			if !e.Quiesced() {
				return nil, fmt.Errorf("orch: channel not quiesced at checkpoint horizon %v", at)
			}
		}
	}
	ck, err := s.capture(scheds, at)
	for _, sc := range scheds {
		sc.DiscardPending(core.ReleaseMessage)
	}
	return ck, err
}

// ResumeSequential restores ck into this freshly built simulation and runs
// it sequentially to end. Returns the scheduler for statistics, like
// RunSequential.
func (s *Simulation) ResumeSequential(ck *Checkpoint, end sim.Time) (*sim.Scheduler, error) {
	if len(s.remotes) > 0 {
		return nil, fmt.Errorf("%w: remote connections", core.ErrNotCheckpointable)
	}
	pl, err := s.Plan(decomp.SingleGroup(len(s.comps)))
	if err != nil {
		return nil, err
	}
	sched := sim.NewScheduler(0)
	sched.StartAt(ck.At)
	pl.wire([]*sim.Scheduler{sched}, nil)
	for _, c := range s.comps {
		c.Attach(core.Env{Sched: sched, Src: s.srcOf[c]})
	}
	if err := s.restoreInto(ck, pl, []*sim.Scheduler{sched}); err != nil {
		return nil, err
	}
	for _, c := range s.comps {
		c.(core.Stateful).StartRestored(end)
	}
	for {
		t, ok := sched.PeekTime()
		if !ok || t >= end {
			break
		}
		sched.Step()
	}
	sched.DiscardPending(core.ReleaseMessage)
	return sched, nil
}

// ResumePlaced restores ck into this freshly built simulation and runs it
// coupled under placement p to end. The run is bit-identical to resuming
// sequentially, which in turn is bit-identical to never checkpointing.
func (s *Simulation) ResumePlaced(ck *Checkpoint, end sim.Time, p decomp.Placement, opts ParallelOptions) error {
	if len(s.remotes) > 0 {
		return fmt.Errorf("%w: remote connections", core.ErrNotCheckpointable)
	}
	pl, err := s.Plan(p)
	if err != nil {
		return err
	}
	g := &link.Group{}
	scheds := make([]*sim.Scheduler, pl.NumGroups())
	runners := make([]*link.Runner, pl.NumGroups())
	for gi, name := range pl.GroupNames {
		scheds[gi] = sim.NewScheduler(int32(1000 + gi))
		scheds[gi].StartAt(ck.At)
		runners[gi] = link.NewRunner(name, scheds[gi])
		runners[gi].SetBatchWindows(opts.BatchWindows)
		runners[gi].SetRestored(true)
		g.Add(runners[gi])
	}
	pl.wire(scheds, runners)
	for gi, members := range pl.groupComps {
		for _, ci := range members {
			c := s.comps[ci]
			runners[gi].AddComponent(c, s.srcOf[c])
		}
	}
	if err := s.restoreInto(ck, pl, scheds); err != nil {
		return err
	}
	// Lift every endpoint's pre-first-message horizon floor to the resume
	// time: a fresh endpoint that has heard nothing would otherwise bound
	// its runner to latency-from-zero and deadlock the restored run.
	for _, r := range g.Runners {
		for _, e := range r.Endpoints() {
			e.SetStart(ck.At)
		}
	}
	s.Group = g
	if s.PreRun != nil {
		s.PreRun(g)
	}
	pinned := 0
	if opts.Pin {
		pinned = len(runners)
		if opts.MaxPinned > 0 && pinned > opts.MaxPinned {
			pinned = opts.MaxPinned
		}
	}
	runErr := g.RunPinned(end, pinned)
	for _, sc := range scheds {
		sc.DiscardPending(core.ReleaseMessage)
	}
	return runErr
}
