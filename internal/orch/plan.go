package orch

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/link"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ChannelKind classifies a planned channel.
type ChannelKind int

const (
	// KindDirect is a plain bidirectional connection.
	KindDirect ChannelKind = iota
	// KindTrunk multiplexes several logical links over one channel.
	KindTrunk
	// KindRemote is the local half of a cross-process connection.
	KindRemote
)

func (k ChannelKind) String() string {
	switch k {
	case KindDirect:
		return "direct"
	case KindTrunk:
		return "trunk"
	case KindRemote:
		return "remote"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PlanComponent is one component's row in an execution plan.
type PlanComponent struct {
	Name  string
	Src   int32 // event-ordering source
	Group int   // runner group
}

// PlanChannel is one channel's row in an execution plan. Intra reports
// whether both ends land in the same runner group, in which case the
// channel is wired as zero-synchronization direct ports — the co-location
// saving — instead of a synchronized coupled channel.
type PlanChannel struct {
	Name         string
	Kind         ChannelKind
	Latency      sim.Time
	SyncInterval sim.Time
	GroupA       int
	GroupB       int // -1 for the remote half of a cross-process channel
	Links        int // logical links carried (>1 only for trunks)
	Sources      []int32
	Intra        bool
}

// ExecutionPlan is the single wiring blueprint all execution modes consume:
// the component set with ordering sources, every channel with its
// synchronization parameters, and a normalized Placement mapping components
// to runner groups. RunSequential builds the one-group plan, RunCoupled the
// per-component plan, and RunPlaced any placement in between; the plan
// itself is inspectable (`splitsim plan <exp>`) before anything runs.
type ExecutionPlan struct {
	Placement  decomp.Placement
	Comps      []PlanComponent
	GroupNames []string
	Channels   []PlanChannel

	s          *Simulation
	groupComps [][]int // component indices per group, in registration order
	grpOf      map[core.Component]int
}

// Plan resolves a placement against the simulation: the placement is
// normalized (dense group ids by first appearance), every channel is
// classified intra- or cross-group, and runner groups receive their labels.
// Remote connections always synchronize — their peer lives in another
// process — so their group is recorded as -1 on the far side.
func (s *Simulation) Plan(p decomp.Placement) (*ExecutionPlan, error) {
	norm, err := p.Normalized(len(s.comps))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(s.comps))
	for i, c := range s.comps {
		names[i] = c.Name()
	}
	pl := &ExecutionPlan{
		Placement:  norm,
		GroupNames: norm.GroupLabels(names),
		s:          s,
		grpOf:      make(map[core.Component]int, len(s.comps)),
	}
	pl.groupComps = make([][]int, len(pl.GroupNames))
	for i, c := range s.comps {
		g := norm.Groups[i]
		pl.Comps = append(pl.Comps, PlanComponent{Name: names[i], Src: s.srcOf[c], Group: g})
		pl.grpOf[c] = g
		pl.groupComps[g] = append(pl.groupComps[g], i)
	}
	effSync := func(latency, syncIv sim.Time) sim.Time {
		if syncIv <= 0 {
			return latency
		}
		return syncIv
	}
	for _, c := range s.conns {
		ga, gb := pl.grpOf[c.a.Comp], pl.grpOf[c.b.Comp]
		pl.Channels = append(pl.Channels, PlanChannel{
			Name: c.name, Kind: KindDirect,
			Latency: c.latency, SyncInterval: effSync(c.latency, c.syncIv),
			GroupA: ga, GroupB: gb, Links: 1,
			Sources: []int32{c.idA, c.idB}, Intra: ga == gb,
		})
	}
	for _, t := range s.trunks {
		ga, gb := pl.grpOf[t.compA], pl.grpOf[t.compB]
		srcs := make([]int32, 0, 2*len(t.pairs))
		for i := range t.pairs {
			srcs = append(srcs, t.idsA[i], t.idsB[i])
		}
		pl.Channels = append(pl.Channels, PlanChannel{
			Name: t.name, Kind: KindTrunk,
			Latency: t.latency, SyncInterval: effSync(t.latency, t.syncIv),
			GroupA: ga, GroupB: gb, Links: len(t.pairs),
			Sources: srcs, Intra: ga == gb,
		})
	}
	for _, rc := range s.remotes {
		pl.Channels = append(pl.Channels, PlanChannel{
			Name: rc.name, Kind: KindRemote,
			Latency: rc.ep.Latency(), SyncInterval: rc.ep.Channel().SyncInterval,
			GroupA: pl.grpOf[rc.side.Comp], GroupB: -1, Links: 1,
			Sources: []int32{rc.id}, Intra: false,
		})
	}
	return pl, nil
}

// NumGroups returns the number of runner groups.
func (pl *ExecutionPlan) NumGroups() int { return len(pl.GroupNames) }

// wire connects every channel for execution. scheds holds one scheduler per
// group; runners, when non-nil, holds the matching coupled runners (nil for
// the sequential path, which is always one group with no remotes).
//
// An intra-group channel becomes direct ports on the group's scheduler —
// delivery time (send + latency) and ordering source are chosen exactly as
// the coupled path chooses them, so any placement is event-for-event
// identical to any other. A cross-group channel becomes a synchronized
// link.Channel between the two runners. Each wiring clears the other mode's
// port/endpoint references so post-run accounting (ModelGraph) reads
// whichever was live.
func (pl *ExecutionPlan) wire(scheds []*sim.Scheduler, runners []*link.Runner) {
	s := pl.s
	for _, c := range s.conns {
		ga, gb := pl.grpOf[c.a.Comp], pl.grpOf[c.b.Comp]
		if ga == gb {
			sched := scheds[ga]
			c.portAB = link.NewDirectPort(sched, c.latency, c.idB, c.b.Sink)
			c.portBA = link.NewDirectPort(sched, c.latency, c.idA, c.a.Sink)
			c.epA, c.epB = nil, nil
			c.a.Bind(c.portAB)
			c.b.Bind(c.portBA)
			continue
		}
		ch := link.NewChannel(c.name, c.latency, c.syncIv)
		runners[ga].Attach(ch.SideA())
		runners[gb].Attach(ch.SideB())
		ch.SideA().SetSink(0, c.idA, c.a.Sink)
		ch.SideB().SetSink(0, c.idB, c.b.Sink)
		c.portAB, c.portBA = nil, nil
		c.epA, c.epB = ch.SideA(), ch.SideB()
		c.a.Bind(ch.SideA())
		c.b.Bind(ch.SideB())
	}
	for _, t := range s.trunks {
		ga, gb := pl.grpOf[t.compA], pl.grpOf[t.compB]
		if ga == gb {
			sched := scheds[ga]
			t.ports = t.ports[:0]
			t.epA, t.epB = nil, nil
			for i, p := range t.pairs {
				pa := link.NewDirectPort(sched, t.latency, t.idsB[i], p.SinkB)
				pb := link.NewDirectPort(sched, t.latency, t.idsA[i], p.SinkA)
				t.ports = append(t.ports, pa, pb)
				p.BindA(pa)
				p.BindB(pb)
			}
			continue
		}
		ch := link.NewChannel(t.name, t.latency, t.syncIv)
		runners[ga].Attach(ch.SideA())
		runners[gb].Attach(ch.SideB())
		ta, tb := link.NewTrunk(ch.SideA()), link.NewTrunk(ch.SideB())
		t.ports = nil
		t.epA, t.epB = ch.SideA(), ch.SideB()
		for i, p := range t.pairs {
			ta.Bind(uint16(i), t.idsA[i], p.SinkA)
			tb.Bind(uint16(i), t.idsB[i], p.SinkB)
			p.BindA(ta.Port(uint16(i)))
			p.BindB(tb.Port(uint16(i)))
		}
	}
	for _, rc := range s.remotes {
		runners[pl.grpOf[rc.side.Comp]].Attach(rc.ep)
		rc.ep.SetSink(0, rc.id, rc.side.Sink)
		rc.side.Bind(rc.ep)
	}
}

// Run executes the plan coupled: one runner (goroutine + scheduler) per
// group, components attached in registration order with their sequential
// ordering sources. Runner i carries GroupNames[i] — experiments and the
// profiler key profiles by these labels. The run is bit-identical to
// RunSequential for every placement. RunParallel (parallel.go) executes the
// same plan with runner groups pinned to OS threads and horizon batching.
func (pl *ExecutionPlan) Run(end sim.Time) error {
	return pl.execute(end, ParallelOptions{})
}

// execute is the shared coupled/parallel executor body: build one runner
// per group, wire the channels, attach components, run the group under the
// given options, sweep in-flight frames.
func (pl *ExecutionPlan) execute(end sim.Time, opts ParallelOptions) error {
	s := pl.s
	g := &link.Group{}
	scheds := make([]*sim.Scheduler, pl.NumGroups())
	runners := make([]*link.Runner, pl.NumGroups())
	for gi, name := range pl.GroupNames {
		scheds[gi] = sim.NewScheduler(int32(1000 + gi))
		runners[gi] = link.NewRunner(name, scheds[gi])
		runners[gi].SetBatchWindows(opts.BatchWindows)
		g.Add(runners[gi])
	}
	pl.wire(scheds, runners)
	for gi, members := range pl.groupComps {
		for _, ci := range members {
			c := s.comps[ci]
			runners[gi].AddComponent(c, s.srcOf[c])
		}
	}
	s.Group = g
	if s.PreRun != nil {
		s.PreRun(g)
	}
	pinned := 0
	if opts.Pin {
		pinned = len(runners)
		if opts.MaxPinned > 0 && pinned > opts.MaxPinned {
			pinned = opts.MaxPinned
		}
	}
	err := g.RunPinned(end, pinned)
	// All runner goroutines have joined; sweep every scheduler so frames
	// still in flight at end return to their pools (leak counters read
	// zero after every run, any placement).
	for _, sc := range scheds {
		sc.DiscardPending(core.ReleaseMessage)
	}
	return err
}

// ModelGraph folds the simulation's per-component model graph to the
// plan's runner-group level: co-located components merge (their busy times
// add), intra-group channels vanish, cross-group channels keep their sync
// cost. Feed the result to decomp.Makespan for the placed prediction.
func (pl *ExecutionPlan) ModelGraph(duration sim.Time) ([]decomp.Comp, []decomp.Link, error) {
	comps, links := pl.s.ModelGraph(duration)
	return decomp.MergePlacement(comps, links, pl.Placement)
}

// String renders the plan for `splitsim plan`: a header line, the group
// table, and the channel table.
func (pl *ExecutionPlan) String() string {
	var b strings.Builder
	coupled, coloc := 0, 0
	for _, ch := range pl.Channels {
		if ch.Intra {
			coloc++
		} else {
			coupled++
		}
	}
	fmt.Fprintf(&b, "plan %q: %d components, %d groups, %d channels (%d coupled, %d co-located)\n",
		pl.Placement.Name, len(pl.Comps), pl.NumGroups(), len(pl.Channels), coupled, coloc)

	gt := stats.NewTable("group", "runner", "components")
	for gi, name := range pl.GroupNames {
		var members []string
		for _, ci := range pl.groupComps[gi] {
			members = append(members, pl.Comps[ci].Name)
		}
		gt.Row(gi, name, strings.Join(members, " "))
	}
	b.WriteString(gt.String())
	b.WriteByte('\n')

	ct := stats.NewTable("channel", "kind", "links", "latency", "sync", "groups", "mode")
	for _, ch := range pl.Channels {
		groups := fmt.Sprintf("%d-%d", ch.GroupA, ch.GroupB)
		mode := "coupled"
		if ch.Intra {
			mode = "direct"
		}
		if ch.Kind == KindRemote {
			groups = fmt.Sprintf("%d-remote", ch.GroupA)
		}
		ct.Row(ch.Name, ch.Kind, ch.Links, ch.Latency, ch.SyncInterval, groups, mode)
	}
	b.WriteString(ct.String())
	if cost := link.MeasuredSyncCost(); cost > 0 {
		fmt.Fprintf(&b, "measured sync cost on this host: %.0f ns/sync (%d coupled channels pay it per quantum)\n",
			cost, coupled)
	}
	return b.String()
}

// RunPlaced executes the simulation coupled under the given placement.
// Simulations with remote connections may use any placement; the remote
// channels stay synchronized regardless.
func (s *Simulation) RunPlaced(end sim.Time, p decomp.Placement) error {
	pl, err := s.Plan(p)
	if err != nil {
		return err
	}
	return pl.Run(end)
}
