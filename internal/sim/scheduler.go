package sim

import "fmt"

// Scheduler is a deterministic discrete-event scheduler. One Scheduler backs
// one simulator component (one "process" in SplitSim terms). In sequential
// mode many components share a Scheduler; in coupled mode each component
// Runner owns one and the link layer constrains how far it may advance.
type Scheduler struct {
	id   int32 // stable source id used for event-order tiebreaks
	now  Time
	q    eventQueue
	seq  uint64
	done uint64 // events executed

	// busy accumulates modeled host-CPU nanoseconds charged via Charge.
	busy uint64

	// maxExec is the timestamp of the latest event actually executed (-1
	// when none has). Now may run ahead of it — RunBefore/RunUntil advance
	// the clock to their limit even when the tail of the window held no
	// events — and that gap is exactly the speculation the optimistic
	// executor can retract without rollback: a message arriving at
	// t > maxExec but t < Now needs only Rewind, while t <= maxExec means
	// an already-executed event could have ordered after the newcomer and
	// state must be restored from a snapshot.
	maxExec Time

	// deliveries is the side table for typed delivery events: the queue
	// entry carries only a slot index (see eventEntry.del), the (sink,
	// payload) pair lives here and each slot is recycled through freeDel
	// when its event fires. Both slices grow to the peak number of pending
	// deliveries and are then allocation-free.
	deliveries []delivery
	freeDel    []int32

	// namedEvts is the analogous side table for named events (negative
	// eventEntry.del values); named/namedIdx hold the handler registry.
	// See state.go.
	namedEvts []namedEvent
	freeNamed []int32
	named     []namedHandler
	namedIdx  map[string]int32
}

type delivery struct {
	sink    Sink
	payload Payload
}

// NewScheduler returns a scheduler whose locally scheduled events use id as
// their ordering source.
func NewScheduler(id int32) *Scheduler {
	return &Scheduler{id: id, maxExec: -1}
}

// ID returns the scheduler's stable source id.
func (s *Scheduler) ID() int32 { return s.id }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events still queued (including lazily
// cancelled timers that have not yet surfaced).
func (s *Scheduler) Pending() int { return s.q.Len() }

// Processed returns how many events have been executed.
func (s *Scheduler) Processed() uint64 { return s.done }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering events
// would destroy determinism.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.atSrc(t, s.id, fn)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// AtSrc schedules fn at time t with an explicit ordering source. The link
// layer uses this to give messages arriving on different channels a stable
// order independent of goroutine interleaving.
func (s *Scheduler) AtSrc(t Time, src int32, fn func()) *Timer {
	return s.atSrc(t, src, fn)
}

func (s *Scheduler) atSrc(t Time, src int32, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	tm := &Timer{at: t}
	s.q.Push(eventEntry{at: t, src: src, seq: s.seq, fn: fn, timer: tm})
	return tm
}

// Post schedules fn at absolute time t like At, but returns no Timer: the
// event cannot be cancelled, and in exchange the kernel allocates nothing
// beyond the queue slot. Hot paths that never cancel (message delivery,
// periodic sampling) should prefer it.
func (s *Scheduler) Post(t Time, fn func()) { s.PostSrc(t, s.id, fn) }

// PostSrc is Post with an explicit ordering source. An event posted here
// orders identically to one scheduled with AtSrc at the same call position;
// the two differ only in the existence of a cancellation handle.
func (s *Scheduler) PostSrc(t Time, src int32, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	s.q.Push(eventEntry{at: t, src: src, seq: s.seq, fn: fn})
}

// PostDelivery schedules a typed delivery event: at time t the scheduler
// calls sink.Deliver(t, payload) directly from the queue slot. Like PostSrc
// it returns no Timer and orders identically to AtSrc at the same call
// position, but it additionally avoids the capturing closure a func() event
// would need — the channel fabric uses it for every data message, making
// steady-state message delivery allocation-free.
func (s *Scheduler) PostDelivery(t Time, src int32, sink Sink, payload Payload) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var i int32
	if n := len(s.freeDel); n > 0 {
		i = s.freeDel[n-1]
		s.freeDel = s.freeDel[:n-1]
		s.deliveries[i] = delivery{sink: sink, payload: payload}
	} else {
		s.deliveries = append(s.deliveries, delivery{sink: sink, payload: payload})
		i = int32(len(s.deliveries) - 1)
	}
	s.q.Push(eventEntry{at: t, src: src, del: i + 1, seq: s.seq})
}

// PeekTime returns the time of the earliest pending event. ok is false when
// the queue holds no runnable event.
func (s *Scheduler) PeekTime() (t Time, ok bool) {
	e := s.skipCanceled()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// skipCanceled discards lazily cancelled timers from the front of the queue
// and returns the first live entry (valid until the next queue mutation),
// or nil when the queue is empty.
func (s *Scheduler) skipCanceled() *eventEntry {
	for {
		e := s.q.top()
		if e == nil || e.timer == nil || !e.timer.canceled {
			return e
		}
		s.q.Pop()
	}
}

// Step executes the earliest pending event, advancing Now to its timestamp.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	if s.skipCanceled() == nil {
		return false
	}
	s.runHead()
	return true
}

// runHead pops and executes the queue head, which the caller has already
// verified (via skipCanceled) to be a live entry.
func (s *Scheduler) runHead() {
	e, _ := s.q.Pop()
	s.now = e.at
	s.maxExec = e.at
	if e.timer != nil {
		e.timer.fired = true
	}
	s.done++
	if e.del > 0 {
		i := e.del - 1
		d := s.deliveries[i]
		s.deliveries[i] = delivery{} // drop references before recycling
		s.freeDel = append(s.freeDel, i)
		d.sink.Deliver(e.at, d.payload)
		return
	}
	if e.del < 0 {
		i := -e.del - 1
		ne := s.namedEvts[i]
		s.namedEvts[i] = namedEvent{}
		s.freeNamed = append(s.freeNamed, i)
		s.named[ne.h].fn(ne.args)
		return
	}
	e.fn()
}

// RunUntil executes every event with timestamp <= limit and then advances
// Now to limit. It returns the number of events executed.
func (s *Scheduler) RunUntil(limit Time) uint64 {
	var n uint64
	for {
		e := s.skipCanceled()
		if e == nil || e.at > limit {
			break
		}
		s.runHead()
		n++
	}
	if s.now < limit {
		s.now = limit
	}
	return n
}

// RunBefore executes every event with timestamp strictly less than limit and
// then advances Now to limit. Conservative parallel synchronization uses the
// strict bound: an event at exactly the synchronization horizon may not run,
// because a peer's message could still be delivered at that same instant and
// deterministic ordering requires all events at a timestamp to be known
// before any of them executes.
func (s *Scheduler) RunBefore(limit Time) uint64 {
	var n uint64
	for {
		e := s.skipCanceled()
		if e == nil || e.at >= limit {
			break
		}
		s.runHead()
		n++
	}
	if s.now < limit {
		s.now = limit
	}
	return n
}

// Run executes events until the queue drains, returning the count executed.
func (s *Scheduler) Run() uint64 {
	var n uint64
	for s.Step() {
		n++
	}
	return n
}

// DiscardPending drains every still-queued event without executing it and
// returns how many were dropped. For typed delivery events the payload is
// handed to fn (nil to ignore) so pooled resources in flight when a run
// ends — frames queued past the end time, undelivered NIC batches — can be
// returned to their pools. Func events are dropped silently; Now does not
// advance. The delivery side table and its free list are reset.
func (s *Scheduler) DiscardPending(fn func(Payload)) int {
	n := 0
	for {
		e := s.q.top()
		if e == nil {
			break
		}
		if e.del > 0 && fn != nil {
			fn(s.deliveries[e.del-1].payload)
		}
		s.q.Pop()
		n++
	}
	s.deliveries = s.deliveries[:0]
	s.freeDel = s.freeDel[:0]
	s.namedEvts = s.namedEvts[:0]
	s.freeNamed = s.freeNamed[:0]
	return n
}

// Charge records ns nanoseconds of modeled host-CPU work attributed to this
// component. The decomposition layer's makespan model consumes these totals
// to predict parallel simulation time on a given core budget.
func (s *Scheduler) Charge(ns uint64) { s.busy += ns }

// BusyNanos returns the modeled host-CPU nanoseconds charged so far.
func (s *Scheduler) BusyNanos() uint64 { return s.busy }
