package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConstants(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond ||
		Microsecond != 1000*Nanosecond || Nanosecond != 1000*Picosecond {
		t.Fatal("time unit ladder broken")
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds() = %v, want 0.5", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5ms in ps", got)
	}
	if got := FromNanos(2.5); got != 2500*Picosecond {
		t.Errorf("FromNanos(2.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{250 * Picosecond, "250ps"},
		{3 * Nanosecond, "3.000ns"},
		{7 * Microsecond, "7.000us"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000s"},
		{-3 * Nanosecond, "-3.000ns"},
		{Infinity, "inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTransmitTime(t *testing.T) {
	// 1500 bytes at 10 Gbps = 1.2 us.
	if got := TransmitTime(1500, 10*Gbps); got != 1200*Nanosecond {
		t.Errorf("TransmitTime = %v, want 1.2us", got)
	}
	// 1 byte at 1 Gbps = 8 ns.
	if got := TransmitTime(1, 1*Gbps); got != 8*Nanosecond {
		t.Errorf("TransmitTime = %v, want 8ns", got)
	}
	if got := TransmitTime(1500, 0); got != 0 {
		t.Errorf("zero-rate link should transmit instantly in the model, got %v", got)
	}
}

func TestTransmitTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		sa, sb := int(a)%5000+1, int(b)%5000+1
		if sa > sb {
			sa, sb = sb, sa
		}
		return TransmitTime(sa, 10*Gbps) <= TransmitTime(sb, 10*Gbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmitTimePositive(t *testing.T) {
	f := func(size uint16, rate uint32) bool {
		s := int(size)%9000 + 1
		r := int64(rate)%int64(100*Gbps) + 1
		return TransmitTime(s, r) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
