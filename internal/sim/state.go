package sim

import (
	"errors"
	"fmt"
)

// This file is the kernel half of the explicit-state contract: pending
// events become exportable records, and components that used to capture
// mutable state in func() closures register named handlers instead, so a
// scheduler's queue (plus its clock and PRNG) can serialize and rebuild.
//
// A named event is the closure-free analogue of a typed delivery: the queue
// entry stores a negative index into a side table holding (handler id,
// packed args). Handlers are registered once per scheduler under a unique
// name; the name — not the func pointer — is what a checkpoint records, and
// a freshly built scheduler resolves it back to the re-registered handler.

// ErrClosureEvent reports a pending event that cannot be exported because
// it is a raw func() closure (At/After/Post) rather than a typed delivery
// or named event. Components holding such events are not checkpointable.
var ErrClosureEvent = errors.New("sim: pending closure event is not exportable")

// NamedArgs is the fixed argument record a named event carries. Three words
// cover every migrated call site (addresses, flow ids, counts); anything
// larger belongs in component state, not in the event.
type NamedArgs [3]uint64

type namedHandler struct {
	name string
	fn   func(NamedArgs)
}

type namedEvent struct {
	h    int32
	args NamedArgs
}

// RegisterNamed registers fn under name and returns the handle PostNamed
// takes. Names must be unique per scheduler; registering a duplicate
// panics, because two components silently sharing a handler name would
// corrupt restores. Registration order must be deterministic (it is: it
// follows component attach order), but handles themselves never serialize —
// only names do.
func (s *Scheduler) RegisterNamed(name string, fn func(NamedArgs)) int32 {
	if s.namedIdx == nil {
		s.namedIdx = make(map[string]int32)
	}
	if _, dup := s.namedIdx[name]; dup {
		panic(fmt.Sprintf("sim: named event %q registered twice", name))
	}
	h := int32(len(s.named))
	s.named = append(s.named, namedHandler{name: name, fn: fn})
	s.namedIdx[name] = h
	return h
}

// LookupNamed resolves a handler name to its handle.
func (s *Scheduler) LookupNamed(name string) (int32, bool) {
	h, ok := s.namedIdx[name]
	return h, ok
}

// NamedHandlerName returns the name handle h was registered under.
func (s *Scheduler) NamedHandlerName(h int32) string { return s.named[h].name }

// PostNamed schedules handler h to run at time t with args. It orders
// identically to PostSrc at the same call position and allocates nothing in
// steady state (the side-table slot is recycled when the event fires).
func (s *Scheduler) PostNamed(t Time, src int32, h int32, args NamedArgs) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if h < 0 || int(h) >= len(s.named) {
		panic(fmt.Sprintf("sim: PostNamed with unregistered handle %d", h))
	}
	s.seq++
	var i int32
	if n := len(s.freeNamed); n > 0 {
		i = s.freeNamed[n-1]
		s.freeNamed = s.freeNamed[:n-1]
		s.namedEvts[i] = namedEvent{h: h, args: args}
	} else {
		s.namedEvts = append(s.namedEvts, namedEvent{h: h, args: args})
		i = int32(len(s.namedEvts) - 1)
	}
	s.q.Push(eventEntry{at: t, src: src, del: -(i + 1), seq: s.seq})
}

// PendingEvent is one exported queue entry in restorable form.
type PendingEvent struct {
	At  Time
	Src int32
	Seq uint64
	// Kind discriminates the payload: 0 = typed delivery (Sink/Payload
	// set), 1 = named event (Handler/Args set).
	Kind uint8

	Sink    Sink
	Payload Payload

	Handler string
	Args    NamedArgs
}

// Event kinds in PendingEvent.Kind.
const (
	PendingDelivery uint8 = 0
	PendingNamed    uint8 = 1
)

// ExportPending returns every live queued event as a restorable record.
// Cancelled timers are skipped. Any live closure event (At/After/Post)
// makes the queue unexportable and returns ErrClosureEvent wrapped with the
// event time, because a func pointer cannot be serialized. The queue is not
// modified; records come back in heap order, not time order — callers sort.
func (s *Scheduler) ExportPending() ([]PendingEvent, error) {
	out, err := s.ExportPendingInto(make([]PendingEvent, 0, s.q.Len()))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StartAt initializes a fresh scheduler's clock to t, so a restored run
// resumes at the checkpoint horizon. It refuses to rewrite history: the
// queue must be empty and the clock unadvanced.
func (s *Scheduler) StartAt(t Time) {
	if s.q.Len() != 0 {
		panic("sim: StartAt on a scheduler with queued events")
	}
	if s.now != 0 && s.now != t {
		panic(fmt.Sprintf("sim: StartAt(%v) on a scheduler already at %v", t, s.now))
	}
	s.now = t
}

// State returns the generator's internal state for checkpointing.
func (r *Rand) State() uint64 { return r.state }

// SetState restores a generator to a previously captured state.
func (r *Rand) SetState(s uint64) { r.state = s }
