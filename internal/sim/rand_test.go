package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds yielded identical stream")
	}
}

func TestRandForkIndependent(t *testing.T) {
	parent := NewRand(7)
	c1 := parent.Fork(1)
	parent = NewRand(7)
	c2 := parent.Fork(2)
	equal := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("forked streams look correlated: %d equal of 100", equal)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(123)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := NewRand(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1.8, 1000)
	r := NewRand(5)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(r)]++
	}
	// With s=1.8 the most popular item dominates; rank 0 should receive far
	// more hits than rank 9.
	if counts[0] < 5*counts[9] {
		t.Fatalf("zipf 1.8 not skewed enough: rank0=%d rank9=%d", counts[0], counts[9])
	}
	// Ratio of rank0 to rank1 should approximate 2^1.8 ~= 3.48.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.8 || ratio > 4.3 {
		t.Fatalf("rank0/rank1 = %v, want ~3.48", ratio)
	}
}

func TestZipfRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(1.2, 37)
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := z.Next(r)
			if v < 0 || v >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if NewZipf(1.8, 5).N() != 5 {
		t.Fatal("N() wrong")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 10) should panic")
		}
	}()
	NewZipf(0, 10)
}
