package sim

import "testing"

// Scheduler/event-queue microbenchmarks. The dominant kernel pattern in
// every substrate simulator is timer churn: pop the earliest event, whose
// callback schedules a successor slightly later (NIC DMA completions, TCP
// retransmit timers, closed-loop client think times all look like this).
// Results are recorded as the perf baseline in BENCH_sched.json (see
// scripts/bench.sh).

// BenchmarkTimerChurn measures the pop-min-then-push-later pattern through
// the public Scheduler API with k timers in flight. ns/op is per event
// executed.
func benchmarkTimerChurn(b *testing.B, k int) {
	s := NewScheduler(1)
	// Deterministic but non-uniform deltas keep the heap from degenerating
	// into FIFO order.
	delta := func(i int) Time { return Time(100 + (i*2654435761)%1000) }
	var fns []func()
	for i := 0; i < k; i++ {
		i := i
		var fn func()
		fn = func() { s.After(delta(i), fn) }
		fns = append(fns, fn)
		s.At(Time(delta(i)), fn)
	}
	_ = fns
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Step()
	}
}

func BenchmarkTimerChurn16(b *testing.B)   { benchmarkTimerChurn(b, 16) }
func BenchmarkTimerChurn256(b *testing.B)  { benchmarkTimerChurn(b, 256) }
func BenchmarkTimerChurn4096(b *testing.B) { benchmarkTimerChurn(b, 4096) }

// BenchmarkQueueChurn measures the raw event queue (no Scheduler wrapper):
// pop the min, push a replacement later. ns/op is per pop+push pair.
func BenchmarkQueueChurn1024(b *testing.B) {
	var q eventQueue
	var seq uint64
	push := func(at Time, src int32) {
		seq++
		q.Push(eventEntry{at: at, src: src, seq: seq, fn: func() {}})
	}
	for i := 0; i < 1024; i++ {
		push(Time(100+(i*2654435761)%100000), int32(i%7))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e, ok := q.Pop()
		if !ok {
			b.Fatal("queue drained")
		}
		push(e.at+Time(100+(n*40503)%1000), e.src)
	}
}

// BenchmarkSchedulerMixed interleaves scheduling, cancellation, and
// execution the way host/NIC models do: every fourth timer is cancelled
// before it fires.
func BenchmarkSchedulerMixed(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tm := s.After(Time(500+(n*40503)%500), func() {})
		if n%4 == 0 {
			tm.Cancel()
		}
		s.After(Time(100+(n*2654435761)%400), func() {})
		s.Step()
		s.Step()
	}
}
