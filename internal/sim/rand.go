package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). Every stochastic
// element of a simulation draws from a seeded Rand so that runs are exactly
// reproducible; nothing in the repository uses global or time-seeded
// randomness.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent child generator. Children of the same parent
// with different labels produce uncorrelated streams, which lets components
// own private generators derived from one experiment seed.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics when n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws ranks from a Zipf distribution with exponent s over n items
// (ranks 0..n-1, rank 0 most popular). The CDF is precomputed, so Next is a
// binary search. The NetCache/Pegasus case study uses s=1.8 following the
// paper's client configuration.
type Zipf struct {
	cdf []float64
}

// NewZipf builds the distribution. It panics for n <= 0 or s <= 0.
func NewZipf(s float64, n int) *Zipf {
	if n <= 0 || s <= 0 {
		panic("sim: NewZipf needs n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws a rank using r.
func (z *Zipf) Next(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
