package sim

import (
	"testing"
	"testing/quick"
)

// TestPostOrdersLikeAtSrc verifies that Timer-free events interleave with
// Timer-carrying events exactly as AtSrc events would: the ordering triple
// (time, src, seq) must be blind to which API scheduled an event.
func TestPostOrdersLikeAtSrc(t *testing.T) {
	run := func(post bool) []int {
		s := NewScheduler(1)
		var order []int
		rec := func(i int) func() { return func() { order = append(order, i) } }
		// Same times and sources, alternating APIs in one run.
		s.AtSrc(30, 2, rec(0))
		if post {
			s.PostSrc(10, 5, rec(1))
			s.PostSrc(10, 3, rec(2))
		} else {
			s.AtSrc(10, 5, rec(1))
			s.AtSrc(10, 3, rec(2))
		}
		s.At(20, rec(3))
		s.Post(20, rec(4)) // same time+src as rec(3): seq breaks the tie
		s.Run()
		return order
	}
	want := run(false)
	got := run(true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Post order %v != AtSrc order %v", got, want)
		}
	}
}

// TestPostCountsAsPending covers queue accounting through the hole state:
// Pending must stay exact across pop/push cycles.
func TestPostCountsAsPending(t *testing.T) {
	s := NewScheduler(1)
	s.Post(10, func() { s.Post(20, func() {}) })
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if !s.Step() {
		t.Fatal("Step should run the posted event")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending after reschedule = %d, want 1", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 || s.Processed() != 2 {
		t.Fatalf("Pending=%d Processed=%d, want 0,2", s.Pending(), s.Processed())
	}
}

// Property: interleaved pushes and pops (the replace-top fast path plus
// deferred hole filling) still pop a globally sorted sequence.
func TestEventQueueInterleavedProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var q eventQueue
		var seq uint64
		var last eventEntry
		var havePopped bool
		for _, op := range ops {
			if op%3 == 0 && q.Len() > 0 {
				e, ok := q.Pop()
				if !ok {
					return false
				}
				if havePopped && e.at < last.at {
					// Not globally sorted: pops interleaved with pushes may
					// legally return earlier items pushed later, but never
					// items earlier than a pushed-before-popped bound. Use
					// the heap invariant instead: e must be <= current top.
					_ = e
				}
				if top := q.top(); top != nil && entryLess(top, &e) {
					return false // popped element was not the minimum
				}
				last, havePopped = e, true
			} else {
				seq++
				q.Push(eventEntry{at: Time(op % 97), src: int32(op % 5), seq: seq})
			}
		}
		// Drain: remainder must come out fully sorted.
		var prev *eventEntry
		for q.Len() > 0 {
			e, ok := q.Pop()
			if !ok {
				return false
			}
			if prev != nil && entryLess(&e, prev) {
				return false
			}
			cp := e
			prev = &cp
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCancelInteractsWithHole cancels the head timer while the root hole is
// open on another entry's account.
func TestCancelInteractsWithHole(t *testing.T) {
	s := NewScheduler(1)
	var ran []string
	tm := s.At(10, func() { ran = append(ran, "a") })
	s.At(20, func() { ran = append(ran, "b") })
	s.Post(5, func() {
		// While this event executes the root slot is a hole; cancelling
		// the next timer and scheduling a replacement exercises
		// replace-top + lazy cancellation together.
		tm.Cancel()
		s.Post(15, func() { ran = append(ran, "c") })
	})
	s.Run()
	if len(ran) != 2 || ran[0] != "c" || ran[1] != "b" {
		t.Fatalf("ran = %v, want [c b]", ran)
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}
