package sim

import "fmt"

// This file is the scheduler half of optimistic execution: a cheap in-memory
// restore point (Mark + pending-event export into a caller-recycled buffer)
// and the two ways of moving the clock backwards safely. Unlike the
// checkpoint path in state.go, nothing here canonicalizes or serializes —
// records keep their live Sink pointers and exact sequence numbers, so a
// restore rebuilds the queue bit-identically to the captured one and
// re-execution from the restore point replays the same event order.

// Mark is a lightweight scheduler restore point: the scalar registers that,
// together with the pending-event set and component state, determine future
// execution. It deliberately excludes the side-table layout — restore
// rebuilds that from the event records.
type Mark struct {
	Now     Time
	Seq     uint64
	Done    uint64
	Busy    uint64
	MaxExec Time
}

// CaptureMark snapshots the scheduler's scalar state.
func (s *Scheduler) CaptureMark() Mark {
	return Mark{Now: s.now, Seq: s.seq, Done: s.done, Busy: s.busy, MaxExec: s.maxExec}
}

// MaxExec returns the timestamp of the latest executed event (-1 if none).
// The optimistic executor compares arriving message timestamps against it:
// anything at or below MaxExec is a straggler requiring rollback.
func (s *Scheduler) MaxExec() Time { return s.maxExec }

// Rewind retracts the speculative part of the clock: it moves Now back to t
// without touching any state, which is legal exactly when no event at or
// after t has executed (t > MaxExec). RunBefore(limit) advances Now to limit
// even when the window's tail was empty; Rewind undoes that advance so a
// message for time t can still be posted. Rewinding over executed history is
// a logic bug in the caller's straggler detection and panics.
func (s *Scheduler) Rewind(t Time) {
	if t >= s.now {
		return
	}
	if t <= s.maxExec {
		panic(fmt.Sprintf("sim: Rewind(%v) over executed history (maxExec %v)", t, s.maxExec))
	}
	s.now = t
}

// ExportPendingInto is ExportPending with a caller-supplied buffer: records
// are appended to dst[:0] so a speculation loop taking a snapshot per
// committed horizon reuses one backing array instead of allocating each
// time. Same contract otherwise: heap order, cancelled timers skipped, any
// live closure event fails with ErrClosureEvent.
func (s *Scheduler) ExportPendingInto(dst []PendingEvent) ([]PendingEvent, error) {
	out := dst[:0]
	s.q.fill()
	for i := range s.q.h {
		e := &s.q.h[i]
		if e.timer != nil && e.timer.canceled {
			continue
		}
		switch {
		case e.del > 0:
			d := s.deliveries[e.del-1]
			out = append(out, PendingEvent{At: e.at, Src: e.src, Seq: e.seq,
				Kind: PendingDelivery, Sink: d.sink, Payload: d.payload})
		case e.del < 0:
			ne := s.namedEvts[-e.del-1]
			out = append(out, PendingEvent{At: e.at, Src: e.src, Seq: e.seq,
				Kind: PendingNamed, Handler: s.named[ne.h].name, Args: ne.args})
		default:
			return out, fmt.Errorf("%w (at %v, src %d)", ErrClosureEvent, e.at, e.src)
		}
	}
	return out, nil
}

// RestoreMark resets the scheduler's scalar registers to a captured Mark.
// The queue must already be empty (DiscardPending); RestorePending rebuilds
// it afterwards. Restoring the Seq register is what keeps replayed execution
// bit-identical: events re-posted after the restore draw the same sequence
// numbers they drew the first time.
func (s *Scheduler) RestoreMark(m Mark) {
	if s.q.Len() != 0 {
		panic("sim: RestoreMark on a scheduler with queued events")
	}
	s.now = m.Now
	s.seq = m.Seq
	s.done = m.Done
	s.busy = m.Busy
	s.maxExec = m.MaxExec
}

// RestorePending rebuilds the event queue from exported records, preserving
// each record's exact (At, Src, Seq) ordering key — unlike the checkpoint
// restore path, which re-posts under fresh sequence numbers after a
// canonical sort. The queue must be empty and the scheduler's registers
// already restored (RestoreMark), so every record's Seq is below the Seq
// register and At is not before Now. Named handlers resolve by name against
// this scheduler's registry; an unknown name reports an error naming it.
func (s *Scheduler) RestorePending(evs []PendingEvent) error {
	if s.q.Len() != 0 {
		panic("sim: RestorePending on a scheduler with queued events")
	}
	for i := range evs {
		ev := &evs[i]
		entry := eventEntry{at: ev.At, src: ev.Src, seq: ev.Seq}
		switch ev.Kind {
		case PendingDelivery:
			s.deliveries = append(s.deliveries, delivery{sink: ev.Sink, payload: ev.Payload})
			entry.del = int32(len(s.deliveries))
		case PendingNamed:
			h, ok := s.namedIdx[ev.Handler]
			if !ok {
				return fmt.Errorf("sim: restore of named event %q: handler not registered", ev.Handler)
			}
			s.namedEvts = append(s.namedEvts, namedEvent{h: h, args: ev.Args})
			entry.del = -int32(len(s.namedEvts))
		default:
			return fmt.Errorf("sim: restore of unknown pending-event kind %d", ev.Kind)
		}
		s.q.Push(entry)
	}
	return nil
}
