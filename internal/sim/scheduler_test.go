package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(0)
	var got []int
	s.At(30*Nanosecond, func() { got = append(got, 3) })
	s.At(10*Nanosecond, func() { got = append(got, 1) })
	s.At(20*Nanosecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if s.Now() != 30*Nanosecond {
		t.Errorf("Now() = %v, want 30ns", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", s.Processed())
	}
}

func TestSchedulerSameTimeFIFO(t *testing.T) {
	// Events with equal (time, src) must run in scheduling order.
	s := NewScheduler(0)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Nanosecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulerSrcTiebreak(t *testing.T) {
	s := NewScheduler(5)
	var got []int32
	s.AtSrc(time1ns(), 9, func() { got = append(got, 9) })
	s.AtSrc(time1ns(), 2, func() { got = append(got, 2) })
	s.AtSrc(time1ns(), 7, func() { got = append(got, 7) })
	s.Run()
	want := []int32{2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("src tiebreak broken: got %v want %v", got, want)
		}
	}
}

func time1ns() Time { return 1 * Nanosecond }

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(0)
	s.At(10*Nanosecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(5*Nanosecond, func() {})
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(0)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(1*Microsecond, tick)
		}
	}
	s.At(0, tick)
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if s.Now() != 9*Microsecond {
		t.Fatalf("Now() = %v, want 9us", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(0)
	ran := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Microsecond, func() { ran++ })
	}
	n := s.RunUntil(5 * Microsecond)
	if n != 5 || ran != 5 {
		t.Fatalf("RunUntil executed %d events (cb %d), want 5", n, ran)
	}
	if s.Now() != 5*Microsecond {
		t.Fatalf("Now() = %v, want 5us", s.Now())
	}
	// RunUntil advances Now even with an empty window.
	s.RunUntil(7 * Microsecond)
	if s.Now() != 7*Microsecond {
		t.Fatalf("Now() = %v, want 7us", s.Now())
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", s.Pending())
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(0)
	fired := false
	tm := s.At(1*Microsecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should be a no-op")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer should not be pending")
	}
}

func TestTimerFired(t *testing.T) {
	s := NewScheduler(0)
	tm := s.At(1*Microsecond, func() {})
	s.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancelling a fired timer should fail")
	}
	if tm.When() != 1*Microsecond {
		t.Fatalf("When() = %v", tm.When())
	}
}

func TestPeekSkipsCancelled(t *testing.T) {
	s := NewScheduler(0)
	tm := s.At(1*Microsecond, func() {})
	s.At(2*Microsecond, func() {})
	tm.Cancel()
	at, ok := s.PeekTime()
	if !ok || at != 2*Microsecond {
		t.Fatalf("PeekTime = %v,%v; want 2us,true", at, ok)
	}
}

func TestChargeAccumulates(t *testing.T) {
	s := NewScheduler(0)
	s.Charge(10)
	s.Charge(32)
	if s.BusyNanos() != 42 {
		t.Fatalf("BusyNanos = %d, want 42", s.BusyNanos())
	}
}

// Property: popping events always yields a sequence sorted by (time,src,seq).
func TestEventQueueSortedProperty(t *testing.T) {
	f := func(times []uint16, srcs []uint8) bool {
		n := len(times)
		if len(srcs) < n {
			n = len(srcs)
		}
		if n == 0 {
			return true
		}
		q := &eventQueue{}
		for i := 0; i < n; i++ {
			q.Push(eventEntry{at: Time(times[i]), src: int32(srcs[i]), seq: uint64(i)})
		}
		var popped []eventEntry
		for q.Len() > 0 {
			e, ok := q.Pop()
			if !ok {
				return false
			}
			popped = append(popped, e)
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool {
			return entryLess(&popped[i], &popped[j])
		}) && len(popped) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the scheduler executes any batch of future events in
// nondecreasing time order and ends at the max time.
func TestSchedulerTimeMonotoneProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler(0)
		var seen []Time
		var max Time
		for _, o := range offsets {
			at := Time(o) * Nanosecond
			if at > max {
				max = at
			}
			s.At(at, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
