// Package sim provides the discrete-event simulation kernel shared by every
// component simulator in SplitSim-Go: virtual time, a deterministic event
// queue, seeded random-number generation, and host-cycle cost accounting.
//
// Virtual time is measured in integer picoseconds. Picosecond resolution
// lets the kernel express single CPU cycles at multi-GHz clock rates (a
// 4 GHz cycle is 250 ps) while an int64 still covers roughly 106 days of
// simulated time, far beyond the tens of seconds the experiments need.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in picoseconds since simulation start.
// The same type doubles as a duration; arithmetic is plain integer math.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Infinity is a sentinel meaning "no bound"; it is larger than any time the
// kernel will ever schedule.
const Infinity Time = math.MaxInt64

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a number of seconds into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanos converts a number of nanoseconds into a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// String renders t with a unit chosen by magnitude, e.g. "1.500ms".
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	switch {
	case t >= Second:
		return fmt.Sprintf("%s%.3fs", neg, t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%s%.3fms", neg, float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%s%.3fus", neg, float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%s%.3fns", neg, float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%s%dps", neg, int64(t))
	}
}

// TransmitTime returns the serialization delay of sending size bytes over a
// link of rate bits per second. It rounds up to whole picoseconds so that a
// positive size on a finite-rate link always consumes time.
func TransmitTime(sizeBytes int, bitsPerSecond int64) Time {
	if bitsPerSecond <= 0 {
		return 0
	}
	bits := int64(sizeBytes) * 8
	ps := (bits*int64(Second) + bitsPerSecond - 1) / bitsPerSecond
	return Time(ps)
}

// BitsPerSecond helpers for readable topology configuration.
const (
	Kbps int64 = 1000
	Mbps int64 = 1000 * Kbps
	Gbps int64 = 1000 * Mbps
)
