package sim

// The event queue is a 4-ary min-heap with a total, deterministic order:
// events are compared by (time, source, sequence). Source identifies who
// scheduled the event (the local component or an input channel), sequence is
// a per-scheduler monotone counter. Because every tiebreak is explicit, a
// simulation produces the same event order regardless of goroutine
// interleaving, which is what makes coupled (parallel) and sequential
// execution bit-identical.
//
// Two layout choices matter for the hot path:
//
//   - Entries are stored by value, so steady-state scheduling performs no
//     per-event heap allocation (a Timer is only allocated when the caller
//     asked for a cancellable handle via At/After/AtSrc; Post/PostSrc skip
//     it).
//   - The heap is 4-ary rather than binary: half the depth means half the
//     move chain on every sift, and the four children sit in adjacent cache
//     lines, which measurably beats the binary layout for the timer-churn
//     pattern that dominates the substrate simulators.
//
// Pop additionally leaves a "hole" at the root instead of restructuring
// immediately. The kernel's dominant pattern is pop-min-then-push-later (an
// event's callback schedules its successor), and a push into the hole is a
// single top-down sift of the new element — the classic replace-top fusion —
// instead of a full pop restructure plus a bottom-up push.

// Payload is the opaque unit of data a typed delivery event carries. It is
// the kernel-level view of a channel message: package core aliases it as
// core.Message, so anything that travels over a channel can be stored
// directly in an event-queue slot without a wrapping closure.
type Payload interface {
	Size() int
}

// Sink receives typed delivery events. Deliver runs at the event's virtual
// time with the payload stored in the queue entry; package core aliases this
// interface as core.Sink.
type Sink interface {
	Deliver(at Time, payload Payload)
}

// Timer is a handle to a scheduled event that can be cancelled or inspected.
// Cancellation is lazy: the entry stays in the heap and is skipped when it
// surfaces.
type Timer struct {
	at       Time
	canceled bool
	fired    bool
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or cancelled timer is a no-op. It reports whether the cancellation
// took effect.
func (t *Timer) Cancel() bool {
	if t == nil || t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.fired && !t.canceled }

// When returns the virtual time the timer is (or was) scheduled for.
func (t *Timer) When() Time { return t.at }

type eventEntry struct {
	at  Time
	src int32
	// del marks a typed event: when positive the event runs
	// sink.Deliver(at, payload) from the scheduler's delivery side table at
	// slot del-1; when negative it runs the named handler recorded in the
	// named-event side table at slot -del-1. fn is nil either way. Keeping
	// only an index here (it packs into
	// src's padding) holds the entry at 40 bytes — storing the two
	// interface values inline would nearly double the bytes and the GC
	// write-barrier work every heap sift copies.
	del   int32
	seq   uint64
	fn    func()
	timer *Timer // nil for Post/PostSrc/PostDelivery events (not cancellable)
}

func entryLess(a, b *eventEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// eventQueue is a hand-rolled heap to avoid container/heap interface
// allocation overhead on the hottest path in the kernel.
type eventQueue struct {
	h []eventEntry
	// hole marks that h[0] has been popped but the slot not yet refilled;
	// the next Push drops straight into it (replace-top fast path).
	hole bool
}

const heapArity = 4

// Len reports the number of queued entries.
func (q *eventQueue) Len() int {
	n := len(q.h)
	if q.hole {
		n--
	}
	return n
}

// fill closes an open root hole by moving the last element to the root and
// sifting it down. Must run before any operation that reads the root.
func (q *eventQueue) fill() {
	if !q.hole {
		return
	}
	q.hole = false
	n := len(q.h)
	last := q.h[n-1]
	q.h[n-1] = eventEntry{}
	q.h = q.h[:n-1]
	if n-1 > 0 {
		q.h[0] = last
		q.siftDown(0)
	}
}

// Push inserts e. If the root slot is an open hole, e sifts top-down into
// place (one sift instead of a pop restructure plus a push).
func (q *eventQueue) Push(e eventEntry) {
	if q.hole {
		q.hole = false
		q.h[0] = e
		q.siftDown(0)
		return
	}
	q.h = append(q.h, e)
	q.siftUp(len(q.h) - 1)
}

// top returns a pointer to the minimum entry, valid only until the next
// mutation, or nil when the queue is empty.
func (q *eventQueue) top() *eventEntry {
	q.fill()
	if len(q.h) == 0 {
		return nil
	}
	return &q.h[0]
}

// Pop removes and returns the minimum entry. The root slot is left as a
// hole for the next Push to reuse.
func (q *eventQueue) Pop() (eventEntry, bool) {
	q.fill()
	if len(q.h) == 0 {
		return eventEntry{}, false
	}
	e := q.h[0]
	// Drop the popped slot's references; at/src/seq/del garbage is fine
	// while the hole is open.
	q.h[0].fn = nil
	q.h[0].timer = nil
	q.hole = true
	return e, true
}

func (q *eventQueue) siftUp(i int) {
	e := q.h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !entryLess(&e, &q.h[parent]) {
			break
		}
		q.h[i] = q.h[parent]
		i = parent
	}
	q.h[i] = e
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.h)
	e := q.h[i]
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + heapArity
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(&q.h[j], &q.h[best]) {
				best = j
			}
		}
		if !entryLess(&q.h[best], &e) {
			break
		}
		q.h[i] = q.h[best]
		i = best
	}
	q.h[i] = e
}
