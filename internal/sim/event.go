package sim

// The event queue is a binary min-heap with a total, deterministic order:
// events are compared by (time, source, sequence). Source identifies who
// scheduled the event (the local component or an input channel), sequence is
// a per-scheduler monotone counter. Because every tiebreak is explicit, a
// simulation produces the same event order regardless of goroutine
// interleaving, which is what makes coupled (parallel) and sequential
// execution bit-identical.

// Timer is a handle to a scheduled event that can be cancelled or inspected.
// Cancellation is lazy: the entry stays in the heap and is skipped when it
// surfaces.
type Timer struct {
	at       Time
	canceled bool
	fired    bool
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or cancelled timer is a no-op. It reports whether the cancellation
// took effect.
func (t *Timer) Cancel() bool {
	if t == nil || t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.fired && !t.canceled }

// When returns the virtual time the timer is (or was) scheduled for.
func (t *Timer) When() Time { return t.at }

type eventEntry struct {
	at    Time
	src   int32
	seq   uint64
	fn    func()
	timer *Timer
}

func eventLess(a, b *eventEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// eventQueue is a hand-rolled heap to avoid container/heap interface
// allocation overhead on the hottest path in the kernel.
type eventQueue struct {
	h []*eventEntry
}

func (q *eventQueue) Len() int { return len(q.h) }

func (q *eventQueue) Push(e *eventEntry) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) Peek() *eventEntry {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *eventQueue) Pop() *eventEntry {
	n := len(q.h)
	if n == 0 {
		return nil
	}
	top := q.h[0]
	q.h[0] = q.h[n-1]
	q.h[n-1] = nil
	q.h = q.h[:n-1]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(q.h[l], q.h[smallest]) {
			smallest = l
		}
		if r < n && eventLess(q.h[r], q.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
