package link

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// These tests exercise the pipe's cross-goroutine contracts — publication
// visibility, the park/wake gate, close-while-non-empty, and interrupt —
// under the race detector. The single-goroutine FIFO semantics are covered
// by pipe_test.go and FuzzPipe.

// TestPipeStressProducerConsumer streams a large message sequence through
// one pipe with a real producer and consumer goroutine, the producer
// staging batches of varying size before publishing. The consumer mixes
// every receive mode and must observe an uninterrupted FIFO sequence.
func TestPipeStressProducerConsumer(t *testing.T) {
	const total = 300_000
	p := newPipe()

	go func() {
		for i := 0; i < total; i++ {
			p.push(Message{T: sim.Time(i), Kind: KindData, Sub: uint16(i)})
			// Vary the staging run length so publication happens at every
			// offset within a segment, including across segment boundaries.
			if i%7 == 0 || i%64 == 63 {
				p.flush()
			}
		}
		p.close()
	}()

	next := sim.Time(0)
	check := func(m Message) {
		if m.T != next {
			t.Errorf("out of order: got T=%v want %v", m.T, next)
		}
		next++
	}
	var scratch []Message
	for mode := 0; ; mode = (mode + 1) % 3 {
		switch mode {
		case 0:
			m, ok, closed := p.recv()
			if !ok {
				if !closed {
					t.Fatal("recv returned !ok without closed")
				}
				if next != total {
					t.Fatalf("closed after %d messages, want %d", next, total)
				}
				return
			}
			check(m)
		case 1:
			var batch []Message
			batch, _ = p.tryRecvAll(scratch)
			for _, m := range batch {
				check(m)
			}
			clear(batch)
			scratch = batch
		case 2:
			if _, closed := p.drain(check); closed && next == total {
				return
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestPipeCloseWhileNonEmpty closes the pipe from the producer goroutine
// while published and staged messages are still queued: the consumer must
// drain every message before seeing end-of-stream, in every receive mode.
func TestPipeCloseWhileNonEmpty(t *testing.T) {
	for _, mode := range []string{"recv", "tryRecvAll", "drain"} {
		t.Run(mode, func(t *testing.T) {
			const n = 2*chunkSize + 11
			p := newPipe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < n; i++ {
					p.push(Message{T: sim.Time(i), Kind: KindSync})
				}
				// With the consumer not yet parked, everything above is
				// still staged: close must publish it all before marking
				// end-of-stream.
				p.close()
			}()
			<-done
			got := 0
			for {
				switch mode {
				case "recv":
					m, ok, closed := p.recv()
					if !ok {
						if !closed {
							t.Fatal("!ok without closed")
						}
						if got != n {
							t.Fatalf("got %d messages before close, want %d", got, n)
						}
						return
					}
					if m.T != sim.Time(got) {
						t.Fatalf("message %d has T=%v", got, m.T)
					}
					got++
				case "tryRecvAll":
					batch, closed := p.tryRecvAll(nil)
					got += len(batch)
					if closed {
						if got != n {
							t.Fatalf("got %d messages before close, want %d", got, n)
						}
						return
					}
				case "drain":
					k, closed := p.drain(func(Message) {})
					got += k
					if closed {
						if got != n {
							t.Fatalf("got %d messages before close, want %d", got, n)
						}
						return
					}
				}
			}
		})
	}
}

// TestPipeParkWakeRace ping-pongs one message at a time between two
// goroutines through a pair of pipes. Every round trip forces a park on one
// side and a wake from the other, hammering the Dekker handshake between
// flush's parked-check and park's published-check.
func TestPipeParkWakeRace(t *testing.T) {
	const rounds = 50_000
	ab, ba := newPipe(), newPipe()
	go func() {
		for i := 0; i < rounds; i++ {
			m, ok, _ := ab.recv()
			if !ok {
				return
			}
			ba.send(m)
		}
		ba.close()
	}()
	for i := 0; i < rounds; i++ {
		ab.send(Message{T: sim.Time(i), Kind: KindSync})
		m, ok, closed := ba.recv()
		if !ok || closed {
			t.Fatalf("round %d: ok=%v closed=%v", i, ok, closed)
		}
		if m.T != sim.Time(i) {
			t.Fatalf("round %d: echoed T=%v", i, m.T)
		}
	}
	ab.close()
}

// TestPipeInterruptSticky interrupts a consumer blocked in
// recvInterruptible from another goroutine. The flag must be sticky —
// every later call returns intr immediately instead of blocking — while
// messages already queued still drain first.
func TestPipeInterruptSticky(t *testing.T) {
	p := newPipe()
	blocked := make(chan struct{})
	res := make(chan bool)
	go func() {
		close(blocked)
		_, _, _, intr := p.recvInterruptible()
		res <- intr
	}()
	<-blocked
	p.interrupt()
	if !<-res {
		t.Fatal("blocked receiver not interrupted")
	}
	// Sticky: never blocks again, but queued data still drains.
	p.send(Message{T: 5, Kind: KindSync})
	if m, ok, _, _ := p.recvInterruptible(); !ok || m.T != 5 {
		t.Fatalf("queued message lost after interrupt: ok=%v T=%v", ok, m.T)
	}
	for i := 0; i < 3; i++ {
		if _, ok, closed, intr := p.recvInterruptible(); ok || closed || !intr {
			t.Fatalf("call %d: ok=%v closed=%v intr=%v, want sticky intr", i, ok, closed, intr)
		}
	}
	// Interrupting concurrently with close stays safe and close wins for
	// plain recv.
	p.close()
	if _, ok, closed := p.recv(); ok || !closed {
		t.Fatal("recv after close: want closed")
	}
}

// TestPipeConcurrentInterrupters calls interrupt from many goroutines while
// the consumer loops; the gate must neither deadlock nor drop a wakeup.
func TestPipeConcurrentInterrupters(t *testing.T) {
	p := newPipe()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.interrupt()
		}()
	}
	for {
		_, ok, _, intr := p.recvInterruptible()
		if !ok && intr {
			break
		}
	}
	wg.Wait()
}
