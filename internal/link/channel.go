package link

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Channel is a bidirectional SplitSim channel between two component
// simulators. Each direction is an independent FIFO; both share the same
// latency and synchronization interval.
type Channel struct {
	Name         string
	Latency      sim.Time
	SyncInterval sim.Time

	a, b *Endpoint
}

// NewChannel creates a channel. latency must be positive — it is the
// synchronization lookahead, and a zero-latency channel cannot be simulated
// in parallel. syncInterval <= 0 defaults to the latency, the standard
// SimBricks quantum.
func NewChannel(name string, latency, syncInterval sim.Time) *Channel {
	if latency <= 0 {
		panic(fmt.Sprintf("link: channel %q needs positive latency", name))
	}
	if syncInterval <= 0 {
		syncInterval = latency
	}
	c := &Channel{Name: name, Latency: latency, SyncInterval: syncInterval}
	ab, ba := newPipe(), newPipe()
	c.a = &Endpoint{ch: c, label: name + ".a", out: ab, in: ba, lastSentT: -1, lastRecvT: -1}
	c.b = &Endpoint{ch: c, label: name + ".b", out: ba, in: ab, lastSentT: -1, lastRecvT: -1}
	c.a.peer = c.b
	c.b.peer = c.a
	return c
}

// SideA returns the endpoint used by the first component.
func (c *Channel) SideA() *Endpoint { return c.a }

// SideB returns the endpoint used by the second component.
func (c *Channel) SideB() *Endpoint { return c.b }

// Endpoint is one side's view of a channel: it is both the component's
// outgoing port and the runner's incoming message source. All methods must
// be called from the owning runner's goroutine; only the underlying pipes
// are shared with the peer.
type Endpoint struct {
	ch    *Channel
	label string
	peer  *Endpoint
	out   *pipe
	in    *pipe

	runner *Runner
	sinks  map[uint16]core.Sink
	srcFor map[uint16]int32

	lastSentT sim.Time // our clock when we last sent anything (-1: never)
	lastRecvT sim.Time // peer clock as of the last received message (-1: none)
	peerDone  bool

	// start is the virtual time both sides of the channel begin at: 0 for a
	// normal run, the checkpoint horizon for a restored one. Before the
	// first message arrives the peer is known only to be at start, so the
	// horizon floor is start + latency — without this a restored runner
	// would wait on a horizon in the already-simulated past.
	start sim.Time

	// spec, when non-nil, carries the optimistic-execution state (withheld
	// outputs, input log, leap counters — see spec.go). Set by
	// Runner.SetSpec; nil in conservative runs, keeping their paths free of
	// speculation overhead beyond one pointer test.
	spec *epSpec

	Stats Counters
}

// Label returns a human-readable endpoint name ("chan.a"/"chan.b").
func (e *Endpoint) Label() string { return e.label }

// PeerLabel returns the label of the opposite endpoint.
func (e *Endpoint) PeerLabel() string { return e.peer.label }

// PeerRunnerName returns the name of the runner that owns the opposite
// endpoint ("" before it is attached).
func (e *Endpoint) PeerRunnerName() string {
	if e.peer.runner == nil {
		return ""
	}
	return e.peer.runner.Name()
}

// Channel returns the owning channel.
func (e *Endpoint) Channel() *Channel { return e.ch }

// Latency implements core.Port.
func (e *Endpoint) Latency() sim.Time { return e.ch.Latency }

// Send transmits payload on sub-channel 0, stamped with the owning runner's
// current virtual time. It implements core.Port.
func (e *Endpoint) Send(payload core.Message) { e.SendSub(0, payload) }

// SendSub transmits payload on the given sub-channel. The message is staged
// in the outgoing ring but not yet published: the owning runner publishes
// every staged message at once (one atomic store + at most one consumer
// wakeup per scheduler pass) from sendSyncs, finish, and before blocking —
// see Runner.flushAll. FIFO order and monotone timestamps are preserved
// because staging keeps the producer's program order.
func (e *Endpoint) SendSub(sub uint16, payload core.Message) {
	if e.runner == nil {
		panic("link: endpoint " + e.label + " not attached to a runner")
	}
	now := e.runner.sched.Now()
	e.Stats.TxData += msgCount(payload)
	if sp := e.spec; sp != nil {
		if sp.withhold {
			// Speculative group: the send may sit at or past the committed
			// horizon and could still roll back, so it is staged locally and
			// published by releaseSpec once committed passes its stamp.
			sp.withheld = append(sp.withheld, specOut{T: now, Sub: sub, Payload: payload})
			return
		}
		e.out.push(Message{T: now, Kind: KindData, Sub: sub, Payload: payload})
		sp.tx.Add(1)
		if e.lastSentT != now {
			e.lastSentT = now
			e.runner.syncCapOK = false
		}
		return
	}
	e.out.push(Message{T: now, Kind: KindData, Sub: sub, Payload: payload})
	if e.lastSentT != now {
		e.lastSentT = now
		e.runner.syncCapOK = false
	}
}

// SubPort returns a core.Port bound to one sub-channel of this endpoint —
// the trunk-adapter upper-layer view.
func (e *Endpoint) SubPort(sub uint16) core.Port { return subPort{e: e, sub: sub} }

type subPort struct {
	e   *Endpoint
	sub uint16
}

func (p subPort) Send(payload core.Message) { p.e.SendSub(p.sub, payload) }
func (p subPort) Latency() sim.Time         { return p.e.ch.Latency }

// SetSink registers the sink receiving sub-channel sub. srcID is the stable
// event-ordering source for deliveries on this sub-channel; wiring code must
// assign srcIDs identically in sequential and coupled mode for runs to be
// comparable.
func (e *Endpoint) SetSink(sub uint16, srcID int32, sink core.Sink) {
	if e.sinks == nil {
		e.sinks = make(map[uint16]core.Sink)
		e.srcFor = make(map[uint16]int32)
	}
	e.sinks[sub] = sink
	e.srcFor[sub] = srcID
}

// horizon returns the virtual time this side may safely advance to.
func (e *Endpoint) horizon() sim.Time {
	if e.peerDone {
		return sim.Infinity
	}
	if e.lastRecvT < 0 {
		// Nothing received yet: the peer is at the common start time.
		return e.start + e.ch.Latency
	}
	return e.lastRecvT + e.ch.Latency
}

// sendSync stages a pure synchronization message stamped now, unless a
// message with that timestamp (or later) was already sent. Like data sends
// it is published by the runner's next flush.
func (e *Endpoint) sendSync(now sim.Time) {
	if now <= e.lastSentT {
		return
	}
	e.out.push(Message{T: now, Kind: KindSync})
	e.lastSentT = now
	if e.runner != nil {
		e.runner.syncCapOK = false
	}
	e.Stats.TxSync++
}

// finish sends a final sync at end and closes the outgoing direction
// (close publishes anything still staged before marking the end of stream).
func (e *Endpoint) finish(end sim.Time) {
	e.sendSync(end)
	e.out.close()
}

// handle processes one incoming message: it advances the recorded peer
// clock and, for data, schedules delivery at T + latency on the runner's
// scheduler with the sub-channel's ordering source.
func (e *Endpoint) handle(m Message) {
	if m.T < e.lastRecvT {
		panic(fmt.Sprintf("link: %s received non-monotone timestamp %v after %v",
			e.label, m.T, e.lastRecvT))
	}
	e.lastRecvT = m.T
	e.runner.horizonOK = false
	if m.Kind == KindSync {
		e.Stats.RxSync++
		return
	}
	e.Stats.RxData += msgCount(m.Payload)
	sink, ok := e.sinks[m.Sub]
	if !ok {
		panic(fmt.Sprintf("link: %s has no sink for sub-channel %d", e.label, m.Sub))
	}
	at := m.T + e.ch.Latency
	// Deliveries are never cancelled and carry exactly (sink, payload), so
	// they go in as typed delivery events: no Timer, no capturing closure —
	// the coupled receive path allocates nothing per data message.
	e.runner.sched.PostDelivery(at, e.srcFor[m.Sub], sink, m.Payload)
}
