package link

import (
	"testing"

	"repro/internal/sim"
)

// TestPipeBoundedUnderProducerLead holds the queue at a constant depth while
// streaming many messages through: the consumer never fully drains, which
// before the compaction fix meant the consumed prefix was never reclaimed
// and the buffer grew without bound (one slot per message ever sent).
func TestPipeBoundedUnderProducerLead(t *testing.T) {
	const depth = 100
	const total = 200_000
	p := newPipe()
	for i := 0; i < depth; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	for i := depth; i < total; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
		if _, ok, _ := p.tryRecv(); !ok {
			t.Fatal("queue unexpectedly empty")
		}
	}
	p.mu.Lock()
	bufLen, head := len(p.buf), p.head
	p.mu.Unlock()
	if got := bufLen - head; got != depth {
		t.Fatalf("queue depth = %d, want %d", got, depth)
	}
	// The buffer must be O(queue depth), not O(messages sent). The
	// compaction policy allows up to ~2x depth plus the 64-message floor.
	if bufLen > 4*depth+64 {
		t.Fatalf("pipe buffer holds %d slots for a queue of depth %d — consumed prefix not reclaimed", bufLen, depth)
	}
}

// TestPipeTryRecvAll covers the batched drain path: ordering, buffer
// handback, and the closed signal.
func TestPipeTryRecvAll(t *testing.T) {
	p := newPipe()
	for i := 0; i < 10; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	batch, closed := p.tryRecvAll(nil)
	if closed || len(batch) != 10 {
		t.Fatalf("batch len=%d closed=%v, want 10,false", len(batch), closed)
	}
	for i, m := range batch {
		if m.T != sim.Time(i) {
			t.Fatalf("batch[%d].T = %v, want %v", i, m.T, sim.Time(i))
		}
	}
	// Empty now, not closed.
	if b2, c2 := p.tryRecvAll(batch[:0]); len(b2) != 0 || c2 {
		t.Fatalf("second drain: len=%d closed=%v, want 0,false", len(b2), c2)
	}
	// The handed-back slice becomes the pipe's buffer again: sends reuse it.
	p.send(Message{T: 99, Kind: KindSync})
	if m, ok, _ := p.tryRecv(); !ok || m.T != 99 {
		t.Fatalf("recv after handback: ok=%v T=%v", ok, m.T)
	}
	p.close()
	if _, c := p.tryRecvAll(nil); !c {
		t.Fatal("drained closed pipe should report closed")
	}
}

// TestPipeMixedRecvModes interleaves tryRecv with tryRecvAll to cover the
// partially consumed buffer swap.
func TestPipeMixedRecvModes(t *testing.T) {
	p := newPipe()
	for i := 0; i < 8; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	if m, ok, _ := p.tryRecv(); !ok || m.T != 0 {
		t.Fatalf("tryRecv = %v,%v", m.T, ok)
	}
	batch, _ := p.tryRecvAll(nil)
	if len(batch) != 7 || batch[0].T != 1 || batch[6].T != 7 {
		t.Fatalf("batch after partial consume: len=%d first=%v last=%v",
			len(batch), batch[0].T, batch[len(batch)-1].T)
	}
	if p.len() != 0 {
		t.Fatalf("pipe should be empty, len=%d", p.len())
	}
}
