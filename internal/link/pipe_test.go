package link

import (
	"testing"

	"repro/internal/sim"
)

// TestPipeBoundedUnderProducerLead holds the queue at a constant depth while
// streaming many messages through: the consumer never fully drains. The
// segmented ring must keep recycling consumed segments back to the producer,
// so the number of segments ever allocated stays O(queue depth), not
// O(messages sent).
func TestPipeBoundedUnderProducerLead(t *testing.T) {
	const depth = 100
	const total = 200_000
	p := newPipe()
	for i := 0; i < depth; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	for i := depth; i < total; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
		if _, ok, _ := p.tryRecv(); !ok {
			t.Fatal("queue unexpectedly empty")
		}
	}
	if got := p.len(); got != depth {
		t.Fatalf("queue depth = %d, want %d", got, depth)
	}
	// A depth-100 queue fits in one segment; with recycling the producer
	// should never need more than a few segments in flight, no matter how
	// many messages ever passed through.
	if allocs := p.chunkAllocs.Load(); allocs > 4 {
		t.Fatalf("pipe allocated %d segments for a queue of depth %d — consumed segments not recycled", allocs, depth)
	}
	if pk := p.peakDepth(); pk < depth || pk > depth+1 {
		t.Fatalf("peak depth = %d, want ~%d", pk, depth)
	}
}

// TestPipeChunkBoundary streams enough messages to cross several segment
// boundaries in every receive mode, covering the producer-side linking and
// consumer-side advance/recycle paths.
func TestPipeChunkBoundary(t *testing.T) {
	const total = 5*chunkSize + 17
	p := newPipe()
	for i := 0; i < total; i++ {
		p.send(Message{T: sim.Time(i), Sub: uint16(i)})
	}
	for i := 0; i < total/2; i++ {
		m, ok, _ := p.tryRecv()
		if !ok || m.T != sim.Time(i) {
			t.Fatalf("tryRecv #%d: ok=%v T=%v", i, ok, m.T)
		}
	}
	batch, closed := p.tryRecvAll(nil)
	if closed || len(batch) != total-total/2 {
		t.Fatalf("batch len=%d closed=%v, want %d,false", len(batch), closed, total-total/2)
	}
	for i, m := range batch {
		if m.T != sim.Time(total/2+i) {
			t.Fatalf("batch[%d].T = %v, want %v", i, m.T, sim.Time(total/2+i))
		}
	}
	if p.len() != 0 {
		t.Fatalf("pipe should be empty, len=%d", p.len())
	}
}

// TestPipeStagedNotVisibleUntilFlush pins the batch-publication contract:
// push stages without publishing, flush makes everything visible at once.
func TestPipeStagedNotVisibleUntilFlush(t *testing.T) {
	p := newPipe()
	for i := 0; i < 5; i++ {
		p.push(Message{T: sim.Time(i), Kind: KindSync})
	}
	if p.len() != 0 {
		t.Fatalf("staged messages already visible: len=%d", p.len())
	}
	if _, ok, _ := p.tryRecv(); ok {
		t.Fatal("tryRecv saw a staged message before flush")
	}
	p.flush()
	if p.len() != 5 {
		t.Fatalf("after flush len=%d, want 5", p.len())
	}
	batch, _ := p.tryRecvAll(nil)
	if len(batch) != 5 || batch[0].T != 0 || batch[4].T != 4 {
		t.Fatalf("batch after flush: %v", batch)
	}
	// Flush with nothing staged is a no-op.
	p.flush()
	if p.len() != 0 {
		t.Fatal("empty flush published something")
	}
}

// TestPipeTryRecvAll covers the batched drain path: ordering, scratch
// reuse, and the closed signal.
func TestPipeTryRecvAll(t *testing.T) {
	p := newPipe()
	for i := 0; i < 10; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	batch, closed := p.tryRecvAll(nil)
	if closed || len(batch) != 10 {
		t.Fatalf("batch len=%d closed=%v, want 10,false", len(batch), closed)
	}
	for i, m := range batch {
		if m.T != sim.Time(i) {
			t.Fatalf("batch[%d].T = %v, want %v", i, m.T, sim.Time(i))
		}
	}
	// Empty now, not closed.
	if b2, c2 := p.tryRecvAll(batch[:0]); len(b2) != 0 || c2 {
		t.Fatalf("second drain: len=%d closed=%v, want 0,false", len(b2), c2)
	}
	// The handed-back slice is reused as the next batch's backing storage.
	p.send(Message{T: 99, Kind: KindSync})
	if m, ok, _ := p.tryRecv(); !ok || m.T != 99 {
		t.Fatalf("recv after handback: ok=%v T=%v", ok, m.T)
	}
	p.close()
	if _, c := p.tryRecvAll(nil); !c {
		t.Fatal("drained closed pipe should report closed")
	}
}

// TestPipeMixedRecvModes interleaves tryRecv with tryRecvAll to cover the
// consumer position bookkeeping shared by both paths.
func TestPipeMixedRecvModes(t *testing.T) {
	p := newPipe()
	for i := 0; i < 8; i++ {
		p.send(Message{T: sim.Time(i), Kind: KindSync})
	}
	if m, ok, _ := p.tryRecv(); !ok || m.T != 0 {
		t.Fatalf("tryRecv = %v,%v", m.T, ok)
	}
	batch, _ := p.tryRecvAll(nil)
	if len(batch) != 7 || batch[0].T != 1 || batch[6].T != 7 {
		t.Fatalf("batch after partial consume: len=%d first=%v last=%v",
			len(batch), batch[0].T, batch[len(batch)-1].T)
	}
	if p.len() != 0 {
		t.Fatalf("pipe should be empty, len=%d", p.len())
	}
	// tryRecv after a batch drain must see fresh publications.
	p.send(Message{T: 42})
	if m, ok, _ := p.tryRecv(); !ok || m.T != 42 {
		t.Fatalf("tryRecv after batch drain: ok=%v T=%v", ok, m.T)
	}
}

// TestPipeCloseFlushesStaged verifies close publishes staged messages, so a
// finishing endpoint's final sync is never lost.
func TestPipeCloseFlushesStaged(t *testing.T) {
	p := newPipe()
	p.push(Message{T: 7, Kind: KindSync})
	p.close()
	m, ok, closed := p.recv()
	if !ok || closed || m.T != 7 {
		t.Fatalf("recv after close: m=%v ok=%v closed=%v", m.T, ok, closed)
	}
	if _, ok, closed := p.recv(); ok || !closed {
		t.Fatal("drained closed pipe should report closed")
	}
}

// TestPipeSendOnClosedPanics pins the protocol-bug guard.
func TestPipeSendOnClosedPanics(t *testing.T) {
	p := newPipe()
	p.close()
	defer func() {
		if recover() == nil {
			t.Fatal("send on closed pipe should panic")
		}
	}()
	p.send(Message{T: 1})
}
