package link

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Runner executes one simulator "process": it owns a scheduler, the
// components attached to it, and the channel endpoints connecting it to
// peer runners. Runner implements the conservative synchronization loop:
//
//	drain incoming messages → compute horizon (min over endpoints of
//	lastPeerClock + latency) → run local events strictly before the
//	horizon → emit syncs → block on the limiting endpoint when stuck.
//
// The strict "before the horizon" bound plus per-channel ordering sources
// make a coupled run bit-identical to sequential execution.
type Runner struct {
	name  string
	sched *sim.Scheduler
	eps   []*Endpoint
	comps []core.Component
	end   sim.Time

	// Cached minima over the endpoints. horizon depends only on each
	// endpoint's lastRecvT/peerDone and syncCap only on lastSentT, so both
	// stay valid across loop iterations that neither receive nor send;
	// endpoint mutations invalidate them.
	horizonCache sim.Time
	horizonOK    bool
	syncCapCache sim.Time
	syncCapOK    bool

	// lastSyncAll is the virtual time of the last full sendSyncs pass;
	// repeating the pass at the same time is a no-op on every endpoint and
	// is skipped wholesale.
	lastSyncAll sim.Time

	// restored marks a run resuming from a checkpoint: components start
	// via StartRestored (no initial events) instead of Start. See state.go.
	restored bool

	// batchWindows, set by the parallel executor, amortizes horizon
	// advancement: the event batch runs all the way to the conservative
	// horizon and one sync exchange covers the whole lookahead window,
	// instead of pausing every sync interval to emit intermediate syncs.
	// Peers advance in coarser steps but simulation content is untouched —
	// sync messages never schedule events, so the run stays bit-identical
	// (and the event count equal) to sequential execution.
	batchWindows bool

	// epoch anchors the profiler's wall-clock samples: time.Since on a
	// monotonic base is measurably cheaper than time.Now on VMs where the
	// wall clock is a syscall, and the counters only ever need differences.
	// procTick counts message-handling occasions and waitTick blocking
	// occasions; only every profSamplePeriod-th (resp. waitSamplePeriod-th)
	// one is actually timed (see drainAll and blockOnLimiting).
	epoch    time.Time
	procTick uint32
	waitTick uint32

	// OnAdvance, if set, is invoked after each batch of events with the
	// runner's new virtual time; the profiler hooks in here.
	OnAdvance func(now sim.Time)

	// spec, when non-nil, switches Run into the optimistic loop (see
	// spec.go): speculation past the committed horizon with snapshot
	// rollback, plus GVT-leap horizon tracking.
	spec *specState
}

// NewRunner creates a runner around sched.
func NewRunner(name string, sched *sim.Scheduler) *Runner {
	return &Runner{name: name, sched: sched, lastSyncAll: -1}
}

// Name returns the runner's name.
func (r *Runner) Name() string { return r.name }

// Scheduler returns the runner's scheduler.
func (r *Runner) Scheduler() *sim.Scheduler { return r.sched }

// Endpoints returns the endpoints attached so far.
func (r *Runner) Endpoints() []*Endpoint { return r.eps }

// Components returns the components registered via AddComponent; the
// profiler walks them to aggregate per-runner frame-pool health.
func (r *Runner) Components() []core.Component { return r.comps }

// Attach binds endpoint e to this runner. Each endpoint belongs to exactly
// one runner.
func (r *Runner) Attach(e *Endpoint) {
	if e.runner != nil {
		panic("link: endpoint " + e.label + " already attached")
	}
	e.runner = r
	r.eps = append(r.eps, e)
	r.horizonOK = false
	r.syncCapOK = false
}

// AddComponent registers a component, attaching it to the runner's
// scheduler with the given ordering source. Start is invoked when Run
// begins. Wiring code must assign sources identically across execution
// modes for results to be comparable.
func (r *Runner) AddComponent(c core.Component, src int32) {
	c.Attach(core.Env{Sched: r.sched, Src: src})
	r.comps = append(r.comps, c)
}

// SetBatchWindows toggles amortized horizon batching (see the batchWindows
// field). Call before Run; the parallel executor enables it so that, under
// true concurrency, peers exchange one sync per lookahead window instead of
// one per sync interval.
func (r *Runner) SetBatchWindows(on bool) {
	r.batchWindows = on
	r.syncCapOK = false
}

// Counters returns the sum of all endpoint counters.
func (r *Runner) Counters() Counters {
	var total Counters
	for _, e := range r.eps {
		total.Add(e.Stats)
	}
	return total
}

// Run executes the runner until virtual time end. It is blocking; Group runs
// many runners concurrently. Events scheduled at exactly end do not execute.
func (r *Runner) Run(end sim.Time) {
	if r.spec != nil {
		r.runSpec(end)
		return
	}
	r.end = end
	r.epoch = time.Now()
	for _, c := range r.comps {
		if r.restored {
			rs, ok := c.(restartable)
			if !ok {
				panic("link: restored run with non-restorable component " + c.Name())
			}
			rs.StartRestored(end)
			continue
		}
		c.Start(end)
	}
	for {
		r.drainAll()
		target := r.horizon()
		if target > end {
			target = end
		}
		// Cap the batch so peers receive syncs at least every sync
		// interval of our virtual time.
		if sc := r.syncCap(); sc < target {
			target = sc
		}
		if target > r.sched.Now() || r.runnableBefore(target) {
			r.sched.RunBefore(target)
			r.sendSyncs()
			if r.OnAdvance != nil {
				r.OnAdvance(r.sched.Now())
			}
		}
		if r.sched.Now() >= end {
			for _, e := range r.eps {
				e.finish(end)
			}
			return
		}
		// No second drain here: new messages can only have been published
		// while this goroutine was off the processor, so the event batch we
		// just ran cannot have grown the queues. If something did slip in
		// from a truly concurrent peer, blockOnLimiting's opening tryRecv
		// sees it and returns without parking.
		if r.horizon() > r.sched.Now() {
			continue // more headroom appeared; keep running
		}
		r.blockOnLimiting()
	}
}

// runnableBefore reports whether a local event exists strictly before t.
func (r *Runner) runnableBefore(t sim.Time) bool {
	at, ok := r.sched.PeekTime()
	return ok && at < t
}

// horizon is the minimum over endpoints of how far this runner may advance.
// The minimum is cached; receiving a message or losing a peer invalidates
// it, so loop iterations that process no messages skip the scan.
func (r *Runner) horizon() sim.Time {
	if r.horizonOK {
		return r.horizonCache
	}
	h := sim.Infinity
	for _, e := range r.eps {
		if eh := e.horizon(); eh < h {
			h = eh
		}
	}
	r.horizonCache = h
	r.horizonOK = true
	return h
}

// syncCap bounds batch size so that each peer hears from us at least once
// per its channel's sync interval. Cached like horizon; sending on any
// endpoint invalidates it. With batched windows the cap is lifted entirely:
// the horizon already bounds every batch to one lookahead window, and the
// loop syncs whenever it stops advancing (sendSyncs after each batch, a
// standing sync at Now before any block), so liveness needs no finer pacing.
func (r *Runner) syncCap() sim.Time {
	if r.batchWindows {
		return sim.Infinity
	}
	if r.syncCapOK {
		return r.syncCapCache
	}
	c := sim.Infinity
	for _, e := range r.eps {
		floor := e.lastSentT
		if floor < 0 {
			floor = 0
		}
		if t := floor + e.ch.SyncInterval; t < c {
			c = t
		}
	}
	r.syncCapCache = c
	r.syncCapOK = true
	return c
}

// sendSyncs emits a sync on every endpoint that has not yet sent at the
// current time, then publishes everything staged this pass. After one full
// pass at time t every endpoint's lastSentT is >= t, so a repeat pass at
// the same time stages nothing — but the flush still runs, because events
// executed since the last pass may have staged data sends at an unchanged
// virtual time.
func (r *Runner) sendSyncs() {
	now := r.sched.Now()
	if now != r.lastSyncAll {
		r.lastSyncAll = now
		for _, e := range r.eps {
			e.sendSync(now)
			e.out.flush()
		}
		return
	}
	r.flushAll()
}

// flushAll publishes every endpoint's staged outgoing messages. This is the
// send-side batch-publication point: N sends during a scheduler pass cost
// one atomic publish and at most one consumer wakeup per endpoint. Runs
// after each event batch (sendSyncs), at finish (via close), and before
// blocking, so a peer can never be left waiting on a staged message while
// this runner sleeps.
func (r *Runner) flushAll() {
	for _, e := range r.eps {
		e.out.flush()
	}
}

// profSamplePeriod is the sampling stride for the always-on ProcNanos
// accounting: one batch in profSamplePeriod is wall-clock timed and the
// measurement scaled up by the stride. Reading the monotonic clock is a
// syscall on many virtualized hosts, and two reads around every (often
// single-message) batch was itself a top profile entry; the sampled
// counters converge on the true totals while the hot path pays a clock
// pair only once per stride. WaitNanos samples at a shorter stride:
// blocked time is the profiler's primary bottleneck signal and individual
// waits have higher variance than batch-handling times, so it trades less
// of its accuracy away.
const (
	profSamplePeriod = 8 // power of two
	waitSamplePeriod = 4 // power of two
)

// drainAll consumes every already-queued incoming message on every endpoint
// without blocking. Each endpoint's queue is handled in place as one batch
// (pipe.drain) — one atomic acquire and at most one wall-clock sample pair
// per batch rather than per message — which is what keeps per-message
// fabric overhead low enough for decomposition to pay off.
func (r *Runner) drainAll() {
	for _, e := range r.eps {
		if e.in.empty() {
			// Nothing published; all that can remain is end-of-stream (the
			// drain call re-checks under the close/publish race).
			if !e.peerDone {
				if _, closed := e.in.drain(e.handle); closed {
					e.peerDone = true
					r.horizonOK = false
				}
			}
			continue
		}
		r.procTick++
		if r.procTick&(profSamplePeriod-1) == 0 {
			start := time.Since(r.epoch)
			e.in.drain(e.handle)
			e.Stats.ProcNanos += uint64(time.Since(r.epoch)-start) * profSamplePeriod
		} else {
			e.in.drain(e.handle)
		}
		// The ring tracks the deepest backlog the peer ever built against
		// us; snapshot it from the consumer side where Stats is owned.
		e.Stats.PeakDepth = e.in.peakDepth()
	}
}

// blockOnLimiting waits for a message on the endpoint with the smallest
// horizon, charging the blocked wall time to that endpoint's wait counter
// and — like the drain path — the handling time to its proc counter, so
// wait-time profiles do not silently lose the wakeup message's work.
// Everything staged is published first: peers must see every message we
// have produced before we sleep on them. The wait itself is the pipe's
// adaptive spin-then-park (recvAdaptive), which keys its spin budget to
// GOMAXPROCS: on one core it yields so the peer can run at all, on many it
// briefly busy-polls a peer that may be publishing concurrently.
func (r *Runner) blockOnLimiting() {
	r.flushAll()
	var limiting *Endpoint
	h := sim.Infinity
	for _, e := range r.eps {
		if eh := e.horizon(); eh < h {
			h = eh
			limiting = e
		}
	}
	if limiting == nil {
		panic("link: runner " + r.name + " blocked with no endpoints")
	}
	m, ok, closed := limiting.in.tryRecv()
	if !ok && !closed {
		// We are actually going to wait. Like ProcNanos, the wait counter
		// is sampled: one block in waitSamplePeriod is timed and scaled.
		// An immediately available message (the branch above) waited ~0
		// and records 0 without touching the clock at all.
		r.waitTick++
		var start time.Duration
		sampled := r.waitTick&(waitSamplePeriod-1) == 0
		if sampled {
			start = time.Since(r.epoch)
		}
		m, ok, closed = limiting.in.recvAdaptive()
		if sampled {
			limiting.Stats.WaitNanos += uint64(time.Since(r.epoch)-start) * waitSamplePeriod
		}
	}
	if !ok {
		limiting.peerDone = true
		r.horizonOK = false
		return
	}
	r.procTick++
	if r.procTick&(profSamplePeriod-1) == 0 {
		start := time.Since(r.epoch)
		limiting.handle(m)
		limiting.Stats.ProcNanos += uint64(time.Since(r.epoch)-start) * profSamplePeriod
	} else {
		limiting.handle(m)
	}
}

// Group runs a set of coupled runners to a common end time.
type Group struct {
	Runners []*Runner
}

// Add appends runners to the group.
func (g *Group) Add(rs ...*Runner) { g.Runners = append(g.Runners, rs...) }

// Run starts every runner in its own goroutine and waits for all of them.
// A panic in any runner is captured and returned as an error after the
// remaining runners are unblocked by their peers' closed pipes.
func (g *Group) Run(end sim.Time) error { return g.run(end, 0) }

// RunPinned is Run with the first `pinned` runners each locked to a
// dedicated OS thread for the duration of the run — the multi-core
// executor's thread pool. Every runner still gets its own goroutine
// (runners block on one another, so they must all be schedulable); pinning
// beyond what the caller asks for is left to the Go scheduler. Callers size
// `pinned` to GOMAXPROCS (see orch's parallel executor) so each pinned
// runner maps onto one core's worth of OS-level parallelism.
func (g *Group) RunPinned(end sim.Time, pinned int) error { return g.run(end, pinned) }

func (g *Group) run(end sim.Time, pinned int) error {
	var wg sync.WaitGroup
	errs := make([]error, len(g.Runners))
	for i, r := range g.Runners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i < pinned {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("runner %s: %v", r.name, p)
					// Unblock peers waiting on us.
					for _, e := range r.eps {
						func() {
							defer func() { recover() }()
							e.out.close()
						}()
					}
				}
			}()
			r.Run(end)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
