package link

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// DirectPort is the sequential-mode counterpart of an Endpoint: it delivers
// messages through a shared scheduler instead of a pipe between goroutines.
// Delivery time (send time + latency) and event-ordering source are chosen
// exactly as the coupled path chooses them, so a simulation wired with
// DirectPorts is event-for-event identical to one wired with Channels.
type DirectPort struct {
	sched *sim.Scheduler
	lat   sim.Time
	src   int32
	sink  core.Sink

	// Stats counts data messages for parity with Endpoint accounting.
	Stats Counters
}

// NewDirectPort creates a port delivering to sink after lat, using src as
// the delivery events' ordering source.
func NewDirectPort(sched *sim.Scheduler, lat sim.Time, src int32, sink core.Sink) *DirectPort {
	if lat <= 0 {
		panic("link: direct port needs positive latency")
	}
	return &DirectPort{sched: sched, lat: lat, src: src, sink: sink}
}

// Latency implements core.Port.
func (p *DirectPort) Latency() sim.Time { return p.lat }

// Send implements core.Port.
func (p *DirectPort) Send(payload core.Message) {
	at := p.sched.Now() + p.lat
	p.Stats.TxData += msgCount(payload)
	// Typed delivery event: the (sink, payload) pair lives in the queue
	// slot, so sequential-mode message delivery allocates nothing.
	p.sched.PostDelivery(at, p.src, p.sink, payload)
}

// Trunk is the paper's trunk adapter: it multiplexes several upper-layer
// logical channels over one synchronized channel, paying the per-channel
// synchronization cost once instead of once per logical link. Messages are
// tagged with a sub-channel identifier and demultiplexed at the receiver.
type Trunk struct {
	e *Endpoint
}

// NewTrunk wraps an endpoint as a trunk adapter.
func NewTrunk(e *Endpoint) *Trunk { return &Trunk{e: e} }

// Endpoint returns the underlying synchronized endpoint.
func (t *Trunk) Endpoint() *Endpoint { return t.e }

// Port returns the outgoing port for logical sub-channel sub.
func (t *Trunk) Port(sub uint16) core.Port { return t.e.SubPort(sub) }

// Bind registers the receiving sink for logical sub-channel sub with the
// given event-ordering source.
func (t *Trunk) Bind(sub uint16, srcID int32, sink core.Sink) {
	t.e.SetSink(sub, srcID, sink)
}
