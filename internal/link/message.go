package link

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Kind distinguishes payload-carrying messages from pure synchronization
// ("null") messages.
type Kind uint8

const (
	// KindSync carries no payload; it only advances the peer's horizon.
	KindSync Kind = iota
	// KindData carries a payload for a sub-channel.
	KindData
)

func (k Kind) String() string {
	if k == KindData {
		return "data"
	}
	return "sync"
}

// Message is one unit on a channel. T is the sender's virtual clock at send
// time; the receiver processes the payload at T + channel latency. Sub names
// the logical sub-channel for trunk (multiplexed) channels; plain channels
// use sub-channel 0.
type Message struct {
	T       sim.Time
	Kind    Kind
	Sub     uint16
	Payload core.Message
}

// MultiMessage is implemented by payloads that batch several logical
// messages into one physical channel message (e.g. a NIC RX batch). The
// adapter counters credit Count messages per send/receive so profiler
// output and the decomposition model's per-link message totals stay
// identical to an unbatched run — batching changes how many events cross
// the channel, never how much traffic is accounted.
type MultiMessage interface {
	Count() int
}

// msgCount returns the number of logical messages payload represents.
func msgCount(payload core.Message) uint64 {
	if m, ok := payload.(MultiMessage); ok {
		return uint64(m.Count())
	}
	return 1
}

// Counters is the lightweight profiler instrumentation embedded in every
// adapter, mirroring the paper's three per-adapter counters: cycles blocked
// waiting for synchronization, messages sent, and messages processed.
// WaitNanos and ProcNanos are wall-clock nanoseconds; PeakDepth is the
// deepest incoming-queue backlog ever observed at publication time; the
// remaining fields are message counts.
//
// Concurrency contract: every field of an Endpoint's Stats is written only
// by the runner that owns the endpoint — Tx* in SendSub on the sender's
// goroutine, Rx*/ProcNanos/WaitNanos in the owner's drain/handle/block
// paths — so the multi-core executor needs no atomics here. Aggregation
// (Runner.Counters, the profiler's samplers) happens either on the owning
// runner's scheduler or after Group.Run returns, which happens-after every
// runner goroutine exits. TestParallelProfilingRace holds this to -race.
type Counters struct {
	WaitNanos uint64 // blocked waiting for the peer's sync/data
	ProcNanos uint64 // spent handling incoming messages
	PeakDepth uint64 // max incoming queue depth seen (messages)
	TxData    uint64
	TxSync    uint64
	RxData    uint64
	RxSync    uint64
}

// Add accumulates o into c. PeakDepth sums like the rest: a runner's total
// reads as the aggregate backlog capacity its endpoints ever needed.
func (c *Counters) Add(o Counters) {
	c.WaitNanos += o.WaitNanos
	c.ProcNanos += o.ProcNanos
	c.PeakDepth += o.PeakDepth
	c.TxData += o.TxData
	c.TxSync += o.TxSync
	c.RxData += o.RxData
	c.RxSync += o.RxSync
}
