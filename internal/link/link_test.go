package link

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

type testMsg struct {
	seq  int
	from string
}

func (m testMsg) Size() int { return 64 }

// pinger sends a message every interval and records everything it receives.
type pinger struct {
	name     string
	env      core.Env
	port     core.Port
	interval sim.Time
	sent     int
	trace    []string
}

func (p *pinger) Name() string        { return p.name }
func (p *pinger) Attach(env core.Env) { p.env = env }
func (p *pinger) Start(end sim.Time) {
	if p.port != nil {
		p.env.At(0, p.tick)
	}
}
func (p *pinger) tick() {
	p.port.Send(testMsg{seq: p.sent, from: p.name})
	p.sent++
	p.env.After(p.interval, p.tick)
}

func (p *pinger) Deliver(at sim.Time, m core.Message) {
	msg := m.(testMsg)
	p.trace = append(p.trace, fmt.Sprintf("%v:%s:%d@%v", at, msg.from, msg.seq, at))
}

func buildPair(latency, syncIv sim.Time) (*Group, *pinger, *pinger) {
	sa, sb := sim.NewScheduler(1), sim.NewScheduler(2)
	ra, rb := NewRunner("a", sa), NewRunner("b", sb)
	ch := NewChannel("ab", latency, syncIv)
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())
	pa := &pinger{name: "pa", port: ch.SideA(), interval: 100 * sim.Nanosecond}
	pb := &pinger{name: "pb", port: ch.SideB(), interval: 130 * sim.Nanosecond}
	ch.SideA().SetSink(0, 100, pa)
	ch.SideB().SetSink(0, 101, pb)
	ra.AddComponent(pa, 10)
	rb.AddComponent(pb, 11)
	g := &Group{}
	g.Add(ra, rb)
	return g, pa, pb
}

func TestChannelDeliveryLatency(t *testing.T) {
	g, pa, pb := buildPair(500*sim.Nanosecond, 0)
	if err := g.Run(1 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	// pa sends at 0, 100ns, ...; pb receives at 500, 600, 700, 800, 900ns
	// (the 1000ns delivery is at exactly end and must not run).
	if len(pb.trace) != 5 {
		t.Fatalf("pb received %d messages, want 5: %v", len(pb.trace), pb.trace)
	}
	want0 := "500.000ns:pa:0@500.000ns"
	if pb.trace[0] != want0 {
		t.Errorf("first delivery %q, want %q", pb.trace[0], want0)
	}
	// pb sends at 0,130,...,910ns; deliveries at send+500 < 1000 -> 3 msgs.
	if len(pa.trace) != 4 {
		t.Fatalf("pa received %d messages, want 4: %v", len(pa.trace), pa.trace)
	}
}

func TestCoupledDeterminism(t *testing.T) {
	run := func() ([]string, []string) {
		g, pa, pb := buildPair(200*sim.Nanosecond, 50*sim.Nanosecond)
		if err := g.Run(10 * sim.Microsecond); err != nil {
			t.Fatal(err)
		}
		return pa.trace, pb.trace
	}
	a1, b1 := run()
	a2, b2 := run()
	if fmt.Sprint(a1) != fmt.Sprint(a2) || fmt.Sprint(b1) != fmt.Sprint(b2) {
		t.Fatal("coupled runs diverged across executions")
	}
	if len(a1) == 0 || len(b1) == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestCoupledMatchesDirect verifies the load-bearing property of the whole
// design: parallel coupled execution and sequential direct execution yield
// identical traces.
func TestCoupledMatchesDirect(t *testing.T) {
	g, pa, pb := buildPair(200*sim.Nanosecond, 0)
	if err := g.Run(5 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}

	// Sequential: one shared scheduler, DirectPorts with identical srcs.
	s := sim.NewScheduler(0)
	qa := &pinger{name: "pa", interval: 100 * sim.Nanosecond}
	qb := &pinger{name: "pb", interval: 130 * sim.Nanosecond}
	qa.port = NewDirectPort(s, 200*sim.Nanosecond, 101, qb) // delivers to pb with src 101
	qb.port = NewDirectPort(s, 200*sim.Nanosecond, 100, qa)
	qa.Attach(core.Env{Sched: s, Src: 10})
	qb.Attach(core.Env{Sched: s, Src: 11})
	qa.Start(5 * sim.Microsecond)
	qb.Start(5 * sim.Microsecond)
	for {
		at, ok := s.PeekTime()
		if !ok || at >= 5*sim.Microsecond {
			break
		}
		s.Step()
	}

	if fmt.Sprint(pa.trace) != fmt.Sprint(qa.trace) {
		t.Fatalf("pa trace diverged:\ncoupled: %v\ndirect:  %v", pa.trace, qa.trace)
	}
	if fmt.Sprint(pb.trace) != fmt.Sprint(qb.trace) {
		t.Fatalf("pb trace diverged:\ncoupled: %v\ndirect:  %v", pb.trace, qb.trace)
	}
}

func TestSyncCountersPopulated(t *testing.T) {
	g, _, _ := buildPair(100*sim.Nanosecond, 0)
	if err := g.Run(20 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Runners {
		c := r.Counters()
		if c.TxData == 0 || c.RxData == 0 {
			t.Errorf("runner %s: no data traffic counted: %+v", r.Name(), c)
		}
		if c.TxSync == 0 || c.RxSync == 0 {
			t.Errorf("runner %s: no sync traffic counted: %+v", r.Name(), c)
		}
	}
}

func TestTrunkMultiplexing(t *testing.T) {
	sa, sb := sim.NewScheduler(1), sim.NewScheduler(2)
	ra, rb := NewRunner("a", sa), NewRunner("b", sb)
	ch := NewChannel("trunk", 100*sim.Nanosecond, 0)
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())

	ta := NewTrunk(ch.SideA())
	tb := NewTrunk(ch.SideB())
	const nSub = 4
	senders := make([]*pinger, nSub)
	receivers := make([]*pinger, nSub)
	for i := 0; i < nSub; i++ {
		senders[i] = &pinger{
			name:     fmt.Sprintf("s%d", i),
			port:     ta.Port(uint16(i)),
			interval: sim.Time(100+i*10) * sim.Nanosecond,
		}
		receivers[i] = &pinger{name: fmt.Sprintf("r%d", i), interval: sim.Infinity}
		tb.Bind(uint16(i), int32(200+i), receivers[i])
		ta.Bind(uint16(i), int32(300+i), receivers[i]) // unused direction
		ra.AddComponent(senders[i], int32(20+i))
	}
	g := &Group{}
	g.Add(ra, rb)
	if err := g.Run(2 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	for i, rc := range receivers {
		if len(rc.trace) == 0 {
			t.Fatalf("sub-channel %d delivered nothing", i)
		}
		for _, tr := range rc.trace {
			wantFrom := fmt.Sprintf(":s%d:", i)
			if !containsStr(tr, wantFrom) {
				t.Fatalf("sub-channel %d got cross-delivered message %q", i, tr)
			}
		}
	}
	// One synchronized channel carried all four logical channels: sync
	// message count should be far below 4x the single-channel case.
	if ch.SideA().Stats.TxData == 0 {
		t.Fatal("trunk carried no data")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestThreeRunnerChain(t *testing.T) {
	// a <-> b <-> c; messages relayed a->b->c.
	ss := []*sim.Scheduler{sim.NewScheduler(1), sim.NewScheduler(2), sim.NewScheduler(3)}
	ra := NewRunner("a", ss[0])
	rb := NewRunner("b", ss[1])
	rc := NewRunner("c", ss[2])
	ab := NewChannel("ab", 100*sim.Nanosecond, 0)
	bc := NewChannel("bc", 150*sim.Nanosecond, 0)
	ra.Attach(ab.SideA())
	rb.Attach(ab.SideB())
	rb.Attach(bc.SideA())
	rc.Attach(bc.SideB())

	src := &pinger{name: "src", port: ab.SideA(), interval: 200 * sim.Nanosecond}
	ra.AddComponent(src, 10)
	ab.SideA().SetSink(0, 100, src)

	var relayed int
	ab.SideB().SetSink(0, 101, core.SinkFunc(func(at sim.Time, m core.Message) {
		relayed++
		bc.SideA().Send(m)
	}))
	bc.SideA().SetSink(0, 102, core.SinkFunc(func(sim.Time, core.Message) {}))

	final := &pinger{name: "dst", interval: sim.Infinity}
	rc.AddComponent(final, 12)
	bc.SideB().SetSink(0, 103, final)

	g := &Group{}
	g.Add(ra, rb, rc)
	if err := g.Run(3 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if relayed == 0 || len(final.trace) == 0 {
		t.Fatalf("chain carried nothing: relayed=%d final=%d", relayed, len(final.trace))
	}
	// End-to-end latency for seq 0: sent at 0, relayed at 100ns, delivered
	// at 250ns.
	want := "250.000ns:src:0@250.000ns"
	if final.trace[0] != want {
		t.Fatalf("first relayed delivery %q, want %q", final.trace[0], want)
	}
}

func TestGroupPropagatesPanic(t *testing.T) {
	sa, sb := sim.NewScheduler(1), sim.NewScheduler(2)
	ra, rb := NewRunner("a", sa), NewRunner("b", sb)
	ch := NewChannel("ab", 100*sim.Nanosecond, 0)
	ra.Attach(ch.SideA())
	rb.Attach(ch.SideB())
	ch.SideA().SetSink(0, 100, core.SinkFunc(func(sim.Time, core.Message) {}))
	ch.SideB().SetSink(0, 101, core.SinkFunc(func(sim.Time, core.Message) {
		panic("boom")
	}))
	bad := &pinger{name: "bad", port: ch.SideA(), interval: 100 * sim.Nanosecond}
	ra.AddComponent(bad, 10)
	g := &Group{}
	g.Add(ra, rb)
	if err := g.Run(1 * sim.Microsecond); err == nil {
		t.Fatal("expected error from panicking runner")
	}
}

func TestChannelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero latency channel should panic")
		}
	}()
	NewChannel("bad", 0, 0)
}

func TestPipeFIFOProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		p := newPipe()
		for i, v := range vals {
			p.send(Message{T: sim.Time(v), Sub: uint16(i)})
		}
		for i := range vals {
			m, ok, _ := p.tryRecv()
			if !ok || m.Sub != uint16(i) {
				return false
			}
		}
		_, ok, _ := p.tryRecv()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPipeClose(t *testing.T) {
	p := newPipe()
	p.send(Message{T: 1})
	p.close()
	if m, ok, closed := p.recv(); !ok || closed || m.T != 1 {
		t.Fatalf("recv after close should drain buffered first: %v %v %v", m, ok, closed)
	}
	if _, ok, closed := p.recv(); ok || !closed {
		t.Fatal("drained closed pipe should report closed")
	}
	if p.len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestDirectPortValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero latency direct port should panic")
		}
	}()
	NewDirectPort(sim.NewScheduler(0), 0, 1, nil)
}
